//===- tools/fuzz/PathInvFuzzMain.cpp - Fuzz/differential CLI -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver for the seeded PIL fuzzer and the three-engine
/// differential oracle (src/fuzz/). A run sweeps a contiguous seed block;
/// every program's ground truth is constructed (planted invariant or
/// interpreter-confirmed mutation), every engine verdict is adjudicated
/// exactly (witness replay / certificate validation — never majority
/// vote), and failing cases are printed with their seed so
/// `pathinv-fuzz --seed=S --dump` reproduces the exact program.
///
/// Usage: pathinv-fuzz [options]
///   --seeds=N        sweep N seeds (default 200)
///   --seed=S         first seed of the block (default 1)
///   --minimize       shrink failing programs before reporting
///   --dump           print each generated program instead of verifying
///   --engines=a,b    subset of cegar,pdr,portfolio (default all)
///   --timeout=SEC    per-engine-run wall backstop
///   --budgets=k=v,.. per-engine-run step budgets (pathinv keys)
///   --quiet          summary line only
///
/// Exit codes: 0 zero adjudication bugs, 1 bugs found, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

namespace {

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options]\n"
      << "  --seeds=N        sweep N consecutive seeds (default 200)\n"
      << "  --seed=S         first seed of the block (default 1)\n"
      << "  --minimize       ddmin-shrink failing programs before "
         "reporting\n"
      << "  --dump           print each generated program (with its\n"
      << "                   ground-truth label) instead of verifying\n"
      << "  --engines=a,b    comma subset of cegar,pdr,portfolio\n"
      << "  --timeout=SEC    per-engine-run wall backstop (default 30)\n"
      << "  --budgets=k=v,.. per-engine-run step budgets; keys as in\n"
      << "                   pathinv --budgets\n"
      << "  --quiet          print only the summary line\n"
      << "exit codes: 0 no adjudication bugs, 1 bugs found, 2 usage "
         "error\n";
  return 2;
}

bool parseUint(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

bool parseBudgets(const char *Text, pathinv::ResourceLimits &Limits) {
  std::string Spec = Text;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Pair = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    size_t Eq = Pair.find('=');
    uint64_t Count = 0;
    if (Eq == std::string::npos ||
        !parseUint(Pair.c_str() + Eq + 1, Count)) {
      std::cerr << "malformed budget '" << Pair << "' (want key=count)\n";
      return false;
    }
    std::string Key = Pair.substr(0, Eq);
    if (Key == "sat_conflicts")
      Limits.SatConflicts = Count;
    else if (Key == "pivots")
      Limits.Pivots = Count;
    else if (Key == "bnb_nodes")
      Limits.BnbNodes = Count;
    else if (Key == "synth_combos")
      Limits.SynthCombos = Count;
    else if (Key == "arg_expansions")
      Limits.ArgExpansions = Count;
    else if (Key == "refinements")
      Limits.Refinements = Count;
    else if (Key == "pdr_obligations")
      Limits.PdrObligations = Count;
    else {
      std::cerr << "unknown budget key '" << Key << "'\n";
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  pathinv::fuzz::SweepOptions Opts;
  bool Quiet = false, Dump = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--seeds=")) {
      uint64_t N = 0;
      if (!parseUint(V, N) || N == 0)
        return usage(Argv[0]);
      Opts.Count = static_cast<int>(N);
    } else if (const char *V = valueOf("--seed=")) {
      if (!parseUint(V, Opts.FirstSeed))
        return usage(Argv[0]);
    } else if (const char *V = valueOf("--engines=")) {
      Opts.Oracle.RunCegar = Opts.Oracle.RunPdr = Opts.Oracle.RunPortfolio =
          false;
      std::string Spec = V;
      size_t Pos = 0;
      while (Pos <= Spec.size()) {
        size_t Comma = Spec.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Spec.size();
        std::string Name = Spec.substr(Pos, Comma - Pos);
        Pos = Comma + 1;
        if (Name == "cegar")
          Opts.Oracle.RunCegar = true;
        else if (Name == "pdr")
          Opts.Oracle.RunPdr = true;
        else if (Name == "portfolio")
          Opts.Oracle.RunPortfolio = true;
        else {
          std::cerr << "unknown engine '" << Name << "'\n";
          return usage(Argv[0]);
        }
      }
    } else if (const char *V = valueOf("--timeout=")) {
      char *End = nullptr;
      double Sec = std::strtod(V, &End);
      if (End == V || *End != '\0' || Sec < 0)
        return usage(Argv[0]);
      Opts.Oracle.Budget.TimeoutSeconds = Sec;
    } else if (const char *V = valueOf("--budgets=")) {
      if (!parseBudgets(V, Opts.Oracle.Budget))
        return usage(Argv[0]);
    } else if (Arg == "--minimize") {
      Opts.Minimize = true;
    } else if (Arg == "--dump") {
      Dump = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option '" << Arg << "'\n";
      return usage(Argv[0]);
    }
  }

  if (Dump) {
    for (int I = 0; I < Opts.Count; ++I) {
      pathinv::fuzz::GeneratedProgram GP = pathinv::fuzz::generateProgram(
          Opts.FirstSeed + static_cast<uint64_t>(I));
      std::cout << "// seed " << GP.Seed << ": family " << GP.Family
                << ", ground truth "
                << (GP.ExpectSafe ? "SAFE" : "UNSAFE (" + GP.Mutation + ")")
                << "\n"
                << GP.Source << "\n";
    }
    return 0;
  }

  int Done = 0;
  if (!Quiet)
    Opts.OnReport = [&](const pathinv::fuzz::OracleReport &Rep) {
      ++Done;
      if (Done % 25 == 0)
        std::cerr << "... " << Done << " programs adjudicated\n";
      for (const std::string &Bug : Rep.Bugs)
        std::cerr << "BUG: " << Bug << "\n";
    };

  pathinv::fuzz::SweepResult Res = pathinv::fuzz::runSweep(Opts);

  std::cout << "pathinv-fuzz: " << Res.Programs << " programs (seeds "
            << Opts.FirstSeed << ".."
            << Opts.FirstSeed + static_cast<uint64_t>(Opts.Count) - 1
            << "), ground truth " << Res.ExpectedSafe << " safe / "
            << Res.ExpectedUnsafe << " unsafe; verdicts "
            << Res.SafeVerdicts << " Safe (certified), "
            << Res.UnsafeVerdicts << " Unsafe (replayed), "
            << Res.UnknownVerdicts << " Unknown; "
            << Res.BugReports.size() << " bugs\n";
  for (const pathinv::fuzz::OracleReport &Rep : Res.BugReports) {
    std::cout << "=== seed " << Rep.Seed << " (ground truth "
              << (Rep.ExpectSafe ? "safe" : "unsafe") << ")\n";
    for (const std::string &Bug : Rep.Bugs)
      std::cout << "  bug: " << Bug << "\n";
    std::cout << Rep.Source;
  }
  return Res.ok() ? 0 : 1;
}
