#!/usr/bin/env python3
"""Gate on benchmark regressions between two BENCH_<n>.json files.

Usage: check_bench_regression.py BASELINE.json CURRENT.json
           [--max-regression 0.20]
           [--require-microbench KEY:MINSPEEDUP ...]
           [--require-reuse MINRATIO]
           [--require-portfolio MAXRATIO [--portfolio-noise-ms MS]]

Gates:
  * end_to_end_total_wall_ms: current may be at most
    (1 + max-regression) x baseline;
  * every end-to-end program still reports the verdict recorded in the
    baseline;
  * no end-to-end program exhausted a resource budget: from schema v6 on
    the e2e runs are governed by a ResourceController with generous
    budgets, and an entry with a non-empty unknown_reason means the
    verifier gave up under limits the paper programs comfortably fit —
    a governance regression, not a timing one;
  * microbench throughput (ops_per_sec of the system-under-test mode)
    for keys present in BOTH files may not regress by more than
    max-regression — absolute and therefore machine-dependent, so only
    compare files produced on the same machine (CI's cross-machine smoke
    run passes --max-regression 1000 to reduce this gate to a
    verdict check);
  * --require-microbench KEY:MIN enforces an absolute floor on a current
    microbench's speedup_vs_reference (e.g. rational_pivot:1.5);
  * --require-reuse MIN enforces a floor on the refinement_reuse
    workload's node-expansion ratio (restart nodes / arg nodes) and
    re-checks that both reachability engines agreed on the verdict;
  * --require-portfolio MAX enforces, per e2e program (schema v7+), that
    the portfolio wall is at most MAX x the better single engine's wall
    — the racing overhead bound. The gate is a within-file ratio, so it
    is machine-independent and holds on cross-machine comparisons too.
    Programs that finish in a few ms would make the ratio pure
    scheduling noise, so a wall within --portfolio-noise-ms (default
    250) of the best single engine passes regardless of the ratio. The
    gate also re-checks that all three engines agreed on the verdict.

Exits 0 when every gate holds, 1 otherwise.
"""

import argparse
import json
import os
import sys


def load_bench(path):
    """Load a BENCH_<n>.json, failing loudly on the ways a bad run can
    leave a husk behind: a 0-byte file (the bench binary died before its
    single atomic write), unparseable JSON, or JSON that lacks the e2e
    section every schema version has. A silent `json.load` traceback
    buries the actual problem ("your baseline is empty") under a decoder
    stack."""
    try:
        size = os.path.getsize(path)
    except OSError as err:
        sys.exit(f"FATAL: cannot stat bench file {path}: {err}")
    if size == 0:
        sys.exit(f"FATAL: bench file {path} is empty (0 bytes) — the "
                 f"benchmark run that was supposed to produce it died "
                 f"before writing results; regenerate it with "
                 f"tools/bench/pathinv_bench --out {os.path.basename(path)}")
    try:
        with open(path) as f:
            data = json.load(f)
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as err:
        sys.exit(f"FATAL: bench file {path} is not valid JSON ({err}) — "
                 f"regenerate it, do not hand-edit")
    if not isinstance(data, dict) or "end_to_end" not in data \
            or "end_to_end_total_wall_ms" not in data:
        sys.exit(f"FATAL: bench file {path} parses but lacks the "
                 f"end_to_end section — not a pathinv_bench output?")
    return data


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional wall-time/speedup regression")
    ap.add_argument("--require-microbench", action="append", default=[],
                    metavar="KEY:MINSPEEDUP",
                    help="fail unless current microbench KEY reaches "
                         "MINSPEEDUP x vs its in-process reference")
    ap.add_argument("--require-reuse", type=float, default=None,
                    metavar="MINRATIO",
                    help="fail unless refinement_reuse.node_ratio (restart "
                         "nodes / arg nodes) reaches MINRATIO and both "
                         "engines agree on the verdict")
    ap.add_argument("--require-portfolio", type=float, default=None,
                    metavar="MAXRATIO",
                    help="fail if any e2e program's portfolio wall exceeds "
                         "MAXRATIO x the better single engine's wall "
                         "(subject to --portfolio-noise-ms), or if the "
                         "three engines disagree on a verdict")
    ap.add_argument("--portfolio-noise-ms", type=float, default=250.0,
                    metavar="MS",
                    help="absolute slack for the portfolio gate: a wall "
                         "within MS of the best single engine passes "
                         "regardless of the ratio (ms-scale programs)")
    args = ap.parse_args()

    base = load_bench(args.baseline)
    cur = load_bench(args.current)

    ok = True

    base_verdicts = {e["program"]: e["verdict"] for e in base["end_to_end"]}
    for entry in cur["end_to_end"]:
        expected = base_verdicts.get(entry["program"])
        if expected is None:
            continue
        if entry["verdict"] != expected:
            print(f"FAIL: {entry['program']} verdict changed: "
                  f"{expected} -> {entry['verdict']}")
            ok = False

    # Governed e2e runs (schema v6+) must never exhaust their generous
    # budgets; older baselines simply lack the field. From v7 the pdr and
    # portfolio sub-runs carry their own unknown_reason, held to the same
    # standard.
    for entry in cur["end_to_end"]:
        for engine in ("", "pdr", "portfolio"):
            run = entry.get(engine, {}) if engine else entry
            reason = run.get("unknown_reason", "") if isinstance(run, dict) \
                else ""
            if reason:
                label = f"{entry['program']}/{engine}" if engine \
                    else entry["program"]
                print(f"FAIL: {label} exhausted a resource budget "
                      f"under generous limits (reason: {reason})")
                ok = False

    base_ms = base["end_to_end_total_wall_ms"]
    cur_ms = cur["end_to_end_total_wall_ms"]
    limit = base_ms * (1.0 + args.max_regression)
    ratio = cur_ms / base_ms if base_ms else float("inf")
    line = (f"end_to_end_total_wall_ms: baseline {base_ms:.1f}, "
            f"current {cur_ms:.1f} ({ratio:.2f}x, limit {limit:.1f})")
    if cur_ms > limit:
        print("FAIL: " + line)
        ok = False
    else:
        print("OK:   " + line)

    # Microbench throughput of the system under test must not regress on
    # workloads both files know about. Compared on absolute ops_per_sec of
    # the non-reference mode: the in-process speedup ratio is NOT a stable
    # cross-PR metric, because a PR that accelerates shared substrate
    # (e.g. the number types) legitimately speeds the reference up too.
    def under_test(entry):
        for mode, stats in entry.items():
            # Skip the reference mode, the ratio, and scalar side-channel
            # fields (e.g. integer_split's bnb_nodes/scratch_fallbacks,
            # synthesis_partition's lp_checks and synth_nogoods /
            # synth_combos_deduped / synth_lemmas_reused / synth_cuts).
            if mode in ("reference", "speedup_vs_reference"):
                continue
            if isinstance(stats, dict):
                return stats.get("ops_per_sec")
        return None

    base_micro = base.get("microbench", {})
    cur_micro = cur.get("microbench", {})
    for key in sorted(set(base_micro) & set(cur_micro)):
        b = under_test(base_micro[key])
        c = under_test(cur_micro[key])
        if not b or not c:
            continue
        floor = b * (1.0 - args.max_regression)
        line = (f"microbench {key}: ops/s {b:.3g} -> {c:.3g} "
                f"(floor {floor:.3g})")
        if c < floor:
            print("FAIL: " + line)
            ok = False
        else:
            print("OK:   " + line)

    for spec in args.require_microbench:
        key, _, min_text = spec.partition(":")
        minimum = float(min_text)
        speedup = cur_micro.get(key, {}).get("speedup_vs_reference")
        if speedup is None:
            print(f"FAIL: required microbench '{key}' missing from current")
            ok = False
            continue
        line = f"required microbench {key}: {speedup:.2f}x (>= {minimum}x)"
        if speedup < minimum:
            print("FAIL: " + line)
            ok = False
        else:
            print("OK:   " + line)

    if args.require_reuse is not None:
        reuse = cur.get("refinement_reuse")
        if reuse is None:
            print("FAIL: refinement_reuse workload missing from current")
            ok = False
        else:
            ratio = reuse.get("node_ratio", 0.0)
            arg_v = reuse.get("arg", {}).get("verdict")
            restart_v = reuse.get("restart", {}).get("verdict")
            line = (f"refinement_reuse: node ratio {ratio:.2f}x "
                    f"(>= {args.require_reuse}x), verdicts "
                    f"arg={arg_v} restart={restart_v}, speedup "
                    f"{reuse.get('speedup_vs_restart', 0.0):.2f}x")
            if ratio < args.require_reuse or arg_v != restart_v:
                print("FAIL: " + line)
                ok = False
            else:
                print("OK:   " + line)

    if args.require_portfolio is not None:
        gated = 0
        for entry in cur["end_to_end"]:
            pdr = entry.get("pdr")
            pf = entry.get("portfolio")
            if not isinstance(pdr, dict) or not isinstance(pf, dict):
                print(f"FAIL: {entry['program']} lacks the three-engine "
                      f"runs the portfolio gate needs (schema v7+)")
                ok = False
                continue
            gated += 1
            verdicts = {entry["verdict"], pdr.get("verdict"),
                        pf.get("verdict")}
            if len(verdicts) != 1:
                print(f"FAIL: {entry['program']} engine verdicts disagree: "
                      f"cegar={entry['verdict']} pdr={pdr.get('verdict')} "
                      f"portfolio={pf.get('verdict')}")
                ok = False
            best = min(entry["wall_ms"], pdr["wall_ms"])
            limit = max(best * args.require_portfolio,
                        best + args.portfolio_noise_ms)
            wall = pf["wall_ms"]
            ratio = wall / best if best else float("inf")
            line = (f"portfolio {entry['program']}: {wall:.1f} ms vs best "
                    f"single {best:.1f} ms ({ratio:.2f}x, limit "
                    f"{limit:.1f} ms)")
            if wall > limit:
                print("FAIL: " + line)
                ok = False
            else:
                print("OK:   " + line)
        if gated == 0:
            print("FAIL: portfolio gate matched no end-to-end entries")
            ok = False

    if "incremental" in cur:
        inc = cur["incremental"]
        print(f"info: incremental speedup_vs_one_shot = "
              f"{inc['speedup_vs_one_shot']:.2f}x over {inc['queries']} queries")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
