#!/usr/bin/env python3
"""Gate on benchmark regressions between two BENCH_<n>.json files.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [--max-regression 0.20]

Compares end_to_end_total_wall_ms (current may be at most
(1 + max-regression) x baseline) and checks that every end-to-end program
still reports the expected verdict recorded in the baseline. Exits 0 when
both gates hold, 1 otherwise.
"""

import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="allowed fractional wall-time regression")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    ok = True

    base_verdicts = {e["program"]: e["verdict"] for e in base["end_to_end"]}
    for entry in cur["end_to_end"]:
        expected = base_verdicts.get(entry["program"])
        if expected is None:
            continue
        if entry["verdict"] != expected:
            print(f"FAIL: {entry['program']} verdict changed: "
                  f"{expected} -> {entry['verdict']}")
            ok = False

    base_ms = base["end_to_end_total_wall_ms"]
    cur_ms = cur["end_to_end_total_wall_ms"]
    limit = base_ms * (1.0 + args.max_regression)
    ratio = cur_ms / base_ms if base_ms else float("inf")
    line = (f"end_to_end_total_wall_ms: baseline {base_ms:.1f}, "
            f"current {cur_ms:.1f} ({ratio:.2f}x, limit {limit:.1f})")
    if cur_ms > limit:
        print("FAIL: " + line)
        ok = False
    else:
        print("OK:   " + line)

    if "incremental" in cur:
        inc = cur["incremental"]
        print(f"info: incremental speedup_vs_one_shot = "
              f"{inc['speedup_vs_one_shot']:.2f}x over {inc['queries']} queries")

    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
