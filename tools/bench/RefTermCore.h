//===- tools/bench/RefTermCore.h - Pre-refactor reference term core -------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference mode for the benchmark harness: a faithful transcription of
/// the term core as it was BEFORE the arena/interning refactor — one heap
/// allocation per node, a std::string name and std::vector operand list in
/// every node, and a bucket-chained `unordered_map<size_t, vector>` uniquing
/// table. The microbenchmarks run the identical workload against this and
/// against pathinv::TermManager in the same process, so BENCH_*.json records
/// an apples-to-apples before/after throughput ratio.
///
/// Only the subset of the factory API exercised by the microbenchmarks is
/// kept. Do not use outside tools/bench.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_TOOLS_BENCH_REFTERMCORE_H
#define PATHINV_TOOLS_BENCH_REFTERMCORE_H

#include "support/Rational.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace refcore {

using pathinv::Rational;

enum class Sort : uint8_t { Bool, Int, ArrayIntInt };

enum class TermKind : uint8_t {
  IntConst,
  Var,
  Add,
  Mul,
  Select,
  Store,
  Apply,
  Eq,
  Le,
  Lt,
  True,
  False,
  Not,
  And,
  Or,
  Forall,
};

class TermManager;

class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TermSort; }
  uint32_t id() const { return Id; }
  const Rational &value() const { return Value; }
  const std::string &name() const { return Name; }
  const std::vector<const Term *> &operands() const { return Ops; }
  const Term *operand(size_t I) const { return Ops[I]; }
  size_t numOperands() const { return Ops.size(); }

  bool isInt() const { return TermSort == Sort::Int; }
  bool isBool() const { return TermSort == Sort::Bool; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isIntConst() const { return Kind == TermKind::IntConst; }
  bool isTrue() const { return Kind == TermKind::True; }
  bool isFalse() const { return Kind == TermKind::False; }

private:
  friend class TermManager;
  Term() = default;

  TermKind Kind = TermKind::True;
  Sort TermSort = Sort::Bool;
  uint32_t Id = 0;
  Rational Value;
  std::string Name;
  std::vector<const Term *> Ops;
};

struct TermIdLess {
  bool operator()(const Term *A, const Term *B) const {
    return A->id() < B->id();
  }
};

/// Seed-layout owner/uniquer (see file comment).
class TermManager {
public:
  TermManager();
  TermManager(const TermManager &) = delete;
  TermManager &operator=(const TermManager &) = delete;

  const Term *mkTrue() { return TrueTerm; }
  const Term *mkFalse() { return FalseTerm; }
  const Term *mkBool(bool B) { return B ? TrueTerm : FalseTerm; }
  const Term *mkIntConst(Rational Value);
  const Term *mkIntConst(int64_t Value) { return mkIntConst(Rational(Value)); }
  const Term *mkVar(std::string_view Name, Sort S);
  const Term *mkAdd(std::vector<const Term *> Ops);
  const Term *mkAdd(const Term *A, const Term *B) { return mkAdd({A, B}); }
  const Term *mkMul(const Term *A, const Term *B);
  const Term *mkLe(const Term *A, const Term *B);
  const Term *mkLt(const Term *A, const Term *B);
  const Term *mkEq(const Term *A, const Term *B);
  const Term *mkNot(const Term *A);
  const Term *mkAnd(std::vector<const Term *> Ops);
  const Term *mkAnd(const Term *A, const Term *B) { return mkAnd({A, B}); }
  const Term *mkOr(std::vector<const Term *> Ops);

  size_t numTerms() const { return AllTerms.size(); }

private:
  const Term *intern(TermKind K, Sort S, Rational Value, std::string Name,
                     std::vector<const Term *> Ops);

  std::vector<std::unique_ptr<Term>> AllTerms;
  std::unordered_map<size_t, std::vector<const Term *>> UniqueTable;
  const Term *TrueTerm = nullptr;
  const Term *FalseTerm = nullptr;
};

using TermMap = std::map<const Term *, const Term *, TermIdLess>;

/// Seed-style memoized substitution (std::map cache keyed by pointer with
/// id ordering, exactly as the pre-refactor TermRewrite did).
const Term *substitute(TermManager &TM, const Term *T, const TermMap &Subst);

} // namespace refcore

#endif // PATHINV_TOOLS_BENCH_REFTERMCORE_H
