//===- tools/bench/RefArith.h - Pre-refactor exact arithmetic --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference-mode transcription of the pre-inline-limb BigInt/Rational:
/// every value is a sign + heap-allocated base-2^32 limb vector, all
/// compound updates materialize expression temporaries, and normalization
/// always runs the BigInt gcd. Benchmarks pit pathinv::Rational (inline
/// fast path + accumulate API) against this in the same process so
/// BENCH_<n>.json carries a genuine before/after throughput ratio.
///
/// Deliberately NOT shared with src/support — this header freezes the old
/// behavior the way tools/bench/RefTermCore.h freezes the old term core.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_TOOLS_BENCH_REFARITH_H
#define PATHINV_TOOLS_BENCH_REFARITH_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace refarith {

/// Arbitrary-precision signed integer: sign + little-endian base-2^32
/// magnitude, heap-allocated even for single-limb values.
class BigInt {
public:
  BigInt() = default;
  BigInt(int64_t Value) {
    if (Value == 0)
      return;
    Sign = Value < 0 ? -1 : 1;
    uint64_t Mag = Value < 0 ? ~static_cast<uint64_t>(Value) + 1
                             : static_cast<uint64_t>(Value);
    Limbs.push_back(static_cast<uint32_t>(Mag & 0xffffffffu));
    if (Mag >> 32)
      Limbs.push_back(static_cast<uint32_t>(Mag >> 32));
  }

  int sign() const { return Sign; }
  bool isZero() const { return Sign == 0; }
  bool isNegative() const { return Sign < 0; }
  bool isOne() const { return Sign > 0 && Limbs.size() == 1 && Limbs[0] == 1; }

  std::string toString() const {
    if (Sign == 0)
      return "0";
    std::string Digits;
    std::vector<uint32_t> Mag = Limbs;
    while (!Mag.empty()) {
      uint64_t Carry = 0;
      for (size_t I = Mag.size(); I-- > 0;) {
        uint64_t Cur = (Carry << 32) | Mag[I];
        Mag[I] = static_cast<uint32_t>(Cur / 1000000000u);
        Carry = Cur % 1000000000u;
      }
      while (!Mag.empty() && Mag.back() == 0)
        Mag.pop_back();
      for (int I = 0; I < 9; ++I) {
        Digits.push_back(static_cast<char>('0' + Carry % 10));
        Carry /= 10;
      }
    }
    while (Digits.size() > 1 && Digits.back() == '0')
      Digits.pop_back();
    if (Sign < 0)
      Digits.push_back('-');
    std::string Out(Digits.rbegin(), Digits.rend());
    return Out;
  }

  BigInt operator-() const {
    BigInt Result = *this;
    Result.Sign = -Result.Sign;
    return Result;
  }
  BigInt abs() const {
    BigInt Result = *this;
    if (Result.Sign < 0)
      Result.Sign = 1;
    return Result;
  }

  BigInt operator+(const BigInt &RHS) const {
    if (Sign == 0)
      return RHS;
    if (RHS.Sign == 0)
      return *this;
    BigInt Result;
    if (Sign == RHS.Sign) {
      Result.Sign = Sign;
      Result.Limbs = addMagnitude(Limbs, RHS.Limbs);
      return Result;
    }
    int Cmp = compareMagnitude(Limbs, RHS.Limbs);
    if (Cmp == 0)
      return Result;
    if (Cmp > 0) {
      Result.Sign = Sign;
      Result.Limbs = subMagnitude(Limbs, RHS.Limbs);
    } else {
      Result.Sign = RHS.Sign;
      Result.Limbs = subMagnitude(RHS.Limbs, Limbs);
    }
    return Result;
  }
  BigInt operator-(const BigInt &RHS) const { return *this + (-RHS); }
  BigInt operator*(const BigInt &RHS) const {
    BigInt Result;
    if (Sign == 0 || RHS.Sign == 0)
      return Result;
    Result.Sign = Sign * RHS.Sign;
    Result.Limbs = mulMagnitude(Limbs, RHS.Limbs);
    if (Result.Limbs.empty())
      Result.Sign = 0;
    return Result;
  }

  static void divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                     BigInt &Rem) {
    assert(!Den.isZero() && "division by zero");
    std::vector<uint32_t> RemMag;
    std::vector<uint32_t> QuotMag =
        divModMagnitude(Num.Limbs, Den.Limbs, RemMag);
    int NumSign = Num.Sign, DenSign = Den.Sign;
    Quot = BigInt();
    Rem = BigInt();
    if (!QuotMag.empty()) {
      Quot.Sign = NumSign * DenSign;
      Quot.Limbs = std::move(QuotMag);
    }
    if (!RemMag.empty()) {
      Rem.Sign = NumSign;
      Rem.Limbs = std::move(RemMag);
    }
  }
  BigInt operator/(const BigInt &RHS) const {
    BigInt Quot, Rem;
    divMod(*this, RHS, Quot, Rem);
    return Quot;
  }
  BigInt operator%(const BigInt &RHS) const {
    BigInt Quot, Rem;
    divMod(*this, RHS, Quot, Rem);
    return Rem;
  }

  int compare(const BigInt &RHS) const {
    if (Sign != RHS.Sign)
      return Sign < RHS.Sign ? -1 : 1;
    int MagCmp = compareMagnitude(Limbs, RHS.Limbs);
    return Sign >= 0 ? MagCmp : -MagCmp;
  }
  bool operator==(const BigInt &RHS) const {
    return Sign == RHS.Sign && Limbs == RHS.Limbs;
  }

  static BigInt gcd(BigInt A, BigInt B) {
    A = A.abs();
    B = B.abs();
    while (!B.isZero()) {
      BigInt R = A % B;
      A = std::move(B);
      B = std::move(R);
    }
    return A;
  }

private:
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B) {
    if (A.size() != B.size())
      return A.size() < B.size() ? -1 : 1;
    for (size_t I = A.size(); I-- > 0;)
      if (A[I] != B[I])
        return A[I] < B[I] ? -1 : 1;
    return 0;
  }
  static std::vector<uint32_t> addMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B) {
    const std::vector<uint32_t> &Long = A.size() >= B.size() ? A : B;
    const std::vector<uint32_t> &Short = A.size() >= B.size() ? B : A;
    std::vector<uint32_t> Result;
    Result.reserve(Long.size() + 1);
    uint64_t Carry = 0;
    for (size_t I = 0; I < Long.size(); ++I) {
      uint64_t Sum = Carry + Long[I] + (I < Short.size() ? Short[I] : 0);
      Result.push_back(static_cast<uint32_t>(Sum & 0xffffffffu));
      Carry = Sum >> 32;
    }
    if (Carry)
      Result.push_back(static_cast<uint32_t>(Carry));
    return Result;
  }
  static std::vector<uint32_t> subMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B) {
    std::vector<uint32_t> Result;
    Result.reserve(A.size());
    int64_t Borrow = 0;
    for (size_t I = 0; I < A.size(); ++I) {
      int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                     (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
      if (Diff < 0) {
        Diff += static_cast<int64_t>(uint64_t(1) << 32);
        Borrow = 1;
      } else {
        Borrow = 0;
      }
      Result.push_back(static_cast<uint32_t>(Diff));
    }
    while (!Result.empty() && Result.back() == 0)
      Result.pop_back();
    return Result;
  }
  static std::vector<uint32_t> mulMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B) {
    if (A.empty() || B.empty())
      return {};
    std::vector<uint32_t> Result(A.size() + B.size(), 0);
    for (size_t I = 0; I < A.size(); ++I) {
      uint64_t Carry = 0;
      for (size_t J = 0; J < B.size(); ++J) {
        uint64_t Cur =
            Result[I + J] + static_cast<uint64_t>(A[I]) * B[J] + Carry;
        Result[I + J] = static_cast<uint32_t>(Cur & 0xffffffffu);
        Carry = Cur >> 32;
      }
      size_t K = I + B.size();
      while (Carry) {
        uint64_t Cur = Result[K] + Carry;
        Result[K] = static_cast<uint32_t>(Cur & 0xffffffffu);
        Carry = Cur >> 32;
        ++K;
      }
    }
    while (!Result.empty() && Result.back() == 0)
      Result.pop_back();
    return Result;
  }
  static std::vector<uint32_t>
  divModMagnitude(const std::vector<uint32_t> &A,
                  const std::vector<uint32_t> &B, std::vector<uint32_t> &Rem) {
    if (compareMagnitude(A, B) < 0) {
      Rem = A;
      return {};
    }
    if (B.size() == 1) {
      uint64_t Div = B[0];
      std::vector<uint32_t> Quot(A.size(), 0);
      uint64_t Carry = 0;
      for (size_t I = A.size(); I-- > 0;) {
        uint64_t Cur = (Carry << 32) | A[I];
        Quot[I] = static_cast<uint32_t>(Cur / Div);
        Carry = Cur % Div;
      }
      while (!Quot.empty() && Quot.back() == 0)
        Quot.pop_back();
      Rem.clear();
      if (Carry)
        Rem.push_back(static_cast<uint32_t>(Carry));
      return Quot;
    }
    std::vector<uint32_t> Quot(A.size(), 0);
    std::vector<uint32_t> Cur;
    for (size_t LimbIdx = A.size(); LimbIdx-- > 0;) {
      for (int Bit = 31; Bit >= 0; --Bit) {
        uint32_t CarryBit = (A[LimbIdx] >> Bit) & 1;
        for (auto &Limb : Cur) {
          uint32_t NewCarry = Limb >> 31;
          Limb = (Limb << 1) | CarryBit;
          CarryBit = NewCarry;
        }
        if (CarryBit)
          Cur.push_back(CarryBit);
        if (compareMagnitude(Cur, B) >= 0) {
          Cur = subMagnitude(Cur, B);
          Quot[LimbIdx] |= uint32_t(1) << Bit;
        }
      }
    }
    while (!Quot.empty() && Quot.back() == 0)
      Quot.pop_back();
    Rem = std::move(Cur);
    return Quot;
  }

  int Sign = 0;
  std::vector<uint32_t> Limbs;
};

/// Exact rational in lowest terms with positive denominator, pre-refactor
/// style: every operation builds numerator/denominator temporaries and
/// runs a full BigInt gcd to normalize.
class Rational {
public:
  Rational() : Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(BigInt N, BigInt D) : Num(std::move(N)), Den(std::move(D)) {
    assert(!Den.isZero() && "rational with zero denominator");
    normalize();
  }
  static Rational fraction(int64_t N, int64_t D) {
    return Rational(BigInt(N), BigInt(D));
  }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }
  bool isOne() const { return Num.isOne() && Den.isOne(); }

  Rational operator-() const {
    Rational Result = *this;
    Result.Num = -Result.Num;
    return Result;
  }
  Rational operator+(const Rational &RHS) const {
    return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
  }
  Rational operator-(const Rational &RHS) const {
    return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
  }
  Rational operator*(const Rational &RHS) const {
    return Rational(Num * RHS.Num, Den * RHS.Den);
  }
  Rational operator/(const Rational &RHS) const {
    assert(!RHS.isZero() && "division by zero rational");
    return Rational(Num * RHS.Den, Den * RHS.Num);
  }
  Rational inverse() const {
    assert(!isZero() && "inverse of zero");
    return Rational(Den, Num);
  }
  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  int compare(const Rational &RHS) const {
    return (Num * RHS.Den).compare(RHS.Num * Den);
  }

  std::string toString() const {
    if (Den.isOne())
      return Num.toString();
    return Num.toString() + "/" + Den.toString();
  }

private:
  void normalize() {
    if (Den.isNegative()) {
      Num = -Num;
      Den = -Den;
    }
    if (Num.isZero()) {
      Den = BigInt(1);
      return;
    }
    BigInt G = BigInt::gcd(Num, Den);
    if (!G.isOne()) {
      Num = Num / G;
      Den = Den / G;
    }
  }

  BigInt Num;
  BigInt Den;
};

} // namespace refarith

#endif // PATHINV_TOOLS_BENCH_REFARITH_H
