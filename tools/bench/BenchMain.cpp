//===- tools/bench/BenchMain.cpp - Perf trajectory benchmark harness ------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Benchmark harness seeding the repo's perf trajectory (BENCH_*.json).
///
/// Three layers:
///  * Microbenchmarks of the term core: hash-consed construction and
///    memoized substitution. Each workload runs twice in the same process —
///    once against pathinv::TermManager (arena/interned) and once against
///    the reference-mode transcription of the pre-refactor core
///    (RefTermCore.h) — so the emitted JSON carries a genuine before/after
///    throughput ratio.
///  * A rational-pivot microbenchmark pitting the inline-limb
///    BigInt/Rational fast path (with the addMul/subMul accumulate API)
///    against the pre-refactor heap-always arithmetic (RefArith.h) on the
///    simplex row-accumulate pattern, with an in-process differential
///    checksum.
///  * A refinement-reuse workload: a family of sequential loops forcing
///    one refinement per loop, verified twice in-process — once on the
///    persistent-ARG engine (subtree-scoped refinement) and once on the
///    legacy restart engine — so the JSON carries a genuine node-expansion
///    ratio and wall-time speedup between the two. Verdicts must agree.
///  * A `synthesis_partition` microbenchmark: whole-program constraint
///    synthesis on PARTITION (the search hotspot of the paper programs),
///    run twice in-process — once with conflict learning (nogoods, combo
///    dedup, the cross-scope verdict cache, root cuts; the learner
///    persists across iterations the way the engines hold one per job)
///    and once with learning off, the exact pre-learning backjumping
///    search. The throughput unit is combos processed: LP checks plus
///    cached-verdict hits plus nogood prunes, so both modes count the
///    same search work however it was discharged. Both runs must find
///    the map and agree on the template level — a miss or a level
///    disagreement is a correctness bug, not a slow one.
///  * A `pdr_frames` microbenchmark: delta-encoded clause-frame churn
///    (blocking with subsumption pruning, blocked-cube queries, clause
///    pushing, frame collection) — the PDR engine's bookkeeping inner
///    loop, with no solver on the measured path.
///  * End-to-end verification of the paper's example programs
///    (tests/TestPrograms.h) through all three engines — cegar, pdr, and
///    the portfolio — recording per-engine wall time and verdicts (which
///    must agree; the harness aborts otherwise) plus the cegar run's peak
///    term counts and cumulative SMT/SAT statistics. Each entry carries
///    `portfolio_ratio` = portfolio wall / best single-engine wall, the
///    metric the regression checker gates at 1.2. The e2e runs are
///    governed: a ResourceController with generous budgets is live, so the
///    amortized checkpoint polls are on the measured path (their overhead
///    is gated by the end-to-end wall-time regression check) and every run
///    records whether it exhausted a budget — the regression checker fails
///    on any exhaustion under these defaults.
///
/// Usage: pathinv_bench [--out FILE] [--iters N] [--smoke]
///
//===----------------------------------------------------------------------===//

#include "RefArith.h"
#include "RefTermCore.h"
#include "TestPrograms.h"
#include "core/Resource.h"
#include "core/Verifier.h"
#include "fuzz/Fuzz.h"
#include "logic/Term.h"
#include "pdr/Frames.h"
#include "synth/PathInvariants.h"
#include "logic/TermRewrite.h"
#include "smt/SmtSolver.h"
#include "smt/SolverContext.h"
#include "support/Rational.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using Clock = std::chrono::steady_clock;

double elapsedMs(Clock::time_point Start, Clock::time_point End) {
  return std::chrono::duration<double, std::milli>(End - Start).count();
}

/// Adapters giving the two term cores one surface for the templated
/// workloads.
struct ArenaCore {
  static constexpr const char *Name = "arena";
  using Manager = pathinv::TermManager;
  using Term = pathinv::Term;
  using Map = pathinv::TermMap;
  static constexpr pathinv::Sort IntSort = pathinv::Sort::Int;
  static const Term *subst(Manager &TM, const Term *T, const Map &M) {
    return pathinv::substitute(TM, T, M);
  }
};

struct ReferenceCore {
  static constexpr const char *Name = "reference";
  using Manager = refcore::TermManager;
  using Term = refcore::Term;
  using Map = refcore::TermMap;
  static constexpr refcore::Sort IntSort = refcore::Sort::Int;
  static const Term *subst(Manager &TM, const Term *T, const Map &M) {
    return refcore::substitute(TM, T, M);
  }
};

/// Construction workload: builds `Rounds` batches of linear atoms and
/// boolean combinations over a fixed variable pool. Roughly one third of
/// the factory calls re-create already-interned structure, matching the
/// hit/miss mix of path-formula construction. \returns the number of
/// factory calls (the throughput unit).
template <typename Core>
uint64_t constructWorkload(typename Core::Manager &TM, int Rounds) {
  constexpr int NumVars = 16;
  std::vector<const typename Core::Term *> Vars;
  Vars.reserve(NumVars);
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(TM.mkVar("x" + std::to_string(I), Core::IntSort));

  uint64_t Ops = 0;
  const typename Core::Term *Sink = TM.mkTrue();
  for (int R = 0; R < Rounds; ++R) {
    std::vector<const typename Core::Term *> Atoms;
    for (int A = 0; A < 8; ++A) {
      // sum_j c_j * x_j + k  <=  x_m   with coefficients cycling per round.
      std::vector<const typename Core::Term *> Summands;
      for (int J = 0; J < 6; ++J) {
        int Coeff = ((R + A + J) % 7) + 1;
        Summands.push_back(
            TM.mkMul(TM.mkIntConst(Coeff), Vars[(A + J) % NumVars]));
        Ops += 2;
      }
      Summands.push_back(TM.mkIntConst(R % 11));
      const typename Core::Term *Sum = TM.mkAdd(std::move(Summands));
      Ops += 2;
      const typename Core::Term *Rhs = Vars[(R + A) % NumVars];
      const typename Core::Term *Atom =
          A % 3 == 0   ? TM.mkLe(Sum, Rhs)
          : A % 3 == 1 ? TM.mkLt(Sum, Rhs)
                       : TM.mkEq(Sum, Rhs);
      ++Ops;
      Atoms.push_back(A % 2 ? Atom : TM.mkNot(Atom));
      ++Ops;
    }
    std::vector<const typename Core::Term *> FirstHalf(Atoms.begin(),
                                                       Atoms.begin() + 4);
    std::vector<const typename Core::Term *> SecondHalf(Atoms.begin() + 4,
                                                        Atoms.end());
    Sink = TM.mkOr({TM.mkAnd(std::move(FirstHalf)),
                    TM.mkAnd(std::move(SecondHalf)), Sink});
    Ops += 3;
  }
  // Defeat dead-code elimination.
  if (Sink == nullptr)
    std::abort();
  return Ops;
}

/// Substitution workload: one shared conjunction, rewritten `Rounds` times
/// under cycling variable renamings (the SSA/priming pattern of path-formula
/// construction). \returns the number of substitute() calls.
template <typename Core>
uint64_t rewriteWorkload(typename Core::Manager &TM, int Rounds) {
  constexpr int NumVars = 12;
  std::vector<const typename Core::Term *> Vars;
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(TM.mkVar("v" + std::to_string(I), Core::IntSort));

  // A wide conjunction with heavy subterm sharing.
  std::vector<const typename Core::Term *> Atoms;
  for (int I = 0; I < NumVars; ++I) {
    const typename Core::Term *Sum = TM.mkAdd(
        TM.mkMul(TM.mkIntConst(I + 1), Vars[I]), Vars[(I + 1) % NumVars]);
    Atoms.push_back(TM.mkLe(Sum, Vars[(I + 2) % NumVars]));
  }
  const typename Core::Term *Formula = TM.mkAnd(std::move(Atoms));

  uint64_t Ops = 0;
  const typename Core::Term *Sink = Formula;
  for (int R = 0; R < Rounds; ++R) {
    typename Core::Map Subst;
    for (int I = 0; I < NumVars; ++I)
      Subst[Vars[I]] = Vars[(I + 1 + R % (NumVars - 1)) % NumVars];
    Sink = Core::subst(TM, Formula, Subst);
    ++Ops;
  }
  if (Sink == nullptr)
    std::abort();
  return Ops;
}

struct MicroResult {
  uint64_t Ops = 0;
  double WallMs = 0;
  size_t PeakTerms = 0;

  double opsPerSec() const {
    return WallMs > 0 ? 1000.0 * static_cast<double>(Ops) / WallMs : 0;
  }
};

/// Runs \p Fn(Manager&, Rounds) \p Iters times on fresh managers and keeps
/// the fastest run (each run re-interns from scratch).
template <typename Core, typename Fn>
MicroResult runMicro(const Fn &Workload, int Rounds, int Iters) {
  MicroResult Best;
  for (int I = 0; I < Iters; ++I) {
    typename Core::Manager TM;
    auto Start = Clock::now();
    uint64_t Ops = Workload(TM, Rounds);
    double Ms = elapsedMs(Start, Clock::now());
    if (I == 0 || Ms < Best.WallMs) {
      Best.Ops = Ops;
      Best.WallMs = Ms;
      Best.PeakTerms = TM.numTerms();
    }
  }
  return Best;
}

/// Rational-pivot workload: repeated full Gauss-Jordan eliminations of
/// dense rational matrices — the row-accumulate pattern of the simplex
/// inner loop (`row[j] -= factor * pivot[j]`). Matrix entries are small
/// fractions whose intermediates occasionally cross the int64 boundary,
/// matching the value profile of real pivoting. The workload is templated
/// over the arithmetic so the same operation sequence runs once on
/// pathinv::Rational (inline fast path + subMul accumulate API) and once
/// on the refarith transcription of the pre-refactor heap-always types;
/// both must produce identical checksums (in-process differential check).
/// \returns the number of accumulate operations (the throughput unit).
template <typename Rat, typename AccumOps>
uint64_t rationalPivotWorkload(int Size, int Rounds, std::string &Checksum) {
  uint64_t Ops = 0;
  // FNV-1a over the decimal renderings: an exact running rational sum
  // would accumulate unrelated denominators across rounds and grow
  // without bound, which is not what a tableau ever does.
  uint64_t Hash = 14695981039346656037ull;
  std::vector<std::vector<Rat>> M(Size, std::vector<Rat>(Size));
  for (int Round = 0; Round < Rounds; ++Round) {
    for (int I = 0; I < Size; ++I)
      for (int J = 0; J < Size; ++J)
        M[I][J] = Rat::fraction(((Round * 31 + I * 7 + J * 3) % 19) - 9,
                                ((Round + I + J) % 4) + 1);
    for (int K = 0; K < Size; ++K) {
      if (M[K][K].isZero())
        M[K][K] = Rat::fraction((Round + K) % 5 + 1, 1);
      Rat Inv = M[K][K].inverse();
      for (int I = 0; I < Size; ++I) {
        if (I == K)
          continue;
        Rat Factor = M[I][K] * Inv;
        if (Factor.isZero())
          continue;
        for (int J = 0; J < Size; ++J) {
          AccumOps::subMul(M[I][J], Factor, M[K][J]);
          ++Ops;
        }
      }
    }
    for (int I = 0; I < Size; ++I)
      for (int J = 0; J < Size; ++J)
        for (char C : M[I][J].toString())
          Hash = (Hash ^ static_cast<uint8_t>(C)) * 1099511628211ull;
  }
  Checksum = std::to_string(Hash);
  return Ops;
}

/// Accumulate-op adapters: the fast side uses the new in-place API, the
/// reference side the pre-refactor temporary-heavy expression chains.
struct FastAccumOps {
  static void subMul(pathinv::Rational &Acc, const pathinv::Rational &A,
                     const pathinv::Rational &B) {
    Acc.subMul(A, B);
  }
  static void addMul(pathinv::Rational &Acc, const pathinv::Rational &A,
                     const pathinv::Rational &B) {
    Acc.addMul(A, B);
  }
};
struct RefAccumOps {
  static void subMul(refarith::Rational &Acc, const refarith::Rational &A,
                     const refarith::Rational &B) {
    Acc = Acc - A * B;
  }
  static void addMul(refarith::Rational &Acc, const refarith::Rational &A,
                     const refarith::Rational &B) {
    Acc = Acc + A * B;
  }
};

/// Runs the pivot workload \p Iters times per implementation, keeps the
/// fastest run each, and aborts on a checksum mismatch between the two.
void runRationalPivot(int Size, int Rounds, int Iters, MicroResult &Fast,
                      MicroResult &Ref) {
  std::string FastSum, RefSum;
  for (int I = 0; I < Iters; ++I) {
    auto Start = Clock::now();
    uint64_t Ops = rationalPivotWorkload<pathinv::Rational, FastAccumOps>(
        Size, Rounds, FastSum);
    double Ms = elapsedMs(Start, Clock::now());
    if (I == 0 || Ms < Fast.WallMs) {
      Fast.Ops = Ops;
      Fast.WallMs = Ms;
    }
  }
  for (int I = 0; I < Iters; ++I) {
    auto Start = Clock::now();
    uint64_t Ops = rationalPivotWorkload<refarith::Rational, RefAccumOps>(
        Size, Rounds, RefSum);
    double Ms = elapsedMs(Start, Clock::now());
    if (I == 0 || Ms < Ref.WallMs) {
      Ref.Ops = Ops;
      Ref.WallMs = Ms;
    }
  }
  if (FastSum != RefSum || Fast.Ops != Ref.Ops) {
    std::cerr << "[bench] rational-pivot differential mismatch: fast "
              << FastSum << " (" << Fast.Ops << " ops) vs reference "
              << RefSum << " (" << Ref.Ops << " ops)\n";
    std::abort();
  }
}

/// Incremental-query workload: the abstract-reach/CEGAR pattern of many
/// entailment checks against one shared prefix. A chain of N SSA-style
/// conjuncts (x0 = 0, x_{k+1} = x_k + 1) is the prefix; the queries ask
/// x_N <= bound for a sweep of bounds (a mix of entailed and refutable).
/// One-shot mode re-encodes prefix AND query through SmtSolver::checkSat
/// for every bound — the pre-redesign API. Context mode asserts the prefix
/// once into a SolverContext and flips one assumption literal per query.
/// Both modes must agree on every verdict; the harness aborts otherwise.
struct IncResult {
  uint64_t Queries = 0;
  double OneShotMs = 0;
  double ContextMs = 0;

  double speedup() const { return ContextMs > 0 ? OneShotMs / ContextMs : 0; }
};

IncResult incrementalWorkload(int ChainLen, int QueriesPerRound, int Rounds) {
  IncResult R;
  pathinv::TermManager TM;

  // Build the prefix chain and the query atoms.
  std::vector<const pathinv::Term *> Conjuncts;
  const pathinv::Term *Prev =
      TM.mkVar("x0", pathinv::Sort::Int);
  Conjuncts.push_back(TM.mkEq(Prev, TM.mkIntConst(0)));
  for (int K = 1; K <= ChainLen; ++K) {
    const pathinv::Term *Cur =
        TM.mkVar("x" + std::to_string(K), pathinv::Sort::Int);
    Conjuncts.push_back(TM.mkEq(Cur, TM.mkAdd(Prev, TM.mkIntConst(1))));
    Prev = Cur;
  }
  const pathinv::Term *Prefix = TM.mkAnd(Conjuncts);
  // x_N = ChainLen under the prefix; bounds straddle that value.
  std::vector<const pathinv::Term *> QueryAtoms;
  for (int Q = 0; Q < QueriesPerRound; ++Q) {
    int Bound = ChainLen - QueriesPerRound / 2 + Q;
    QueryAtoms.push_back(TM.mkLe(Prev, TM.mkIntConst(Bound)));
  }

  std::vector<bool> OneShotVerdicts;
  {
    auto Start = Clock::now();
    for (int Round = 0; Round < Rounds; ++Round) {
      // Fresh solver per round: the one-shot API memoizes by formula, and
      // the pre-redesign pattern pays the full re-encoding per round.
      pathinv::SmtSolver Solver(TM);
      for (const pathinv::Term *Atom : QueryAtoms) {
        bool Entailed = Solver.isUnsat(TM.mkAnd(Prefix, TM.mkNot(Atom)));
        if (Round == 0)
          OneShotVerdicts.push_back(Entailed);
      }
    }
    R.OneShotMs = elapsedMs(Start, Clock::now());
  }

  {
    auto Start = Clock::now();
    size_t Idx = 0;
    for (int Round = 0; Round < Rounds; ++Round) {
      pathinv::smt::SolverContext Ctx(TM);
      Ctx.assertTerm(Prefix);
      for (const pathinv::Term *Atom : QueryAtoms) {
        bool Entailed = Ctx.checkSat({TM.mkNot(Atom)}).isUnsat();
        if (Entailed != OneShotVerdicts[Idx % QueryAtoms.size()]) {
          std::cerr << "[bench] incremental/one-shot verdict mismatch\n";
          std::abort();
        }
        ++Idx;
      }
    }
    R.ContextMs = elapsedMs(Start, Clock::now());
  }
  R.Queries = static_cast<uint64_t>(Rounds) * QueryAtoms.size();
  return R;
}

/// Integer-split workload: an entailment chain whose every query needs
/// integrality and/or disequality splits. The prefix pins x0 = 2*s with
/// s >= 0 and steps by 2 (so the chain's last variable is even and
/// otherwise free); each query brackets twice the last variable within one
/// unit of a target and optionally adds the matching disequality, so the
/// rational relaxation is feasible at half-integers and the verdict is
/// only reachable by branching. The same query stream runs on two
/// contexts in the same process: one with the scoped branch-and-bound
/// (default budgets), one with it disabled (node budget 0) — the exact
/// pre-branch-and-bound behavior, where every split abandons the cached
/// tableau for a from-scratch solve. Verdicts must agree query-by-query
/// (differential check, abort on mismatch), the incremental context must
/// report zero scratch fallbacks, and the reference context must take
/// the scratch path at least once per split query.
struct SplitResult {
  uint64_t Queries = 0;
  double IncMs = 0;
  double ScratchMs = 0;
  uint64_t BnbNodes = 0;
  uint64_t IncFallbacks = 0;
  uint64_t RefFallbacks = 0;

  double speedup() const { return IncMs > 0 ? ScratchMs / IncMs : 0; }
};

SplitResult integerSplitWorkload(int ChainLen, int QueriesPerRound,
                                 int Rounds) {
  SplitResult R;
  pathinv::TermManager TM;

  // Prefix: x0 = 2*s, s >= 0, x_{k+1} = x_k + 2.
  const pathinv::Term *S = TM.mkVar("s", pathinv::Sort::Int);
  std::vector<const pathinv::Term *> Conjuncts;
  Conjuncts.push_back(
      TM.mkLe(TM.mkIntConst(0), S));
  const pathinv::Term *Prev = TM.mkVar("x0", pathinv::Sort::Int);
  Conjuncts.push_back(
      TM.mkEq(Prev, TM.mkMul(TM.mkIntConst(2), S)));
  for (int K = 1; K <= ChainLen; ++K) {
    const pathinv::Term *Cur =
        TM.mkVar("x" + std::to_string(K), pathinv::Sort::Int);
    Conjuncts.push_back(TM.mkEq(Cur, TM.mkAdd(Prev, TM.mkIntConst(2))));
    Prev = Cur;
  }
  const pathinv::Term *Prefix = TM.mkAnd(Conjuncts);
  const pathinv::Term *Last = Prev; // == 2*s + 2*ChainLen, even, free above.
  const pathinv::Term *Two = TM.mkIntConst(2);

  // Query q: bracket 2*Last in [2T-1, 2T+1]. Odd targets are unsat by
  // parity (integrality branches), even targets are sat unless the
  // matching disequality is added (disequality + integrality branches).
  std::vector<std::vector<const pathinv::Term *>> Queries;
  std::vector<bool> Expected;
  for (int Q = 0; Q < QueriesPerRound; ++Q) {
    int64_t Offset = 2 * (Q / 3 + 1);
    int64_t Target = 2 * ChainLen + Offset + (Q % 3 == 0 ? 1 : 0);
    std::vector<const pathinv::Term *> Assumps;
    Assumps.push_back(
        TM.mkLe(TM.mkIntConst(2 * Target - 1), TM.mkMul(Two, Last)));
    Assumps.push_back(
        TM.mkLe(TM.mkMul(Two, Last), TM.mkIntConst(2 * Target + 1)));
    if (Q % 3 == 2)
      Assumps.push_back(TM.mkNot(TM.mkEq(Last, TM.mkIntConst(Target))));
    Queries.push_back(std::move(Assumps));
    Expected.push_back(Q % 3 == 1); // Even target, no disequality.
  }

  auto runMode = [&](bool Bnb, double &Ms, uint64_t &Fallbacks,
                     uint64_t &Nodes) {
    pathinv::smt::SolverContext Ctx(TM);
    if (!Bnb)
      Ctx.setTheoryBnbBudgets(0, 0);
    Ctx.assertTerm(Prefix);
    auto Start = Clock::now();
    for (int Round = 0; Round < Rounds; ++Round) {
      for (size_t Q = 0; Q < Queries.size(); ++Q) {
        bool IsSat = Ctx.checkSat(Queries[Q]).isSat();
        if (IsSat != Expected[Q]) {
          std::cerr << "[bench] integer-split verdict mismatch (bnb="
                    << Bnb << ", query " << Q << ")\n";
          std::abort();
        }
      }
    }
    Ms = elapsedMs(Start, Clock::now());
    pathinv::smt::ContextStats Stats = Ctx.stats();
    Fallbacks = Stats.ScratchFallbacks;
    Nodes = Stats.BnbNodes;
  };

  uint64_t RefNodes = 0;
  runMode(/*Bnb=*/true, R.IncMs, R.IncFallbacks, R.BnbNodes);
  runMode(/*Bnb=*/false, R.ScratchMs, R.RefFallbacks, RefNodes);
  R.Queries = static_cast<uint64_t>(Rounds) * Queries.size();
  if (R.IncFallbacks != 0 || RefNodes != 0 || R.RefFallbacks == 0) {
    std::cerr << "[bench] integer-split mode mix-up: incremental fallbacks "
              << R.IncFallbacks << ", reference bnb nodes " << RefNodes
              << ", reference fallbacks " << R.RefFallbacks << "\n";
    std::abort();
  }
  return R;
}

struct E2EResult {
  std::string Program;
  std::string Verdict;
  double WallMs = 0;
  size_t PeakTerms = 0;
  uint64_t SmtQueries = 0;
  uint64_t TheoryChecks = 0;
  uint64_t SatConflicts = 0;
  uint64_t SatDecisions = 0;
  uint64_t SatPropagations = 0;
  uint64_t Refinements = 0;
  uint64_t AssumptionQueries = 0;
  uint64_t PathConjunctsReused = 0;
  uint64_t NodesExpanded = 0;
  uint64_t NodesReused = 0;
  std::string UnknownReason; // Empty unless a resource budget tripped.
  uint64_t GovernedPivots = 0;
  uint64_t GovernedSynthCombos = 0;
};

const char *verdictName(const pathinv::EngineResult &R) {
  switch (R.Verdict) {
  case pathinv::EngineResult::Verdict::Safe:
    return "safe";
  case pathinv::EngineResult::Verdict::Unsafe:
    return "unsafe";
  case pathinv::EngineResult::Verdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

/// Refinement-reuse workload: verify testprogs::sequentialLoops(Loops) —
/// one refinement per loop, >= 2 per loop in practice — on both
/// reachability engines. The ARG engine must agree on the verdict while
/// expanding a fraction of the nodes; the harness aborts on a verdict
/// mismatch (in-process differential check).
struct ReuseResult {
  int Loops = 0;
  std::string ArgVerdict, RestartVerdict;
  double ArgMs = 0, RestartMs = 0;
  uint64_t ArgNodes = 0, RestartNodes = 0;
  uint64_t ArgRefinements = 0, RestartRefinements = 0;
  uint64_t ArgReused = 0, ArgPruned = 0, ArgCovered = 0;

  double nodeRatio() const {
    return ArgNodes ? static_cast<double>(RestartNodes) /
                          static_cast<double>(ArgNodes)
                    : 0;
  }
  double speedup() const { return ArgMs > 0 ? RestartMs / ArgMs : 0; }
};

ReuseResult refinementReuseWorkload(int Loops) {
  ReuseResult R;
  R.Loops = Loops;
  std::string Src = pathinv::testprogs::sequentialLoops(Loops);
  auto run = [&](pathinv::ReachMode Mode, std::string &Verdict, double &Ms,
                 pathinv::EngineStats &Stats) {
    pathinv::EngineOptions Opts;
    // The interval backend keeps refinement cheap, so the measurement is
    // dominated by the reachability engines under comparison.
    Opts.Refiner = pathinv::RefinerKind::PathInvariantIntervals;
    Opts.Reach.Mode = Mode;
    pathinv::Verifier V(Opts);
    auto Start = Clock::now();
    auto Res = V.verifySource(Src);
    Ms = elapsedMs(Start, Clock::now());
    if (!Res) {
      Verdict = "error: " + Res.error().render();
      return;
    }
    Verdict = verdictName(Res.get());
    Stats = Res.get().Stats;
  };
  pathinv::EngineStats ArgStats, RestartStats;
  run(pathinv::ReachMode::Arg, R.ArgVerdict, R.ArgMs, ArgStats);
  run(pathinv::ReachMode::Restart, R.RestartVerdict, R.RestartMs,
      RestartStats);
  R.ArgNodes = ArgStats.NodesExpanded;
  R.RestartNodes = RestartStats.NodesExpanded;
  R.ArgRefinements = ArgStats.Refinements;
  R.RestartRefinements = RestartStats.Refinements;
  R.ArgReused = ArgStats.NodesReused;
  R.ArgPruned = ArgStats.NodesPruned;
  R.ArgCovered = ArgStats.NodesCovered;
  if (R.ArgVerdict != R.RestartVerdict) {
    std::cerr << "[bench] refinement-reuse verdict mismatch: arg "
              << R.ArgVerdict << " vs restart " << R.RestartVerdict << "\n";
    std::abort();
  }
  return R;
}

/// Whole-program synthesis on PARTITION: the constraint-based search the
/// CEGAR escalation ladder and the portfolio probe both end on for the
/// hard Safe programs. Measured directly so the hotspot has its own
/// trajectory line instead of hiding inside e2e walls. The throughput
/// unit is combos processed — LP feasibility checks plus cached-verdict
/// hits plus nogood prunes — so the learned mode and the learning-off
/// reference count identical search work however each discharged it.
/// Both modes must find the map and agree on the escalation level; a
/// miss or a disagreement aborts the harness (differential check, same
/// policy as rational_pivot's checksum).
struct SynthBenchResult {
  MicroResult Learned;   ///< Learning on, learner persisted across iters.
  MicroResult Reference; ///< Learning off: the pre-learning search.
  // Side-channel scalars of the learned mode's best run.
  uint64_t LpChecks = 0;
  uint64_t Nogoods = 0;
  uint64_t Deduped = 0;
  uint64_t Reused = 0;
  uint64_t Cuts = 0;
  int LevelUsed = -1;
  int LevelsTried = 0;

  double speedup() const {
    return Reference.opsPerSec() > 0
               ? Learned.opsPerSec() / Reference.opsPerSec()
               : 0;
  }
};

SynthBenchResult synthesisPartitionWorkload(int Iters) {
  SynthBenchResult R;
  auto runOnce = [](const pathinv::PathInvOptions &Opts, double &Ms) {
    pathinv::Verifier V;
    pathinv::Expected<pathinv::Program> P =
        V.loadSource(pathinv::testprogs::Partition);
    if (!P) {
      std::cerr << "[bench] synthesis-partition: cannot load program: "
                << P.error().render() << "\n";
      std::abort();
    }
    auto Start = Clock::now();
    pathinv::PathInvResult Res =
        pathinv::generatePathInvariants(P.get(), V.solver(), Opts);
    Ms = elapsedMs(Start, Clock::now());
    if (!Res.Found) {
      std::cerr << "[bench] synthesis-partition: search failed ("
                << Res.FailureReason << ")\n";
      std::abort();
    }
    return Res;
  };

  // Learned mode: one learner spans the iterations, the way the engines
  // hold one per job — the first run is cold, later runs measure the
  // warmed verdict cache (the steady state of repeated synthesis). At
  // least two runs even in smoke mode, so the best-of always saw the
  // cache warm.
  pathinv::SynthLearner Learner;
  const int LearnedIters = std::max(Iters, 2);
  for (int I = 0; I < LearnedIters; ++I) {
    pathinv::PathInvOptions Opts;
    Opts.Synth.Learner = &Learner;
    double Ms = 0;
    pathinv::PathInvResult Res = runOnce(Opts, Ms);
    uint64_t Ops = Res.LpChecks + Res.Learn.CombosDeduped +
                   Res.Learn.LemmasReused + Res.Learn.Nogoods;
    if (I == 0 || Ms < R.Learned.WallMs) {
      R.Learned.Ops = Ops;
      R.Learned.WallMs = Ms;
      R.LpChecks = Res.LpChecks;
      R.Nogoods = Res.Learn.Nogoods;
      R.Deduped = Res.Learn.CombosDeduped;
      R.Reused = Res.Learn.LemmasReused;
      R.Cuts = Res.Learn.Cuts;
      R.LevelUsed = Res.LevelUsed;
      R.LevelsTried = Res.LevelsTried;
    }
  }

  int RefLevel = -1;
  for (int I = 0; I < Iters; ++I) {
    pathinv::PathInvOptions Opts;
    Opts.Synth.Learning = false;
    double Ms = 0;
    pathinv::PathInvResult Res = runOnce(Opts, Ms);
    if (I == 0 || Ms < R.Reference.WallMs) {
      R.Reference.Ops = Res.LpChecks;
      R.Reference.WallMs = Ms;
      RefLevel = Res.LevelUsed;
    }
  }
  if (RefLevel != R.LevelUsed) {
    std::cerr << "[bench] synthesis-partition differential mismatch: "
              << "learned level " << R.LevelUsed << " vs reference level "
              << RefLevel << "\n";
    std::abort();
  }
  return R;
}

/// Delta-encoded frame churn: the PDR engine's bookkeeping inner loop
/// (addBlockedCube with subsumption pruning, isBlocked queries, clause
/// pushing, frame collection) on synthetic cubes over a literal pool,
/// with no solver on the measured path. Cube shapes repeat with both
/// subsumed and subsuming variants so the pruning paths run hot, the way
/// they do once generalization starts dropping literals. \returns the
/// operation count (the throughput unit); \p ClausesOut accumulates the
/// surviving clause total as an in-process sanity check.
uint64_t pdrFramesWorkload(int Rounds, uint64_t &ClausesOut) {
  pathinv::TermManager TM;
  constexpr int NumVars = 8;
  std::vector<const pathinv::Term *> Vars;
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(TM.mkVar("x" + std::to_string(I), pathinv::Sort::Int));
  // Literal pool: bounds in both directions over every variable.
  std::vector<const pathinv::Term *> Pool;
  for (int I = 0; I < NumVars; ++I)
    for (int B = 0; B < 4; ++B) {
      Pool.push_back(TM.mkLe(TM.mkIntConst(B), Vars[I]));
      Pool.push_back(TM.mkLe(Vars[I], TM.mkIntConst(8 + B)));
    }

  constexpr int NumLocs = 24;
  pathinv::Program P(TM, Vars);
  std::vector<pathinv::LocId> Locs;
  for (int I = 0; I < NumLocs; ++I)
    Locs.push_back(P.addLocation("l" + std::to_string(I)));
  P.setEntry(Locs.front());
  P.setError(Locs.back());

  constexpr int LevelsPerRound = 10;
  constexpr int CubesPerRound = 320;
  uint64_t Ops = 0;
  ClausesOut = 0;
  for (int R = 0; R < Rounds; ++R) {
    pathinv::pdr::Frames F(P);
    for (int L = 0; L < LevelsPerRound; ++L)
      F.extend();
    size_t Frontier = F.frontier();
    for (int C = 0; C < CubesPerRound; ++C) {
      // Entry (location 0) never takes clauses; cycle over the rest.
      pathinv::LocId Loc = Locs[1 + (C * 5 + R) % (NumLocs - 1)];
      size_t Level = 1 + static_cast<size_t>(C * 7 + R) % (Frontier - 1);
      pathinv::pdr::Cube Cube = {Pool[(C * 3 + R) % Pool.size()],
                                 Pool[(C * 11 + 1) % Pool.size()],
                                 Pool[(C * 17 + 2) % Pool.size()]};
      F.addBlockedCube(Level, Loc, Cube);
      ++Ops;
      // Every fourth cube re-lands as a generalized (subsuming) variant
      // one level higher, retiring the longer one it subsumes.
      if (C % 4 == 0) {
        Cube.pop_back();
        F.addBlockedCube(std::min(Level + 1, Frontier), Loc,
                         std::move(Cube));
        ++Ops;
      }
      pathinv::pdr::Cube Probe = {Pool[(C * 3 + R) % Pool.size()]};
      F.isBlocked(Level, Loc, Probe);
      ++Ops;
    }
    // Push sweep: move every surviving clause below the frontier up one
    // level, the way the propagation phase does after a frame settles.
    for (size_t Level = 1; Level < Frontier; ++Level)
      for (pathinv::LocId Loc : Locs)
        while (!F.cubesAt(Level, Loc).empty()) {
          F.pushCube(Level, Loc, 0);
          ++Ops;
        }
    std::vector<const pathinv::Term *> Clauses;
    for (pathinv::LocId Loc : Locs) {
      Clauses.clear();
      F.collectClauses(TM, 1, Loc, Clauses);
      ++Ops;
    }
    ClausesOut += F.totalClauses();
  }
  if (ClausesOut == 0) {
    std::cerr << "[bench] pdr-frames: churn left no clauses behind\n";
    std::abort();
  }
  return Ops;
}

/// Fuzz-oracle throughput: a fixed seed block through the full
/// differential pipeline — generate (with constructed ground truth), run
/// all three engines under the oracle's deterministic budgets, replay
/// every Unsafe witness, re-validate every Safe certificate. The
/// throughput unit is adjudicated programs; any adjudication bug aborts
/// the harness (the bench never records a number for a broken oracle).
struct FuzzOracleResult {
  int Programs = 0;
  double WallMs = 0;
  int SafeVerdicts = 0;
  int UnsafeVerdicts = 0;
  int UnknownVerdicts = 0;

  double opsPerSec() const {
    return WallMs > 0 ? 1000.0 * static_cast<double>(Programs) / WallMs : 0;
  }
};

FuzzOracleResult fuzzOracleWorkload(int Seeds) {
  FuzzOracleResult R;
  pathinv::fuzz::SweepOptions Opts;
  Opts.FirstSeed = 1;
  Opts.Count = Seeds;
  // Tight wall backstop (step budgets stay at the oracle defaults):
  // deadline-bound programs contribute a constant, machine-independent
  // 5 s per exhausted engine run instead of swamping the throughput
  // number with waiting.
  Opts.Oracle.Budget.TimeoutSeconds = 5;
  auto Start = Clock::now();
  pathinv::fuzz::SweepResult Sweep = pathinv::fuzz::runSweep(Opts);
  R.WallMs = elapsedMs(Start, Clock::now());
  if (!Sweep.ok()) {
    std::cerr << "[bench] fuzz-oracle: " << Sweep.BugReports.size()
              << " adjudication bugs in the fixed seed block\n";
    for (const pathinv::fuzz::OracleReport &Rep : Sweep.BugReports)
      for (const std::string &Bug : Rep.Bugs)
        std::cerr << "[bench]   seed " << Rep.Seed << ": " << Bug << "\n";
    std::abort();
  }
  R.Programs = Sweep.Programs;
  R.SafeVerdicts = Sweep.SafeVerdicts;
  R.UnsafeVerdicts = Sweep.UnsafeVerdicts;
  R.UnknownVerdicts = Sweep.UnknownVerdicts;
  return R;
}

/// Generous budgets for the governed e2e runs: far above what any of the
/// paper programs needs (partition, the heaviest, uses ~45k pivots and
/// ~20k synth combos), but finite — so every charge site performs the
/// real budget comparison and the bench measures the checkpoints' true
/// overhead. An exhaustion under these limits is a regression.
pathinv::ResourceLimits generousLimits() {
  pathinv::ResourceLimits L;
  L.TimeoutSeconds = 600;
  L.MemoryBytes = 1ull << 30;
  L.SatConflicts = 50'000'000;
  L.Pivots = 200'000'000;
  L.BnbNodes = 10'000'000;
  L.SynthCombos = 50'000'000;
  L.ArgExpansions = 1'000'000;
  L.Refinements = 10'000;
  return L;
}

E2EResult runProgramOnce(const char *Name, const char *Source) {
  E2EResult R;
  R.Program = Name;
  pathinv::Verifier V;
  V.options().Limits = generousLimits();
  auto Start = Clock::now();
  pathinv::Expected<pathinv::EngineResult> Res = V.verifySource(Source);
  R.WallMs = elapsedMs(Start, Clock::now());
  if (!Res) {
    R.Verdict = "error: " + Res.error().render();
  } else {
    R.Verdict = verdictName(Res.get());
    R.Refinements = Res.get().Stats.Refinements;
    R.AssumptionQueries = Res.get().Stats.AssumptionQueries;
    R.PathConjunctsReused = Res.get().Stats.PathConjunctsReused;
    R.NodesExpanded = Res.get().Stats.NodesExpanded;
    R.NodesReused = Res.get().Stats.NodesReused;
    R.UnknownReason = Res.get().UnknownReason;
    R.GovernedPivots = Res.get().Stats.Resources.Pivots;
    R.GovernedSynthCombos = Res.get().Stats.Resources.SynthCombos;
  }
  R.PeakTerms = V.termManager().numTerms();
  R.SmtQueries = V.solver().numQueries();
  R.TheoryChecks = V.solver().numTheoryChecks();
  R.SatConflicts = V.solver().numSatConflicts();
  R.SatDecisions = V.solver().numSatDecisions();
  R.SatPropagations = V.solver().numSatPropagations();
  return R;
}

/// Best-of-\p Iters end-to-end run (fresh verifier per iteration), same
/// keep-the-fastest policy as the microbenchmarks: the verification work
/// is deterministic, so the minimum wall time is the least-noisy sample
/// and the counters are identical across iterations.
E2EResult runProgram(const char *Name, const char *Source, int Iters) {
  E2EResult Best;
  for (int I = 0; I < Iters; ++I) {
    E2EResult R = runProgramOnce(Name, Source);
    if (I == 0 || R.WallMs < Best.WallMs)
      Best = std::move(R);
  }
  return Best;
}

/// One governed run of an alternate engine (pdr or the portfolio) on the
/// same program, for the three-way e2e comparison. Only the fields that
/// are meaningful across engines are kept; the cegar run carries the
/// detailed solver counters.
struct EngineRun {
  std::string Verdict;
  double WallMs = 0;
  std::string UnknownReason;
  uint64_t PdrFrames = 0;
  uint64_t PdrObligations = 0;
  uint64_t PdrClausesLearned = 0;
  uint64_t PdrClausesPushed = 0;
};

EngineRun runEngineOnce(pathinv::EngineKind Kind, const char *Source) {
  EngineRun R;
  pathinv::EngineOptions Opts;
  Opts.Engine = Kind;
  Opts.Limits = generousLimits();
  pathinv::Verifier V(Opts);
  auto Start = Clock::now();
  pathinv::Expected<pathinv::EngineResult> Res = V.verifySource(Source);
  R.WallMs = elapsedMs(Start, Clock::now());
  if (!Res) {
    R.Verdict = "error: " + Res.error().render();
    return R;
  }
  R.Verdict = verdictName(Res.get());
  R.UnknownReason = Res.get().UnknownReason;
  R.PdrFrames = Res.get().Stats.PdrFrames;
  R.PdrObligations = Res.get().Stats.PdrObligations;
  R.PdrClausesLearned = Res.get().Stats.PdrClausesLearned;
  R.PdrClausesPushed = Res.get().Stats.PdrClausesPushed;
  return R;
}

EngineRun runEngine(pathinv::EngineKind Kind, const char *Source,
                    int Iters) {
  EngineRun Best;
  for (int I = 0; I < Iters; ++I) {
    EngineRun R = runEngineOnce(Kind, Source);
    if (I == 0 || R.WallMs < Best.WallMs)
      Best = std::move(R);
  }
  return Best;
}

/// Full three-engine entry for one program. `PortfolioRatio` is the
/// acceptance metric: portfolio wall over the better single engine's
/// wall, best-of-iters on both sides, gated at 1.2 by the regression
/// checker.
struct E2EEntry {
  E2EResult Cegar;
  EngineRun Pdr;
  EngineRun Portfolio;

  double bestSingleMs() const { return std::min(Cegar.WallMs, Pdr.WallMs); }
  double portfolioRatio() const {
    return bestSingleMs() > 0 ? Portfolio.WallMs / bestSingleMs() : 0;
  }
};

void emitMicro(std::ostream &Out, const char *Key, const char *NewMode,
               const MicroResult &New, const MicroResult &Ref) {
  auto Entry = [&](const char *Mode, const MicroResult &M) {
    Out << "      \"" << Mode << "\": {\"ops\": " << M.Ops
        << ", \"wall_ms\": " << M.WallMs
        << ", \"ops_per_sec\": " << M.opsPerSec()
        << ", \"peak_terms\": " << M.PeakTerms << "}";
  };
  Out << "    \"" << Key << "\": {\n";
  Entry(NewMode, New);
  Out << ",\n";
  Entry("reference", Ref);
  Out << ",\n      \"speedup_vs_reference\": "
      << (New.opsPerSec() > 0 && Ref.opsPerSec() > 0
              ? New.opsPerSec() / Ref.opsPerSec()
              : 0)
      << "\n    }";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_9.json";
  int Iters = 5;
  bool Smoke = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--iters") == 0 && I + 1 < Argc) {
      Iters = std::atoi(Argv[++I]);
    } else if (std::strcmp(Argv[I], "--smoke") == 0) {
      Smoke = true;
    } else {
      std::cerr << "usage: pathinv_bench [--out FILE] [--iters N] [--smoke]\n";
      return 2;
    }
  }
  if (Smoke)
    Iters = 1;
  Iters = std::max(Iters, 1);
  const int ConstructRounds = Smoke ? 200 : 4000;
  const int RewriteRounds = Smoke ? 100 : 2000;
  const int PivotSize = 10;
  const int PivotRounds = Smoke ? 25 : 400;
  const int IncChainLen = Smoke ? 40 : 120;
  const int IncQueries = Smoke ? 16 : 40;
  const int IncRounds = Smoke ? 5 : 25;
  const int SplitChainLen = Smoke ? 40 : 100;
  const int SplitQueries = Smoke ? 12 : 30;
  const int SplitRounds = Smoke ? 5 : 20;
  const int ReuseLoops = Smoke ? 4 : 10;
  // Whole-program synthesis on PARTITION is seconds per run; best-of-2
  // keeps the full bench bounded while still shedding warm-up noise.
  const int SynthIters = Smoke ? 1 : std::min(Iters, 2);
  const int FrameRounds = Smoke ? 20 : 200;
  // Single pass (no best-of-iters): the sweep is deterministic and wide
  // enough (every program x three engines x replay/validation) that one
  // run is a stable throughput sample.
  const int FuzzSeeds = Smoke ? 10 : 40;

  // Fail on an unwritable output path now, not after minutes of benching.
  std::ofstream Out(OutPath);
  if (!Out) {
    std::cerr << "cannot write " << OutPath << "\n";
    return 1;
  }

  std::cerr << "[bench] microbench: construct (" << ConstructRounds
            << " rounds x " << Iters << " iters)\n";
  MicroResult ConstructArena = runMicro<ArenaCore>(
      [](ArenaCore::Manager &TM, int Rounds) {
        return constructWorkload<ArenaCore>(TM, Rounds);
      },
      ConstructRounds, Iters);
  MicroResult ConstructRef = runMicro<ReferenceCore>(
      [](ReferenceCore::Manager &TM, int Rounds) {
        return constructWorkload<ReferenceCore>(TM, Rounds);
      },
      ConstructRounds, Iters);

  std::cerr << "[bench] microbench: rewrite (" << RewriteRounds
            << " rounds x " << Iters << " iters)\n";
  MicroResult RewriteArena = runMicro<ArenaCore>(
      [](ArenaCore::Manager &TM, int Rounds) {
        return rewriteWorkload<ArenaCore>(TM, Rounds);
      },
      RewriteRounds, Iters);
  MicroResult RewriteRef = runMicro<ReferenceCore>(
      [](ReferenceCore::Manager &TM, int Rounds) {
        return rewriteWorkload<ReferenceCore>(TM, Rounds);
      },
      RewriteRounds, Iters);

  std::cerr << "[bench] microbench: rational-pivot (" << PivotSize << "x"
            << PivotSize << " x " << PivotRounds << " rounds x " << Iters
            << " iters)\n";
  MicroResult PivotFast, PivotRef;
  runRationalPivot(PivotSize, PivotRounds, Iters, PivotFast, PivotRef);
  std::cerr << "[bench]   fast " << PivotFast.WallMs << " ms, reference "
            << PivotRef.WallMs << " ms (speedup "
            << (PivotRef.WallMs > 0 ? PivotFast.opsPerSec() /
                                          PivotRef.opsPerSec()
                                    : 0)
            << "x)\n";

  std::cerr << "[bench] incremental entailment (chain " << IncChainLen
            << ", " << IncQueries << " queries x " << IncRounds
            << " rounds)\n";
  IncResult Inc = incrementalWorkload(IncChainLen, IncQueries, IncRounds);
  std::cerr << "[bench]   one-shot " << Inc.OneShotMs << " ms, context "
            << Inc.ContextMs << " ms (speedup " << Inc.speedup() << "x)\n";

  std::cerr << "[bench] integer split (chain " << SplitChainLen << ", "
            << SplitQueries << " queries x " << SplitRounds << " rounds)\n";
  SplitResult Split =
      integerSplitWorkload(SplitChainLen, SplitQueries, SplitRounds);
  std::cerr << "[bench]   scoped b&b " << Split.IncMs << " ms ("
            << Split.BnbNodes << " nodes, " << Split.IncFallbacks
            << " fallbacks), scratch " << Split.ScratchMs << " ms ("
            << Split.RefFallbacks << " fallbacks) — speedup "
            << Split.speedup() << "x\n";

  std::cerr << "[bench] synthesis-partition (" << SynthIters
            << " iters, learned vs learning-off reference)\n";
  SynthBenchResult Synth = synthesisPartitionWorkload(SynthIters);
  std::cerr << "[bench]   learned " << Synth.Learned.Ops << " combos in "
            << Synth.Learned.WallMs << " ms (" << Synth.Learned.opsPerSec()
            << " /s; " << Synth.LpChecks << " LP checks, " << Synth.Nogoods
            << " nogoods, " << Synth.Deduped << " deduped, " << Synth.Reused
            << " reused), reference " << Synth.Reference.Ops
            << " combos in " << Synth.Reference.WallMs << " ms ("
            << Synth.Reference.opsPerSec() << " /s) — speedup "
            << Synth.speedup() << "x, template level " << Synth.LevelUsed
            << "\n";

  std::cerr << "[bench] pdr-frames (" << FrameRounds << " rounds x "
            << Iters << " iters)\n";
  MicroResult Frames;
  uint64_t FrameClauses = 0;
  for (int I = 0; I < Iters; ++I) {
    uint64_t Clauses = 0;
    auto Start = Clock::now();
    uint64_t Ops = pdrFramesWorkload(FrameRounds, Clauses);
    double Ms = elapsedMs(Start, Clock::now());
    if (I == 0 || Ms < Frames.WallMs) {
      Frames.Ops = Ops;
      Frames.WallMs = Ms;
      FrameClauses = Clauses;
    }
  }
  std::cerr << "[bench]   " << Frames.Ops << " frame ops in "
            << Frames.WallMs << " ms (" << Frames.opsPerSec() << " /s)\n";

  std::cerr << "[bench] fuzz-oracle (" << FuzzSeeds
            << " seeds x 3 engines, witness-exact adjudication)\n";
  FuzzOracleResult Fuzz = fuzzOracleWorkload(FuzzSeeds);
  std::cerr << "[bench]   " << Fuzz.Programs << " programs in "
            << Fuzz.WallMs << " ms (" << Fuzz.opsPerSec() << " /s; "
            << Fuzz.SafeVerdicts << " safe certified, "
            << Fuzz.UnsafeVerdicts << " unsafe replayed, "
            << Fuzz.UnknownVerdicts << " unknown)\n";

  std::cerr << "[bench] refinement reuse (" << ReuseLoops
            << " sequential loops, arg vs restart)\n";
  ReuseResult Reuse = refinementReuseWorkload(ReuseLoops);
  std::cerr << "[bench]   arg " << Reuse.ArgMs << " ms / "
            << Reuse.ArgNodes << " nodes, restart " << Reuse.RestartMs
            << " ms / " << Reuse.RestartNodes << " nodes (node ratio "
            << Reuse.nodeRatio() << "x, speedup " << Reuse.speedup()
            << "x)\n";

  struct {
    const char *Name;
    const char *Source;
  } Programs[] = {
      {"forward", pathinv::testprogs::Forward},
      {"init_check", pathinv::testprogs::InitCheck},
      {"partition", pathinv::testprogs::Partition},
      {"init_check_buggy", pathinv::testprogs::InitCheckBuggy},
      {"scalar_bug", pathinv::testprogs::ScalarBug},
      {"straight_safe", pathinv::testprogs::StraightSafe},
  };
  std::vector<E2EEntry> E2E;
  double E2ETotalMs = 0, PdrTotalMs = 0, PortfolioTotalMs = 0;
  for (const auto &P : Programs) {
    std::cerr << "[bench] end-to-end: " << P.Name << "\n";
    E2EEntry Entry;
    Entry.Cegar = runProgram(P.Name, P.Source, Iters);
    Entry.Pdr = runEngine(pathinv::EngineKind::Pdr, P.Source, Iters);
    Entry.Portfolio =
        runEngine(pathinv::EngineKind::Portfolio, P.Source, Iters);
    if (Entry.Cegar.Verdict != Entry.Pdr.Verdict ||
        Entry.Cegar.Verdict != Entry.Portfolio.Verdict) {
      std::cerr << "[bench] engine verdict mismatch on " << P.Name
                << ": cegar " << Entry.Cegar.Verdict << ", pdr "
                << Entry.Pdr.Verdict << ", portfolio "
                << Entry.Portfolio.Verdict << "\n";
      std::abort();
    }
    E2ETotalMs += Entry.Cegar.WallMs;
    PdrTotalMs += Entry.Pdr.WallMs;
    PortfolioTotalMs += Entry.Portfolio.WallMs;
    std::cerr << "[bench]   " << Entry.Cegar.Verdict << ": cegar "
              << Entry.Cegar.WallMs << " ms, pdr " << Entry.Pdr.WallMs
              << " ms, portfolio " << Entry.Portfolio.WallMs
              << " ms (ratio " << Entry.portfolioRatio() << "x)\n";
    for (const std::string &Reason :
         {Entry.Cegar.UnknownReason, Entry.Pdr.UnknownReason,
          Entry.Portfolio.UnknownReason})
      if (!Reason.empty())
        std::cerr << "[bench]   WARNING: exhausted resource budget ("
                  << Reason << ") under generous limits\n";
    E2E.push_back(std::move(Entry));
  }

  std::ostringstream Json;
  Json << "{\n";
  Json << "  \"schema\": \"pathinv-bench-v9\",\n";
  Json << "  \"config\": {\"iters\": " << Iters
       << ", \"smoke\": " << (Smoke ? "true" : "false")
       << ", \"construct_rounds\": " << ConstructRounds
       << ", \"rewrite_rounds\": " << RewriteRounds
       << ", \"pivot_size\": " << PivotSize
       << ", \"pivot_rounds\": " << PivotRounds
       << ", \"inc_chain_len\": " << IncChainLen
       << ", \"inc_queries\": " << IncQueries
       << ", \"inc_rounds\": " << IncRounds
       << ", \"split_chain_len\": " << SplitChainLen
       << ", \"split_queries\": " << SplitQueries
       << ", \"split_rounds\": " << SplitRounds
       << ", \"reuse_loops\": " << ReuseLoops
       << ", \"synth_iters\": " << SynthIters
       << ", \"frame_rounds\": " << FrameRounds
       << ", \"fuzz_seeds\": " << FuzzSeeds
       << ", \"e2e_governed\": true, \"e2e_engines\": 3},\n";
  Json << "  \"microbench\": {\n";
  emitMicro(Json, "construct", "arena", ConstructArena, ConstructRef);
  Json << ",\n";
  emitMicro(Json, "rewrite", "arena", RewriteArena, RewriteRef);
  Json << ",\n";
  emitMicro(Json, "rational_pivot", "fast", PivotFast, PivotRef);
  Json << ",\n";
  {
    // Same differential-checksum style as rational_pivot: both modes run
    // the identical query stream in-process and must agree (the workload
    // aborts otherwise). "reference" is the scratch-fallback path (node
    // budget 0 — the pre-branch-and-bound behavior).
    auto SplitOps = [&](double Ms) {
      return Ms > 0 ? 1000.0 * static_cast<double>(Split.Queries) / Ms : 0;
    };
    Json << "    \"integer_split\": {\n"
         << "      \"incremental\": {\"ops\": " << Split.Queries
         << ", \"wall_ms\": " << Split.IncMs
         << ", \"ops_per_sec\": " << SplitOps(Split.IncMs) << "},\n"
         << "      \"reference\": {\"ops\": " << Split.Queries
         << ", \"wall_ms\": " << Split.ScratchMs
         << ", \"ops_per_sec\": " << SplitOps(Split.ScratchMs) << "},\n"
         << "      \"speedup_vs_reference\": " << Split.speedup() << ",\n"
         << "      \"bnb_nodes\": " << Split.BnbNodes << ",\n"
         << "      \"scratch_fallbacks\": " << Split.IncFallbacks << ",\n"
         << "      \"reference_scratch_fallbacks\": " << Split.RefFallbacks
         << "\n    }";
  }
  Json << ",\n";
  // Conflict-learning differential: "synthesis" is the learned search
  // (ops = combos processed: LP checks + cached-verdict hits + nogood
  // prunes), "reference" the learning-off pre-learning search on the
  // same program (its every combo costs an LP check). Both found the
  // map at the same template level or the harness would have aborted.
  // The synth_* scalars are side-channel fields for trajectory reading,
  // skipped by the regression checker's mode scan.
  Json << "    \"synthesis_partition\": {\n"
       << "      \"synthesis\": {\"ops\": " << Synth.Learned.Ops
       << ", \"wall_ms\": " << Synth.Learned.WallMs
       << ", \"ops_per_sec\": " << Synth.Learned.opsPerSec() << "},\n"
       << "      \"reference\": {\"ops\": " << Synth.Reference.Ops
       << ", \"wall_ms\": " << Synth.Reference.WallMs
       << ", \"ops_per_sec\": " << Synth.Reference.opsPerSec() << "},\n"
       << "      \"speedup_vs_reference\": " << Synth.speedup() << ",\n"
       << "      \"lp_checks\": " << Synth.LpChecks << ",\n"
       << "      \"synth_nogoods\": " << Synth.Nogoods << ",\n"
       << "      \"synth_combos_deduped\": " << Synth.Deduped << ",\n"
       << "      \"synth_lemmas_reused\": " << Synth.Reused << ",\n"
       << "      \"synth_cuts\": " << Synth.Cuts << ",\n"
       << "      \"template_level_used\": " << Synth.LevelUsed << ",\n"
       << "      \"template_levels_tried\": " << Synth.LevelsTried
       << "\n    },\n";
  Json << "    \"pdr_frames\": {\n"
       << "      \"frames\": {\"ops\": " << Frames.Ops
       << ", \"wall_ms\": " << Frames.WallMs
       << ", \"ops_per_sec\": " << Frames.opsPerSec() << "},\n"
       << "      \"surviving_clauses\": " << FrameClauses << "\n    },\n";
  // Differential-oracle throughput (adjudicated programs/s): generate,
  // verify under three engines, replay every witness, validate every
  // certificate. Zero tolerated bugs — the workload aborts otherwise, so
  // a recorded number always describes a sound oracle.
  Json << "    \"fuzz_oracle\": {\n"
       << "      \"oracle\": {\"ops\": " << Fuzz.Programs
       << ", \"wall_ms\": " << Fuzz.WallMs
       << ", \"ops_per_sec\": " << Fuzz.opsPerSec() << "},\n"
       << "      \"safe_certified\": " << Fuzz.SafeVerdicts << ",\n"
       << "      \"unsafe_replayed\": " << Fuzz.UnsafeVerdicts << ",\n"
       << "      \"unknown\": " << Fuzz.UnknownVerdicts << "\n    }";
  Json << "\n  },\n";
  Json << "  \"incremental\": {\"queries\": " << Inc.Queries
       << ", \"one_shot_wall_ms\": " << Inc.OneShotMs
       << ", \"context_wall_ms\": " << Inc.ContextMs
       << ", \"speedup_vs_one_shot\": " << Inc.speedup() << "},\n";
  Json << "  \"refinement_reuse\": {\"loops\": " << Reuse.Loops
       << ",\n    \"arg\": {\"verdict\": \"" << Reuse.ArgVerdict
       << "\", \"wall_ms\": " << Reuse.ArgMs
       << ", \"nodes_expanded\": " << Reuse.ArgNodes
       << ", \"refinements\": " << Reuse.ArgRefinements
       << ", \"nodes_reused\": " << Reuse.ArgReused
       << ", \"nodes_pruned\": " << Reuse.ArgPruned
       << ", \"nodes_covered\": " << Reuse.ArgCovered << "},\n"
       << "    \"restart\": {\"verdict\": \"" << Reuse.RestartVerdict
       << "\", \"wall_ms\": " << Reuse.RestartMs
       << ", \"nodes_expanded\": " << Reuse.RestartNodes
       << ", \"refinements\": " << Reuse.RestartRefinements << "},\n"
       << "    \"node_ratio\": " << Reuse.nodeRatio()
       << ", \"speedup_vs_restart\": " << Reuse.speedup() << "},\n";
  Json << "  \"end_to_end\": [\n";
  for (size_t I = 0; I < E2E.size(); ++I) {
    const E2EResult &R = E2E[I].Cegar;
    const EngineRun &Pdr = E2E[I].Pdr;
    const EngineRun &Pf = E2E[I].Portfolio;
    // Top-level fields are the cegar (default engine) run, keeping every
    // v6 counter comparable; the alternate engines nest under "pdr" and
    // "portfolio".
    Json << "    {\"program\": \"" << R.Program << "\", \"verdict\": \""
         << R.Verdict << "\", \"wall_ms\": " << R.WallMs
         << ", \"peak_terms\": " << R.PeakTerms
         << ", \"smt_queries\": " << R.SmtQueries
         << ", \"theory_checks\": " << R.TheoryChecks
         << ", \"sat_conflicts\": " << R.SatConflicts
         << ", \"sat_decisions\": " << R.SatDecisions
         << ", \"sat_propagations\": " << R.SatPropagations
         << ", \"refinements\": " << R.Refinements
         << ", \"assumption_queries\": " << R.AssumptionQueries
         << ", \"path_conjuncts_reused\": " << R.PathConjunctsReused
         << ", \"nodes_expanded\": " << R.NodesExpanded
         << ", \"nodes_reused\": " << R.NodesReused
         << ", \"unknown_reason\": \"" << R.UnknownReason << "\""
         << ", \"governed_pivots\": " << R.GovernedPivots
         << ", \"governed_synth_combos\": " << R.GovernedSynthCombos
         << ",\n     \"pdr\": {\"verdict\": \"" << Pdr.Verdict
         << "\", \"wall_ms\": " << Pdr.WallMs
         << ", \"frames\": " << Pdr.PdrFrames
         << ", \"obligations\": " << Pdr.PdrObligations
         << ", \"clauses_learned\": " << Pdr.PdrClausesLearned
         << ", \"clauses_pushed\": " << Pdr.PdrClausesPushed
         << ", \"unknown_reason\": \"" << Pdr.UnknownReason << "\"}"
         << ",\n     \"portfolio\": {\"verdict\": \"" << Pf.Verdict
         << "\", \"wall_ms\": " << Pf.WallMs
         << ", \"unknown_reason\": \"" << Pf.UnknownReason << "\"}"
         << ", \"portfolio_ratio\": " << E2E[I].portfolioRatio() << "}"
         << (I + 1 < E2E.size() ? "," : "") << "\n";
  }
  Json << "  ],\n";
  // Kept as the cegar sum for continuity with the v6 trajectory line; the
  // per-engine totals sit alongside.
  Json << "  \"end_to_end_total_wall_ms\": " << E2ETotalMs << ",\n";
  Json << "  \"end_to_end_engine_totals\": {\"cegar\": " << E2ETotalMs
       << ", \"pdr\": " << PdrTotalMs
       << ", \"portfolio\": " << PortfolioTotalMs << "}\n";
  Json << "}\n";

  Out << Json.str();
  std::cerr << "[bench] wrote " << OutPath << "\n";
  std::cout << Json.str();
  return 0;
}
