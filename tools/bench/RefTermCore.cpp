//===- tools/bench/RefTermCore.cpp - Pre-refactor reference term core -----===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "RefTermCore.h"

#include <algorithm>

using namespace refcore;

static size_t hashTermKey(TermKind K, Sort S, const Rational &Value,
                          const std::string &Name,
                          const std::vector<const Term *> &Ops) {
  size_t H = static_cast<size_t>(K) * 31 + static_cast<size_t>(S);
  H = H * 1000003u + Value.hash();
  H = H * 1000003u + std::hash<std::string>()(Name);
  for (const Term *Op : Ops)
    H = H * 1000003u + Op->id();
  return H;
}

TermManager::TermManager() {
  TrueTerm = intern(TermKind::True, Sort::Bool, Rational(), "", {});
  FalseTerm = intern(TermKind::False, Sort::Bool, Rational(), "", {});
}

const Term *TermManager::intern(TermKind K, Sort S, Rational Value,
                                std::string Name,
                                std::vector<const Term *> Ops) {
  size_t H = hashTermKey(K, S, Value, Name, Ops);
  auto &Bucket = UniqueTable[H];
  for (const Term *Existing : Bucket) {
    if (Existing->Kind == K && Existing->TermSort == S &&
        Existing->Value == Value && Existing->Name == Name &&
        Existing->Ops == Ops)
      return Existing;
  }
  auto Node = std::unique_ptr<Term>(new Term());
  Node->Kind = K;
  Node->TermSort = S;
  Node->Id = static_cast<uint32_t>(AllTerms.size());
  Node->Value = std::move(Value);
  Node->Name = std::move(Name);
  Node->Ops = std::move(Ops);
  const Term *Result = Node.get();
  AllTerms.push_back(std::move(Node));
  Bucket.push_back(Result);
  return Result;
}

const Term *TermManager::mkIntConst(Rational Value) {
  return intern(TermKind::IntConst, Sort::Int, std::move(Value), "", {});
}

const Term *TermManager::mkVar(std::string_view Name, Sort S) {
  return intern(TermKind::Var, S, Rational(), std::string(Name), {});
}

const Term *TermManager::mkAdd(std::vector<const Term *> Ops) {
  std::vector<const Term *> Flat;
  Rational ConstSum;
  for (const Term *Op : Ops) {
    if (Op->kind() == TermKind::Add) {
      for (const Term *Sub : Op->operands()) {
        if (Sub->isIntConst())
          ConstSum += Sub->value();
        else
          Flat.push_back(Sub);
      }
    } else if (Op->isIntConst()) {
      ConstSum += Op->value();
    } else {
      Flat.push_back(Op);
    }
  }
  if (!ConstSum.isZero() || Flat.empty())
    Flat.push_back(mkIntConst(ConstSum));
  if (Flat.size() == 1)
    return Flat[0];
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  return intern(TermKind::Add, Sort::Int, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkMul(const Term *A, const Term *B) {
  if (A->isIntConst() && B->isIntConst())
    return mkIntConst(A->value() * B->value());
  if (B->isIntConst())
    std::swap(A, B);
  if (A->isIntConst()) {
    if (A->value().isZero())
      return mkIntConst(Rational());
    if (A->value().isOne())
      return B;
    if (B->kind() == TermKind::Mul && B->operand(0)->isIntConst())
      return mkMul(mkIntConst(A->value() * B->operand(0)->value()),
                   B->operand(1));
  }
  return intern(TermKind::Mul, Sort::Int, Rational(), "", {A, B});
}

const Term *TermManager::mkEq(const Term *A, const Term *B) {
  if (A == B)
    return mkTrue();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() == B->value());
  if (TermIdLess()(B, A))
    std::swap(A, B);
  return intern(TermKind::Eq, Sort::Bool, Rational(), "", {A, B});
}

const Term *TermManager::mkLe(const Term *A, const Term *B) {
  if (A == B)
    return mkTrue();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() <= B->value());
  return intern(TermKind::Le, Sort::Bool, Rational(), "", {A, B});
}

const Term *TermManager::mkLt(const Term *A, const Term *B) {
  if (A == B)
    return mkFalse();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() < B->value());
  return intern(TermKind::Lt, Sort::Bool, Rational(), "", {A, B});
}

const Term *TermManager::mkNot(const Term *A) {
  switch (A->kind()) {
  case TermKind::True:
    return mkFalse();
  case TermKind::False:
    return mkTrue();
  case TermKind::Not:
    return A->operand(0);
  case TermKind::Le:
    return mkLt(A->operand(1), A->operand(0));
  case TermKind::Lt:
    return mkLe(A->operand(1), A->operand(0));
  default:
    return intern(TermKind::Not, Sort::Bool, Rational(), "", {A});
  }
}

const Term *TermManager::mkAnd(std::vector<const Term *> Ops) {
  std::vector<const Term *> Flat;
  for (const Term *Op : Ops) {
    if (Op->isFalse())
      return mkFalse();
    if (Op->isTrue())
      continue;
    if (Op->kind() == TermKind::And)
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
    else
      Flat.push_back(Op);
  }
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::And, Sort::Bool, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkOr(std::vector<const Term *> Ops) {
  std::vector<const Term *> Flat;
  for (const Term *Op : Ops) {
    if (Op->isTrue())
      return mkTrue();
    if (Op->isFalse())
      continue;
    if (Op->kind() == TermKind::Or)
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
    else
      Flat.push_back(Op);
  }
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::Or, Sort::Bool, Rational(), "", std::move(Flat));
}

namespace {

/// The seed's memoized bottom-up rewriter, cut down to substitution.
class Rewriter {
public:
  Rewriter(TermManager &TM, const TermMap &Subst) : TM(TM), Subst(Subst) {}

  const Term *visit(const Term *T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    const Term *Result = visitUncached(T);
    Cache[T] = Result;
    return Result;
  }

private:
  const Term *visitUncached(const Term *T) {
    auto Hit = Subst.find(T);
    if (Hit != Subst.end())
      return Hit->second;
    switch (T->kind()) {
    case TermKind::IntConst:
    case TermKind::Var:
    case TermKind::True:
    case TermKind::False:
      return T;
    default:
      break;
    }
    std::vector<const Term *> NewOps;
    NewOps.reserve(T->numOperands());
    bool Changed = false;
    for (const Term *Op : T->operands()) {
      const Term *NewOp = visit(Op);
      Changed |= NewOp != Op;
      NewOps.push_back(NewOp);
    }
    if (!Changed)
      return T;
    switch (T->kind()) {
    case TermKind::Add:
      return TM.mkAdd(std::move(NewOps));
    case TermKind::Mul:
      return TM.mkMul(NewOps[0], NewOps[1]);
    case TermKind::Eq:
      return TM.mkEq(NewOps[0], NewOps[1]);
    case TermKind::Le:
      return TM.mkLe(NewOps[0], NewOps[1]);
    case TermKind::Lt:
      return TM.mkLt(NewOps[0], NewOps[1]);
    case TermKind::Not:
      return TM.mkNot(NewOps[0]);
    case TermKind::And:
      return TM.mkAnd(std::move(NewOps));
    case TermKind::Or:
      return TM.mkOr(std::move(NewOps));
    default:
      return T;
    }
  }

  TermManager &TM;
  const TermMap &Subst;
  std::map<const Term *, const Term *, TermIdLess> Cache;
};

} // namespace

const Term *refcore::substitute(TermManager &TM, const Term *T,
                                const TermMap &Subst) {
  if (Subst.empty())
    return T;
  Rewriter R(TM, Subst);
  return R.visit(T);
}
