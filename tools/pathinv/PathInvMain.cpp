//===- tools/pathinv/PathInvMain.cpp - CLI verification driver ------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: verify a PIL procedure from a file (or stdin).
///
/// Usage: pathinv [options] <file.pil | ->
///   --refiner=pathinv|intervals|pathformula   refinement strategy
///   --reach=arg|restart                       reachability engine
///   --max-refinements=N                       CEGAR iteration budget
///   --max-nodes=N                             abstract reachability budget
///   --stats                                   per-layer statistics
///   --quiet                                   verdict only
///
/// Exit codes: 0 Safe, 1 Unsafe, 2 Unknown, 3 usage/parse error.
///
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "smt/SolverContext.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options] <file.pil | ->\n"
      << "  --refiner=pathinv|intervals|pathformula  refinement strategy\n"
      << "                                           (default: pathinv)\n"
      << "  --reach=arg|restart  reachability engine: persistent ARG with\n"
      << "                       subtree-scoped refinement (default), or\n"
      << "                       the legacy restart-the-world tree\n"
      << "  --max-refinements=N  CEGAR iteration budget (default 40)\n"
      << "  --max-nodes=N        abstract reachability node budget\n"
      << "  --stats              print per-layer statistics\n"
      << "  --quiet              print only the verdict line\n"
      << "exit codes: 0 Safe, 1 Unsafe, 2 Unknown, 3 usage/parse error\n";
  return 3;
}

bool parseUint(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  pathinv::EngineOptions Opts;
  bool Stats = false;
  bool Quiet = false;
  std::string InputPath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--refiner=")) {
      if (std::strcmp(V, "pathinv") == 0) {
        Opts.Refiner = pathinv::RefinerKind::PathInvariant;
      } else if (std::strcmp(V, "intervals") == 0) {
        Opts.Refiner = pathinv::RefinerKind::PathInvariantIntervals;
      } else if (std::strcmp(V, "pathformula") == 0) {
        Opts.Refiner = pathinv::RefinerKind::PathFormula;
      } else {
        std::cerr << "unknown refiner '" << V << "'\n";
        return usage(Argv[0]);
      }
    } else if (const char *V = valueOf("--reach=")) {
      if (std::strcmp(V, "arg") == 0) {
        Opts.Reach.Mode = pathinv::ReachMode::Arg;
      } else if (std::strcmp(V, "restart") == 0) {
        Opts.Reach.Mode = pathinv::ReachMode::Restart;
      } else {
        std::cerr << "unknown reachability engine '" << V << "'\n";
        return usage(Argv[0]);
      }
    } else if (const char *V = valueOf("--max-refinements=")) {
      if (!parseUint(V, Opts.MaxRefinements))
        return usage(Argv[0]);
    } else if (const char *V = valueOf("--max-nodes=")) {
      if (!parseUint(V, Opts.Reach.MaxNodes))
        return usage(Argv[0]);
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "unknown option '" << Arg << "'\n";
      return usage(Argv[0]);
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      std::cerr << "multiple input files\n";
      return usage(Argv[0]);
    }
  }
  if (InputPath.empty())
    return usage(Argv[0]);

  std::string Source;
  if (InputPath == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::cerr << "cannot read " << InputPath << "\n";
      return 3;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  pathinv::Verifier V(Opts);
  pathinv::Expected<pathinv::Program> P = V.loadSource(Source);
  if (!P) {
    std::cerr << InputPath << ": " << P.error().render() << "\n";
    return 3;
  }
  pathinv::EngineResult R = V.verifyProgram(P.get());

  if (Quiet) {
    switch (R.Verdict) {
    case pathinv::EngineResult::Verdict::Safe:
      std::cout << "SAFE\n";
      break;
    case pathinv::EngineResult::Verdict::Unsafe:
      std::cout << "UNSAFE\n";
      break;
    case pathinv::EngineResult::Verdict::Unknown:
      std::cout << "UNKNOWN\n";
      break;
    }
  } else {
    std::cout << pathinv::formatResult(P.get(), R);
    if (R.Verdict == pathinv::EngineResult::Verdict::Safe &&
        R.Stats.FinalPredicates != 0) {
      std::cout << "abstraction:\n" << R.Predicates.dump(P.get());
    }
  }
  if (Stats)
    std::cout << pathinv::formatSolverStats(V.solverStats());

  switch (R.Verdict) {
  case pathinv::EngineResult::Verdict::Safe:
    return 0;
  case pathinv::EngineResult::Verdict::Unsafe:
    return 1;
  case pathinv::EngineResult::Verdict::Unknown:
    return 2;
  }
  return 2;
}
