//===- tools/pathinv/PathInvMain.cpp - CLI verification driver ------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line driver: verify a PIL procedure from a file (or stdin).
///
/// Usage: pathinv [options] <file.pil | ->
///   --engine=cegar|pdr|portfolio              verification backend
///   --refiner=pathinv|intervals|pathformula   refinement strategy
///   --reach=arg|restart                       CEGAR reachability engine
///   --max-refinements=N                       CEGAR iteration budget
///   --max-nodes=N                             abstract reachability budget
///   --timeout=SEC                             wall-clock deadline
///   --memory=MB                               soft tracked-heap ceiling
///   --budgets=k=v,...                         per-layer step budgets
///   --stats                                   per-layer statistics
///   --quiet                                   verdict only
///
/// Exit-code contract: 0 Safe, 1 Unsafe, 2 Unknown-or-error. Resource
/// exhaustion, unsupported input, usage and parse errors all land on 2 —
/// an automation driver can trust that 0 and 1 are *proven* verdicts and
/// everything else is "no verdict", never a crash.
///
//===----------------------------------------------------------------------===//

#include "core/Verifier.h"
#include "smt/SolverContext.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options] <file.pil | ->\n"
      << "  --engine=cegar|pdr|portfolio  verification backend: path-\n"
      << "                       invariant CEGAR (default), IC3/PDR over\n"
      << "                       the transition relation, or a governed\n"
      << "                       time-sliced race of both\n"
      << "  --refiner=pathinv|intervals|pathformula  refinement strategy\n"
      << "                                           (default: pathinv)\n"
      << "  --reach=arg|restart  CEGAR reachability engine: persistent ARG\n"
      << "                       with subtree-scoped refinement (default),\n"
      << "                       or the legacy restart-the-world tree\n"
      << "  --max-refinements=N  CEGAR iteration budget (default 40)\n"
      << "  --max-nodes=N        abstract reachability node budget\n"
      << "  --timeout=SEC        wall-clock deadline (0 = unlimited)\n"
      << "  --memory=MB          soft ceiling on tracked heap bytes\n"
      << "  --budgets=k=v,...    per-layer step budgets; keys:\n"
      << "                       sat_conflicts, pivots, bnb_nodes,\n"
      << "                       synth_combos, arg_expansions, refinements,\n"
      << "                       pdr_obligations\n"
      << "  --emit-cert=FILE     on a Safe verdict, write the invariant-map\n"
      << "                       certificate (validate offline with\n"
      << "                       pathinv-check); fails the run when the\n"
      << "                       proof carried no exportable certificate\n"
      << "  --stats              print per-layer statistics\n"
      << "  --quiet              print only the verdict line\n"
      << "exit codes: 0 Safe, 1 Unsafe, 2 Unknown or error (resource\n"
      << "exhaustion, unsupported input, usage/parse errors)\n";
  return 2;
}

bool parseUint(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

bool parseSeconds(const char *Text, double &Out) {
  char *End = nullptr;
  double V = std::strtod(Text, &End);
  if (End == Text || *End != '\0' || V < 0)
    return false;
  Out = V;
  return true;
}

/// Parses a "--budgets=" value: comma-separated key=value pairs keyed by
/// the Unknown-reason taxonomy. \returns false (with a message) on any
/// unknown key or malformed count.
bool parseBudgets(const char *Text, pathinv::ResourceLimits &Limits) {
  std::string Spec = Text;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Pair = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos) {
      std::cerr << "malformed budget '" << Pair << "' (want key=count)\n";
      return false;
    }
    std::string Key = Pair.substr(0, Eq);
    uint64_t Count = 0;
    if (!parseUint(Pair.c_str() + Eq + 1, Count)) {
      std::cerr << "malformed budget count in '" << Pair << "'\n";
      return false;
    }
    if (Key == "sat_conflicts") {
      Limits.SatConflicts = Count;
    } else if (Key == "pivots") {
      Limits.Pivots = Count;
    } else if (Key == "bnb_nodes") {
      Limits.BnbNodes = Count;
    } else if (Key == "synth_combos") {
      Limits.SynthCombos = Count;
    } else if (Key == "arg_expansions") {
      Limits.ArgExpansions = Count;
    } else if (Key == "refinements") {
      Limits.Refinements = Count;
    } else if (Key == "pdr_obligations") {
      Limits.PdrObligations = Count;
    } else {
      std::cerr << "unknown budget key '" << Key << "'\n";
      return false;
    }
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  pathinv::EngineOptions Opts;
  bool Stats = false;
  bool Quiet = false;
  std::string InputPath;
  std::string EmitCertPath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    if (const char *V = valueOf("--engine=")) {
      if (!pathinv::parseEngineKind(V, Opts.Engine)) {
        std::cerr << "unknown engine '" << V << "'\n";
        return usage(Argv[0]);
      }
    } else if (const char *V = valueOf("--refiner=")) {
      if (std::strcmp(V, "pathinv") == 0) {
        Opts.Refiner = pathinv::RefinerKind::PathInvariant;
      } else if (std::strcmp(V, "intervals") == 0) {
        Opts.Refiner = pathinv::RefinerKind::PathInvariantIntervals;
      } else if (std::strcmp(V, "pathformula") == 0) {
        Opts.Refiner = pathinv::RefinerKind::PathFormula;
      } else {
        std::cerr << "unknown refiner '" << V << "'\n";
        return usage(Argv[0]);
      }
    } else if (const char *V = valueOf("--reach=")) {
      if (std::strcmp(V, "arg") == 0) {
        Opts.Reach.Mode = pathinv::ReachMode::Arg;
      } else if (std::strcmp(V, "restart") == 0) {
        Opts.Reach.Mode = pathinv::ReachMode::Restart;
      } else {
        std::cerr << "unknown reachability engine '" << V << "'\n";
        return usage(Argv[0]);
      }
    } else if (const char *V = valueOf("--max-refinements=")) {
      if (!parseUint(V, Opts.MaxRefinements))
        return usage(Argv[0]);
    } else if (const char *V = valueOf("--max-nodes=")) {
      if (!parseUint(V, Opts.Reach.MaxNodes))
        return usage(Argv[0]);
    } else if (const char *V = valueOf("--timeout=")) {
      if (!parseSeconds(V, Opts.Limits.TimeoutSeconds))
        return usage(Argv[0]);
    } else if (const char *V = valueOf("--memory=")) {
      uint64_t MegaBytes = 0;
      if (!parseUint(V, MegaBytes))
        return usage(Argv[0]);
      Opts.Limits.MemoryBytes = MegaBytes * 1024 * 1024;
    } else if (const char *V = valueOf("--budgets=")) {
      if (!parseBudgets(V, Opts.Limits))
        return usage(Argv[0]);
    } else if (const char *V = valueOf("--emit-cert=")) {
      EmitCertPath = V;
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::cerr << "unknown option '" << Arg << "'\n";
      return usage(Argv[0]);
    } else if (InputPath.empty()) {
      InputPath = Arg;
    } else {
      std::cerr << "multiple input files\n";
      return usage(Argv[0]);
    }
  }
  if (InputPath.empty())
    return usage(Argv[0]);

  std::string Source;
  if (InputPath == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::cerr << "cannot read " << InputPath << "\n";
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
  }

  pathinv::Verifier V(Opts);
  pathinv::Expected<pathinv::Program> P = V.loadSource(Source);
  if (!P) {
    std::cerr << InputPath << ": " << P.error().render() << "\n";
    return 2;
  }
  pathinv::EngineResult R = V.verifyProgram(P.get());

  if (Quiet) {
    switch (R.Verdict) {
    case pathinv::EngineResult::Verdict::Safe:
      std::cout << "SAFE\n";
      break;
    case pathinv::EngineResult::Verdict::Unsafe:
      std::cout << "UNSAFE\n";
      break;
    case pathinv::EngineResult::Verdict::Unknown:
      std::cout << "UNKNOWN\n";
      break;
    }
  } else {
    std::cout << pathinv::formatResult(P.get(), R);
    if (R.Verdict == pathinv::EngineResult::Verdict::Safe &&
        R.Stats.FinalPredicates != 0) {
      std::cout << "abstraction:\n" << R.Predicates.dump(P.get());
    }
  }
  if (Stats)
    std::cout << pathinv::formatSolverStats(V.solverStats());

  if (!EmitCertPath.empty() &&
      R.Verdict == pathinv::EngineResult::Verdict::Safe) {
    // A Safe verdict without an exportable certificate (or an unwritable
    // output) degrades the run to exit 2: the caller asked for checkable
    // evidence, and "safe, trust me" is not that.
    if (!R.HasInvariants) {
      std::cerr << "no certificate: the proof did not export an invariant "
                   "map\n";
      return 2;
    }
    std::ofstream CertOut(EmitCertPath);
    if (!CertOut) {
      std::cerr << "cannot write " << EmitCertPath << "\n";
      return 2;
    }
    CertOut << pathinv::serializeCertificate(P.get(), R.Invariants);
  }

  switch (R.Verdict) {
  case pathinv::EngineResult::Verdict::Safe:
    return 0;
  case pathinv::EngineResult::Verdict::Unsafe:
    return 1;
  case pathinv::EngineResult::Verdict::Unknown:
    return 2;
  }
  return 2;
}
