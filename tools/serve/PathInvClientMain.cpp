//===- tools/serve/PathInvClientMain.cpp - pathinvd socket client ---------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pathinv-client: a minimal pathinvd socket client for scripts and CI.
/// Reads protocol request lines from stdin, ships them over the
/// unix-domain socket, and prints one response line per request (in
/// completion order — correlate by "id").
///
/// Usage: pathinv-client --socket=PATH [--timeout=SEC]
///
/// Exit codes: 0 when every request got a response, 2 on usage/connect
/// errors, 3 when the deadline expired or the server closed early.
///
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace {

int usage(const char *Argv0) {
  std::cerr << "usage: " << Argv0 << " --socket=PATH [--timeout=SEC]\n"
            << "Reads pathinvd request lines from stdin, prints one\n"
            << "response line per request (completion order).\n";
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  double TimeoutS = 300;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.compare(0, 9, "--socket=") == 0) {
      SocketPath = Arg.substr(9);
    } else if (Arg.compare(0, 10, "--timeout=") == 0) {
      char *End = nullptr;
      TimeoutS = std::strtod(Arg.c_str() + 10, &End);
      if (End == Arg.c_str() + 10 || *End != '\0' || TimeoutS <= 0)
        return usage(Argv[0]);
    } else {
      return usage(Argv[0]);
    }
  }
  if (SocketPath.empty())
    return usage(Argv[0]);

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::cerr << "socket path too long\n";
    return 2;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("socket");
    return 2;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::cerr << "connect " << SocketPath << ": " << std::strerror(errno)
              << "\n";
    ::close(Fd);
    return 2;
  }

  // Ship every non-blank stdin line; count them so we know how many
  // responses to wait for.
  std::ostringstream In;
  In << std::cin.rdbuf();
  std::string Requests = In.str();
  size_t Expected = 0;
  {
    size_t Start = 0;
    while (Start <= Requests.size()) {
      size_t Nl = Requests.find('\n', Start);
      std::string Line = Requests.substr(
          Start, Nl == std::string::npos ? std::string::npos : Nl - Start);
      bool Blank = true;
      for (char C : Line)
        if (C != ' ' && C != '\t' && C != '\r') {
          Blank = false;
          break;
        }
      if (!Blank)
        ++Expected;
      if (Nl == std::string::npos)
        break;
      Start = Nl + 1;
    }
  }
  if (!Requests.empty() && Requests.back() != '\n')
    Requests += '\n';
  size_t Off = 0;
  while (Off < Requests.size()) {
    ssize_t N = ::send(Fd, Requests.data() + Off, Requests.size() - Off, 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      std::cerr << "send: " << std::strerror(errno) << "\n";
      ::close(Fd);
      return 3;
    }
    Off += static_cast<size_t>(N);
  }

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(TimeoutS);
  std::string Buffer;
  size_t Got = 0;
  char Chunk[4096];
  while (Got < Expected) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
        Deadline - std::chrono::steady_clock::now());
    if (Left.count() <= 0) {
      std::cerr << "timeout: got " << Got << "/" << Expected
                << " responses\n";
      ::close(Fd);
      return 3;
    }
    pollfd Pfd{Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, static_cast<int>(Left.count()));
    if (Ready <= 0)
      continue;
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      std::cerr << "server closed after " << Got << "/" << Expected
                << " responses\n";
      ::close(Fd);
      return 3;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl = Buffer.find('\n', Start); Nl != std::string::npos;
         Nl = Buffer.find('\n', Start)) {
      std::cout << Buffer.substr(Start, Nl - Start) << "\n";
      ++Got;
      Start = Nl + 1;
    }
    Buffer.erase(0, Start);
  }
  std::cout.flush();
  ::close(Fd);
  return 0;
}
