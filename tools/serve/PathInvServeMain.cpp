//===- tools/serve/PathInvServeMain.cpp - pathinvd daemon -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// pathinvd: the long-lived verification service. Speaks the
/// newline-delimited JSON protocol (serve/Protocol.h) over stdin/stdout
/// and, with --socket, over a unix-domain socket at the same time.
///
/// Usage: pathinvd [options]
///   --socket=PATH        also listen on a unix-domain socket
///   --workers=N          worker threads (default: hardware concurrency)
///   --queue=N            admission queue capacity (default 64)
///   --cache=N            verdict-cache capacity (default 4096, 0 off)
///   --max-attempts=N     retry-ladder length (default 3)
///   --timeout=SEC        default per-attempt wall deadline (default 60)
///   --engine=E           default engine: cegar|pdr|portfolio
///   --no-stdio           serve the socket only (stdin is ignored)
///
/// Lifecycle: runs until stdin closes (stdio mode), a "shutdown" request
/// arrives, or SIGTERM/SIGINT. All three trigger the same graceful
/// drain: admission stops, queued jobs are answered "draining",
/// in-flight jobs finish. A second signal escalates to cancelling the
/// in-flight jobs through their controllers (they answer Unknown with
/// reason "cancelled" — still an answer). Exit code 0 on any orderly
/// shutdown; 2 on startup errors.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/Transport.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>

#include <poll.h>
#include <unistd.h>

using namespace pathinv;
using namespace pathinv::serve;

namespace {

// Written by the signal handler, polled by the main loop. sig_atomic_t
// is the only type async-signal-safe to write from a handler.
volatile std::sig_atomic_t SignalCount = 0;

void onSignal(int) { SignalCount = SignalCount + 1; }

int usage(const char *Argv0) {
  std::cerr << "usage: " << Argv0 << " [options]\n"
            << "  --socket=PATH     also listen on a unix-domain socket\n"
            << "  --workers=N       worker threads (default: cores)\n"
            << "  --queue=N         admission queue capacity (default 64)\n"
            << "  --cache=N         verdict-cache entries (default 4096)\n"
            << "  --max-attempts=N  retry-ladder length (default 3)\n"
            << "  --timeout=SEC     default per-attempt deadline (60)\n"
            << "  --engine=E        default engine (portfolio)\n"
            << "  --no-stdio        serve the socket only\n"
            << "Speaks one JSON request per line; see the README's\n"
            << "service chapter for the protocol.\n";
  return 2;
}

bool parseUnsigned(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (End == Text || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opts;
  std::string SocketPath;
  bool UseStdio = true;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto valueOf = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
    };
    uint64_t N = 0;
    if (const char *V = valueOf("--socket=")) {
      SocketPath = V;
    } else if (const char *V = valueOf("--workers=")) {
      if (!parseUnsigned(V, N))
        return usage(Argv[0]);
      Opts.Workers = static_cast<unsigned>(N);
    } else if (const char *V = valueOf("--queue=")) {
      if (!parseUnsigned(V, N) || N == 0)
        return usage(Argv[0]);
      Opts.QueueCapacity = N;
    } else if (const char *V = valueOf("--cache=")) {
      if (!parseUnsigned(V, N))
        return usage(Argv[0]);
      Opts.CacheCapacity = N;
    } else if (const char *V = valueOf("--max-attempts=")) {
      if (!parseUnsigned(V, N) || N == 0 || N > 16)
        return usage(Argv[0]);
      Opts.MaxAttempts = static_cast<int>(N);
    } else if (const char *V = valueOf("--timeout=")) {
      char *End = nullptr;
      double S = std::strtod(V, &End);
      if (End == V || *End != '\0' || S < 0)
        return usage(Argv[0]);
      Opts.DefaultLimits.TimeoutSeconds = S;
    } else if (const char *V = valueOf("--engine=")) {
      if (!parseEngineKind(V, Opts.DefaultEngine)) {
        std::cerr << "unknown engine '" << V << "'\n";
        return usage(Argv[0]);
      }
    } else if (Arg == "--no-stdio") {
      UseStdio = false;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option '" << Arg << "'\n";
      return usage(Argv[0]);
    }
  }
  if (!UseStdio && SocketPath.empty()) {
    std::cerr << "--no-stdio needs --socket\n";
    return usage(Argv[0]);
  }

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN); // A vanished client must not kill us.

  Server Srv(Opts);
  SocketListener Listener(Srv);
  if (!SocketPath.empty()) {
    std::string Error;
    if (!Listener.start(SocketPath, Error)) {
      std::cerr << "pathinvd: " << Error << "\n";
      return 2;
    }
  }

  // Stdio transport: line-buffered reads via poll so signals and
  // shutdown requests are noticed within 200ms even with no input.
  // Responses are written from worker threads under one stdout mutex.
  std::mutex OutMu;
  auto Emit = [&OutMu](std::string Line) {
    std::lock_guard<std::mutex> Lock(OutMu);
    std::fwrite(Line.data(), 1, Line.size(), stdout);
    std::fflush(stdout);
  };

  std::string Buffer;
  bool StdinOpen = UseStdio;
  while (SignalCount == 0 && !Srv.shutdownRequested()) {
    if (!StdinOpen) {
      // Socket-only (by flag, or stdin hit EOF while a socket is up):
      // just wait for a stop condition.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    pollfd Pfd{STDIN_FILENO, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Ready <= 0)
      continue;
    char Chunk[4096];
    ssize_t N = ::read(STDIN_FILENO, Chunk, sizeof(Chunk));
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0) {
      StdinOpen = false;
      if (SocketPath.empty())
        break; // Sole transport gone: drain and exit.
      continue;
    }
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl = Buffer.find('\n', Start); Nl != std::string::npos;
         Nl = Buffer.find('\n', Start)) {
      std::string Line = Buffer.substr(Start, Nl - Start);
      Start = Nl + 1;
      bool Blank = true;
      for (char C : Line)
        if (C != ' ' && C != '\t' && C != '\r') {
          Blank = false;
          break;
        }
      if (!Blank)
        Srv.submitLine(Line, Emit);
    }
    Buffer.erase(0, Start);
  }

  // Orderly shutdown: drain (graceful first), wait out the in-flight
  // jobs — escalating to cancellation if a second signal arrives — then
  // retire the transports and join the pool.
  Srv.drain(/*CancelInFlight=*/SignalCount >= 2);
  while (Srv.stats().InFlight > 0) {
    if (SignalCount >= 2)
      Srv.drain(/*CancelInFlight=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  Listener.stop();
  return 0;
}
