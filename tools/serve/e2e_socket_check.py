#!/usr/bin/env python3
"""End-to-end check of the pathinvd service against the pathinv CLI.

Starts a pathinvd daemon on a unix-domain socket, submits every
examples/*.pil through the pathinv-client socket client, and requires the
service verdict to match what a one-shot `pathinv` run says about the
same file. Then exercises the service-only surface the CLI does not have:
a cache re-submission must hit (attempts == 0, engine "cache"), a hostile
non-JSON line must come back as a machine-readable error, `stats` must
report the traffic, and SIGTERM must drain gracefully (exit 0, socket
unlinked).

Usage: e2e_socket_check.py BUILDDIR [EXAMPLESDIR]

Exit 0 on full agreement, 1 on any mismatch, 2 on harness errors.
"""

import glob
import json
import os
import signal
import socket
import subprocess
import sys
import time

CLI_VERDICT = {0: "safe", 1: "unsafe", 2: "unknown"}


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    build = sys.argv[1]
    examples = sys.argv[2] if len(sys.argv) > 2 else "examples"
    pathinv = os.path.join(build, "tools", "pathinv", "pathinv")
    pathinvd = os.path.join(build, "tools", "serve", "pathinvd")
    client = os.path.join(build, "tools", "serve", "pathinv-client")
    for exe in (pathinv, pathinvd, client):
        if not os.access(exe, os.X_OK):
            print(f"missing executable: {exe}")
            return 2
    files = sorted(glob.glob(os.path.join(examples, "*.pil")))
    if not files:
        print(f"no .pil files under {examples}")
        return 2

    # Ground truth: the one-shot CLI's exit code per file (0 Safe, 1
    # Unsafe, 2 Unknown/error). The same wall deadline as the service
    # requests keeps slow-program Unknowns aligned on both sides.
    expected = {}
    for f in files:
        code = subprocess.run(
            [pathinv, "--quiet", "--timeout=60", f],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        ).returncode
        if code not in CLI_VERDICT:
            fail(f"pathinv {f} exited {code} (not a verdict)")
        expected[f] = CLI_VERDICT[code]
        print(f"cli:   {os.path.basename(f)} -> {expected[f]}")

    sock = f"/tmp/pathinvd-e2e-{os.getpid()}.sock"
    daemon = subprocess.Popen(
        [pathinvd, f"--socket={sock}", "--no-stdio", "--workers=2",
         "--timeout=60"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        deadline = time.monotonic() + 10
        while not os.path.exists(sock):
            if time.monotonic() > deadline or daemon.poll() is not None:
                print(daemon.stderr.read() if daemon.poll() is not None
                      else "")
                fail("daemon did not create its socket")
            time.sleep(0.05)

        def drive(lines, timeout=300):
            run = subprocess.run(
                [client, f"--socket={sock}", f"--timeout={timeout}"],
                input="\n".join(lines) + "\n",
                capture_output=True, text=True)
            if run.returncode != 0:
                fail(f"pathinv-client exited {run.returncode}: "
                     f"{run.stderr.strip()}")
            return [json.loads(l) for l in run.stdout.splitlines() if l]

        # One verify request per example, all shipped on one connection.
        reqs = []
        for f in files:
            with open(f) as fh:
                src = fh.read()
            reqs.append(json.dumps(
                {"id": f, "op": "verify", "program": src, "timeout_s": 60}))
        byid = {r["id"]: r for r in drive(reqs)}
        ok = True
        for f in files:
            resp = byid.get(f)
            if resp is None:
                print(f"FAIL: {f}: no response")
                ok = False
                continue
            if resp.get("status") != "ok":
                print(f"FAIL: {f}: status {resp.get('status')}: "
                      f"{resp.get('error')}")
                ok = False
                continue
            got = resp.get("verdict")
            if got != expected[f]:
                print(f"FAIL: {f}: service says {got}, CLI says "
                      f"{expected[f]} ({resp.get('note', '')})")
                ok = False
            else:
                print(f"serve: {os.path.basename(f)} -> {got} "
                      f"(engine {resp.get('engine')}, "
                      f"attempts {resp.get('attempts')})")
        if not ok:
            fail("service/CLI verdict mismatch")

        # Decided verdicts must now be cache hits: attempts 0, engine
        # "cache" — revalidated, not re-proved.
        decided = [f for f in files if expected[f] in ("safe", "unsafe")]
        for resp in drive([r for r, f in zip(reqs, files) if f in decided]):
            if resp.get("cache") != "hit" or resp.get("attempts") != 0 \
                    or resp.get("engine") != "cache":
                fail(f"{resp.get('id')}: expected a revalidated cache hit, "
                     f"got cache={resp.get('cache')} "
                     f"engine={resp.get('engine')} "
                     f"attempts={resp.get('attempts')}")
        print(f"cache: {len(decided)} resubmissions all hit")

        # Hostile input costs one machine-readable error, never the
        # connection or the process.
        hostile = drive(['this is not json', '{"op": "nope"}',
                         json.dumps({"op": "ping", "id": "alive"})])
        if sum(1 for r in hostile if r.get("status") == "error") != 2:
            fail(f"hostile lines not rejected as errors: {hostile}")
        if not any(r.get("status") == "ok" and r.get("id") == "alive"
                   for r in hostile):
            fail("ping after hostile lines did not answer ok")
        print("hostile: 2 machine-readable errors, connection survived")

        stats = drive([json.dumps({"op": "stats", "id": "s"})])[0]
        if stats.get("status") != "ok" or \
                stats.get("stats", {}).get("completed", 0) < len(files):
            fail(f"stats did not report the traffic: {stats}")
        print(f"stats: completed={stats['stats']['completed']} "
              f"cache_hits={stats['stats'].get('cache_hits')}")

        # Graceful drain: SIGTERM answers everything, exits 0, unlinks
        # the socket.
        daemon.send_signal(signal.SIGTERM)
        code = daemon.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code} on SIGTERM, expected 0")
        if os.path.exists(sock):
            fail("daemon left its socket behind after drain")
        print("drain: SIGTERM -> exit 0, socket unlinked")
        print(f"PASS: {len(files)} programs, service == CLI on all")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        try:
            os.unlink(sock)
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
