//===- tools/check/PathInvCheckMain.cpp - Certificate checker -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone certificate checker: given a PIL program and an invariant-map
/// certificate (`pathinv --emit-cert=FILE` output), re-validates the
/// (I0)-(I2) obligations through the SMT layer only — no verification
/// engine runs, so the trusted base is the parser, the lowering, and
/// checkInvariantMap. This is the other half of the proof-carrying
/// workflow: the prover and the checker share no engine state.
///
/// Usage: pathinv-check <file.pil> <cert.txt>
/// Exit codes: 0 certificate valid, 1 certificate invalid (parses but a
/// proof obligation fails), 2 error (usage, unreadable input, malformed
/// certificate, unparseable program).
///
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"
#include "smt/SmtSolver.h"
#include "synth/InvariantMap.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

int usage(const char *Argv0) {
  std::cerr << "usage: " << Argv0 << " <file.pil> <cert.txt>\n"
            << "validates an invariant-map certificate (as written by\n"
            << "pathinv --emit-cert=FILE) against the program\n"
            << "exit codes: 0 valid, 1 invalid, 2 error\n";
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ProgPath, CertPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      usage(Argv[0]);
      return 0;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "unknown option '" << Arg << "'\n";
      return usage(Argv[0]);
    }
    if (ProgPath.empty())
      ProgPath = Arg;
    else if (CertPath.empty())
      CertPath = Arg;
    else
      return usage(Argv[0]);
  }
  if (CertPath.empty())
    return usage(Argv[0]);

  std::string Source, CertText;
  if (!readFile(ProgPath, Source)) {
    std::cerr << "cannot read " << ProgPath << "\n";
    return 2;
  }
  if (!readFile(CertPath, CertText)) {
    std::cerr << "cannot read " << CertPath << "\n";
    return 2;
  }

  pathinv::TermManager TM;
  pathinv::Expected<pathinv::Program> P =
      pathinv::loadProgram(TM, Source);
  if (!P) {
    std::cerr << ProgPath << ": " << P.error().render() << "\n";
    return 2;
  }
  pathinv::Expected<pathinv::InvariantMap> Map =
      pathinv::parseCertificate(P.get(), CertText);
  if (!Map) {
    std::cerr << CertPath << ": " << Map.error().render() << "\n";
    return 2;
  }

  pathinv::SmtSolver Solver(TM);
  pathinv::InvariantCheckResult Check =
      pathinv::checkInvariantMap(P.get(), Map.get(), Solver);
  if (!Check.Ok) {
    std::cout << "INVALID: " << Check.FailureReason << "\n";
    return 1;
  }
  std::cout << "VALID\n";
  return 0;
}
