//===- program/PathFormula.h - SSA path formulas ---------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Path formulas per Section 2.1: the conjunction of the constraints along
/// a path, written in static single assignment form (each step renames
/// every variable to a fresh SSA instance). The path is feasible iff the
/// formula is satisfiable.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_PROGRAM_PATHFORMULA_H
#define PATHINV_PROGRAM_PATHFORMULA_H

#include "program/Program.h"

namespace pathinv {

/// A path is a sequence of transition indices of a program, starting at
/// the entry location and with matching endpoints.
using Path = std::vector<int>;

/// SSA rendering of a path.
struct PathFormula {
  /// One conjunct per step (useful for core-to-step attribution).
  std::vector<const Term *> StepFormulas;
  /// SSA instance of each program variable before step 0.
  TermMap InitialVars;
  /// SSA instance of each program variable after the last step.
  TermMap FinalVars;
  /// SSA instance of each variable after each step: VarAt[K] maps program
  /// variables to their instance after K steps (VarAt[0] = InitialVars).
  std::vector<TermMap> VarAt;

  /// The whole formula (conjunction of StepFormulas).
  const Term *formula(TermManager &TM) const {
    return TM.mkAnd(StepFormulas);
  }
};

/// Builds the SSA path formula for \p P along \p Steps. Asserts that the
/// path is well-formed (consecutive endpoints match, starts at entry).
PathFormula buildPathFormula(const Program &P, const Path &Steps);

/// \returns true if \p Steps is a syntactically well-formed path of \p P
/// beginning at the entry location.
bool isWellFormedPath(const Program &P, const Path &Steps);

} // namespace pathinv

#endif // PATHINV_PROGRAM_PATHFORMULA_H
