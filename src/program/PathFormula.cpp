//===- program/PathFormula.cpp - SSA path formulas ------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "program/PathFormula.h"

using namespace pathinv;

bool pathinv::isWellFormedPath(const Program &P, const Path &Steps) {
  if (Steps.empty())
    return true;
  if (P.transition(Steps[0]).From != P.entry())
    return false;
  for (size_t I = 0; I + 1 < Steps.size(); ++I)
    if (P.transition(Steps[I]).To != P.transition(Steps[I + 1]).From)
      return false;
  return true;
}

PathFormula pathinv::buildPathFormula(const Program &P, const Path &Steps) {
#ifndef NDEBUG
  // The formula is meaningful for any connected transition sequence (cut-
  // to-cut segments included), not only paths from the entry.
  for (size_t I = 0; I + 1 < Steps.size(); ++I)
    assert(P.transition(Steps[I]).To == P.transition(Steps[I + 1]).From &&
           "disconnected transition sequence");
#endif
  TermManager &TM = P.termManager();
  PathFormula Result;

  TermMap Current;
  for (const Term *Var : P.variables())
    Current[Var] = ssaVar(TM, Var, 0);
  Result.InitialVars = Current;
  Result.VarAt.push_back(Current);

  for (size_t K = 0; K < Steps.size(); ++K) {
    const Transition &T = P.transition(Steps[K]);
    // Substitution: unprimed variable -> instance K, primed -> K+1.
    TermMap Subst;
    TermMap Next;
    for (const Term *Var : P.variables()) {
      Subst[Var] = Current[Var];
      const Term *NextInstance = ssaVar(TM, Var, static_cast<unsigned>(K) + 1);
      Subst[primedVar(TM, Var)] = NextInstance;
      Next[Var] = NextInstance;
    }
    Result.StepFormulas.push_back(substitute(TM, T.Rel, Subst));
    Current = std::move(Next);
    Result.VarAt.push_back(Current);
  }

  Result.FinalVars = std::move(Current);
  return Result;
}
