//===- program/Program.cpp - Transition-system program IR -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "program/Program.h"

#include "logic/TermPrinter.h"

using namespace pathinv;

const Term *pathinv::primedVar(TermManager &TM, const Term *Var) {
  assert(Var->isVar() && "priming a non-variable");
  return TM.mkVar(Var->name() + "'", Var->sort());
}

bool pathinv::isPrimedVar(const Term *Var) {
  return Var->isVar() && !Var->name().empty() && Var->name().back() == '\'';
}

const Term *pathinv::unprimedVar(TermManager &TM, const Term *Var) {
  if (!isPrimedVar(Var))
    return Var;
  std::string Name = Var->name();
  Name.pop_back();
  return TM.mkVar(Name, Var->sort());
}

const Term *pathinv::ssaVar(TermManager &TM, const Term *Var,
                            unsigned Index) {
  assert(Var->isVar() && "SSA-renaming a non-variable");
  return TM.mkVar(Var->name() + "@" + std::to_string(Index), Var->sort());
}

LocId Program::addLocation(std::string Name) {
  LocNames.push_back(std::move(Name));
  Successors.emplace_back();
  return static_cast<LocId>(LocNames.size()) - 1;
}

int Program::addTransition(LocId From, const Term *Rel, LocId To,
                           std::string Label) {
  assert(From >= 0 && From < numLocations() && "bad source location");
  assert(To >= 0 && To < numLocations() && "bad target location");
  if (Label.empty())
    Label = printTerm(Rel);
  int Index = static_cast<int>(Transitions.size());
  Transitions.push_back({From, Rel, To, std::move(Label)});
  Successors[From].push_back(Index);
  return Index;
}

const Term *Program::frameExcept(const TermSet &Modified) const {
  std::vector<const Term *> Conjuncts;
  for (const Term *Var : Vars) {
    if (Modified.count(Var))
      continue;
    Conjuncts.push_back(TM->mkEq(primedVar(*TM, Var), Var));
  }
  return TM->mkAnd(std::move(Conjuncts));
}

const Term *Program::mkAssign(const Term *Var, const Term *Rhs) const {
  TermSet Modified;
  Modified.insert(Var);
  return TM->mkAnd(TM->mkEq(primedVar(*TM, Var), Rhs),
                   frameExcept(Modified));
}

const Term *Program::mkArrayAssign(const Term *Array, const Term *Index,
                                   const Term *Value) const {
  TermSet Modified;
  Modified.insert(Array);
  return TM->mkAnd(
      TM->mkEq(primedVar(*TM, Array), TM->mkStore(Array, Index, Value)),
      frameExcept(Modified));
}

const Term *Program::mkAssume(const Term *Cond) const {
  return TM->mkAnd(Cond, frameExcept({}));
}

const Term *Program::mkSkip() const { return frameExcept({}); }

const Term *Program::mkHavoc(const Term *Var) const {
  TermSet Modified;
  Modified.insert(Var);
  return frameExcept(Modified);
}

std::string Program::dump() const {
  std::string Out;
  Out += "program with " + std::to_string(numLocations()) + " locations, ";
  Out += "entry=" + LocNames[Entry] + ", error=" + LocNames[Error] + "\n";
  for (const Transition &T : Transitions) {
    Out += "  " + LocNames[T.From] + " -> " + LocNames[T.To] + " : " +
           T.Label + "\n";
  }
  return Out;
}
