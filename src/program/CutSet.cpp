//===- program/CutSet.cpp - Cutpoint computation --------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "program/CutSet.h"

#include <functional>

using namespace pathinv;

std::set<LocId> pathinv::computeCutSet(const Program &P) {
  std::set<LocId> Cuts;
  if (P.entry() >= 0)
    Cuts.insert(P.entry());
  if (P.error() >= 0)
    Cuts.insert(P.error());

  // Iterative DFS marking gray (on stack) / black; a gray target is a back
  // edge, and its target cuts every cycle through it.
  enum Color : uint8_t { White, Gray, Black };
  std::vector<Color> Colors(P.numLocations(), White);
  struct Frame {
    LocId Loc;
    size_t NextSucc;
  };
  std::vector<Frame> Stack;
  if (P.entry() < 0)
    return Cuts;
  Stack.push_back({P.entry(), 0});
  Colors[P.entry()] = Gray;
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    const auto &Succs = P.successorsOf(Top.Loc);
    if (Top.NextSucc >= Succs.size()) {
      Colors[Top.Loc] = Black;
      Stack.pop_back();
      continue;
    }
    LocId Next = P.transition(Succs[Top.NextSucc++]).To;
    if (Colors[Next] == Gray) {
      Cuts.insert(Next); // Back edge.
    } else if (Colors[Next] == White) {
      Colors[Next] = Gray;
      Stack.push_back({Next, 0});
    }
  }

  // Greedy minimization: drop cutpoints whose removal still cuts every
  // cycle. Path programs profit: the identity bridges into hat copies
  // create two-location cycles whose both endpoints the DFS marks, but a
  // single one suffices — and every template location multiplies the
  // synthesis search space.
  for (auto It = Cuts.begin(); It != Cuts.end();) {
    if (*It == P.entry() || *It == P.error()) {
      ++It;
      continue;
    }
    std::set<LocId> Without = Cuts;
    Without.erase(*It);
    if (isCutSet(P, Without)) {
      It = Cuts.erase(It);
    } else {
      ++It;
    }
  }
  return Cuts;
}

bool pathinv::isCutSet(const Program &P, const std::set<LocId> &Cuts) {
  // A cycle avoids Cuts iff the subgraph induced by the non-cut locations
  // has a cycle; detect with a coloring DFS over that subgraph.
  enum Color : uint8_t { White, Gray, Black };
  std::vector<Color> Colors(P.numLocations(), White);
  std::function<bool(LocId)> HasCycle = [&](LocId Loc) {
    Colors[Loc] = Gray;
    for (int TransIdx : P.successorsOf(Loc)) {
      LocId Next = P.transition(TransIdx).To;
      if (Cuts.count(Next))
        continue;
      if (Colors[Next] == Gray)
        return true;
      if (Colors[Next] == White && HasCycle(Next))
        return true;
    }
    Colors[Loc] = Black;
    return false;
  };
  for (LocId Loc = 0; Loc < P.numLocations(); ++Loc)
    if (!Cuts.count(Loc) && Colors[Loc] == White && HasCycle(Loc))
      return false;
  return true;
}

namespace {

void enumeratePaths(const Program &P, const std::set<LocId> &Cuts,
                    LocId Loc, std::vector<int> &Prefix,
                    std::vector<std::vector<int>> &Out, size_t MaxPaths) {
  for (int TransIdx : P.successorsOf(Loc)) {
    assert(Out.size() < MaxPaths && "cut-to-cut path explosion");
    const Transition &T = P.transition(TransIdx);
    Prefix.push_back(TransIdx);
    if (Cuts.count(T.To) || P.successorsOf(T.To).empty()) {
      // A segment ends at a cutpoint or at a terminal location (the
      // latter yields vacuous consecution obligations but keeps every
      // transition covered by some segment).
      Out.push_back(Prefix);
    } else {
      enumeratePaths(P, Cuts, T.To, Prefix, Out, MaxPaths);
    }
    Prefix.pop_back();
  }
}

} // namespace

std::vector<std::vector<int>>
pathinv::cutToCutPaths(const Program &P, const std::set<LocId> &Cuts,
                       size_t MaxPaths) {
  std::vector<std::vector<int>> Out;
  std::vector<int> Prefix;
  for (LocId Cut : Cuts) {
    enumeratePaths(P, Cuts, Cut, Prefix, Out, MaxPaths);
  }
  return Out;
}
