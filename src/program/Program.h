//===- program/Program.h - Transition-system program IR --------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programs as transition systems, following Section 3 of the paper:
/// P = (X, locs, l0, T, lE) with transitions (l, rho, l') whose constraint
/// rho ranges over X and the primed next-state variables X'.
///
/// Priming convention: the primed copy of variable `x` is the variable
/// named `x'` of the same sort. Transition constraints are ordinary terms;
/// builder helpers construct the common shapes (assignment with frame
/// condition, assume, havoc, skip).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_PROGRAM_PROGRAM_H
#define PATHINV_PROGRAM_PROGRAM_H

#include "logic/Term.h"
#include "logic/TermRewrite.h"

#include <string>
#include <vector>

namespace pathinv {

/// Dense location index within a Program.
using LocId = int;

/// A guarded command (l, rho, l').
struct Transition {
  LocId From = -1;
  const Term *Rel = nullptr; ///< Constraint over X and X'.
  LocId To = -1;
  std::string Label; ///< Human-readable rendering, e.g. "i := i + 1".
};

/// \returns the primed twin x' of program variable \p Var.
const Term *primedVar(TermManager &TM, const Term *Var);

/// \returns true when \p Var is a primed variable (name ends in ').
bool isPrimedVar(const Term *Var);

/// \returns the unprimed original of \p Var (identity if not primed).
const Term *unprimedVar(TermManager &TM, const Term *Var);

/// \returns the SSA instance `x@K` of \p Var.
const Term *ssaVar(TermManager &TM, const Term *Var, unsigned Index);

/// A program over a fixed set of variables. Locations are dense indices;
/// the error location is distinguished (Section 3: a program is unsafe iff
/// the error location is reachable).
class Program {
public:
  Program(TermManager &TM, std::vector<const Term *> Vars)
      : TM(&TM), Vars(std::move(Vars)) {}

  TermManager &termManager() const { return *TM; }
  const std::vector<const Term *> &variables() const { return Vars; }

  /// Creates a new location; \p Name is for diagnostics only.
  LocId addLocation(std::string Name);
  int numLocations() const { return static_cast<int>(LocNames.size()); }
  const std::string &locationName(LocId Loc) const {
    return LocNames[Loc];
  }

  void setEntry(LocId Loc) { Entry = Loc; }
  void setError(LocId Loc) { Error = Loc; }
  LocId entry() const { return Entry; }
  LocId error() const { return Error; }

  /// Adds a raw transition with explicit relation.
  int addTransition(LocId From, const Term *Rel, LocId To,
                    std::string Label = "");

  const std::vector<Transition> &transitions() const { return Transitions; }
  const Transition &transition(int Index) const {
    return Transitions[Index];
  }
  int numTransitions() const { return static_cast<int>(Transitions.size()); }

  /// Outgoing transition indices of \p Loc.
  const std::vector<int> &successorsOf(LocId Loc) const {
    return Successors[Loc];
  }

  // --- Relation builders -------------------------------------------------

  /// x' = Rhs, all other variables unchanged.
  const Term *mkAssign(const Term *Var, const Term *Rhs) const;
  /// arr' = arr{Index := Value}, all other variables unchanged.
  const Term *mkArrayAssign(const Term *Array, const Term *Index,
                            const Term *Value) const;
  /// [Cond], all variables unchanged.
  const Term *mkAssume(const Term *Cond) const;
  /// All variables unchanged (the X' = X transitions of path programs).
  const Term *mkSkip() const;
  /// \p Var unconstrained, all other variables unchanged.
  const Term *mkHavoc(const Term *Var) const;

  /// Frame condition v' = v for every variable except those in \p Modified.
  const Term *frameExcept(const TermSet &Modified) const;

  /// Renders the CFG in a compact text form (for tests and debugging).
  std::string dump() const;

private:
  TermManager *TM;
  std::vector<const Term *> Vars;
  std::vector<std::string> LocNames;
  std::vector<Transition> Transitions;
  std::vector<std::vector<int>> Successors;
  LocId Entry = -1;
  LocId Error = -1;
};

} // namespace pathinv

#endif // PATHINV_PROGRAM_PROGRAM_H
