//===- program/CutSet.h - Cutpoint computation -----------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cutsets per the efficiency remark of Section 3: "a set of program
/// locations such that every syntactic cycle in the CFG passes through
/// some location in the cutset." Invariant templates are placed only at
/// cutpoints; invariants elsewhere follow by strongest postconditions.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_PROGRAM_CUTSET_H
#define PATHINV_PROGRAM_CUTSET_H

#include "program/Program.h"

#include <set>
#include <vector>

namespace pathinv {

/// Computes a cutset of \p P: the targets of DFS back edges (every cycle
/// contains a back edge, so this hits every cycle). The entry and error
/// locations are always included for convenience of invariant maps.
std::set<LocId> computeCutSet(const Program &P);

/// \returns true if every syntactic cycle of \p P passes through some
/// location of \p Cuts (the defining property of a cutset, Section 3).
bool isCutSet(const Program &P, const std::set<LocId> &Cuts);

/// Enumerates the simple "cut-to-cut" paths of \p P: paths that start at a
/// location in \p Cuts, end at a location in \p Cuts, and have no interior
/// cutpoint. Each returned vector holds transition indices. \p MaxPaths
/// bounds the enumeration (asserts if exceeded — path programs are small).
std::vector<std::vector<int>> cutToCutPaths(const Program &P,
                                            const std::set<LocId> &Cuts,
                                            size_t MaxPaths = 4096);

} // namespace pathinv

#endif // PATHINV_PROGRAM_CUTSET_H
