//===- support/DeltaRational.h - Rationals with infinitesimal --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rational numbers extended with a symbolic infinitesimal delta.
///
/// The simplex core represents a strict bound t < c as t <= c - delta with
/// delta an infinitesimal positive value (the standard technique from
/// Dutertre & de Moura's "A fast linear-arithmetic solver for DPLL(T)").
/// A DeltaRational is r + k*delta with r, k exact rationals; comparison is
/// lexicographic.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_DELTARATIONAL_H
#define PATHINV_SUPPORT_DELTARATIONAL_H

#include "support/Rational.h"

namespace pathinv {

/// Value of the form Real + Inf * delta for an infinitesimal delta > 0.
class DeltaRational {
public:
  DeltaRational() = default;
  DeltaRational(Rational Real) : Real(std::move(Real)) {}
  DeltaRational(Rational Real, Rational Inf)
      : Real(std::move(Real)), Inf(std::move(Inf)) {}
  DeltaRational(int64_t Value) : Real(Value) {}

  const Rational &real() const { return Real; }
  const Rational &infinitesimal() const { return Inf; }
  bool isRational() const { return Inf.isZero(); }
  bool isZero() const { return Real.isZero() && Inf.isZero(); }

  DeltaRational operator-() const { return DeltaRational(-Real, -Inf); }
  DeltaRational operator+(const DeltaRational &RHS) const {
    return DeltaRational(Real + RHS.Real, Inf + RHS.Inf);
  }
  DeltaRational operator-(const DeltaRational &RHS) const {
    return DeltaRational(Real - RHS.Real, Inf - RHS.Inf);
  }
  /// Scaling by a (plain) rational; delta-rationals form a Q-vector space.
  DeltaRational operator*(const Rational &Scale) const {
    return DeltaRational(Real * Scale, Inf * Scale);
  }
  DeltaRational &operator+=(const DeltaRational &RHS) {
    Real += RHS.Real;
    Inf += RHS.Inf;
    return *this;
  }
  DeltaRational &operator-=(const DeltaRational &RHS) {
    Real -= RHS.Real;
    Inf -= RHS.Inf;
    return *this;
  }
  /// Accumulates `*this += X * Scale` (resp. `-=`) componentwise without
  /// materializing the scaled delta-rational. \p X may alias *this.
  DeltaRational &addMul(const DeltaRational &X, const Rational &Scale) {
    Real.addMul(X.Real, Scale);
    Inf.addMul(X.Inf, Scale);
    return *this;
  }
  DeltaRational &subMul(const DeltaRational &X, const Rational &Scale) {
    Real.subMul(X.Real, Scale);
    Inf.subMul(X.Inf, Scale);
    return *this;
  }

  int compare(const DeltaRational &RHS) const {
    int Cmp = Real.compare(RHS.Real);
    if (Cmp != 0)
      return Cmp;
    return Inf.compare(RHS.Inf);
  }
  bool operator==(const DeltaRational &RHS) const {
    return Real == RHS.Real && Inf == RHS.Inf;
  }
  bool operator!=(const DeltaRational &RHS) const { return !(*this == RHS); }
  bool operator<(const DeltaRational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const DeltaRational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const DeltaRational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const DeltaRational &RHS) const { return compare(RHS) >= 0; }

  std::string toString() const {
    if (Inf.isZero())
      return Real.toString();
    return Real.toString() + (Inf.isNegative() ? "-" : "+") +
           Inf.abs().toString() + "d";
  }

private:
  Rational Real;
  Rational Inf;
};

} // namespace pathinv

#endif // PATHINV_SUPPORT_DELTARATIONAL_H
