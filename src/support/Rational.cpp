//===- support/Rational.cpp - Exact rational numbers ---------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

using namespace pathinv;

Rational::Rational(BigInt N, BigInt D) : Num(std::move(N)), Den(std::move(D)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

bool Rational::fromString(std::string_view Text, Rational &Out) {
  size_t Slash = Text.find('/');
  BigInt N, D(1);
  if (Slash == std::string_view::npos) {
    if (!BigInt::fromString(Text, N))
      return false;
  } else {
    if (!BigInt::fromString(Text.substr(0, Slash), N) ||
        !BigInt::fromString(Text.substr(Slash + 1), D) || D.isZero())
      return false;
  }
  Out = Rational(std::move(N), std::move(D));
  return true;
}

BigInt Rational::floor() const { return Num.floorDiv(Den); }

BigInt Rational::ceil() const {
  BigInt F = floor();
  if (isInteger())
    return F;
  return F + BigInt(1);
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::operator+(const Rational &RHS) const {
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  return Rational(Den, Num);
}

int Rational::compare(const Rational &RHS) const {
  // Cross-multiply; denominators are positive so the direction is preserved.
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

std::string Rational::toString() const {
  if (isInteger())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
