//===- support/Rational.cpp - Exact rational numbers ---------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every binary operation carries a fast path that runs entirely in 64/128-bit
// machine arithmetic when all participating numerators and denominators are
// inline (fit in int64_t) — the overwhelmingly common case in the simplex.
// Overflow audit for the int128 intermediates, with |n| <= 2^63 and
// 1 <= d <= 2^63 - 1 for every inline component:
//   n1*d2 + n2*d1 : each product < 2^126, the sum < 2^127       (add/sub)
//   d1*d2         : < 2^126                                     (add/sub)
//   cross-reduced products in mul/addMul: bounded by the above.
// All of these fit in a signed __int128.
//
//===----------------------------------------------------------------------===//

#include "support/Rational.h"

#include "support/IntUtil.h"

using namespace pathinv;
using pathinv::detail::absU64;
using pathinv::detail::gcdU64;

namespace {

unsigned __int128 gcdU128(unsigned __int128 A, unsigned __int128 B) {
  while (B) {
    unsigned __int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

bool allInline(const BigInt &A, const BigInt &B) {
  return A.isInline() && B.isInline();
}

} // namespace

Rational Rational::fromReduced128(__int128 N, __int128 D) {
  assert(D > 0 && "fromReduced128 requires a positive denominator");
  if (N == 0)
    return Rational();
  unsigned __int128 MagN =
      N < 0 ? -static_cast<unsigned __int128>(N)
            : static_cast<unsigned __int128>(N);
  // The common case fits 64 bits; gcdU128's software __int128 divisions
  // would dominate exactly the fast paths this routine serves.
  unsigned __int128 G =
      (MagN >> 64) == 0 && (static_cast<unsigned __int128>(D) >> 64) == 0
          ? gcdU64(static_cast<uint64_t>(MagN), static_cast<uint64_t>(D))
          : gcdU128(MagN, static_cast<unsigned __int128>(D));
  if (G > 1) {
    N /= static_cast<__int128>(G);
    D /= static_cast<__int128>(G);
  }
  return Rational::fromReduced(BigInt::fromInt128(N), BigInt::fromInt128(D));
}

Rational::Rational(BigInt N, BigInt D) : Num(std::move(N)), Den(std::move(D)) {
  assert(!Den.isZero() && "rational with zero denominator");
  normalize();
}

void Rational::normalize() {
  if (Den.isNegative()) {
    Num = -Num;
    Den = -Den;
  }
  if (Num.isZero()) {
    Den = BigInt(1);
    return;
  }
  if (allInline(Num, Den)) {
    int64_t N = Num.toInt64(), D = Den.toInt64(); // D > 0 here.
    uint64_t G = gcdU64(absU64(N), static_cast<uint64_t>(D));
    if (G > 1) {
      // G <= D < 2^63, so the cast is safe and the divisions are exact.
      Num = BigInt(N / static_cast<int64_t>(G));
      Den = BigInt(D / static_cast<int64_t>(G));
    }
    return;
  }
  BigInt G = BigInt::gcd(Num, Den);
  if (!G.isOne()) {
    Num = Num / G;
    Den = Den / G;
  }
}

bool Rational::fromString(std::string_view Text, Rational &Out) {
  size_t Slash = Text.find('/');
  BigInt N, D(1);
  if (Slash == std::string_view::npos) {
    if (!BigInt::fromString(Text, N))
      return false;
  } else {
    if (!BigInt::fromString(Text.substr(0, Slash), N) ||
        !BigInt::fromString(Text.substr(Slash + 1), D) || D.isZero())
      return false;
  }
  Out = Rational(std::move(N), std::move(D));
  return true;
}

BigInt Rational::floor() const { return Num.floorDiv(Den); }

BigInt Rational::ceil() const {
  BigInt F = floor();
  if (isInteger())
    return F;
  return F + BigInt(1);
}

Rational Rational::operator-() const {
  Rational Result = *this;
  Result.Num = -Result.Num;
  return Result;
}

Rational Rational::operator+(const Rational &RHS) const {
  if (allInline(Num, Den) && allInline(RHS.Num, RHS.Den)) {
    int64_t N1 = Num.toInt64(), D1 = Den.toInt64();
    int64_t N2 = RHS.Num.toInt64(), D2 = RHS.Den.toInt64();
    __int128 N = static_cast<__int128>(N1) * D2 +
                 static_cast<__int128>(N2) * D1;
    __int128 D = static_cast<__int128>(D1) * D2;
    return fromReduced128(N, D);
  }
  return Rational(Num * RHS.Den + RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator-(const Rational &RHS) const {
  if (allInline(Num, Den) && allInline(RHS.Num, RHS.Den)) {
    int64_t N1 = Num.toInt64(), D1 = Den.toInt64();
    int64_t N2 = RHS.Num.toInt64(), D2 = RHS.Den.toInt64();
    __int128 N = static_cast<__int128>(N1) * D2 -
                 static_cast<__int128>(N2) * D1;
    __int128 D = static_cast<__int128>(D1) * D2;
    return fromReduced128(N, D);
  }
  return Rational(Num * RHS.Den - RHS.Num * Den, Den * RHS.Den);
}

Rational Rational::operator*(const Rational &RHS) const {
  if (allInline(Num, Den) && allInline(RHS.Num, RHS.Den)) {
    int64_t N1 = Num.toInt64(), D1 = Den.toInt64();
    int64_t N2 = RHS.Num.toInt64(), D2 = RHS.Den.toInt64();
    if (N1 == 0 || N2 == 0)
      return Rational();
    // Cross-gcd reduction: because gcd(N1,D1) = gcd(N2,D2) = 1, dividing
    // out gcd(N1,D2) and gcd(N2,D1) leaves the product already in lowest
    // terms — no 128-bit gcd needed.
    int64_t G1 = static_cast<int64_t>(gcdU64(absU64(N1), absU64(D2)));
    int64_t G2 = static_cast<int64_t>(gcdU64(absU64(N2), absU64(D1)));
    __int128 N = static_cast<__int128>(N1 / G1) * (N2 / G2);
    __int128 D = static_cast<__int128>(D1 / G2) * (D2 / G1);
    return fromReduced(BigInt::fromInt128(N), BigInt::fromInt128(D));
  }
  return Rational(Num * RHS.Num, Den * RHS.Den);
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  if (allInline(Num, Den) && allInline(RHS.Num, RHS.Den)) {
    int64_t N1 = Num.toInt64(), D1 = Den.toInt64();
    int64_t N2 = RHS.Num.toInt64(), D2 = RHS.Den.toInt64();
    __int128 N = static_cast<__int128>(N1) * D2;
    __int128 D = static_cast<__int128>(D1) * N2;
    if (D < 0) {
      N = -N;
      D = -D;
    }
    return fromReduced128(N, D);
  }
  return Rational(Num * RHS.Den, Den * RHS.Num);
}

Rational Rational::inverse() const {
  assert(!isZero() && "inverse of zero");
  if (allInline(Num, Den)) {
    // gcd(Num, Den) == 1 already; only the sign moves to the numerator.
    __int128 N = Den.toInt64(), D = Num.toInt64();
    if (D < 0) {
      N = -N;
      D = -D;
    }
    return fromReduced(BigInt::fromInt128(N), BigInt::fromInt128(D));
  }
  return Rational(Den, Num);
}

Rational &Rational::accumMul(const Rational &A, const Rational &B,
                             bool Negate) {
  if (allInline(Num, Den) && allInline(A.Num, A.Den) &&
      allInline(B.Num, B.Den)) {
    int64_t An = A.Num.toInt64(), Ad = A.Den.toInt64();
    int64_t Bn = B.Num.toInt64(), Bd = B.Den.toInt64();
    if (An == 0 || Bn == 0)
      return *this;
    int64_t G1 = static_cast<int64_t>(gcdU64(absU64(An), absU64(Bd)));
    int64_t G2 = static_cast<int64_t>(gcdU64(absU64(Bn), absU64(Ad)));
    __int128 Pn = static_cast<__int128>(An / G1) * (Bn / G2);
    __int128 Pd = static_cast<__int128>(Ad / G2) * (Bd / G1);
    if (Pn >= INT64_MIN && Pn <= INT64_MAX && Pd <= INT64_MAX) {
      int64_t N1 = Num.toInt64(), D1 = Den.toInt64();
      __int128 Prod = Pn * D1;
      __int128 N = static_cast<__int128>(N1) * static_cast<int64_t>(Pd) +
                   (Negate ? -Prod : Prod);
      __int128 D = static_cast<__int128>(D1) * static_cast<int64_t>(Pd);
      return *this = fromReduced128(N, D);
    }
    // The reduced product itself escapes int64; fall through to the
    // generic path (which still uses the BigInt fast paths piecewise).
  }
  return Negate ? *this -= A * B : *this += A * B;
}

int Rational::compare(const Rational &RHS) const {
  if (allInline(Num, Den) && allInline(RHS.Num, RHS.Den)) {
    __int128 L = static_cast<__int128>(Num.toInt64()) * RHS.Den.toInt64();
    __int128 R = static_cast<__int128>(RHS.Num.toInt64()) * Den.toInt64();
    return (L > R) - (L < R);
  }
  // Cross-multiply; denominators are positive so the direction is preserved.
  return (Num * RHS.Den).compare(RHS.Num * Den);
}

std::string Rational::toString() const {
  if (isInteger())
    return Num.toString();
  return Num.toString() + "/" + Den.toString();
}
