//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integer arithmetic.
///
/// Template-based invariant synthesis via Farkas' lemma produces linear
/// systems whose exact-rational pivoting can grow coefficients well past
/// 64 bits; this class provides the unbounded integers that back
/// \c Rational. Representation is sign + little-endian base-2^32 magnitude
/// with no leading zero limbs (canonical: zero has an empty magnitude and
/// sign 0).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_BIGINT_H
#define PATHINV_SUPPORT_BIGINT_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pathinv {

/// Arbitrary-precision signed integer.
class BigInt {
public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer.
  BigInt(int64_t Value);

  /// Parses a decimal string with optional leading '-'.
  /// Asserts on malformed input; use \c fromString for checked parsing.
  explicit BigInt(std::string_view Decimal);

  /// Checked decimal parse. Returns false (and leaves \p Out untouched) on
  /// malformed input.
  static bool fromString(std::string_view Decimal, BigInt &Out);

  /// \returns -1, 0, or +1.
  int sign() const { return Sign; }
  bool isZero() const { return Sign == 0; }
  bool isNegative() const { return Sign < 0; }
  bool isOne() const { return Sign > 0 && Limbs.size() == 1 && Limbs[0] == 1; }

  /// \returns the value as int64_t; asserts if it does not fit.
  int64_t toInt64() const;

  /// \returns true if the value fits in int64_t.
  bool fitsInt64() const;

  /// Decimal rendering (no leading zeros, '-' prefix when negative).
  std::string toString() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  /// Truncated division (C semantics: quotient rounds toward zero, remainder
  /// has the sign of the dividend). Asserts on division by zero.
  BigInt operator/(const BigInt &RHS) const;
  BigInt operator%(const BigInt &RHS) const;

  /// Computes quotient and remainder in one pass (truncated semantics).
  static void divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                     BigInt &Rem);

  /// Floor division: quotient rounds toward negative infinity.
  BigInt floorDiv(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS) { return *this = *this + RHS; }
  BigInt &operator-=(const BigInt &RHS) { return *this = *this - RHS; }
  BigInt &operator*=(const BigInt &RHS) { return *this = *this * RHS; }

  bool operator==(const BigInt &RHS) const {
    return Sign == RHS.Sign && Limbs == RHS.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &RHS) const;

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(BigInt A, BigInt B);

  /// Least common multiple (always non-negative; lcm(0,x) = 0).
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Hash suitable for unordered containers.
  size_t hash() const;

private:
  // Magnitude comparison helpers operating on raw limb vectors.
  static int compareMagnitude(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B);
  static std::vector<uint32_t> addMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Requires |A| >= |B|.
  static std::vector<uint32_t> subMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  static std::vector<uint32_t> mulMagnitude(const std::vector<uint32_t> &A,
                                            const std::vector<uint32_t> &B);
  /// Schoolbook long division on magnitudes; returns quotient, sets \p Rem.
  static std::vector<uint32_t> divModMagnitude(const std::vector<uint32_t> &A,
                                               const std::vector<uint32_t> &B,
                                               std::vector<uint32_t> &Rem);

  void normalize();

  int Sign = 0;
  std::vector<uint32_t> Limbs;
};

} // namespace pathinv

#endif // PATHINV_SUPPORT_BIGINT_H
