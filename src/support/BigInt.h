//===- support/BigInt.h - Arbitrary-precision signed integers --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Arbitrary-precision signed integer arithmetic with an inline-limb
/// small-value fast path.
///
/// Template-based invariant synthesis via Farkas' lemma produces linear
/// systems whose exact-rational pivoting can grow coefficients well past
/// 64 bits, but profiles show the overwhelming majority of values flowing
/// through the simplex stay tiny. The representation is therefore a tagged
/// union:
///
///  * inline: any value representable as int64_t is stored directly in the
///    object — no heap allocation, and all arithmetic runs as
///    overflow-checked machine ops (__builtin_*_overflow);
///  * heap: values outside [INT64_MIN, INT64_MAX] fall back to the classic
///    sign + little-endian base-2^32 limb vector.
///
/// The representation is canonical: a value fits in int64_t if and only if
/// it is stored inline (operations that shrink a heap value demote the
/// result), so equality, comparison, and hashing never need to reconcile
/// two encodings of the same number. Promotion on overflow routes through
/// __int128 (any product or sum of two int64 values fits) or through the
/// limb helpers for genuinely large operands.
///
/// The accumulate entry points addMul()/subMul() are alias-safe:
/// x.addMul(x, y) and x.addMul(y, x) read every operand before the first
/// write to x.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_BIGINT_H
#define PATHINV_SUPPORT_BIGINT_H

#include "support/FaultInject.h"

#include <cassert>
#include <cstdint>
#include <new>
#include <string>
#include <string_view>
#include <vector>

namespace pathinv {

/// Adjusts the calling thread's live BigInt heap-byte counter. Internal
/// hook — called on every heap-representation transition. Out-of-line on
/// purpose: the counter is a thread_local owned by BigInt.cpp, and
/// keeping every access in the defining TU sidesteps a GCC 12 UBSan
/// false positive ("load of null pointer") on cross-TU thread_local
/// reads hoisted across thread joins at -O2.
void bigIntHeapAccount(int64_t Delta) noexcept;

/// \returns bytes currently held by heap BigInt representations on the
/// calling thread — one input to the resource controller's memory probe.
///
/// Threading contract: the counter is strictly per-thread and relies on
/// BigInt values being created and destroyed on the SAME thread. That
/// invariant holds everywhere by construction — every BigInt lives inside
/// one job's solver stack, and a job runs start-to-finish on one worker
/// thread (pathinvd never migrates a job between workers, and results
/// crossing threads are serialized to strings first). A value allocated
/// on thread A and freed on thread B would leave A's counter permanently
/// inflated and drive B's below zero (unsigned wraparound) — if you ever
/// need to hand terms or rationals across threads, serialize them. The
/// counter is monotone-balanced, not reset between jobs: a worker's
/// successive jobs see the counter return to the same baseline once each
/// job's values die, which is what makes the per-job memory ceiling
/// meaningful on a long-lived worker.
uint64_t bigIntHeapBytes() noexcept;

/// Arbitrary-precision signed integer (inline int64_t fast path).
class BigInt {
public:
  /// Constructs zero.
  BigInt() noexcept : InlineValue(0), IsInline(true) {}

  /// Constructs from a machine integer (always inline, never allocates).
  BigInt(int64_t Value) noexcept : InlineValue(Value), IsInline(true) {}

  /// Parses a decimal string with optional leading '-'.
  /// Asserts on malformed input; use \c fromString for checked parsing.
  explicit BigInt(std::string_view Decimal);

  BigInt(const BigInt &RHS);
  BigInt(BigInt &&RHS) noexcept;
  BigInt &operator=(const BigInt &RHS);
  BigInt &operator=(BigInt &&RHS) noexcept;
  ~BigInt() {
    if (!IsInline) {
      bigIntHeapAccount(-heapBytes());
      Heap.~HeapRep();
    }
  }

  /// Checked decimal parse. Returns false (and leaves \p Out untouched) on
  /// malformed input.
  static bool fromString(std::string_view Decimal, BigInt &Out);

  /// Constructs from a 128-bit value (inline when it fits in int64_t).
  static BigInt fromInt128(__int128 Value);

  /// \returns true when the value is stored inline (no heap allocation).
  /// Canonicality makes this equivalent to fitsInt64().
  bool isInline() const { return IsInline; }

  /// \returns -1, 0, or +1.
  int sign() const {
    if (IsInline)
      return (InlineValue > 0) - (InlineValue < 0);
    return Heap.Sign;
  }
  bool isZero() const { return IsInline && InlineValue == 0; }
  bool isNegative() const { return sign() < 0; }
  bool isOne() const { return IsInline && InlineValue == 1; }

  /// \returns the value as int64_t; asserts if it does not fit.
  int64_t toInt64() const {
    assert(IsInline && "BigInt does not fit in int64_t");
    return InlineValue;
  }

  /// \returns true if the value fits in int64_t.
  bool fitsInt64() const { return IsInline; }

  /// Decimal rendering (no leading zeros, '-' prefix when negative).
  std::string toString() const;

  BigInt operator-() const;
  BigInt abs() const;

  BigInt operator+(const BigInt &RHS) const;
  BigInt operator-(const BigInt &RHS) const;
  BigInt operator*(const BigInt &RHS) const;

  /// Truncated division (C semantics: quotient rounds toward zero, remainder
  /// has the sign of the dividend). Asserts on division by zero.
  BigInt operator/(const BigInt &RHS) const;
  BigInt operator%(const BigInt &RHS) const;

  /// Computes quotient and remainder in one pass (truncated semantics).
  /// \p Quot and \p Rem may alias \p Num or \p Den.
  static void divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                     BigInt &Rem);

  /// Floor division: quotient rounds toward negative infinity.
  BigInt floorDiv(const BigInt &RHS) const;

  BigInt &operator+=(const BigInt &RHS);
  BigInt &operator-=(const BigInt &RHS);
  BigInt &operator*=(const BigInt &RHS);

  /// Accumulates `*this += A * B` / `*this -= A * B` without materializing
  /// the product when every operand is inline. Operands may alias *this.
  void addMul(const BigInt &A, const BigInt &B);
  void subMul(const BigInt &A, const BigInt &B);

  bool operator==(const BigInt &RHS) const {
    if (IsInline != RHS.IsInline)
      return false; // Canonical representation: tags of equal values agree.
    if (IsInline)
      return InlineValue == RHS.InlineValue;
    return Heap.Sign == RHS.Heap.Sign && Heap.Limbs == RHS.Heap.Limbs;
  }
  bool operator!=(const BigInt &RHS) const { return !(*this == RHS); }
  bool operator<(const BigInt &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const BigInt &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const BigInt &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const BigInt &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison: negative, zero, or positive.
  int compare(const BigInt &RHS) const {
    if (IsInline && RHS.IsInline)
      return (InlineValue > RHS.InlineValue) - (InlineValue < RHS.InlineValue);
    return compareSlow(RHS);
  }

  /// Greatest common divisor (always non-negative).
  static BigInt gcd(const BigInt &A, const BigInt &B);

  /// Least common multiple (always non-negative; lcm(0,x) = 0).
  static BigInt lcm(const BigInt &A, const BigInt &B);

  /// Hash suitable for unordered containers (equal values hash equal; the
  /// canonical representation guarantees it across the two encodings).
  size_t hash() const;

private:
  struct HeapRep {
    std::vector<uint32_t> Limbs; ///< Little-endian base-2^32, no leading 0s.
    int8_t Sign;                 ///< -1 or +1 (zero is always inline).
  };

  /// Builds a canonical value from sign and magnitude limbs: strips leading
  /// zeros and demotes to inline whenever the value fits in int64_t.
  static BigInt fromSignMagnitude(int Sign, std::vector<uint32_t> Limbs);

  /// Exposes the magnitude as a limb array without allocating: inline
  /// values render into \p Buf, heap values return their own storage.
  const uint32_t *magnitude(uint32_t (&Buf)[2], size_t &NumLimbs) const;

  void adoptHeap(int8_t Sign, std::vector<uint32_t> &&Limbs) {
    assert(IsInline && "adoptHeap over live heap state");
    (void)fault::shouldFail(fault::Site::BigIntPromotion);
    new (&Heap) HeapRep{std::move(Limbs), Sign};
    IsInline = false;
    bigIntHeapAccount(heapBytes());
  }
  void resetToInline(int64_t Value) {
    if (!IsInline) {
      bigIntHeapAccount(-heapBytes());
      Heap.~HeapRep();
      IsInline = true;
    }
    InlineValue = Value;
  }

  /// Bytes of limb storage held by the heap representation (valid only
  /// when !IsInline); the unit of the thread's heap-byte counter.
  int64_t heapBytes() const {
    return static_cast<int64_t>(Heap.Limbs.capacity() * sizeof(uint32_t));
  }

  static BigInt addSlow(const BigInt &A, const BigInt &B);
  BigInt mulSlow(const BigInt &RHS) const;
  int compareSlow(const BigInt &RHS) const;

  union {
    int64_t InlineValue; ///< Valid when IsInline.
    HeapRep Heap;        ///< Valid when !IsInline.
  };
  bool IsInline;
};

} // namespace pathinv

#endif // PATHINV_SUPPORT_BIGINT_H
