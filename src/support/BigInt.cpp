//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include "support/IntUtil.h"

#include <algorithm>
#include <cstddef>

using namespace pathinv;
using pathinv::detail::absU64;
using pathinv::detail::gcdU64;

namespace {
/// Live heap bytes held by BigInt values on this thread. Deliberately
/// confined to this TU — see the bigIntHeapAccount declaration in
/// BigInt.h for why no other TU may touch the thread_local directly.
thread_local uint64_t BigIntHeapBytesCounter = 0;
} // namespace

void pathinv::bigIntHeapAccount(int64_t Delta) noexcept {
  BigIntHeapBytesCounter += static_cast<uint64_t>(Delta);
}

uint64_t pathinv::bigIntHeapBytes() noexcept {
  return BigIntHeapBytesCounter;
}

namespace {

constexpr uint64_t LimbBase = uint64_t(1) << 32;

/// Converts a non-negative two's-complement magnitude back to int64_t;
/// \p Mag must be <= 2^63 when \p Negative, <= INT64_MAX otherwise.
int64_t signedFromMagnitude(uint64_t Mag, bool Negative) {
  if (!Negative)
    return static_cast<int64_t>(Mag);
  // -(Mag-1)-1 avoids overflow for Mag == 2^63 (INT64_MIN).
  return -static_cast<int64_t>(Mag - 1) - 1;
}

// Magnitude helpers over raw limb ranges (little-endian base-2^32). Views
// let inline operands participate without being copied into a vector.

int compareMag(const uint32_t *A, size_t NA, const uint32_t *B, size_t NB) {
  if (NA != NB)
    return NA < NB ? -1 : 1;
  for (size_t I = NA; I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<uint32_t> addMag(const uint32_t *A, size_t NA, const uint32_t *B,
                             size_t NB) {
  if (NA < NB) {
    std::swap(A, B);
    std::swap(NA, NB);
  }
  std::vector<uint32_t> Result;
  Result.reserve(NA + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < NA; ++I) {
    uint64_t Sum = Carry + A[I] + (I < NB ? B[I] : 0);
    Result.push_back(static_cast<uint32_t>(Sum & 0xffffffffu));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

/// Requires |A| >= |B|.
std::vector<uint32_t> subMag(const uint32_t *A, size_t NA, const uint32_t *B,
                             size_t NB) {
  assert(compareMag(A, NA, B, NB) >= 0 && "subMag requires |A| >= |B|");
  std::vector<uint32_t> Result;
  Result.reserve(NA);
  int64_t Borrow = 0;
  for (size_t I = 0; I < NA; ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < NB ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += static_cast<int64_t>(LimbBase);
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

std::vector<uint32_t> mulMag(const uint32_t *A, size_t NA, const uint32_t *B,
                             size_t NB) {
  if (NA == 0 || NB == 0)
    return {};
  std::vector<uint32_t> Result(NA + NB, 0);
  for (size_t I = 0; I < NA; ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < NB; ++J) {
      uint64_t Cur = Result[I + J] + static_cast<uint64_t>(A[I]) * B[J] + Carry;
      Result[I + J] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
    }
    size_t K = I + NB;
    while (Carry) {
      uint64_t Cur = Result[K] + Carry;
      Result[K] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
      ++K;
    }
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

/// Schoolbook long division on magnitudes; returns quotient, sets \p Rem.
std::vector<uint32_t> divModMag(const uint32_t *A, size_t NA,
                                const uint32_t *B, size_t NB,
                                std::vector<uint32_t> &Rem) {
  assert(NB != 0 && "division by zero magnitude");
  if (compareMag(A, NA, B, NB) < 0) {
    Rem.assign(A, A + NA);
    return {};
  }
  // Fast path: single-limb divisor.
  if (NB == 1) {
    uint64_t Div = B[0];
    std::vector<uint32_t> Quot(NA, 0);
    uint64_t Carry = 0;
    for (size_t I = NA; I-- > 0;) {
      uint64_t Cur = (Carry << 32) | A[I];
      Quot[I] = static_cast<uint32_t>(Cur / Div);
      Carry = Cur % Div;
    }
    while (!Quot.empty() && Quot.back() == 0)
      Quot.pop_back();
    Rem.clear();
    if (Carry)
      Rem.push_back(static_cast<uint32_t>(Carry));
    return Quot;
  }

  // General case: bitwise long division. Slow but simple and exact; the
  // synthesis pipeline keeps numbers small enough that this never dominates.
  std::vector<uint32_t> Quot(NA, 0);
  std::vector<uint32_t> Cur; // running remainder
  for (size_t LimbIdx = NA; LimbIdx-- > 0;) {
    for (int Bit = 31; Bit >= 0; --Bit) {
      // Cur = Cur * 2 + bit.
      uint32_t CarryBit = (A[LimbIdx] >> Bit) & 1;
      for (auto &Limb : Cur) {
        uint32_t NewCarry = Limb >> 31;
        Limb = (Limb << 1) | CarryBit;
        CarryBit = NewCarry;
      }
      if (CarryBit)
        Cur.push_back(CarryBit);
      if (compareMag(Cur.data(), Cur.size(), B, NB) >= 0) {
        Cur = subMag(Cur.data(), Cur.size(), B, NB);
        Quot[LimbIdx] |= uint32_t(1) << Bit;
      }
    }
  }
  while (!Quot.empty() && Quot.back() == 0)
    Quot.pop_back();
  Rem = std::move(Cur);
  return Quot;
}

} // namespace

//===----------------------------------------------------------------------===//
// Representation management
//===----------------------------------------------------------------------===//

BigInt::BigInt(const BigInt &RHS) {
  if (RHS.IsInline) {
    InlineValue = RHS.InlineValue;
    IsInline = true;
  } else {
    new (&Heap) HeapRep(RHS.Heap);
    IsInline = false;
    bigIntHeapAccount(heapBytes());
  }
}

BigInt::BigInt(BigInt &&RHS) noexcept {
  if (RHS.IsInline) {
    InlineValue = RHS.InlineValue;
    IsInline = true;
  } else {
    bigIntHeapAccount(-RHS.heapBytes());
    new (&Heap) HeapRep(std::move(RHS.Heap));
    IsInline = false;
    bigIntHeapAccount(heapBytes());
    // Leave the source in the canonical zero state so it stays usable.
    RHS.Heap.~HeapRep();
    RHS.IsInline = true;
    RHS.InlineValue = 0;
  }
}

BigInt &BigInt::operator=(const BigInt &RHS) {
  if (this == &RHS)
    return *this;
  if (!IsInline && !RHS.IsInline) {
    bigIntHeapAccount(-heapBytes());
    Heap = RHS.Heap; // Reuses existing limb capacity.
    bigIntHeapAccount(heapBytes());
    return *this;
  }
  if (RHS.IsInline) {
    resetToInline(RHS.InlineValue);
    return *this;
  }
  // Inline -> heap.
  adoptHeap(RHS.Heap.Sign, std::vector<uint32_t>(RHS.Heap.Limbs));
  return *this;
}

BigInt &BigInt::operator=(BigInt &&RHS) noexcept {
  if (this == &RHS)
    return *this;
  if (RHS.IsInline) {
    resetToInline(RHS.InlineValue);
    return *this;
  }
  if (!IsInline) {
    bigIntHeapAccount(-heapBytes() - RHS.heapBytes());
    Heap = std::move(RHS.Heap);
    bigIntHeapAccount(heapBytes());
  } else {
    bigIntHeapAccount(-RHS.heapBytes());
    adoptHeap(RHS.Heap.Sign, std::move(RHS.Heap.Limbs));
  }
  RHS.Heap.~HeapRep();
  RHS.IsInline = true;
  RHS.InlineValue = 0;
  return *this;
}

const uint32_t *BigInt::magnitude(uint32_t (&Buf)[2],
                                  size_t &NumLimbs) const {
  if (!IsInline) {
    NumLimbs = Heap.Limbs.size();
    return Heap.Limbs.data();
  }
  uint64_t Mag = absU64(InlineValue);
  Buf[0] = static_cast<uint32_t>(Mag & 0xffffffffu);
  Buf[1] = static_cast<uint32_t>(Mag >> 32);
  NumLimbs = Mag == 0 ? 0 : (Mag >> 32 ? 2 : 1);
  return Buf;
}

BigInt BigInt::fromSignMagnitude(int Sign, std::vector<uint32_t> Limbs) {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    return BigInt();
  assert(Sign != 0 && "nonzero magnitude with zero sign");
  if (Limbs.size() <= 2) {
    uint64_t Mag = Limbs[0];
    if (Limbs.size() == 2)
      Mag |= static_cast<uint64_t>(Limbs[1]) << 32;
    // INT64_MIN's magnitude is 2^63; demote whenever the value fits.
    bool Fits = Sign < 0 ? Mag <= (uint64_t(1) << 63)
                         : Mag <= static_cast<uint64_t>(INT64_MAX);
    if (Fits)
      return BigInt(signedFromMagnitude(Mag, Sign < 0));
  }
  BigInt Result;
  Result.adoptHeap(static_cast<int8_t>(Sign < 0 ? -1 : 1), std::move(Limbs));
  return Result;
}

BigInt BigInt::fromInt128(__int128 Value) {
  if (Value >= INT64_MIN && Value <= INT64_MAX)
    return BigInt(static_cast<int64_t>(Value));
  bool Negative = Value < 0;
  unsigned __int128 Mag = Negative ? -static_cast<unsigned __int128>(Value)
                                   : static_cast<unsigned __int128>(Value);
  std::vector<uint32_t> Limbs;
  while (Mag) {
    Limbs.push_back(static_cast<uint32_t>(Mag & 0xffffffffu));
    Mag >>= 32;
  }
  BigInt Result;
  Result.adoptHeap(Negative ? -1 : 1, std::move(Limbs));
  return Result;
}

//===----------------------------------------------------------------------===//
// Parsing and printing
//===----------------------------------------------------------------------===//

BigInt::BigInt(std::string_view Decimal) : BigInt() {
  [[maybe_unused]] bool Ok = fromString(Decimal, *this);
  assert(Ok && "malformed decimal literal");
}

bool BigInt::fromString(std::string_view Decimal, BigInt &Out) {
  bool Negative = false;
  if (!Decimal.empty() && (Decimal[0] == '-' || Decimal[0] == '+')) {
    Negative = Decimal[0] == '-';
    Decimal.remove_prefix(1);
  }
  if (Decimal.empty())
    return false;

  BigInt Result;
  for (char C : Decimal) {
    if (C < '0' || C > '9')
      return false;
    // The in-place ops keep this inline (and allocation-free) for every
    // literal that fits in int64_t.
    Result *= BigInt(10);
    Result += BigInt(C - '0');
  }
  if (Negative)
    Result = -Result;
  Out = std::move(Result);
  return true;
}

std::string BigInt::toString() const {
  if (IsInline)
    return std::to_string(InlineValue);
  std::string Digits;
  std::vector<uint32_t> Mag = Heap.Limbs;
  while (!Mag.empty()) {
    // Divide magnitude by 10^9 and emit the remainder.
    uint64_t Carry = 0;
    for (size_t I = Mag.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | Mag[I];
      Mag[I] = static_cast<uint32_t>(Cur / 1000000000u);
      Carry = Cur % 1000000000u;
    }
    while (!Mag.empty() && Mag.back() == 0)
      Mag.pop_back();
    for (int I = 0; I < 9; ++I) {
      Digits.push_back(static_cast<char>('0' + Carry % 10));
      Carry /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (Heap.Sign < 0)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

//===----------------------------------------------------------------------===//
// Negation / absolute value
//===----------------------------------------------------------------------===//

BigInt BigInt::operator-() const {
  if (IsInline) {
    if (InlineValue != INT64_MIN)
      return BigInt(-InlineValue);
    // -INT64_MIN == 2^63 does not fit; promote.
    return fromSignMagnitude(1, {0u, 0x80000000u});
  }
  // Negating heap +2^63 lands exactly on INT64_MIN; fromSignMagnitude
  // re-canonicalizes (demotes) that one case.
  return fromSignMagnitude(-Heap.Sign, Heap.Limbs);
}

BigInt BigInt::abs() const { return isNegative() ? -*this : *this; }

//===----------------------------------------------------------------------===//
// Addition / subtraction
//===----------------------------------------------------------------------===//

BigInt BigInt::addSlow(const BigInt &A, const BigInt &B) {
  int SA = A.sign(), SB = B.sign();
  if (SA == 0)
    return B;
  if (SB == 0)
    return A;
  uint32_t BufA[2], BufB[2];
  size_t NA, NB;
  const uint32_t *MA = A.magnitude(BufA, NA);
  const uint32_t *MB = B.magnitude(BufB, NB);
  if (SA == SB)
    return fromSignMagnitude(SA, addMag(MA, NA, MB, NB));
  int Cmp = compareMag(MA, NA, MB, NB);
  if (Cmp == 0)
    return BigInt();
  return Cmp > 0 ? fromSignMagnitude(SA, subMag(MA, NA, MB, NB))
                 : fromSignMagnitude(SB, subMag(MB, NB, MA, NA));
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (IsInline && RHS.IsInline) {
    int64_t Result;
    if (!__builtin_add_overflow(InlineValue, RHS.InlineValue, &Result))
      return BigInt(Result);
    return fromInt128(static_cast<__int128>(InlineValue) + RHS.InlineValue);
  }
  return addSlow(*this, RHS);
}

BigInt BigInt::operator-(const BigInt &RHS) const {
  if (IsInline && RHS.IsInline) {
    int64_t Result;
    if (!__builtin_sub_overflow(InlineValue, RHS.InlineValue, &Result))
      return BigInt(Result);
    return fromInt128(static_cast<__int128>(InlineValue) - RHS.InlineValue);
  }
  return addSlow(*this, -RHS);
}

BigInt &BigInt::operator+=(const BigInt &RHS) {
  if (IsInline && RHS.IsInline) {
    int64_t Result;
    if (!__builtin_add_overflow(InlineValue, RHS.InlineValue, &Result)) {
      InlineValue = Result;
      return *this;
    }
  }
  return *this = *this + RHS;
}

BigInt &BigInt::operator-=(const BigInt &RHS) {
  if (IsInline && RHS.IsInline) {
    int64_t Result;
    if (!__builtin_sub_overflow(InlineValue, RHS.InlineValue, &Result)) {
      InlineValue = Result;
      return *this;
    }
  }
  return *this = *this - RHS;
}

//===----------------------------------------------------------------------===//
// Multiplication
//===----------------------------------------------------------------------===//

BigInt BigInt::mulSlow(const BigInt &RHS) const {
  int SA = sign(), SB = RHS.sign();
  if (SA == 0 || SB == 0)
    return BigInt();
  uint32_t BufA[2], BufB[2];
  size_t NA, NB;
  const uint32_t *MA = magnitude(BufA, NA);
  const uint32_t *MB = RHS.magnitude(BufB, NB);
  return fromSignMagnitude(SA * SB, mulMag(MA, NA, MB, NB));
}

BigInt BigInt::operator*(const BigInt &RHS) const {
  if (IsInline && RHS.IsInline) {
    int64_t Result;
    if (!__builtin_mul_overflow(InlineValue, RHS.InlineValue, &Result))
      return BigInt(Result);
    return fromInt128(static_cast<__int128>(InlineValue) * RHS.InlineValue);
  }
  return mulSlow(RHS);
}

BigInt &BigInt::operator*=(const BigInt &RHS) {
  if (IsInline && RHS.IsInline) {
    int64_t Result;
    if (!__builtin_mul_overflow(InlineValue, RHS.InlineValue, &Result)) {
      InlineValue = Result;
      return *this;
    }
  }
  return *this = *this * RHS;
}

void BigInt::addMul(const BigInt &A, const BigInt &B) {
  if (IsInline && A.IsInline && B.IsInline) {
    int64_t Prod, Sum;
    if (!__builtin_mul_overflow(A.InlineValue, B.InlineValue, &Prod) &&
        !__builtin_add_overflow(InlineValue, Prod, &Sum)) {
      InlineValue = Sum;
      return;
    }
    // acc + a*b fits comfortably in 128 bits (|a*b| <= 2^126).
    *this = fromInt128(static_cast<__int128>(InlineValue) +
                       static_cast<__int128>(A.InlineValue) * B.InlineValue);
    return;
  }
  *this += A * B;
}

void BigInt::subMul(const BigInt &A, const BigInt &B) {
  if (IsInline && A.IsInline && B.IsInline) {
    int64_t Prod, Diff;
    if (!__builtin_mul_overflow(A.InlineValue, B.InlineValue, &Prod) &&
        !__builtin_sub_overflow(InlineValue, Prod, &Diff)) {
      InlineValue = Diff;
      return;
    }
    *this = fromInt128(static_cast<__int128>(InlineValue) -
                       static_cast<__int128>(A.InlineValue) * B.InlineValue);
    return;
  }
  *this -= A * B;
}

//===----------------------------------------------------------------------===//
// Division
//===----------------------------------------------------------------------===//

void BigInt::divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                    BigInt &Rem) {
  assert(!Den.isZero() && "division by zero");
  if (Num.IsInline && Den.IsInline) {
    int64_t N = Num.InlineValue, D = Den.InlineValue;
    if (N == INT64_MIN && D == -1) {
      // The lone int64/int64 quotient that overflows: |INT64_MIN| == 2^63.
      Quot = fromInt128(-static_cast<__int128>(INT64_MIN));
      Rem = BigInt();
      return;
    }
    Quot = BigInt(N / D);
    Rem = BigInt(N % D);
    return;
  }
  int NumSign = Num.sign(), DenSign = Den.sign();
  uint32_t BufA[2], BufB[2];
  size_t NA, NB;
  const uint32_t *MA = Num.magnitude(BufA, NA);
  const uint32_t *MB = Den.magnitude(BufB, NB);
  std::vector<uint32_t> RemMag;
  std::vector<uint32_t> QuotMag = divModMag(MA, NA, MB, NB, RemMag);
  // Compute both results before writing: Quot/Rem may alias Num/Den.
  BigInt QuotOut = fromSignMagnitude(NumSign * DenSign, std::move(QuotMag));
  BigInt RemOut = fromSignMagnitude(NumSign, std::move(RemMag));
  Quot = std::move(QuotOut);
  Rem = std::move(RemOut);
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  BigInt Quot, Rem;
  divMod(*this, RHS, Quot, Rem);
  return Quot;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  BigInt Quot, Rem;
  divMod(*this, RHS, Quot, Rem);
  return Rem;
}

BigInt BigInt::floorDiv(const BigInt &RHS) const {
  BigInt Quot, Rem;
  divMod(*this, RHS, Quot, Rem);
  // Truncation equals floor unless signs differ and there is a remainder.
  if (!Rem.isZero() && sign() * RHS.sign() < 0)
    Quot -= BigInt(1);
  return Quot;
}

//===----------------------------------------------------------------------===//
// Comparison / gcd / hashing
//===----------------------------------------------------------------------===//

int BigInt::compareSlow(const BigInt &RHS) const {
  int SA = sign(), SB = RHS.sign();
  if (SA != SB)
    return SA < SB ? -1 : 1;
  // Same sign, at least one heap operand. Heap magnitudes are strictly
  // larger than any inline magnitude (canonical demotion), so mixed
  // comparisons are decided by the tag alone.
  if (IsInline != RHS.IsInline) {
    int HeapIsGreater = IsInline ? 1 : -1; // RHS heap => |RHS| > |this|.
    return SA > 0 ? -HeapIsGreater : HeapIsGreater;
  }
  int MagCmp = compareMag(Heap.Limbs.data(), Heap.Limbs.size(),
                          RHS.Heap.Limbs.data(), RHS.Heap.Limbs.size());
  return SA > 0 ? MagCmp : -MagCmp;
}

namespace {

/// Index of the lowest set bit of a nonzero magnitude.
size_t trailingZeroBits(const std::vector<uint32_t> &M) {
  size_t Limb = 0;
  while (M[Limb] == 0)
    ++Limb;
  return Limb * 32 +
         static_cast<size_t>(__builtin_ctz(M[Limb]));
}

/// In-place right shift of a magnitude by \p Bits (leading zeros stripped).
void shiftRightBits(std::vector<uint32_t> &M, size_t Bits) {
  size_t Limbs = Bits / 32;
  unsigned Rem = static_cast<unsigned>(Bits % 32);
  if (Limbs >= M.size()) {
    M.clear();
    return;
  }
  if (Limbs)
    M.erase(M.begin(), M.begin() + static_cast<std::ptrdiff_t>(Limbs));
  if (Rem) {
    for (size_t I = 0; I < M.size(); ++I) {
      uint32_t High = I + 1 < M.size() ? M[I + 1] : 0;
      M[I] = (M[I] >> Rem) | (High << (32 - Rem));
    }
  }
  while (!M.empty() && M.back() == 0)
    M.pop_back();
}

/// In-place left shift of a magnitude by \p Bits.
void shiftLeftBits(std::vector<uint32_t> &M, size_t Bits) {
  if (M.empty() || Bits == 0)
    return;
  size_t Limbs = Bits / 32;
  unsigned Rem = static_cast<unsigned>(Bits % 32);
  if (Rem) {
    uint32_t Carry = 0;
    for (size_t I = 0; I < M.size(); ++I) {
      uint32_t Cur = M[I];
      M[I] = (Cur << Rem) | Carry;
      Carry = Cur >> (32 - Rem);
    }
    if (Carry)
      M.push_back(Carry);
  }
  M.insert(M.begin(), Limbs, 0);
}

} // namespace

BigInt BigInt::gcd(const BigInt &A, const BigInt &B) {
  if (A.IsInline && B.IsInline) {
    uint64_t G = gcdU64(absU64(A.InlineValue), absU64(B.InlineValue));
    // gcd(INT64_MIN, 0) == 2^63 exceeds int64; route through int128.
    return fromInt128(static_cast<__int128>(G));
  }
  // At least one heap operand: binary (Stein) gcd on magnitudes. Each
  // round costs one compare and one subtraction plus shifts — no long
  // division — which matters because branch-and-bound scopes churn out
  // mid-size rationals whose normalization lands here once values
  // outgrow the inline fast path above (which stays division-based; for
  // machine words the hardware divider beats the shift loop).
  uint32_t BufA[2], BufB[2];
  size_t NA, NB;
  const uint32_t *MA = A.magnitude(BufA, NA);
  const uint32_t *MB = B.magnitude(BufB, NB);
  if (NA == 0)
    return B.abs();
  if (NB == 0)
    return A.abs();
  std::vector<uint32_t> X(MA, MA + NA);
  std::vector<uint32_t> Y(MB, MB + NB);
  size_t ShiftX = trailingZeroBits(X);
  size_t ShiftY = trailingZeroBits(Y);
  size_t Common = std::min(ShiftX, ShiftY);
  shiftRightBits(X, ShiftX);
  shiftRightBits(Y, ShiftY);
  // Both odd from here on: the difference of two distinct odd values is
  // even and nonzero, so every round strips at least one bit.
  while (true) {
    int Cmp = compareMag(X.data(), X.size(), Y.data(), Y.size());
    if (Cmp == 0)
      break;
    if (Cmp < 0)
      X.swap(Y);
    X = subMag(X.data(), X.size(), Y.data(), Y.size());
    shiftRightBits(X, trailingZeroBits(X));
  }
  shiftLeftBits(X, Common);
  return fromSignMagnitude(/*Sign=*/1, std::move(X));
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  BigInt G = gcd(A, B);
  return (A.abs() / G) * B.abs();
}

size_t BigInt::hash() const {
  uint32_t Buf[2];
  size_t NumLimbs;
  const uint32_t *Limbs = magnitude(Buf, NumLimbs);
  // Hash sign + magnitude limbs so both representations of a value (were
  // canonicality ever relaxed) and all history of a value agree.
  size_t H = static_cast<size_t>(sign() + 1);
  for (size_t I = 0; I < NumLimbs; ++I)
    H = H * 1000003u + Limbs[I];
  return H;
}
