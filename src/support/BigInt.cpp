//===- support/BigInt.cpp - Arbitrary-precision signed integers ----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BigInt.h"

#include <algorithm>

using namespace pathinv;

static constexpr uint64_t LimbBase = uint64_t(1) << 32;

void BigInt::normalize() {
  while (!Limbs.empty() && Limbs.back() == 0)
    Limbs.pop_back();
  if (Limbs.empty())
    Sign = 0;
}

BigInt::BigInt(int64_t Value) {
  if (Value == 0)
    return;
  Sign = Value < 0 ? -1 : 1;
  // Avoid UB on INT64_MIN by working in uint64_t.
  uint64_t Mag = Value < 0 ? ~static_cast<uint64_t>(Value) + 1
                           : static_cast<uint64_t>(Value);
  Limbs.push_back(static_cast<uint32_t>(Mag & 0xffffffffu));
  if (Mag >> 32)
    Limbs.push_back(static_cast<uint32_t>(Mag >> 32));
}

BigInt::BigInt(std::string_view Decimal) {
  [[maybe_unused]] bool Ok = fromString(Decimal, *this);
  assert(Ok && "malformed decimal literal");
}

bool BigInt::fromString(std::string_view Decimal, BigInt &Out) {
  bool Negative = false;
  if (!Decimal.empty() && (Decimal[0] == '-' || Decimal[0] == '+')) {
    Negative = Decimal[0] == '-';
    Decimal.remove_prefix(1);
  }
  if (Decimal.empty())
    return false;

  BigInt Result;
  const BigInt Ten(10);
  for (char C : Decimal) {
    if (C < '0' || C > '9')
      return false;
    Result = Result * Ten + BigInt(C - '0');
  }
  if (Negative)
    Result = -Result;
  Out = std::move(Result);
  return true;
}

bool BigInt::fitsInt64() const {
  if (Limbs.size() > 2)
    return false;
  if (Limbs.size() < 2)
    return true;
  uint64_t Mag = (static_cast<uint64_t>(Limbs[1]) << 32) | Limbs[0];
  // INT64_MIN's magnitude is 2^63.
  if (Sign < 0)
    return Mag <= (uint64_t(1) << 63);
  return Mag <= static_cast<uint64_t>(INT64_MAX);
}

int64_t BigInt::toInt64() const {
  assert(fitsInt64() && "BigInt does not fit in int64_t");
  uint64_t Mag = 0;
  if (!Limbs.empty())
    Mag = Limbs[0];
  if (Limbs.size() > 1)
    Mag |= static_cast<uint64_t>(Limbs[1]) << 32;
  if (Sign < 0)
    return static_cast<int64_t>(~Mag + 1);
  return static_cast<int64_t>(Mag);
}

int BigInt::compareMagnitude(const std::vector<uint32_t> &A,
                             const std::vector<uint32_t> &B) {
  if (A.size() != B.size())
    return A.size() < B.size() ? -1 : 1;
  for (size_t I = A.size(); I-- > 0;)
    if (A[I] != B[I])
      return A[I] < B[I] ? -1 : 1;
  return 0;
}

std::vector<uint32_t> BigInt::addMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  const std::vector<uint32_t> &Long = A.size() >= B.size() ? A : B;
  const std::vector<uint32_t> &Short = A.size() >= B.size() ? B : A;
  std::vector<uint32_t> Result;
  Result.reserve(Long.size() + 1);
  uint64_t Carry = 0;
  for (size_t I = 0; I < Long.size(); ++I) {
    uint64_t Sum = Carry + Long[I] + (I < Short.size() ? Short[I] : 0);
    Result.push_back(static_cast<uint32_t>(Sum & 0xffffffffu));
    Carry = Sum >> 32;
  }
  if (Carry)
    Result.push_back(static_cast<uint32_t>(Carry));
  return Result;
}

std::vector<uint32_t> BigInt::subMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  assert(compareMagnitude(A, B) >= 0 && "subMagnitude requires |A| >= |B|");
  std::vector<uint32_t> Result;
  Result.reserve(A.size());
  int64_t Borrow = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    int64_t Diff = static_cast<int64_t>(A[I]) - Borrow -
                   (I < B.size() ? static_cast<int64_t>(B[I]) : 0);
    if (Diff < 0) {
      Diff += static_cast<int64_t>(LimbBase);
      Borrow = 1;
    } else {
      Borrow = 0;
    }
    Result.push_back(static_cast<uint32_t>(Diff));
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

std::vector<uint32_t> BigInt::mulMagnitude(const std::vector<uint32_t> &A,
                                           const std::vector<uint32_t> &B) {
  if (A.empty() || B.empty())
    return {};
  std::vector<uint32_t> Result(A.size() + B.size(), 0);
  for (size_t I = 0; I < A.size(); ++I) {
    uint64_t Carry = 0;
    for (size_t J = 0; J < B.size(); ++J) {
      uint64_t Cur = Result[I + J] +
                     static_cast<uint64_t>(A[I]) * B[J] + Carry;
      Result[I + J] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
    }
    size_t K = I + B.size();
    while (Carry) {
      uint64_t Cur = Result[K] + Carry;
      Result[K] = static_cast<uint32_t>(Cur & 0xffffffffu);
      Carry = Cur >> 32;
      ++K;
    }
  }
  while (!Result.empty() && Result.back() == 0)
    Result.pop_back();
  return Result;
}

std::vector<uint32_t>
BigInt::divModMagnitude(const std::vector<uint32_t> &A,
                        const std::vector<uint32_t> &B,
                        std::vector<uint32_t> &Rem) {
  assert(!B.empty() && "division by zero magnitude");
  if (compareMagnitude(A, B) < 0) {
    Rem = A;
    return {};
  }
  // Fast path: single-limb divisor.
  if (B.size() == 1) {
    uint64_t Div = B[0];
    std::vector<uint32_t> Quot(A.size(), 0);
    uint64_t Carry = 0;
    for (size_t I = A.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | A[I];
      Quot[I] = static_cast<uint32_t>(Cur / Div);
      Carry = Cur % Div;
    }
    while (!Quot.empty() && Quot.back() == 0)
      Quot.pop_back();
    Rem.clear();
    if (Carry)
      Rem.push_back(static_cast<uint32_t>(Carry));
    return Quot;
  }

  // General case: bitwise long division. Slow but simple and exact; the
  // synthesis pipeline keeps numbers small enough that this never dominates.
  std::vector<uint32_t> Quot(A.size(), 0);
  std::vector<uint32_t> Cur; // running remainder
  for (size_t LimbIdx = A.size(); LimbIdx-- > 0;) {
    for (int Bit = 31; Bit >= 0; --Bit) {
      // Cur = Cur * 2 + bit.
      uint32_t CarryBit = (A[LimbIdx] >> Bit) & 1;
      for (auto &Limb : Cur) {
        uint32_t NewCarry = Limb >> 31;
        Limb = (Limb << 1) | CarryBit;
        CarryBit = NewCarry;
      }
      if (CarryBit)
        Cur.push_back(CarryBit);
      if (compareMagnitude(Cur, B) >= 0) {
        Cur = subMagnitude(Cur, B);
        Quot[LimbIdx] |= uint32_t(1) << Bit;
      }
    }
  }
  while (!Quot.empty() && Quot.back() == 0)
    Quot.pop_back();
  Rem = std::move(Cur);
  return Quot;
}

BigInt BigInt::operator-() const {
  BigInt Result = *this;
  Result.Sign = -Result.Sign;
  return Result;
}

BigInt BigInt::abs() const {
  BigInt Result = *this;
  if (Result.Sign < 0)
    Result.Sign = 1;
  return Result;
}

BigInt BigInt::operator+(const BigInt &RHS) const {
  if (Sign == 0)
    return RHS;
  if (RHS.Sign == 0)
    return *this;
  BigInt Result;
  if (Sign == RHS.Sign) {
    Result.Sign = Sign;
    Result.Limbs = addMagnitude(Limbs, RHS.Limbs);
    return Result;
  }
  int Cmp = compareMagnitude(Limbs, RHS.Limbs);
  if (Cmp == 0)
    return Result; // zero
  if (Cmp > 0) {
    Result.Sign = Sign;
    Result.Limbs = subMagnitude(Limbs, RHS.Limbs);
  } else {
    Result.Sign = RHS.Sign;
    Result.Limbs = subMagnitude(RHS.Limbs, Limbs);
  }
  return Result;
}

BigInt BigInt::operator-(const BigInt &RHS) const { return *this + (-RHS); }

BigInt BigInt::operator*(const BigInt &RHS) const {
  BigInt Result;
  if (Sign == 0 || RHS.Sign == 0)
    return Result;
  Result.Sign = Sign * RHS.Sign;
  Result.Limbs = mulMagnitude(Limbs, RHS.Limbs);
  Result.normalize();
  return Result;
}

void BigInt::divMod(const BigInt &Num, const BigInt &Den, BigInt &Quot,
                    BigInt &Rem) {
  assert(!Den.isZero() && "division by zero");
  std::vector<uint32_t> RemMag;
  std::vector<uint32_t> QuotMag = divModMagnitude(Num.Limbs, Den.Limbs, RemMag);
  Quot = BigInt();
  Rem = BigInt();
  if (!QuotMag.empty()) {
    Quot.Sign = Num.Sign * Den.Sign;
    Quot.Limbs = std::move(QuotMag);
  }
  if (!RemMag.empty()) {
    Rem.Sign = Num.Sign;
    Rem.Limbs = std::move(RemMag);
  }
}

BigInt BigInt::operator/(const BigInt &RHS) const {
  BigInt Quot, Rem;
  divMod(*this, RHS, Quot, Rem);
  return Quot;
}

BigInt BigInt::operator%(const BigInt &RHS) const {
  BigInt Quot, Rem;
  divMod(*this, RHS, Quot, Rem);
  return Rem;
}

BigInt BigInt::floorDiv(const BigInt &RHS) const {
  BigInt Quot, Rem;
  divMod(*this, RHS, Quot, Rem);
  // Truncation equals floor unless signs differ and there is a remainder.
  if (!Rem.isZero() && (Sign * RHS.Sign) < 0)
    Quot -= BigInt(1);
  return Quot;
}

int BigInt::compare(const BigInt &RHS) const {
  if (Sign != RHS.Sign)
    return Sign < RHS.Sign ? -1 : 1;
  int MagCmp = compareMagnitude(Limbs, RHS.Limbs);
  return Sign >= 0 ? MagCmp : -MagCmp;
}

BigInt BigInt::gcd(BigInt A, BigInt B) {
  A = A.abs();
  B = B.abs();
  while (!B.isZero()) {
    BigInt R = A % B;
    A = std::move(B);
    B = std::move(R);
  }
  return A;
}

BigInt BigInt::lcm(const BigInt &A, const BigInt &B) {
  if (A.isZero() || B.isZero())
    return BigInt();
  BigInt G = gcd(A, B);
  return (A.abs() / G) * B.abs();
}

std::string BigInt::toString() const {
  if (Sign == 0)
    return "0";
  std::string Digits;
  std::vector<uint32_t> Mag = Limbs;
  while (!Mag.empty()) {
    // Divide magnitude by 10^9 and emit the remainder.
    uint64_t Carry = 0;
    for (size_t I = Mag.size(); I-- > 0;) {
      uint64_t Cur = (Carry << 32) | Mag[I];
      Mag[I] = static_cast<uint32_t>(Cur / 1000000000u);
      Carry = Cur % 1000000000u;
    }
    while (!Mag.empty() && Mag.back() == 0)
      Mag.pop_back();
    for (int I = 0; I < 9; ++I) {
      Digits.push_back(static_cast<char>('0' + Carry % 10));
      Carry /= 10;
    }
  }
  while (Digits.size() > 1 && Digits.back() == '0')
    Digits.pop_back();
  if (Sign < 0)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

size_t BigInt::hash() const {
  size_t H = static_cast<size_t>(Sign + 1);
  for (uint32_t Limb : Limbs)
    H = H * 1000003u + Limb;
  return H;
}
