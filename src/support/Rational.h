//===- support/Rational.h - Exact rational numbers -------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic over \c BigInt.
///
/// All linear-arithmetic reasoning in the simplex core and in Farkas
/// constraint generation is performed over these rationals, mirroring the
/// exactness guarantee the paper obtained from SICStus CLP(Q).
/// Invariant: the denominator is strictly positive and gcd(num, den) == 1.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_RATIONAL_H
#define PATHINV_SUPPORT_RATIONAL_H

#include "support/BigInt.h"

#include <string>

namespace pathinv {

/// Exact rational number in lowest terms with positive denominator.
class Rational {
public:
  /// Constructs zero.
  Rational() : Den(1) {}

  /// Constructs the integer \p Value.
  Rational(int64_t Value) : Num(Value), Den(1) {}

  /// Constructs \p Num / \p Den; asserts \p Den != 0.
  Rational(BigInt Num, BigInt Den);

  /// Constructs the integer \p Value.
  explicit Rational(BigInt Value) : Num(std::move(Value)), Den(1) {}

  /// Convenience for small fractions in tests: \p Num / \p Den.
  static Rational fraction(int64_t Num, int64_t Den) {
    return Rational(BigInt(Num), BigInt(Den));
  }

  /// Parses "a", "-a", or "a/b" decimal forms. Returns false on bad input.
  static bool fromString(std::string_view Text, Rational &Out);

  const BigInt &numerator() const { return Num; }
  const BigInt &denominator() const { return Den; }

  bool isZero() const { return Num.isZero(); }
  bool isNegative() const { return Num.isNegative(); }
  bool isPositive() const { return Num.sign() > 0; }
  bool isInteger() const { return Den.isOne(); }
  bool isOne() const { return Num.isOne() && Den.isOne(); }
  int sign() const { return Num.sign(); }

  /// Largest integer <= this.
  BigInt floor() const;
  /// Smallest integer >= this.
  BigInt ceil() const;

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Asserts RHS != 0.
  Rational operator/(const Rational &RHS) const;
  /// Multiplicative inverse; asserts non-zero.
  Rational inverse() const;
  Rational abs() const { return isNegative() ? -*this : *this; }

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  /// Accumulate ops for the simplex inner loop: `*this += A * B` (resp.
  /// `-=`) without materializing the product rational. When every
  /// component is inline the whole update runs in 128-bit machine
  /// arithmetic with cross-gcd reduction and performs no allocation.
  /// Operands may alias *this (all reads happen before the first write).
  Rational &addMul(const Rational &A, const Rational &B) {
    return accumMul(A, B, /*Negate=*/false);
  }
  Rational &subMul(const Rational &A, const Rational &B) {
    return accumMul(A, B, /*Negate=*/true);
  }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const { return compare(RHS) < 0; }
  bool operator<=(const Rational &RHS) const { return compare(RHS) <= 0; }
  bool operator>(const Rational &RHS) const { return compare(RHS) > 0; }
  bool operator>=(const Rational &RHS) const { return compare(RHS) >= 0; }

  /// Three-way comparison.
  int compare(const Rational &RHS) const;

  /// Renders "n" for integers, "n/d" otherwise.
  std::string toString() const;

  size_t hash() const { return Num.hash() * 33 + Den.hash(); }

private:
  void normalize();

  /// Shared body of addMul/subMul: `*this += A * B * (Negate ? -1 : 1)`.
  Rational &accumMul(const Rational &A, const Rational &B, bool Negate);

  /// Reduces N/D (D > 0) by their 128-bit gcd and builds the rational;
  /// components still exceeding int64 promote to heap BigInts.
  static Rational fromReduced128(__int128 N, __int128 D);

  /// Builds a rational already known to be in lowest terms with a positive
  /// denominator, skipping normalization.
  static Rational fromReduced(BigInt N, BigInt D) {
    Rational R;
    R.Num = std::move(N);
    R.Den = std::move(D);
    assert(R.Den.sign() > 0 && "fromReduced with non-positive denominator");
    return R;
  }

  BigInt Num;
  BigInt Den; ///< Always > 0.
};

} // namespace pathinv

#endif // PATHINV_SUPPORT_RATIONAL_H
