//===- support/Diagnostics.h - Error reporting helpers ---------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight error propagation without exceptions.
///
/// Library code reports recoverable failures (parse errors, unsupported
/// constructs, solver resource limits) through \c Expected<T>, which carries
/// either a value or a diagnostic message with optional source location.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_DIAGNOSTICS_H
#define PATHINV_SUPPORT_DIAGNOSTICS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pathinv {

/// Source position (1-based) for front-end diagnostics. Line 0 means
/// "no location".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string toString() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

/// A diagnostic message with optional source location.
struct Diag {
  std::string Message;
  SourceLoc Loc;

  std::string render() const {
    if (!Loc.isValid())
      return Message;
    return Loc.toString() + ": " + Message;
  }
};

/// Value-or-diagnostic result type. Minimal replacement for llvm::Expected
/// suitable for exception-free error propagation.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Diag D) : Error(std::move(D)) {}

  /// Creates an error result with message \p Message at \p Loc.
  static Expected<T> makeError(std::string Message, SourceLoc Loc = {}) {
    return Expected<T>(Diag{std::move(Message), Loc});
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  T &get() {
    assert(hasValue() && "accessing value of failed Expected");
    return *Value;
  }
  const T &get() const {
    assert(hasValue() && "accessing value of failed Expected");
    return *Value;
  }
  T &&take() {
    assert(hasValue() && "taking value of failed Expected");
    return std::move(*Value);
  }

  const Diag &error() const {
    assert(!hasValue() && "accessing error of successful Expected");
    return *Error;
  }

private:
  std::optional<T> Value;
  std::optional<Diag> Error;
};

} // namespace pathinv

#endif // PATHINV_SUPPORT_DIAGNOSTICS_H
