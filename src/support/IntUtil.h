//===- support/IntUtil.h - Small machine-integer helpers -------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-sensitive machine-integer helpers shared by the inline-limb
/// fast paths of BigInt and Rational.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_INTUTIL_H
#define PATHINV_SUPPORT_INTUTIL_H

#include <cstdint>

namespace pathinv {
namespace detail {

/// Magnitude of an int64_t without overflow on INT64_MIN.
inline uint64_t absU64(int64_t Value) {
  return Value < 0 ? ~static_cast<uint64_t>(Value) + 1
                   : static_cast<uint64_t>(Value);
}

inline uint64_t gcdU64(uint64_t A, uint64_t B) {
  while (B) {
    uint64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

} // namespace detail
} // namespace pathinv

#endif // PATHINV_SUPPORT_INTUTIL_H
