//===- support/FaultInject.h - Deterministic fault injection ----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, replayable fault injection for the robustness test suite.
///
/// The harness is site-count-based: arming it with N means "the N-th visit
/// to any injection site fails". Because site visits are a deterministic
/// function of the input program and options, a failing N reproduces
/// exactly — a test sweep over N = 1..K exercises a failure at every
/// reachable depth of the stack.
///
/// Six site classes exist:
///  * SolverCheckpoint — the ResourceController's amortized poll; a fault
///    here models a deadline firing at an arbitrary cooperative
///    checkpoint.
///  * ArenaGrowth — TermManager slab allocation; models the arena hitting
///    a memory ceiling.
///  * BigIntPromotion — inline-to-heap promotion in BigInt; models
///    coefficient blowup exhausting memory.
///  * ServeWorkerSpawn — pathinvd worker-thread creation; models thread
///    exhaustion at startup. The server degrades to fewer workers (never
///    below one) instead of dying.
///  * ServeAdmission — pathinvd queue admission; models an allocation
///    failure while enqueueing. The one job is shed with a
///    machine-readable rejection; the queue and every other job are
///    untouched.
///  * ServeCacheInsert — pathinvd verdict-cache insertion; models a
///    failure while publishing a result. The job's answer is unaffected;
///    only the cache misses out on the entry.
///
/// Memory-class sites (ArenaGrowth, BigIntPromotion) fire in layers that
/// cannot see the controller; they set a pending flag the controller
/// consumes at its next checkpoint, so every fault still unwinds through
/// the one cooperative cancellation path. Serve-class sites are consumed
/// directly by the server loop, which degrades the single affected
/// operation and carries on.
///
/// Threading contract: ALL harness state (countdown, visit counter,
/// pending flags) is thread_local. arm() arms the CALLING thread only;
/// site visits on other threads neither count against nor trigger this
/// thread's countdown. This is deliberate: pathinvd workers each arm
/// their own harness (or none), so a sweep injecting into one job cannot
/// perturb a concurrently running job — matching the service's "degrade
/// a job, never the process" contract — and concurrent test shards stay
/// deterministic. A test that wants a fault *inside* a worker must arm on
/// that worker's thread (pathinvd exposes a per-job arming hook for
/// exactly this; see serve/Server.h JobRequest::FaultArm).
///
/// Everything compiles to no-ops unless PATHINV_FAULT_INJECT is defined
/// (CMake option -DPATHINV_FAULT_INJECT=ON), so release builds carry zero
/// overhead and zero extra state.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SUPPORT_FAULTINJECT_H
#define PATHINV_SUPPORT_FAULTINJECT_H

#include <cstdint>

namespace pathinv {
namespace fault {

enum class Site : uint8_t {
  SolverCheckpoint, ///< ResourceController poll.
  ArenaGrowth,      ///< TermManager slab allocation.
  BigIntPromotion,  ///< BigInt inline-to-heap promotion.
  ServeWorkerSpawn, ///< pathinvd worker-thread creation.
  ServeAdmission,   ///< pathinvd job-queue admission.
  ServeCacheInsert, ///< pathinvd verdict-cache insertion.
};

#if defined(PATHINV_FAULT_INJECT)

/// Arms the harness: the \p Countdown-th site visit (1-based) fails.
/// Passing 0 disarms. Resets all counters and pending flags.
void arm(uint64_t Countdown);

/// Disarms the harness and clears pending flags.
void disarm();

/// Records a visit to \p S. \returns true when this visit is the armed
/// one — the caller must fail. Memory-class sites additionally park a
/// pending flag for the controller.
bool shouldFail(Site S);

/// Consumes the pending memory-fault flag set by a memory-class site.
bool consumePendingMemoryFault();

/// Total site visits since the last arm()/disarm(), for sweep sizing: run
/// once uninjected, read the count, then sweep 1..count.
uint64_t siteVisits();

#else

inline void arm(uint64_t) {}
inline void disarm() {}
inline bool shouldFail(Site) { return false; }
inline bool consumePendingMemoryFault() { return false; }
inline uint64_t siteVisits() { return 0; }

#endif // PATHINV_FAULT_INJECT

} // namespace fault
} // namespace pathinv

#endif // PATHINV_SUPPORT_FAULTINJECT_H
