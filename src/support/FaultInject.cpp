//===- support/FaultInject.cpp - Deterministic fault injection ------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#if defined(PATHINV_FAULT_INJECT)

namespace {
// Thread-local so concurrent test shards cannot trip each other.
thread_local uint64_t Countdown = 0; // 0 = disarmed.
thread_local uint64_t Visits = 0;
thread_local bool PendingMemoryFault = false;
} // namespace

namespace pathinv {
namespace fault {

void arm(uint64_t N) {
  Countdown = N;
  Visits = 0;
  PendingMemoryFault = false;
}

void disarm() {
  Countdown = 0;
  PendingMemoryFault = false;
}

bool shouldFail(Site S) {
  ++Visits;
  if (Countdown == 0 || Visits != Countdown)
    return false;
  Countdown = 0; // One-shot: the fault fires exactly once.
  if (S == Site::ArenaGrowth || S == Site::BigIntPromotion)
    PendingMemoryFault = true;
  return true;
}

bool consumePendingMemoryFault() {
  bool Was = PendingMemoryFault;
  PendingMemoryFault = false;
  return Was;
}

uint64_t siteVisits() { return Visits; }

} // namespace fault
} // namespace pathinv

#endif // PATHINV_FAULT_INJECT
