//===- pdr/Pdr.h - The IC3/PDR verification engine --------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-directed reachability over the program's control-flow
/// transition relation, after Bradley's IC3 as adapted to software by
/// Beyer & Dangl (arXiv:1908.06271): per-location clause frames
/// (pdr/Frames.h), a proof-obligation queue processed lowest level
/// first, cube generalization from the incremental solver's
/// failed-assumption cores, clause pushing, and fixpoint detection.
///
/// The cube language is an implicit predicate abstraction: literals over
/// a pool of quantifier-free atoms harvested from the transition
/// relations and grown by the CEGAR refiner's predicates. Frame queries
/// run with exact transition semantics, so every learned clause is sound
/// regardless of how weak the pool is — a weak pool only makes abstract
/// counterexample candidates more frequent. A candidate whose concrete
/// path formula is satisfiable is a real bug (verdict Unsafe, with an
/// interpreter replay); a spurious one refines the pool through the same
/// refinement ladder CEGAR uses, escalating to a whole-program invariant
/// map when per-path refinement stalls (quantified invariants are
/// outside any clause language over QF atoms). A Safe verdict is
/// reported only after the exported invariant map passes the independent
/// checkInvariantMap validation.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_PDR_PDR_H
#define PATHINV_PDR_PDR_H

#include "core/Engine.h"

namespace pathinv {

/// The PDR backend. Frames, the obligation queue, the predicate pool,
/// and the solver contexts persist across run() calls, so a slice-paused
/// job resumes where it stopped.
class PdrEngine final : public VerificationEngine {
public:
  PdrEngine(const Program &P, SmtSolver &Solver, const EngineOptions &Opts);
  ~PdrEngine() override;

  const char *name() const override { return "pdr"; }
  EngineResult run() override;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Verifies \p P with the PDR engine under a fresh per-job
/// ResourceController built from Opts.Limits (the PDR counterpart of
/// pathinv::verify).
EngineResult verifyPdr(const Program &P, SmtSolver &Solver,
                       const EngineOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_PDR_PDR_H
