//===- pdr/Frames.cpp - Delta-encoded PDR clause frames --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pdr/Frames.h"

#include "logic/TermRewrite.h"
#include "smt/SmtSolver.h"

#include <algorithm>

using namespace pathinv;
using namespace pathinv::pdr;

void pathinv::pdr::canonicalizeCube(Cube &C) {
  std::sort(C.begin(), C.end(), TermIdLess());
  C.erase(std::unique(C.begin(), C.end()), C.end());
}

bool pathinv::pdr::cubeSubsumes(const Cube &A, const Cube &B) {
  if (A.size() > B.size())
    return false;
  return std::includes(B.begin(), B.end(), A.begin(), A.end(), TermIdLess());
}

const Term *pathinv::pdr::cubeClause(TermManager &TM, const Cube &C) {
  if (C.empty())
    return TM.mkFalse();
  std::vector<const Term *> Negated;
  Negated.reserve(C.size());
  for (const Term *L : C)
    Negated.push_back(TM.mkNot(L));
  return TM.mkOr(Negated);
}

Frames::Frames(const Program &P)
    : NumLocs(static_cast<size_t>(P.numLocations())) {
  // Levels 0 (implicit init, never stored) and 1 (the first frontier).
  Delta.resize(2, std::vector<std::vector<Cube>>(NumLocs));
}

void Frames::extend() {
  Delta.emplace_back(std::vector<std::vector<Cube>>(NumLocs));
}

void Frames::addBlockedCube(size_t Level, LocId Loc, Cube C) {
  canonicalizeCube(C);
  size_t L = static_cast<size_t>(Loc);
  // Subsumption pruning: the new clause is in every F_1..F_Level, so any
  // stored cube it subsumes at delta <= Level is now redundant.
  for (size_t I = 1; I <= Level; ++I) {
    std::vector<Cube> &Cubes = Delta[I][L];
    Cubes.erase(std::remove_if(Cubes.begin(), Cubes.end(),
                               [&](const Cube &Old) {
                                 return cubeSubsumes(C, Old);
                               }),
                Cubes.end());
  }
  Delta[Level][L].push_back(std::move(C));
}

bool Frames::isBlocked(size_t Level, LocId Loc, const Cube &C) const {
  size_t L = static_cast<size_t>(Loc);
  for (size_t I = Level; I < Delta.size(); ++I)
    for (const Cube &Stored : Delta[I][L])
      if (cubeSubsumes(Stored, C))
        return true;
  return false;
}

void Frames::collectClauses(TermManager &TM, size_t Level, LocId Loc,
                            std::vector<const Term *> &Out) const {
  size_t L = static_cast<size_t>(Loc);
  for (size_t I = std::max<size_t>(Level, 1); I < Delta.size(); ++I)
    for (const Cube &C : Delta[I][L])
      Out.push_back(cubeClause(TM, C));
}

void Frames::pushCube(size_t Level, LocId Loc, size_t Index) {
  size_t L = static_cast<size_t>(Loc);
  std::vector<Cube> &Cubes = Delta[Level][L];
  Cube Moved = std::move(Cubes[Index]);
  Cubes.erase(Cubes.begin() + static_cast<ptrdiff_t>(Index));
  // Re-insert through the subsuming path so a pushed clause retires any
  // weaker one already sitting at the higher level.
  addBlockedCube(Level + 1, Loc, std::move(Moved));
}

int Frames::fixpointLevel() const {
  // The frontier itself is excluded: F_frontier has not passed its
  // bad-state check yet, so an empty frontier delta proves nothing.
  for (size_t I = 1; I + 1 < Delta.size(); ++I) {
    bool Empty = true;
    for (const std::vector<Cube> &Cubes : Delta[I])
      if (!Cubes.empty()) {
        Empty = false;
        break;
      }
    if (Empty)
      return static_cast<int>(I);
  }
  return -1;
}

InvariantMap Frames::invariantMap(TermManager &TM, const Program &P,
                                  size_t Level) const {
  InvariantMap Map;
  for (int Loc = 0; Loc < P.numLocations(); ++Loc) {
    if (Loc == P.entry())
      continue; // (I0): entry is implicitly true.
    if (Loc == P.error()) {
      Map.Inv[Loc] = TM.mkFalse(); // (I2).
      continue;
    }
    std::vector<const Term *> Clauses;
    collectClauses(TM, Level, Loc, Clauses);
    if (Clauses.empty())
      continue; // Implicitly true.
    Map.Inv[Loc] = Clauses.size() == 1 ? Clauses.front() : TM.mkAnd(Clauses);
  }
  return Map;
}

uint64_t Frames::totalClauses() const {
  uint64_t N = 0;
  for (const auto &Level : Delta)
    for (const auto &Cubes : Level)
      N += Cubes.size();
  return N;
}

unsigned pathinv::pdr::verifyFrames(const Program &P, SmtSolver &Solver,
                                    const Frames &F) {
  TermManager &TM = P.termManager();
  unsigned Violations = 0;
  auto prime = [&TM](const Term *L) {
    return renameVars(TM, L, [&TM](const Term *V) -> const Term * {
      return isPrimedVar(V) ? nullptr : primedVar(TM, V);
    });
  };
  auto isSat = [&](std::vector<const Term *> Conj) {
    if (Conj.empty())
      return false;
    const Term *Q = Conj.size() == 1 ? Conj.front() : TM.mkAnd(Conj);
    // Unknown (resource trip, unsupported fragment) is not a violation:
    // the checker validates the frames, not the solver's stamina.
    return Solver.checkSat(Q) == SmtSolver::Status::Sat;
  };

  for (size_t Level = 1; Level <= F.frontier(); ++Level) {
    for (int Loc = 0; Loc < P.numLocations(); ++Loc) {
      const std::vector<Cube> &Cubes = F.cubesAt(Level, Loc);
      // (a) The entry location never carries a clause.
      if (Loc == P.entry() && !Cubes.empty()) {
        ++Violations;
        continue;
      }
      for (const Cube &C : Cubes) {
        // (b) Semantic containment F_{Level-1} ⊆ F_Level as state sets:
        // the clause ¬C of F_Level must be entailed one level down, i.e.
        // F_{Level-1}[Loc] ∧ C is unsatisfiable. (Delta encoding makes
        // this hold syntactically; the semantic query validates the
        // encoding end to end.)
        if (Level > 1) {
          std::vector<const Term *> Conj;
          F.collectClauses(TM, Level - 1, Loc, Conj);
          Conj.insert(Conj.end(), C.begin(), C.end());
          if (isSat(std::move(Conj)))
            ++Violations;
        }
        // (c) Relative inductiveness at the blocking level: no incoming
        // transition may produce a C-state from an F_{Level-1} state.
        for (int TIdx = 0; TIdx < P.numTransitions(); ++TIdx) {
          const Transition &T = P.transition(TIdx);
          if (T.To != Loc)
            continue;
          if (Level == 1 && T.From != P.entry())
            continue; // F_0[From] = false: vacuously inductive.
          std::vector<const Term *> Conj;
          F.collectClauses(TM, Level - 1, T.From, Conj);
          Conj.push_back(T.Rel);
          for (const Term *L : C)
            Conj.push_back(prime(L));
          if (isSat(std::move(Conj)))
            ++Violations;
        }
      }
    }
  }
  return Violations;
}
