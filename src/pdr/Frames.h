//===- pdr/Frames.h - Delta-encoded PDR clause frames -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frame trail of IC3/PDR, per location. A *cube* is a conjunction of
/// literals over the unprimed program variables; blocking cube c at level
/// i adds the clause ¬c to frames F_1..F_i. Frames are delta-encoded:
/// each cube is stored only at the highest level it is blocked at, and
/// F_i[loc] is the conjunction of the clauses stored at delta levels
/// >= i — so F_{i+1}[loc] ⊆ F_i[loc] (as clause sets) holds by
/// construction and pushing a clause up a level is a move, not a copy.
///
/// F_0 is the init frame and is never stored: F_0[entry] = true,
/// F_0[loc] = false elsewhere. The entry location never carries clauses
/// (its init is unconstrained, so any cube there is init-reachable);
/// an obligation reaching entry is an abstract counterexample candidate,
/// not something to block.
///
/// Fixpoint: when some delta level 1 <= i < frontier is empty at every
/// location, F_i == F_{i+1}, so F_i is an inductive one-step-safe
/// invariant and invariantMap(i) exports it in the Section 3 form
/// (error ↦ false, entry implicitly true).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_PDR_FRAMES_H
#define PATHINV_PDR_FRAMES_H

#include "program/Program.h"
#include "synth/InvariantMap.h"

#include <vector>

namespace pathinv {
namespace pdr {

/// A conjunction of literals over unprimed program variables, kept
/// canonical (sorted by term id, deduplicated). The empty cube is `true`
/// — blocking it asserts the location unreachable at that level.
using Cube = std::vector<const Term *>;

/// Sorts by stable term id and deduplicates, the canonical form every
/// Frames entry point expects and preserves.
void canonicalizeCube(Cube &C);

/// \returns true when \p A's literals are a subset of \p B's (both
/// canonical). A smaller cube denotes more states, so its clause ¬A is
/// stronger: blocking A subsumes blocking B.
bool cubeSubsumes(const Cube &A, const Cube &B);

/// The per-location frame trail.
class Frames {
public:
  /// Starts with frontier() == 1 and F_1 empty (true everywhere).
  explicit Frames(const Program &P);

  /// The current frontier level k.
  size_t frontier() const { return Delta.size() - 1; }

  /// Opens frame k+1 (empty). Call only after the bad-state check at the
  /// current frontier came back clean.
  void extend();

  /// Blocks \p C at \p Level: stores it at delta \p Level and drops every
  /// cube at delta 1..Level it subsumes. \p C is canonicalized in place.
  void addBlockedCube(size_t Level, LocId Loc, Cube C);

  /// \returns true when \p C is already blocked at \p Level — some stored
  /// cube at delta >= Level subsumes it (syntactic check).
  bool isBlocked(size_t Level, LocId Loc, const Cube &C) const;

  /// Appends the clause terms of F_Level[Loc] (negations of every cube at
  /// delta >= Level) to \p Out.
  void collectClauses(TermManager &TM, size_t Level, LocId Loc,
                      std::vector<const Term *> &Out) const;

  /// The cubes stored at exactly delta \p Level (the push phase walks
  /// these). The returned reference is invalidated by addBlockedCube /
  /// pushCube at that level.
  const std::vector<Cube> &cubesAt(size_t Level, LocId Loc) const {
    return Delta[Level][static_cast<size_t>(Loc)];
  }

  /// Moves \p Index-th cube of delta \p Level at \p Loc up to Level+1
  /// (it was shown relatively inductive one level higher).
  void pushCube(size_t Level, LocId Loc, size_t Index);

  /// The smallest level 1 <= i < frontier whose delta is empty at every
  /// location (F_i == F_{i+1}), or -1 when none is. The frontier itself
  /// never qualifies — it has not passed its bad-state check yet.
  int fixpointLevel() const;

  /// Exports F_Level as a Section 3 invariant map: error ↦ false, entry
  /// absent (implicitly true), every other location ↦ the conjunction of
  /// its clauses (absent when clause-free).
  InvariantMap invariantMap(TermManager &TM, const Program &P,
                            size_t Level) const;

  /// Total clauses currently stored (all delta levels).
  uint64_t totalClauses() const;

private:
  size_t NumLocs;
  /// Delta[level][loc] = cubes blocked exactly at that level; level 0 is
  /// unused (the init frame is implicit).
  std::vector<std::vector<std::vector<Cube>>> Delta;
};

/// The clause ¬cube: disjunction of negated literals (false for the
/// empty cube).
const Term *cubeClause(TermManager &TM, const Cube &C);

/// Validates \p F against the definition of a PDR frame sequence:
/// (a) the entry location never carries a clause (its init frame is
/// unconstrained, so any cube there is init-reachable); (b) semantic
/// containment F_i ⊆ F_{i+1} as state sets — every clause of F_{i+1}
/// is entailed by F_i — for 1 <= i < frontier; (c) every clause is
/// inductive relative to the frame below its blocking level: for a cube
/// c blocked at level D and each incoming transition From → Loc,
/// F_{D-1}[From] ∧ Rel ∧ c' is unsatisfiable. Queries that end Unknown
/// (a tripped ResourceController or an unsupported fragment) do not
/// count against well-formedness — only a satisfiable witness does.
/// \returns the number of violations (0 = well-formed). The PDR engine
/// asserts this in Debug builds before reporting a frame-based proof;
/// tests call it directly.
unsigned verifyFrames(const Program &P, SmtSolver &Solver, const Frames &F);

} // namespace pdr
} // namespace pathinv

#endif // PATHINV_PDR_FRAMES_H
