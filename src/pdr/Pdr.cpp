//===- pdr/Pdr.cpp - The IC3/PDR verification engine -----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pdr/Pdr.h"

#include "logic/TermRewrite.h"
#include "pdr/Frames.h"
#include "program/PathFormula.h"
#include "smt/FrameQuery.h"
#include "smt/SmtSolver.h"
#include "support/BigInt.h"
#include "synth/PathInvariants.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>

using namespace pathinv;
using namespace pathinv::pdr;

namespace {

/// Whether the abstract search should keep going (Ok) or unwind to
/// run()'s epilogue (Stop — verdict reached, resources out, slice pause,
/// or an unanalyzable query; run() tells the cases apart afterwards).
enum class Step : uint8_t { Ok, Stop };

} // namespace

/// The whole engine state, persistent across run() calls: frames, the
/// obligation arena + queue, the atom pool, the two solver paths
/// (incremental frame-query context and the one-shot facade for
/// store-carrying relations), and the CEGAR-shared precision that grows
/// the pool on refinement.
struct PdrEngine::Impl {
  Impl(const Program &P, SmtSolver &Solver, const EngineOptions &Opts)
      : P(P), Solver(Solver), Opts(Opts), TM(P.termManager()),
        FQ(TM), F(P), Incoming(static_cast<size_t>(P.numLocations())) {
    for (int T = 0; T < P.numTransitions(); ++T)
      Incoming[static_cast<size_t>(P.transition(T).To)].push_back(T);
    rebuildPool();
    // Persistent conflict-learning state for the synthesis searches of
    // refineSpurious and the whole-program escalation (Opts is a copy, so
    // the pointer stays valid for the engine's lifetime).
    if (!this->Opts.PathInv.Synth.Learner)
      this->Opts.PathInv.Synth.Learner = &Learner;
  }

  const Program &P;
  SmtSolver &Solver;
  EngineOptions Opts;
  TermManager &TM;
  smt::FrameQueryContext FQ;
  Frames F;
  EngineResult Result;
  /// Conflict-learning state shared by every synthesis search this job
  /// runs; combo verdicts persist across refinement rounds.
  SynthLearner Learner;

  /// The cube language: quantifier-free, store-free atoms over unprimed
  /// variables, harvested from the transition relations and from every
  /// refinement-contributed predicate. Deterministically ordered.
  std::vector<const Term *> Pool;
  size_t PoolStamp = 0; ///< Predicates.totalPredicates() at last rebuild.

  /// Incoming-transition index (the Program only indexes successors).
  std::vector<std::vector<int>> Incoming;

  /// Proof-obligation arena. Parent/Trans chains reconstruct the abstract
  /// path entry → error when an obligation reaches the entry location.
  struct ObNode {
    LocId Loc;
    Cube C;
    int Parent; ///< Arena index, -1 for the bad-check root.
    int Trans;  ///< Transition out of Loc toward the parent (or error).
  };
  std::vector<ObNode> Nodes;
  /// Min-queue on (level, insertion order): lowest levels first, FIFO on
  /// ties, so the search is deterministic and depth-directed.
  std::set<std::tuple<size_t, uint64_t, int>> Queue;
  uint64_t Seq = 0;

  uint64_t Iter = 0; ///< Refinement rounds (vs Opts.MaxRefinements).
  bool TriedWholeProgram = false;
  bool Done = false; ///< Terminal (not just slice-paused) outcome.

  // -- helpers ------------------------------------------------------------

  void enqueue(size_t Level, int NodeIdx) {
    Queue.emplace(Level, Seq++, NodeIdx);
  }

  const Term *primeLit(const Term *L) {
    return renameVars(TM, L, [this](const Term *V) -> const Term * {
      return isPrimedVar(V) ? nullptr : primedVar(TM, V);
    });
  }

  void addPoolAtoms(const Term *T, std::vector<const Term *> &Out) {
    if (containsQuantifier(T) || containsStore(T))
      return;
    TermSet Atoms;
    collectAtoms(T, Atoms);
    for (const Term *A : Atoms) {
      TermSet Vars;
      collectFreeVars(A, Vars);
      bool AnyPrimed = false, AnyUnprimed = false;
      for (const Term *V : Vars)
        (isPrimedVar(V) ? AnyPrimed : AnyUnprimed) = true;
      if (AnyPrimed && AnyUnprimed)
        continue; // A transition constraint, not a state predicate.
      const Term *U = A;
      if (AnyPrimed)
        U = renameVars(TM, A, [this](const Term *V) -> const Term * {
          return isPrimedVar(V) ? unprimedVar(TM, V) : nullptr;
        });
      Out.push_back(U);
    }
  }

  /// (Re)harvests the atom pool from the transition relations and the
  /// current precision. Deterministic: candidates are sorted by term id.
  void rebuildPool() {
    std::vector<const Term *> Atoms;
    for (const Transition &T : P.transitions())
      addPoolAtoms(T.Rel, Atoms);
    for (const Term *Pred : Result.Predicates.global())
      addPoolAtoms(Pred, Atoms);
    for (int Loc = 0; Loc < P.numLocations(); ++Loc)
      for (const Term *Pred : Result.Predicates.scopedAt(Loc))
        addPoolAtoms(Pred, Atoms);
    std::sort(Atoms.begin(), Atoms.end(), TermIdLess());
    Atoms.erase(std::unique(Atoms.begin(), Atoms.end()), Atoms.end());
    Pool = std::move(Atoms);
    PoolStamp = Result.Predicates.totalPredicates();
  }

  /// Projects \p M onto the pool: the strongest cube over pool literals
  /// the model satisfies (atoms the model leaves unconstrained or that
  /// are not linear literals are skipped).
  Cube cubeFromModel(const smt::Model &M) {
    Cube C;
    for (const Term *A : Pool) {
      std::optional<bool> V = smt::evalLiteral(M, A);
      if (!V)
        continue;
      C.push_back(*V ? A : TM.mkNot(A));
    }
    canonicalizeCube(C);
    return C;
  }

  /// The abstract path entry → error of the obligation chain rooted at
  /// \p NodeIdx (which must sit at the entry location).
  Path pathFromNode(int NodeIdx) const {
    Path Steps;
    for (int N = NodeIdx; N != -1; N = Nodes[N].Parent)
      Steps.push_back(Nodes[N].Trans);
    return Steps;
  }

  /// A query came back Unknown: the controller tripped mid-check (real
  /// exhaustion or a portfolio slice pause), or the formula left the
  /// supported fragment. Either way the verdict is Unknown; run()'s
  /// epilogue distinguishes pause from terminal via slicePaused().
  Step unknownQuery() {
    Result.Note = resourceExhausted()
                      ? "resources exhausted during pdr frame query"
                      : "pdr frame query outside supported fragment";
    return Step::Stop;
  }

  Step descend(int NodeIdx, size_t Level, int TransIdx, const smt::Model &M);
  Step processNext();
  Step handleCexCandidate(int NodeIdx);
  Step refineSpurious(const Path &Cex);
  bool tryWholeProgramEscalation();
  Step badCheck(bool &Found);
  Step pushPhase();
  Step tryFixpoint();
  void runLoop();
};

/// A frame query found a concrete one-step predecessor: extend the
/// obligation chain toward the initial states and retry the parent once
/// the predecessor is dealt with.
Step PdrEngine::Impl::descend(int NodeIdx, size_t Level, int TransIdx,
                              const smt::Model &M) {
  Cube PC = cubeFromModel(M);
  LocId From = P.transition(TransIdx).From;
  Nodes.push_back({From, std::move(PC), NodeIdx, TransIdx});
  enqueue(Level - 1, static_cast<int>(Nodes.size()) - 1);
  enqueue(Level, NodeIdx);
  return Step::Ok;
}

Step PdrEngine::Impl::processNext() {
  auto It = Queue.begin();
  size_t Level = std::get<0>(*It);
  int NodeIdx = std::get<2>(*It);
  Queue.erase(It);

  ++Result.Stats.PdrObligations;
  if (!resourceCharge(ResourceKind::PdrObligations)) {
    Result.Note = "resources exhausted processing pdr obligations";
    return Step::Stop;
  }

  LocId Loc = Nodes[NodeIdx].Loc;
  // An obligation at the entry location (or at level 0, which implies
  // entry: level-0 predecessors only arise through init-satisfiable
  // frames) is an abstract counterexample candidate — entry's init is
  // unconstrained, so its cube cannot be blocked.
  if (Loc == P.entry() || Level == 0)
    return handleCexCandidate(NodeIdx);

  Cube C = Nodes[NodeIdx].C; // Copy: Nodes may grow below.
  if (F.isBlocked(Level, Loc, C)) {
    if (Level < F.frontier())
      enqueue(Level + 1, NodeIdx);
    return Step::Ok;
  }

  // Try to block C at Level: relative to F_{Level-1}, no incoming
  // transition may produce a C-state. Unsat cores across all incoming
  // transitions generalize the blocked cube to the literals that were
  // actually needed.
  bool NoGen = false;
  Cube Kept;
  for (int TIdx : Incoming[static_cast<size_t>(Loc)]) {
    const Transition &T = P.transition(TIdx);
    if (T.From != P.entry() && Level == 1)
      continue; // F_0[From] = false: vacuously unsat, constrains nothing.
    std::vector<const Term *> Base;
    F.collectClauses(TM, Level - 1, T.From, Base);
    if (T.From == Loc)
      Base.push_back(cubeClause(TM, C)); // Relative induction: F ∧ ¬c.
    if (containsStore(T.Rel)) {
      // Store-carrying relation: route through the one-shot facade
      // (whole-formula array-write elimination). No assumption core, so
      // this transition forfeits generalization for the whole cube.
      ++Result.Stats.PdrFacadeQueries;
      std::vector<const Term *> All = Base;
      All.push_back(T.Rel);
      for (const Term *L : C)
        All.push_back(primeLit(L));
      SmtSolver::Status S =
          Solver.checkSat(All.size() == 1 ? All.front() : TM.mkAnd(All));
      if (S == SmtSolver::Status::Unknown)
        return unknownQuery();
      if (S == SmtSolver::Status::Unsat) {
        NoGen = true;
        continue;
      }
      return descend(NodeIdx, Level, TIdx, smt::Model(Solver.model()));
    }
    ++Result.Stats.PdrFrameQueries;
    Base.push_back(T.Rel);
    std::vector<const Term *> Assumptions;
    Assumptions.reserve(C.size());
    for (const Term *L : C)
      Assumptions.push_back(primeLit(L));
    smt::CheckResult R = FQ.query(Base, Assumptions);
    if (R.isUnknown())
      return unknownQuery();
    if (R.isSat())
      return descend(NodeIdx, Level, TIdx, R.model());
    const smt::UnsatCore &Core = R.core();
    for (size_t LI = 0; LI < C.size(); ++LI)
      if (Core.contains(Assumptions[LI]))
        Kept.push_back(C[LI]);
  }

  // Every incoming transition refuted: block the (generalized) cube.
  // Keeping the union of core literals across transitions is sound —
  // unsatisfiability is monotone in added assumptions, so each query
  // stays unsat under the union, and ¬Kept ⇒ ¬C keeps the self-loop
  // strengthening valid. An empty generalized cube is the clause
  // `false`: the queries proved the location unreachable at this level.
  Cube Gen = NoGen ? C : Kept;
  canonicalizeCube(Gen);
  Result.Stats.PdrGenDroppedLits += C.size() - Gen.size();
  ++Result.Stats.PdrClausesLearned;
  F.addBlockedCube(Level, Loc, std::move(Gen));
  if (Level < F.frontier())
    enqueue(Level + 1, NodeIdx);
  return Step::Ok;
}

/// An obligation reached the entry location: the chain is an abstract
/// path entry → error. Decide it concretely — a satisfiable path formula
/// is a real bug; an unsatisfiable one sends the path through the CEGAR
/// refinement ladder to grow the pool.
Step PdrEngine::Impl::handleCexCandidate(int NodeIdx) {
  ++Result.Stats.PdrCexCandidates;
  Path Cex = pathFromNode(NodeIdx);
  PathFormula PF = buildPathFormula(P, Cex);
  SmtSolver::Status S = Solver.checkSat(PF.formula(TM));
  if (S == SmtSolver::Status::Unknown) {
    Result.Note = resourceExhausted()
                      ? "resources exhausted during counterexample analysis"
                      : "counterexample analysis inconclusive";
    return Step::Stop;
  }
  if (S == SmtSolver::Status::Sat) {
    Result.Verdict = EngineResult::Verdict::Unsafe;
    Result.Witness = Cex;
    if (Opts.ValidateWitness) {
      Result.Replay = replayFromModel(P, Cex, Solver.model());
      Result.WitnessReplayed = Result.Replay.Feasible;
    }
    return Step::Stop;
  }
  return refineSpurious(Cex);
}

Step PdrEngine::Impl::refineSpurious(const Path &Cex) {
  if (Iter == Opts.MaxRefinements) {
    Result.Note = "refinement budget exhausted";
    return Step::Stop;
  }
  if (!resourceCharge(ResourceKind::Refinements)) {
    Result.Note = "resources exhausted before refinement";
    return Step::Stop;
  }
  RefineResult Refined = refine(P, Cex, Result.Predicates, Solver,
                                Opts.Refiner, Opts.PathInv);
  Result.Stats.LpChecks += Refined.LpChecks;
  Result.Stats.TemplateLevelsTried += Refined.TemplateLevelsTried;
  if (!Refined.Progress && resourceExhausted()) {
    // Interrupted mid-refinement (slice pause or real exhaustion):
    // report without consuming the iteration or the one-shot escalation,
    // so a resumed run retries this path with the full machinery.
    Result.Note = "resources exhausted during refinement";
    return Step::Stop;
  }
  ++Iter;
  ++Result.Stats.Refinements;
  if (Refined.UsedFallback)
    ++Result.Stats.Fallbacks;

  size_t OldPool = Pool.size();
  rebuildPool();
  bool PoolGrew = Pool.size() > OldPool;

  if (!Refined.Progress || !PoolGrew) {
    // Per-path refinement stalled, or contributed only predicates the
    // clause language cannot express (quantified invariants): escalate
    // to one whole-program invariant map — the same ladder CEGAR uses.
    if (tryWholeProgramEscalation())
      return Step::Stop;
    if (resourceExhausted()) {
      Result.Note = "resources exhausted during refinement";
      return Step::Stop;
    }
    if (!Refined.Progress)
      Result.Note = "refinement made no progress";
    else
      Result.Note = "refinement predicates outside the pdr clause language";
    return Step::Stop;
  }

  // The pool grew: restart the abstract search at the current frontier.
  // Frames survive (their clauses were proven with exact transition
  // semantics, independent of the pool); pending obligations reference
  // the stale pool and are simply dropped.
  Queue.clear();
  Nodes.clear();
  return Step::Ok;
}

bool PdrEngine::Impl::tryWholeProgramEscalation() {
  if (TriedWholeProgram || Opts.Refiner == RefinerKind::PathFormula)
    return false;
  if (resourceExhausted())
    return false; // Keep the one-shot intact: under a tripped controller
                  // (including a portfolio slice pause) the generation
                  // could only fail, and a resumed run still needs it.
  PathInvResult Whole =
      Opts.Refiner == RefinerKind::PathInvariantIntervals
          ? generateIntervalInvariants(P, Solver)
          : generatePathInvariants(P, Solver, Opts.PathInv);
  Result.Stats.LpChecks += Whole.LpChecks;
  Result.Stats.TemplateLevelsTried += Whole.LevelsTried;
  if (!Whole.Found) {
    // Only a generation that ran to completion proves the map doesn't
    // exist; an interrupted attempt must stay retryable after resume.
    TriedWholeProgram = !resourceExhausted();
    return false;
  }
  TriedWholeProgram = true;
  std::vector<std::pair<LocId, const Term *>> Localized;
  Whole.Map.collectLocalized(Localized);
  for (const auto &[Loc, Pred] : Localized)
    Result.Predicates.add(Loc, Pred);
  Result.Verdict = EngineResult::Verdict::Safe;
  Result.Invariants = Whole.Map;
  Result.HasInvariants = true;
  Result.Note = "proved by whole-program invariant map";
  return true;
}

/// The frontier bad-state check: can any transition into the error
/// location fire from F_k? The first satisfiable one roots a new
/// obligation chain from its model.
Step PdrEngine::Impl::badCheck(bool &Found) {
  Found = false;
  size_t K = F.frontier();
  for (int TIdx : Incoming[static_cast<size_t>(P.error())]) {
    const Transition &T = P.transition(TIdx);
    if (T.From == P.error())
      continue; // Reachability of error itself is the question.
    std::vector<const Term *> Base;
    F.collectClauses(TM, K, T.From, Base);
    Base.push_back(T.Rel);
    smt::Model M;
    if (containsStore(T.Rel)) {
      ++Result.Stats.PdrFacadeQueries;
      SmtSolver::Status S =
          Solver.checkSat(Base.size() == 1 ? Base.front() : TM.mkAnd(Base));
      if (S == SmtSolver::Status::Unknown)
        return unknownQuery();
      if (S == SmtSolver::Status::Unsat)
        continue;
      M = smt::Model(Solver.model());
    } else {
      ++Result.Stats.PdrFrameQueries;
      smt::CheckResult R = FQ.query(Base, {});
      if (R.isUnknown())
        return unknownQuery();
      if (R.isUnsat())
        continue;
      M = R.model();
    }
    Nodes.push_back({T.From, cubeFromModel(M), -1, TIdx});
    enqueue(K, static_cast<int>(Nodes.size()) - 1);
    Found = true;
    return Step::Ok;
  }
  return Step::Ok;
}

/// Clause propagation after a frontier extension: a cube at delta i that
/// is still relatively inductive one level higher moves to delta i+1.
/// When a whole delta level drains, tryFixpoint() detects F_i == F_{i+1}.
Step PdrEngine::Impl::pushPhase() {
  for (size_t Level = 1; Level < F.frontier(); ++Level) {
    for (int Loc = 0; Loc < P.numLocations(); ++Loc) {
      size_t I = 0;
      while (I < F.cubesAt(Level, Loc).size()) {
        Cube C = F.cubesAt(Level, Loc)[I]; // Copy: pushCube mutates.
        bool Inductive = true;
        for (int TIdx : Incoming[static_cast<size_t>(Loc)]) {
          const Transition &T = P.transition(TIdx);
          std::vector<const Term *> Base;
          F.collectClauses(TM, Level, T.From, Base);
          if (T.From == Loc)
            Base.push_back(cubeClause(TM, C));
          if (containsStore(T.Rel)) {
            ++Result.Stats.PdrFacadeQueries;
            std::vector<const Term *> All = Base;
            All.push_back(T.Rel);
            for (const Term *L : C)
              All.push_back(primeLit(L));
            SmtSolver::Status S = Solver.checkSat(
                All.size() == 1 ? All.front() : TM.mkAnd(All));
            if (S == SmtSolver::Status::Unknown)
              return unknownQuery();
            if (S == SmtSolver::Status::Sat) {
              Inductive = false;
              break;
            }
          } else {
            ++Result.Stats.PdrFrameQueries;
            Base.push_back(T.Rel);
            std::vector<const Term *> Assumptions;
            Assumptions.reserve(C.size());
            for (const Term *L : C)
              Assumptions.push_back(primeLit(L));
            smt::CheckResult R = FQ.query(Base, Assumptions);
            if (R.isUnknown())
              return unknownQuery();
            if (R.isSat()) {
              Inductive = false;
              break;
            }
          }
        }
        if (Inductive) {
          F.pushCube(Level, Loc, I);
          ++Result.Stats.PdrClausesPushed;
        } else {
          ++I;
        }
      }
    }
  }
  return Step::Ok;
}

/// Fixpoint detection + the Safe epilogue. A drained delta level means
/// F_i == F_{i+1}; the exported invariant map is validated independently
/// with checkInvariantMap before the verdict is reported — a validation
/// failure degrades to Unknown, never to a wrong verdict.
Step PdrEngine::Impl::tryFixpoint() {
  int Fix = F.fixpointLevel();
  if (Fix < 0)
    return Step::Ok;
  InvariantMap Map = F.invariantMap(TM, P, static_cast<size_t>(Fix));
  assert(verifyFrames(P, Solver, F) == 0 &&
         "pdr frame trail ill-formed at fixpoint");
  InvariantCheckResult Check = checkInvariantMap(P, Map, Solver);
  if (!Check.Ok) {
    Result.Note = resourceExhausted()
                      ? "resources exhausted validating pdr fixpoint"
                      : "pdr fixpoint failed independent validation: " +
                            Check.FailureReason;
    return Step::Stop;
  }
  std::vector<std::pair<LocId, const Term *>> Localized;
  Map.collectLocalized(Localized);
  for (const auto &[Loc, Pred] : Localized)
    Result.Predicates.add(Loc, Pred);
  Result.Verdict = EngineResult::Verdict::Safe;
  Result.Invariants = std::move(Map);
  Result.HasInvariants = true;
  Result.Note = "proved by pdr fixpoint at frame " + std::to_string(Fix);
  return Step::Stop;
}

void PdrEngine::Impl::runLoop() {
  if (P.entry() == P.error()) {
    // Degenerate: the error location is initial.
    Result.Verdict = EngineResult::Verdict::Unsafe;
    return;
  }
  for (;;) {
    if (!Queue.empty()) {
      if (processNext() == Step::Stop)
        return;
      continue;
    }
    bool Found = false;
    if (badCheck(Found) == Step::Stop)
      return;
    if (Found)
      continue;
    // Frontier clean: no one-step path into error from F_k. Open the
    // next frame, propagate clauses upward, and look for a fixpoint.
    F.extend();
    Result.Stats.PdrFrames = F.frontier();
    if (pushPhase() == Step::Stop)
      return;
    if (tryFixpoint() == Step::Stop)
      return;
  }
}

PdrEngine::PdrEngine(const Program &P, SmtSolver &Solver,
                     const EngineOptions &Opts)
    : I(std::make_unique<Impl>(P, Solver, Opts)) {}

PdrEngine::~PdrEngine() = default;

EngineResult PdrEngine::run() {
  if (I->Done)
    return I->Result;
  // A resumed run starts clean: the previous pause's provisional note
  // must not leak into the continued job's outcome.
  I->Result.Note.clear();
  I->Result.UnknownReason.clear();
  I->runLoop();
  I->Result.Stats.PdrFrames = I->F.frontier();
  I->Result.Stats.FinalPredicates = I->Result.Predicates.totalPredicates();
  const SynthLearnStats &L = I->Opts.PathInv.Synth.Learner->Stats;
  I->Result.Stats.SynthNogoods = L.Nogoods;
  I->Result.Stats.SynthCombosDeduped = L.CombosDeduped;
  I->Result.Stats.SynthLemmasReused = L.LemmasReused;
  I->Result.Stats.SynthCuts = L.Cuts;
  ResourceController *RC = ResourceController::active();
  bool Paused = I->Result.Verdict == EngineResult::Verdict::Unknown && RC &&
                RC->slicePaused();
  I->Done = !Paused;
  return I->Result;
}

EngineResult pathinv::verifyPdr(const Program &P, SmtSolver &Solver,
                                const EngineOptions &Opts) {
  ResourceController RC(Opts.Limits);
  TermManager &TM = P.termManager();
  RC.setMemoryProbe([&TM]() -> uint64_t {
    return static_cast<uint64_t>(TM.arenaBytes()) + bigIntHeapBytes();
  });
  RC.start();
  ResourceScope Scope(RC);
  PdrEngine Engine(P, Solver, Opts);
  EngineResult Result = Engine.run();
  finalizeEngineResult(Result, RC);
  if (!Result.UnknownReason.empty() && Result.Note.empty())
    Result.Note = std::string("resources exhausted: ") + Result.UnknownReason;
  return Result;
}
