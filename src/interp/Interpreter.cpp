//===- interp/Interpreter.cpp - Concrete program execution -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "logic/LinearExpr.h"

using namespace pathinv;

namespace {

// Checked evaluation: terms outside the concretely executable fragment
// (quantifiers, uninterpreted applications, array equality, fractional
// indices, ...) clear Ok instead of asserting. Replay reaches this code
// with terms lowered from untrusted .pil input, so an unsupported shape
// must degrade into "witness not confirmed", never a crash.
Rational evalIntChecked(const Term *T, const ConcreteState &State, bool &Ok);

bool evalBoolChecked(const Term *T, const ConcreteState &State, bool &Ok) {
  switch (T->kind()) {
  case TermKind::True:
    return true;
  case TermKind::False:
    return false;
  case TermKind::Not:
    return !evalBoolChecked(T->operand(0), State, Ok);
  case TermKind::And:
    for (const Term *Op : T->operands())
      if (!evalBoolChecked(Op, State, Ok))
        return false;
    return true;
  case TermKind::Or:
    for (const Term *Op : T->operands())
      if (evalBoolChecked(Op, State, Ok))
        return true;
    return false;
  case TermKind::Eq:
    if (T->operand(0)->isArray()) {
      Ok = false; // Array equality has no concrete evaluation here.
      return false;
    }
    return evalIntChecked(T->operand(0), State, Ok) ==
           evalIntChecked(T->operand(1), State, Ok);
  case TermKind::Le:
    return evalIntChecked(T->operand(0), State, Ok) <=
           evalIntChecked(T->operand(1), State, Ok);
  case TermKind::Lt:
    return evalIntChecked(T->operand(0), State, Ok) <
           evalIntChecked(T->operand(1), State, Ok);
  default:
    Ok = false;
    return false;
  }
}

Rational evalIntChecked(const Term *T, const ConcreteState &State, bool &Ok) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return T->value();
  case TermKind::Var:
    return State.scalar(T);
  case TermKind::Add: {
    Rational Sum;
    for (const Term *Op : T->operands())
      Sum += evalIntChecked(Op, State, Ok);
    return Sum;
  }
  case TermKind::Mul:
    return evalIntChecked(T->operand(0), State, Ok) *
           evalIntChecked(T->operand(1), State, Ok);
  case TermKind::Select: {
    const Term *ArrayVar = T->operand(0);
    if (!ArrayVar->isVar()) {
      Ok = false; // Select from a non-variable array (nested store).
      return Rational();
    }
    Rational Index = evalIntChecked(T->operand(1), State, Ok);
    if (!Index.isInteger()) {
      Ok = false;
      return Rational();
    }
    auto It = State.Arrays.find(ArrayVar);
    if (It == State.Arrays.end())
      return Rational();
    return It->second.read(Index.floor().toInt64());
  }
  default:
    Ok = false;
    return Rational();
  }
}

} // namespace

Rational pathinv::evalInt(const Term *T, const ConcreteState &State) {
  bool Ok = true;
  return evalIntChecked(T, State, Ok);
}

bool pathinv::evalBool(const Term *T, const ConcreteState &State) {
  bool Ok = true;
  return evalBoolChecked(T, State, Ok);
}

namespace {

/// Executes one builder-shaped transition relation. Returns false when a
/// guard fails or the relation falls outside the executable fragment
/// (\p Ok cleared). Deterministic updates are conjuncts `v' = rhs` or
/// `a' = store(...)`; everything else not mentioning primed variables is a
/// guard; unconstrained (havocked) variables draw from HavocValues.
bool executeStep(
    const Program &P, const Term *Rel, unsigned StepIndex,
    const ConcreteState &Cur, ConcreteState &Next,
    const std::map<const Term *, Rational, TermIdLess> &HavocValues,
    bool &Ok) {
  TermManager &TM = P.termManager();
  std::vector<const Term *> Conjuncts;
  flattenConjuncts(Rel, Conjuncts);

  TermMap Defs; // primed var -> defining rhs
  std::vector<const Term *> Guards;
  for (const Term *C : Conjuncts) {
    if (C->kind() == TermKind::Eq) {
      const Term *Lhs = C->operand(0);
      const Term *Rhs = C->operand(1);
      if (isPrimedVar(Rhs))
        std::swap(Lhs, Rhs);
      if (isPrimedVar(Lhs)) {
        if (Defs.count(Lhs)) {
          Ok = false; // Conflicting definitions; not executable.
          return false;
        }
        Defs[Lhs] = Rhs;
        continue;
      }
    }
    Guards.push_back(C);
  }

  for (const Term *G : Guards) {
    if (!evalBoolChecked(G, Cur, Ok) || !Ok)
      return false;
  }

  Next = ConcreteState();
  for (const Term *Var : P.variables()) {
    const Term *Primed = primedVar(TM, Var);
    auto DefIt = Defs.find(Primed);
    if (Var->isArray()) {
      ArrayValue NewValue;
      auto CurIt = Cur.Arrays.find(Var);
      if (CurIt != Cur.Arrays.end())
        NewValue = CurIt->second;
      if (DefIt != Defs.end()) {
        const Term *Rhs = DefIt->second;
        if (Rhs->kind() == TermKind::Store) {
          if (Rhs->operand(0) != Var) {
            Ok = false; // Store base is not the pre-state array.
            return false;
          }
          Rational Index = evalIntChecked(Rhs->operand(1), Cur, Ok);
          if (!Ok || !Index.isInteger()) {
            Ok = false;
            return false;
          }
          NewValue.write(Index.floor().toInt64(),
                         evalIntChecked(Rhs->operand(2), Cur, Ok));
        } else if (Rhs->isVar() && Rhs->isArray()) {
          auto SrcIt = Cur.Arrays.find(Rhs);
          NewValue = SrcIt == Cur.Arrays.end() ? ArrayValue() : SrcIt->second;
        } else {
          Ok = false; // Unsupported array update shape.
          return false;
        }
      }
      Next.Arrays[Var] = std::move(NewValue);
      continue;
    }
    if (DefIt != Defs.end()) {
      Next.Scalars[Var] = evalIntChecked(DefIt->second, Cur, Ok);
      if (!Ok)
        return false;
      continue;
    }
    // Havoc: take the model's value for the post-step SSA instance.
    const Term *Instance = ssaVar(TM, Var, StepIndex + 1);
    auto HavocIt = HavocValues.find(Instance);
    Next.Scalars[Var] =
        HavocIt == HavocValues.end() ? Cur.scalar(Var) : HavocIt->second;
  }
  return Ok;
}

} // namespace

ReplayResult pathinv::replayPath(
    const Program &P, const Path &Steps, const ConcreteState &Initial,
    const std::map<const Term *, Rational, TermIdLess> &HavocValues) {
  ReplayResult Result;
  Result.States.push_back(Initial);
  ConcreteState Cur = Initial;
  for (size_t K = 0; K < Steps.size(); ++K) {
    const Transition &T = P.transition(Steps[K]);
    ConcreteState Next;
    bool Ok = true;
    if (!executeStep(P, T.Rel, static_cast<unsigned>(K), Cur, Next,
                     HavocValues, Ok) ||
        !Ok) {
      Result.FailedStep = static_cast<int>(K);
      return Result;
    }
    Cur = std::move(Next);
    Result.States.push_back(Cur);
  }
  Result.Feasible = true;
  return Result;
}

namespace {

/// DFS driver behind searchForError: one instance per initial state.
class BoundedSearcher {
public:
  BoundedSearcher(const Program &P, const BoundedSearchOptions &Opts,
                  uint64_t &StepsExecuted)
      : P(P), TM(P.termManager()), Opts(Opts), StepsExecuted(StepsExecuted) {
    // Precompute, per transition, which scalars it havocs: a scalar with
    // no `v' = ...` conjunct draws a free value (executeStep then reads it
    // from HavocValues). Builder-shaped relations havoc at most one
    // variable, but the scan is general.
    HavocVars.resize(static_cast<size_t>(P.numTransitions()));
    for (int I = 0; I < P.numTransitions(); ++I) {
      std::vector<const Term *> Conjuncts;
      flattenConjuncts(P.transition(I).Rel, Conjuncts);
      TermSet Defined;
      for (const Term *C : Conjuncts) {
        if (C->kind() != TermKind::Eq)
          continue;
        const Term *Lhs = C->operand(0);
        const Term *Rhs = C->operand(1);
        if (isPrimedVar(Rhs))
          std::swap(Lhs, Rhs);
        if (isPrimedVar(Lhs))
          Defined.insert(Lhs);
      }
      for (const Term *Var : P.variables()) {
        if (Var->isArray())
          continue;
        if (!Defined.count(primedVar(TM, Var)))
          HavocVars[I].push_back(Var);
      }
    }
  }

  bool search(const ConcreteState &Initial, BoundedSearchResult &Out) {
    Path Steps;
    std::map<const Term *, Rational, TermIdLess> Havocs;
    if (!dfs(P.entry(), Initial, 0, Steps, Havocs))
      return false;
    Out.ErrorReached = true;
    Out.ErrorPath = std::move(Steps);
    Out.Initial = Initial;
    Out.HavocValues = std::move(Havocs);
    return true;
  }

private:
  bool dfs(LocId Loc, const ConcreteState &Cur, int Depth, Path &Steps,
           std::map<const Term *, Rational, TermIdLess> &Havocs) {
    if (Loc == P.error())
      return true;
    if (Depth >= Opts.MaxSteps)
      return false;
    for (int TransIdx : P.successorsOf(Loc)) {
      const std::vector<const Term *> &Free =
          HavocVars[static_cast<size_t>(TransIdx)];
      // Enumerate menu values for each havocked scalar (cartesian, but
      // builder relations havoc at most one, so this is a flat loop).
      size_t Combos = 1;
      for (size_t I = 0; I < Free.size(); ++I)
        Combos *= Opts.Menu.size();
      for (size_t Combo = 0; Combo < Combos; ++Combo) {
        if (StepsExecuted >= Opts.MaxTotalSteps)
          return false;
        size_t Rem = Combo;
        for (const Term *Var : Free) {
          const Term *Key =
              ssaVar(TM, Var, static_cast<unsigned>(Depth) + 1);
          Havocs[Key] = Rational(Opts.Menu[Rem % Opts.Menu.size()]);
          Rem /= Opts.Menu.size();
        }
        ++StepsExecuted;
        ConcreteState Next;
        bool Ok = true;
        if (!executeStep(P, P.transition(TransIdx).Rel,
                         static_cast<unsigned>(Depth), Cur, Next, Havocs,
                         Ok) ||
            !Ok)
          continue;
        Steps.push_back(TransIdx);
        if (dfs(P.transition(TransIdx).To, Next, Depth + 1, Steps, Havocs))
          return true;
        Steps.pop_back();
      }
    }
    return false;
  }

  const Program &P;
  TermManager &TM;
  const BoundedSearchOptions &Opts;
  uint64_t &StepsExecuted;
  std::vector<std::vector<const Term *>> HavocVars;
};

} // namespace

BoundedSearchResult
pathinv::searchForError(const Program &P, const BoundedSearchOptions &Opts0) {
  BoundedSearchOptions Opts = Opts0;
  if (Opts.Menu.empty())
    Opts.Menu.push_back(0);
  BoundedSearchResult Result;
  BoundedSearcher Searcher(P, Opts, Result.StepsExecuted);

  // Enumerate initial assignments of the declared inputs over the menu;
  // with no inputs there is exactly one initial state (all zeros).
  std::vector<size_t> Pick(Opts.Inputs.size(), 0);
  for (;;) {
    ConcreteState Initial;
    for (size_t I = 0; I < Opts.Inputs.size(); ++I) {
      const Term *Var = Opts.Inputs[I];
      if (Var->isArray())
        continue; // Array inputs default to all zeros.
      Initial.Scalars[Var] = Rational(Opts.Menu[Pick[I]]);
    }
    if (Searcher.search(Initial, Result))
      return Result;
    if (Result.StepsExecuted >= Opts.MaxTotalSteps)
      return Result;
    // Odometer increment over the input menu.
    size_t I = 0;
    for (; I < Pick.size(); ++I) {
      if (++Pick[I] < Opts.Menu.size())
        break;
      Pick[I] = 0;
    }
    if (I == Pick.size())
      return Result;
  }
}

ReplayResult pathinv::replayFromModel(
    const Program &P, const Path &Steps,
    const std::map<const Term *, Rational, TermIdLess> &Model) {
  TermManager &TM = P.termManager();
  // Evaluates a linear SSA term using the model's atom values. Non-linear
  // index terms leave Ok clear and the cell is skipped (the replay then
  // simply fails to confirm the witness).
  auto evalFromModel = [&Model](const Term *T, bool &Ok) {
    std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
    if (!L) {
      Ok = false;
      return Rational();
    }
    Rational Result = L->constant();
    for (const auto &[Atom, Coeff] : L->coefficients()) {
      auto It = Model.find(Atom);
      Result += Coeff * (It == Model.end() ? Rational() : It->second);
    }
    return Result;
  };

  ConcreteState Initial;
  for (const Term *Var : P.variables()) {
    if (Var->isArray()) {
      ArrayValue Value;
      // Cells of the initial array instance mentioned by the model.
      const Term *Instance = ssaVar(TM, Var, 0);
      for (const auto &[Atom, Val] : Model) {
        if (Atom->kind() != TermKind::Select ||
            Atom->operand(0) != Instance)
          continue;
        bool Ok = true;
        Rational Index = evalFromModel(Atom->operand(1), Ok);
        if (Ok && Index.isInteger())
          Value.write(Index.floor().toInt64(), Val);
      }
      Initial.Arrays[Var] = std::move(Value);
      continue;
    }
    auto It = Model.find(ssaVar(TM, Var, 0));
    Initial.Scalars[Var] = It == Model.end() ? Rational() : It->second;
  }
  return replayPath(P, Steps, Initial, Model);
}
