//===- interp/Interpreter.cpp - Concrete program execution -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "logic/LinearExpr.h"

using namespace pathinv;

Rational pathinv::evalInt(const Term *T, const ConcreteState &State) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return T->value();
  case TermKind::Var:
    return State.scalar(T);
  case TermKind::Add: {
    Rational Sum;
    for (const Term *Op : T->operands())
      Sum += evalInt(Op, State);
    return Sum;
  }
  case TermKind::Mul:
    return evalInt(T->operand(0), State) * evalInt(T->operand(1), State);
  case TermKind::Select: {
    const Term *ArrayVar = T->operand(0);
    assert(ArrayVar->isVar() && "select from non-variable array");
    Rational Index = evalInt(T->operand(1), State);
    assert(Index.isInteger() && "fractional array index");
    auto It = State.Arrays.find(ArrayVar);
    if (It == State.Arrays.end())
      return Rational();
    return It->second.read(Index.floor().toInt64());
  }
  default:
    assert(false && "cannot evaluate term kind concretely");
    return Rational();
  }
}

bool pathinv::evalBool(const Term *T, const ConcreteState &State) {
  switch (T->kind()) {
  case TermKind::True:
    return true;
  case TermKind::False:
    return false;
  case TermKind::Not:
    return !evalBool(T->operand(0), State);
  case TermKind::And:
    for (const Term *Op : T->operands())
      if (!evalBool(Op, State))
        return false;
    return true;
  case TermKind::Or:
    for (const Term *Op : T->operands())
      if (evalBool(Op, State))
        return true;
    return false;
  case TermKind::Eq:
    if (T->operand(0)->isArray()) {
      assert(false && "array equality in concrete evaluation");
      return false;
    }
    return evalInt(T->operand(0), State) == evalInt(T->operand(1), State);
  case TermKind::Le:
    return evalInt(T->operand(0), State) <= evalInt(T->operand(1), State);
  case TermKind::Lt:
    return evalInt(T->operand(0), State) < evalInt(T->operand(1), State);
  default:
    assert(false && "cannot evaluate formula kind concretely");
    return false;
  }
}

namespace {

/// Executes one builder-shaped transition relation. Returns false when a
/// guard fails. Deterministic updates are conjuncts `v' = rhs` or
/// `a' = store(...)`; everything else not mentioning primed variables is a
/// guard; unconstrained (havocked) variables draw from HavocValues.
bool executeStep(
    const Program &P, const Term *Rel, unsigned StepIndex,
    const ConcreteState &Cur, ConcreteState &Next,
    const std::map<const Term *, Rational, TermIdLess> &HavocValues) {
  TermManager &TM = P.termManager();
  std::vector<const Term *> Conjuncts;
  flattenConjuncts(Rel, Conjuncts);

  TermMap Defs; // primed var -> defining rhs
  std::vector<const Term *> Guards;
  for (const Term *C : Conjuncts) {
    if (C->kind() == TermKind::Eq) {
      const Term *Lhs = C->operand(0);
      const Term *Rhs = C->operand(1);
      if (isPrimedVar(Rhs))
        std::swap(Lhs, Rhs);
      if (isPrimedVar(Lhs)) {
        assert(!Defs.count(Lhs) && "double definition in transition");
        Defs[Lhs] = Rhs;
        continue;
      }
    }
    Guards.push_back(C);
  }

  for (const Term *G : Guards) {
    if (!evalBool(G, Cur))
      return false;
  }

  Next = ConcreteState();
  for (const Term *Var : P.variables()) {
    const Term *Primed = primedVar(TM, Var);
    auto DefIt = Defs.find(Primed);
    if (Var->isArray()) {
      ArrayValue NewValue;
      auto CurIt = Cur.Arrays.find(Var);
      if (CurIt != Cur.Arrays.end())
        NewValue = CurIt->second;
      if (DefIt != Defs.end()) {
        const Term *Rhs = DefIt->second;
        if (Rhs->kind() == TermKind::Store) {
          assert(Rhs->operand(0) == Var && "store base mismatch");
          Rational Index = evalInt(Rhs->operand(1), Cur);
          assert(Index.isInteger() && "fractional store index");
          NewValue.write(Index.floor().toInt64(),
                         evalInt(Rhs->operand(2), Cur));
        } else if (Rhs->isVar() && Rhs->isArray()) {
          auto SrcIt = Cur.Arrays.find(Rhs);
          NewValue = SrcIt == Cur.Arrays.end() ? ArrayValue() : SrcIt->second;
        } else {
          assert(false && "unsupported array update shape");
        }
      }
      Next.Arrays[Var] = std::move(NewValue);
      continue;
    }
    if (DefIt != Defs.end()) {
      Next.Scalars[Var] = evalInt(DefIt->second, Cur);
      continue;
    }
    // Havoc: take the model's value for the post-step SSA instance.
    const Term *Instance = ssaVar(TM, Var, StepIndex + 1);
    auto HavocIt = HavocValues.find(Instance);
    Next.Scalars[Var] =
        HavocIt == HavocValues.end() ? Cur.scalar(Var) : HavocIt->second;
  }
  return true;
}

} // namespace

ReplayResult pathinv::replayPath(
    const Program &P, const Path &Steps, const ConcreteState &Initial,
    const std::map<const Term *, Rational, TermIdLess> &HavocValues) {
  ReplayResult Result;
  Result.States.push_back(Initial);
  ConcreteState Cur = Initial;
  for (size_t K = 0; K < Steps.size(); ++K) {
    const Transition &T = P.transition(Steps[K]);
    ConcreteState Next;
    if (!executeStep(P, T.Rel, static_cast<unsigned>(K), Cur, Next,
                     HavocValues)) {
      Result.FailedStep = static_cast<int>(K);
      return Result;
    }
    Cur = std::move(Next);
    Result.States.push_back(Cur);
  }
  Result.Feasible = true;
  return Result;
}

ReplayResult pathinv::replayFromModel(
    const Program &P, const Path &Steps,
    const std::map<const Term *, Rational, TermIdLess> &Model) {
  TermManager &TM = P.termManager();
  // Evaluates a linear SSA term using the model's atom values.
  auto evalFromModel = [&Model](const Term *T) {
    std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
    assert(L && "non-linear index in model evaluation");
    Rational Result = L->constant();
    for (const auto &[Atom, Coeff] : L->coefficients()) {
      auto It = Model.find(Atom);
      Result += Coeff * (It == Model.end() ? Rational() : It->second);
    }
    return Result;
  };

  ConcreteState Initial;
  for (const Term *Var : P.variables()) {
    if (Var->isArray()) {
      ArrayValue Value;
      // Cells of the initial array instance mentioned by the model.
      const Term *Instance = ssaVar(TM, Var, 0);
      for (const auto &[Atom, Val] : Model) {
        if (Atom->kind() != TermKind::Select ||
            Atom->operand(0) != Instance)
          continue;
        Rational Index = evalFromModel(Atom->operand(1));
        if (Index.isInteger())
          Value.write(Index.floor().toInt64(), Val);
      }
      Initial.Arrays[Var] = std::move(Value);
      continue;
    }
    auto It = Model.find(ssaVar(TM, Var, 0));
    Initial.Scalars[Var] = It == Model.end() ? Rational() : It->second;
  }
  return replayPath(P, Steps, Initial, Model);
}
