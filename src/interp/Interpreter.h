//===- interp/Interpreter.h - Concrete program execution -------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete states and path replay.
///
/// When the CEGAR engine reports a bug it hands back a path and an SMT
/// model; this module re-executes the path concretely, independently of
/// the solver stack, and confirms every guard along the way. A verified
/// replay is the witness a downstream user can trust (and the tests use it
/// to cross-check the solvers).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_INTERP_INTERPRETER_H
#define PATHINV_INTERP_INTERPRETER_H

#include "program/PathFormula.h"
#include "program/Program.h"

#include <map>

namespace pathinv {

/// A concrete array value: explicitly stored cells over a default.
struct ArrayValue {
  std::map<int64_t, Rational> Cells;
  Rational Default;

  Rational read(int64_t Index) const {
    auto It = Cells.find(Index);
    return It == Cells.end() ? Default : It->second;
  }
  void write(int64_t Index, Rational Value) {
    Cells[Index] = std::move(Value);
  }
};

/// A concrete program state: scalar and array variable values.
struct ConcreteState {
  std::map<const Term *, Rational, TermIdLess> Scalars;
  std::map<const Term *, ArrayValue, TermIdLess> Arrays;

  Rational scalar(const Term *Var) const {
    auto It = Scalars.find(Var);
    return It == Scalars.end() ? Rational() : It->second;
  }
};

/// Evaluates an integer term (variables, arithmetic, reads; no quantifiers)
/// in \p State.
Rational evalInt(const Term *T, const ConcreteState &State);

/// Evaluates a quantifier-free formula in \p State.
bool evalBool(const Term *T, const ConcreteState &State);

/// Result of replaying a path.
struct ReplayResult {
  bool Feasible = false;
  /// First step whose guard failed (when infeasible).
  int FailedStep = -1;
  /// States before each step plus the final state.
  std::vector<ConcreteState> States;
};

/// Replays \p Steps of \p P starting from \p Initial. Deterministic
/// updates are executed directly; havocked variables draw their values
/// from \p HavocValues (SSA variable term x@K -> value; default 0).
ReplayResult replayPath(
    const Program &P, const Path &Steps, const ConcreteState &Initial,
    const std::map<const Term *, Rational, TermIdLess> &HavocValues);

/// Builds the initial state and havoc values from an SMT model of the SSA
/// path formula, then replays. This is the standard counterexample
/// confirmation: model values seed x@0 and the array cells mentioned.
ReplayResult
replayFromModel(const Program &P, const Path &Steps,
                const std::map<const Term *, Rational, TermIdLess> &Model);

/// Options for the bounded concrete error search (searchForError).
struct BoundedSearchOptions {
  /// Variables whose *initial* value is enumerated from Menu (program
  /// inputs, typically the procedure parameters). Every other scalar
  /// starts at 0 and every array cell defaults to 0.
  std::vector<const Term *> Inputs;
  /// Candidate values for inputs and for havocked (`nondet()`) variables.
  std::vector<int64_t> Menu = {0, 1, -1, 2, 3, -2, 4};
  /// Depth bound: transitions along one path.
  int MaxSteps = 96;
  /// Total executed-step budget across the whole search.
  uint64_t MaxTotalSteps = 200000;
};

/// Result of a bounded concrete search for an error path.
struct BoundedSearchResult {
  bool ErrorReached = false;
  /// Transition indices from entry to the error location.
  Path ErrorPath;
  /// Initial state of the found execution.
  ConcreteState Initial;
  /// Havoc choices of the found execution, keyed like replayPath's
  /// HavocValues (SSA instance x@K+1 for the havoc at step K).
  std::map<const Term *, Rational, TermIdLess> HavocValues;
  uint64_t StepsExecuted = 0;
};

/// Exhaustive bounded execution: explores every path of \p P from entry up
/// to the step bounds, enumerating initial values of Opts.Inputs and every
/// havoc choice from Opts.Menu, and both branches of nondeterministic
/// conditions. \returns the first error-reaching execution found (its
/// replay via replayPath is feasible by construction), or ErrorReached =
/// false when no menu-valued execution reaches the error within bounds —
/// which is NOT a safety proof, only "no cheap witness". This is the
/// fuzzer's ground-truth confirm step for mutated programs.
BoundedSearchResult searchForError(const Program &P,
                                   const BoundedSearchOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_INTERP_INTERPRETER_H
