//===- interp/Interpreter.h - Concrete program execution -------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete states and path replay.
///
/// When the CEGAR engine reports a bug it hands back a path and an SMT
/// model; this module re-executes the path concretely, independently of
/// the solver stack, and confirms every guard along the way. A verified
/// replay is the witness a downstream user can trust (and the tests use it
/// to cross-check the solvers).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_INTERP_INTERPRETER_H
#define PATHINV_INTERP_INTERPRETER_H

#include "program/PathFormula.h"
#include "program/Program.h"

#include <map>

namespace pathinv {

/// A concrete array value: explicitly stored cells over a default.
struct ArrayValue {
  std::map<int64_t, Rational> Cells;
  Rational Default;

  Rational read(int64_t Index) const {
    auto It = Cells.find(Index);
    return It == Cells.end() ? Default : It->second;
  }
  void write(int64_t Index, Rational Value) {
    Cells[Index] = std::move(Value);
  }
};

/// A concrete program state: scalar and array variable values.
struct ConcreteState {
  std::map<const Term *, Rational, TermIdLess> Scalars;
  std::map<const Term *, ArrayValue, TermIdLess> Arrays;

  Rational scalar(const Term *Var) const {
    auto It = Scalars.find(Var);
    return It == Scalars.end() ? Rational() : It->second;
  }
};

/// Evaluates an integer term (variables, arithmetic, reads; no quantifiers)
/// in \p State.
Rational evalInt(const Term *T, const ConcreteState &State);

/// Evaluates a quantifier-free formula in \p State.
bool evalBool(const Term *T, const ConcreteState &State);

/// Result of replaying a path.
struct ReplayResult {
  bool Feasible = false;
  /// First step whose guard failed (when infeasible).
  int FailedStep = -1;
  /// States before each step plus the final state.
  std::vector<ConcreteState> States;
};

/// Replays \p Steps of \p P starting from \p Initial. Deterministic
/// updates are executed directly; havocked variables draw their values
/// from \p HavocValues (SSA variable term x@K -> value; default 0).
ReplayResult replayPath(
    const Program &P, const Path &Steps, const ConcreteState &Initial,
    const std::map<const Term *, Rational, TermIdLess> &HavocValues);

/// Builds the initial state and havoc values from an SMT model of the SSA
/// path formula, then replays. This is the standard counterexample
/// confirmation: model values seed x@0 and the array cells mentioned.
ReplayResult
replayFromModel(const Program &P, const Path &Steps,
                const std::map<const Term *, Rational, TermIdLess> &Model);

} // namespace pathinv

#endif // PATHINV_INTERP_INTERPRETER_H
