//===- pathprog/PathProgram.cpp - Path program construction ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "pathprog/PathProgram.h"

#include <algorithm>
#include <map>

using namespace pathinv;

namespace {

/// Dominator sets on the location graph spanned by the path's transitions,
/// by the classic iterative dataflow (the graphs here are tiny).
std::map<LocId, std::set<LocId>>
computeDominators(const std::set<LocId> &Nodes,
                  const std::map<LocId, std::set<LocId>> &Preds,
                  LocId Entry) {
  std::map<LocId, std::set<LocId>> Dom;
  for (LocId N : Nodes)
    Dom[N] = (N == Entry) ? std::set<LocId>{Entry} : Nodes;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (LocId N : Nodes) {
      if (N == Entry)
        continue;
      std::set<LocId> NewDom = Nodes;
      auto PredIt = Preds.find(N);
      if (PredIt != Preds.end() && !PredIt->second.empty()) {
        bool First = true;
        for (LocId Pred : PredIt->second) {
          if (First) {
            NewDom = Dom[Pred];
            First = false;
          } else {
            std::set<LocId> Inter;
            std::set_intersection(NewDom.begin(), NewDom.end(),
                                  Dom[Pred].begin(), Dom[Pred].end(),
                                  std::inserter(Inter, Inter.begin()));
            NewDom = std::move(Inter);
          }
        }
      } else {
        NewDom.clear(); // Unreachable from entry.
      }
      NewDom.insert(N);
      if (NewDom != Dom[N]) {
        Dom[N] = std::move(NewDom);
        Changed = true;
      }
    }
  }
  return Dom;
}

} // namespace

std::vector<PathBlock> pathinv::computePathBlocks(const Program &P,
                                                  const Path &Pi) {
  // The path graph: locations and (deduplicated) transitions of pi.
  std::set<LocId> Nodes;
  std::set<std::pair<LocId, LocId>> Edges;
  std::map<LocId, std::set<LocId>> Preds;
  for (int TransIdx : Pi) {
    const Transition &T = P.transition(TransIdx);
    Nodes.insert(T.From);
    Nodes.insert(T.To);
    if (Edges.insert({T.From, T.To}).second)
      Preds[T.To].insert(T.From);
  }
  if (Nodes.empty())
    return {};
  LocId Entry = P.transition(Pi.front()).From;

  auto Dom = computeDominators(Nodes, Preds, Entry);

  // Back edges u -> h with h in Dom(u); natural loop of (u, h) = h plus
  // everything reaching u without passing h. Loops sharing a header merge.
  std::map<LocId, PathBlock> ByHeader;
  for (const auto &[From, To] : Edges) {
    if (!Dom[From].count(To))
      continue; // Not a back edge.
    LocId Header = To;
    PathBlock &Block = ByHeader[Header];
    Block.Header = Header;
    Block.Members.insert(Header);
    // Backward reachability from `From`, stopping at the header.
    std::vector<LocId> Work;
    if (Block.Members.insert(From).second)
      Work.push_back(From);
    while (!Work.empty()) {
      LocId Cur = Work.back();
      Work.pop_back();
      auto PredIt = Preds.find(Cur);
      if (PredIt == Preds.end())
        continue;
      for (LocId Pred : PredIt->second)
        if (Block.Members.insert(Pred).second)
          Work.push_back(Pred);
    }
  }

  std::vector<PathBlock> Blocks;
  for (auto &[Header, Block] : ByHeader)
    Blocks.push_back(std::move(Block));
  // Outermost (largest) first, deterministically.
  std::sort(Blocks.begin(), Blocks.end(),
            [](const PathBlock &A, const PathBlock &B) {
              if (A.Members.size() != B.Members.size())
                return A.Members.size() > B.Members.size();
              return A.Header < B.Header;
            });
  return Blocks;
}

std::vector<LocId> PathProgram::copiesOf(LocId Orig) const {
  std::vector<LocId> Result;
  for (size_t I = 0; I < LocInfo.size(); ++I)
    if (LocInfo[I].OrigLoc == Orig)
      Result.push_back(static_cast<LocId>(I));
  return Result;
}

PathProgram pathinv::buildPathProgram(const Program &P, const Path &Pi) {
  assert(!Pi.empty() && "empty error path");
  assert(isWellFormedPath(P, Pi) && "malformed error path");
  assert(P.transition(Pi.back()).To == P.error() &&
         "path program requires an error path");
  TermManager &TM = P.termManager();

  std::vector<PathBlock> Blocks = computePathBlocks(P, Pi);

  PathProgram Result{Program(TM, P.variables())};
  Program &PP = Result.Prog;
  Result.Blocks = Blocks;

  int K = static_cast<int>(Pi.size());
  // Location sequence l_0 ... l_K of the path.
  std::vector<LocId> Seq(K + 1);
  Seq[0] = P.transition(Pi[0]).From;
  for (int I = 0; I < K; ++I)
    Seq[I + 1] = P.transition(Pi[I]).To;

  auto newLoc = [&](LocId Orig, int Pos, bool Hat) {
    LocId L = PP.addLocation((Hat ? "^" : "") + P.locationName(Orig) + "," +
                             std::to_string(Pos));
    Result.LocInfo.push_back({Orig, Pos, Hat});
    return L;
  };

  // Plain copies (l_i, i).
  std::vector<LocId> Plain(K + 1);
  for (int I = 0; I <= K; ++I)
    Plain[I] = newLoc(Seq[I], I, /*Hat=*/false);
  PP.setEntry(Plain[0]);
  PP.setError(Plain[K]);

  // Path transitions.
  for (int I = 0; I < K; ++I) {
    const Transition &T = P.transition(Pi[I]);
    PP.addTransition(Plain[I], T.Rel, Plain[I + 1], T.Label);
  }

  // Deduplicated transition set T.pi for intra-block copies.
  std::set<int> TransSet(Pi.begin(), Pi.end());

  // Hat copies at block exits.
  const Term *Skip = PP.mkSkip();
  for (int I = 0; I < K; ++I) {
    const PathBlock *Exited = nullptr;
    for (const PathBlock &B : Blocks) {
      if (B.Members.count(Seq[I]) && !B.Members.count(Seq[I + 1])) {
        Exited = &B; // Blocks are sorted outermost-first: first hit is
        break;       // the maximal exited block.
      }
    }
    if (!Exited)
      continue;

    // Hat copies of every block member at this position.
    std::map<LocId, LocId> HatOf;
    for (LocId Member : Exited->Members)
      HatOf[Member] = newLoc(Member, I, /*Hat=*/true);

    // (l_i, i) <-> (l^_i, i) identity bridges.
    PP.addTransition(Plain[I], Skip, HatOf[Seq[I]], "enter-block");
    PP.addTransition(HatOf[Seq[I]], Skip, Plain[I], "exit-block");

    // All of pi's intra-block transitions among the hats.
    for (int TransIdx : TransSet) {
      const Transition &T = P.transition(TransIdx);
      if (Exited->Members.count(T.From) && Exited->Members.count(T.To))
        PP.addTransition(HatOf[T.From], T.Rel, HatOf[T.To], T.Label);
    }
  }

  return Result;
}
