//===- pathprog/PathProgram.h - Path program construction ------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Path programs per Section 3 of the paper.
///
/// Given a program P and an error path pi, the path program P[pi] is a new
/// program over the same variables whose locations are positioned copies
/// (l, i) of the path's locations plus "hat" copies (l^, i) added at every
/// position where pi exits a nested block: the hats let executions re-enter
/// the block and iterate its transitions arbitrarily often. P[pi] thus
/// represents pi together with every loop unwinding of pi — the family of
/// counterexamples that one path-invariant refinement eliminates at once.
///
/// Blocks.pi is computed as the natural loops of the control-flow graph
/// formed by pi's transitions (back edges found via dominators), which
/// reproduces the nested blocks B1 = {l0, l1, l2}, B2 = {l1, l2} of the
/// worked example in Section 3.
///
/// Note: the formal construction adds hat copies at *every* block-exit
/// position. The paper's worked example lists hats only at the first exit
/// of each block (17 transitions); the formal rule also yields hats at the
/// repeated exit (position 5), which strictly enlarges the represented
/// counterexample family. We implement the formal rule; the integration
/// test checks both that the 17 listed transitions are present and that
/// the extra exit is covered.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_PATHPROG_PATHPROGRAM_H
#define PATHINV_PATHPROG_PATHPROGRAM_H

#include "program/PathFormula.h"
#include "program/Program.h"

#include <set>

namespace pathinv {

/// A nested block of a path: a set of locations forming a natural loop
/// (union of natural loops sharing the header).
struct PathBlock {
  LocId Header = -1;
  std::set<LocId> Members;
};

/// Computes Blocks.pi: the nested blocks of the CFG spanned by the path's
/// transitions, as natural loops.
std::vector<PathBlock> computePathBlocks(const Program &P, const Path &Pi);

/// Provenance of a path-program location.
struct PathLocInfo {
  LocId OrigLoc = -1;   ///< Location of the original program.
  int Position = -1;    ///< Path position i of the copy (l, i).
  bool IsHat = false;   ///< True for the block-iteration copies (l^, i).
};

/// A constructed path program with provenance maps.
struct PathProgram {
  Program Prog;
  /// Per path-program location: where it came from.
  std::vector<PathLocInfo> LocInfo;
  /// The blocks that were used during construction.
  std::vector<PathBlock> Blocks;

  explicit PathProgram(Program Prog) : Prog(std::move(Prog)) {}

  /// All path-program locations (plain and hat copies) projecting to
  /// original location \p Orig.
  std::vector<LocId> copiesOf(LocId Orig) const;
};

/// Builds P[pi] for error path \p Pi (a transition-index sequence ending at
/// the error location).
PathProgram buildPathProgram(const Program &P, const Path &Pi);

} // namespace pathinv

#endif // PATHINV_PATHPROG_PATHPROGRAM_H
