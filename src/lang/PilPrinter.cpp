//===- lang/PilPrinter.cpp - AST back to PIL source text -------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/PilPrinter.h"

#include "logic/TermPrinter.h"

#include <cassert>

using namespace pathinv;

namespace {

// Integer-expression precedence (PIL `expr` grammar): addition, then
// multiplication, then primaries. A child is parenthesized when its level
// is looser than the context demands.
enum Prec : int { PrecAdd = 0, PrecMul = 1, PrecPrimary = 2 };

int exprPrec(const Term *T) {
  switch (T->kind()) {
  case TermKind::Add:
    return PrecAdd;
  case TermKind::Mul:
    return PrecMul;
  default:
    return PrecPrimary;
  }
}

void printExpr(const Term *T, int Context, std::string &Out);

void printExprParen(const Term *T, int Context, std::string &Out) {
  bool Paren = exprPrec(T) < Context;
  if (Paren)
    Out += "(";
  printExpr(T, Paren ? PrecAdd : Context, Out);
  if (Paren)
    Out += ")";
}

void printExpr(const Term *T, int Context, std::string &Out) {
  switch (T->kind()) {
  case TermKind::IntConst:
    if (T->value().isNegative() && Context > PrecAdd) {
      Out += "(" + T->value().toString() + ")";
    } else {
      Out += T->value().toString();
    }
    return;
  case TermKind::Var:
    Out += T->name();
    return;
  case TermKind::Add: {
    // Fold negative summands into subtractions so `x + -1*y` renders as
    // the PIL-native `x - y`.
    bool First = true;
    for (const Term *Op : T->operands()) {
      Rational Coeff(1);
      const Term *Body = Op;
      if (Op->kind() == TermKind::Mul && Op->operand(0)->isIntConst()) {
        Coeff = Op->operand(0)->value();
        Body = Op->operand(1);
      } else if (Op->isIntConst()) {
        Coeff = Op->value();
        Body = nullptr;
      }
      bool Negative = Coeff.isNegative();
      if (First)
        Out += Negative ? "-" : "";
      else
        Out += Negative ? " - " : " + ";
      First = false;
      Rational AbsCoeff = Coeff.abs();
      if (!Body) {
        Out += AbsCoeff.toString();
        continue;
      }
      if (!AbsCoeff.isOne())
        Out += AbsCoeff.toString() + "*";
      printExprParen(Body, PrecMul + 1, Out);
    }
    return;
  }
  case TermKind::Mul:
    printExprParen(T->operand(0), PrecMul, Out);
    Out += "*";
    printExprParen(T->operand(1), PrecMul + 1, Out);
    return;
  case TermKind::Select:
    // The PIL grammar only reads through array *variables*; nested stores
    // cannot appear in a parsed AST.
    Out += T->operand(0)->name();
    Out += "[";
    printExpr(T->operand(1), PrecAdd, Out);
    Out += "]";
    return;
  default:
    // Store/Apply/Forall/boolean terms have no PIL expression syntax and
    // the parser never places them in expression position.
    assert(false && "term shape outside the PIL expression grammar");
    Out += printTerm(T);
    return;
  }
}

void printBool(const Term *T, std::string &Out);

/// Renders one `&&`/`||` operand. The PIL boolean grammar takes
/// comparisons, `!`, `true`/`false`, and parenthesized groups as atoms, so
/// nested connectives get wrapped.
void printBoolAtom(const Term *T, std::string &Out) {
  if (T->kind() == TermKind::And || T->kind() == TermKind::Or) {
    Out += "(";
    printBool(T, Out);
    Out += ")";
    return;
  }
  printBool(T, Out);
}

void printBool(const Term *T, std::string &Out) {
  switch (T->kind()) {
  case TermKind::True:
    Out += "true";
    return;
  case TermKind::False:
    Out += "false";
    return;
  case TermKind::Eq:
    printExprParen(T->operand(0), PrecAdd, Out);
    Out += " == ";
    printExprParen(T->operand(1), PrecAdd, Out);
    return;
  case TermKind::Le:
    printExprParen(T->operand(0), PrecAdd, Out);
    Out += " <= ";
    printExprParen(T->operand(1), PrecAdd, Out);
    return;
  case TermKind::Lt:
    printExprParen(T->operand(0), PrecAdd, Out);
    Out += " < ";
    printExprParen(T->operand(1), PrecAdd, Out);
    return;
  case TermKind::Not:
    if (T->operand(0)->kind() == TermKind::Eq) {
      const Term *Eq = T->operand(0);
      printExprParen(Eq->operand(0), PrecAdd, Out);
      Out += " != ";
      printExprParen(Eq->operand(1), PrecAdd, Out);
      return;
    }
    Out += "!(";
    printBool(T->operand(0), Out);
    Out += ")";
    return;
  case TermKind::And: {
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        Out += " && ";
      First = false;
      printBoolAtom(Op, Out);
    }
    return;
  }
  case TermKind::Or: {
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        Out += " || ";
      First = false;
      printBoolAtom(Op, Out);
    }
    return;
  }
  default:
    assert(false && "term shape outside the PIL boolean grammar");
    Out += printTerm(T);
    return;
  }
}

void printStmt(const Stmt &S, int Indent, std::string &Out);

/// Prints \p S's statements (flattening a Block) inside braces already
/// emitted by the caller.
void printBody(const Stmt &S, int Indent, std::string &Out) {
  if (S.K == Stmt::Kind::Block) {
    for (const auto &Child : S.Children)
      printStmt(*Child, Indent, Out);
    return;
  }
  printStmt(S, Indent, Out);
}

void printStmt(const Stmt &S, int Indent, std::string &Out) {
  std::string Pad(static_cast<size_t>(Indent), ' ');
  switch (S.K) {
  case Stmt::Kind::Assign:
    Out += Pad + S.Var->name() + " = " +
           (S.Rhs ? printPilExpr(S.Rhs) : std::string("nondet()")) + ";\n";
    return;
  case Stmt::Kind::ArrayAssign:
    Out += Pad + S.Var->name() + "[" + printPilExpr(S.Index) +
           "] = " + printPilExpr(S.Rhs) + ";\n";
    return;
  case Stmt::Kind::Assume: {
    std::string Cond;
    printBool(S.Cond, Cond);
    Out += Pad + "assume(" + Cond + ");\n";
    return;
  }
  case Stmt::Kind::Assert: {
    std::string Cond;
    printBool(S.Cond, Cond);
    Out += Pad + "assert(" + Cond + ");\n";
    return;
  }
  case Stmt::Kind::If: {
    std::string Cond = "*";
    if (S.Cond) {
      Cond.clear();
      printBool(S.Cond, Cond);
    }
    Out += Pad + "if (" + Cond + ") {\n";
    printBody(*S.Children[0], Indent + 2, Out);
    Out += Pad + "}";
    if (S.Children.size() > 1) {
      Out += " else {\n";
      printBody(*S.Children[1], Indent + 2, Out);
      Out += Pad + "}";
    }
    Out += "\n";
    return;
  }
  case Stmt::Kind::While: {
    std::string Cond = "*";
    if (S.Cond) {
      Cond.clear();
      printBool(S.Cond, Cond);
    }
    Out += Pad + "while (" + Cond + ") {\n";
    printBody(*S.Children[0], Indent + 2, Out);
    Out += Pad + "}\n";
    return;
  }
  case Stmt::Kind::Block:
    for (const auto &Child : S.Children)
      printStmt(*Child, Indent, Out);
    return;
  case Stmt::Kind::Skip:
    Out += Pad + "skip;\n";
    return;
  }
  assert(false && "unknown statement kind");
}

} // namespace

std::string pathinv::printPilExpr(const Term *T) {
  std::string Out;
  if (T->isBool())
    printBool(T, Out);
  else
    printExpr(T, PrecAdd, Out);
  return Out;
}

std::string pathinv::printPilStmt(const Stmt &S, int Indent) {
  std::string Out;
  printStmt(S, Indent, Out);
  return Out;
}

std::string pathinv::printPil(const ProcAst &Proc) {
  std::string Out = "proc " + Proc.Name + "(";
  bool First = true;
  for (const Term *Param : Proc.Params) {
    if (!First)
      Out += ", ";
    First = false;
    Out += Param->name();
    if (Param->isArray())
      Out += "[]";
  }
  Out += ") {\n";
  std::string Vars, Arrays;
  for (const Term *Local : Proc.Locals) {
    std::string &Line = Local->isArray() ? Arrays : Vars;
    Line += Line.empty() ? Local->name() : ", " + Local->name();
  }
  if (!Vars.empty())
    Out += "  var " + Vars + ";\n";
  if (!Arrays.empty())
    Out += "  array " + Arrays + ";\n";
  printBody(*Proc.Body, 2, Out);
  Out += "}\n";
  return Out;
}
