//===- lang/Parser.h - PIL parser -------------------------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for PIL. Grammar sketch:
///
///   proc     := 'proc' IDENT '(' params? ')' block
///   params   := param (',' param)*      param := IDENT ('[' ']')?
///   block    := '{' stmt* '}'
///   stmt     := 'var' IDENT (',' IDENT)* ';'
///            |  'array' IDENT (',' IDENT)* ';'
///            |  IDENT '=' rhs ';'  |  IDENT '[' expr ']' '=' rhs ';'
///            |  'assume' '(' bexpr ')' ';'  |  'assert' '(' bexpr ')' ';'
///            |  'if' '(' cond ')' block ('else' block)?
///            |  'while' '(' cond ')' block
///            |  'skip' ';'
///   cond     := '*' | bexpr          rhs := 'nondet' '(' ')' | expr
///   bexpr    := disjunctions/conjunctions/negations of comparisons
///   expr     := linear integer expressions with [] reads
///
/// Line comments start with //.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LANG_PARSER_H
#define PATHINV_LANG_PARSER_H

#include "lang/AST.h"

namespace pathinv {

/// Parses a single PIL procedure from \p Source.
Expected<ProcAst> parseProc(TermManager &TM, std::string_view Source);

} // namespace pathinv

#endif // PATHINV_LANG_PARSER_H
