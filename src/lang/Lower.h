//===- lang/Lower.h - PIL to transition-system lowering --------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a PIL procedure to the transition-system representation of
/// Section 3. Statements become guarded transitions:
///   * `x = e` — x' = e plus frame condition,
///   * `a[i] = e` — a' = a{i := e} plus frame,
///   * `assume(c)` — [c] with identity update,
///   * `assert(c)` — [!c] edge to the error location and [c] edge onward,
///   * `if`/`while` — assume edges on both polarities (assume-true edges
///     for nondeterministic `*` conditions),
///   * `x = nondet()` — havoc of x.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LANG_LOWER_H
#define PATHINV_LANG_LOWER_H

#include "lang/AST.h"
#include "program/Program.h"

namespace pathinv {

/// Lowers \p Proc into a Program. The result owns no AST references.
Program lowerProc(TermManager &TM, const ProcAst &Proc);

/// Convenience: parse + lower in one step.
Expected<Program> loadProgram(TermManager &TM, std::string_view Source);

} // namespace pathinv

#endif // PATHINV_LANG_LOWER_H
