//===- lang/PilPrinter.h - AST back to PIL source text ---------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ProcAst back into parseable PIL source text. This is the
/// inverse of lang/Parser.h up to whitespace and redundant parentheses:
/// parseProc(printPil(parseProc(S))) yields the same AST (term pointers
/// and all, since terms are interned). The fuzzer's minimizer depends on
/// this round trip — it edits the AST and re-emits source so every
/// shrunken candidate goes through the same untrusted-input front door as
/// the original program.
///
/// Note the dialect difference from logic/TermPrinter.h: TermPrinter emits
/// the paper's logic notation (`=`, `a{i := 0}`, `forall`), which the PIL
/// expression grammar does not accept. This printer emits PIL surface
/// syntax (`==`, `!=`, `&&`, `||`) and rejects nothing: every term shape
/// the PIL parser can produce is printable.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LANG_PILPRINTER_H
#define PATHINV_LANG_PILPRINTER_H

#include "lang/AST.h"

#include <string>

namespace pathinv {

/// Renders \p T in PIL expression syntax (`==`, `&&`, `a[i]`, ...).
std::string printPilExpr(const Term *T);

/// Renders \p S as statements at \p Indent spaces.
std::string printPilStmt(const Stmt &S, int Indent = 2);

/// Renders the whole procedure as parseable PIL source.
std::string printPil(const ProcAst &Proc);

} // namespace pathinv

#endif // PATHINV_LANG_PILPRINTER_H
