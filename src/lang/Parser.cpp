//===- lang/Parser.cpp - PIL parser ----------------------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <cctype>
#include <map>

using namespace pathinv;

namespace {

enum class Tok : uint8_t {
  End, Int, Ident, LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semi, Assign, Plus, Minus, Star,
  EqEq, Ne, Le, Lt, Ge, Gt, Not, AndAnd, OrOr,
  KwProc, KwVar, KwArray, KwAssume, KwAssert, KwIf, KwElse, KwWhile,
  KwSkip, KwNondet, KwTrue, KwFalse,
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text;
  SourceLoc Loc;
};

class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  Expected<Token> next() {
    skipSpaceAndComments();
    Token T;
    T.Loc = {Line, static_cast<unsigned>(Pos - LineStart + 1)};
    if (Pos >= Text.size())
      return T;
    char C = Text[Pos];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      T.Kind = Tok::Int;
      T.Text = std::string(Text.substr(Start, Pos - Start));
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      T.Text = std::string(Text.substr(Start, Pos - Start));
      static const std::map<std::string, Tok> Keywords = {
          {"proc", Tok::KwProc},     {"var", Tok::KwVar},
          {"array", Tok::KwArray},   {"assume", Tok::KwAssume},
          {"assert", Tok::KwAssert}, {"if", Tok::KwIf},
          {"else", Tok::KwElse},     {"while", Tok::KwWhile},
          {"skip", Tok::KwSkip},     {"nondet", Tok::KwNondet},
          {"true", Tok::KwTrue},     {"false", Tok::KwFalse}};
      auto It = Keywords.find(T.Text);
      T.Kind = It == Keywords.end() ? Tok::Ident : It->second;
      return T;
    }
    auto two = [&](char Second) {
      return Pos + 1 < Text.size() && Text[Pos + 1] == Second;
    };
    switch (C) {
    case '(': ++Pos; T.Kind = Tok::LParen; return T;
    case ')': ++Pos; T.Kind = Tok::RParen; return T;
    case '{': ++Pos; T.Kind = Tok::LBrace; return T;
    case '}': ++Pos; T.Kind = Tok::RBrace; return T;
    case '[': ++Pos; T.Kind = Tok::LBracket; return T;
    case ']': ++Pos; T.Kind = Tok::RBracket; return T;
    case ',': ++Pos; T.Kind = Tok::Comma; return T;
    case ';': ++Pos; T.Kind = Tok::Semi; return T;
    case '+': ++Pos; T.Kind = Tok::Plus; return T;
    case '-': ++Pos; T.Kind = Tok::Minus; return T;
    case '*': ++Pos; T.Kind = Tok::Star; return T;
    case '=':
      if (two('=')) { Pos += 2; T.Kind = Tok::EqEq; return T; }
      ++Pos; T.Kind = Tok::Assign; return T;
    case '!':
      if (two('=')) { Pos += 2; T.Kind = Tok::Ne; return T; }
      ++Pos; T.Kind = Tok::Not; return T;
    case '<':
      if (two('=')) { Pos += 2; T.Kind = Tok::Le; return T; }
      ++Pos; T.Kind = Tok::Lt; return T;
    case '>':
      if (two('=')) { Pos += 2; T.Kind = Tok::Ge; return T; }
      ++Pos; T.Kind = Tok::Gt; return T;
    case '&':
      if (two('&')) { Pos += 2; T.Kind = Tok::AndAnd; return T; }
      break;
    case '|':
      if (two('|')) { Pos += 2; T.Kind = Tok::OrOr; return T; }
      break;
    default:
      break;
    }
    return Expected<Token>::makeError(
        std::string("unexpected character '") + C + "'", T.Loc);
  }

private:
  void skipSpaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
};

class ProcParser {
public:
  ProcParser(TermManager &TM, std::string_view Source)
      : TM(TM), Lex(Source) {}

  Expected<ProcAst> parse() {
    if (!advance())
      return fail();
    if (!expect(Tok::KwProc, "expected 'proc'"))
      return fail();
    if (Cur.Kind != Tok::Ident)
      return err("expected procedure name");
    ProcAst Proc;
    Proc.Name = Cur.Text;
    if (!advance() || !expect(Tok::LParen, "expected '('"))
      return fail();
    if (Cur.Kind != Tok::RParen) {
      while (true) {
        if (Cur.Kind != Tok::Ident)
          return err("expected parameter name");
        std::string Name = Cur.Text;
        if (!advance())
          return fail();
        Sort S = Sort::Int;
        if (Cur.Kind == Tok::LBracket) {
          if (!advance() || !expect(Tok::RBracket, "expected ']'"))
            return fail();
          S = Sort::ArrayIntInt;
        }
        if (!declare(Name, S))
          return err("duplicate declaration of '" + Name + "'");
        Proc.Params.push_back(TM.mkVar(Name, S));
        if (Cur.Kind != Tok::Comma)
          break;
        if (!advance())
          return fail();
      }
    }
    if (!expect(Tok::RParen, "expected ')'"))
      return fail();
    auto Body = parseBlock(Proc);
    if (!Body)
      return Expected<ProcAst>(Body.error());
    Proc.Body = Body.take();
    if (Cur.Kind != Tok::End)
      return err("trailing input after procedure body");
    return Proc;
  }

private:
  Expected<ProcAst> fail() { return Expected<ProcAst>(ErrDiag); }
  Expected<ProcAst> err(std::string Msg) {
    return Expected<ProcAst>::makeError(std::move(Msg), Cur.Loc);
  }
  template <typename T> Expected<T> errT(std::string Msg) {
    return Expected<T>::makeError(std::move(Msg), Cur.Loc);
  }

  bool advance() {
    Expected<Token> T = Lex.next();
    if (!T) {
      ErrDiag = T.error();
      return false;
    }
    Cur = T.take();
    return true;
  }

  bool expect(Tok Kind, const char *Msg) {
    if (Cur.Kind != Kind) {
      ErrDiag = {Msg, Cur.Loc};
      return false;
    }
    return advance();
  }

  bool declare(const std::string &Name, Sort S) {
    return Scope.try_emplace(Name, S).second;
  }

  using StmtPtr = std::unique_ptr<Stmt>;
  using StmtResult = Expected<StmtPtr>;

  StmtResult parseBlock(ProcAst &Proc) {
    SourceLoc Loc = Cur.Loc;
    if (Cur.Kind != Tok::LBrace)
      return errT<StmtPtr>("expected '{'");
    if (!advance())
      return StmtResult(ErrDiag);
    auto Block = std::make_unique<Stmt>();
    Block->K = Stmt::Kind::Block;
    Block->Loc = Loc;
    while (Cur.Kind != Tok::RBrace) {
      if (Cur.Kind == Tok::End)
        return errT<StmtPtr>("unterminated block");
      StmtResult S = parseStmt(Proc);
      if (!S)
        return S;
      if (S.get()) // Declarations return null statements.
        Block->Children.push_back(S.take());
    }
    if (!advance())
      return StmtResult(ErrDiag);
    return StmtResult(std::move(Block));
  }

  StmtResult parseStmt(ProcAst &Proc) {
    SourceLoc Loc = Cur.Loc;
    switch (Cur.Kind) {
    case Tok::KwVar:
    case Tok::KwArray: {
      Sort S = Cur.Kind == Tok::KwVar ? Sort::Int : Sort::ArrayIntInt;
      do {
        if (!advance())
          return StmtResult(ErrDiag);
        if (Cur.Kind != Tok::Ident)
          return errT<StmtPtr>("expected variable name");
        if (!declare(Cur.Text, S))
          return errT<StmtPtr>("duplicate declaration of '" + Cur.Text +
                               "'");
        Proc.Locals.push_back(TM.mkVar(Cur.Text, S));
        if (!advance())
          return StmtResult(ErrDiag);
      } while (Cur.Kind == Tok::Comma);
      if (!expect(Tok::Semi, "expected ';'"))
        return StmtResult(ErrDiag);
      return StmtResult(StmtPtr()); // No statement emitted.
    }
    case Tok::KwSkip: {
      if (!advance() || !expect(Tok::Semi, "expected ';'"))
        return StmtResult(ErrDiag);
      auto S = std::make_unique<Stmt>();
      S->K = Stmt::Kind::Skip;
      S->Loc = Loc;
      return StmtResult(std::move(S));
    }
    case Tok::KwAssume:
    case Tok::KwAssert: {
      bool IsAssume = Cur.Kind == Tok::KwAssume;
      if (!advance() || !expect(Tok::LParen, "expected '('"))
        return StmtResult(ErrDiag);
      auto Cond = parseBoolExpr();
      if (!Cond)
        return StmtResult(Cond.error());
      if (!expect(Tok::RParen, "expected ')'") ||
          !expect(Tok::Semi, "expected ';'"))
        return StmtResult(ErrDiag);
      auto S = std::make_unique<Stmt>();
      S->K = IsAssume ? Stmt::Kind::Assume : Stmt::Kind::Assert;
      S->Cond = Cond.get();
      S->Loc = Loc;
      return StmtResult(std::move(S));
    }
    case Tok::KwIf: {
      if (!advance() || !expect(Tok::LParen, "expected '('"))
        return StmtResult(ErrDiag);
      auto Cond = parseCond();
      if (!Cond)
        return StmtResult(Cond.error());
      if (!expect(Tok::RParen, "expected ')'"))
        return StmtResult(ErrDiag);
      auto Then = parseBlock(Proc);
      if (!Then)
        return Then;
      auto S = std::make_unique<Stmt>();
      S->K = Stmt::Kind::If;
      S->Cond = Cond.get();
      S->Loc = Loc;
      S->Children.push_back(Then.take());
      if (Cur.Kind == Tok::KwElse) {
        if (!advance())
          return StmtResult(ErrDiag);
        auto Else = parseBlock(Proc);
        if (!Else)
          return Else;
        S->Children.push_back(Else.take());
      }
      return StmtResult(std::move(S));
    }
    case Tok::KwWhile: {
      if (!advance() || !expect(Tok::LParen, "expected '('"))
        return StmtResult(ErrDiag);
      auto Cond = parseCond();
      if (!Cond)
        return StmtResult(Cond.error());
      if (!expect(Tok::RParen, "expected ')'"))
        return StmtResult(ErrDiag);
      auto Body = parseBlock(Proc);
      if (!Body)
        return Body;
      auto S = std::make_unique<Stmt>();
      S->K = Stmt::Kind::While;
      S->Cond = Cond.get();
      S->Loc = Loc;
      S->Children.push_back(Body.take());
      return StmtResult(std::move(S));
    }
    case Tok::Ident: {
      std::string Name = Cur.Text;
      auto It = Scope.find(Name);
      if (It == Scope.end())
        return errT<StmtPtr>("undeclared identifier '" + Name + "'");
      if (!advance())
        return StmtResult(ErrDiag);
      auto S = std::make_unique<Stmt>();
      S->Loc = Loc;
      if (Cur.Kind == Tok::LBracket) {
        if (It->second != Sort::ArrayIntInt)
          return errT<StmtPtr>("'" + Name + "' is not an array");
        if (!advance())
          return StmtResult(ErrDiag);
        auto Index = parseExpr();
        if (!Index)
          return StmtResult(Index.error());
        if (!expect(Tok::RBracket, "expected ']'") ||
            !expect(Tok::Assign, "expected '='"))
          return StmtResult(ErrDiag);
        auto Rhs = parseRhs();
        if (!Rhs)
          return StmtResult(Rhs.error());
        if (!expect(Tok::Semi, "expected ';'"))
          return StmtResult(ErrDiag);
        if (!Rhs.get())
          return errT<StmtPtr>("nondet() array writes are not supported");
        S->K = Stmt::Kind::ArrayAssign;
        S->Var = TM.mkVar(Name, Sort::ArrayIntInt);
        S->Index = Index.get();
        S->Rhs = Rhs.get();
        return StmtResult(std::move(S));
      }
      if (It->second != Sort::Int)
        return errT<StmtPtr>("cannot assign whole array '" + Name + "'");
      if (!expect(Tok::Assign, "expected '='"))
        return StmtResult(ErrDiag);
      auto Rhs = parseRhs();
      if (!Rhs)
        return StmtResult(Rhs.error());
      if (!expect(Tok::Semi, "expected ';'"))
        return StmtResult(ErrDiag);
      S->K = Stmt::Kind::Assign;
      S->Var = TM.mkVar(Name, Sort::Int);
      S->Rhs = Rhs.get(); // May be null (nondet).
      return StmtResult(std::move(S));
    }
    default:
      return errT<StmtPtr>("expected a statement");
    }
  }

  /// nondet() or expression; nondet is returned as nullptr.
  Expected<const Term *> parseRhs() {
    if (Cur.Kind == Tok::KwNondet) {
      if (!advance() || !expect(Tok::LParen, "expected '('") ||
          !expect(Tok::RParen, "expected ')'"))
        return Expected<const Term *>(ErrDiag);
      return Expected<const Term *>(nullptr);
    }
    return parseExpr();
  }

  /// '*' or nondet() (both nullptr) or a boolean expression.
  Expected<const Term *> parseCond() {
    if (Cur.Kind == Tok::Star) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return Expected<const Term *>(nullptr);
    }
    if (Cur.Kind == Tok::KwNondet) {
      if (!advance() || !expect(Tok::LParen, "expected '('") ||
          !expect(Tok::RParen, "expected ')'"))
        return Expected<const Term *>(ErrDiag);
      return Expected<const Term *>(nullptr);
    }
    return parseBoolExpr();
  }

  // --- Boolean expressions: || over && over ! over comparisons -----------

  Expected<const Term *> parseBoolExpr() { return parseOr(); }

  Expected<const Term *> parseOr() {
    auto Lhs = parseAnd();
    if (!Lhs)
      return Lhs;
    const Term *Result = Lhs.get();
    while (Cur.Kind == Tok::OrOr) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Rhs = parseAnd();
      if (!Rhs)
        return Rhs;
      Result = TM.mkOr(Result, Rhs.get());
    }
    return Result;
  }

  Expected<const Term *> parseAnd() {
    auto Lhs = parseBoolUnary();
    if (!Lhs)
      return Lhs;
    const Term *Result = Lhs.get();
    while (Cur.Kind == Tok::AndAnd) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Rhs = parseBoolUnary();
      if (!Rhs)
        return Rhs;
      Result = TM.mkAnd(Result, Rhs.get());
    }
    return Result;
  }

  Expected<const Term *> parseBoolUnary() {
    if (Cur.Kind == Tok::Not) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Sub = parseBoolUnary();
      if (!Sub)
        return Sub;
      return TM.mkNot(Sub.get());
    }
    if (Cur.Kind == Tok::KwTrue) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkTrue();
    }
    if (Cur.Kind == Tok::KwFalse) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkFalse();
    }
    if (Cur.Kind == Tok::LParen) {
      // Could be a parenthesized boolean or the left side of a comparison;
      // parse a comparison whose lhs starts with '('. We try boolean first
      // by scanning: simplest correct approach is to parse an expression
      // and require a comparison, unless the '(' leads a boolean operator
      // sequence. PIL restricts parentheses in boolean position to whole
      // boolean groups, so attempt boolean group first.
      Lexer Saved = Lex;
      Token SavedTok = Cur;
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Inner = parseBoolExpr();
      if (Inner && Cur.Kind == Tok::RParen) {
        if (!advance())
          return Expected<const Term *>(ErrDiag);
        return Inner;
      }
      Lex = Saved;
      Cur = SavedTok;
      return parseComparison();
    }
    return parseComparison();
  }

  Expected<const Term *> parseComparison() {
    auto Lhs = parseExpr();
    if (!Lhs)
      return Lhs;
    Tok Rel = Cur.Kind;
    if (Rel != Tok::EqEq && Rel != Tok::Ne && Rel != Tok::Le &&
        Rel != Tok::Lt && Rel != Tok::Ge && Rel != Tok::Gt)
      return errT<const Term *>("expected a comparison operator");
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    auto Rhs = parseExpr();
    if (!Rhs)
      return Rhs;
    switch (Rel) {
    case Tok::EqEq: return TM.mkEq(Lhs.get(), Rhs.get());
    case Tok::Ne:   return TM.mkNe(Lhs.get(), Rhs.get());
    case Tok::Le:   return TM.mkLe(Lhs.get(), Rhs.get());
    case Tok::Lt:   return TM.mkLt(Lhs.get(), Rhs.get());
    case Tok::Ge:   return TM.mkGe(Lhs.get(), Rhs.get());
    default:        return TM.mkGt(Lhs.get(), Rhs.get());
    }
  }

  // --- Integer expressions -------------------------------------------------

  Expected<const Term *> parseExpr() {
    auto Lhs = parseMul();
    if (!Lhs)
      return Lhs;
    const Term *Result = Lhs.get();
    while (Cur.Kind == Tok::Plus || Cur.Kind == Tok::Minus) {
      bool IsMinus = Cur.Kind == Tok::Minus;
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Rhs = parseMul();
      if (!Rhs)
        return Rhs;
      Result = IsMinus ? TM.mkSub(Result, Rhs.get())
                       : TM.mkAdd(Result, Rhs.get());
    }
    return Result;
  }

  Expected<const Term *> parseMul() {
    auto Lhs = parseUnary();
    if (!Lhs)
      return Lhs;
    const Term *Result = Lhs.get();
    while (Cur.Kind == Tok::Star) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Rhs = parseUnary();
      if (!Rhs)
        return Rhs;
      Result = TM.mkMul(Result, Rhs.get());
    }
    return Result;
  }

  Expected<const Term *> parseUnary() {
    if (Cur.Kind == Tok::Minus) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Sub = parseUnary();
      if (!Sub)
        return Sub;
      return TM.mkNeg(Sub.get());
    }
    return parsePrimary();
  }

  Expected<const Term *> parsePrimary() {
    if (Cur.Kind == Tok::Int) {
      BigInt Value;
      if (!BigInt::fromString(Cur.Text, Value))
        return errT<const Term *>("malformed integer literal '" + Cur.Text +
                                  "'");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkIntConst(Rational(std::move(Value)));
    }
    if (Cur.Kind == Tok::LParen) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Inner = parseExpr();
      if (!Inner)
        return Inner;
      if (!expect(Tok::RParen, "expected ')'"))
        return Expected<const Term *>(ErrDiag);
      return Inner;
    }
    if (Cur.Kind != Tok::Ident)
      return errT<const Term *>("expected an expression");
    std::string Name = Cur.Text;
    auto It = Scope.find(Name);
    if (It == Scope.end())
      return errT<const Term *>("undeclared identifier '" + Name + "'");
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    if (Cur.Kind == Tok::LBracket) {
      if (It->second != Sort::ArrayIntInt)
        return errT<const Term *>("'" + Name + "' is not an array");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto Index = parseExpr();
      if (!Index)
        return Index;
      if (!expect(Tok::RBracket, "expected ']'"))
        return Expected<const Term *>(ErrDiag);
      return TM.mkSelect(TM.mkVar(Name, Sort::ArrayIntInt), Index.get());
    }
    if (It->second != Sort::Int)
      return errT<const Term *>("array '" + Name + "' used as a scalar");
    return TM.mkVar(Name, Sort::Int);
  }

  TermManager &TM;
  Lexer Lex;
  Token Cur;
  Diag ErrDiag;
  std::map<std::string, Sort> Scope;
};

} // namespace

Expected<ProcAst> pathinv::parseProc(TermManager &TM,
                                     std::string_view Source) {
  ProcParser P(TM, Source);
  return P.parse();
}
