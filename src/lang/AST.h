//===- lang/AST.h - PIL abstract syntax ------------------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for PIL ("path-invariant language"), the C-like input
/// language covering the paper's example programs: integer scalars, integer
/// arrays, nondeterministic choice, assume/assert, if and while.
///
/// Expressions are parsed directly into logic terms; `nondet()` appears as
/// a null condition/right-hand side.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LANG_AST_H
#define PATHINV_LANG_AST_H

#include "logic/Term.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace pathinv {

/// A PIL statement node.
struct Stmt {
  enum class Kind : uint8_t {
    Assign,      ///< Var = Rhs  (Rhs == nullptr means nondet()).
    ArrayAssign, ///< Var[Index] = Rhs.
    Assume,      ///< assume(Cond).
    Assert,      ///< assert(Cond).
    If,          ///< if (Cond) Children[0] else Children[1]; null Cond = *.
    While,       ///< while (Cond) Children[0]; null Cond = *.
    Block,       ///< { Children... }.
    Skip,        ///< skip.
  };

  Kind K = Kind::Skip;
  const Term *Var = nullptr;   ///< Assign/ArrayAssign target variable.
  const Term *Index = nullptr; ///< ArrayAssign index.
  const Term *Rhs = nullptr;   ///< Assign/ArrayAssign value (null = nondet).
  const Term *Cond = nullptr;  ///< Assume/Assert/If/While condition.
  std::vector<std::unique_ptr<Stmt>> Children;
  SourceLoc Loc;
};

/// A parsed procedure: name, parameters, locals, body.
struct ProcAst {
  std::string Name;
  std::vector<const Term *> Params; ///< Int or array variables.
  std::vector<const Term *> Locals;
  std::unique_ptr<Stmt> Body;
};

} // namespace pathinv

#endif // PATHINV_LANG_AST_H
