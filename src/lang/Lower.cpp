//===- lang/Lower.cpp - PIL to transition-system lowering ------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lower.h"

#include "lang/Parser.h"
#include "logic/TermPrinter.h"

using namespace pathinv;

namespace {

class Lowering {
public:
  Lowering(TermManager &TM, const ProcAst &Proc, Program &P)
      : TM(TM), P(P) {
    (void)Proc;
  }

  /// Lowers \p S between \p From and a fresh (or supplied) successor;
  /// returns the location where control continues.
  LocId lower(const Stmt &S, LocId From) {
    switch (S.K) {
    case Stmt::Kind::Block: {
      LocId Cur = From;
      for (const auto &Child : S.Children)
        Cur = lower(*Child, Cur);
      return Cur;
    }
    case Stmt::Kind::Skip:
      return From; // No transition needed; blocks merge locations.
    case Stmt::Kind::Assign: {
      LocId Next = fresh();
      if (S.Rhs) {
        P.addTransition(From, P.mkAssign(S.Var, S.Rhs), Next,
                        S.Var->name() + " := " + printTerm(S.Rhs));
      } else {
        P.addTransition(From, P.mkHavoc(S.Var), Next,
                        S.Var->name() + " := nondet()");
      }
      return Next;
    }
    case Stmt::Kind::ArrayAssign: {
      LocId Next = fresh();
      P.addTransition(From, P.mkArrayAssign(S.Var, S.Index, S.Rhs), Next,
                      S.Var->name() + "[" + printTerm(S.Index) +
                          "] := " + printTerm(S.Rhs));
      return Next;
    }
    case Stmt::Kind::Assume: {
      LocId Next = fresh();
      P.addTransition(From, P.mkAssume(S.Cond), Next,
                      "[" + printTerm(S.Cond) + "]");
      return Next;
    }
    case Stmt::Kind::Assert: {
      LocId Next = fresh();
      const Term *Neg = TM.mkNot(S.Cond);
      P.addTransition(From, P.mkAssume(Neg), P.error(),
                      "[" + printTerm(Neg) + "]");
      P.addTransition(From, P.mkAssume(S.Cond), Next,
                      "[" + printTerm(S.Cond) + "]");
      return Next;
    }
    case Stmt::Kind::If: {
      LocId Join = fresh();
      const Term *CondT = S.Cond ? S.Cond : TM.mkTrue();
      const Term *CondF = S.Cond ? TM.mkNot(S.Cond) : TM.mkTrue();
      LocId ThenEntry = fresh();
      P.addTransition(From, P.mkAssume(CondT), ThenEntry,
                      "[" + printTerm(CondT) + "]");
      LocId ThenExit = lower(*S.Children[0], ThenEntry);
      P.addTransition(ThenExit, P.mkSkip(), Join, "skip");
      LocId ElseEntry = fresh();
      P.addTransition(From, P.mkAssume(CondF), ElseEntry,
                      "[" + printTerm(CondF) + "]");
      LocId ElseExit = S.Children.size() > 1
                           ? lower(*S.Children[1], ElseEntry)
                           : ElseEntry;
      P.addTransition(ElseExit, P.mkSkip(), Join, "skip");
      return Join;
    }
    case Stmt::Kind::While: {
      // `From` becomes the loop head.
      const Term *CondT = S.Cond ? S.Cond : TM.mkTrue();
      const Term *CondF = S.Cond ? TM.mkNot(S.Cond) : TM.mkTrue();
      LocId BodyEntry = fresh();
      LocId Exit = fresh();
      P.addTransition(From, P.mkAssume(CondT), BodyEntry,
                      "[" + printTerm(CondT) + "]");
      LocId BodyExit = lower(*S.Children[0], BodyEntry);
      P.addTransition(BodyExit, P.mkSkip(), From, "skip(loop)");
      P.addTransition(From, P.mkAssume(CondF), Exit,
                      "[" + printTerm(CondF) + "]");
      return Exit;
    }
    }
    assert(false && "unknown statement kind");
    return From;
  }

private:
  LocId fresh() { return P.addLocation("L" + std::to_string(Counter++)); }

  TermManager &TM;
  Program &P;
  int Counter = 1;
};

} // namespace

Program pathinv::lowerProc(TermManager &TM, const ProcAst &Proc) {
  std::vector<const Term *> Vars = Proc.Params;
  Vars.insert(Vars.end(), Proc.Locals.begin(), Proc.Locals.end());
  Program P(TM, std::move(Vars));
  LocId Entry = P.addLocation("L0");
  LocId Error = P.addLocation("LE");
  P.setEntry(Entry);
  P.setError(Error);
  Lowering L(TM, Proc, P);
  L.lower(*Proc.Body, Entry);
  return P;
}

Expected<Program> pathinv::loadProgram(TermManager &TM,
                                       std::string_view Source) {
  Expected<ProcAst> Proc = parseProc(TM, Source);
  if (!Proc)
    return Expected<Program>(Proc.error());
  return lowerProc(TM, Proc.get());
}
