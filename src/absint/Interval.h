//===- absint/Interval.h - Interval abstract domain ------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic interval domain with widening.
///
/// Section 4.2 notes that path-invariant generation "can equally well be
/// instantiated with an algorithm based on abstract interpretation"; this
/// module provides that alternative backend: a widening-based interval
/// analysis over the scalar variables of a (path) program. Arrays are
/// abstracted to top.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_ABSINT_INTERVAL_H
#define PATHINV_ABSINT_INTERVAL_H

#include "program/Program.h"

#include <map>
#include <optional>

namespace pathinv {

/// An interval with optional (absent = infinite) bounds.
struct Interval {
  std::optional<Rational> Lo; ///< Absent = -infinity.
  std::optional<Rational> Hi; ///< Absent = +infinity.

  static Interval top() { return {}; }
  static Interval constant(Rational V) { return {V, V}; }

  bool isTop() const { return !Lo && !Hi; }
  /// Empty interval (lo > hi) represents unreachability of the value.
  bool isEmpty() const { return Lo && Hi && *Lo > *Hi; }

  bool operator==(const Interval &RHS) const {
    return Lo == RHS.Lo && Hi == RHS.Hi;
  }

  Interval join(const Interval &RHS) const;
  Interval meet(const Interval &RHS) const;
  /// Standard widening: unstable bounds jump to infinity.
  Interval widen(const Interval &Newer) const;

  Interval operator+(const Interval &RHS) const;
  Interval scale(const Rational &Factor) const;

  std::string toString() const;
};

/// Abstract state: interval per scalar variable (absent = top); a bottom
/// flag for unreachable states.
struct IntervalState {
  bool Bottom = true;
  std::map<const Term *, Interval, TermIdLess> Vars;

  static IntervalState top() { return {false, {}}; }
  bool operator==(const IntervalState &RHS) const {
    return Bottom == RHS.Bottom && Vars == RHS.Vars;
  }

  Interval valueOf(const Term *Var) const {
    auto It = Vars.find(Var);
    return It == Vars.end() ? Interval::top() : It->second;
  }
};

/// Result of the analysis: one abstract state per location.
struct IntervalAnalysisResult {
  std::vector<IntervalState> States;

  /// Renders the state at \p Loc as a conjunction of bound atoms.
  const Term *stateToTerm(TermManager &TM, LocId Loc) const;
};

/// Runs the interval analysis over \p P with widening at the cutpoints
/// after \p WidenDelay visits.
IntervalAnalysisResult analyzeIntervals(const Program &P,
                                        unsigned WidenDelay = 3);

} // namespace pathinv

#endif // PATHINV_ABSINT_INTERVAL_H
