//===- absint/Interval.cpp - Interval abstract domain ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "absint/Interval.h"

#include "logic/LinearExpr.h"
#include "program/CutSet.h"

using namespace pathinv;

Interval Interval::join(const Interval &RHS) const {
  if (isEmpty())
    return RHS;
  if (RHS.isEmpty())
    return *this;
  Interval Result;
  if (Lo && RHS.Lo)
    Result.Lo = *Lo < *RHS.Lo ? *Lo : *RHS.Lo;
  if (Hi && RHS.Hi)
    Result.Hi = *Hi > *RHS.Hi ? *Hi : *RHS.Hi;
  return Result;
}

Interval Interval::meet(const Interval &RHS) const {
  Interval Result;
  if (Lo && RHS.Lo)
    Result.Lo = *Lo > *RHS.Lo ? *Lo : *RHS.Lo;
  else
    Result.Lo = Lo ? Lo : RHS.Lo;
  if (Hi && RHS.Hi)
    Result.Hi = *Hi < *RHS.Hi ? *Hi : *RHS.Hi;
  else
    Result.Hi = Hi ? Hi : RHS.Hi;
  return Result;
}

Interval Interval::widen(const Interval &Newer) const {
  Interval Result;
  // Keep stable bounds; unstable ones go to infinity.
  if (Lo && Newer.Lo && *Newer.Lo >= *Lo)
    Result.Lo = Lo;
  if (Hi && Newer.Hi && *Newer.Hi <= *Hi)
    Result.Hi = Hi;
  return Result;
}

Interval Interval::operator+(const Interval &RHS) const {
  Interval Result;
  if (Lo && RHS.Lo)
    Result.Lo = *Lo + *RHS.Lo;
  if (Hi && RHS.Hi)
    Result.Hi = *Hi + *RHS.Hi;
  return Result;
}

Interval Interval::scale(const Rational &Factor) const {
  if (Factor.isZero())
    return Interval::constant(Rational(0));
  Interval Result;
  if (Factor.isPositive()) {
    if (Lo)
      Result.Lo = *Lo * Factor;
    if (Hi)
      Result.Hi = *Hi * Factor;
  } else {
    if (Hi)
      Result.Lo = *Hi * Factor;
    if (Lo)
      Result.Hi = *Lo * Factor;
  }
  return Result;
}

std::string Interval::toString() const {
  std::string Result = "[";
  Result += Lo ? Lo->toString() : "-inf";
  Result += ", ";
  Result += Hi ? Hi->toString() : "+inf";
  Result += "]";
  return Result;
}

namespace {

/// Interval evaluation of a linear expression.
Interval evalExpr(const LinearExpr &E, const IntervalState &S) {
  Interval Result = Interval::constant(E.constant());
  for (const auto &[Atom, Coeff] : E.coefficients()) {
    Interval AtomVal =
        Atom->isVar() && Atom->isInt() ? S.valueOf(Atom) : Interval::top();
    Result = Result + AtomVal.scale(Coeff);
  }
  return Result;
}

/// Refines \p S with the guard `E REL 0` (REL in {Le, Lt, Eq}): for each
/// variable with a nonzero coefficient, bound it using the interval of the
/// remaining terms.
bool applyGuard(const LinearExpr &E, RelKind Rel, IntervalState &S) {
  // Feasibility check first.
  Interval Whole = evalExpr(E, S);
  if (Rel == RelKind::Eq) {
    if ((Whole.Lo && Whole.Lo->isPositive()) ||
        (Whole.Hi && Whole.Hi->isNegative()))
      return false;
  } else if (Whole.Lo && (Whole.Lo->isPositive() ||
                          (Rel == RelKind::Lt && Whole.Lo->isZero()))) {
    return false;
  }

  for (const auto &[Atom, Coeff] : E.coefficients()) {
    if (!Atom->isVar() || !Atom->isInt())
      continue;
    // E = Coeff * Atom + Rest REL 0  ==>  Coeff * Atom REL -Rest.
    LinearExpr Rest = E;
    Rest.addTerm(Atom, -Coeff);
    Interval RestVal = evalExpr(Rest, S).scale(Rational(-1));
    Interval Bound; // interval for Coeff * Atom
    if (Rel == RelKind::Eq) {
      Bound = RestVal;
    } else {
      Bound.Hi = RestVal.Hi; // Coeff*Atom <= -Rest (upper side only).
      if (Rel == RelKind::Lt && Bound.Hi)
        Bound.Hi = *Bound.Hi - Rational(1); // Integer tightening.
    }
    Interval VarBound = Bound.scale(Coeff.inverse());
    // Integer rounding of rational bounds.
    if (VarBound.Lo && !VarBound.Lo->isInteger())
      VarBound.Lo = Rational(VarBound.Lo->ceil());
    if (VarBound.Hi && !VarBound.Hi->isInteger())
      VarBound.Hi = Rational(VarBound.Hi->floor());
    Interval Refined = S.valueOf(Atom).meet(VarBound);
    if (Refined.isEmpty())
      return false;
    if (!Refined.isTop())
      S.Vars[Atom] = Refined;
  }
  return true;
}

/// Abstract post of one builder-shaped transition.
IntervalState postState(const Program &P, const Term *Rel,
                        const IntervalState &In) {
  if (In.Bottom)
    return In;
  TermManager &TM = P.termManager();
  IntervalState Cur = In;

  std::vector<const Term *> Conjuncts;
  flattenConjuncts(Rel, Conjuncts);

  // Split into guards and updates.
  TermMap Defs;
  for (const Term *C : Conjuncts) {
    if (C->kind() == TermKind::Eq) {
      const Term *Lhs = C->operand(0);
      const Term *Rhs = C->operand(1);
      if (isPrimedVar(Rhs))
        std::swap(Lhs, Rhs);
      if (isPrimedVar(Lhs)) {
        Defs[Lhs] = Rhs;
        continue;
      }
    }
    // Guard: refine (only conjunctive linear atoms; disjunctions and
    // disequalities are ignored, which is sound).
    if (C->isAtom()) {
      std::optional<LinearAtom> LA = decomposeAtom(C);
      if (LA && !applyGuard(LA->Expr, LA->Rel, Cur)) {
        IntervalState Bot;
        return Bot;
      }
    } else if (C->isFalse()) {
      IntervalState Bot;
      return Bot;
    }
  }

  IntervalState Out = IntervalState::top();
  for (const Term *Var : P.variables()) {
    if (Var->isArray())
      continue; // Arrays are abstracted to top.
    auto DefIt = Defs.find(primedVar(TM, Var));
    if (DefIt == Defs.end()) {
      // Havoc: top.
      continue;
    }
    std::optional<LinearExpr> L = LinearExpr::fromTerm(DefIt->second);
    Interval Value = L ? evalExpr(*L, Cur) : Interval::top();
    if (!Value.isTop())
      Out.Vars[Var] = Value;
  }
  return Out;
}

} // namespace

const Term *IntervalAnalysisResult::stateToTerm(TermManager &TM,
                                                LocId Loc) const {
  const IntervalState &S = States[Loc];
  if (S.Bottom)
    return TM.mkFalse();
  std::vector<const Term *> Conjuncts;
  for (const auto &[Var, Iv] : S.Vars) {
    if (Iv.Lo)
      Conjuncts.push_back(TM.mkLe(TM.mkIntConst(*Iv.Lo), Var));
    if (Iv.Hi)
      Conjuncts.push_back(TM.mkLe(Var, TM.mkIntConst(*Iv.Hi)));
  }
  return TM.mkAnd(std::move(Conjuncts));
}

IntervalAnalysisResult pathinv::analyzeIntervals(const Program &P,
                                                 unsigned WidenDelay) {
  IntervalAnalysisResult Result;
  Result.States.resize(P.numLocations());
  std::set<LocId> Cuts = computeCutSet(P);
  std::vector<unsigned> Visits(P.numLocations(), 0);

  Result.States[P.entry()] = IntervalState::top();
  std::vector<LocId> Worklist{P.entry()};
  while (!Worklist.empty()) {
    LocId Loc = Worklist.back();
    Worklist.pop_back();
    const IntervalState In = Result.States[Loc];
    for (int TransIdx : P.successorsOf(Loc)) {
      const Transition &T = P.transition(TransIdx);
      IntervalState New = postState(P, T.Rel, In);
      if (New.Bottom)
        continue;
      IntervalState &Old = Result.States[T.To];
      IntervalState Joined;
      if (Old.Bottom) {
        Joined = New;
      } else {
        Joined = IntervalState::top();
        // Join variable-wise (absent = top, so only shared keys survive).
        for (const auto &[Var, Iv] : Old.Vars) {
          auto It = New.Vars.find(Var);
          if (It == New.Vars.end())
            continue;
          Interval J = Iv.join(It->second);
          if (!J.isTop())
            Joined.Vars[Var] = J;
        }
      }
      if (Cuts.count(T.To) && ++Visits[T.To] > WidenDelay &&
          !Old.Bottom) {
        IntervalState Widened = IntervalState::top();
        for (const auto &[Var, Iv] : Old.Vars) {
          auto It = Joined.Vars.find(Var);
          if (It == Joined.Vars.end())
            continue;
          Interval W = Iv.widen(It->second);
          if (!W.isTop())
            Widened.Vars[Var] = W;
        }
        Joined = std::move(Widened);
      }
      if (Old.Bottom || !(Joined == Old)) {
        Old = std::move(Joined);
        Worklist.push_back(T.To);
      }
    }
  }

  // Descending (narrowing) passes recover the precision thrown away by
  // widening: recompute every non-entry state as the join of its
  // predecessors' posts, and let infinite bounds tighten to the recomputed
  // ones while finite bounds stay. Without this, a widened loop counter
  // stays unbounded and trivially reachable assertions cannot be excluded.
  for (unsigned Pass = 0; Pass < 3; ++Pass) {
    bool Changed = false;
    std::vector<IntervalState> Recomputed(P.numLocations());
    for (int TransIdx = 0; TransIdx < P.numTransitions(); ++TransIdx) {
      const Transition &T = P.transition(TransIdx);
      if (Result.States[T.From].Bottom)
        continue;
      IntervalState New = postState(P, T.Rel, Result.States[T.From]);
      if (New.Bottom)
        continue;
      IntervalState &Acc = Recomputed[T.To];
      if (Acc.Bottom) {
        Acc = std::move(New);
        continue;
      }
      IntervalState Joined = IntervalState::top();
      for (const auto &[Var, Iv] : Acc.Vars) {
        auto It = New.Vars.find(Var);
        if (It == New.Vars.end())
          continue;
        Interval J = Iv.join(It->second);
        if (!J.isTop())
          Joined.Vars[Var] = J;
      }
      Acc = std::move(Joined);
    }
    for (LocId Loc = 0; Loc < P.numLocations(); ++Loc) {
      if (Loc == P.entry())
        continue;
      IntervalState &Old = Result.States[Loc];
      IntervalState &New = Recomputed[Loc];
      if (Old.Bottom)
        continue; // Unreachable stays unreachable.
      if (New.Bottom) {
        Old = IntervalState();
        Changed = true;
        continue;
      }
      // Narrow per variable: adopt the recomputed bound where the current
      // one is infinite (finite bounds are already sound and stay).
      IntervalState Narrowed = IntervalState::top();
      for (const auto &[Var, Iv] : New.Vars) {
        Interval Cur = Old.valueOf(Var);
        Interval N;
        N.Lo = Cur.Lo ? Cur.Lo : Iv.Lo;
        N.Hi = Cur.Hi ? Cur.Hi : Iv.Hi;
        if (!N.isTop())
          Narrowed.Vars[Var] = N;
      }
      // Variables bounded before but absent from the recomputation keep
      // their old bounds.
      for (const auto &[Var, Iv] : Old.Vars)
        if (!Narrowed.Vars.count(Var))
          Narrowed.Vars[Var] = Iv;
      if (!(Narrowed == Old)) {
        Old = std::move(Narrowed);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return Result;
}
