//===- fuzz/Oracle.cpp - Three-engine differential adjudication ------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Witness-exact adjudication, never majority vote: an Unsafe verdict must
// replay its witness to the error location on the solver-free interpreter;
// a Safe verdict must carry an invariant map that checkInvariantMap
// re-validates here, in the oracle, against a freshly lowered program.
// Unknown is never a bug (exhaustion is never a verdict), but a definitive
// verdict that contradicts the constructed ground truth or its own
// evidence is — with the seed attached for reproduction.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "core/Verifier.h"
#include "synth/InvariantMap.h"

using namespace pathinv;
using namespace pathinv::fuzz;

namespace {

void runOneEngine(EngineKind Kind, uint64_t Seed, bool ExpectSafe,
                  const std::string &Source, const OracleOptions &Opts,
                  OracleReport &Rep) {
  EngineOptions EO;
  EO.Engine = Kind;
  EO.ValidateWitness = true;
  EO.Limits = Opts.Budget;
  Verifier V(EO);
  std::string Tag = std::string(engineKindName(Kind)) + " @ seed " +
                    std::to_string(Seed);

  Expected<Program> P = V.loadSource(Source);
  if (!P) {
    // The generator's output must always parse; a front-end rejection is
    // a generator bug, not an engine bug, but it is a bug.
    Rep.Bugs.push_back(Tag + ": generated source failed to load: " +
                       P.error().render());
    return;
  }
  EngineResult R = V.verifyProgram(P.get());

  EngineRun Run;
  Run.Engine = engineKindName(Kind);
  switch (R.Verdict) {
  case EngineResult::Verdict::Unsafe: {
    Run.Verdict = 'U';
    if (ExpectSafe)
      Rep.Bugs.push_back(Tag + ": Unsafe on a ground-truth-safe program");
    bool EndsAtError =
        !R.Witness.empty() &&
        P.get().transition(R.Witness.back()).To == P.get().error();
    Run.WitnessReplayed =
        R.WitnessReplayed && R.Replay.Feasible && EndsAtError;
    if (!Run.WitnessReplayed)
      Rep.Bugs.push_back(
          Tag + ": Unsafe verdict whose witness did not replay to the "
                "error location");
    break;
  }
  case EngineResult::Verdict::Safe: {
    Run.Verdict = 'S';
    if (!ExpectSafe)
      Rep.Bugs.push_back(Tag +
                         ": Safe on an interpreter-confirmed-unsafe "
                         "program");
    if (!R.HasInvariants) {
      Rep.Bugs.push_back(Tag + ": Safe verdict without a certificate");
      break;
    }
    // Re-validate in the oracle: the engine's own validation does not
    // count as evidence for the engine.
    InvariantCheckResult Check =
        checkInvariantMap(P.get(), R.Invariants, V.solver());
    Run.CertificateValidated = Check.Ok;
    if (!Check.Ok)
      Rep.Bugs.push_back(Tag + ": Safe certificate failed validation: " +
                         Check.FailureReason);
    break;
  }
  case EngineResult::Verdict::Unknown:
    Run.Verdict = '?';
    Run.UnknownReason = !R.UnknownReason.empty() ? R.UnknownReason : R.Note;
    break;
  }
  Rep.Runs.push_back(std::move(Run));
}

} // namespace

OracleReport fuzz::adjudicateSource(uint64_t Seed, bool ExpectSafe,
                                    const std::string &Source,
                                    const OracleOptions &Opts) {
  OracleReport Rep;
  Rep.Seed = Seed;
  Rep.ExpectSafe = ExpectSafe;
  Rep.Source = Source;
  if (Opts.RunCegar)
    runOneEngine(EngineKind::Cegar, Seed, ExpectSafe, Source, Opts, Rep);
  if (Opts.RunPdr)
    runOneEngine(EngineKind::Pdr, Seed, ExpectSafe, Source, Opts, Rep);
  if (Opts.RunPortfolio)
    runOneEngine(EngineKind::Portfolio, Seed, ExpectSafe, Source, Opts,
                 Rep);

  // Cross-engine disagreement is reported in its own right even though at
  // least one side also contradicts the ground truth — a differential hit
  // must stay visible if ground-truth construction ever regresses.
  bool AnySafe = false, AnyUnsafe = false;
  for (const EngineRun &Run : Rep.Runs) {
    AnySafe |= Run.Verdict == 'S';
    AnyUnsafe |= Run.Verdict == 'U';
  }
  if (AnySafe && AnyUnsafe)
    Rep.Bugs.push_back("seed " + std::to_string(Seed) +
                       ": cross-engine Safe/Unsafe disagreement");
  return Rep;
}

OracleReport fuzz::adjudicate(const GeneratedProgram &GP,
                              const OracleOptions &Opts) {
  return adjudicateSource(GP.Seed, GP.ExpectSafe, GP.Source, Opts);
}

SweepResult fuzz::runSweep(const SweepOptions &Opts) {
  SweepResult Res;
  for (int I = 0; I < Opts.Count; ++I) {
    GeneratedProgram GP =
        generateProgram(Opts.FirstSeed + static_cast<uint64_t>(I));
    OracleReport Rep = adjudicate(GP, Opts.Oracle);
    ++Res.Programs;
    ++(GP.ExpectSafe ? Res.ExpectedSafe : Res.ExpectedUnsafe);
    for (const EngineRun &Run : Rep.Runs) {
      if (Run.Verdict == 'S')
        ++Res.SafeVerdicts;
      else if (Run.Verdict == 'U')
        ++Res.UnsafeVerdicts;
      else
        ++Res.UnknownVerdicts;
    }
    if (!Rep.ok() && Opts.Minimize) {
      // Shrink while the oracle still flags *some* bug on the shrunk
      // source under the same ground-truth expectation.
      OracleOptions Probe = Opts.Oracle;
      bool ExpectSafe = GP.ExpectSafe;
      uint64_t Seed = GP.Seed;
      Rep.Source = minimizeProgram(
          Rep.Source, [&](const std::string &Cand) {
            // The ground-truth label must survive the shrink: an edit
            // that flips a confirmed-unsafe program safe (or makes a
            // safe one concretely unsafe) would leave the minimized
            // artifact claiming a bug against a stale expectation.
            if (confirmsUnsafe(Cand) == ExpectSafe)
              return false;
            return !adjudicateSource(Seed, ExpectSafe, Cand, Probe).ok();
          });
    }
    if (Opts.OnReport)
      Opts.OnReport(Rep);
    if (!Rep.ok())
      Res.BugReports.push_back(std::move(Rep));
  }
  return Res;
}
