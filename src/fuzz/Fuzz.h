//===- fuzz/Fuzz.h - Seeded PIL fuzzer + differential oracle ---*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generation of `.pil` loop programs with *constructed* ground
/// truth, and a three-engine differential oracle with witness-exact
/// adjudication.
///
/// Ground truth is never guessed: safe programs are grown around a planted
/// inductive invariant (the assertion is a consequence of it), and unsafe
/// programs are safe programs with one targeted mutation whose violation
/// is confirmed by exhaustive bounded interpreter execution before the
/// case counts. The oracle then runs each engine (cegar, pdr, portfolio)
/// under a ResourceController budget and adjudicates *exactly*:
///
///   * every Unsafe verdict must carry a witness whose concrete replay
///     reaches the error location,
///   * every Safe verdict must carry an invariant map that passes
///     checkInvariantMap independently,
///   * Unknown is never a bug (exhaustion is never a verdict),
///   * any Safe/Unsafe cross-engine disagreement, ground-truth mismatch,
///     or failed replay/validation is a reportable bug with the seed.
///
/// There is no majority voting anywhere: a verdict either proves itself
/// or it is a bug.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_FUZZ_FUZZ_H
#define PATHINV_FUZZ_FUZZ_H

#include "core/Resource.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace pathinv {
namespace fuzz {

/// One generated test case with constructed ground truth.
struct GeneratedProgram {
  uint64_t Seed = 0;
  /// Ground truth: true = grown from a planted invariant; false = a
  /// targeted mutation whose error reachability the bounded interpreter
  /// confirmed on this exact source.
  bool ExpectSafe = true;
  std::string Source; ///< PIL text (parseable by parseProc).
  std::string Family; ///< Generator family ("straight", "counter", ...).
  /// The confirmed mutation for unsafe cases ("assert_const",
  /// "init_perturb", "branch_perturb", "drop_assume", "guard_le",
  /// "swap_init"); empty for safe cases.
  std::string Mutation;
};

/// Deterministically generates the test case for \p Seed (same seed, same
/// program — byte for byte; seeds are the reproduction handle).
GeneratedProgram generateProgram(uint64_t Seed);

/// Ground-truth confirmation: parses and lowers \p Source into a private
/// term manager and runs the exhaustive bounded interpreter search
/// (searchForError) with the procedure parameters as enumerated inputs.
/// \returns true iff a concrete error execution was found — solver-free
/// proof that the program is really unsafe. False proves nothing.
bool confirmsUnsafe(const std::string &Source);

/// Per-engine-run budget for the oracle. Defaults are deterministic step
/// budgets (so a sweep reproduces from its seed block) plus a generous
/// wall backstop that only pathological cases ever reach.
struct OracleOptions {
  ResourceLimits Budget;
  bool RunCegar = true;
  bool RunPdr = true;
  bool RunPortfolio = true;

  OracleOptions() {
    Budget.TimeoutSeconds = 30;
    Budget.SatConflicts = 200000;
    Budget.Pivots = 500000;
    Budget.BnbNodes = 100000;
    Budget.SynthCombos = 50000;
    Budget.ArgExpansions = 20000;
    Budget.Refinements = 60;
    Budget.PdrObligations = 4000;
  }
};

/// What one engine did on one program.
struct EngineRun {
  std::string Engine;         ///< "cegar" / "pdr" / "portfolio".
  char Verdict = '?';         ///< 'S', 'U', or '?'.
  std::string UnknownReason;  ///< Exhaustion attribution for '?'.
  bool WitnessReplayed = false;      ///< Unsafe: replay reached the error.
  bool CertificateValidated = false; ///< Safe: map passed checkInvariantMap.
};

/// Adjudication of one program across the enabled engines.
struct OracleReport {
  uint64_t Seed = 0;
  bool ExpectSafe = true;
  std::string Source;
  std::vector<EngineRun> Runs;
  /// Human-readable adjudication failures; empty means the case passed.
  std::vector<std::string> Bugs;

  bool ok() const { return Bugs.empty(); }
};

/// Runs the enabled engines on \p Source and adjudicates exactly against
/// the ground truth \p ExpectSafe. \p Seed is carried into the report for
/// reproduction only.
OracleReport adjudicateSource(uint64_t Seed, bool ExpectSafe,
                              const std::string &Source,
                              const OracleOptions &Opts = {});

/// generateProgram + adjudicateSource in one step.
OracleReport adjudicate(const GeneratedProgram &GP,
                        const OracleOptions &Opts = {});

/// "Does this source still exhibit the failure?" — the minimizer's test
/// oracle. Must return false for unparseable sources.
using FailurePredicate = std::function<bool(const std::string &Source)>;

/// ddmin-style shrinking: repeatedly applies the smallest-first edit
/// (statement/chunk removal, if/while unwrapping, conjunct dropping,
/// constant narrowing) that keeps \p Fails true, until a fixpoint or
/// \p MaxRounds. Every accepted edit strictly shrinks a well-founded size
/// metric, so the loop terminates; the result still satisfies \p Fails
/// (or is the untouched input when nothing could be removed).
std::string minimizeProgram(const std::string &Source,
                            const FailurePredicate &Fails,
                            int MaxRounds = 48);

/// Fixed-seed sweep driver shared by the CLI, bench harness, and tests.
struct SweepOptions {
  uint64_t FirstSeed = 1;
  int Count = 200;
  OracleOptions Oracle;
  /// Shrink each failing program before reporting it.
  bool Minimize = false;
  /// Optional per-case progress callback.
  std::function<void(const OracleReport &)> OnReport;
};

struct SweepResult {
  int Programs = 0;
  int ExpectedSafe = 0;
  int ExpectedUnsafe = 0;
  /// Definitive verdicts observed (sound ones only; mismatches are bugs).
  int SafeVerdicts = 0;
  int UnsafeVerdicts = 0;
  int UnknownVerdicts = 0;
  /// Failing cases (minimized when SweepOptions::Minimize), each with its
  /// seed for reproduction.
  std::vector<OracleReport> BugReports;

  bool ok() const { return BugReports.empty(); }
};

SweepResult runSweep(const SweepOptions &Opts);

} // namespace fuzz
} // namespace pathinv

#endif // PATHINV_FUZZ_FUZZ_H
