//===- fuzz/Generate.cpp - Seeded PIL program generation -------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ground-truth construction (see Fuzz.h): every safe program is emitted
// around a planted inductive invariant, so its assertion is a consequence
// by construction; every unsafe program is a safe program with one
// targeted mutation, and the mutation only counts after the bounded
// interpreter exhibits a concrete error execution on the exact emitted
// source. A mutation that the interpreter cannot confirm within bounds is
// discarded (the case falls back to the safe variant) — the corpus never
// contains a case whose label rests on intuition.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "interp/Interpreter.h"
#include "lang/Lower.h"
#include "lang/Parser.h"

#include <utility>

using namespace pathinv;
using namespace pathinv::fuzz;

namespace {

/// Deterministic xorshift64 stream. The multiplier decorrelates adjacent
/// seeds (1, 2, 3, ... are the common CLI inputs) before the shifts mix.
class Rng {
public:
  explicit Rng(uint64_t Seed) : S(Seed * 2654435769ULL + 1) {
    next();
    next();
  }
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  /// Uniform-ish integer in [Lo, Hi], inclusive.
  int range(int Lo, int Hi) {
    return Lo + static_cast<int>(next() %
                                 static_cast<uint64_t>(Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(0, 99) < Percent; }
  int pm() { return chance(50) ? 1 : -1; } ///< +1 or -1.

private:
  uint64_t S;
};

/// Renders a linear combination as PIL expression text: terms joined with
/// binary +/-, coefficient-1 magnitudes bare, the empty sum as "0".
class LinExpr {
public:
  LinExpr &add(int Coef, const std::string &Var = "") {
    if (Coef == 0 && !Var.empty())
      return *this;
    if (Coef == 0 && S.empty())
      return *this; // Trailing zero constants vanish; str() restores "0".
    int Abs = Coef < 0 ? -Coef : Coef;
    std::string Mag = Var.empty()           ? std::to_string(Abs)
                      : Abs == 1            ? Var
                                            : std::to_string(Abs) + "*" + Var;
    if (S.empty())
      S = (Coef < 0 ? "-" : "") + Mag;
    else
      S += (Coef < 0 ? " - " : " + ") + Mag;
    return *this;
  }
  std::string str() const { return S.empty() ? "0" : S; }

private:
  std::string S;
};

std::string assign(const std::string &Var, const LinExpr &E,
                   int Indent = 2) {
  return std::string(static_cast<size_t>(Indent), ' ') + Var + " = " +
         E.str() + ";\n";
}

std::string incr(const std::string &Var, int Delta, int Indent = 2) {
  return assign(Var, LinExpr().add(1, Var).add(Delta), Indent);
}

/// One mutation candidate: the name recorded in the report plus the full
/// mutated source.
struct Candidate {
  std::string Name;
  std::string Source;
};

/// Tries the candidates in seeded order; the first one the bounded
/// interpreter confirms becomes the unsafe case.
bool pickConfirmed(std::vector<Candidate> &Cands, Rng &R,
                   GeneratedProgram &GP) {
  for (size_t I = Cands.size(); I > 1; --I)
    std::swap(Cands[I - 1],
              Cands[static_cast<size_t>(R.range(0, static_cast<int>(I) - 1))]);
  for (const Candidate &C : Cands) {
    if (confirmsUnsafe(C.Source)) {
      GP.ExpectSafe = false;
      GP.Source = C.Source;
      GP.Mutation = C.Name;
      return true;
    }
  }
  return false;
}

// --- Family "straight": loop-free, optional input-guarded branch --------
//
// Planted facts: y == C1 always; the branch only ever adds n with n > C2
// >= 0, so x + y >= C0 + C1 at the assertion.

struct StraightSpec {
  int C0 = 0, C1 = 0, C2 = 0;
  bool HasIf = true, HasNoise = false;
  int AssertDelta = 0; ///< Bound constant off-by (mutation).
  int InitDelta = 0;   ///< x's init perturbed, assertion not (mutation).
  bool SwapInit = false; ///< x/y initializers exchanged (mutation).
  bool BumpY = false;    ///< Branch also clobbers y (mutation).
};

std::string emitStraight(const StraightSpec &S) {
  std::string Out = "proc f(n) {\n  var x, y";
  if (S.HasNoise)
    Out += ", z";
  Out += ";\n";
  Out += assign("x", LinExpr().add(S.SwapInit ? S.C1 : S.C0 + S.InitDelta));
  Out += assign("y", LinExpr().add(S.SwapInit ? S.C0 : S.C1));
  if (S.HasNoise)
    Out += "  z = nondet();\n";
  if (S.HasIf) {
    Out += "  if (n > " + std::to_string(S.C2) + ") {\n";
    Out += "    x = x + n;\n";
    if (S.BumpY)
      Out += incr("y", -1, 4);
    Out += "  }\n";
  }
  Out += "  assert(y == " + std::to_string(S.C1) + " && " +
         LinExpr().add(1, "x").add(1, "y").str() + " >= " +
         std::to_string(S.C0 + S.C1 + S.AssertDelta) + ");\n}\n";
  return Out;
}

void genStraight(Rng &R, bool WantUnsafe, GeneratedProgram &GP) {
  GP.Family = "straight";
  StraightSpec S;
  S.C0 = R.range(-3, 3);
  S.C1 = R.range(-3, 3);
  S.C2 = R.range(0, 2);
  S.HasIf = R.chance(70);
  S.HasNoise = R.chance(30);
  if (WantUnsafe) {
    std::vector<Candidate> Cands;
    auto Mut = [&](const char *Name, auto Edit) {
      StraightSpec M = S;
      Edit(M);
      Cands.push_back({Name, emitStraight(M)});
    };
    Mut("assert_const", [&](StraightSpec &M) { M.AssertDelta = 1; });
    Mut("init_perturb", [&](StraightSpec &M) { M.InitDelta = -1; });
    if (S.C0 != S.C1)
      Mut("swap_init", [&](StraightSpec &M) { M.SwapInit = true; });
    if (S.HasIf)
      Mut("branch_perturb", [&](StraightSpec &M) { M.BumpY = true; });
    if (pickConfirmed(Cands, R, GP))
      return;
  }
  GP.Source = emitStraight(S);
}

// --- Family "counter": deterministic loop x += P ------------------------
//
// Planted invariant: x == P*i + X0 (and i <= n when the assertion speaks
// about n; the exit condition then forces i == n).

struct CounterSpec {
  int X0 = 0, P = 1;
  bool AssertOnN = false; ///< assert x == P*n + X0 (needs assume(n>=0)).
  bool HasAssume = true, HasNoise = false;
  bool GuardLe = false; ///< while (i <= n) — one extra iteration (mutation).
  int AssertDelta = 0, InitDelta = 0, BodyDelta = 0;
};

std::string emitCounter(const CounterSpec &S) {
  std::string Out = "proc f(n) {\n  var x, i";
  if (S.HasNoise)
    Out += ", z";
  Out += ";\n";
  if (S.HasAssume)
    Out += "  assume(n >= 0);\n";
  Out += assign("x", LinExpr().add(S.X0 + S.InitDelta));
  Out += assign("i", LinExpr().add(0));
  if (S.HasNoise)
    Out += "  z = nondet();\n";
  Out += std::string("  while (i <") + (S.GuardLe ? "=" : "") + " n) {\n";
  Out += incr("x", S.P + S.BodyDelta, 4);
  Out += incr("i", 1, 4);
  Out += "  }\n";
  Out += "  assert(x == " +
         LinExpr()
             .add(S.P, S.AssertOnN ? "n" : "i")
             .add(S.X0 + S.AssertDelta)
             .str() +
         ");\n}\n";
  return Out;
}

void genCounter(Rng &R, bool WantUnsafe, GeneratedProgram &GP) {
  GP.Family = "counter";
  CounterSpec S;
  S.X0 = R.range(-3, 3);
  do
    S.P = R.range(-3, 3);
  while (S.P == 0);
  S.AssertOnN = R.chance(50);
  S.HasAssume = S.AssertOnN || R.chance(70);
  S.HasNoise = R.chance(25);
  if (WantUnsafe) {
    std::vector<Candidate> Cands;
    auto Mut = [&](const char *Name, auto Edit) {
      CounterSpec M = S;
      Edit(M);
      Cands.push_back({Name, emitCounter(M)});
    };
    int D = R.pm();
    Mut("assert_const", [&](CounterSpec &M) { M.AssertDelta = D; });
    Mut("init_perturb", [&](CounterSpec &M) { M.InitDelta = D; });
    Mut("branch_perturb", [&](CounterSpec &M) { M.BodyDelta = D; });
    if (S.AssertOnN) {
      Mut("drop_assume", [&](CounterSpec &M) { M.HasAssume = false; });
      Mut("guard_le", [&](CounterSpec &M) { M.GuardLe = true; });
    }
    if (pickConfirmed(Cands, R, GP))
      return;
  }
  GP.Source = emitCounter(S);
}

// --- Family "forward": nondeterministic two-branch loop -----------------
//
// The paper's FORWARD shape. Planted invariant: A*x + y == C*i + D with
// C = A*P1 + Q1 and the else-branch completing the same relation
// (Q2 = C - A*P2), D = A*X0 + Y0.

struct ForwardSpec {
  int A = 1, X0 = 0, Y0 = 0, P1 = 0, P2 = 0, Q1 = 0;
  bool HasAssume = true, HasNoise = false;
  int AssertDelta = 0, InitDelta = 0, BranchDelta = 0;

  int c() const { return A * P1 + Q1; }
  int q2() const { return c() - A * P2; }
  int d() const { return A * X0 + Y0; }
};

std::string emitForward(const ForwardSpec &S) {
  std::string Out = "proc f(n) {\n  var x, y, i";
  if (S.HasNoise)
    Out += ", z";
  Out += ";\n";
  if (S.HasAssume)
    Out += "  assume(n >= 0);\n";
  Out += assign("x", LinExpr().add(S.X0 + S.InitDelta));
  Out += assign("y", LinExpr().add(S.Y0));
  Out += assign("i", LinExpr().add(0));
  if (S.HasNoise)
    Out += "  z = nondet();\n";
  Out += "  while (i < n) {\n    if (*) {\n";
  Out += incr("x", S.P1, 6);
  Out += incr("y", S.Q1, 6);
  Out += "    } else {\n";
  Out += incr("x", S.P2, 6);
  Out += incr("y", S.q2() + S.BranchDelta, 6);
  Out += "    }\n";
  Out += incr("i", 1, 4);
  Out += "  }\n";
  Out += "  assert(" + LinExpr().add(S.A, "x").add(1, "y").str() + " == " +
         LinExpr().add(S.c(), "i").add(S.d() + S.AssertDelta).str() +
         ");\n}\n";
  return Out;
}

void genForward(Rng &R, bool WantUnsafe, GeneratedProgram &GP) {
  GP.Family = "forward";
  ForwardSpec S;
  S.A = R.range(1, 3);
  S.X0 = R.range(-2, 2);
  S.Y0 = R.range(-2, 2);
  S.P1 = R.range(-2, 2);
  S.P2 = R.range(-2, 2);
  S.Q1 = R.range(-2, 2);
  S.HasAssume = R.chance(60);
  S.HasNoise = R.chance(25);
  if (WantUnsafe) {
    std::vector<Candidate> Cands;
    auto Mut = [&](const char *Name, auto Edit) {
      ForwardSpec M = S;
      Edit(M);
      Cands.push_back({Name, emitForward(M)});
    };
    int D = R.pm();
    Mut("assert_const", [&](ForwardSpec &M) { M.AssertDelta = D; });
    Mut("init_perturb", [&](ForwardSpec &M) { M.InitDelta = D; });
    Mut("branch_perturb", [&](ForwardSpec &M) { M.BranchDelta = D; });
    if (pickConfirmed(Cands, R, GP))
      return;
  }
  GP.Source = emitForward(S);
}

// --- Family "ineq": nonnegative nondeterministic growth -----------------
//
// Planted invariant: x >= X0 (every branch adds a nonnegative amount).

struct IneqSpec {
  int X0 = 0, P1 = 0, P2 = 0; // P1, P2 >= 0.
  bool HasNoise = false;
  int AssertDelta = 0, InitDelta = 0;
  bool NegBranch = false; ///< else-branch decrements instead (mutation).
};

std::string emitIneq(const IneqSpec &S) {
  std::string Out = "proc f(n) {\n  var x, i";
  if (S.HasNoise)
    Out += ", z";
  Out += ";\n  assume(n >= 0);\n";
  Out += assign("x", LinExpr().add(S.X0 + S.InitDelta));
  Out += assign("i", LinExpr().add(0));
  if (S.HasNoise)
    Out += "  z = nondet();\n";
  Out += "  while (i < n) {\n    if (*) {\n";
  Out += incr("x", S.P1, 6);
  Out += "    } else {\n";
  Out += incr("x", S.NegBranch ? -1 : S.P2, 6);
  Out += "    }\n";
  Out += incr("i", 1, 4);
  Out += "  }\n";
  Out += "  assert(x >= " + std::to_string(S.X0 + S.AssertDelta) +
         ");\n}\n";
  return Out;
}

void genIneq(Rng &R, bool WantUnsafe, GeneratedProgram &GP) {
  GP.Family = "ineq";
  IneqSpec S;
  S.X0 = R.range(-2, 2);
  S.P1 = R.range(0, 3);
  S.P2 = R.range(0, 3);
  S.HasNoise = R.chance(25);
  if (WantUnsafe) {
    std::vector<Candidate> Cands;
    auto Mut = [&](const char *Name, auto Edit) {
      IneqSpec M = S;
      Edit(M);
      Cands.push_back({Name, emitIneq(M)});
    };
    Mut("assert_const", [&](IneqSpec &M) { M.AssertDelta = 1; });
    Mut("init_perturb", [&](IneqSpec &M) { M.InitDelta = -1; });
    Mut("branch_perturb", [&](IneqSpec &M) { M.NegBranch = true; });
    if (pickConfirmed(Cands, R, GP))
      return;
  }
  GP.Source = emitIneq(S);
}

// --- Family "twoloop": two sequential counting loops --------------------
//
// Planted invariants: x == Inc*i (first loop), x == Inc*n + Inc*i
// (second); the exits force i == n each time, so x == 2*Inc*n at the end.

struct TwoLoopSpec {
  int Inc = 1;
  bool HasAssume = true;
  bool Guard2Le = false; ///< Second loop runs once more (mutation).
  int AssertDelta = 0, Body2Delta = 0;
};

std::string emitTwoLoop(const TwoLoopSpec &S) {
  std::string Out = "proc f(n) {\n  var x, i;\n";
  if (S.HasAssume)
    Out += "  assume(n >= 0);\n";
  Out += assign("x", LinExpr().add(0));
  Out += assign("i", LinExpr().add(0));
  Out += "  while (i < n) {\n";
  Out += incr("x", S.Inc, 4);
  Out += incr("i", 1, 4);
  Out += "  }\n";
  Out += assign("i", LinExpr().add(0));
  Out += std::string("  while (i <") + (S.Guard2Le ? "=" : "") + " n) {\n";
  Out += incr("x", S.Inc + S.Body2Delta, 4);
  Out += incr("i", 1, 4);
  Out += "  }\n";
  Out += "  assert(x == " +
         LinExpr().add(2 * S.Inc, "n").add(S.AssertDelta).str() + ");\n}\n";
  return Out;
}

void genTwoLoop(Rng &R, bool WantUnsafe, GeneratedProgram &GP) {
  GP.Family = "twoloop";
  TwoLoopSpec S;
  S.Inc = R.range(1, 2);
  if (WantUnsafe) {
    std::vector<Candidate> Cands;
    auto Mut = [&](const char *Name, auto Edit) {
      TwoLoopSpec M = S;
      Edit(M);
      Cands.push_back({Name, emitTwoLoop(M)});
    };
    int D = R.pm();
    Mut("assert_const", [&](TwoLoopSpec &M) { M.AssertDelta = D; });
    Mut("branch_perturb", [&](TwoLoopSpec &M) { M.Body2Delta = 1; });
    Mut("guard_le", [&](TwoLoopSpec &M) { M.Guard2Le = true; });
    Mut("drop_assume", [&](TwoLoopSpec &M) { M.HasAssume = false; });
    if (pickConfirmed(Cands, R, GP))
      return;
  }
  GP.Source = emitTwoLoop(S);
}

} // namespace

bool fuzz::confirmsUnsafe(const std::string &Source) {
  TermManager TM;
  Expected<ProcAst> Proc = parseProc(TM, Source);
  if (!Proc)
    return false;
  Program P = lowerProc(TM, Proc.get());
  BoundedSearchOptions Opts;
  for (const Term *Param : Proc.get().Params)
    if (!Param->isArray())
      Opts.Inputs.push_back(Param);
  return searchForError(P, Opts).ErrorReached;
}

GeneratedProgram fuzz::generateProgram(uint64_t Seed) {
  Rng R(Seed);
  GeneratedProgram GP;
  GP.Seed = Seed;
  // The unsafe share targets ~45%; unconfirmable mutations fall back to
  // the safe variant, so the realized share is slightly lower.
  bool WantUnsafe = R.chance(45);
  int Fam = R.range(0, 99);
  if (Fam < 15)
    genStraight(R, WantUnsafe, GP);
  else if (Fam < 45)
    genCounter(R, WantUnsafe, GP);
  else if (Fam < 70)
    genForward(R, WantUnsafe, GP);
  else if (Fam < 90)
    genIneq(R, WantUnsafe, GP);
  else
    genTwoLoop(R, WantUnsafe, GP);
  return GP;
}
