//===- fuzz/Minimize.cpp - ddmin-style PIL program shrinking ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Greedy delta debugging over the PIL AST: each round enumerates shrinking
// edits (contiguous statement chunks first, then single statements, then
// structural unwraps, conjunct drops, and constant narrowing), re-prints
// the candidate with the PIL pretty-printer, and accepts the first edit
// the failure predicate still confirms. Every accepted edit strictly
// decreases the (statements, term nodes, constant mass) metric, so the
// loop reaches a fixpoint; 1-minimality is not guaranteed (nor needed —
// the goal is a human-readable reproducer).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "lang/Parser.h"
#include "lang/PilPrinter.h"

#include <array>
#include <functional>
#include <tuple>

using namespace pathinv;
using namespace pathinv::fuzz;

namespace {

std::unique_ptr<Stmt> cloneStmt(const Stmt &S) {
  auto C = std::make_unique<Stmt>();
  C->K = S.K;
  C->Var = S.Var;
  C->Index = S.Index;
  C->Rhs = S.Rhs;
  C->Cond = S.Cond;
  C->Loc = S.Loc;
  for (const auto &Child : S.Children)
    C->Children.push_back(cloneStmt(*Child));
  return C;
}

ProcAst cloneProc(const ProcAst &P) {
  ProcAst C;
  C.Name = P.Name;
  C.Params = P.Params;
  C.Locals = P.Locals;
  C.Body = cloneStmt(*P.Body);
  return C;
}

/// Pre-order visit of every block statement (the body and all nested
/// if/while bodies share this shape).
void forEachBlock(Stmt &S, const std::function<void(Stmt &)> &Fn) {
  if (S.K == Stmt::Kind::Block)
    Fn(S);
  for (auto &Child : S.Children)
    forEachBlock(*Child, Fn);
}

/// The \p N-th block in pre-order (asserts existence via null check at
/// the caller).
Stmt *nthBlock(Stmt &S, int N) {
  Stmt *Found = nullptr;
  int Seen = 0;
  forEachBlock(S, [&](Stmt &B) {
    if (Seen++ == N && !Found)
      Found = &B;
  });
  return Found;
}

// --- Size metric --------------------------------------------------------

uint64_t termNodes(const Term *T) {
  if (!T)
    return 0;
  uint64_t N = 1;
  for (const Term *Op : T->operands())
    N += termNodes(Op);
  return N;
}

/// Clamped absolute magnitude of every integer constant, summed; constant
/// narrowing must strictly decrease this.
uint64_t constMass(const Term *T) {
  if (!T)
    return 0;
  if (T->isIntConst()) {
    Rational Abs = T->value().abs();
    BigInt Floor = Abs.floor();
    uint64_t Mass = 1000000;
    if (Floor.fitsInt64() && Floor.toInt64() < 1000000)
      Mass = static_cast<uint64_t>(Floor.toInt64());
    return Mass;
  }
  uint64_t N = 0;
  for (const Term *Op : T->operands())
    N += constMass(Op);
  return N;
}

using Size = std::tuple<uint64_t, uint64_t, uint64_t>;

void measureStmt(const Stmt &S, Size &Sz) {
  if (S.K != Stmt::Kind::Block)
    ++std::get<0>(Sz);
  for (const Term *T : {S.Cond, S.Rhs, S.Index}) {
    std::get<1>(Sz) += termNodes(T);
    std::get<2>(Sz) += constMass(T);
  }
  for (const auto &Child : S.Children)
    measureStmt(*Child, Sz);
}

Size measure(const ProcAst &P) {
  Size Sz{0, 0, 0};
  measureStmt(*P.Body, Sz);
  return Sz;
}

// --- Term rewriting (constant narrowing, conjunct dropping) -------------

const Term *replaceConst(TermManager &TM, const Term *T,
                         const Rational &From, const Rational &To) {
  auto Rec = [&](const Term *Op) { return replaceConst(TM, Op, From, To); };
  switch (T->kind()) {
  case TermKind::IntConst:
    return T->value() == From ? TM.mkIntConst(To) : T;
  case TermKind::Add:
  case TermKind::And:
  case TermKind::Or: {
    std::vector<const Term *> Ops;
    for (const Term *Op : T->operands())
      Ops.push_back(Rec(Op));
    return T->kind() == TermKind::Add   ? TM.mkAdd(std::move(Ops))
           : T->kind() == TermKind::And ? TM.mkAnd(std::move(Ops))
                                        : TM.mkOr(std::move(Ops));
  }
  case TermKind::Mul:
    return TM.mkMul(Rec(T->operand(0)), Rec(T->operand(1)));
  case TermKind::Select:
    return TM.mkSelect(Rec(T->operand(0)), Rec(T->operand(1)));
  case TermKind::Eq:
    return TM.mkEq(Rec(T->operand(0)), Rec(T->operand(1)));
  case TermKind::Le:
    return TM.mkLe(Rec(T->operand(0)), Rec(T->operand(1)));
  case TermKind::Lt:
    return TM.mkLt(Rec(T->operand(0)), Rec(T->operand(1)));
  case TermKind::Not:
    return TM.mkNot(Rec(T->operand(0)));
  default:
    // Variables, true/false, and anything outside the PIL fragment pass
    // through untouched.
    return T;
  }
}

void collectConsts(const Term *T, std::vector<Rational> &Out) {
  if (!T)
    return;
  if (T->isIntConst()) {
    if (!T->value().isZero()) {
      for (const Rational &Seen : Out)
        if (Seen == T->value())
          return;
      Out.push_back(T->value());
    }
    return;
  }
  for (const Term *Op : T->operands())
    collectConsts(Op, Out);
}

void rewriteStmtTerms(
    Stmt &S, const std::function<const Term *(const Term *)> &Fn) {
  if (S.Cond)
    S.Cond = Fn(S.Cond);
  if (S.Rhs)
    S.Rhs = Fn(S.Rhs);
  if (S.Index)
    S.Index = Fn(S.Index);
  for (auto &Child : S.Children)
    rewriteStmtTerms(*Child, Fn);
}

// --- Variant enumeration ------------------------------------------------

/// Emits every one-edit shrink of \p Cur, coarse cuts first.
void collectVariants(TermManager &TM, const ProcAst &Cur,
                     std::vector<ProcAst> &Out) {
  // Block shapes, recorded once against the original.
  std::vector<size_t> BlockSizes;
  forEachBlock(*Cur.Body, [&](Stmt &B) { BlockSizes.push_back(B.Children.size()); });

  auto removeRange = [&](int Block, size_t Pos, size_t Len) {
    ProcAst V = cloneProc(Cur);
    Stmt *B = nthBlock(*V.Body, Block);
    B->Children.erase(B->Children.begin() + static_cast<long>(Pos),
                      B->Children.begin() + static_cast<long>(Pos + Len));
    Out.push_back(std::move(V));
  };

  // 1. Contiguous chunks (halves, then quarters) — the ddmin-style
  // coarse-to-fine schedule.
  for (int B = 0; B < static_cast<int>(BlockSizes.size()); ++B) {
    size_t K = BlockSizes[static_cast<size_t>(B)];
    for (size_t Len = K / 2; Len >= 2; Len /= 2)
      for (size_t Pos = 0; Pos + Len <= K; Pos += Len)
        removeRange(B, Pos, Len);
  }
  // 2. Single statements.
  for (int B = 0; B < static_cast<int>(BlockSizes.size()); ++B)
    for (size_t Pos = 0; Pos < BlockSizes[static_cast<size_t>(B)]; ++Pos)
      removeRange(B, Pos, 1);

  // 3. Structural unwraps and condition shrinking, per child slot.
  for (int B = 0; B < static_cast<int>(BlockSizes.size()); ++B) {
    for (size_t Pos = 0; Pos < BlockSizes[static_cast<size_t>(B)]; ++Pos) {
      // Inspect the original child to decide which edits apply.
      ProcAst Probe = cloneProc(Cur);
      Stmt *Child = nthBlock(*Probe.Body, B)->Children[Pos].get();
      auto Unwrap = [&](size_t WhichChild) {
        ProcAst V = cloneProc(Cur);
        Stmt *Blk = nthBlock(*V.Body, B);
        std::unique_ptr<Stmt> Body =
            std::move(Blk->Children[Pos]->Children[WhichChild]);
        Blk->Children[Pos] = std::move(Body); // A Block child is legal here.
        Out.push_back(std::move(V));
      };
      if (Child->K == Stmt::Kind::If) {
        Unwrap(0);
        if (Child->Children.size() > 1) {
          Unwrap(1);
          ProcAst V = cloneProc(Cur); // Drop the else branch only.
          nthBlock(*V.Body, B)->Children[Pos]->Children.pop_back();
          Out.push_back(std::move(V));
        }
      }
      if (Child->K == Stmt::Kind::While)
        Unwrap(0);
      if ((Child->K == Stmt::Kind::Assume ||
           Child->K == Stmt::Kind::Assert) &&
          Child->Cond && Child->Cond->kind() == TermKind::And) {
        size_t N = 0;
        for (const Term *Op : Child->Cond->operands()) {
          (void)Op;
          ++N;
        }
        for (size_t Drop = 0; Drop < N; ++Drop) {
          ProcAst V = cloneProc(Cur);
          Stmt *Tgt = nthBlock(*V.Body, B)->Children[Pos].get();
          std::vector<const Term *> Keep;
          size_t I = 0;
          for (const Term *Op : Tgt->Cond->operands())
            if (I++ != Drop)
              Keep.push_back(Op);
          Tgt->Cond = TM.mkAnd(std::move(Keep));
          Out.push_back(std::move(V));
        }
      }
    }
  }

  // 4. Constant narrowing: each distinct non-zero constant toward zero.
  std::vector<Rational> Consts;
  std::function<void(const Stmt &)> Walk = [&](const Stmt &S) {
    collectConsts(S.Cond, Consts);
    collectConsts(S.Rhs, Consts);
    collectConsts(S.Index, Consts);
    for (const auto &Child : S.Children)
      Walk(*Child);
  };
  Walk(*Cur.Body);
  for (const Rational &C : Consts) {
    std::array<Rational, 2> Targets = {
        Rational(0), C + Rational(C.isNegative() ? 1 : -1)};
    for (const Rational &To : Targets) {
      if (To == C)
        continue;
      ProcAst V = cloneProc(Cur);
      rewriteStmtTerms(*V.Body, [&](const Term *T) {
        return replaceConst(TM, T, C, To);
      });
      Out.push_back(std::move(V));
    }
  }
}

} // namespace

std::string fuzz::minimizeProgram(const std::string &Source,
                                  const FailurePredicate &Fails,
                                  int MaxRounds) {
  TermManager TM;
  Expected<ProcAst> Parsed = parseProc(TM, Source);
  if (!Parsed || !Fails(Source))
    return Source;
  ProcAst Cur = Parsed.take();
  Size CurSize = measure(Cur);
  for (int Round = 0; Round < MaxRounds; ++Round) {
    bool Improved = false;
    std::vector<ProcAst> Variants;
    collectVariants(TM, Cur, Variants);
    for (ProcAst &V : Variants) {
      Size Sz = measure(V);
      if (!(Sz < CurSize))
        continue;
      std::string Text = printPil(V);
      if (!Fails(Text))
        continue;
      Cur = std::move(V);
      CurSize = Sz;
      Improved = true;
      break;
    }
    if (!Improved)
      break; // Fixpoint: no single edit keeps the failure alive.
  }
  return printPil(Cur);
}
