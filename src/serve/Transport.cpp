//===- serve/Transport.cpp - pathinvd socket transport --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

#include "serve/Server.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pathinv;
using namespace pathinv::serve;

namespace {

bool isBlankLine(const std::string &Line) {
  for (char C : Line)
    if (C != ' ' && C != '\t' && C != '\r')
      return false;
  return true;
}

} // namespace

bool SocketListener::start(const std::string &SocketPath,
                           std::string &Error) {
  if (ListenFd >= 0) {
    Error = "listener already started";
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path too long";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(SocketPath.c_str()); // A stale socket from a dead daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = std::string("bind ") + SocketPath + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 64) < 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    ::unlink(SocketPath.c_str());
    return false;
  }
  Path = SocketPath;
  ListenFd = Fd;
  Stopping.store(false);
  AcceptThread = std::thread(&SocketListener::acceptLoop, this);
  return true;
}

void SocketListener::stop() {
  if (ListenFd < 0)
    return;
  Stopping.store(true);
  // Unblock and retire the accept loop first, so no connection can be
  // added behind the shutdown sweep below (it would block in recv with
  // nobody left to wake it).
  ::shutdown(ListenFd, SHUT_RDWR);
  if (AcceptThread.joinable())
    AcceptThread.join();
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (auto &C : Conns) {
      std::lock_guard<std::mutex> WLock(C->WriteMu);
      if (!C->Closed && C->Fd >= 0)
        ::shutdown(C->Fd, SHUT_RDWR);
    }
  }
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (auto &C : Conns) {
      if (C->Reader.joinable())
        C->Reader.join(); // The reader closes the fd on its way out.
      std::lock_guard<std::mutex> WLock(C->WriteMu);
      if (!C->Closed && C->Fd >= 0)
        ::close(C->Fd);
      C->Closed = true;
      C->Fd = -1;
    }
    Conns.clear();
  }
  ::close(ListenFd);
  ListenFd = -1;
  if (!Path.empty())
    ::unlink(Path.c_str());
}

void SocketListener::acceptLoop() {
  while (!Stopping.load()) {
    pollfd Pfd{ListenFd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 200);
    if (Stopping.load())
      return;
    if (Ready <= 0)
      continue;
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    auto C = std::make_shared<Conn>();
    C->Fd = ClientFd;
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      Conns.push_back(C);
    }
    C->Reader = std::thread(&SocketListener::connectionLoop, this, C);
  }
}

void SocketListener::connectionLoop(std::shared_ptr<Conn> C) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(C->Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Buffer.append(Chunk, static_cast<size_t>(N));
    size_t Start = 0;
    for (size_t Nl = Buffer.find('\n', Start); Nl != std::string::npos;
         Nl = Buffer.find('\n', Start)) {
      std::string Line = Buffer.substr(Start, Nl - Start);
      Start = Nl + 1;
      if (isBlankLine(Line))
        continue;
      // The callback may fire on this thread (rejections) or on a worker
      // later; either way it serializes on WriteMu and respects Closed —
      // the fd is only read under that mutex, so a concurrent disconnect
      // cannot hand the writer a reused descriptor.
      Srv.submitLine(Line, [C](std::string Out) {
        std::lock_guard<std::mutex> WLock(C->WriteMu);
        if (C->Closed)
          return;
        size_t Off = 0;
        while (Off < Out.size()) {
          ssize_t W = ::send(C->Fd, Out.data() + Off, Out.size() - Off,
                             MSG_NOSIGNAL);
          if (W <= 0) {
            if (W < 0 && errno == EINTR)
              continue;
            C->Closed = true; // Peer gone; drop later responses too.
            return;
          }
          Off += static_cast<size_t>(W);
        }
      });
    }
    Buffer.erase(0, Start);
  }
  // Peer disconnected (or stop() shut us down): mark closed and release
  // the fd. Writers take WriteMu and check Closed before touching the fd,
  // so a completion racing this close drops its line instead of writing
  // to a reused descriptor.
  std::lock_guard<std::mutex> Lock(C->WriteMu);
  C->Closed = true;
  ::close(C->Fd);
  C->Fd = -1;
}
