//===- serve/Cache.h - Fingerprint-keyed verdict cache ---------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pathinvd verdict + certificate cache, keyed by the program
/// fingerprint (core/Fingerprint.h). Entries hold only strings and PODs —
/// never terms — because each worker owns a private TermManager and terms
/// must not cross threads; a hit is reconstructed in (and revalidated
/// against) the serving worker's own arena.
///
/// Trust model: the cache is an accelerator, not an authority. A Safe
/// entry carries the pathinv-cert-v1 certificate text and is served only
/// after parseCertificate + checkInvariantMap succeed against the job's
/// freshly lowered program; an Unsafe entry carries a concrete witness
/// recipe (transition path, initial state, havoc values) and is served
/// only after the interpreter replays it to the error location. A
/// tampered, truncated, stale, or fingerprint-colliding entry therefore
/// fails revalidation and degrades to a recomputation — a poisoned cache
/// can cost time, never correctness.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SERVE_CACHE_H
#define PATHINV_SERVE_CACHE_H

#include "core/Fingerprint.h"

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pathinv {

class Program;
class SmtSolver;
struct EngineResult;

namespace serve {

/// One cached answer. All fields are plain data (see file comment).
struct CacheEntry {
  char Verdict = 0; ///< 'S' or 'U'.
  /// Safe: the pathinv-cert-v1 certificate text (always non-empty — Safe
  /// results without an exportable map are not cached).
  std::string Certificate;
  /// Unsafe: the witness recipe. Transition indices entry -> error...
  std::vector<int> WitnessPath;
  /// ...initial scalar values as (variable name, rational text)...
  std::vector<std::pair<std::string, std::string>> InitialScalars;
  /// ...initial array contents...
  struct Cell {
    std::string Array;
    int64_t Index = 0;
    std::string Value;
  };
  std::vector<Cell> InitialCells;
  std::vector<std::pair<std::string, std::string>> ArrayDefaults;
  /// ...and per-step scalar values (variable name, SSA index K, value):
  /// the replay draws the havoc at step K-1 of a variable from its x@K
  /// entry. Values for non-havocked steps are recorded too (harmless —
  /// the interpreter only consults havocked variables).
  struct Havoc {
    std::string Var;
    unsigned Index = 0;
    std::string Value;
  };
  std::vector<Havoc> Havocs;
};

/// Thread-safe bounded map with FIFO eviction. Lookup/insert are cheap
/// (string copies under a mutex); revalidation runs outside the lock on
/// the calling worker.
class VerdictCache {
public:
  explicit VerdictCache(size_t Capacity) : Capacity(Capacity) {}

  /// \returns true and copies the entry when \p Key is cached.
  bool lookup(const Fingerprint &Key, CacheEntry &Out);

  /// Inserts (or overwrites) \p Key. Honors the ServeCacheInsert fault
  /// site: an injected fault skips the insertion (the caller's answer is
  /// already decided — only the cache misses out). \returns false when
  /// skipped.
  bool insert(const Fingerprint &Key, CacheEntry Entry);

  /// Drops \p Key if present (used when revalidation rejects an entry).
  void erase(const Fingerprint &Key);

  size_t size();

private:
  size_t Capacity;
  std::mutex Mu;
  std::map<Fingerprint, CacheEntry> Entries;
  std::deque<Fingerprint> InsertionOrder; // FIFO eviction.
};

/// Builds a cache entry from a finished verify run. \returns false when
/// the result is not cacheable: Unknown verdicts (never cached — a
/// bigger budget may decide them), Safe without an exportable invariant
/// map, Unsafe without a feasible recorded replay.
bool buildCacheEntry(const Program &P, const EngineResult &R,
                     CacheEntry &Out);

/// Revalidates \p Entry against \p P in the calling worker's term
/// manager. For Safe entries: parseCertificate + checkInvariantMap. For
/// Unsafe entries: concrete interpreter replay must reach the error
/// location. On success fills \p R with a served result (verdict,
/// invariant map / witness, note). \returns false (with \p WhyNot) when
/// the entry is rejected — the caller recomputes.
bool revalidateEntry(const Program &P, SmtSolver &Solver,
                     const CacheEntry &Entry, EngineResult &R,
                     std::string &WhyNot);

} // namespace serve
} // namespace pathinv

#endif // PATHINV_SERVE_CACHE_H
