//===- serve/Server.h - Long-lived verification service --------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pathinvd service core: a bounded admission queue in front of a
/// pool of worker threads, each owning a fully private verification stack
/// (TermManager, SmtSolver, solver contexts), so that no job shares
/// mutable solver state with any other — thread-clean by construction,
/// with strings as the only data crossing worker boundaries.
///
/// Fault containment ("exhaustion is never an outage"):
///  * every job runs under its own ResourceController with wall/memory/
///    step budgets; a job that exhausts them is retried through a
///    bounded, deterministic escalation ladder (larger budgets, then a
///    different engine lane, with exponential backoff) before being
///    answered as a reasoned Unknown;
///  * admission control sheds load: when the queue is full, new jobs get
///    an immediate machine-readable "overloaded" rejection instead of
///    unbounded latency;
///  * hostile input (unparseable programs, malformed requests) costs one
///    "error" response, never the process;
///  * a verdict cache keyed by the program fingerprint serves repeated
///    jobs — every hit revalidated against the serving worker's own
///    lowering (see serve/Cache.h) so a poisoned entry cannot produce a
///    wrong answer;
///  * graceful drain: queued jobs are rejected with "draining",
///    in-flight jobs finish (or are cooperatively cancelled through
///    their controllers' thread-safe cancel flag), and every submitted
///    job is answered exactly once.
///
/// The escalation ladder is a deterministic function of the request:
/// attempt k multiplies every finite step budget by EscalationFactor^k
/// and the wall deadline by TimeoutEscalation^k; the engine lane stays
/// as requested for attempts 0..1, switches to the opposite single
/// engine for attempt 2, and races the portfolio from attempt 3 on
/// (portfolio requests stay portfolio throughout). Retries trigger only
/// on resource-reasoned Unknowns — never on verdicts, parse errors, or
/// cancellation.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SERVE_SERVER_H
#define PATHINV_SERVE_SERVER_H

#include "serve/Cache.h"
#include "serve/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pathinv {

class Verifier;

namespace serve {

/// Server configuration.
struct ServeOptions {
  /// Worker threads; 0 means hardware_concurrency (min 1 either way).
  unsigned Workers = 0;
  /// Bounded admission queue; a submit beyond this depth is shed with an
  /// immediate "overloaded" rejection.
  size_t QueueCapacity = 64;
  /// Engine for requests that do not name one.
  EngineKind DefaultEngine = EngineKind::Portfolio;
  /// First-attempt limits for request fields left at zero. The shipped
  /// defaults are finite on purpose: an unlimited daemon job is a slow
  /// outage. Callers may still pass an explicitly unlimited field.
  ResourceLimits DefaultLimits;
  /// Ladder length (1 = no retries). Requests may lower/raise per job up
  /// to 16.
  int MaxAttempts = 3;
  /// Exponential backoff between attempts: base * 2^(attempt-1), capped.
  double BackoffBaseSeconds = 0.05;
  double BackoffCapSeconds = 2.0;
  /// Budget/deadline growth per ladder rung.
  uint64_t EscalationFactor = 4;
  double TimeoutEscalation = 2.0;
  /// Verdict cache (entries; 0 disables).
  size_t CacheCapacity = 4096;
  /// A worker whose term arena outgrows this recycles its whole
  /// verification stack after the current job (fresh TermManager +
  /// solvers), bounding the memory of a long-lived worker. 0 disables.
  uint64_t WorkerRecycleArenaBytes = 512ull << 20;

  ServeOptions() {
    // Finite-by-default per-job governance (generous for the paper-scale
    // programs; jobs can override any field).
    DefaultLimits.TimeoutSeconds = 60;
    DefaultLimits.SatConflicts = 400000;
    DefaultLimits.Pivots = 1000000;
    DefaultLimits.BnbNodes = 200000;
    DefaultLimits.SynthCombos = 100000;
    DefaultLimits.ArgExpansions = 40000;
    DefaultLimits.Refinements = 80;
    DefaultLimits.PdrObligations = 8000;
  }
};

/// Aggregate service counters (all lifetime totals unless noted).
struct ServerStats {
  uint64_t Submitted = 0;      ///< verify jobs admitted to the queue.
  uint64_t Completed = 0;      ///< verify jobs answered from a worker.
  uint64_t Safe = 0;
  uint64_t Unsafe = 0;
  uint64_t Unknown = 0;
  uint64_t ParseErrors = 0;    ///< programs that failed to load.
  uint64_t Shed = 0;           ///< "overloaded" rejections.
  uint64_t DrainRejected = 0;  ///< queued jobs flushed by drain.
  uint64_t AdmissionFaults = 0; ///< injected admission failures.
  uint64_t Retries = 0;        ///< ladder attempts beyond the first.
  uint64_t CacheHits = 0;      ///< served from a revalidated entry.
  uint64_t CacheMisses = 0;
  uint64_t CacheRevalidationRejects = 0; ///< entries rejected + recomputed.
  uint64_t CacheBypass = 0;    ///< jobs that opted out of the cache.
  uint64_t CacheInserts = 0;
  uint64_t CacheInsertFailures = 0; ///< injected insert failures.
  uint64_t WorkerRecycles = 0; ///< worker stacks rebuilt (arena bound).
  uint64_t WorkerSpawnFaults = 0; ///< injected spawn failures (degraded).
  uint64_t CancelledInFlight = 0; ///< jobs cancelled by a hard drain.
  size_t QueueDepth = 0;       ///< current (snapshot).
  size_t PeakQueueDepth = 0;
  size_t InFlight = 0;         ///< current (snapshot).
  size_t PeakInFlight = 0;
  uint64_t PeakMemoryBytes = 0; ///< max per-job tracked heap footprint.
  /// Unknown answers by machine-readable reason ("deadline", ...).
  std::map<std::string, uint64_t> UnknownByReason;
};

/// The service core. Transport-agnostic: stdio and socket front ends (and
/// the tests) all talk to submit()/submitLine().
class Server {
public:
  explicit Server(ServeOptions Opts = {});
  /// Drains gracefully (in-flight jobs finish) and joins the workers.
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  using ResponseFn = std::function<void(const JobResponse &)>;

  /// Routes one decoded request. The callback fires exactly once — maybe
  /// synchronously (rejections, stats, ping, shutdown), maybe later from
  /// a worker thread (admitted verify jobs). Callbacks must be
  /// thread-safe against each other.
  void submit(JobRequest Req, ResponseFn Done);

  /// Parses and routes one protocol line; malformed lines are answered
  /// synchronously with status "error".
  void submitLine(const std::string &Line,
                  std::function<void(std::string)> Done);

  /// submit() + block for the answer. For clients and tests.
  JobResponse runSync(JobRequest Req);

  /// Stops admission, rejects every queued job with "draining", and —
  /// when \p CancelInFlight — trips every running job's controller
  /// through its thread-safe cancel flag. Idempotent; a later call may
  /// escalate a graceful drain to a cancelling one. Does not join (the
  /// destructor does).
  void drain(bool CancelInFlight);

  bool draining() const { return Draining.load(); }
  /// True once a "shutdown" request was accepted; the transport layer
  /// polls this to exit its accept loops.
  bool shutdownRequested() const { return ShutdownReq.load(); }

  ServerStats stats();
  /// The stats counters as the protocol's "stats" payload.
  Json statsJson();

  unsigned workerCount() const { return NumWorkers; }
  VerdictCache &cache() { return Cache; }

private:
  struct PendingJob {
    JobRequest Req;
    ResponseFn Done;
    std::chrono::steady_clock::time_point Submitted;
    /// The supervisor's one thread-safe channel into the job (wired as
    /// ResourceLimits::CancelFlag on every attempt's controller).
    std::shared_ptr<std::atomic<bool>> Cancel;
  };

  /// One worker's private verification stack slot.
  struct Worker {
    std::thread Thread;
    /// The cancel flag of the job this worker currently runs (null when
    /// idle). Guarded by QueueMu.
    std::shared_ptr<std::atomic<bool>> ActiveCancel;
  };

  void workerLoop(unsigned Index);
  void runJob(PendingJob &Job, std::unique_ptr<Verifier> &Stack,
              unsigned WorkerIndex);
  JobResponse executeVerify(const JobRequest &Req,
                            std::unique_ptr<Verifier> &Stack,
                            const std::atomic<bool> &Cancel);
  ResourceLimits effectiveBaseLimits(const JobRequest &Req) const;
  ResourceLimits escalatedLimits(const ResourceLimits &Base, int Attempt,
                                 const std::atomic<bool> &Cancel) const;
  EngineKind ladderEngine(EngineKind Requested, int Attempt) const;
  void noteVerdict(const JobResponse &R, uint64_t PeakMemory);

  ServeOptions Opts;
  unsigned NumWorkers = 0;
  VerdictCache Cache;

  std::mutex QueueMu;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<PendingJob>> Queue;
  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<bool> Draining{false};
  std::atomic<bool> CancelRequested{false};
  std::atomic<bool> ShutdownReq{false};

  std::mutex StatsMu;
  ServerStats Counters;
};

} // namespace serve
} // namespace pathinv

#endif // PATHINV_SERVE_SERVER_H
