//===- serve/Protocol.cpp - pathinvd wire protocol ------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

using namespace pathinv;
using namespace pathinv::serve;

const char *pathinv::serve::verdictName(char Verdict) {
  switch (Verdict) {
  case 'S':
    return "safe";
  case 'U':
    return "unsafe";
  default:
    return "unknown";
  }
}

namespace {

/// Applies a "budgets" object onto \p Limits. \returns false on an
/// unknown key or a non-numeric value — the same strictness as the CLI's
/// --budgets, so a typo cannot silently run unlimited.
bool applyBudgets(const Json &Budgets, ResourceLimits &Limits,
                  std::string &Error) {
  for (const auto &[Key, Value] : Budgets.members()) {
    if (!Value.isNumber() || Value.asInt() < 0) {
      Error = "budget '" + Key + "' must be a non-negative integer";
      return false;
    }
    uint64_t Count = static_cast<uint64_t>(Value.asInt());
    if (Key == "sat_conflicts")
      Limits.SatConflicts = Count;
    else if (Key == "pivots")
      Limits.Pivots = Count;
    else if (Key == "bnb_nodes")
      Limits.BnbNodes = Count;
    else if (Key == "synth_combos")
      Limits.SynthCombos = Count;
    else if (Key == "arg_expansions")
      Limits.ArgExpansions = Count;
    else if (Key == "refinements")
      Limits.Refinements = Count;
    else if (Key == "pdr_obligations")
      Limits.PdrObligations = Count;
    else {
      Error = "unknown budget key '" + Key + "'";
      return false;
    }
  }
  return true;
}

} // namespace

bool pathinv::serve::parseRequest(const std::string &Line, JobRequest &Out,
                                  std::string &Error) {
  Json J;
  if (!parseJson(Line, J, Error)) {
    Error = "parse: " + Error;
    return false;
  }
  if (!J.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  Out.Id = J.stringOr("id");
  Out.Op = J.stringOr("op");
  if (Out.Op.empty()) {
    Error = "missing \"op\"";
    return false;
  }
  if (Out.Op != "verify" && Out.Op != "stats" && Out.Op != "ping" &&
      Out.Op != "shutdown") {
    Error = "unknown op '" + Out.Op + "'";
    return false;
  }
  if (Out.Op != "verify")
    return true;

  const Json *Program = J.find("program");
  if (!Program || !Program->isString()) {
    Error = "verify needs a string \"program\"";
    return false;
  }
  Out.Program = Program->asString();
  if (const Json *Engine = J.find("engine")) {
    if (!Engine->isString() ||
        !parseEngineKind(Engine->asString(), Out.Engine)) {
      Error = "unknown engine";
      return false;
    }
    Out.EngineSet = true;
  }
  double TimeoutS = J.doubleOr("timeout_s", 0);
  if (TimeoutS < 0) {
    Error = "timeout_s must be >= 0";
    return false;
  }
  Out.Limits.TimeoutSeconds = TimeoutS;
  int64_t MemoryMb = J.intOr("memory_mb", 0);
  if (MemoryMb < 0) {
    Error = "memory_mb must be >= 0";
    return false;
  }
  Out.Limits.MemoryBytes = static_cast<uint64_t>(MemoryMb) * 1024 * 1024;
  if (const Json *Budgets = J.find("budgets")) {
    if (!Budgets->isObject()) {
      Error = "\"budgets\" must be an object";
      return false;
    }
    if (!applyBudgets(*Budgets, Out.Limits, Error))
      return false;
  }
  Out.UseCache = J.boolOr("cache", true);
  Out.WantCert = J.boolOr("cert", false);
  int64_t MaxAttempts = J.intOr("max_attempts", 0);
  if (MaxAttempts < 0 || MaxAttempts > 16) {
    Error = "max_attempts must be in [0, 16]";
    return false;
  }
  Out.MaxAttempts = static_cast<int>(MaxAttempts);
  int64_t FaultArm = J.intOr("fault_arm", 0);
  Out.FaultArm = FaultArm > 0 ? static_cast<uint64_t>(FaultArm) : 0;
  return true;
}

std::string JobResponse::toLine() const {
  Json J = Json::object();
  J.set("id", Json::string(Id));
  J.set("status", Json::string(Status));
  if (!Error.empty())
    J.set("error", Json::string(Error));
  if (Verdict != 0) {
    J.set("verdict", Json::string(verdictName(Verdict)));
    if (!UnknownReason.empty())
      J.set("unknown_reason", Json::string(UnknownReason));
    if (!EngineUsed.empty())
      J.set("engine", Json::string(EngineUsed));
    J.set("attempts", Json::integer(Attempts));
    if (!CacheDisposition.empty())
      J.set("cache", Json::string(CacheDisposition));
    if (!FingerprintHex.empty())
      J.set("fingerprint", Json::string(FingerprintHex));
    J.set("wall_ms", Json::number(WallMs));
    if (!Note.empty())
      J.set("note", Json::string(Note));
    if (!Certificate.empty())
      J.set("certificate", Json::string(Certificate));
  }
  if (HasExtra)
    J.set("stats", Extra);
  return J.write() + "\n";
}

JobResponse pathinv::serve::makeRejection(const std::string &Id,
                                          const std::string &Status,
                                          const std::string &Why) {
  JobResponse R;
  R.Id = Id;
  R.Status = Status;
  R.Error = Why;
  return R;
}
