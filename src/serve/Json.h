//===- serve/Json.h - Minimal JSON for the service protocol ----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value type with a strict parser and a
/// deterministic writer, sized for the pathinvd newline-delimited
/// protocol. No external dependencies.
///
/// Deliberate scope limits (all fine for the protocol):
///  * numbers are stored as int64 when the text is integral and fits,
///    double otherwise;
///  * object keys keep insertion order (the writer is deterministic, so
///    protocol responses are byte-stable for tests);
///  * \uXXXX escapes decode to UTF-8; surrogate pairs are supported;
///  * the parser rejects trailing garbage — a protocol line is exactly
///    one JSON value.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SERVE_JSON_H
#define PATHINV_SERVE_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pathinv {
namespace serve {

/// A JSON value (null / bool / integer / double / string / array / object).
class Json {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  static Json boolean(bool B) {
    Json J;
    J.K = Kind::Bool;
    J.B = B;
    return J;
  }
  static Json integer(int64_t I) {
    Json J;
    J.K = Kind::Int;
    J.I = I;
    return J;
  }
  static Json number(double D) {
    Json J;
    J.K = Kind::Double;
    J.D = D;
    return J;
  }
  static Json string(std::string S) {
    Json J;
    J.K = Kind::String;
    J.S = std::move(S);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? (int64_t)D : I; }
  double asDouble() const { return K == Kind::Int ? (double)I : D; }
  const std::string &asString() const { return S; }
  const std::vector<Json> &elements() const { return Elems; }
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }

  /// Appends \p V to an array value.
  void push(Json V) { Elems.push_back(std::move(V)); }
  /// Sets member \p Key of an object value (appends; replaces when the
  /// key already exists, keeping its original position).
  void set(const std::string &Key, Json V);

  /// \returns the member named \p Key, or nullptr. Object values only.
  const Json *find(const std::string &Key) const;

  // Typed member lookups with defaults — the protocol-decoding idiom.
  std::string stringOr(const std::string &Key, std::string Def = "") const;
  int64_t intOr(const std::string &Key, int64_t Def = 0) const;
  double doubleOr(const std::string &Key, double Def = 0) const;
  bool boolOr(const std::string &Key, bool Def = false) const;

  /// Serializes compactly (no whitespace). Deterministic: members write
  /// in insertion order, strings escape minimally, doubles render with
  /// enough digits to round-trip.
  std::string write() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Elems;
  std::vector<std::pair<std::string, Json>> Members;
};

/// Parses exactly one JSON value from \p Text (leading/trailing whitespace
/// allowed, anything else after the value is an error). \returns false
/// with \p Error set on malformed input.
bool parseJson(const std::string &Text, Json &Out, std::string &Error);

} // namespace serve
} // namespace pathinv

#endif // PATHINV_SERVE_JSON_H
