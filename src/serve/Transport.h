//===- serve/Transport.h - pathinvd socket transport -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unix-domain-socket front end of pathinvd. One listener thread
/// accepts connections; each connection gets a reader thread that feeds
/// request lines to the Server and a mutex-serialized writer that ships
/// responses back as they complete (out of submission order — that is
/// what the protocol's "id" is for).
///
/// Fault containment at the transport layer mirrors the service's: a
/// client that disconnects mid-job costs nothing (its late responses are
/// dropped at the closed-connection check), a malformed line costs one
/// "error" response, and stop() force-closes every connection so no
/// reader thread can outlive the daemon.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SERVE_TRANSPORT_H
#define PATHINV_SERVE_TRANSPORT_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pathinv {
namespace serve {

class Server;

/// Accepts pathinvd protocol connections on a unix-domain socket.
class SocketListener {
public:
  explicit SocketListener(Server &Srv) : Srv(Srv) {}
  ~SocketListener() { stop(); }
  SocketListener(const SocketListener &) = delete;
  SocketListener &operator=(const SocketListener &) = delete;

  /// Binds \p Path (unlinking a stale socket first), listens, and starts
  /// the accept thread. \returns false with \p Error on failure.
  bool start(const std::string &Path, std::string &Error);

  /// Closes the listener and every live connection, joins all transport
  /// threads, and unlinks the socket path. Idempotent.
  void stop();

  const std::string &path() const { return Path; }

private:
  /// One accepted connection. Closed is guarded by WriteMu: a response
  /// callback that fires after the peer disconnected sees Closed and
  /// drops its line instead of writing to a dead (or reused) fd.
  struct Conn {
    int Fd = -1;
    std::mutex WriteMu;
    bool Closed = false;
    std::thread Reader;
  };

  void acceptLoop();
  void connectionLoop(std::shared_ptr<Conn> C);

  Server &Srv;
  std::string Path;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread AcceptThread;
  std::mutex ConnsMu;
  std::vector<std::shared_ptr<Conn>> Conns;
};

} // namespace serve
} // namespace pathinv

#endif // PATHINV_SERVE_TRANSPORT_H
