//===- serve/Server.cpp - Long-lived verification service -----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "core/Verifier.h"
#include "support/FaultInject.h"
#include "synth/InvariantMap.h"

#include <chrono>
#include <cmath>
#include <future>

using namespace pathinv;
using namespace pathinv::serve;

Server::Server(ServeOptions O) : Opts(O), Cache(O.CacheCapacity) {
  unsigned Want = Opts.Workers
                      ? Opts.Workers
                      : std::max(1u, std::thread::hardware_concurrency());
  // Spawn decisions first (the fault site fires on the constructing
  // thread, where a test can arm deterministically), threads second, so
  // workerLoop never indexes a Workers vector that is still growing.
  unsigned Spawned = 0;
  for (unsigned I = 0; I < Want; ++I) {
    if (fault::shouldFail(fault::Site::ServeWorkerSpawn)) {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.WorkerSpawnFaults;
      continue;
    }
    ++Spawned;
  }
  // The containment floor: a spawn fault degrades the pool, it does not
  // take the service down. One worker always comes up.
  if (Spawned == 0)
    Spawned = 1;
  for (unsigned I = 0; I < Spawned; ++I)
    Workers.push_back(std::make_unique<Worker>());
  NumWorkers = Spawned;
  for (unsigned I = 0; I < Spawned; ++I)
    Workers[I]->Thread = std::thread(&Server::workerLoop, this, I);
}

Server::~Server() {
  drain(/*CancelInFlight=*/false);
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
}

void Server::drain(bool CancelInFlight) {
  Draining.store(true);
  if (CancelInFlight)
    CancelRequested.store(true);
  std::vector<std::shared_ptr<PendingJob>> Flushed;
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    Flushed.assign(Queue.begin(), Queue.end());
    Queue.clear();
    if (CancelInFlight)
      for (auto &W : Workers)
        if (W->ActiveCancel)
          W->ActiveCancel->store(true);
  }
  QueueCv.notify_all();
  // Answer every flushed job outside the lock: exactly-once, machine
  // readable, no work performed.
  for (auto &Job : Flushed) {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.DrainRejected;
    }
    Job->Done(makeRejection(Job->Req.Id, "draining", "server is draining"));
  }
}

void Server::submit(JobRequest Req, ResponseFn Done) {
  if (Req.Op == "ping") {
    JobResponse R;
    R.Id = Req.Id;
    Done(R);
    return;
  }
  if (Req.Op == "stats") {
    JobResponse R;
    R.Id = Req.Id;
    R.Extra = statsJson();
    R.HasExtra = true;
    Done(R);
    return;
  }
  if (Req.Op == "shutdown") {
    // Acknowledge, then let the transport layer observe the flag and run
    // the drain from its own thread (never from inside a callback).
    ShutdownReq.store(true);
    JobResponse R;
    R.Id = Req.Id;
    Done(R);
    return;
  }

  // op == "verify": admission control.
  if (Draining.load()) {
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.DrainRejected;
    }
    Done(makeRejection(Req.Id, "draining", "server is draining"));
    return;
  }
  if (fault::shouldFail(fault::Site::ServeAdmission)) {
    // Injected enqueue failure: shed exactly this job, touch nothing
    // else.
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.AdmissionFaults;
    }
    Done(makeRejection(Req.Id, "overloaded",
                       "admission failure injected; resubmit"));
    return;
  }
  auto Job = std::make_shared<PendingJob>();
  Job->Req = std::move(Req);
  Job->Done = std::move(Done);
  Job->Submitted = std::chrono::steady_clock::now();
  Job->Cancel = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> Lock(QueueMu);
    if (Queue.size() >= Opts.QueueCapacity) {
      std::lock_guard<std::mutex> SLock(StatsMu);
      ++Counters.Shed;
      // Respond outside both locks below.
    } else {
      Queue.push_back(Job);
      std::lock_guard<std::mutex> SLock(StatsMu);
      ++Counters.Submitted;
      Counters.QueueDepth = Queue.size();
      Counters.PeakQueueDepth =
          std::max(Counters.PeakQueueDepth, Queue.size());
      QueueCv.notify_one();
      return;
    }
  }
  Job->Done(makeRejection(Job->Req.Id, "overloaded",
                          "queue full (capacity " +
                              std::to_string(Opts.QueueCapacity) +
                              "); resubmit later"));
}

void Server::submitLine(const std::string &Line,
                        std::function<void(std::string)> Done) {
  JobRequest Req;
  std::string Error;
  if (!parseRequest(Line, Req, Error)) {
    Done(makeRejection(Req.Id, "error", Error).toLine());
    return;
  }
  submit(std::move(Req),
         [Done = std::move(Done)](const JobResponse &R) { Done(R.toLine()); });
}

JobResponse Server::runSync(JobRequest Req) {
  std::promise<JobResponse> Promise;
  std::future<JobResponse> Future = Promise.get_future();
  submit(std::move(Req),
         [&Promise](const JobResponse &R) { Promise.set_value(R); });
  return Future.get();
}

void Server::workerLoop(unsigned Index) {
  // The worker's private verification stack. Jobs run start-to-finish on
  // this thread, so the thread-local BigInt accounting and the arena both
  // observe a single owner.
  auto Stack = std::make_unique<Verifier>();
  for (;;) {
    std::shared_ptr<PendingJob> Job;
    {
      std::unique_lock<std::mutex> Lock(QueueMu);
      QueueCv.wait(Lock,
                   [&] { return !Queue.empty() || Draining.load(); });
      if (Queue.empty()) {
        if (Draining.load())
          return;
        continue;
      }
      Job = Queue.front();
      Queue.pop_front();
      Workers[Index]->ActiveCancel = Job->Cancel;
      // A hard drain that raced this dequeue: it only flipped the flags
      // of jobs that were active *then*, so re-check and self-cancel.
      if (CancelRequested.load())
        Job->Cancel->store(true);
      std::lock_guard<std::mutex> SLock(StatsMu);
      Counters.QueueDepth = Queue.size();
      ++Counters.InFlight;
      Counters.PeakInFlight =
          std::max(Counters.PeakInFlight, Counters.InFlight);
    }
    runJob(*Job, Stack, Index);
    {
      std::lock_guard<std::mutex> Lock(QueueMu);
      Workers[Index]->ActiveCancel = nullptr;
      std::lock_guard<std::mutex> SLock(StatsMu);
      --Counters.InFlight;
    }
  }
}

void Server::runJob(PendingJob &Job, std::unique_ptr<Verifier> &Stack,
                    unsigned WorkerIndex) {
  (void)WorkerIndex;
  // Per-job fault arming: thread-local, so it scopes exactly to this job
  // on this worker (see support/FaultInject.h's threading contract).
  if (Job.Req.FaultArm)
    fault::arm(Job.Req.FaultArm);
  JobResponse R = executeVerify(Job.Req, Stack, *Job.Cancel);
  if (Job.Req.FaultArm)
    fault::disarm();
  R.WallMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Job.Submitted)
                 .count();
  Job.Done(R);
  // Long-lived worker hygiene: a job that bloated the arena retires this
  // stack (terms are arena-allocated and never freed individually, so
  // the bound has to be per-stack, not per-term).
  if (Opts.WorkerRecycleArenaBytes &&
      Stack->termManager().arenaBytes() > Opts.WorkerRecycleArenaBytes) {
    Stack = std::make_unique<Verifier>();
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.WorkerRecycles;
  }
}

ResourceLimits Server::effectiveBaseLimits(const JobRequest &Req) const {
  ResourceLimits L = Req.Limits;
  const ResourceLimits &D = Opts.DefaultLimits;
  if (L.TimeoutSeconds == 0)
    L.TimeoutSeconds = D.TimeoutSeconds;
  if (L.MemoryBytes == 0)
    L.MemoryBytes = D.MemoryBytes;
  if (L.SatConflicts == 0)
    L.SatConflicts = D.SatConflicts;
  if (L.Pivots == 0)
    L.Pivots = D.Pivots;
  if (L.BnbNodes == 0)
    L.BnbNodes = D.BnbNodes;
  if (L.SynthCombos == 0)
    L.SynthCombos = D.SynthCombos;
  if (L.ArgExpansions == 0)
    L.ArgExpansions = D.ArgExpansions;
  if (L.Refinements == 0)
    L.Refinements = D.Refinements;
  if (L.PdrObligations == 0)
    L.PdrObligations = D.PdrObligations;
  return L;
}

ResourceLimits
Server::escalatedLimits(const ResourceLimits &Base, int Attempt,
                        const std::atomic<bool> &Cancel) const {
  ResourceLimits L = Base;
  // Multiply every finite budget by EscalationFactor^Attempt, saturating
  // rather than wrapping; the memory ceiling stays fixed (it protects the
  // process, and a bigger heap would not decide a memory-bound job — the
  // lane switch is the remedy there).
  uint64_t Factor = 1;
  for (int I = 0; I < Attempt; ++I) {
    if (Factor > (uint64_t(1) << 48)) // Saturate well before overflow.
      break;
    Factor *= Opts.EscalationFactor ? Opts.EscalationFactor : 1;
  }
  auto Grow = [&](uint64_t &Budget) {
    if (Budget == 0)
      return; // Already unlimited.
    uint64_t Grown = Budget * Factor;
    Budget = (Grown / Factor == Budget) ? Grown : UINT64_MAX;
  };
  Grow(L.SatConflicts);
  Grow(L.Pivots);
  Grow(L.BnbNodes);
  Grow(L.SynthCombos);
  Grow(L.ArgExpansions);
  Grow(L.Refinements);
  Grow(L.PdrObligations);
  if (L.TimeoutSeconds > 0)
    L.TimeoutSeconds *= std::pow(Opts.TimeoutEscalation, Attempt);
  L.CancelFlag = &Cancel;
  return L;
}

EngineKind Server::ladderEngine(EngineKind Requested, int Attempt) const {
  // Portfolio already races both lanes; escalating budgets is all the
  // ladder can add.
  if (Requested == EngineKind::Portfolio)
    return EngineKind::Portfolio;
  // Single-engine requests: same lane with bigger budgets first (the
  // cheap bet), the opposite lane next (a differently-shaped search), the
  // portfolio from then on (hedge both).
  if (Attempt <= 1)
    return Requested;
  if (Attempt == 2)
    return Requested == EngineKind::Cegar ? EngineKind::Pdr
                                          : EngineKind::Cegar;
  return EngineKind::Portfolio;
}

JobResponse Server::executeVerify(const JobRequest &Req,
                                  std::unique_ptr<Verifier> &Stack,
                                  const std::atomic<bool> &Cancel) {
  JobResponse R;
  R.Id = Req.Id;

  Expected<Program> Loaded = Stack->loadSource(Req.Program);
  if (!Loaded) {
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.ParseErrors;
    return makeRejection(Req.Id, "error",
                         "program: " + Loaded.error().render());
  }
  const Program &P = Loaded.get();
  Fingerprint FP = fingerprintProgram(P);
  R.FingerprintHex = FP.hex();

  const bool CacheOn = Opts.CacheCapacity > 0;
  std::string CacheRejectNote;
  if (!Req.UseCache) {
    R.CacheDisposition = "bypass";
    std::lock_guard<std::mutex> Lock(StatsMu);
    ++Counters.CacheBypass;
  } else if (CacheOn) {
    CacheEntry Entry;
    if (Cache.lookup(FP, Entry)) {
      EngineResult Served;
      std::string WhyNot;
      if (revalidateEntry(P, Stack->solver(), Entry, Served, WhyNot)) {
        R.Verdict =
            Served.Verdict == EngineResult::Verdict::Safe ? 'S' : 'U';
        R.Note = Served.Note;
        R.EngineUsed = "cache";
        R.Attempts = 0;
        R.CacheDisposition = "hit";
        if (Req.WantCert && Served.HasInvariants)
          R.Certificate = Entry.Certificate;
        std::lock_guard<std::mutex> Lock(StatsMu);
        ++Counters.Completed;
        ++Counters.CacheHits;
        if (R.Verdict == 'S')
          ++Counters.Safe;
        else
          ++Counters.Unsafe;
        return R;
      }
      // The entry failed revalidation against this very program: drop it
      // and recompute. This is the poisoned/stale-entry path — it costs a
      // recomputation, never a wrong answer.
      Cache.erase(FP);
      R.CacheDisposition = "revalidation-failed";
      CacheRejectNote = "cache entry rejected (" + WhyNot + "); recomputed";
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.CacheRevalidationRejects;
    } else {
      R.CacheDisposition = "miss";
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.CacheMisses;
    }
  }

  // The escalation ladder.
  const ResourceLimits Base = effectiveBaseLimits(Req);
  int MaxAttempts = Req.MaxAttempts > 0 ? Req.MaxAttempts : Opts.MaxAttempts;
  if (MaxAttempts < 1)
    MaxAttempts = 1;
  const EngineKind Requested =
      Req.EngineSet ? Req.Engine : Opts.DefaultEngine;
  EngineResult Result;
  std::string Ladder;
  int Attempt = 0;
  for (;; ++Attempt) {
    EngineOptions EO;
    EO.Engine = ladderEngine(Requested, Attempt);
    EO.Limits = escalatedLimits(Base, Attempt, Cancel);
    Stack->options() = EO;
    Result = Stack->verifyProgram(P);
    R.EngineUsed = engineKindName(EO.Engine);
    if (!Ladder.empty())
      Ladder += " -> ";
    Ladder += engineKindName(EO.Engine);
    if (Result.Verdict == EngineResult::Verdict::Unknown &&
        !Result.UnknownReason.empty())
      Ladder += "[" + Result.UnknownReason + "]";
    // Retry only resource-reasoned Unknowns: verdicts are final, empty
    // reasons are structural (a bigger budget changes nothing), and
    // cancellation means the supervisor wants this job gone.
    bool Retry = Result.Verdict == EngineResult::Verdict::Unknown &&
                 !Result.UnknownReason.empty() &&
                 Result.UnknownReason != "cancelled" &&
                 Attempt + 1 < MaxAttempts;
    if (!Retry)
      break;
    {
      std::lock_guard<std::mutex> Lock(StatsMu);
      ++Counters.Retries;
    }
    // Exponential backoff, interruptible: a cancelled job or a draining
    // server should not sit out a sleep.
    double DelayS = std::min(Opts.BackoffBaseSeconds * std::pow(2.0, Attempt),
                             Opts.BackoffCapSeconds);
    auto Until = std::chrono::steady_clock::now() +
                 std::chrono::duration<double>(DelayS);
    while (std::chrono::steady_clock::now() < Until &&
           !Cancel.load(std::memory_order_relaxed) && !Draining.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  R.Attempts = Attempt + 1;
  switch (Result.Verdict) {
  case EngineResult::Verdict::Safe:
    R.Verdict = 'S';
    break;
  case EngineResult::Verdict::Unsafe:
    R.Verdict = 'U';
    break;
  case EngineResult::Verdict::Unknown:
    R.Verdict = '?';
    break;
  }
  R.UnknownReason = Result.UnknownReason;
  R.Note = Result.Note;
  if (R.Attempts > 1)
    R.Note += (R.Note.empty() ? "" : "; ") + ("ladder: " + Ladder);
  if (!CacheRejectNote.empty())
    R.Note += (R.Note.empty() ? "" : "; ") + CacheRejectNote;
  if (Req.WantCert && Result.HasInvariants)
    R.Certificate = serializeCertificate(P, Result.Invariants);

  // Publish to the cache (decided verdicts only, and only for jobs that
  // participate in the cache at all).
  if (CacheOn && Req.UseCache && R.Verdict != '?') {
    CacheEntry Entry;
    if (buildCacheEntry(P, Result, Entry)) {
      std::lock_guard<std::mutex> Lock(StatsMu);
      if (Cache.insert(FP, std::move(Entry)))
        ++Counters.CacheInserts;
      else
        ++Counters.CacheInsertFailures;
    }
  }
  noteVerdict(R, Result.Stats.PeakMemoryBytes);
  return R;
}

void Server::noteVerdict(const JobResponse &R, uint64_t PeakMemory) {
  std::lock_guard<std::mutex> Lock(StatsMu);
  ++Counters.Completed;
  switch (R.Verdict) {
  case 'S':
    ++Counters.Safe;
    break;
  case 'U':
    ++Counters.Unsafe;
    break;
  default:
    ++Counters.Unknown;
    if (!R.UnknownReason.empty())
      ++Counters.UnknownByReason[R.UnknownReason];
    if (R.UnknownReason == "cancelled")
      ++Counters.CancelledInFlight;
    break;
  }
  Counters.PeakMemoryBytes =
      std::max(Counters.PeakMemoryBytes, PeakMemory);
}

ServerStats Server::stats() {
  ServerStats S;
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    S = Counters;
  }
  std::lock_guard<std::mutex> Lock(QueueMu);
  S.QueueDepth = Queue.size();
  return S;
}

Json Server::statsJson() {
  ServerStats S = stats();
  Json J = Json::object();
  J.set("workers", Json::integer(NumWorkers));
  J.set("queue_capacity",
        Json::integer(static_cast<int64_t>(Opts.QueueCapacity)));
  J.set("queue_depth", Json::integer(static_cast<int64_t>(S.QueueDepth)));
  J.set("peak_queue_depth",
        Json::integer(static_cast<int64_t>(S.PeakQueueDepth)));
  J.set("in_flight", Json::integer(static_cast<int64_t>(S.InFlight)));
  J.set("peak_in_flight",
        Json::integer(static_cast<int64_t>(S.PeakInFlight)));
  J.set("submitted", Json::integer(static_cast<int64_t>(S.Submitted)));
  J.set("completed", Json::integer(static_cast<int64_t>(S.Completed)));
  J.set("safe", Json::integer(static_cast<int64_t>(S.Safe)));
  J.set("unsafe", Json::integer(static_cast<int64_t>(S.Unsafe)));
  J.set("unknown", Json::integer(static_cast<int64_t>(S.Unknown)));
  J.set("parse_errors", Json::integer(static_cast<int64_t>(S.ParseErrors)));
  J.set("shed", Json::integer(static_cast<int64_t>(S.Shed)));
  J.set("drain_rejected",
        Json::integer(static_cast<int64_t>(S.DrainRejected)));
  J.set("admission_faults",
        Json::integer(static_cast<int64_t>(S.AdmissionFaults)));
  J.set("retries", Json::integer(static_cast<int64_t>(S.Retries)));
  J.set("cache_size", Json::integer(static_cast<int64_t>(Cache.size())));
  J.set("cache_hits", Json::integer(static_cast<int64_t>(S.CacheHits)));
  J.set("cache_misses",
        Json::integer(static_cast<int64_t>(S.CacheMisses)));
  J.set("cache_revalidation_rejects",
        Json::integer(static_cast<int64_t>(S.CacheRevalidationRejects)));
  J.set("cache_bypass", Json::integer(static_cast<int64_t>(S.CacheBypass)));
  J.set("cache_inserts",
        Json::integer(static_cast<int64_t>(S.CacheInserts)));
  J.set("cache_insert_failures",
        Json::integer(static_cast<int64_t>(S.CacheInsertFailures)));
  J.set("worker_recycles",
        Json::integer(static_cast<int64_t>(S.WorkerRecycles)));
  J.set("worker_spawn_faults",
        Json::integer(static_cast<int64_t>(S.WorkerSpawnFaults)));
  J.set("cancelled_in_flight",
        Json::integer(static_cast<int64_t>(S.CancelledInFlight)));
  J.set("peak_memory_bytes",
        Json::integer(static_cast<int64_t>(S.PeakMemoryBytes)));
  Json ByReason = Json::object();
  for (const auto &[Reason, Count] : S.UnknownByReason)
    ByReason.set(Reason, Json::integer(static_cast<int64_t>(Count)));
  J.set("unknown_by_reason", ByReason);
  J.set("draining", Json::boolean(Draining.load()));
  return J;
}
