//===- serve/Protocol.h - pathinvd wire protocol ---------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pathinvd newline-delimited JSON protocol: one request object per
/// line in, one response object per line out, correlated by the
/// client-chosen "id". The same protocol runs over stdin/stdout and over
/// the unix-domain socket; responses may arrive out of submission order
/// (jobs finish when they finish), which is the point of the id.
///
/// Requests:
///   {"id":"j1","op":"verify","program":"proc f(n){...}",
///    "engine":"cegar|pdr|portfolio",       // optional, default portfolio
///    "timeout_s":30,"memory_mb":512,       // optional first-attempt limits
///    "budgets":{"sat_conflicts":200000},   // optional per-layer budgets
///    "max_attempts":3,                     // optional retry-ladder cap
///    "cache":true,"cert":false}            // optional
///   {"id":"s1","op":"stats"}
///   {"id":"p1","op":"ping"}
///   {"id":"d1","op":"shutdown"}            // graceful drain, then exit
///
/// Responses always carry "id" (empty when the request line had none) and
/// "status":
///   "ok"         — the operation completed; verify results carry
///                  "verdict":"safe|unsafe|unknown" plus attribution
///                  fields (see JobResponse);
///   "overloaded" — admission control shed the job (bounded queue full);
///                  resubmit later; nothing ran;
///   "draining"   — the server is shutting down; nothing ran;
///   "error"      — the request was malformed or the program failed to
///                  parse; "error" holds the reason.
///
/// "Exhaustion is never an outage": a verify whose retries all exhaust
/// their budgets still answers status "ok" with verdict "unknown" and a
/// machine-readable "unknown_reason" — status classes are about the
/// service, verdicts are about the program.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SERVE_PROTOCOL_H
#define PATHINV_SERVE_PROTOCOL_H

#include "core/Engine.h"
#include "serve/Json.h"

#include <string>

namespace pathinv {
namespace serve {

/// One decoded request line.
struct JobRequest {
  std::string Id;      ///< Echoed back verbatim; empty allowed.
  std::string Op;      ///< "verify" / "stats" / "ping" / "shutdown".
  std::string Program; ///< PIL source for "verify".
  EngineKind Engine = EngineKind::Portfolio;
  bool EngineSet = false; ///< Request named an engine explicitly.
  /// First-attempt limits; zero fields inherit the server defaults.
  ResourceLimits Limits;
  bool UseCache = true; ///< "cache":false forces recomputation.
  bool WantCert = false; ///< Attach the certificate text to Safe answers.
  int MaxAttempts = 0;  ///< Retry-ladder cap; 0 inherits the server's.
  /// Test hook (compiled to a no-op without PATHINV_FAULT_INJECT): arm
  /// the worker thread's deterministic fault harness with this countdown
  /// before the job runs. Lets the sweep inject faults *inside* a worker
  /// without touching other workers' jobs (the harness is thread-local;
  /// see support/FaultInject.h).
  uint64_t FaultArm = 0;
};

/// Parses one request line. \returns false with \p Error set on malformed
/// JSON, a missing/unknown "op", an unknown "engine", or an unknown
/// budget key; \p Out.Id is still filled when present so the error
/// response can be correlated.
bool parseRequest(const std::string &Line, JobRequest &Out,
                  std::string &Error);

/// One response, serializable as a single line.
struct JobResponse {
  std::string Id;
  std::string Status = "ok"; ///< "ok"/"overloaded"/"draining"/"error".
  std::string Error;         ///< Reason for non-"ok" statuses.
  char Verdict = 0;          ///< 'S'/'U'/'?'; 0 = not a verify result.
  std::string UnknownReason; ///< Machine-readable exhaustion attribution.
  std::string Note;          ///< Human-readable engine note.
  std::string EngineUsed;    ///< Engine of the deciding attempt.
  int Attempts = 0;          ///< Ladder attempts consumed (1 = no retry).
  /// "hit" (revalidated cache answer), "miss", "revalidation-failed"
  /// (entry rejected, recomputed), "bypass" (cache disabled for the job),
  /// or "" for non-verify ops.
  std::string CacheDisposition;
  std::string FingerprintHex; ///< Program fingerprint (verify only).
  double WallMs = 0;          ///< Service time including retries/backoff.
  std::string Certificate;    ///< Present when requested and available.
  Json Extra;                 ///< "stats" payload for the stats op.
  bool HasExtra = false;

  /// Serializes as one newline-terminated NDJSON line.
  std::string toLine() const;
};

/// Convenience constructors for the rejection shapes.
JobResponse makeRejection(const std::string &Id, const std::string &Status,
                          const std::string &Why);

const char *verdictName(char Verdict); ///< "safe"/"unsafe"/"unknown".

} // namespace serve
} // namespace pathinv

#endif // PATHINV_SERVE_PROTOCOL_H
