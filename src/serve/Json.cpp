//===- serve/Json.cpp - Minimal JSON for the service protocol -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace pathinv;
using namespace pathinv::serve;

void Json::set(const std::string &Key, Json V) {
  for (auto &[K2, V2] : Members) {
    if (K2 == Key) {
      V2 = std::move(V);
      return;
    }
  }
  Members.emplace_back(Key, std::move(V));
}

const Json *Json::find(const std::string &Key) const {
  for (const auto &[K2, V2] : Members)
    if (K2 == Key)
      return &V2;
  return nullptr;
}

std::string Json::stringOr(const std::string &Key, std::string Def) const {
  const Json *V = find(Key);
  return V && V->isString() ? V->asString() : Def;
}

int64_t Json::intOr(const std::string &Key, int64_t Def) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->asInt() : Def;
}

double Json::doubleOr(const std::string &Key, double Def) const {
  const Json *V = find(Key);
  return V && V->isNumber() ? V->asDouble() : Def;
}

bool Json::boolOr(const std::string &Key, bool Def) const {
  const Json *V = find(Key);
  return V && V->isBool() ? V->asBool() : Def;
}

namespace {

void writeEscaped(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C; // UTF-8 bytes pass through verbatim.
      }
    }
  }
  Out += '"';
}

void writeValue(const Json &J, std::string &Out) {
  switch (J.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += J.asBool() ? "true" : "false";
    break;
  case Json::Kind::Int:
    Out += std::to_string(J.asInt());
    break;
  case Json::Kind::Double: {
    double D = J.asDouble();
    if (!std::isfinite(D)) {
      Out += "null"; // JSON has no Inf/NaN; null is the least-wrong spelling.
      break;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case Json::Kind::String:
    writeEscaped(J.asString(), Out);
    break;
  case Json::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Json &E : J.elements()) {
      if (!First)
        Out += ',';
      First = false;
      writeValue(E, Out);
    }
    Out += ']';
    break;
  }
  case Json::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[K, V] : J.members()) {
      if (!First)
        Out += ',';
      First = false;
      writeEscaped(K, Out);
      Out += ':';
      writeValue(V, Out);
    }
    Out += '}';
    break;
  }
  }
}

/// Recursive-descent parser over a raw byte range.
class Parser {
public:
  Parser(const char *Begin, const char *End) : Cur(Begin), End(End) {}

  bool parse(Json &Out, std::string &Error) {
    skipWs();
    if (!value(Out, Error))
      return false;
    skipWs();
    if (Cur != End) {
      Error = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

private:
  const char *Cur;
  const char *End;
  /// Recursion guard: a hostile "[[[[..." line must cost one error
  /// response, not the process's stack. 64 levels is far beyond any
  /// legitimate protocol payload (which nests 2 deep).
  int Depth = 0;
  static constexpr int MaxDepth = 64;

  void skipWs() {
    while (Cur != End &&
           (*Cur == ' ' || *Cur == '\t' || *Cur == '\n' || *Cur == '\r'))
      ++Cur;
  }

  bool literal(const char *Text, std::string &Error) {
    size_t Len = std::strlen(Text);
    if (static_cast<size_t>(End - Cur) < Len ||
        std::memcmp(Cur, Text, Len) != 0) {
      Error = std::string("expected '") + Text + "'";
      return false;
    }
    Cur += Len;
    return true;
  }

  static void appendUtf8(uint32_t Cp, std::string &Out) {
    if (Cp < 0x80) {
      Out += static_cast<char>(Cp);
    } else if (Cp < 0x800) {
      Out += static_cast<char>(0xC0 | (Cp >> 6));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else if (Cp < 0x10000) {
      Out += static_cast<char>(0xE0 | (Cp >> 12));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Cp >> 18));
      Out += static_cast<char>(0x80 | ((Cp >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Cp >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Cp & 0x3F));
    }
  }

  bool hex4(uint32_t &Out, std::string &Error) {
    if (End - Cur < 4) {
      Error = "truncated \\u escape";
      return false;
    }
    Out = 0;
    for (int K = 0; K < 4; ++K) {
      char C = *Cur++;
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= C - '0';
      else if (C >= 'a' && C <= 'f')
        Out |= C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        Out |= C - 'A' + 10;
      else {
        Error = "bad hex digit in \\u escape";
        return false;
      }
    }
    return true;
  }

  bool stringBody(std::string &Out, std::string &Error) {
    ++Cur; // Opening quote.
    while (Cur != End && *Cur != '"') {
      char C = *Cur;
      if (static_cast<unsigned char>(C) < 0x20) {
        Error = "raw control character in string";
        return false;
      }
      if (C != '\\') {
        Out += C;
        ++Cur;
        continue;
      }
      if (++Cur == End) {
        Error = "truncated escape";
        return false;
      }
      char E = *Cur++;
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        uint32_t Cp = 0;
        if (!hex4(Cp, Error))
          return false;
        if (Cp >= 0xD800 && Cp <= 0xDBFF) { // High surrogate: need the pair.
          if (End - Cur < 6 || Cur[0] != '\\' || Cur[1] != 'u') {
            Error = "unpaired surrogate";
            return false;
          }
          Cur += 2;
          uint32_t Lo = 0;
          if (!hex4(Lo, Error))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF) {
            Error = "bad low surrogate";
            return false;
          }
          Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (Cp >= 0xDC00 && Cp <= 0xDFFF) {
          Error = "unpaired surrogate";
          return false;
        }
        appendUtf8(Cp, Out);
        break;
      }
      default:
        Error = "unknown escape";
        return false;
      }
    }
    if (Cur == End) {
      Error = "unterminated string";
      return false;
    }
    ++Cur; // Closing quote.
    return true;
  }

  bool number(Json &Out, std::string &Error) {
    const char *Start = Cur;
    if (Cur != End && *Cur == '-')
      ++Cur;
    bool Integral = true;
    while (Cur != End && ((*Cur >= '0' && *Cur <= '9') || *Cur == '.' ||
                          *Cur == 'e' || *Cur == 'E' || *Cur == '+' ||
                          *Cur == '-')) {
      if (*Cur == '.' || *Cur == 'e' || *Cur == 'E')
        Integral = false;
      ++Cur;
    }
    std::string Text(Start, Cur);
    if (Text.empty() || Text == "-") {
      Error = "malformed number";
      return false;
    }
    if (Integral) {
      errno = 0;
      char *EndP = nullptr;
      long long V = std::strtoll(Text.c_str(), &EndP, 10);
      if (errno == 0 && EndP == Text.c_str() + Text.size()) {
        Out = Json::integer(V);
        return true;
      }
      // Out-of-int64-range integral literal: fall through to double.
    }
    errno = 0;
    char *EndP = nullptr;
    double D = std::strtod(Text.c_str(), &EndP);
    if (EndP != Text.c_str() + Text.size()) {
      Error = "malformed number";
      return false;
    }
    Out = Json::number(D);
    return true;
  }

  bool value(Json &Out, std::string &Error) {
    if (Cur == End) {
      Error = "unexpected end of input";
      return false;
    }
    if (Depth >= MaxDepth) {
      Error = "nesting too deep";
      return false;
    }
    ++Depth;
    bool Ok = valueInner(Out, Error);
    --Depth;
    return Ok;
  }

  bool valueInner(Json &Out, std::string &Error) {
    switch (*Cur) {
    case 'n':
      return literal("null", Error) && (Out = Json(), true);
    case 't':
      return literal("true", Error) && (Out = Json::boolean(true), true);
    case 'f':
      return literal("false", Error) && (Out = Json::boolean(false), true);
    case '"': {
      std::string S;
      if (!stringBody(S, Error))
        return false;
      Out = Json::string(std::move(S));
      return true;
    }
    case '[': {
      ++Cur;
      Out = Json::array();
      skipWs();
      if (Cur != End && *Cur == ']') {
        ++Cur;
        return true;
      }
      for (;;) {
        Json Elem;
        skipWs();
        if (!value(Elem, Error))
          return false;
        Out.push(std::move(Elem));
        skipWs();
        if (Cur == End) {
          Error = "unterminated array";
          return false;
        }
        if (*Cur == ',') {
          ++Cur;
          continue;
        }
        if (*Cur == ']') {
          ++Cur;
          return true;
        }
        Error = "expected ',' or ']'";
        return false;
      }
    }
    case '{': {
      ++Cur;
      Out = Json::object();
      skipWs();
      if (Cur != End && *Cur == '}') {
        ++Cur;
        return true;
      }
      for (;;) {
        skipWs();
        if (Cur == End || *Cur != '"') {
          Error = "expected object key";
          return false;
        }
        std::string Key;
        if (!stringBody(Key, Error))
          return false;
        skipWs();
        if (Cur == End || *Cur != ':') {
          Error = "expected ':'";
          return false;
        }
        ++Cur;
        skipWs();
        Json Member;
        if (!value(Member, Error))
          return false;
        Out.set(Key, std::move(Member));
        skipWs();
        if (Cur == End) {
          Error = "unterminated object";
          return false;
        }
        if (*Cur == ',') {
          ++Cur;
          continue;
        }
        if (*Cur == '}') {
          ++Cur;
          return true;
        }
        Error = "expected ',' or '}'";
        return false;
      }
    }
    default:
      return number(Out, Error);
    }
  }
};

} // namespace

std::string Json::write() const {
  std::string Out;
  writeValue(*this, Out);
  return Out;
}

bool pathinv::serve::parseJson(const std::string &Text, Json &Out,
                               std::string &Error) {
  Parser P(Text.data(), Text.data() + Text.size());
  return P.parse(Out, Error);
}
