//===- serve/Cache.cpp - Fingerprint-keyed verdict cache ------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Cache.h"

#include "core/Engine.h"
#include "interp/Interpreter.h"
#include "logic/TermPrinter.h"
#include "program/Program.h"
#include "support/FaultInject.h"
#include "synth/InvariantMap.h"

using namespace pathinv;
using namespace pathinv::serve;

bool VerdictCache::lookup(const Fingerprint &Key, CacheEntry &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end())
    return false;
  Out = It->second;
  return true;
}

bool VerdictCache::insert(const Fingerprint &Key, CacheEntry Entry) {
  // Injected insertion failure: the job's answer is already decided, so
  // the correct degradation is "this one entry is not published".
  if (fault::shouldFail(fault::Site::ServeCacheInsert))
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It != Entries.end()) {
    It->second = std::move(Entry);
    return true;
  }
  if (Capacity == 0)
    return false;
  while (Entries.size() >= Capacity && !InsertionOrder.empty()) {
    Entries.erase(InsertionOrder.front());
    InsertionOrder.pop_front();
  }
  Entries.emplace(Key, std::move(Entry));
  InsertionOrder.push_back(Key);
  return true;
}

void VerdictCache::erase(const Fingerprint &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.erase(Key);
  // The stale InsertionOrder slot is tolerated: eviction skips keys that
  // are already gone (Entries.erase of an absent key is a no-op).
}

size_t VerdictCache::size() {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

bool pathinv::serve::buildCacheEntry(const Program &P, const EngineResult &R,
                                     CacheEntry &Out) {
  if (R.Verdict == EngineResult::Verdict::Safe) {
    // Only certificate-carrying proofs are cacheable: the certificate IS
    // the revalidation contract. "Safe, trust me" never enters the cache.
    if (!R.HasInvariants)
      return false;
    Out.Verdict = 'S';
    Out.Certificate = serializeCertificate(P, R.Invariants);
    return !Out.Certificate.empty();
  }
  if (R.Verdict != EngineResult::Verdict::Unsafe)
    return false; // Unknown is never cached — a bigger budget may decide.
  // Unsafe: need the concrete replay to transcribe. States holds the
  // state before each step plus the final one.
  if (!R.WitnessReplayed || !R.Replay.Feasible || R.Witness.empty() ||
      R.Replay.States.size() != R.Witness.size() + 1)
    return false;
  Out.Verdict = 'U';
  Out.WitnessPath = R.Witness;
  const ConcreteState &Initial = R.Replay.States.front();
  for (const auto &[Var, Value] : Initial.Scalars)
    Out.InitialScalars.emplace_back(printTerm(Var), Value.toString());
  for (const auto &[Var, Array] : Initial.Arrays) {
    Out.ArrayDefaults.emplace_back(printTerm(Var), Array.Default.toString());
    for (const auto &[Index, Value] : Array.Cells)
      Out.InitialCells.push_back({printTerm(Var), Index, Value.toString()});
  }
  // Record every program scalar's value after every step as a havoc
  // candidate x@K (K = step + 1). The replay only consults the entries
  // for variables the step actually havocs; the rest are inert, and
  // recording all of them sidesteps re-deriving which relation havocs
  // what.
  for (size_t Step = 0; Step + 1 < R.Replay.States.size(); ++Step) {
    const ConcreteState &After = R.Replay.States[Step + 1];
    for (const Term *Var : P.variables()) {
      if (Var->sort() != Sort::Int)
        continue; // Array havoc values are not transcribed (see header).
      Out.Havocs.push_back({printTerm(Var), static_cast<unsigned>(Step + 1),
                            After.scalar(Var).toString()});
    }
  }
  return true;
}

namespace {

/// Resolves the program's variables by printed name.
const Term *findVariable(const Program &P, const std::string &Name) {
  for (const Term *Var : P.variables())
    if (printTerm(Var) == Name)
      return Var;
  return nullptr;
}

/// Checks that \p Path is a well-formed entry->error transition chain of
/// \p P (indices valid, sources chain, ends at the error location).
bool wellFormedErrorPath(const Program &P, const std::vector<int> &Path) {
  if (Path.empty())
    return false;
  LocId At = P.entry();
  for (int Index : Path) {
    if (Index < 0 || Index >= P.numTransitions())
      return false;
    const Transition &T = P.transition(Index);
    if (T.From != At)
      return false;
    At = T.To;
  }
  return At == P.error();
}

} // namespace

bool pathinv::serve::revalidateEntry(const Program &P, SmtSolver &Solver,
                                     const CacheEntry &Entry, EngineResult &R,
                                     std::string &WhyNot) {
  if (Entry.Verdict == 'S') {
    Expected<InvariantMap> Map = parseCertificate(P, Entry.Certificate);
    if (!Map) {
      WhyNot = "certificate parse: " + Map.error().render();
      return false;
    }
    InvariantCheckResult Check = checkInvariantMap(P, Map.get(), Solver);
    if (!Check.Ok) {
      WhyNot = "certificate check: " + Check.FailureReason;
      return false;
    }
    R.Verdict = EngineResult::Verdict::Safe;
    R.Invariants = Map.get();
    R.HasInvariants = true;
    R.Note = "served from cache (certificate revalidated)";
    return true;
  }
  if (Entry.Verdict != 'U') {
    WhyNot = "malformed entry verdict";
    return false;
  }
  if (!wellFormedErrorPath(P, Entry.WitnessPath)) {
    WhyNot = "witness path is not an entry->error chain of this program";
    return false;
  }
  TermManager &TM = P.termManager();
  ConcreteState Initial;
  for (const auto &[Name, Text] : Entry.InitialScalars) {
    const Term *Var = findVariable(P, Name);
    Rational Value;
    if (!Var || Var->sort() != Sort::Int ||
        !Rational::fromString(Text, Value)) {
      WhyNot = "bad initial scalar '" + Name + "'";
      return false;
    }
    Initial.Scalars[Var] = Value;
  }
  for (const auto &[Name, Text] : Entry.ArrayDefaults) {
    const Term *Var = findVariable(P, Name);
    Rational Value;
    if (!Var || Var->sort() != Sort::ArrayIntInt ||
        !Rational::fromString(Text, Value)) {
      WhyNot = "bad array default '" + Name + "'";
      return false;
    }
    Initial.Arrays[Var].Default = Value;
  }
  for (const CacheEntry::Cell &Cell : Entry.InitialCells) {
    const Term *Var = findVariable(P, Cell.Array);
    Rational Value;
    if (!Var || Var->sort() != Sort::ArrayIntInt ||
        !Rational::fromString(Cell.Value, Value)) {
      WhyNot = "bad initial array cell '" + Cell.Array + "'";
      return false;
    }
    Initial.Arrays[Var].write(Cell.Index, Value);
  }
  std::map<const Term *, Rational, TermIdLess> HavocValues;
  for (const CacheEntry::Havoc &H : Entry.Havocs) {
    const Term *Var = findVariable(P, H.Var);
    Rational Value;
    if (!Var || Var->sort() != Sort::Int ||
        !Rational::fromString(H.Value, Value)) {
      WhyNot = "bad havoc value '" + H.Var + "'";
      return false;
    }
    HavocValues[ssaVar(TM, Var, H.Index)] = Value;
  }
  ReplayResult Replay =
      replayPath(P, Entry.WitnessPath, Initial, HavocValues);
  if (!Replay.Feasible) {
    WhyNot = "witness replay infeasible at step " +
             std::to_string(Replay.FailedStep);
    return false;
  }
  R.Verdict = EngineResult::Verdict::Unsafe;
  R.Witness = Entry.WitnessPath;
  R.Replay = std::move(Replay);
  R.WitnessReplayed = true;
  R.Note = "served from cache (witness replayed)";
  (void)Solver;
  return true;
}
