//===- logic/FormulaParser.h - Infix formula parser ------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the infix formula notation emitted by TermPrinter.
///
/// Used by tests, tools, and the template front end; grammar (loosest to
/// tightest): `->` (right-assoc), `||`, `&&`, `!`, relations
/// (`= == != <= < >= >`), `+ -`, `*`, unary `-`, primaries
/// (integers, identifiers, `a[i]`, `f(args)`, `forall k. ...`, parens).
/// Identifier sorts come from the supplied environment; unknown identifiers
/// are inferred (array when indexed, int otherwise) and added to it.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LOGIC_FORMULAPARSER_H
#define PATHINV_LOGIC_FORMULAPARSER_H

#include "logic/Term.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace pathinv {

/// Name-to-sort environment threaded through parsing.
using SortEnv = std::map<std::string, Sort>;

/// Parses a boolean formula. \p Env supplies (and receives inferred)
/// variable sorts.
Expected<const Term *> parseFormula(TermManager &TM, std::string_view Text,
                                    SortEnv &Env);

/// Convenience overload with a throwaway environment.
Expected<const Term *> parseFormula(TermManager &TM, std::string_view Text);

/// Parses an integer term (no relational or boolean operators at top level).
Expected<const Term *> parseIntTerm(TermManager &TM, std::string_view Text,
                                    SortEnv &Env);

} // namespace pathinv

#endif // PATHINV_LOGIC_FORMULAPARSER_H
