//===- logic/TermRewrite.h - Substitution and term traversal ---*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural rewriting over terms: substitution, variable renaming (for
/// priming and SSA indexing of path formulas), and free-symbol collection.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LOGIC_TERMREWRITE_H
#define PATHINV_LOGIC_TERMREWRITE_H

#include "logic/Term.h"

#include <functional>
#include <map>
#include <set>

namespace pathinv {

/// Deterministically ordered term set/map aliases used across the analyses.
using TermSet = std::set<const Term *, TermIdLess>;
using TermMap = std::map<const Term *, const Term *, TermIdLess>;

/// Replaces every occurrence of a key of \p Subst (any subterm, not only
/// variables) by its image, bottom-up. Quantified bound variables shadow
/// substitution keys of the same term.
const Term *substitute(TermManager &TM, const Term *T, const TermMap &Subst);

/// Renames free variables via the callback. Returning nullptr keeps the
/// variable unchanged. Bound variables are never renamed.
const Term *
renameVars(TermManager &TM, const Term *T,
           const std::function<const Term *(const Term *)> &Rename);

/// Collects the free variables of \p T (bound variables excluded) into
/// \p Out.
void collectFreeVars(const Term *T, TermSet &Out);

/// Collects all relational atoms (Eq/Le/Lt nodes) occurring in \p T.
void collectAtoms(const Term *T, TermSet &Out);

/// Collects all array-read terms a[i] occurring in \p T.
void collectSelects(const Term *T, TermSet &Out);

/// \returns true if \p T contains a quantifier.
bool containsQuantifier(const Term *T);

/// \returns true if \p T contains a Store node.
bool containsStore(const Term *T);

/// Conjunctive decomposition: pushes the conjuncts of a (possibly nested)
/// conjunction into \p Out; a non-And term is emitted as a single conjunct.
void flattenConjuncts(const Term *T, std::vector<const Term *> &Out);

/// Flattens \p T into \p Literals and reports whether every conjunct is a
/// literal or boolean constant — the shape the conjunction-level theory
/// solver decides directly.
bool isLiteralConjunction(const Term *T, std::vector<const Term *> &Literals);

/// Number of distinct subterms of \p T (DAG size, each shared subterm
/// counted once). Cheap size gauge for capping formula growth.
size_t termDagSize(const Term *T);

} // namespace pathinv

#endif // PATHINV_LOGIC_TERMREWRITE_H
