//===- logic/Term.h - Hash-consed term and formula IR ----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed terms over the combined theory LI+UIF+arrays.
///
/// The paper's programs, path formulas, invariant templates, and predicate
/// abstractions are all expressed in the combined theory of linear integer
/// arithmetic, uninterpreted functions, arrays, and universal quantification
/// over index variables (Section 3, "Invariants"). This module provides the
/// shared term representation: structurally equal terms are pointer-equal,
/// and every term carries a creation index used for deterministic ordering
/// (never order by pointer value).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LOGIC_TERM_H
#define PATHINV_LOGIC_TERM_H

#include "support/Rational.h"

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pathinv {

/// Sorts of the term language.
enum class Sort : uint8_t {
  Bool,
  Int,
  ArrayIntInt, ///< Arrays from Int to Int (the paper's `int a[]`).
};

/// \returns a human-readable sort name.
const char *sortName(Sort S);

/// Term node kinds.
enum class TermKind : uint8_t {
  // Terms.
  IntConst, ///< Rational constant (integer-valued in programs).
  Var,      ///< Named variable of any sort.
  Add,      ///< N-ary integer addition.
  Mul,      ///< Binary multiplication.
  Select,   ///< Array read a[i].
  Store,    ///< Array write a{i := v}.
  Apply,    ///< Uninterpreted function application f(t1, ..., tn).
  // Atoms.
  Eq, ///< Equality over Int or ArrayIntInt.
  Le, ///< Integer <=.
  Lt, ///< Integer <.
  // Formulas.
  True,
  False,
  Not,
  And,    ///< N-ary conjunction.
  Or,     ///< N-ary disjunction.
  Forall, ///< Ops[0] = bound Int variable, Ops[1] = body.
};

/// \returns a human-readable kind name (for diagnostics).
const char *termKindName(TermKind K);

class TermManager;

/// An immutable term node. Instances are created and uniqued exclusively by
/// \c TermManager; clients hold `const Term *` and may compare by pointer.
class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TermSort; }
  /// Creation index; use for deterministic ordering.
  uint32_t id() const { return Id; }

  /// Constant value; valid only for IntConst.
  const Rational &value() const {
    assert(Kind == TermKind::IntConst && "value() on non-constant");
    return Value;
  }
  /// Variable or function-symbol name; valid for Var and Apply.
  const std::string &name() const {
    assert((Kind == TermKind::Var || Kind == TermKind::Apply) &&
           "name() on unnamed term");
    return Name;
  }

  const std::vector<const Term *> &operands() const { return Ops; }
  const Term *operand(size_t I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  size_t numOperands() const { return Ops.size(); }

  bool isBool() const { return TermSort == Sort::Bool; }
  bool isInt() const { return TermSort == Sort::Int; }
  bool isArray() const { return TermSort == Sort::ArrayIntInt; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isIntConst() const { return Kind == TermKind::IntConst; }
  bool isTrue() const { return Kind == TermKind::True; }
  bool isFalse() const { return Kind == TermKind::False; }
  /// \returns true for relational atoms Eq/Le/Lt.
  bool isAtom() const {
    return Kind == TermKind::Eq || Kind == TermKind::Le ||
           Kind == TermKind::Lt;
  }
  /// \returns true for atoms or their negations (the literals of
  /// predicate abstraction).
  bool isLiteral() const {
    return isAtom() || (Kind == TermKind::Not && Ops[0]->isAtom());
  }

private:
  friend class TermManager;
  Term() = default;

  TermKind Kind = TermKind::True;
  Sort TermSort = Sort::Bool;
  uint32_t Id = 0;
  Rational Value;
  std::string Name;
  std::vector<const Term *> Ops;
};

/// Comparator giving a deterministic (creation-order) total order on terms.
struct TermIdLess {
  bool operator()(const Term *A, const Term *B) const {
    return A->id() < B->id();
  }
};

/// Owner, uniquer, and factory for terms.
///
/// All `mk*` functions perform light local simplification (constant folding,
/// flattening of And/Or/Add, involution of Not) so that trivially equal
/// formulas are pointer-equal. Deep canonicalization of linear atoms lives
/// in LinearExpr.
class TermManager {
public:
  TermManager();
  TermManager(const TermManager &) = delete;
  TermManager &operator=(const TermManager &) = delete;
  ~TermManager();

  // --- Leaves ---------------------------------------------------------

  const Term *mkTrue() { return TrueTerm; }
  const Term *mkFalse() { return FalseTerm; }
  const Term *mkBool(bool B) { return B ? TrueTerm : FalseTerm; }
  const Term *mkIntConst(Rational Value);
  const Term *mkIntConst(int64_t Value) { return mkIntConst(Rational(Value)); }
  const Term *mkVar(std::string_view Name, Sort S);

  // --- Integer terms --------------------------------------------------

  /// N-ary addition; flattens nested Add and folds constants.
  const Term *mkAdd(std::vector<const Term *> Ops);
  const Term *mkAdd(const Term *A, const Term *B) { return mkAdd({A, B}); }
  const Term *mkSub(const Term *A, const Term *B);
  const Term *mkNeg(const Term *A);
  /// Binary multiplication; folds constants and orders a constant first.
  const Term *mkMul(const Term *A, const Term *B);
  const Term *mkMul(const Rational &Coeff, const Term *A) {
    return mkMul(mkIntConst(Coeff), A);
  }

  // --- Arrays and uninterpreted functions ------------------------------

  const Term *mkSelect(const Term *Array, const Term *Index);
  const Term *mkStore(const Term *Array, const Term *Index, const Term *Value);
  const Term *mkApply(std::string_view Function,
                      std::vector<const Term *> Args, Sort ResultSort);

  // --- Atoms ------------------------------------------------------------

  const Term *mkEq(const Term *A, const Term *B);
  const Term *mkLe(const Term *A, const Term *B);
  const Term *mkLt(const Term *A, const Term *B);
  const Term *mkGe(const Term *A, const Term *B) { return mkLe(B, A); }
  const Term *mkGt(const Term *A, const Term *B) { return mkLt(B, A); }
  /// Disequality; represented as Not(Eq).
  const Term *mkNe(const Term *A, const Term *B) { return mkNot(mkEq(A, B)); }

  // --- Formulas ---------------------------------------------------------

  /// Negation. Pushes through constants, eliminates double negation, and
  /// flips strict/non-strict inequalities (&not;(a<=b) becomes b<a).
  const Term *mkNot(const Term *A);
  /// N-ary conjunction; flattens, deduplicates, simplifies units.
  const Term *mkAnd(std::vector<const Term *> Ops);
  const Term *mkAnd(const Term *A, const Term *B) { return mkAnd({A, B}); }
  /// N-ary disjunction; flattens, deduplicates, simplifies units.
  const Term *mkOr(std::vector<const Term *> Ops);
  const Term *mkOr(const Term *A, const Term *B) { return mkOr({A, B}); }
  const Term *mkImplies(const Term *A, const Term *B) {
    return mkOr(mkNot(A), B);
  }
  const Term *mkIff(const Term *A, const Term *B);
  /// Universal quantification over an Int-sorted bound variable.
  const Term *mkForall(const Term *BoundVar, const Term *Body);

  /// \returns total number of distinct terms created (diagnostics).
  size_t numTerms() const { return AllTerms.size(); }

private:
  const Term *intern(TermKind K, Sort S, Rational Value, std::string Name,
                     std::vector<const Term *> Ops);

  struct KeyHash;
  struct KeyEq;

  std::vector<std::unique_ptr<Term>> AllTerms;
  // Uniquing table from structural content to the canonical node. The key
  // indexes into AllTerms to avoid storing duplicate structures.
  std::unordered_map<size_t, std::vector<const Term *>> UniqueTable;
  const Term *TrueTerm = nullptr;
  const Term *FalseTerm = nullptr;
};

} // namespace pathinv

#endif // PATHINV_LOGIC_TERM_H
