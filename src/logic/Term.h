//===- logic/Term.h - Hash-consed term and formula IR ----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, hash-consed terms over the combined theory LI+UIF+arrays.
///
/// The paper's programs, path formulas, invariant templates, and predicate
/// abstractions are all expressed in the combined theory of linear integer
/// arithmetic, uninterpreted functions, arrays, and universal quantification
/// over index variables (Section 3, "Invariants"). This module provides the
/// shared term representation: structurally equal terms are pointer-equal,
/// and every term carries a creation index used for deterministic ordering
/// (never order by pointer value).
///
/// Representation: nodes live in a bump-pointer arena owned by TermManager.
/// A node is a fixed header followed by its operand pointers inline, so a
/// term and its operand list are one allocation and one cache line for the
/// common small arities. Variable and function names are interned in a
/// per-manager symbol table and nodes store only the 32-bit symbol id;
/// constants store a pointer into a stable Rational pool. Each node caches
/// its structural hash, and uniquing goes through an open-addressing
/// (quadratic-probe) table keyed by that hash.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LOGIC_TERM_H
#define PATHINV_LOGIC_TERM_H

#include "support/Rational.h"

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pathinv {

/// Sorts of the term language.
enum class Sort : uint8_t {
  Bool,
  Int,
  ArrayIntInt, ///< Arrays from Int to Int (the paper's `int a[]`).
};

/// \returns a human-readable sort name.
const char *sortName(Sort S);

/// Term node kinds.
enum class TermKind : uint8_t {
  // Terms.
  IntConst, ///< Rational constant (integer-valued in programs).
  Var,      ///< Named variable of any sort.
  Add,      ///< N-ary integer addition.
  Mul,      ///< Binary multiplication.
  Select,   ///< Array read a[i].
  Store,    ///< Array write a{i := v}.
  Apply,    ///< Uninterpreted function application f(t1, ..., tn).
  // Atoms.
  Eq, ///< Equality over Int or ArrayIntInt.
  Le, ///< Integer <=.
  Lt, ///< Integer <.
  // Formulas.
  True,
  False,
  Not,
  And,    ///< N-ary conjunction.
  Or,     ///< N-ary disjunction.
  Forall, ///< Ops[0] = bound Int variable, Ops[1] = body.
};

/// \returns a human-readable kind name (for diagnostics).
const char *termKindName(TermKind K);

class Term;
class TermManager;

/// Non-owning view of a term's operand array (stored inline in the arena
/// right after the node header). Iterates like a const vector of
/// `const Term *`.
class OperandRange {
public:
  using value_type = const Term *;
  using iterator = const Term *const *;
  using const_iterator = iterator;

  OperandRange() = default;
  OperandRange(const Term *const *Data, size_t Size)
      : Data(Data), Count(Size) {}

  iterator begin() const { return Data; }
  iterator end() const { return Data + Count; }
  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  const Term *operator[](size_t I) const {
    assert(I < Count && "operand index out of range");
    return Data[I];
  }
  const Term *front() const { return (*this)[0]; }
  const Term *back() const { return (*this)[Count - 1]; }

private:
  const Term *const *Data = nullptr;
  size_t Count = 0;
};

/// An immutable term node. Instances are created and uniqued exclusively by
/// \c TermManager; clients hold `const Term *` and may compare by pointer.
class Term final {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TermSort; }
  /// Creation index; use for deterministic ordering.
  uint32_t id() const { return Id; }
  /// Cached structural hash (stable within a run; also stable across
  /// identical runs since it mixes only ids, kinds, and symbol ids).
  size_t structuralHash() const { return StructHash; }
  /// The manager that owns this node.
  TermManager &manager() const { return *Mgr; }

  /// Constant value; valid only for IntConst.
  const Rational &value() const {
    assert(Kind == TermKind::IntConst && "value() on non-constant");
    return *ConstVal;
  }
  /// Interned symbol id; valid for Var and Apply.
  uint32_t symbol() const {
    assert((Kind == TermKind::Var || Kind == TermKind::Apply) &&
           "symbol() on unnamed term");
    return Sym;
  }
  /// Variable or function-symbol name; valid for Var and Apply. The
  /// returned reference is stable for the life of the manager.
  const std::string &name() const; // Defined after TermManager.

  OperandRange operands() const { return OperandRange(opsBegin(), NumOps); }
  const Term *operand(size_t I) const {
    assert(I < NumOps && "operand index out of range");
    return opsBegin()[I];
  }
  size_t numOperands() const { return NumOps; }

  bool isBool() const { return TermSort == Sort::Bool; }
  bool isInt() const { return TermSort == Sort::Int; }
  bool isArray() const { return TermSort == Sort::ArrayIntInt; }
  bool isVar() const { return Kind == TermKind::Var; }
  bool isIntConst() const { return Kind == TermKind::IntConst; }
  bool isTrue() const { return Kind == TermKind::True; }
  bool isFalse() const { return Kind == TermKind::False; }
  /// \returns true for relational atoms Eq/Le/Lt.
  bool isAtom() const {
    return Kind == TermKind::Eq || Kind == TermKind::Le ||
           Kind == TermKind::Lt;
  }
  /// \returns true for atoms or their negations (the literals of
  /// predicate abstraction).
  bool isLiteral() const {
    return isAtom() || (Kind == TermKind::Not && operand(0)->isAtom());
  }
  /// \returns true if any subterm is a Forall (O(1); computed at intern
  /// time from the operands' flags).
  bool containsForall() const { return Flags & FlagHasForall; }
  /// \returns true if any subterm is a Store (O(1)).
  bool containsArrayStore() const { return Flags & FlagHasStore; }

private:
  friend class TermManager;
  Term() = default;

  static constexpr uint32_t NoSymbol = 0xffffffffu;
  enum : uint8_t { FlagHasForall = 1u << 0, FlagHasStore = 1u << 1 };

  /// Operands are stored inline, immediately after the node header.
  const Term *const *opsBegin() const {
    return reinterpret_cast<const Term *const *>(
        reinterpret_cast<const char *>(this) + sizeof(Term));
  }
  const Term **opsBeginMutable() {
    return reinterpret_cast<const Term **>(reinterpret_cast<char *>(this) +
                                           sizeof(Term));
  }

  TermKind Kind = TermKind::True;
  Sort TermSort = Sort::Bool;
  uint8_t Flags = 0;
  uint32_t Id = 0;
  uint32_t Sym = NoSymbol;
  uint32_t NumOps = 0;
  size_t StructHash = 0;
  TermManager *Mgr = nullptr;
  const Rational *ConstVal = nullptr;
  // Trailing: const Term *Ops[NumOps];
};

/// Comparator giving a deterministic (creation-order) total order on terms.
struct TermIdLess {
  bool operator()(const Term *A, const Term *B) const {
    return A->id() < B->id();
  }
};

/// Owner, uniquer, and factory for terms.
///
/// All `mk*` functions perform light local simplification (constant folding,
/// flattening of And/Or/Add, involution of Not) so that trivially equal
/// formulas are pointer-equal. Deep canonicalization of linear atoms lives
/// in LinearExpr.
class TermManager {
public:
  TermManager();
  TermManager(const TermManager &) = delete;
  TermManager &operator=(const TermManager &) = delete;
  ~TermManager();

  // --- Leaves ---------------------------------------------------------

  const Term *mkTrue() { return TrueTerm; }
  const Term *mkFalse() { return FalseTerm; }
  const Term *mkBool(bool B) { return B ? TrueTerm : FalseTerm; }
  const Term *mkIntConst(Rational Value);
  /// Small machine integers resolve through a direct cache — they are the
  /// bulk of all constants (coefficients, bounds, increments) and skipping
  /// the Rational construction and table probe is a measurable win.
  const Term *mkIntConst(int64_t Value) {
    if (Value >= SmallIntMin && Value <= SmallIntMax) {
      const Term *&Slot = SmallInts[Value - SmallIntMin];
      if (!Slot)
        Slot = mkIntConst(Rational(Value));
      return Slot;
    }
    return mkIntConst(Rational(Value));
  }
  const Term *mkVar(std::string_view Name, Sort S);

  // --- Integer terms --------------------------------------------------

  /// N-ary addition; flattens nested Add and folds constants.
  const Term *mkAdd(std::vector<const Term *> Ops);
  /// Binary addition; allocation-free fast path for the common case.
  const Term *mkAdd(const Term *A, const Term *B);
  const Term *mkSub(const Term *A, const Term *B);
  const Term *mkNeg(const Term *A);
  /// Binary multiplication; folds constants and orders a constant first.
  const Term *mkMul(const Term *A, const Term *B);
  const Term *mkMul(const Rational &Coeff, const Term *A) {
    return mkMul(mkIntConst(Coeff), A);
  }

  // --- Arrays and uninterpreted functions ------------------------------

  const Term *mkSelect(const Term *Array, const Term *Index);
  const Term *mkStore(const Term *Array, const Term *Index, const Term *Value);
  const Term *mkApply(std::string_view Function,
                      std::vector<const Term *> Args, Sort ResultSort);

  // --- Atoms ------------------------------------------------------------

  const Term *mkEq(const Term *A, const Term *B);
  const Term *mkLe(const Term *A, const Term *B);
  const Term *mkLt(const Term *A, const Term *B);
  const Term *mkGe(const Term *A, const Term *B) { return mkLe(B, A); }
  const Term *mkGt(const Term *A, const Term *B) { return mkLt(B, A); }
  /// Disequality; represented as Not(Eq).
  const Term *mkNe(const Term *A, const Term *B) { return mkNot(mkEq(A, B)); }

  // --- Formulas ---------------------------------------------------------

  /// Negation. Pushes through constants, eliminates double negation, and
  /// flips strict/non-strict inequalities (&not;(a<=b) becomes b<a).
  const Term *mkNot(const Term *A);
  /// N-ary conjunction; flattens, deduplicates, simplifies units.
  const Term *mkAnd(std::vector<const Term *> Ops);
  /// Binary conjunction; allocation-free fast path for the common case.
  const Term *mkAnd(const Term *A, const Term *B);
  /// N-ary disjunction; flattens, deduplicates, simplifies units.
  const Term *mkOr(std::vector<const Term *> Ops);
  /// Binary disjunction; allocation-free fast path for the common case.
  const Term *mkOr(const Term *A, const Term *B);
  const Term *mkImplies(const Term *A, const Term *B) {
    return mkOr(mkNot(A), B);
  }
  const Term *mkIff(const Term *A, const Term *B);
  /// Universal quantification over an Int-sorted bound variable.
  const Term *mkForall(const Term *BoundVar, const Term *Body);

  // --- Symbols ----------------------------------------------------------

  /// Interns \p Text and returns its stable symbol id (ids are assigned in
  /// first-use order, so identical runs produce identical ids).
  uint32_t internSymbol(std::string_view Text);
  /// \returns the text of an interned symbol; the reference is stable for
  /// the life of the manager.
  const std::string &symbolText(uint32_t Sym) const {
    assert(Sym < SymbolTexts.size() && "symbol id out of range");
    return SymbolTexts[Sym];
  }
  size_t numSymbols() const { return SymbolTexts.size(); }

  // --- Introspection ----------------------------------------------------

  /// \returns total number of distinct terms created (diagnostics).
  size_t numTerms() const { return AllTerms.size(); }
  /// \returns the term with creation index \p Id.
  const Term *termOfId(uint32_t Id) const {
    assert(Id < AllTerms.size() && "term id out of range");
    return AllTerms[Id];
  }
  /// \returns bytes currently reserved by the node arena (diagnostics).
  size_t arenaBytes() const { return ArenaReserved; }

  // --- Memoized traversals ---------------------------------------------

  /// Free variables of \p T (bound variables excluded), sorted by id.
  /// Computed once per node and cached; the reference is stable for the
  /// life of the manager.
  const std::vector<const Term *> &freeVarsOf(const Term *T);

  /// \name Opaque per-term memo slot used by LinearExpr's atom normalizer.
  /// Values are owned by the manager and freed through the deleter.
  /// @{
  void *atomMemoGet(uint32_t Id) const {
    return Id < AtomMemo.size() ? AtomMemo[Id].Ptr : nullptr;
  }
  void atomMemoSet(uint32_t Id, void *Ptr, void (*Deleter)(void *));
  /// @}

private:
  struct OpaqueMemo {
    void *Ptr = nullptr;
    void (*Deleter)(void *) = nullptr;
  };

  /// Bump-pointer allocation of \p Bytes (8-aligned) in the node arena.
  void *arenaAllocate(size_t Bytes);
  /// Uniquing core: find-or-create the node for the given structure.
  /// \p Value is non-null only for IntConst keys.
  const Term *intern(TermKind K, Sort S, const Rational *Value, uint32_t Sym,
                     const Term *const *Ops, uint32_t NumOps);
  const Term *intern(TermKind K, Sort S, const Rational *Value, uint32_t Sym,
                     std::initializer_list<const Term *> Ops) {
    return intern(K, S, Value, Sym, Ops.begin(),
                  static_cast<uint32_t>(Ops.size()));
  }
  void growUniqueTable();

  // Node arena: chunked, geometrically growing; nodes are trivially
  // destructible so chunks are freed wholesale.
  std::vector<std::unique_ptr<char[]>> ArenaChunks;
  char *ArenaPtr = nullptr;
  char *ArenaEnd = nullptr;
  size_t NextChunkBytes = 1u << 16;
  size_t ArenaReserved = 0;

  // Creation index -> node (also the deterministic iteration order).
  std::vector<const Term *> AllTerms;
  // Open-addressing uniquing table (power-of-two capacity, triangular
  // probing). Entries carry their hash in the node itself.
  std::vector<const Term *> UniqueTable;
  size_t UniqueCount = 0;

  // Interned symbols. The deque keeps string storage stable so nodes and
  // callers can hold references; the map's string_view keys alias it.
  std::deque<std::string> SymbolTexts;
  std::unordered_map<std::string_view, uint32_t> SymbolIds;

  // Stable pool of IntConst payloads.
  std::deque<Rational> ConstPool;

  // Reusable flatten buffer for the n-ary constructors (mkAdd/mkAnd/mkOr
  // never re-enter one another before interning, so one buffer suffices).
  std::vector<const Term *> ScratchOps;

  // Direct-mapped cache of small integer constants.
  static constexpr int64_t SmallIntMin = -16;
  static constexpr int64_t SmallIntMax = 255;
  const Term *SmallInts[SmallIntMax - SmallIntMin + 1] = {};

  // Traversal memos, indexed by term id.
  std::vector<std::unique_ptr<std::vector<const Term *>>> FreeVarsMemo;
  std::vector<OpaqueMemo> AtomMemo;

  const Term *TrueTerm = nullptr;
  const Term *FalseTerm = nullptr;
};

inline const std::string &Term::name() const {
  assert((Kind == TermKind::Var || Kind == TermKind::Apply) &&
         "name() on unnamed term");
  return Mgr->symbolText(Sym);
}

} // namespace pathinv

#endif // PATHINV_LOGIC_TERM_H
