//===- logic/LinearExpr.h - Linear normal form for terms -------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear-combination normal form over "arithmetic atoms".
///
/// An arithmetic atom is a maximal non-arithmetic subterm: a variable, an
/// array read, or an uninterpreted-function application. Every linear term
/// decomposes as `Const + sum_i Coeff_i * Atom_i`; this form backs the
/// simplex solver, Farkas encoding, and canonical predicate construction.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LOGIC_LINEAREXPR_H
#define PATHINV_LOGIC_LINEAREXPR_H

#include "logic/Term.h"

#include <map>
#include <optional>

namespace pathinv {

/// Relational operators of canonical linear atoms.
enum class RelKind : uint8_t { Eq, Le, Lt };

/// A linear expression Const + sum(Coeff * Atom) with deterministic
/// (creation-order) atom ordering and no zero coefficients.
class LinearExpr {
public:
  using CoeffMap = std::map<const Term *, Rational, TermIdLess>;

  LinearExpr() = default;
  explicit LinearExpr(Rational Constant) : Constant(std::move(Constant)) {}

  /// Builds a linear expression denoting 1 * Atom.
  static LinearExpr atom(const Term *Atom) {
    LinearExpr Result;
    Result.Coeffs[Atom] = Rational(1);
    return Result;
  }

  /// Decomposes \p T into linear normal form. Returns std::nullopt when the
  /// term is non-linear (e.g., a product of two variables).
  static std::optional<LinearExpr> fromTerm(const Term *T);

  const Rational &constant() const { return Constant; }
  const CoeffMap &coefficients() const { return Coeffs; }
  bool isConstant() const { return Coeffs.empty(); }
  size_t numAtoms() const { return Coeffs.size(); }

  /// Coefficient of \p Atom, zero when absent.
  Rational coefficientOf(const Term *Atom) const;

  void add(const LinearExpr &RHS);
  void sub(const LinearExpr &RHS);
  void scale(const Rational &Factor);
  void addTerm(const Term *Atom, const Rational &Coeff);
  void addConstant(const Rational &Value) { Constant += Value; }

  LinearExpr operator+(const LinearExpr &RHS) const;
  LinearExpr operator-(const LinearExpr &RHS) const;
  LinearExpr operator*(const Rational &Factor) const;
  LinearExpr operator-() const { return *this * Rational(-1); }

  bool operator==(const LinearExpr &RHS) const {
    return Constant == RHS.Constant && Coeffs == RHS.Coeffs;
  }

  /// Rebuilds a Term from this normal form.
  const Term *toTerm(TermManager &TM) const;

  std::string toString() const;

private:
  Rational Constant;
  CoeffMap Coeffs;
};

/// A canonical linear atom `Expr REL 0` in integer-normalized form: all
/// coefficients integral with gcd 1; for equalities the first atom's
/// coefficient is positive. Canonicalization makes syntactically different
/// but arithmetically identical predicates pointer-equal after conversion
/// back to terms, which keeps predicate sets small during refinement.
struct LinearAtom {
  LinearExpr Expr; ///< Constraint is Expr REL 0.
  RelKind Rel = RelKind::Le;

  /// Canonicalizes and converts to a Term.
  const Term *toTerm(TermManager &TM) const;

  std::string toString() const;
};

/// Decomposes a relational atom term (Eq/Le/Lt over Int) into a normalized
/// LinearAtom. Returns std::nullopt for non-linear or non-arithmetic atoms.
std::optional<LinearAtom> decomposeAtom(const Term *Atom);

/// Scales \p L so that all coefficients and the constant are integers with
/// collective gcd 1, preserving sign. Integer tightening (e.g. turning
/// `e < 0` into `e + 1 <= 0` over integer-valued atoms) relies on this.
LinearExpr normalizeToIntegral(LinearExpr L);

/// Builds the canonical term for `L REL 0`.
const Term *mkCanonicalAtom(TermManager &TM, LinearExpr L, RelKind Rel);

} // namespace pathinv

#endif // PATHINV_LOGIC_LINEAREXPR_H
