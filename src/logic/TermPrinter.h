//===- logic/TermPrinter.h - Human-readable term rendering -----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infix pretty-printer for terms and formulas, matching the notation used
/// in the paper: `a + b = 3*i && i <= n`, `forall k. 0 <= k && k <= i - 1 ->
/// a[k] = 0`, array updates as `a{i := 0}`.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_LOGIC_TERMPRINTER_H
#define PATHINV_LOGIC_TERMPRINTER_H

#include "logic/Term.h"

#include <string>

namespace pathinv {

/// Renders \p T as an infix string with minimal parentheses.
std::string printTerm(const Term *T);

} // namespace pathinv

#endif // PATHINV_LOGIC_TERMPRINTER_H
