//===- logic/Term.cpp - Hash-consed term and formula IR ------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include <algorithm>

using namespace pathinv;

const char *pathinv::sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "int";
  case Sort::ArrayIntInt:
    return "int[]";
  }
  assert(false && "unknown sort");
  return "<bad-sort>";
}

const char *pathinv::termKindName(TermKind K) {
  switch (K) {
  case TermKind::IntConst:
    return "IntConst";
  case TermKind::Var:
    return "Var";
  case TermKind::Add:
    return "Add";
  case TermKind::Mul:
    return "Mul";
  case TermKind::Select:
    return "Select";
  case TermKind::Store:
    return "Store";
  case TermKind::Apply:
    return "Apply";
  case TermKind::Eq:
    return "Eq";
  case TermKind::Le:
    return "Le";
  case TermKind::Lt:
    return "Lt";
  case TermKind::True:
    return "True";
  case TermKind::False:
    return "False";
  case TermKind::Not:
    return "Not";
  case TermKind::And:
    return "And";
  case TermKind::Or:
    return "Or";
  case TermKind::Forall:
    return "Forall";
  }
  assert(false && "unknown term kind");
  return "<bad-kind>";
}

static size_t hashTermKey(TermKind K, Sort S, const Rational &Value,
                          const std::string &Name,
                          const std::vector<const Term *> &Ops) {
  size_t H = static_cast<size_t>(K) * 31 + static_cast<size_t>(S);
  H = H * 1000003u + Value.hash();
  H = H * 1000003u + std::hash<std::string>()(Name);
  for (const Term *Op : Ops)
    H = H * 1000003u + Op->id();
  return H;
}

TermManager::TermManager() {
  TrueTerm = intern(TermKind::True, Sort::Bool, Rational(), "", {});
  FalseTerm = intern(TermKind::False, Sort::Bool, Rational(), "", {});
}

TermManager::~TermManager() = default;

const Term *TermManager::intern(TermKind K, Sort S, Rational Value,
                                std::string Name,
                                std::vector<const Term *> Ops) {
  size_t H = hashTermKey(K, S, Value, Name, Ops);
  auto &Bucket = UniqueTable[H];
  for (const Term *Existing : Bucket) {
    if (Existing->Kind == K && Existing->TermSort == S &&
        Existing->Value == Value && Existing->Name == Name &&
        Existing->Ops == Ops)
      return Existing;
  }
  auto Node = std::unique_ptr<Term>(new Term());
  Node->Kind = K;
  Node->TermSort = S;
  Node->Id = static_cast<uint32_t>(AllTerms.size());
  Node->Value = std::move(Value);
  Node->Name = std::move(Name);
  Node->Ops = std::move(Ops);
  const Term *Result = Node.get();
  AllTerms.push_back(std::move(Node));
  Bucket.push_back(Result);
  return Result;
}

const Term *TermManager::mkIntConst(Rational Value) {
  return intern(TermKind::IntConst, Sort::Int, std::move(Value), "", {});
}

const Term *TermManager::mkVar(std::string_view Name, Sort S) {
  assert(!Name.empty() && "variable needs a name");
  return intern(TermKind::Var, S, Rational(), std::string(Name), {});
}

const Term *TermManager::mkAdd(std::vector<const Term *> Ops) {
  std::vector<const Term *> Flat;
  Rational ConstSum;
  for (const Term *Op : Ops) {
    assert(Op->isInt() && "Add over non-integer operand");
    if (Op->kind() == TermKind::Add) {
      for (const Term *Sub : Op->operands()) {
        if (Sub->isIntConst())
          ConstSum += Sub->value();
        else
          Flat.push_back(Sub);
      }
    } else if (Op->isIntConst()) {
      ConstSum += Op->value();
    } else {
      Flat.push_back(Op);
    }
  }
  if (!ConstSum.isZero() || Flat.empty())
    Flat.push_back(mkIntConst(ConstSum));
  if (Flat.size() == 1)
    return Flat[0];
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  return intern(TermKind::Add, Sort::Int, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkSub(const Term *A, const Term *B) {
  return mkAdd(A, mkNeg(B));
}

const Term *TermManager::mkNeg(const Term *A) {
  return mkMul(mkIntConst(Rational(-1)), A);
}

const Term *TermManager::mkMul(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Mul over non-integer operands");
  if (A->isIntConst() && B->isIntConst())
    return mkIntConst(A->value() * B->value());
  // Keep a constant coefficient in the first slot for readability.
  if (B->isIntConst())
    std::swap(A, B);
  if (A->isIntConst()) {
    if (A->value().isZero())
      return mkIntConst(Rational());
    if (A->value().isOne())
      return B;
    // Fold c * (d * t) into (c*d) * t.
    if (B->kind() == TermKind::Mul && B->operand(0)->isIntConst())
      return mkMul(mkIntConst(A->value() * B->operand(0)->value()),
                   B->operand(1));
  }
  return intern(TermKind::Mul, Sort::Int, Rational(), "", {A, B});
}

const Term *TermManager::mkSelect(const Term *Array, const Term *Index) {
  assert(Array->isArray() && "Select from non-array");
  assert(Index->isInt() && "Select with non-integer index");
  return intern(TermKind::Select, Sort::Int, Rational(), "", {Array, Index});
}

const Term *TermManager::mkStore(const Term *Array, const Term *Index,
                                 const Term *Value) {
  assert(Array->isArray() && "Store into non-array");
  assert(Index->isInt() && Value->isInt() && "Store index/value must be int");
  return intern(TermKind::Store, Sort::ArrayIntInt, Rational(), "",
                {Array, Index, Value});
}

const Term *TermManager::mkApply(std::string_view Function,
                                 std::vector<const Term *> Args,
                                 Sort ResultSort) {
  assert(!Function.empty() && "function application needs a symbol");
  return intern(TermKind::Apply, ResultSort, Rational(), std::string(Function),
                std::move(Args));
}

const Term *TermManager::mkEq(const Term *A, const Term *B) {
  assert(A->sort() == B->sort() && "Eq over mismatched sorts");
  if (A == B)
    return mkTrue();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() == B->value());
  if (TermIdLess()(B, A))
    std::swap(A, B);
  return intern(TermKind::Eq, Sort::Bool, Rational(), "", {A, B});
}

const Term *TermManager::mkLe(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Le over non-integer operands");
  if (A == B)
    return mkTrue();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() <= B->value());
  return intern(TermKind::Le, Sort::Bool, Rational(), "", {A, B});
}

const Term *TermManager::mkLt(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Lt over non-integer operands");
  if (A == B)
    return mkFalse();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() < B->value());
  return intern(TermKind::Lt, Sort::Bool, Rational(), "", {A, B});
}

const Term *TermManager::mkNot(const Term *A) {
  assert(A->isBool() && "Not over non-boolean operand");
  switch (A->kind()) {
  case TermKind::True:
    return mkFalse();
  case TermKind::False:
    return mkTrue();
  case TermKind::Not:
    return A->operand(0);
  case TermKind::Le:
    // !(a <= b)  ==  b < a
    return mkLt(A->operand(1), A->operand(0));
  case TermKind::Lt:
    // !(a < b)  ==  b <= a
    return mkLe(A->operand(1), A->operand(0));
  default:
    return intern(TermKind::Not, Sort::Bool, Rational(), "", {A});
  }
}

const Term *TermManager::mkAnd(std::vector<const Term *> Ops) {
  std::vector<const Term *> Flat;
  for (const Term *Op : Ops) {
    assert(Op->isBool() && "And over non-boolean operand");
    if (Op->isFalse())
      return mkFalse();
    if (Op->isTrue())
      continue;
    if (Op->kind() == TermKind::And)
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
    else
      Flat.push_back(Op);
  }
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::And, Sort::Bool, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkOr(std::vector<const Term *> Ops) {
  std::vector<const Term *> Flat;
  for (const Term *Op : Ops) {
    assert(Op->isBool() && "Or over non-boolean operand");
    if (Op->isTrue())
      return mkTrue();
    if (Op->isFalse())
      continue;
    if (Op->kind() == TermKind::Or)
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
    else
      Flat.push_back(Op);
  }
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::Or, Sort::Bool, Rational(), "", std::move(Flat));
}

const Term *TermManager::mkIff(const Term *A, const Term *B) {
  if (A == B)
    return mkTrue();
  return mkAnd(mkImplies(A, B), mkImplies(B, A));
}

const Term *TermManager::mkForall(const Term *BoundVar, const Term *Body) {
  assert(BoundVar->isVar() && BoundVar->isInt() &&
         "quantified variable must be an integer variable");
  assert(Body->isBool() && "quantifier body must be a formula");
  if (Body->isTrue() || Body->isFalse())
    return Body;
  return intern(TermKind::Forall, Sort::Bool, Rational(), "",
                {BoundVar, Body});
}
