//===- logic/Term.cpp - Hash-consed term and formula IR ------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/Term.h"

#include "support/FaultInject.h"

#include <algorithm>
#include <cstring>
#include <new>

using namespace pathinv;

const char *pathinv::sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "int";
  case Sort::ArrayIntInt:
    return "int[]";
  }
  assert(false && "unknown sort");
  return "<bad-sort>";
}

const char *pathinv::termKindName(TermKind K) {
  switch (K) {
  case TermKind::IntConst:
    return "IntConst";
  case TermKind::Var:
    return "Var";
  case TermKind::Add:
    return "Add";
  case TermKind::Mul:
    return "Mul";
  case TermKind::Select:
    return "Select";
  case TermKind::Store:
    return "Store";
  case TermKind::Apply:
    return "Apply";
  case TermKind::Eq:
    return "Eq";
  case TermKind::Le:
    return "Le";
  case TermKind::Lt:
    return "Lt";
  case TermKind::True:
    return "True";
  case TermKind::False:
    return "False";
  case TermKind::Not:
    return "Not";
  case TermKind::And:
    return "And";
  case TermKind::Or:
    return "Or";
  case TermKind::Forall:
    return "Forall";
  }
  assert(false && "unknown term kind");
  return "<bad-kind>";
}

namespace {

/// Structural hash over kinds, sorts, symbol ids, constant values, and
/// operand ids — no pointer values, so hashes (and hence table layouts and
/// term ids) are identical across identical runs.
size_t hashTermKey(TermKind K, Sort S, const Rational *Value, uint32_t Sym,
                   const Term *const *Ops, uint32_t NumOps) {
  size_t H = static_cast<size_t>(K) * 31 + static_cast<size_t>(S);
  H = H * 1000003u + Sym;
  if (Value)
    H = H * 1000003u + Value->hash();
  for (uint32_t I = 0; I < NumOps; ++I)
    H = H * 1000003u + Ops[I]->id();
  // Final avalanche (splitmix64-style) so quadratic probing sees
  // well-mixed low bits.
  H ^= H >> 30;
  H *= 0xbf58476d1ce4e5b9ull;
  H ^= H >> 27;
  H *= 0x94d049bb133111ebull;
  H ^= H >> 31;
  return H;
}

/// \returns true if \p Node has exactly the given structure.
bool nodeEquals(const Term *Node, TermKind K, Sort S, const Rational *Value,
                uint32_t Sym, const Term *const *Ops, uint32_t NumOps) {
  if (Node->kind() != K || Node->sort() != S || Node->numOperands() != NumOps)
    return false;
  if (K == TermKind::Var || K == TermKind::Apply) {
    if (Node->symbol() != Sym)
      return false;
  }
  if (K == TermKind::IntConst && !(Node->value() == *Value))
    return false;
  OperandRange Existing = Node->operands();
  for (uint32_t I = 0; I < NumOps; ++I)
    if (Existing[I] != Ops[I])
      return false;
  return true;
}

} // namespace

TermManager::TermManager() {
  UniqueTable.assign(1u << 10, nullptr);
  TrueTerm = intern(TermKind::True, Sort::Bool, nullptr, Term::NoSymbol, {});
  FalseTerm = intern(TermKind::False, Sort::Bool, nullptr, Term::NoSymbol, {});
}

TermManager::~TermManager() {
  for (OpaqueMemo &Memo : AtomMemo)
    if (Memo.Ptr)
      Memo.Deleter(Memo.Ptr);
}

void *TermManager::arenaAllocate(size_t Bytes) {
  Bytes = (Bytes + 7u) & ~size_t(7); // Keep the bump pointer 8-aligned.
  if (static_cast<size_t>(ArenaEnd - ArenaPtr) < Bytes) {
    (void)fault::shouldFail(fault::Site::ArenaGrowth);
    size_t ChunkBytes = std::max(Bytes, NextChunkBytes);
    ArenaChunks.push_back(std::make_unique<char[]>(ChunkBytes));
    ArenaPtr = ArenaChunks.back().get();
    ArenaEnd = ArenaPtr + ChunkBytes;
    ArenaReserved += ChunkBytes;
    // Double up to 1 MiB chunks so large term populations amortize.
    NextChunkBytes = std::min<size_t>(NextChunkBytes * 2, 1u << 20);
  }
  void *Result = ArenaPtr;
  ArenaPtr += Bytes;
  return Result;
}

void TermManager::growUniqueTable() {
  std::vector<const Term *> Old = std::move(UniqueTable);
  UniqueTable.assign(Old.size() * 2, nullptr);
  size_t Mask = UniqueTable.size() - 1;
  for (const Term *Node : Old) {
    if (!Node)
      continue;
    size_t Idx = Node->structuralHash() & Mask;
    for (size_t Step = 1; UniqueTable[Idx]; ++Step)
      Idx = (Idx + Step) & Mask;
    UniqueTable[Idx] = Node;
  }
}

const Term *TermManager::intern(TermKind K, Sort S, const Rational *Value,
                                uint32_t Sym, const Term *const *Ops,
                                uint32_t NumOps) {
  size_t H = hashTermKey(K, S, Value, Sym, Ops, NumOps);

  // Triangular probing visits every slot of a power-of-two table.
  size_t Mask = UniqueTable.size() - 1;
  size_t Idx = H & Mask;
  size_t InsertAt;
  for (size_t Step = 1;; ++Step) {
    const Term *Existing = UniqueTable[Idx];
    if (!Existing) {
      InsertAt = Idx;
      break;
    }
    if (Existing->structuralHash() == H &&
        nodeEquals(Existing, K, S, Value, Sym, Ops, NumOps))
      return Existing;
    Idx = (Idx + Step) & Mask;
  }

  Term *Node = new (arenaAllocate(sizeof(Term) +
                                  NumOps * sizeof(const Term *))) Term();
  Node->Kind = K;
  Node->TermSort = S;
  Node->Id = static_cast<uint32_t>(AllTerms.size());
  Node->Sym = Sym;
  Node->NumOps = NumOps;
  Node->StructHash = H;
  Node->Mgr = this;
  if (Value) {
    ConstPool.push_back(*Value);
    Node->ConstVal = &ConstPool.back();
  }
  uint8_t Flags = 0;
  if (K == TermKind::Forall)
    Flags |= Term::FlagHasForall;
  if (K == TermKind::Store)
    Flags |= Term::FlagHasStore;
  const Term **Dst = Node->opsBeginMutable();
  for (uint32_t I = 0; I < NumOps; ++I) {
    Dst[I] = Ops[I];
    Flags |= Ops[I]->Flags;
  }
  Node->Flags = Flags;

  AllTerms.push_back(Node);
  UniqueTable[InsertAt] = Node;
  // Keep the load factor below ~0.7 so probe chains stay short.
  if (++UniqueCount * 10 >= UniqueTable.size() * 7)
    growUniqueTable();
  return Node;
}

uint32_t TermManager::internSymbol(std::string_view Text) {
  auto It = SymbolIds.find(Text);
  if (It != SymbolIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(SymbolTexts.size());
  SymbolTexts.emplace_back(Text);
  SymbolIds.emplace(std::string_view(SymbolTexts.back()), Id);
  return Id;
}

void TermManager::atomMemoSet(uint32_t Id, void *Ptr, void (*Deleter)(void *)) {
  if (AtomMemo.size() <= Id)
    AtomMemo.resize(AllTerms.size());
  OpaqueMemo &Memo = AtomMemo[Id];
  if (Memo.Ptr)
    Memo.Deleter(Memo.Ptr);
  Memo.Ptr = Ptr;
  Memo.Deleter = Deleter;
}

const std::vector<const Term *> &TermManager::freeVarsOf(const Term *T) {
  if (FreeVarsMemo.size() > T->id() && FreeVarsMemo[T->id()])
    return *FreeVarsMemo[T->id()];

  std::vector<const Term *> Result;
  switch (T->kind()) {
  case TermKind::Var:
    Result.push_back(T);
    break;
  case TermKind::IntConst:
  case TermKind::True:
  case TermKind::False:
    break;
  case TermKind::Forall: {
    const Term *Bound = T->operand(0);
    Result = freeVarsOf(T->operand(1)); // Copy, then drop the bound var.
    auto It = std::lower_bound(Result.begin(), Result.end(), Bound,
                               TermIdLess());
    if (It != Result.end() && *It == Bound)
      Result.erase(It);
    break;
  }
  default:
    for (const Term *Op : T->operands()) {
      const std::vector<const Term *> &Sub = freeVarsOf(Op);
      Result.insert(Result.end(), Sub.begin(), Sub.end());
    }
    std::sort(Result.begin(), Result.end(), TermIdLess());
    Result.erase(std::unique(Result.begin(), Result.end()), Result.end());
    break;
  }

  // Recursion above may have resized the memo vector; index afresh.
  if (FreeVarsMemo.size() <= T->id())
    FreeVarsMemo.resize(AllTerms.size());
  FreeVarsMemo[T->id()] =
      std::make_unique<std::vector<const Term *>>(std::move(Result));
  return *FreeVarsMemo[T->id()];
}

const Term *TermManager::mkIntConst(Rational Value) {
  return intern(TermKind::IntConst, Sort::Int, &Value, Term::NoSymbol, {});
}

const Term *TermManager::mkVar(std::string_view Name, Sort S) {
  assert(!Name.empty() && "variable needs a name");
  return intern(TermKind::Var, S, nullptr, internSymbol(Name), {});
}

const Term *TermManager::mkAdd(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Add over non-integer operands");
  // Nested sums still flatten through the n-ary path.
  if (A->kind() == TermKind::Add || B->kind() == TermKind::Add)
    return mkAdd(std::vector<const Term *>{A, B});
  if (A->isIntConst()) {
    if (B->isIntConst())
      return mkIntConst(A->value() + B->value());
    if (A->value().isZero())
      return B;
  } else if (B->isIntConst() && B->value().isZero()) {
    return A;
  }
  const Term *Ops[2] = {A, B};
  if (TermIdLess()(Ops[1], Ops[0]))
    std::swap(Ops[0], Ops[1]);
  return intern(TermKind::Add, Sort::Int, nullptr, Term::NoSymbol, Ops, 2);
}

const Term *TermManager::mkAdd(std::vector<const Term *> Ops) {
  std::vector<const Term *> &Flat = ScratchOps;
  Flat.clear();
  Rational ConstSum;
  for (const Term *Op : Ops) {
    assert(Op->isInt() && "Add over non-integer operand");
    if (Op->kind() == TermKind::Add) {
      for (const Term *Sub : Op->operands()) {
        if (Sub->isIntConst())
          ConstSum += Sub->value();
        else
          Flat.push_back(Sub);
      }
    } else if (Op->isIntConst()) {
      ConstSum += Op->value();
    } else {
      Flat.push_back(Op);
    }
  }
  if (!ConstSum.isZero() || Flat.empty())
    Flat.push_back(mkIntConst(std::move(ConstSum)));
  if (Flat.size() == 1)
    return Flat[0];
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  return intern(TermKind::Add, Sort::Int, nullptr, Term::NoSymbol,
                Flat.data(), static_cast<uint32_t>(Flat.size()));
}

const Term *TermManager::mkSub(const Term *A, const Term *B) {
  return mkAdd(A, mkNeg(B));
}

const Term *TermManager::mkNeg(const Term *A) {
  return mkMul(mkIntConst(Rational(-1)), A);
}

const Term *TermManager::mkMul(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Mul over non-integer operands");
  if (A->isIntConst() && B->isIntConst())
    return mkIntConst(A->value() * B->value());
  // Keep a constant coefficient in the first slot for readability.
  if (B->isIntConst())
    std::swap(A, B);
  if (A->isIntConst()) {
    if (A->value().isZero())
      return mkIntConst(Rational());
    if (A->value().isOne())
      return B;
    // Fold c * (d * t) into (c*d) * t.
    if (B->kind() == TermKind::Mul && B->operand(0)->isIntConst())
      return mkMul(mkIntConst(A->value() * B->operand(0)->value()),
                   B->operand(1));
  }
  return intern(TermKind::Mul, Sort::Int, nullptr, Term::NoSymbol, {A, B});
}

const Term *TermManager::mkSelect(const Term *Array, const Term *Index) {
  assert(Array->isArray() && "Select from non-array");
  assert(Index->isInt() && "Select with non-integer index");
  return intern(TermKind::Select, Sort::Int, nullptr, Term::NoSymbol,
                {Array, Index});
}

const Term *TermManager::mkStore(const Term *Array, const Term *Index,
                                 const Term *Value) {
  assert(Array->isArray() && "Store into non-array");
  assert(Index->isInt() && Value->isInt() && "Store index/value must be int");
  return intern(TermKind::Store, Sort::ArrayIntInt, nullptr, Term::NoSymbol,
                {Array, Index, Value});
}

const Term *TermManager::mkApply(std::string_view Function,
                                 std::vector<const Term *> Args,
                                 Sort ResultSort) {
  assert(!Function.empty() && "function application needs a symbol");
  return intern(TermKind::Apply, ResultSort, nullptr, internSymbol(Function),
                Args.data(), static_cast<uint32_t>(Args.size()));
}

const Term *TermManager::mkEq(const Term *A, const Term *B) {
  assert(A->sort() == B->sort() && "Eq over mismatched sorts");
  if (A == B)
    return mkTrue();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() == B->value());
  if (TermIdLess()(B, A))
    std::swap(A, B);
  return intern(TermKind::Eq, Sort::Bool, nullptr, Term::NoSymbol, {A, B});
}

const Term *TermManager::mkLe(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Le over non-integer operands");
  if (A == B)
    return mkTrue();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() <= B->value());
  return intern(TermKind::Le, Sort::Bool, nullptr, Term::NoSymbol, {A, B});
}

const Term *TermManager::mkLt(const Term *A, const Term *B) {
  assert(A->isInt() && B->isInt() && "Lt over non-integer operands");
  if (A == B)
    return mkFalse();
  if (A->isIntConst() && B->isIntConst())
    return mkBool(A->value() < B->value());
  return intern(TermKind::Lt, Sort::Bool, nullptr, Term::NoSymbol, {A, B});
}

const Term *TermManager::mkNot(const Term *A) {
  assert(A->isBool() && "Not over non-boolean operand");
  switch (A->kind()) {
  case TermKind::True:
    return mkFalse();
  case TermKind::False:
    return mkTrue();
  case TermKind::Not:
    return A->operand(0);
  case TermKind::Le:
    // !(a <= b)  ==  b < a
    return mkLt(A->operand(1), A->operand(0));
  case TermKind::Lt:
    // !(a < b)  ==  b <= a
    return mkLe(A->operand(1), A->operand(0));
  default:
    return intern(TermKind::Not, Sort::Bool, nullptr, Term::NoSymbol, {A});
  }
}

const Term *TermManager::mkAnd(const Term *A, const Term *B) {
  assert(A->isBool() && B->isBool() && "And over non-boolean operands");
  if (A->isFalse() || B->isFalse())
    return mkFalse();
  if (A->isTrue())
    return B;
  if (B->isTrue())
    return A;
  if (A == B)
    return A;
  // Nested conjunctions still flatten through the n-ary path.
  if (A->kind() == TermKind::And || B->kind() == TermKind::And)
    return mkAnd(std::vector<const Term *>{A, B});
  const Term *Ops[2] = {A, B};
  if (TermIdLess()(Ops[1], Ops[0]))
    std::swap(Ops[0], Ops[1]);
  return intern(TermKind::And, Sort::Bool, nullptr, Term::NoSymbol, Ops, 2);
}

const Term *TermManager::mkAnd(std::vector<const Term *> Ops) {
  std::vector<const Term *> &Flat = ScratchOps;
  Flat.clear();
  for (const Term *Op : Ops) {
    assert(Op->isBool() && "And over non-boolean operand");
    if (Op->isFalse())
      return mkFalse();
    if (Op->isTrue())
      continue;
    if (Op->kind() == TermKind::And)
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
    else
      Flat.push_back(Op);
  }
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::And, Sort::Bool, nullptr, Term::NoSymbol,
                Flat.data(), static_cast<uint32_t>(Flat.size()));
}

const Term *TermManager::mkOr(const Term *A, const Term *B) {
  assert(A->isBool() && B->isBool() && "Or over non-boolean operands");
  if (A->isTrue() || B->isTrue())
    return mkTrue();
  if (A->isFalse())
    return B;
  if (B->isFalse())
    return A;
  if (A == B)
    return A;
  // Nested disjunctions still flatten through the n-ary path.
  if (A->kind() == TermKind::Or || B->kind() == TermKind::Or)
    return mkOr(std::vector<const Term *>{A, B});
  const Term *Ops[2] = {A, B};
  if (TermIdLess()(Ops[1], Ops[0]))
    std::swap(Ops[0], Ops[1]);
  return intern(TermKind::Or, Sort::Bool, nullptr, Term::NoSymbol, Ops, 2);
}

const Term *TermManager::mkOr(std::vector<const Term *> Ops) {
  std::vector<const Term *> &Flat = ScratchOps;
  Flat.clear();
  for (const Term *Op : Ops) {
    assert(Op->isBool() && "Or over non-boolean operand");
    if (Op->isTrue())
      return mkTrue();
    if (Op->isFalse())
      continue;
    if (Op->kind() == TermKind::Or)
      Flat.insert(Flat.end(), Op->operands().begin(), Op->operands().end());
    else
      Flat.push_back(Op);
  }
  std::stable_sort(Flat.begin(), Flat.end(), TermIdLess());
  Flat.erase(std::unique(Flat.begin(), Flat.end()), Flat.end());
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  return intern(TermKind::Or, Sort::Bool, nullptr, Term::NoSymbol,
                Flat.data(), static_cast<uint32_t>(Flat.size()));
}

const Term *TermManager::mkIff(const Term *A, const Term *B) {
  if (A == B)
    return mkTrue();
  return mkAnd(mkImplies(A, B), mkImplies(B, A));
}

const Term *TermManager::mkForall(const Term *BoundVar, const Term *Body) {
  assert(BoundVar->isVar() && BoundVar->isInt() &&
         "quantified variable must be an integer variable");
  assert(Body->isBool() && "quantifier body must be a formula");
  if (Body->isTrue() || Body->isFalse())
    return Body;
  return intern(TermKind::Forall, Sort::Bool, nullptr, Term::NoSymbol,
                {BoundVar, Body});
}
