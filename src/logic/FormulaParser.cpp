//===- logic/FormulaParser.cpp - Infix formula parser --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/FormulaParser.h"

#include <cctype>

using namespace pathinv;

namespace {

enum class Tok : uint8_t {
  End,
  Int,
  Ident,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Dot,
  Plus,
  Minus,
  Star,
  Eq,      // = or ==
  Ne,      // !=
  Le,      // <=
  Lt,      // <
  Ge,      // >=
  Gt,      // >
  Not,     // !
  AndAnd,  // &&
  OrOr,    // ||
  Arrow,   // ->
  KwTrue,
  KwFalse,
  KwForall,
};

struct Token {
  Tok Kind = Tok::End;
  std::string Text;
  SourceLoc Loc;
};

class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  Expected<Token> next() {
    skipSpace();
    Token T;
    T.Loc = {Line, static_cast<unsigned>(Pos - LineStart + 1)};
    if (Pos >= Text.size()) {
      T.Kind = Tok::End;
      return T;
    }
    char C = Text[Pos];
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      T.Kind = Tok::Int;
      T.Text = std::string(Text.substr(Start, Pos - Start));
      return T;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_' || Text[Pos] == '\'' || Text[Pos] == '@' ||
              // Skolem/bound-variable decoration in engine-exported
              // certificates (e.g. `k$1_0` from the array fragment).
              Text[Pos] == '$' ||
              std::isdigit(static_cast<unsigned char>(Text[Pos]))))
        ++Pos;
      T.Text = std::string(Text.substr(Start, Pos - Start));
      if (T.Text == "true")
        T.Kind = Tok::KwTrue;
      else if (T.Text == "false")
        T.Kind = Tok::KwFalse;
      else if (T.Text == "forall")
        T.Kind = Tok::KwForall;
      else
        T.Kind = Tok::Ident;
      return T;
    }
    auto two = [&](char Second) {
      return Pos + 1 < Text.size() && Text[Pos + 1] == Second;
    };
    switch (C) {
    case '(':
      ++Pos;
      T.Kind = Tok::LParen;
      return T;
    case ')':
      ++Pos;
      T.Kind = Tok::RParen;
      return T;
    case '[':
      ++Pos;
      T.Kind = Tok::LBracket;
      return T;
    case ']':
      ++Pos;
      T.Kind = Tok::RBracket;
      return T;
    case ',':
      ++Pos;
      T.Kind = Tok::Comma;
      return T;
    case '.':
      ++Pos;
      T.Kind = Tok::Dot;
      return T;
    case '+':
      ++Pos;
      T.Kind = Tok::Plus;
      return T;
    case '-':
      if (two('>')) {
        Pos += 2;
        T.Kind = Tok::Arrow;
        return T;
      }
      ++Pos;
      T.Kind = Tok::Minus;
      return T;
    case '*':
      ++Pos;
      T.Kind = Tok::Star;
      return T;
    case '=':
      Pos += two('=') ? 2 : 1;
      T.Kind = Tok::Eq;
      return T;
    case '!':
      if (two('=')) {
        Pos += 2;
        T.Kind = Tok::Ne;
        return T;
      }
      ++Pos;
      T.Kind = Tok::Not;
      return T;
    case '<':
      if (two('=')) {
        Pos += 2;
        T.Kind = Tok::Le;
        return T;
      }
      ++Pos;
      T.Kind = Tok::Lt;
      return T;
    case '>':
      if (two('=')) {
        Pos += 2;
        T.Kind = Tok::Ge;
        return T;
      }
      ++Pos;
      T.Kind = Tok::Gt;
      return T;
    case '&':
      if (two('&')) {
        Pos += 2;
        T.Kind = Tok::AndAnd;
        return T;
      }
      break;
    case '|':
      if (two('|')) {
        Pos += 2;
        T.Kind = Tok::OrOr;
        return T;
      }
      break;
    default:
      break;
    }
    return Expected<Token>::makeError(
        std::string("unexpected character '") + C + "'", T.Loc);
  }

private:
  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else {
        break;
      }
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
};

/// Recursive-descent parser over the unified expression grammar; sorts are
/// checked as expressions are combined.
class Parser {
public:
  Parser(TermManager &TM, std::string_view Text, SortEnv &Env)
      : TM(TM), Lex(Text), Env(Env) {}

  Expected<const Term *> parseTop(bool WantBool) {
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    Expected<const Term *> Result = parseImplies();
    if (!Result)
      return Result;
    if (Cur.Kind != Tok::End)
      return err("trailing input after expression");
    const Term *T = Result.get();
    if (WantBool && !T->isBool())
      return err("expected a formula, found an arithmetic term");
    if (!WantBool && !T->isInt())
      return err("expected an integer term, found a formula");
    return T;
  }

private:
  Expected<const Term *> err(std::string Message) {
    return Expected<const Term *>::makeError(std::move(Message), Cur.Loc);
  }

  bool advance() {
    Expected<Token> T = Lex.next();
    if (!T) {
      ErrDiag = T.error();
      return false;
    }
    Cur = T.take();
    return true;
  }

  Expected<const Term *> parseImplies() {
    Expected<const Term *> Lhs = parseOr();
    if (!Lhs)
      return Lhs;
    if (Cur.Kind != Tok::Arrow)
      return Lhs;
    if (!Lhs.get()->isBool())
      return err("left operand of '->' must be a formula");
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    Expected<const Term *> Rhs = parseImplies(); // right-assoc
    if (!Rhs)
      return Rhs;
    if (!Rhs.get()->isBool())
      return err("right operand of '->' must be a formula");
    return TM.mkImplies(Lhs.get(), Rhs.get());
  }

  Expected<const Term *> parseOr() {
    Expected<const Term *> Lhs = parseAnd();
    if (!Lhs)
      return Lhs;
    while (Cur.Kind == Tok::OrOr) {
      if (!Lhs.get()->isBool())
        return err("operand of '||' must be a formula");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Rhs = parseAnd();
      if (!Rhs)
        return Rhs;
      if (!Rhs.get()->isBool())
        return err("operand of '||' must be a formula");
      Lhs = TM.mkOr(Lhs.get(), Rhs.get());
    }
    return Lhs;
  }

  Expected<const Term *> parseAnd() {
    Expected<const Term *> Lhs = parseRel();
    if (!Lhs)
      return Lhs;
    while (Cur.Kind == Tok::AndAnd) {
      if (!Lhs.get()->isBool())
        return err("operand of '&&' must be a formula");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Rhs = parseRel();
      if (!Rhs)
        return Rhs;
      if (!Rhs.get()->isBool())
        return err("operand of '&&' must be a formula");
      Lhs = TM.mkAnd(Lhs.get(), Rhs.get());
    }
    return Lhs;
  }

  Expected<const Term *> parseRel() {
    Expected<const Term *> Lhs = parseAdd();
    if (!Lhs)
      return Lhs;
    Tok Rel = Cur.Kind;
    if (Rel != Tok::Eq && Rel != Tok::Ne && Rel != Tok::Le &&
        Rel != Tok::Lt && Rel != Tok::Ge && Rel != Tok::Gt)
      return Lhs;
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    Expected<const Term *> Rhs = parseAdd();
    if (!Rhs)
      return Rhs;
    const Term *A = Lhs.get(), *B = Rhs.get();
    if (Rel == Tok::Eq || Rel == Tok::Ne) {
      if (A->sort() != B->sort())
        return err("equality over mismatched sorts");
    } else if (!A->isInt() || !B->isInt()) {
      return err("inequality over non-integer operands");
    }
    switch (Rel) {
    case Tok::Eq:
      return TM.mkEq(A, B);
    case Tok::Ne:
      return TM.mkNe(A, B);
    case Tok::Le:
      return TM.mkLe(A, B);
    case Tok::Lt:
      return TM.mkLt(A, B);
    case Tok::Ge:
      return TM.mkGe(A, B);
    case Tok::Gt:
      return TM.mkGt(A, B);
    default:
      break;
    }
    assert(false && "unreachable relation");
    return err("internal parser error");
  }

  Expected<const Term *> parseAdd() {
    Expected<const Term *> Lhs = parseMul();
    if (!Lhs)
      return Lhs;
    while (Cur.Kind == Tok::Plus || Cur.Kind == Tok::Minus) {
      bool IsMinus = Cur.Kind == Tok::Minus;
      if (!Lhs.get()->isInt())
        return err("operand of '+'/'-' must be an integer term");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Rhs = parseMul();
      if (!Rhs)
        return Rhs;
      if (!Rhs.get()->isInt())
        return err("operand of '+'/'-' must be an integer term");
      Lhs = IsMinus ? TM.mkSub(Lhs.get(), Rhs.get())
                    : TM.mkAdd(Lhs.get(), Rhs.get());
    }
    return Lhs;
  }

  Expected<const Term *> parseMul() {
    Expected<const Term *> Lhs = parseUnary();
    if (!Lhs)
      return Lhs;
    while (Cur.Kind == Tok::Star) {
      if (!Lhs.get()->isInt())
        return err("operand of '*' must be an integer term");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Rhs = parseUnary();
      if (!Rhs)
        return Rhs;
      if (!Rhs.get()->isInt())
        return err("operand of '*' must be an integer term");
      Lhs = TM.mkMul(Lhs.get(), Rhs.get());
    }
    return Lhs;
  }

  Expected<const Term *> parseUnary() {
    if (Cur.Kind == Tok::Minus) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Sub = parseUnary();
      if (!Sub)
        return Sub;
      if (!Sub.get()->isInt())
        return err("operand of unary '-' must be an integer term");
      return TM.mkNeg(Sub.get());
    }
    if (Cur.Kind == Tok::Not) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Sub = parseUnary();
      if (!Sub)
        return Sub;
      if (!Sub.get()->isBool())
        return err("operand of '!' must be a formula");
      return TM.mkNot(Sub.get());
    }
    if (Cur.Kind == Tok::KwForall)
      return parseForall();
    return parsePostfix();
  }

  Expected<const Term *> parseForall() {
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    if (Cur.Kind != Tok::Ident)
      return err("expected bound variable after 'forall'");
    std::string Name = Cur.Text;
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    if (Cur.Kind != Tok::Dot)
      return err("expected '.' after quantified variable");
    if (!advance())
      return Expected<const Term *>(ErrDiag);
    // The bound variable shadows any same-named entry while parsing the body.
    auto Saved = Env.find(Name) != Env.end()
                     ? std::optional<Sort>(Env[Name])
                     : std::nullopt;
    Env[Name] = Sort::Int;
    Expected<const Term *> Body = parseImplies();
    if (Saved)
      Env[Name] = *Saved;
    else
      Env.erase(Name);
    if (!Body)
      return Body;
    if (!Body.get()->isBool())
      return err("quantifier body must be a formula");
    return TM.mkForall(TM.mkVar(Name, Sort::Int), Body.get());
  }

  Expected<const Term *> parsePostfix() {
    if (Cur.Kind == Tok::Int) {
      BigInt Value;
      if (!BigInt::fromString(Cur.Text, Value))
        return err("malformed integer literal '" + Cur.Text + "'");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkIntConst(Rational(std::move(Value)));
    }
    if (Cur.Kind == Tok::KwTrue) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkTrue();
    }
    if (Cur.Kind == Tok::KwFalse) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkFalse();
    }
    if (Cur.Kind == Tok::LParen) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Inner = parseImplies();
      if (!Inner)
        return Inner;
      if (Cur.Kind != Tok::RParen)
        return err("expected ')'");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return Inner;
    }
    if (Cur.Kind != Tok::Ident)
      return err("expected an identifier, literal, or '('");

    std::string Name = Cur.Text;
    if (!advance())
      return Expected<const Term *>(ErrDiag);

    // Array indexing: `name[index]`, possibly repeated via stores later.
    if (Cur.Kind == Tok::LBracket) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      Expected<const Term *> Index = parseAdd();
      if (!Index)
        return Index;
      if (!Index.get()->isInt())
        return err("array index must be an integer term");
      if (Cur.Kind != Tok::RBracket)
        return err("expected ']'");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      auto [It, Inserted] = Env.try_emplace(Name, Sort::ArrayIntInt);
      if (!Inserted && It->second != Sort::ArrayIntInt)
        return err("identifier '" + Name + "' is not an array");
      return TM.mkSelect(TM.mkVar(Name, Sort::ArrayIntInt), Index.get());
    }

    // Function application: `name(args)`.
    if (Cur.Kind == Tok::LParen) {
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      std::vector<const Term *> Args;
      if (Cur.Kind != Tok::RParen) {
        while (true) {
          Expected<const Term *> Arg = parseAdd();
          if (!Arg)
            return Arg;
          Args.push_back(Arg.get());
          if (Cur.Kind != Tok::Comma)
            break;
          if (!advance())
            return Expected<const Term *>(ErrDiag);
        }
      }
      if (Cur.Kind != Tok::RParen)
        return err("expected ')' after function arguments");
      if (!advance())
        return Expected<const Term *>(ErrDiag);
      return TM.mkApply(Name, std::move(Args), Sort::Int);
    }

    // Plain variable.
    auto [It, Inserted] = Env.try_emplace(Name, Sort::Int);
    return TM.mkVar(Name, It->second);
  }

  TermManager &TM;
  Lexer Lex;
  SortEnv &Env;
  Token Cur;
  Diag ErrDiag;
};

} // namespace

Expected<const Term *> pathinv::parseFormula(TermManager &TM,
                                             std::string_view Text,
                                             SortEnv &Env) {
  Parser P(TM, Text, Env);
  return P.parseTop(/*WantBool=*/true);
}

Expected<const Term *> pathinv::parseFormula(TermManager &TM,
                                             std::string_view Text) {
  SortEnv Env;
  return parseFormula(TM, Text, Env);
}

Expected<const Term *> pathinv::parseIntTerm(TermManager &TM,
                                             std::string_view Text,
                                             SortEnv &Env) {
  Parser P(TM, Text, Env);
  return P.parseTop(/*WantBool=*/false);
}
