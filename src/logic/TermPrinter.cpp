//===- logic/TermPrinter.cpp - Human-readable term rendering -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/TermPrinter.h"

using namespace pathinv;

namespace {

// Precedence levels, loosest to tightest. A child is parenthesized when its
// level is strictly looser than its context requires.
enum Prec : int {
  PrecForall = 0,
  PrecOr = 1,
  PrecAnd = 2,
  PrecNot = 3,
  PrecRel = 4,
  PrecAdd = 5,
  PrecMul = 6,
  PrecUnary = 7,
  PrecPrimary = 8,
};

int termPrec(const Term *T) {
  switch (T->kind()) {
  case TermKind::Forall:
    return PrecForall;
  case TermKind::Or:
    return PrecOr;
  case TermKind::And:
    return PrecAnd;
  case TermKind::Not:
    return PrecNot;
  case TermKind::Eq:
  case TermKind::Le:
  case TermKind::Lt:
    return PrecRel;
  case TermKind::Add:
    return PrecAdd;
  case TermKind::Mul:
    return PrecMul;
  default:
    return PrecPrimary;
  }
}

void print(const Term *T, int Context, std::string &Out);

void printParen(const Term *T, int Context, std::string &Out) {
  bool Paren = termPrec(T) < Context;
  if (Paren)
    Out += "(";
  print(T, Paren ? PrecForall : Context, Out);
  if (Paren)
    Out += ")";
}

void printNary(const Term *T, const char *Sep, int ChildPrec,
               std::string &Out) {
  bool First = true;
  for (const Term *Op : T->operands()) {
    if (!First)
      Out += Sep;
    First = false;
    printParen(Op, ChildPrec, Out);
  }
}

void print(const Term *T, int Context, std::string &Out) {
  switch (T->kind()) {
  case TermKind::IntConst:
    if (T->value().isNegative() && Context > PrecAdd) {
      Out += "(" + T->value().toString() + ")";
    } else {
      Out += T->value().toString();
    }
    return;
  case TermKind::Var:
    Out += T->name();
    return;
  case TermKind::Add: {
    bool First = true;
    for (const Term *Op : T->operands()) {
      // Render negative summands with a minus sign.
      Rational Coeff(1);
      const Term *Body = Op;
      if (Op->kind() == TermKind::Mul && Op->operand(0)->isIntConst()) {
        Coeff = Op->operand(0)->value();
        Body = Op->operand(1);
      } else if (Op->isIntConst()) {
        Coeff = Op->value();
        Body = nullptr;
      }
      bool Negative = Coeff.isNegative();
      if (First)
        Out += Negative ? "-" : "";
      else
        Out += Negative ? " - " : " + ";
      First = false;
      Rational AbsCoeff = Coeff.abs();
      if (!Body) {
        Out += AbsCoeff.toString();
        continue;
      }
      if (!AbsCoeff.isOne())
        Out += AbsCoeff.toString() + "*";
      printParen(Body, PrecMul + 1, Out);
    }
    return;
  }
  case TermKind::Mul:
    printParen(T->operand(0), PrecMul, Out);
    Out += "*";
    printParen(T->operand(1), PrecMul + 1, Out);
    return;
  case TermKind::Select:
    printParen(T->operand(0), PrecPrimary, Out);
    Out += "[";
    print(T->operand(1), PrecForall, Out);
    Out += "]";
    return;
  case TermKind::Store:
    printParen(T->operand(0), PrecPrimary, Out);
    Out += "{";
    print(T->operand(1), PrecForall, Out);
    Out += " := ";
    print(T->operand(2), PrecForall, Out);
    Out += "}";
    return;
  case TermKind::Apply: {
    Out += T->name();
    Out += "(";
    bool First = true;
    for (const Term *Op : T->operands()) {
      if (!First)
        Out += ", ";
      First = false;
      print(Op, PrecForall, Out);
    }
    Out += ")";
    return;
  }
  case TermKind::Eq:
    printParen(T->operand(0), PrecAdd, Out);
    Out += " = ";
    printParen(T->operand(1), PrecAdd, Out);
    return;
  case TermKind::Le:
    printParen(T->operand(0), PrecAdd, Out);
    Out += " <= ";
    printParen(T->operand(1), PrecAdd, Out);
    return;
  case TermKind::Lt:
    printParen(T->operand(0), PrecAdd, Out);
    Out += " < ";
    printParen(T->operand(1), PrecAdd, Out);
    return;
  case TermKind::True:
    Out += "true";
    return;
  case TermKind::False:
    Out += "false";
    return;
  case TermKind::Not:
    // Render !(a = b) as a != b.
    if (T->operand(0)->kind() == TermKind::Eq) {
      const Term *Eq = T->operand(0);
      printParen(Eq->operand(0), PrecAdd, Out);
      Out += " != ";
      printParen(Eq->operand(1), PrecAdd, Out);
      return;
    }
    Out += "!";
    printParen(T->operand(0), PrecNot, Out);
    return;
  case TermKind::And:
    printNary(T, " && ", PrecAnd + 1, Out);
    return;
  case TermKind::Or:
    printNary(T, " || ", PrecOr + 1, Out);
    return;
  case TermKind::Forall:
    Out += "forall ";
    Out += T->operand(0)->name();
    Out += ". ";
    print(T->operand(1), PrecForall, Out);
    return;
  }
  assert(false && "unknown term kind");
}

} // namespace

std::string pathinv::printTerm(const Term *T) {
  std::string Out;
  print(T, PrecForall, Out);
  return Out;
}
