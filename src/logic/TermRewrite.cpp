//===- logic/TermRewrite.cpp - Substitution and term traversal -----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/TermRewrite.h"

using namespace pathinv;

namespace {

/// Memoized bottom-up rewriter. Rebuild() is applied to leaves; interior
/// nodes are reconstructed through TermManager so simplifications re-fire.
class Rewriter {
public:
  Rewriter(TermManager &TM,
           std::function<const Term *(const Term *)> RewriteLeaf)
      : TM(TM), RewriteLeaf(std::move(RewriteLeaf)) {}

  const Term *visit(const Term *T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    const Term *Result = visitUncached(T);
    Cache[T] = Result;
    return Result;
  }

private:
  const Term *visitUncached(const Term *T) {
    // Give the callback first shot at any node (enables whole-subterm
    // substitution, e.g. replacing a[i] by a fresh variable).
    if (const Term *Replacement = RewriteLeaf(T))
      return Replacement;

    switch (T->kind()) {
    case TermKind::IntConst:
    case TermKind::Var:
    case TermKind::True:
    case TermKind::False:
      return T;
    case TermKind::Forall: {
      // The bound variable shadows rewrites of itself inside the body.
      const Term *Bound = T->operand(0);
      Rewriter Inner(TM, [&](const Term *Sub) -> const Term * {
        if (Sub == Bound)
          return Bound;
        return RewriteLeaf(Sub);
      });
      const Term *NewBody = Inner.visit(T->operand(1));
      if (NewBody == T->operand(1))
        return T;
      return TM.mkForall(Bound, NewBody);
    }
    default:
      break;
    }

    std::vector<const Term *> NewOps;
    NewOps.reserve(T->numOperands());
    bool Changed = false;
    for (const Term *Op : T->operands()) {
      const Term *NewOp = visit(Op);
      Changed |= NewOp != Op;
      NewOps.push_back(NewOp);
    }
    if (!Changed)
      return T;
    return rebuild(T, std::move(NewOps));
  }

  const Term *rebuild(const Term *T, std::vector<const Term *> Ops) {
    switch (T->kind()) {
    case TermKind::Add:
      return TM.mkAdd(std::move(Ops));
    case TermKind::Mul:
      return TM.mkMul(Ops[0], Ops[1]);
    case TermKind::Select:
      return TM.mkSelect(Ops[0], Ops[1]);
    case TermKind::Store:
      return TM.mkStore(Ops[0], Ops[1], Ops[2]);
    case TermKind::Apply:
      return TM.mkApply(T->name(), std::move(Ops), T->sort());
    case TermKind::Eq:
      return TM.mkEq(Ops[0], Ops[1]);
    case TermKind::Le:
      return TM.mkLe(Ops[0], Ops[1]);
    case TermKind::Lt:
      return TM.mkLt(Ops[0], Ops[1]);
    case TermKind::Not:
      return TM.mkNot(Ops[0]);
    case TermKind::And:
      return TM.mkAnd(std::move(Ops));
    case TermKind::Or:
      return TM.mkOr(std::move(Ops));
    default:
      assert(false && "unexpected term kind in rebuild");
      return T;
    }
  }

  TermManager &TM;
  std::function<const Term *(const Term *)> RewriteLeaf;
  std::map<const Term *, const Term *, TermIdLess> Cache;
};

} // namespace

const Term *pathinv::substitute(TermManager &TM, const Term *T,
                                const TermMap &Subst) {
  if (Subst.empty())
    return T;
  Rewriter R(TM, [&Subst](const Term *Node) -> const Term * {
    auto It = Subst.find(Node);
    return It == Subst.end() ? nullptr : It->second;
  });
  return R.visit(T);
}

const Term *pathinv::renameVars(
    TermManager &TM, const Term *T,
    const std::function<const Term *(const Term *)> &Rename) {
  Rewriter R(TM, [&Rename](const Term *Node) -> const Term * {
    if (!Node->isVar())
      return nullptr;
    return Rename(Node);
  });
  return R.visit(T);
}

namespace {

/// Generic traversal collecting nodes matching a predicate; tracks bound
/// variables so they can be excluded from free-variable collection.
void traverse(const Term *T, TermSet &Bound,
              const std::function<void(const Term *, const TermSet &)> &Fn) {
  Fn(T, Bound);
  if (T->kind() == TermKind::Forall) {
    const Term *Var = T->operand(0);
    bool Inserted = Bound.insert(Var).second;
    traverse(T->operand(1), Bound, Fn);
    if (Inserted)
      Bound.erase(Var);
    return;
  }
  for (const Term *Op : T->operands())
    traverse(Op, Bound, Fn);
}

} // namespace

void pathinv::collectFreeVars(const Term *T, TermSet &Out) {
  TermSet Bound;
  traverse(T, Bound, [&Out](const Term *Node, const TermSet &BoundNow) {
    if (Node->isVar() && !BoundNow.count(Node))
      Out.insert(Node);
  });
}

void pathinv::collectAtoms(const Term *T, TermSet &Out) {
  TermSet Bound;
  traverse(T, Bound, [&Out](const Term *Node, const TermSet &) {
    if (Node->isAtom())
      Out.insert(Node);
  });
}

void pathinv::collectSelects(const Term *T, TermSet &Out) {
  TermSet Bound;
  traverse(T, Bound, [&Out](const Term *Node, const TermSet &) {
    if (Node->kind() == TermKind::Select)
      Out.insert(Node);
  });
}

bool pathinv::containsQuantifier(const Term *T) {
  if (T->kind() == TermKind::Forall)
    return true;
  for (const Term *Op : T->operands())
    if (containsQuantifier(Op))
      return true;
  return false;
}

bool pathinv::containsStore(const Term *T) {
  if (T->kind() == TermKind::Store)
    return true;
  for (const Term *Op : T->operands())
    if (containsStore(Op))
      return true;
  return false;
}

void pathinv::flattenConjuncts(const Term *T, std::vector<const Term *> &Out) {
  if (T->kind() == TermKind::And) {
    for (const Term *Op : T->operands())
      flattenConjuncts(Op, Out);
    return;
  }
  if (T->isTrue())
    return;
  Out.push_back(T);
}
