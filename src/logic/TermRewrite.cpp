//===- logic/TermRewrite.cpp - Substitution and term traversal -----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/TermRewrite.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace pathinv;

namespace {

/// Flat open-addressing map from term id to rewritten term: one backing
/// allocation total, no per-entry nodes (a node-based map would pay one
/// heap allocation per visited subterm).
class IdResultCache {
public:
  const Term *lookup(uint32_t Id) const {
    size_t Mask = Slots.size() - 1;
    for (size_t Idx = hashId(Id) & Mask;; Idx = (Idx + 1) & Mask) {
      const Slot &S = Slots[Idx];
      if (!S.Used)
        return nullptr;
      if (S.Id == Id)
        return S.Result;
    }
  }

  void insert(uint32_t Id, const Term *Result) {
    if ((Count + 1) * 4 >= Slots.size() * 3)
      grow();
    insertNoGrow(Id, Result);
    ++Count;
  }

private:
  struct Slot {
    uint32_t Id = 0;
    bool Used = false;
    const Term *Result = nullptr;
  };

  static size_t hashId(uint32_t Id) { return Id * 2654435761u; }

  void insertNoGrow(uint32_t Id, const Term *Result) {
    size_t Mask = Slots.size() - 1;
    size_t Idx = hashId(Id) & Mask;
    while (Slots[Idx].Used)
      Idx = (Idx + 1) & Mask;
    Slots[Idx] = {Id, true, Result};
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.empty() ? 64 : Old.size() * 2, Slot());
    for (const Slot &S : Old)
      if (S.Used)
        insertNoGrow(S.Id, S.Result);
  }

  std::vector<Slot> Slots = std::vector<Slot>(64);
  size_t Count = 0;
};

/// Memoized bottom-up rewriter. Rebuild() is applied to leaves; interior
/// nodes are reconstructed through TermManager so simplifications re-fire.
/// The memo is keyed by term id (dense, hash-free to compare) so repeated
/// shared subterms — the common case in hash-consed path formulas — are
/// rewritten once. Templated over the callback so per-node dispatch is a
/// direct call, not a std::function indirection.
template <typename LeafFn> class Rewriter {
public:
  Rewriter(TermManager &TM, LeafFn RewriteLeaf)
      : TM(TM), RewriteLeaf(std::move(RewriteLeaf)) {}

  const Term *visit(const Term *T) {
    if (const Term *Hit = Cache.lookup(T->id()))
      return Hit;
    const Term *Result = visitUncached(T);
    Cache.insert(T->id(), Result);
    return Result;
  }

private:
  const Term *visitUncached(const Term *T) {
    // Give the callback first shot at any node (enables whole-subterm
    // substitution, e.g. replacing a[i] by a fresh variable).
    if (const Term *Replacement = RewriteLeaf(T))
      return Replacement;

    switch (T->kind()) {
    case TermKind::IntConst:
    case TermKind::Var:
    case TermKind::True:
    case TermKind::False:
      return T;
    case TermKind::Forall: {
      // The bound variable shadows rewrites of itself inside the body.
      // Type-erase at the binder boundary so the template recursion stays
      // finite; quantifiers are rare enough that the indirection is noise.
      const Term *Bound = T->operand(0);
      Rewriter<std::function<const Term *(const Term *)>> Inner(
          TM, [this, Bound](const Term *Sub) -> const Term * {
            if (Sub == Bound)
              return Bound;
            return RewriteLeaf(Sub);
          });
      const Term *NewBody = Inner.visit(T->operand(1));
      if (NewBody == T->operand(1))
        return T;
      return TM.mkForall(Bound, NewBody);
    }
    default:
      break;
    }

    std::vector<const Term *> NewOps;
    NewOps.reserve(T->numOperands());
    bool Changed = false;
    for (const Term *Op : T->operands()) {
      const Term *NewOp = visit(Op);
      Changed |= NewOp != Op;
      NewOps.push_back(NewOp);
    }
    if (!Changed)
      return T;
    return rebuild(T, std::move(NewOps));
  }

  const Term *rebuild(const Term *T, std::vector<const Term *> Ops) {
    switch (T->kind()) {
    case TermKind::Add:
      return TM.mkAdd(std::move(Ops));
    case TermKind::Mul:
      return TM.mkMul(Ops[0], Ops[1]);
    case TermKind::Select:
      return TM.mkSelect(Ops[0], Ops[1]);
    case TermKind::Store:
      return TM.mkStore(Ops[0], Ops[1], Ops[2]);
    case TermKind::Apply:
      return TM.mkApply(T->name(), std::move(Ops), T->sort());
    case TermKind::Eq:
      return TM.mkEq(Ops[0], Ops[1]);
    case TermKind::Le:
      return TM.mkLe(Ops[0], Ops[1]);
    case TermKind::Lt:
      return TM.mkLt(Ops[0], Ops[1]);
    case TermKind::Not:
      return TM.mkNot(Ops[0]);
    case TermKind::And:
      return TM.mkAnd(std::move(Ops));
    case TermKind::Or:
      return TM.mkOr(std::move(Ops));
    default:
      assert(false && "unexpected term kind in rebuild");
      return T;
    }
  }

  TermManager &TM;
  LeafFn RewriteLeaf;
  IdResultCache Cache;
};

template <typename LeafFn>
const Term *rewriteWith(TermManager &TM, const Term *T, LeafFn Fn) {
  Rewriter<LeafFn> R(TM, std::move(Fn));
  return R.visit(T);
}

} // namespace

const Term *pathinv::substitute(TermManager &TM, const Term *T,
                                const TermMap &Subst) {
  if (Subst.empty())
    return T;
  // Re-key the substitution into a flat id-sorted array once (TermMap is
  // already id-ordered), so the per-node probe during the traversal is a
  // binary search over packed u32 keys instead of an ordered-map walk.
  std::vector<std::pair<uint32_t, const Term *>> ById;
  ById.reserve(Subst.size());
  for (const auto &[Key, Image] : Subst)
    ById.emplace_back(Key->id(), Image);
  return rewriteWith(TM, T, [&ById](const Term *Node) -> const Term * {
    auto It = std::lower_bound(
        ById.begin(), ById.end(), Node->id(),
        [](const auto &Entry, uint32_t Id) { return Entry.first < Id; });
    return It != ById.end() && It->first == Node->id() ? It->second
                                                       : nullptr;
  });
}

const Term *pathinv::renameVars(
    TermManager &TM, const Term *T,
    const std::function<const Term *(const Term *)> &Rename) {
  return rewriteWith(TM, T, [&Rename](const Term *Node) -> const Term * {
    if (!Node->isVar())
      return nullptr;
    return Rename(Node);
  });
}

void pathinv::collectFreeVars(const Term *T, TermSet &Out) {
  // The per-node free-variable sets are memoized by the owning manager.
  const std::vector<const Term *> &Vars = T->manager().freeVarsOf(T);
  Out.insert(Vars.begin(), Vars.end());
}

namespace {

/// DAG-aware traversal: each distinct subterm is visited once (the match
/// predicates below are context-free, so shared subterms need no revisit).
template <typename Fn> void visitOnce(const Term *Root, const Fn &Visit) {
  std::unordered_set<uint32_t> Seen;
  std::vector<const Term *> Stack{Root};
  while (!Stack.empty()) {
    const Term *T = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(T->id()).second)
      continue;
    Visit(T);
    for (const Term *Op : T->operands())
      Stack.push_back(Op);
  }
}

} // namespace

void pathinv::collectAtoms(const Term *T, TermSet &Out) {
  visitOnce(T, [&Out](const Term *Node) {
    if (Node->isAtom())
      Out.insert(Node);
  });
}

void pathinv::collectSelects(const Term *T, TermSet &Out) {
  visitOnce(T, [&Out](const Term *Node) {
    if (Node->kind() == TermKind::Select)
      Out.insert(Node);
  });
}

bool pathinv::containsQuantifier(const Term *T) {
  // O(1): the flag is computed from the operands' flags at intern time.
  return T->containsForall();
}

bool pathinv::containsStore(const Term *T) { return T->containsArrayStore(); }

size_t pathinv::termDagSize(const Term *T) {
  size_t Count = 0;
  visitOnce(T, [&Count](const Term *) { ++Count; });
  return Count;
}

void pathinv::flattenConjuncts(const Term *T, std::vector<const Term *> &Out) {
  if (T->kind() == TermKind::And) {
    for (const Term *Op : T->operands())
      flattenConjuncts(Op, Out);
    return;
  }
  if (T->isTrue())
    return;
  Out.push_back(T);
}

bool pathinv::isLiteralConjunction(const Term *T,
                                   std::vector<const Term *> &Literals) {
  flattenConjuncts(T, Literals);
  for (const Term *C : Literals)
    if (!C->isLiteral() && !C->isTrue() && !C->isFalse())
      return false;
  return true;
}
