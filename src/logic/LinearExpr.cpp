//===- logic/LinearExpr.cpp - Linear normal form for terms ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "logic/LinearExpr.h"

using namespace pathinv;

std::optional<LinearExpr> LinearExpr::fromTerm(const Term *T) {
  assert(T->isInt() && "linearizing a non-integer term");
  switch (T->kind()) {
  case TermKind::IntConst:
    return LinearExpr(T->value());
  case TermKind::Var:
  case TermKind::Select:
  case TermKind::Apply:
    return LinearExpr::atom(T);
  case TermKind::Add: {
    LinearExpr Result;
    for (const Term *Op : T->operands()) {
      std::optional<LinearExpr> Sub = fromTerm(Op);
      if (!Sub)
        return std::nullopt;
      Result.add(*Sub);
    }
    return Result;
  }
  case TermKind::Mul: {
    std::optional<LinearExpr> A = fromTerm(T->operand(0));
    std::optional<LinearExpr> B = fromTerm(T->operand(1));
    if (!A || !B)
      return std::nullopt;
    if (A->isConstant()) {
      B->scale(A->constant());
      return B;
    }
    if (B->isConstant()) {
      A->scale(B->constant());
      return A;
    }
    return std::nullopt; // Non-linear product.
  }
  default:
    return std::nullopt;
  }
}

Rational LinearExpr::coefficientOf(const Term *Atom) const {
  auto It = Coeffs.find(Atom);
  return It == Coeffs.end() ? Rational() : It->second;
}

void LinearExpr::addTerm(const Term *Atom, const Rational &Coeff) {
  if (Coeff.isZero())
    return;
  auto [It, Inserted] = Coeffs.try_emplace(Atom, Coeff);
  if (!Inserted) {
    It->second += Coeff;
    if (It->second.isZero())
      Coeffs.erase(It);
  }
}

void LinearExpr::add(const LinearExpr &RHS) {
  Constant += RHS.Constant;
  for (const auto &[Atom, Coeff] : RHS.Coeffs)
    addTerm(Atom, Coeff);
}

void LinearExpr::sub(const LinearExpr &RHS) {
  Constant -= RHS.Constant;
  for (const auto &[Atom, Coeff] : RHS.Coeffs)
    addTerm(Atom, -Coeff);
}

void LinearExpr::scale(const Rational &Factor) {
  if (Factor.isZero()) {
    Constant = Rational();
    Coeffs.clear();
    return;
  }
  Constant *= Factor;
  for (auto &[Atom, Coeff] : Coeffs)
    Coeff *= Factor;
}

LinearExpr LinearExpr::operator+(const LinearExpr &RHS) const {
  LinearExpr Result = *this;
  Result.add(RHS);
  return Result;
}

LinearExpr LinearExpr::operator-(const LinearExpr &RHS) const {
  LinearExpr Result = *this;
  Result.sub(RHS);
  return Result;
}

LinearExpr LinearExpr::operator*(const Rational &Factor) const {
  LinearExpr Result = *this;
  Result.scale(Factor);
  return Result;
}

const Term *LinearExpr::toTerm(TermManager &TM) const {
  std::vector<const Term *> Summands;
  for (const auto &[Atom, Coeff] : Coeffs)
    Summands.push_back(TM.mkMul(TM.mkIntConst(Coeff), Atom));
  if (!Constant.isZero() || Summands.empty())
    Summands.push_back(TM.mkIntConst(Constant));
  return TM.mkAdd(std::move(Summands));
}

std::string LinearExpr::toString() const {
  std::string Result;
  bool First = true;
  for (const auto &[Atom, Coeff] : Coeffs) {
    if (!First)
      Result += Coeff.isNegative() ? " - " : " + ";
    else if (Coeff.isNegative())
      Result += "-";
    First = false;
    Rational AbsCoeff = Coeff.abs();
    if (!AbsCoeff.isOne())
      Result += AbsCoeff.toString() + "*";
    Result += "#" + std::to_string(Atom->id());
  }
  if (!Constant.isZero() || First) {
    if (!First)
      Result += Constant.isNegative() ? " - " : " + ";
    else if (Constant.isNegative())
      Result += "-";
    Result += Constant.abs().toString();
  }
  return Result;
}

LinearExpr pathinv::normalizeToIntegral(LinearExpr L) {
  // Common denominator.
  BigInt Lcm(1);
  for (const auto &[Atom, Coeff] : L.coefficients())
    Lcm = BigInt::lcm(Lcm, Coeff.denominator());
  Lcm = BigInt::lcm(Lcm, L.constant().denominator());
  L.scale(Rational(Lcm));
  // Common factor.
  BigInt Gcd;
  for (const auto &[Atom, Coeff] : L.coefficients())
    Gcd = BigInt::gcd(Gcd, Coeff.numerator());
  Gcd = BigInt::gcd(Gcd, L.constant().numerator());
  if (!Gcd.isZero() && !Gcd.isOne())
    L.scale(Rational(BigInt(1), Gcd));
  return L;
}

const Term *pathinv::mkCanonicalAtom(TermManager &TM, LinearExpr L,
                                     RelKind Rel) {
  L = normalizeToIntegral(std::move(L));
  if (L.isConstant()) {
    switch (Rel) {
    case RelKind::Eq:
      return TM.mkBool(L.constant().isZero());
    case RelKind::Le:
      return TM.mkBool(!L.constant().isPositive());
    case RelKind::Lt:
      return TM.mkBool(L.constant().isNegative());
    }
  }
  if (Rel == RelKind::Eq && L.coefficients().begin()->second.isNegative())
    L.scale(Rational(-1));
  // Split into LHS (positive coefficients) and RHS (negated negative ones)
  // so the rendered atom reads naturally, with the constant on the RHS.
  LinearExpr Lhs, Rhs;
  for (const auto &[Atom, Coeff] : L.coefficients()) {
    if (Coeff.isPositive())
      Lhs.addTerm(Atom, Coeff);
    else
      Rhs.addTerm(Atom, -Coeff);
  }
  Rhs.addConstant(-L.constant());
  const Term *LhsT = Lhs.toTerm(TM);
  const Term *RhsT = Rhs.toTerm(TM);
  switch (Rel) {
  case RelKind::Eq:
    return TM.mkEq(LhsT, RhsT);
  case RelKind::Le:
    return TM.mkLe(LhsT, RhsT);
  case RelKind::Lt:
    return TM.mkLt(LhsT, RhsT);
  }
  assert(false && "unknown relation");
  return TM.mkTrue();
}

const Term *LinearAtom::toTerm(TermManager &TM) const {
  return mkCanonicalAtom(TM, Expr, Rel);
}

std::string LinearAtom::toString() const {
  const char *RelName = Rel == RelKind::Eq ? " = 0"
                        : Rel == RelKind::Le ? " <= 0"
                                             : " < 0";
  return Expr.toString() + RelName;
}

namespace {

std::optional<LinearAtom> decomposeAtomUncached(const Term *Atom) {
  const Term *A = Atom->operand(0);
  const Term *B = Atom->operand(1);
  if (!A->isInt() || !B->isInt())
    return std::nullopt; // Array equality etc.
  std::optional<LinearExpr> LhsE = LinearExpr::fromTerm(A);
  std::optional<LinearExpr> RhsE = LinearExpr::fromTerm(B);
  if (!LhsE || !RhsE)
    return std::nullopt;
  LinearAtom Result;
  Result.Expr = *LhsE - *RhsE;
  switch (Atom->kind()) {
  case TermKind::Eq:
    Result.Rel = RelKind::Eq;
    break;
  case TermKind::Le:
    Result.Rel = RelKind::Le;
    break;
  case TermKind::Lt:
    Result.Rel = RelKind::Lt;
    break;
  default:
    return std::nullopt;
  }
  return Result;
}

} // namespace

std::optional<LinearAtom> pathinv::decomposeAtom(const Term *Atom) {
  if (!Atom->isAtom())
    return std::nullopt;
  // Farkas constraint generation and the theory solver re-normalize the
  // same atoms on every query; memoize the decomposition per term in the
  // owning manager so repeats are a lookup plus a copy.
  TermManager &TM = Atom->manager();
  if (void *Hit = TM.atomMemoGet(Atom->id()))
    return *static_cast<std::optional<LinearAtom> *>(Hit);
  std::optional<LinearAtom> Result = decomposeAtomUncached(Atom);
  auto *Boxed = new std::optional<LinearAtom>(Result);
  TM.atomMemoSet(Atom->id(), Boxed, [](void *Ptr) {
    delete static_cast<std::optional<LinearAtom> *>(Ptr);
  });
  return Result;
}
