//===- synth/Learn.h - Conflict learning for the synthesis search -*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The learning state of the bilinear synthesis search: a canonical
/// fingerprint scheme for multiplier/template combos, a persistent
/// feasibility cache keyed by those fingerprints, and the counters that
/// surface the learning work in `--stats`.
///
/// Fingerprints rename unknowns in first-occurrence order, so a combo's
/// identity is independent of the pool that produced it. That is what
/// makes the cache *cross-scope*: every template level allocates a fresh
/// UnknownPool, and every engine restart re-generates the conditions from
/// scratch, yet the analogous combo fingerprints identically — an LP
/// verdict computed once is reused across levels, alternatives, Farkas
/// scopes, and whole search restarts.
///
/// Full renaming is sound only for *isolated* questions — "is this
/// constraint set feasible on its own?" is invariant under any
/// kind-preserving bijection of unknown ids. Questions that relate a
/// combo to the rest of the condition system are not: `a >= 1` and
/// `b >= 1` are different constraints over the shared parameters even
/// though they serialize identically under first-occurrence renaming.
/// hashCombo() therefore canonicalizes only the alternative-private
/// Farkas multipliers and keeps every shared unknown at its raw pool id
/// — exactly the equivalence under which two combos of one condition
/// are interchangeable choices, and a refinement of the
/// renaming-invariant identity, so one key soundly serves both the
/// within-condition dedup and the verdict cache.
///
/// The leaf-level keys are 128-bit canonical hashes, not strings: the
/// enumeration decides tens of thousands of leaves per search, and
/// building a heap string per leaf was the single largest cold-path
/// cost of learning (~35us a leaf). A collision — two distinct combos
/// agreeing on both independently-mixed 64-bit halves — would wrongly
/// merge two combos; at ~1e5 leaves per job the birthday bound puts
/// that below 1e-28 per job for the non-adversarial, generator-produced
/// inputs this search hashes, orders of magnitude under the machine's
/// own undetected-bit-flip rate, and the learning-vs-reference
/// differential in CI is the behavioral backstop. Trie edges and
/// prepared-condition keys stay full strings: there are few of them,
/// and each is built once per node, not once per leaf.
///
/// The branch cache extends the same idea from single combos to search
/// prefixes: a trie whose edges are combo serializations under one
/// renaming shared along the branch (root edge: the cut rows), so a
/// trie node *is* a canonical search prefix and carries the joint LP
/// verdict of asserting it. A repeated search — an engine restart, the
/// next CEGAR round, a warmed benchmark iteration — replays its dfs
/// without re-running the simplex, and a cold search pays only the
/// candidate's own serialization per step, never the whole prefix.
/// Full renaming is sound again here, because a node covers the entire
/// constraint system its verdict is about.
///
/// The prepared-condition cache removes the remaining warm-run cost:
/// enumerating a condition's multiplier combos is a pure function of its
/// alternatives' Farkas encodings (raw ids *and* kinds — a Multiplier
/// carries an implicit sign bound — plus the enumeration bound), so the
/// surviving combos are memoized under exactly that key, with no
/// renaming at all: a hit guarantees the pool minted identical ids, so
/// the stored constraints are valid verbatim. The entry also records how
/// many leaf decisions the original enumeration made; a restore
/// re-charges that many budget units, keeping a warmed search bounded by
/// the same governance as a cold one.
///
/// Run-local nogoods (sets of combo choices refuted together by a simplex
/// core) live in the search itself — they index prepared combos of one
/// solveConditions call — but their counts are reported here so all four
/// learning counters travel together.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_LEARN_H
#define PATHINV_SYNTH_LEARN_H

#include "synth/Poly.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

namespace pathinv {

/// 128-bit canonical combo fingerprint: two independently-mixed 64-bit
/// halves over the same canonical word stream. See the file comment for
/// the collision argument.
struct ComboFp {
  uint64_t Hi = 0;
  uint64_t Lo = 0;
  bool operator==(const ComboFp &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
};

struct ComboFpHash {
  size_t operator()(const ComboFp &F) const {
    return static_cast<size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streams 64-bit words into the two halves of a ComboFp. The mixes are
/// structurally different (a hash_combine-style accumulator and a
/// multiply-xorshift), so a joint collision needs both to collide on
/// the same pair of streams.
class ComboHasher {
public:
  void word(uint64_t V) {
    Hi ^= V + 0x9e3779b97f4a7c15ULL + (Hi << 6) + (Hi >> 2);
    Lo = (Lo ^ V) * 0x2545f4914f6cdd1dULL;
    Lo ^= Lo >> 29;
  }
  ComboFp fp() const { return {Hi, Lo}; }

private:
  uint64_t Hi = 0x811c9dc5a3c964d1ULL;
  uint64_t Lo = 0xcbf29ce484222325ULL;
};

/// What the conflict-learning machinery did (one search run, or the
/// lifetime of a persistent learner — callers pick the scope).
struct SynthLearnStats {
  /// Branches pruned by a recorded nogood instead of an LP check.
  uint64_t Nogoods = 0;
  /// LP submissions skipped because an identical combo or search prefix
  /// (same canonical serialization) was already decided earlier in the
  /// same run, or the combo was an interchangeable duplicate of a
  /// sibling alternative's.
  uint64_t CombosDeduped = 0;
  /// Cache verdicts — combo-local or whole-branch — reused across
  /// solveConditions runs: knowledge that survived a Farkas scope
  /// teardown or a search restart.
  uint64_t LemmasReused = 0;
  /// Cut rows asserted at the root of the shared tableau (constraints
  /// common to every combo of some condition).
  uint64_t Cuts = 0;

  void add(const SynthLearnStats &RHS) {
    Nogoods += RHS.Nogoods;
    CombosDeduped += RHS.CombosDeduped;
    LemmasReused += RHS.LemmasReused;
    Cuts += RHS.Cuts;
  }
};

/// Persistent learning state shared across synthesis runs. One learner
/// per engine: single-threaded by design (like the solver contexts), and
/// sized by the verdict cache, which grows with the number of *distinct*
/// combos ever enumerated — bounded in practice by the template grammar.
class SynthLearner {
public:
  struct CacheEntry {
    bool Feasible;  ///< Local-LP verdict of the combo's own constraints.
    uint64_t Epoch; ///< solveConditions run that computed it.
  };

  /// Marks the start of a solveConditions run; hits on entries from
  /// earlier epochs count as cross-scope lemma reuse.
  void beginRun() { ++Epoch; }
  uint64_t epoch() const { return Epoch; }

  /// One node of the branch trie: a canonical search prefix. Edges are
  /// the serializations of the next asserted block (the cut rows at the
  /// root, one chosen combo everywhere else) under the renaming shared
  /// along the branch. A node with Verdict set caches the joint LP
  /// verdict of asserting its whole prefix; on Unsat, BackjumpTag is the
  /// deepest branch depth in the recorded core — positionally valid for
  /// any branch reaching this node, since the path fixes the prefix's
  /// depth structure along with its constraints.
  struct BranchNode {
    std::unordered_map<std::string, uint32_t> Children;
    int8_t Verdict = -1; ///< -1 unknown, 0 infeasible, 1 feasible.
    int BackjumpTag = 0;
    uint64_t Epoch = 0;
  };

  /// The verdict cache. Keys are condition-scoped canonical hashes (raw
  /// shared unknowns, canonical private multipliers) — the same ComboFp
  /// the enumeration computes for within-condition dedup, so a leaf
  /// pays one pass and zero allocations.
  std::unordered_map<ComboFp, CacheEntry, ComboFpHash> Combos;

  /// The branch trie. Node 0 is the pre-cuts root; a descent replaces an
  /// incremental simplex check of the shared search tableau, and a cold
  /// search pays only one candidate-sized serialization per step.
  std::vector<BranchNode> BranchTrie{1};

  /// Finds or creates the child of \p Node along \p Edge. Returns the
  /// child index, or a negative value if the trie is at capacity and the
  /// edge is new. Node indices stay valid across insertions (the vector
  /// may reallocate, so callers hold indices, not pointers).
  int32_t branchChild(uint32_t Node, std::string Edge) {
    auto &Children = BranchTrie[Node].Children;
    auto It = Children.find(Edge);
    if (It != Children.end())
      return static_cast<int32_t>(It->second);
    if (branchCacheFull())
      return -1;
    uint32_t Child = static_cast<uint32_t>(BranchTrie.size());
    BranchTrie.emplace_back();
    BranchTrie[Node].Children.emplace(std::move(Edge), Child);
    return static_cast<int32_t>(Child);
  }

  /// One enumerated combo as stored by the prepared-condition cache:
  /// the surviving linear constraints plus the multiplier assignment
  /// that produced them. Raw pool ids throughout — the cache key pins
  /// the id layout.
  struct StoredCombo {
    std::vector<PolyConstraint> Constraints;
    std::map<int, Rational> MultValues;
  };

  /// The full enumeration result of one condition, plus the number of
  /// leaf decisions (admitted, rejected, or deduped) the enumeration
  /// made — the budget a restore must re-charge.
  struct ConditionEntry {
    std::vector<StoredCombo> Combos;
    uint64_t LeafDecisions = 0;
    uint64_t Epoch = 0;
  };

  /// The prepared-condition cache. Keys are raw serializations of the
  /// condition's encoded alternatives (ids, kinds, multiplier bound).
  std::unordered_map<std::string, ConditionEntry> PreparedConds;

  /// Lifetime totals (per-run deltas are reported in SynthResult).
  SynthLearnStats Stats;

  /// Caps each cache; a pathological workload that keeps minting
  /// distinct combos must not grow the learner without bound. At the cap
  /// the cache stops admitting entries (lookups still hit). Condition
  /// entries hold whole combo lists, so their cap is tighter.
  static constexpr size_t MaxCacheEntries = 1 << 20;
  static constexpr size_t MaxConditionEntries = 1 << 16;

  bool cacheFull() const { return Combos.size() >= MaxCacheEntries; }
  bool branchCacheFull() const {
    return BranchTrie.size() >= MaxCacheEntries;
  }
  bool conditionCacheFull() const {
    return PreparedConds.size() >= MaxConditionEntries;
  }

private:
  uint64_t Epoch = 0;
};

/// Appends \p Value to \p Out without a temporary string. Serialization
/// is the learning caches' hot cold-path cost — every enumeration leaf
/// and every dfs candidate pays one — so the integer fast paths matter.
inline void appendInt(int64_t Value, std::string &Out) {
  char Buf[24];
  int Len = std::snprintf(Buf, sizeof(Buf), "%lld",
                          static_cast<long long>(Value));
  Out.append(Buf, static_cast<size_t>(Len));
}

/// Appends \p C to \p Out in Rational::toString's format ("N" or "N/D")
/// without its temporaries. The slow path only triggers beyond the
/// BigInt inline range, where the fast path never produces output — the
/// two formats cannot collide on distinct values.
inline void appendRational(const Rational &C, std::string &Out) {
  if (C.numerator().fitsInt64()) {
    appendInt(C.numerator().toInt64(), Out);
    if (!C.isInteger()) {
      Out += '/';
      if (C.denominator().fitsInt64()) {
        appendInt(C.denominator().toInt64(), Out);
        return;
      }
      Out += C.denominator().toString();
    }
    return;
  }
  Out += C.toString();
}

/// Appends the canonical serialization of \p PC to \p Out, renaming
/// unknowns through \p Rename / \p NextId (first-occurrence order). The
/// unknown's kind is folded in at first occurrence: a Multiplier carries
/// an implicit `>= 0` bound in the LP, so two combos that differ only in
/// a kind must not collide. When \p NewIds is given, every pool id that
/// entered \p Rename here is recorded — the branch trie serializes
/// against a renaming shared along a dfs branch and must roll these back
/// when the candidate is abandoned for a sibling.
inline void fingerprintConstraint(const PolyConstraint &PC,
                                  const UnknownPool &Pool,
                                  std::unordered_map<int, int> &Rename,
                                  int &NextId, std::string &Out,
                                  std::vector<int> *NewIds = nullptr) {
  Out += PC.IsEq ? 'E' : 'G';
  for (const auto &[M, C] : PC.P.terms()) {
    auto canon = [&](int Id) {
      if (Id < 0)
        return -1;
      auto [It, Inserted] = Rename.try_emplace(Id, NextId);
      if (Inserted) {
        ++NextId;
        Out += 'k';
        Out += static_cast<char>('0' + static_cast<int>(Pool.kind(Id)));
        if (NewIds)
          NewIds->push_back(Id);
      }
      return It->second;
    };
    int A = canon(M.A);
    int B = canon(M.B);
    Out += '(';
    appendInt(A, Out);
    Out += ',';
    appendInt(B, Out);
    Out += ':';
    appendRational(C, Out);
    Out += ')';
  }
  Out += ';';
}

/// Canonical fingerprint of one combo's constraint set.
inline std::string fingerprintCombo(const std::vector<PolyConstraint> &Cs,
                                    const UnknownPool &Pool) {
  std::string Out;
  std::unordered_map<int, int> Rename;
  int NextId = 0;
  for (const PolyConstraint &PC : Cs)
    fingerprintConstraint(PC, Pool, Rename, NextId, Out);
  return Out;
}

/// Appends the raw-id serialization of \p PC to \p Out: no renaming —
/// every unknown prints as its pool id with its kind attached — so two
/// equal serializations guarantee identical constraints over identical
/// unknowns. This is the prepared-condition cache's key language.
inline void rawKeyConstraint(const PolyConstraint &PC,
                             const UnknownPool &Pool, std::string &Out) {
  Out += PC.IsEq ? 'E' : 'G';
  for (const auto &[M, C] : PC.P.terms()) {
    auto put = [&](int Id) {
      if (Id < 0) {
        Out += '_';
        return;
      }
      appendInt(Id, Out);
      Out += static_cast<char>('a' + static_cast<int>(Pool.kind(Id)));
    };
    Out += '(';
    put(M.A);
    Out += ',';
    put(M.B);
    Out += ':';
    appendRational(C, Out);
    Out += ')';
  }
  Out += ';';
}

/// Condition-scoped identity of one combo: the key under which two
/// combos of the *same condition* are interchangeable choices. The
/// alternative-private Farkas multipliers are canonicalized — two
/// alternatives that differ only in which fresh multiplier ids they drew
/// collapse — but shared unknowns keep their raw pool ids, because
/// renaming those would conflate genuinely different constraints
/// (`a >= 1` with `b >= 1`) and silently drop a choice the search may
/// need. Canonical ids start at Pool.size(), so they never collide with
/// a raw id. Allocation-free: the private-id renaming lives in a fixed
/// stack array (a combo past its capacity degrades to raw ids, which is
/// a finer — still sound — equivalence), and every structural element
/// streams into the hash as a tagged 64-bit word.
inline ComboFp hashCombo(const std::vector<PolyConstraint> &Cs,
                         const UnknownPool &Pool) {
  ComboHasher H;
  constexpr int MaxPrivate = 64;
  int PrivateIds[MaxPrivate];
  int NumPrivate = 0;
  auto canon = [&](int Id) -> uint64_t {
    if (Id < 0)
      return ~0ULL;
    if (Pool.kind(Id) == UnknownKind::Param)
      return static_cast<uint64_t>(Id);
    for (int I = 0; I < NumPrivate; ++I)
      if (PrivateIds[I] == Id)
        return static_cast<uint64_t>(Pool.size() + I);
    if (NumPrivate == MaxPrivate)
      return static_cast<uint64_t>(Id);
    PrivateIds[NumPrivate] = Id;
    // Kind marker at first occurrence, tagged into the high byte so it
    // cannot be mistaken for an id or coefficient word.
    H.word((0x6bULL << 56) | static_cast<uint64_t>(Pool.kind(Id)));
    return static_cast<uint64_t>(Pool.size() + NumPrivate++);
  };
  for (const PolyConstraint &PC : Cs) {
    H.word((0x45ULL << 56) | (PC.IsEq ? 1 : 0));
    for (const auto &[M, C] : PC.P.terms()) {
      H.word(canon(M.A));
      H.word(canon(M.B));
      if (C.numerator().fitsInt64() && C.denominator().fitsInt64()) {
        H.word(static_cast<uint64_t>(C.numerator().toInt64()));
        H.word(static_cast<uint64_t>(C.denominator().toInt64()));
      } else {
        // Beyond-int64 coefficients are rare; hash their decimal form.
        for (char Ch : C.toString())
          H.word(static_cast<uint64_t>(static_cast<unsigned char>(Ch)));
      }
    }
    H.word(0x3bULL << 56);
  }
  return H.fp();
}

} // namespace pathinv

#endif // PATHINV_SYNTH_LEARN_H
