//===- synth/Farkas.cpp - Farkas-lemma encoding -----------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Farkas.h"

#include <set>

using namespace pathinv;

void pathinv::farkasEncode(UnknownPool &Pool,
                           const std::vector<Row> &Antecedent,
                           const std::optional<ParamLinExpr> &Target,
                           std::vector<PolyConstraint> &Out,
                           std::vector<int> &Multipliers) {
  // One multiplier per antecedent row.
  std::vector<Poly> Lambda;
  Lambda.reserve(Antecedent.size());
  for (size_t J = 0; J < Antecedent.size(); ++J) {
    UnknownKind Kind = Antecedent[J].IsEq ? UnknownKind::FreeMult
                                          : UnknownKind::Multiplier;
    int Id = Pool.add(Kind, "l" + std::to_string(Pool.size()));
    Multipliers.push_back(Id);
    Lambda.push_back(Poly::unknown(Id));
  }

  // Columns of the combined system.
  std::set<const Term *, TermIdLess> Columns;
  for (const Row &R : Antecedent)
    for (const auto &[Column, Coeff] : R.E.coefficients())
      Columns.insert(Column);
  if (Target)
    for (const auto &[Column, Coeff] : Target->coefficients())
      Columns.insert(Column);

  // Column equations: sum_j lambda_j * A[j][c] = target[c] (0 for false).
  // Accumulated in place: no product polynomial per (row, column) pair.
  for (const Term *Column : Columns) {
    Poly Sum;
    for (size_t J = 0; J < Antecedent.size(); ++J)
      Sum.addMul(Lambda[J], Antecedent[J].E.coefficientOf(Column));
    if (Target)
      Sum.sub(Target->coefficientOf(Column));
    Out.push_back({std::move(Sum), /*IsEq=*/true});
  }

  // Constant row.
  Poly ConstSum;
  for (size_t J = 0; J < Antecedent.size(); ++J)
    ConstSum.addMul(Lambda[J], Antecedent[J].E.constant());
  if (Target) {
    // sum lambda_j * c_j >= target_const: the combination is at most the
    // target as a function, so rows <= 0 imply target <= 0.
    ConstSum.sub(Target->constant());
    Out.push_back({std::move(ConstSum), /*IsEq=*/false});
  } else {
    // Derive a positive constant from rows that are all <= 0:
    // sum lambda_j * c_j >= 1 with zero column coefficients refutes the
    // antecedent.
    ConstSum.sub(Poly(Rational(1)));
    Out.push_back({std::move(ConstSum), /*IsEq=*/false});
  }
}
