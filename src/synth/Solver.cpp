//===- synth/Solver.cpp - Bilinear constraint solving ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Solver.h"

#include "core/Resource.h"
#include "smt/Simplex.h"
#include "synth/Farkas.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>
#include <unordered_set>

using namespace pathinv;

namespace {

/// A fully linearized way to discharge one condition: the constraints of
/// one alternative with one integer assignment to its bilinear
/// multipliers.
struct Combo {
  std::vector<PolyConstraint> Constraints; ///< Linear in the unknowns.
  std::map<int, Rational> MultValues;      ///< The enumerated multipliers.
  int Gid = -1; ///< Dense id across all prepared combos (nogood member).
};

/// All locally feasible combos of one condition.
struct PreparedCondition {
  std::vector<Combo> Combos;
};

/// An incremental LP context: a simplex tableau plus the pool-id to
/// LP-variable mapping, with scopes. The search runs one shared tableau
/// and brackets each branch in push()/pop() — a child node only pays for
/// its own constraints and the pop undoes them — instead of copying the
/// whole tableau at every depth as the previous design did.
struct LpState {
  Simplex LP;
  std::map<int, int> VarOf;
  /// Pool ids first seen in each open scope; pop() forgets them so their
  /// (now unconstrained, dead) LP columns are not reused.
  std::vector<std::vector<int>> ScopeIds;

  void push() {
    LP.push();
    ScopeIds.emplace_back();
  }
  void pop() {
    for (int Id : ScopeIds.back())
      VarOf.erase(Id);
    ScopeIds.pop_back();
    LP.pop();
  }
};


class Search {
public:
  Search(UnknownPool &Pool, const std::vector<Condition> &Conditions,
         const SynthOptions &Opts)
      : Pool(Pool), Conditions(Conditions), Opts(Opts),
        Budget(Opts.MaxLpChecks) {
    if (Opts.Learning) {
      Learner = Opts.Learner ? Opts.Learner : &LocalLearner;
      Learner->beginRun();
    }
  }

  SynthResult run() {
    SynthResult Result;
    prepare();
    assignComboIds();
    installRootCuts();
    enterBranchTrie();
    // Fail-first: conditions with the fewest ways to discharge go first.
    std::vector<size_t> Order(Prepared.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
      return Prepared[A].Combos.size() < Prepared[B].Combos.size();
    });

    bool Found = true;
    for (size_t I : Order) {
      if (Prepared[I].Combos.empty()) {
        Found = false; // Some condition cannot be discharged at all.
        break;
      }
    }
    if (Found) {
      // Root check: with cuts installed this also decides whether the
      // constraints common to every combo of some condition are jointly
      // feasible at all; empty system stays trivially Sat.
      Found = Lp.LP.check() != Simplex::Result::Unsat &&
              dfs(Order, 0) == FoundSolution;
    }
    if (Found) {
      Result.Found = true;
      Result.Assignment = std::move(FinalAssignment);
    }
    Result.ResourceOut = Budget == 0;
    Result.LpChecks = LpChecks;
    Result.Learn = RunStats;
    return Result;
  }

private:
  int lpVarOf(LpState &S, int Id) {
    auto [It, Inserted] = S.VarOf.try_emplace(Id, -1);
    if (Inserted) {
      It->second = S.LP.addVar();
      if (!S.ScopeIds.empty())
        S.ScopeIds.back().push_back(Id);
      if (Pool.kind(Id) == UnknownKind::Multiplier)
        S.LP.addBound(It->second, SimplexRel::Ge, Rational(0), -1);
    }
    return It->second;
  }

  /// Translates \p Cs into LP constraints of \p S tagged with \p Tag.
  void lpAddConstraints(LpState &S, const std::vector<PolyConstraint> &Cs,
                        int Tag) {
    for (const PolyConstraint &PC : Cs) {
      std::vector<std::pair<int, Rational>> Coeffs;
      Rational Rhs;
      for (const auto &[M, C] : PC.P.terms()) {
        assert(M.degree() <= 1 && "quadratic monomial reached the LP");
        if (M.degree() == 0)
          Rhs -= C;
        else
          Coeffs.emplace_back(lpVarOf(S, M.B), C);
      }
      S.LP.addConstraint(Coeffs, PC.IsEq ? SimplexRel::Eq : SimplexRel::Ge,
                         Rhs, Tag);
    }
  }

  /// Adds \p Cs to \p S tagged with \p Tag and re-checks incrementally.
  /// On infeasibility, \p ConflictTag (when provided) receives the largest
  /// tag in the unsat core — the deepest search choice implicated.
  bool lpAddCheck(LpState &S, const std::vector<PolyConstraint> &Cs, int Tag,
                  int *ConflictTag) {
    if (Budget == 0)
      return false;
    if (!resourceCharge(ResourceKind::SynthCombos)) {
      Budget = 0; // Controller tripped: reuse the budget unwind path.
      return false;
    }
    --Budget;
    ++LpChecks;
    lpAddConstraints(S, Cs, Tag);
    Simplex::Result R = S.LP.check();
    if (R == Simplex::Result::Interrupted) {
      Budget = 0; // No verdict and no core; end the search.
      return false;
    }
    if (R != Simplex::Result::Sat) {
      if (ConflictTag) {
        *ConflictTag = -1;
        for (int CoreTag : S.LP.unsatCore())
          *ConflictTag = std::max(*ConflictTag, CoreTag);
      }
      return false;
    }
    return true;
  }

  /// Decides (and counts) the local feasibility of an enumerated leaf,
  /// consulting the learner's verdict cache first. A cache hit skips the
  /// scratch LP entirely: within the run that is dedup, across runs it is
  /// a reused lemma (the knowledge survived a Farkas scope teardown).
  bool comboLocallyFeasible(const std::vector<PolyConstraint> &Cs,
                            const ComboFp *Fp) {
    if (Learner && Fp) {
      auto It = Learner->Combos.find(*Fp);
      if (It != Learner->Combos.end()) {
        if (It->second.Epoch < Learner->epoch()) {
          ++RunStats.LemmasReused;
          ++Learner->Stats.LemmasReused;
        } else {
          ++RunStats.CombosDeduped;
          ++Learner->Stats.CombosDeduped;
        }
        return It->second.Feasible;
      }
    }
    LpState Local;
    bool Feasible = lpAddCheck(Local, Cs, 0, nullptr);
    // A budget trip mid-check yields a spurious "infeasible" — never
    // cache it (the unwind path ends the run before the verdict is used).
    if (Learner && Fp && Budget != 0 && !Learner->cacheFull())
      Learner->Combos.emplace(*Fp,
                              SynthLearner::CacheEntry{Feasible,
                                                       Learner->epoch()});
    return Feasible;
  }

  /// Enumerates the bilinear multipliers of one alternative's encoding,
  /// keeping each locally feasible linearization as a combo. \p CondSeen
  /// carries the condition-scoped dedup keys already admitted across the
  /// condition's alternatives, so interchangeable choices collapse into
  /// one combo.
  void enumerateCombos(const std::vector<PolyConstraint> &Encoded,
                       PreparedCondition &Out,
                       std::unordered_set<ComboFp, ComboFpHash> &CondSeen) {
    // Multipliers occurring in quadratic monomials.
    std::set<int> QuadSet;
    for (const PolyConstraint &PC : Encoded)
      for (int Id : PC.P.quadraticUnknowns())
        if (Pool.kind(Id) != UnknownKind::Param)
          QuadSet.insert(Id);
    std::vector<int> Quad(QuadSet.begin(), QuadSet.end());

    // Depth-first over multiplier values, substituting each assignment
    // into the constraint set immediately. A constraint that becomes a
    // violated constant prunes the whole subtree, so the expensive exact
    // LP filter only ever runs on leaves that survived every ground
    // check — a tiny fraction of the 3^k assignment tree.
    std::map<int, Rational> Assignment;
    // The cap is per alternative, not per condition: a combinatorial
    // alternative must not starve the simpler alternatives enumerated
    // after it (their combos are often the only ones that discharge the
    // condition).
    size_t Cap = Out.Combos.size() + MaxCombosPerAlternative;
    std::function<void(size_t, const std::vector<PolyConstraint> &)>
        Recurse = [&](size_t Idx, const std::vector<PolyConstraint> &Cs) {
          if (Out.Combos.size() >= Cap || Budget == 0)
            return;
          if (Idx == Quad.size()) {
            ++LeafDecisions;
            Combo C;
            C.MultValues = Assignment;
            C.Constraints = Cs;
            ComboFp Fp;
            if (Learner) {
              // One allocation-free hash serves both caches: the
              // raw-param canonical identity decides which combos are
              // interchangeable *choices* within the condition, and
              // (being a refinement of the renaming-invariant combo
              // identity) is also a sound key for the
              // isolated-feasibility verdict cache.
              Fp = hashCombo(C.Constraints, Pool);
              if (!CondSeen.insert(Fp).second) {
                // A sibling alternative (or multiplier assignment) already
                // contributes this exact linearization to the condition.
                ++RunStats.CombosDeduped;
                ++Learner->Stats.CombosDeduped;
                return;
              }
            }
            // Local LP filter (cache-backed when learning).
            if (comboLocallyFeasible(C.Constraints,
                                     Learner ? &Fp : nullptr))
              Out.Combos.push_back(std::move(C));
            return;
          }
          int Id = Quad[Idx];
          bool NonNeg = Pool.kind(Id) == UnknownKind::Multiplier;
          auto tryValue = [&](Rational V) {
            std::vector<PolyConstraint> Next;
            Next.reserve(Cs.size());
            for (const PolyConstraint &PC : Cs) {
              PolyConstraint Lin{PC.P.substituteOne(Id, V), PC.IsEq};
              if (Lin.P.isConstant()) {
                Rational C0 = Lin.P.constantValue();
                if (Lin.IsEq ? !C0.isZero() : C0.isNegative())
                  return; // Ground violation: prune this subtree.
                continue;
              }
              Next.push_back(std::move(Lin));
            }
            Assignment[Id] = std::move(V);
            Recurse(Idx + 1, Next);
            Assignment.erase(Id);
          };
          for (int V = 0; V <= Opts.MultiplierBound; ++V) {
            tryValue(Rational(V));
            if (!NonNeg && V > 0)
              tryValue(Rational(-V));
          }
        };
    Recurse(0, Encoded);
  }

  void prepare() {
    Prepared.resize(Conditions.size());
    for (size_t I = 0; I < Conditions.size(); ++I) {
      // Encode every alternative up front: the encodings are the
      // prepared-condition cache key, and a hit still needs the pool to
      // mint the same multiplier ids the stored combos reference —
      // which the key's raw serialization guarantees it just did.
      std::vector<std::vector<PolyConstraint>> Encodings;
      Encodings.reserve(Conditions[I].Alternatives.size());
      for (const ConditionAlternative &Alt : Conditions[I].Alternatives) {
        std::vector<PolyConstraint> Encoded;
        for (const FarkasInstance &FI : Alt.Instances) {
          std::vector<int> Mults;
          farkasEncode(Pool, FI.Antecedent, FI.Target, Encoded, Mults);
        }
        Encodings.push_back(std::move(Encoded));
      }
      std::string Key;
      if (Learner) {
        Key += 'B';
        Key += std::to_string(Opts.MultiplierBound);
        for (const std::vector<PolyConstraint> &Encoded : Encodings) {
          Key += '|';
          for (const PolyConstraint &PC : Encoded)
            rawKeyConstraint(PC, Pool, Key);
        }
        if (restoreCondition(Key, Prepared[I]))
          continue;
        if (Budget == 0)
          return;
      }
      uint64_t LeavesBefore = LeafDecisions;
      std::unordered_set<ComboFp, ComboFpHash> CondSeen;
      for (const std::vector<PolyConstraint> &Encoded : Encodings)
        enumerateCombos(Encoded, Prepared[I], CondSeen);
      if (Learner && Budget != 0 && !Learner->conditionCacheFull()) {
        SynthLearner::ConditionEntry Entry;
        Entry.LeafDecisions = LeafDecisions - LeavesBefore;
        Entry.Epoch = Learner->epoch();
        Entry.Combos.reserve(Prepared[I].Combos.size());
        for (const Combo &C : Prepared[I].Combos)
          Entry.Combos.push_back({C.Constraints, C.MultValues});
        Learner->PreparedConds.emplace(std::move(Key), std::move(Entry));
      }
    }
  }

  /// Restores a condition's enumeration from the learner, re-charging
  /// the leaf decisions the original run paid so a warmed search stays
  /// under the same budget governance. \returns false (leaving \p Out
  /// untouched) on a miss, or when the remaining budget could not cover
  /// the replay — the live enumeration then trips the budget the normal
  /// way.
  bool restoreCondition(const std::string &Key, PreparedCondition &Out) {
    auto It = Learner->PreparedConds.find(Key);
    if (It == Learner->PreparedConds.end() ||
        Budget < It->second.LeafDecisions)
      return false;
    const SynthLearner::ConditionEntry &Entry = It->second;
    for (uint64_t J = 0; J < Entry.LeafDecisions; ++J) {
      if (!resourceCharge(ResourceKind::SynthCombos)) {
        Budget = 0; // Controller tripped mid-replay: end the search.
        return false;
      }
    }
    Budget -= Entry.LeafDecisions;
    if (Entry.Epoch < Learner->epoch()) {
      RunStats.LemmasReused += Entry.LeafDecisions;
      Learner->Stats.LemmasReused += Entry.LeafDecisions;
    } else {
      RunStats.CombosDeduped += Entry.LeafDecisions;
      Learner->Stats.CombosDeduped += Entry.LeafDecisions;
    }
    Out.Combos.reserve(Entry.Combos.size());
    for (const SynthLearner::StoredCombo &SC : Entry.Combos) {
      Combo C;
      C.Constraints = SC.Constraints;
      C.MultValues = SC.MultValues;
      Out.Combos.push_back(std::move(C));
    }
    return true;
  }

  /// Numbers every prepared combo densely; nogoods are sets of these ids.
  void assignComboIds() {
    int Next = 0;
    for (PreparedCondition &PC : Prepared)
      for (Combo &C : PC.Combos)
        C.Gid = Next++;
    NumCombos = Next;
    ChosenGid.assign(static_cast<size_t>(NumCombos), 0);
    DepthOfGid.assign(static_cast<size_t>(NumCombos), -1);
    NogoodsOf.assign(static_cast<size_t>(NumCombos), {});
  }

  /// Constraints shared by *every* combo of a condition are implied by the
  /// condition itself (whichever combo is chosen asserts them), so they
  /// can sit at the root of the shared tableau as cut rows: the search
  /// then conflicts on them before the condition's depth is even reached.
  /// Tagged -1 so they never enter a backjump core as a depth.
  void installRootCuts() {
    if (!Learner)
      return;
    std::set<std::string> Installed;
    for (const PreparedCondition &PC : Prepared) {
      if (PC.Combos.size() < 2)
        continue; // A single combo asserts its rows at depth anyway.
      // Count, per serialized constraint (raw ids — all combos of one
      // condition share the pool), the number of combos containing it.
      std::map<std::string, std::pair<size_t, const PolyConstraint *>> Seen;
      for (const Combo &C : PC.Combos) {
        std::set<std::string> InThisCombo;
        for (const PolyConstraint &Ct : C.Constraints) {
          std::string Key;
          std::unordered_map<int, int> Rename;
          int NextId = 0;
          // Raw-id serialization: reuse the canonical printer but seed the
          // renaming with identity so distinct unknowns stay distinct.
          for (const auto &[M, Coef] : Ct.P.terms()) {
            (void)Coef;
            if (M.A >= 0)
              Rename.emplace(M.A, M.A);
            if (M.B >= 0)
              Rename.emplace(M.B, M.B);
          }
          NextId = Pool.size();
          fingerprintConstraint(Ct, Pool, Rename, NextId, Key);
          if (!InThisCombo.insert(Key).second)
            continue;
          auto [It, Inserted] = Seen.try_emplace(Key, 0, &Ct);
          ++It->second.first;
          (void)Inserted;
        }
      }
      for (const auto &[Key, Entry] : Seen) {
        if (Entry.first != PC.Combos.size())
          continue;
        if (!Installed.insert(Key).second)
          continue; // Another condition already contributed this cut.
        CutConstraints.push_back(*Entry.second);
        ++RunStats.Cuts;
        ++Learner->Stats.Cuts;
      }
    }
    if (!CutConstraints.empty())
      lpAddConstraints(Lp, CutConstraints, /*Tag=*/-1);
  }

  /// Search outcome of one subtree: FoundSolution, or failure carrying the
  /// deepest depth implicated in any infeasibility (the backjump target —
  /// sibling choices above that depth cannot repair the conflict).
  static constexpr int FoundSolution = -2;

  /// Tests the candidate \p C at \p Depth against the recorded nogoods: a
  /// nogood containing C whose other members are all on the current
  /// branch refutes the combination without an LP. \returns the backjump
  /// tag (deepest implicated ancestor depth, -1 for a unary nogood), or
  /// INT_MIN when no nogood applies.
  int nogoodConflict(const Combo &C) {
    for (size_t NgIdx : NogoodsOf[static_cast<size_t>(C.Gid)]) {
      const std::vector<int> &Ng = Nogoods[NgIdx];
      int DeepestOther = -1;
      bool Applies = true;
      for (int Gid : Ng) {
        if (Gid == C.Gid)
          continue;
        if (!ChosenGid[static_cast<size_t>(Gid)]) {
          Applies = false;
          break;
        }
        DeepestOther = std::max(DeepestOther, DepthOfGid[Gid]);
      }
      if (Applies)
        return DeepestOther;
    }
    return InactiveNogood;
  }

  /// Records the refutation of the current branch as a nogood: the core's
  /// depth tags name the chosen combos that jointly conflicted. Any later
  /// branch assembling the same set is pruned without an LP.
  void recordNogood(const std::vector<int> &CoreTags) {
    if (!Learner || Nogoods.size() >= MaxNogoods)
      return;
    std::vector<int> Members;
    for (int Tag : CoreTags) {
      if (Tag < 0)
        continue; // Multiplier bounds and cut rows carry no choice.
      assert(Tag < static_cast<int>(Chosen.size()) && "core tag off-branch");
      Members.push_back(Chosen[static_cast<size_t>(Tag)]->Gid);
    }
    if (Members.empty())
      return;
    std::sort(Members.begin(), Members.end());
    Members.erase(std::unique(Members.begin(), Members.end()),
                  Members.end());
    size_t Idx = Nogoods.size();
    for (int Gid : Members)
      NogoodsOf[static_cast<size_t>(Gid)].push_back(Idx);
    Nogoods.push_back(std::move(Members));
  }

  /// Positions the branch-trie cursor for the root of the search: one
  /// edge from node 0 labeled with the cut rows' serialization, which
  /// seeds the renaming shared along every dfs branch. Candidate combos
  /// then extend that renaming one edge at a time, so a prefix's
  /// canonical identity — a *joint* identity, unlike the per-combo
  /// fingerprints — is built incrementally: each dfs step serializes
  /// only its own candidate, never the whole prefix.
  void enterBranchTrie() {
    if (!Learner)
      return;
    std::string Edge;
    for (const PolyConstraint &PC : CutConstraints)
      fingerprintConstraint(PC, Pool, BranchRename, BranchNextId, Edge);
    CurNode = Learner->branchChild(0, std::move(Edge));
  }

  /// Rolls the shared branch renaming back past a candidate's
  /// serialization: the ids it introduced are erased and the canonical
  /// counter rewinds (insertions are LIFO along a branch, so sequential
  /// ids stay dense). Siblings then serialize against the exact renaming
  /// state their prefix established.
  void undoBranchRename(const std::vector<int> &NewIds) {
    for (int Id : NewIds)
      BranchRename.erase(Id);
    BranchNextId -= static_cast<int>(NewIds.size());
  }

  int dfs(const std::vector<size_t> &Order, int Depth) {
    if (Budget == 0)
      return -1;
    if (static_cast<size_t>(Depth) == Order.size()) {
      if (UncheckedFrames > 0) {
        // Some branch frames were admitted on cached verdicts alone, so
        // the tableau's assignment may not satisfy them yet. One repair
        // check makes the extracted model real. Like the rebuild replay,
        // this re-establishes already-charged knowledge, so it is not
        // billed to the budget.
        Simplex::Result R = Lp.LP.check();
        if (R == Simplex::Result::Interrupted) {
          Budget = 0;
          return -1;
        }
        assert(R == Simplex::Result::Sat && "cached-feasible branch unsat");
        if (R != Simplex::Result::Sat)
          return Depth - 1; // Fail safe: treat as a conflict at the leaf.
      }
      // The shared tableau already satisfies every chosen combo's
      // constraints: extract.
      FinalAssignment.assign(Pool.size(), Rational(0));
      for (const auto &[Id, Var] : Lp.VarOf)
        FinalAssignment[Id] = Lp.LP.modelValue(Var);
      for (const Combo *C : Chosen)
        for (const auto &[Id, Value] : C->MultValues)
          FinalAssignment[Id] = Value;
      return FoundSolution;
    }
    const PreparedCondition &Cond = Prepared[Order[Depth]];
    int DeepestConflict = -1;
    for (const Combo &C : Cond.Combos) {
      if (Learner) {
        int NgTag = nogoodConflict(C);
        if (NgTag != InactiveNogood) {
          // A pruned node is still a processed combo: charge it like the
          // LP check it replaced (same budget, same governed resource).
          // Otherwise an unsat search tree — exponential by nature — is
          // no longer bounded by the budget once nogoods fire, and the
          // search can wander instead of reporting ResourceOut. The win
          // is each unit costing an O(members) scan instead of a simplex
          // check, not more units.
          if (!resourceCharge(ResourceKind::SynthCombos)) {
            Budget = 0;
            return -1;
          }
          --Budget;
          ++RunStats.Nogoods;
          ++Learner->Stats.Nogoods;
          if (Budget == 0)
            return -1;
          if (NgTag < Depth && NgTag >= 0)
            // Same contract as an LP conflict: choices above NgTag do not
            // participate, but a sibling of an *implicated* ancestor
            // might — bubble the backjump through DeepestConflict.
            DeepestConflict = std::max(DeepestConflict, NgTag);
          continue;
        }
      }
      maybeRebuildLp();
      // Branch trie: descend one edge — the candidate's serialization
      // under the branch-shared renaming. A node with a verdict replays
      // the joint simplex result of this exact prefix+candidate, which
      // an earlier run (an engine restart, the previous CEGAR round)
      // computed — charged like the check it stands in for, so a cached
      // replay of an exhaustive search is still budget-bounded. Combos
      // with no constraints still advance the cursor (empty edge): the
      // trie path must mirror the branch's depth structure, because the
      // stored backjump tags are depths.
      bool HaveHit = false, HitFeasible = false;
      int HitTag = -1;
      int32_t Child = -1;
      int32_t SavedNode = CurNode;
      std::vector<int> BranchNewIds;
      if (CurNode >= 0) {
        std::string Edge;
        for (const PolyConstraint &PC : C.Constraints)
          fingerprintConstraint(PC, Pool, BranchRename, BranchNextId, Edge,
                                &BranchNewIds);
        Child = Learner->branchChild(static_cast<uint32_t>(CurNode),
                                     std::move(Edge));
        if (Child >= 0) {
          const SynthLearner::BranchNode &N = Learner->BranchTrie[Child];
          if (N.Verdict >= 0) {
            HaveHit = true;
            HitFeasible = N.Verdict == 1;
            HitTag = N.BackjumpTag;
            if (!resourceCharge(ResourceKind::SynthCombos)) {
              Budget = 0;
              return -1;
            }
            --Budget;
            if (N.Epoch < Learner->epoch()) {
              ++RunStats.LemmasReused;
              ++Learner->Stats.LemmasReused;
            } else {
              ++RunStats.CombosDeduped;
              ++Learner->Stats.CombosDeduped;
            }
            if (Budget == 0)
              return -1;
          }
        }
      }
      if (HaveHit && !HitFeasible) {
        // Replay the recorded conflict's backjump without touching the
        // tableau. No nogood is recorded: the trie already prunes this
        // prefix, and the stored tag carries the same contract as a live
        // core's deepest depth.
        undoBranchRename(BranchNewIds);
        if (HitTag < Depth)
          return HitTag;
        DeepestConflict = std::max(DeepestConflict, HitTag);
        continue;
      }
      Chosen.push_back(&C);
      ChosenGid[static_cast<size_t>(C.Gid)] = true;
      DepthOfGid[C.Gid] = Depth;
      int ConflictTag = Depth;
      int Sub;
      if (C.Constraints.empty()) {
        CurNode = Child;
        Sub = dfs(Order, Depth + 1);
        CurNode = SavedNode;
      } else {
        Lp.push();
        ActiveFrames.push_back({&C.Constraints, Depth});
        bool Ok;
        if (HaveHit) {
          // Known feasible: assert the constraints for the descendants'
          // incremental checks, but skip this node's own simplex run.
          lpAddConstraints(Lp, C.Constraints, Depth);
          ++UncheckedFrames;
          Ok = true;
        } else {
          Ok = lpAddCheck(Lp, C.Constraints, Depth, &ConflictTag);
          if (Child >= 0 && Budget != 0) {
            SynthLearner::BranchNode &N = Learner->BranchTrie[Child];
            N.Verdict = Ok ? 1 : 0;
            N.BackjumpTag = ConflictTag;
            N.Epoch = Learner->epoch();
          }
        }
        if (Ok) {
          CurNode = Child;
          Sub = dfs(Order, Depth + 1);
          CurNode = SavedNode;
        } else {
          if (Budget != 0 && Learner)
            recordNogood(Lp.LP.unsatCore());
          Sub = ConflictTag;
        }
        if (HaveHit)
          --UncheckedFrames;
        ActiveFrames.pop_back();
        Lp.pop();
        ++PopsSinceRebuild;
      }
      undoBranchRename(BranchNewIds);
      ChosenGid[static_cast<size_t>(C.Gid)] = false;
      Chosen.pop_back();
      if (Sub == FoundSolution)
        return FoundSolution;
      if (Budget == 0)
        return -1;
      if (Sub < Depth)
        // This choice did not participate in the conflict: siblings
        // cannot fix it either. Propagate the backjump upward.
        return Sub;
      DeepestConflict = std::max(DeepestConflict, Sub);
    }
    // All combos conflicted at this depth; the caller's choice (or an
    // earlier one appearing in some core) must change.
    return std::min<int>(DeepestConflict, Depth - 1);
  }

  /// Rebuilds the shared tableau from the active branch's constraint
  /// frames once enough pops have accumulated. Popped scopes leave dead
  /// columns (and rows pivoted onto pre-scope variables) behind; without
  /// compaction the per-check Bland scan degrades linearly in everything
  /// the search ever tried. Called only between combos, where the scope
  /// stack matches ActiveFrames exactly.
  void maybeRebuildLp() {
    if (PopsSinceRebuild < RebuildInterval)
      return;
    PopsSinceRebuild = 0;
    Lp = LpState();
    // Cut rows live below every scope; restore them first.
    if (!CutConstraints.empty())
      lpAddConstraints(Lp, CutConstraints, /*Tag=*/-1);
    for (const auto &[Cs, Tag] : ActiveFrames) {
      Lp.push();
      lpAddConstraints(Lp, *Cs, Tag);
    }
    // The active branch was feasible before the rebuild; replaying it is
    // bookkeeping, not exploration, so it is not charged to the budget.
    Simplex::Result R = Lp.LP.check();
    assert((R == Simplex::Result::Sat || R == Simplex::Result::Interrupted) &&
           "active branch became infeasible");
    (void)R;
  }

  static constexpr size_t MaxCombosPerAlternative = 128;
  static constexpr uint64_t RebuildInterval = 128;
  /// Nogood store cap: a search that conflicts this often is budget-bound
  /// anyway, and every stored nogood lengthens the per-candidate scan.
  static constexpr size_t MaxNogoods = 1 << 14;
  /// nogoodConflict sentinel for "no recorded nogood applies". Must be
  /// distinct from every legal backjump tag (-1 and up) and from
  /// FoundSolution.
  static constexpr int InactiveNogood = std::numeric_limits<int>::min();

  UnknownPool &Pool;
  const std::vector<Condition> &Conditions;
  const SynthOptions &Opts;
  std::vector<PreparedCondition> Prepared;
  LpState Lp; ///< Shared scoped tableau for the whole search.
  /// Constraint sets (with their depth tags) of the active branch, for
  /// tableau compaction.
  std::vector<std::pair<const std::vector<PolyConstraint> *, int>>
      ActiveFrames;
  uint64_t PopsSinceRebuild = 0;
  /// Active frames admitted on a cached Sat verdict without their own
  /// simplex run; the leaf repairs the tableau once when any remain.
  uint64_t UncheckedFrames = 0;
  /// Branch-trie cursor: the learner node of the current dfs prefix, or
  /// -1 when the trie is disabled for this subtree (no learner, or the
  /// trie hit its capacity cap mid-descent).
  int32_t CurNode = -1;
  /// The renaming shared along the current dfs branch (seeded by the cut
  /// rows, extended per candidate, rolled back per sibling) — the trie's
  /// edge labels are serializations under this map.
  std::unordered_map<int, int> BranchRename;
  int BranchNextId = 0;
  std::vector<const Combo *> Chosen;
  std::vector<Rational> FinalAssignment;
  uint64_t Budget;
  uint64_t LpChecks = 0;
  /// Leaves the multiplier enumeration decided (admitted, rejected, or
  /// deduped) — what a prepared-condition restore must re-charge.
  uint64_t LeafDecisions = 0;

  /// Learning state. Learner stays null when Opts.Learning is off — every
  /// learning code path keys off that. LocalLearner backs searches whose
  /// caller did not supply a persistent one.
  SynthLearner *Learner = nullptr;
  SynthLearner LocalLearner;
  SynthLearnStats RunStats; ///< This run's deltas (mirrored into Learner).
  int NumCombos = 0;
  std::vector<char> ChosenGid; ///< Gid -> combo is on the current branch.
  std::vector<int> DepthOfGid; ///< Depth a chosen Gid was asserted at.
  std::vector<std::vector<size_t>> NogoodsOf; ///< Gid -> indices in Nogoods.
  std::vector<std::vector<int>> Nogoods; ///< Sorted, deduped Gid sets.
  std::vector<PolyConstraint> CutConstraints; ///< Root cut rows (Tag -1).
};

} // namespace

SynthResult pathinv::solveConditions(UnknownPool &Pool,
                                     const std::vector<Condition> &Conditions,
                                     const SynthOptions &Opts) {
  Search S(Pool, Conditions, Opts);
  return S.run();
}
