//===- synth/Solver.cpp - Bilinear constraint solving ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Solver.h"

#include "core/Resource.h"
#include "smt/Simplex.h"
#include "synth/Farkas.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace pathinv;

namespace {

/// A fully linearized way to discharge one condition: the constraints of
/// one alternative with one integer assignment to its bilinear
/// multipliers.
struct Combo {
  std::vector<PolyConstraint> Constraints; ///< Linear in the unknowns.
  std::map<int, Rational> MultValues;      ///< The enumerated multipliers.
};

/// All locally feasible combos of one condition.
struct PreparedCondition {
  std::vector<Combo> Combos;
};

/// An incremental LP context: a simplex tableau plus the pool-id to
/// LP-variable mapping, with scopes. The search runs one shared tableau
/// and brackets each branch in push()/pop() — a child node only pays for
/// its own constraints and the pop undoes them — instead of copying the
/// whole tableau at every depth as the previous design did.
struct LpState {
  Simplex LP;
  std::map<int, int> VarOf;
  /// Pool ids first seen in each open scope; pop() forgets them so their
  /// (now unconstrained, dead) LP columns are not reused.
  std::vector<std::vector<int>> ScopeIds;

  void push() {
    LP.push();
    ScopeIds.emplace_back();
  }
  void pop() {
    for (int Id : ScopeIds.back())
      VarOf.erase(Id);
    ScopeIds.pop_back();
    LP.pop();
  }
};

class Search {
public:
  Search(UnknownPool &Pool, const std::vector<Condition> &Conditions,
         const SynthOptions &Opts)
      : Pool(Pool), Conditions(Conditions), Opts(Opts),
        Budget(Opts.MaxLpChecks) {}

  SynthResult run() {
    SynthResult Result;
    prepare();
    // Fail-first: conditions with the fewest ways to discharge go first.
    std::vector<size_t> Order(Prepared.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
      return Prepared[A].Combos.size() < Prepared[B].Combos.size();
    });

    bool Found = true;
    for (size_t I : Order) {
      if (Prepared[I].Combos.empty()) {
        Found = false; // Some condition cannot be discharged at all.
        break;
      }
    }
    if (Found) {
      Lp.LP.check(); // Empty system: Sat, so leaf models always exist.
      Found = dfs(Order, 0) == FoundSolution;
    }
    if (Found) {
      Result.Found = true;
      Result.Assignment = std::move(FinalAssignment);
    }
    Result.ResourceOut = Budget == 0;
    Result.LpChecks = LpChecks;
    return Result;
  }

private:
  int lpVarOf(LpState &S, int Id) {
    auto [It, Inserted] = S.VarOf.try_emplace(Id, -1);
    if (Inserted) {
      It->second = S.LP.addVar();
      if (!S.ScopeIds.empty())
        S.ScopeIds.back().push_back(Id);
      if (Pool.kind(Id) == UnknownKind::Multiplier)
        S.LP.addBound(It->second, SimplexRel::Ge, Rational(0), -1);
    }
    return It->second;
  }

  /// Translates \p Cs into LP constraints of \p S tagged with \p Tag.
  void lpAddConstraints(LpState &S, const std::vector<PolyConstraint> &Cs,
                        int Tag) {
    for (const PolyConstraint &PC : Cs) {
      std::vector<std::pair<int, Rational>> Coeffs;
      Rational Rhs;
      for (const auto &[M, C] : PC.P.terms()) {
        assert(M.degree() <= 1 && "quadratic monomial reached the LP");
        if (M.degree() == 0)
          Rhs -= C;
        else
          Coeffs.emplace_back(lpVarOf(S, M.B), C);
      }
      S.LP.addConstraint(Coeffs, PC.IsEq ? SimplexRel::Eq : SimplexRel::Ge,
                         Rhs, Tag);
    }
  }

  /// Adds \p Cs to \p S tagged with \p Tag and re-checks incrementally.
  /// On infeasibility, \p ConflictTag (when provided) receives the largest
  /// tag in the unsat core — the deepest search choice implicated.
  bool lpAddCheck(LpState &S, const std::vector<PolyConstraint> &Cs, int Tag,
                  int *ConflictTag) {
    if (Budget == 0)
      return false;
    if (!resourceCharge(ResourceKind::SynthCombos)) {
      Budget = 0; // Controller tripped: reuse the budget unwind path.
      return false;
    }
    --Budget;
    ++LpChecks;
    lpAddConstraints(S, Cs, Tag);
    Simplex::Result R = S.LP.check();
    if (R == Simplex::Result::Interrupted) {
      Budget = 0; // No verdict and no core; end the search.
      return false;
    }
    if (R != Simplex::Result::Sat) {
      if (ConflictTag) {
        *ConflictTag = -1;
        for (int CoreTag : S.LP.unsatCore())
          *ConflictTag = std::max(*ConflictTag, CoreTag);
      }
      return false;
    }
    return true;
  }

  /// Enumerates the bilinear multipliers of one alternative's encoding,
  /// keeping each locally feasible linearization as a combo.
  void enumerateCombos(const std::vector<PolyConstraint> &Encoded,
                       PreparedCondition &Out) {
    // Multipliers occurring in quadratic monomials.
    std::set<int> QuadSet;
    for (const PolyConstraint &PC : Encoded)
      for (int Id : PC.P.quadraticUnknowns())
        if (Pool.kind(Id) != UnknownKind::Param)
          QuadSet.insert(Id);
    std::vector<int> Quad(QuadSet.begin(), QuadSet.end());

    // Depth-first over multiplier values, substituting each assignment
    // into the constraint set immediately. A constraint that becomes a
    // violated constant prunes the whole subtree, so the expensive exact
    // LP filter only ever runs on leaves that survived every ground
    // check — a tiny fraction of the 3^k assignment tree.
    std::map<int, Rational> Assignment;
    // The cap is per alternative, not per condition: a combinatorial
    // alternative must not starve the simpler alternatives enumerated
    // after it (their combos are often the only ones that discharge the
    // condition).
    size_t Cap = Out.Combos.size() + MaxCombosPerAlternative;
    std::function<void(size_t, const std::vector<PolyConstraint> &)>
        Recurse = [&](size_t Idx, const std::vector<PolyConstraint> &Cs) {
          if (Out.Combos.size() >= Cap || Budget == 0)
            return;
          if (Idx == Quad.size()) {
            Combo C;
            C.MultValues = Assignment;
            C.Constraints = Cs;
            // Local LP filter.
            LpState Local;
            if (lpAddCheck(Local, C.Constraints, 0, nullptr))
              Out.Combos.push_back(std::move(C));
            return;
          }
          int Id = Quad[Idx];
          bool NonNeg = Pool.kind(Id) == UnknownKind::Multiplier;
          auto tryValue = [&](Rational V) {
            std::vector<PolyConstraint> Next;
            Next.reserve(Cs.size());
            for (const PolyConstraint &PC : Cs) {
              PolyConstraint Lin{PC.P.substituteOne(Id, V), PC.IsEq};
              if (Lin.P.isConstant()) {
                Rational C0 = Lin.P.constantValue();
                if (Lin.IsEq ? !C0.isZero() : C0.isNegative())
                  return; // Ground violation: prune this subtree.
                continue;
              }
              Next.push_back(std::move(Lin));
            }
            Assignment[Id] = std::move(V);
            Recurse(Idx + 1, Next);
            Assignment.erase(Id);
          };
          for (int V = 0; V <= Opts.MultiplierBound; ++V) {
            tryValue(Rational(V));
            if (!NonNeg && V > 0)
              tryValue(Rational(-V));
          }
        };
    Recurse(0, Encoded);
  }

  void prepare() {
    Prepared.resize(Conditions.size());
    for (size_t I = 0; I < Conditions.size(); ++I) {
      for (const ConditionAlternative &Alt : Conditions[I].Alternatives) {
        std::vector<PolyConstraint> Encoded;
        for (const FarkasInstance &FI : Alt.Instances) {
          std::vector<int> Mults;
          farkasEncode(Pool, FI.Antecedent, FI.Target, Encoded, Mults);
        }
        enumerateCombos(Encoded, Prepared[I]);
      }
    }
  }

  /// Search outcome of one subtree: FoundSolution, or failure carrying the
  /// deepest depth implicated in any infeasibility (the backjump target —
  /// sibling choices above that depth cannot repair the conflict).
  static constexpr int FoundSolution = -2;

  int dfs(const std::vector<size_t> &Order, int Depth) {
    if (Budget == 0)
      return -1;
    if (static_cast<size_t>(Depth) == Order.size()) {
      // The shared tableau already satisfies every chosen combo's
      // constraints: extract.
      FinalAssignment.assign(Pool.size(), Rational(0));
      for (const auto &[Id, Var] : Lp.VarOf)
        FinalAssignment[Id] = Lp.LP.modelValue(Var);
      for (const Combo *C : Chosen)
        for (const auto &[Id, Value] : C->MultValues)
          FinalAssignment[Id] = Value;
      return FoundSolution;
    }
    const PreparedCondition &Cond = Prepared[Order[Depth]];
    int DeepestConflict = -1;
    for (const Combo &C : Cond.Combos) {
      maybeRebuildLp();
      Chosen.push_back(&C);
      int ConflictTag = Depth;
      int Sub;
      if (C.Constraints.empty()) {
        Sub = dfs(Order, Depth + 1);
      } else {
        Lp.push();
        ActiveFrames.push_back({&C.Constraints, Depth});
        Sub = lpAddCheck(Lp, C.Constraints, Depth, &ConflictTag)
                  ? dfs(Order, Depth + 1)
                  : ConflictTag;
        ActiveFrames.pop_back();
        Lp.pop();
        ++PopsSinceRebuild;
      }
      Chosen.pop_back();
      if (Sub == FoundSolution)
        return FoundSolution;
      if (Budget == 0)
        return -1;
      if (Sub < Depth)
        // This choice did not participate in the conflict: siblings
        // cannot fix it either. Propagate the backjump upward.
        return Sub;
      DeepestConflict = std::max(DeepestConflict, Sub);
    }
    // All combos conflicted at this depth; the caller's choice (or an
    // earlier one appearing in some core) must change.
    return std::min<int>(DeepestConflict, Depth - 1);
  }

  /// Rebuilds the shared tableau from the active branch's constraint
  /// frames once enough pops have accumulated. Popped scopes leave dead
  /// columns (and rows pivoted onto pre-scope variables) behind; without
  /// compaction the per-check Bland scan degrades linearly in everything
  /// the search ever tried. Called only between combos, where the scope
  /// stack matches ActiveFrames exactly.
  void maybeRebuildLp() {
    if (PopsSinceRebuild < RebuildInterval)
      return;
    PopsSinceRebuild = 0;
    Lp = LpState();
    for (const auto &[Cs, Tag] : ActiveFrames) {
      Lp.push();
      lpAddConstraints(Lp, *Cs, Tag);
    }
    // The active branch was feasible before the rebuild; replaying it is
    // bookkeeping, not exploration, so it is not charged to the budget.
    Simplex::Result R = Lp.LP.check();
    assert((R == Simplex::Result::Sat || R == Simplex::Result::Interrupted) &&
           "active branch became infeasible");
    (void)R;
  }

  static constexpr size_t MaxCombosPerAlternative = 128;
  static constexpr uint64_t RebuildInterval = 128;

  UnknownPool &Pool;
  const std::vector<Condition> &Conditions;
  const SynthOptions &Opts;
  std::vector<PreparedCondition> Prepared;
  LpState Lp; ///< Shared scoped tableau for the whole search.
  /// Constraint sets (with their depth tags) of the active branch, for
  /// tableau compaction.
  std::vector<std::pair<const std::vector<PolyConstraint> *, int>>
      ActiveFrames;
  uint64_t PopsSinceRebuild = 0;
  std::vector<const Combo *> Chosen;
  std::vector<Rational> FinalAssignment;
  uint64_t Budget;
  uint64_t LpChecks = 0;
};

} // namespace

SynthResult pathinv::solveConditions(UnknownPool &Pool,
                                     const std::vector<Condition> &Conditions,
                                     const SynthOptions &Opts) {
  Search S(Pool, Conditions, Opts);
  return S.run();
}
