//===- synth/Solver.cpp - Bilinear constraint solving ----------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Solver.h"

#include "smt/Simplex.h"
#include "synth/Farkas.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace pathinv;

namespace {

/// A fully linearized way to discharge one condition: the constraints of
/// one alternative with one integer assignment to its bilinear
/// multipliers.
struct Combo {
  std::vector<PolyConstraint> Constraints; ///< Linear in the unknowns.
  std::map<int, Rational> MultValues;      ///< The enumerated multipliers.
};

/// All locally feasible combos of one condition.
struct PreparedCondition {
  std::vector<Combo> Combos;
};

class Search {
public:
  Search(UnknownPool &Pool, const std::vector<Condition> &Conditions,
         const SynthOptions &Opts)
      : Pool(Pool), Conditions(Conditions), Opts(Opts),
        Budget(Opts.MaxLpChecks) {}

  SynthResult run() {
    SynthResult Result;
    prepare();
    // Fail-first: conditions with the fewest ways to discharge go first.
    std::vector<size_t> Order(Prepared.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
      return Prepared[A].Combos.size() < Prepared[B].Combos.size();
    });

    bool Found = true;
    for (size_t I : Order) {
      if (Prepared[I].Combos.empty()) {
        Found = false; // Some condition cannot be discharged at all.
        break;
      }
    }
    if (Found)
      Found = dfs(Order, 0);
    if (Found) {
      Result.Found = true;
      Result.Assignment = std::move(FinalAssignment);
    }
    Result.ResourceOut = Budget == 0;
    Result.LpChecks = LpChecks;
    return Result;
  }

private:
  /// LP feasibility of a set of linear poly-constraints; optionally
  /// extracts a model over the whole pool.
  bool lpCheck(const std::vector<const PolyConstraint *> &Cs,
               const std::map<int, Rational> *ExtractWith) {
    if (Budget == 0)
      return false;
    --Budget;
    ++LpChecks;
    Simplex LP;
    std::map<int, int> VarOf;
    auto varOf = [&](int Id) {
      auto [It, Inserted] = VarOf.try_emplace(Id, -1);
      if (Inserted) {
        It->second = LP.addVar();
        if (Pool.kind(Id) == UnknownKind::Multiplier)
          LP.addBound(It->second, SimplexRel::Ge, Rational(0), -1);
      }
      return It->second;
    };
    for (const PolyConstraint *PC : Cs) {
      std::vector<std::pair<int, Rational>> Coeffs;
      Rational Rhs;
      for (const auto &[M, C] : PC->P.terms()) {
        assert(M.degree() <= 1 && "quadratic monomial reached the LP");
        if (M.degree() == 0)
          Rhs -= C;
        else
          Coeffs.emplace_back(varOf(M.B), C);
      }
      LP.addConstraint(Coeffs, PC->IsEq ? SimplexRel::Eq : SimplexRel::Ge,
                       Rhs, -1);
    }
    if (LP.check() != Simplex::Result::Sat)
      return false;
    if (ExtractWith) {
      FinalAssignment.assign(Pool.size(), Rational(0));
      for (const auto &[Id, Var] : VarOf)
        FinalAssignment[Id] = LP.modelValue(Var);
      for (const auto &[Id, Value] : *ExtractWith)
        FinalAssignment[Id] = Value;
    }
    return true;
  }

  /// Enumerates the bilinear multipliers of one alternative's encoding,
  /// keeping each locally feasible linearization as a combo.
  void enumerateCombos(const std::vector<PolyConstraint> &Encoded,
                       PreparedCondition &Out) {
    // Multipliers occurring in quadratic monomials.
    std::set<int> QuadSet;
    for (const PolyConstraint &PC : Encoded)
      for (int Id : PC.P.quadraticUnknowns())
        if (Pool.kind(Id) != UnknownKind::Param)
          QuadSet.insert(Id);
    std::vector<int> Quad(QuadSet.begin(), QuadSet.end());

    std::map<int, Rational> Assignment;
    std::function<void(size_t)> Recurse = [&](size_t Idx) {
      if (Out.Combos.size() >= MaxCombosPerCondition || Budget == 0)
        return;
      if (Idx == Quad.size()) {
        Combo C;
        C.MultValues = Assignment;
        C.Constraints.reserve(Encoded.size());
        for (const PolyConstraint &PC : Encoded) {
          PolyConstraint Lin{PC.P.substitute(Assignment), PC.IsEq};
          if (Lin.P.isConstant()) {
            // Ground: check immediately.
            Rational V = Lin.P.constantValue();
            if (Lin.IsEq ? !V.isZero() : V.isNegative())
              return; // Locally infeasible.
            continue;
          }
          C.Constraints.push_back(std::move(Lin));
        }
        // Local LP filter.
        std::vector<const PolyConstraint *> Ptrs;
        for (const PolyConstraint &PC : C.Constraints)
          Ptrs.push_back(&PC);
        if (lpCheck(Ptrs, nullptr))
          Out.Combos.push_back(std::move(C));
        return;
      }
      int Id = Quad[Idx];
      bool NonNeg = Pool.kind(Id) == UnknownKind::Multiplier;
      for (int V = 0; V <= Opts.MultiplierBound; ++V) {
        Assignment[Id] = Rational(V);
        Recurse(Idx + 1);
        if (!NonNeg && V > 0) {
          Assignment[Id] = Rational(-V);
          Recurse(Idx + 1);
        }
      }
      Assignment.erase(Id);
    };
    Recurse(0);
  }

  void prepare() {
    Prepared.resize(Conditions.size());
    for (size_t I = 0; I < Conditions.size(); ++I) {
      for (const ConditionAlternative &Alt : Conditions[I].Alternatives) {
        std::vector<PolyConstraint> Encoded;
        for (const FarkasInstance &FI : Alt.Instances) {
          std::vector<int> Mults;
          farkasEncode(Pool, FI.Antecedent, FI.Target, Encoded, Mults);
        }
        enumerateCombos(Encoded, Prepared[I]);
      }
    }
  }

  bool dfs(const std::vector<size_t> &Order, size_t Depth) {
    if (Budget == 0)
      return false;
    if (Depth == Order.size()) {
      // Final model extraction over the accumulated system.
      std::map<int, Rational> AllMults;
      for (const Combo *C : Chosen)
        AllMults.insert(C->MultValues.begin(), C->MultValues.end());
      return lpCheck(Accumulated, &AllMults);
    }
    const PreparedCondition &Cond = Prepared[Order[Depth]];
    for (const Combo &C : Cond.Combos) {
      size_t Mark = Accumulated.size();
      for (const PolyConstraint &PC : C.Constraints)
        Accumulated.push_back(&PC);
      Chosen.push_back(&C);
      if (lpCheck(Accumulated, nullptr) && dfs(Order, Depth + 1))
        return true;
      Chosen.pop_back();
      Accumulated.resize(Mark);
      if (Budget == 0)
        return false;
    }
    return false;
  }

  static constexpr size_t MaxCombosPerCondition = 512;

  UnknownPool &Pool;
  const std::vector<Condition> &Conditions;
  const SynthOptions &Opts;
  std::vector<PreparedCondition> Prepared;
  std::vector<const PolyConstraint *> Accumulated;
  std::vector<const Combo *> Chosen;
  std::vector<Rational> FinalAssignment;
  uint64_t Budget;
  uint64_t LpChecks = 0;
};

} // namespace

SynthResult pathinv::solveConditions(UnknownPool &Pool,
                                     const std::vector<Condition> &Conditions,
                                     const SynthOptions &Opts) {
  Search S(Pool, Conditions, Opts);
  return S.run();
}
