//===- synth/PathInvariants.cpp - Path-invariant generation ----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/PathInvariants.h"

#include "absint/Interval.h"
#include "core/Resource.h"
#include "program/CutSet.h"
#include "smt/SmtSolver.h"
#include "synth/TemplateHeuristics.h"

using namespace pathinv;

PathInvResult pathinv::generatePathInvariants(const Program &P,
                                              SmtSolver &Solver,
                                              const PathInvOptions &Opts) {
  TermManager &TM = P.termManager();
  PathInvResult Result;
  std::set<LocId> Cuts = computeCutSet(P);

  for (int Level = 0; Level <= Opts.MaxTemplateLevel; ++Level) {
    ++Result.LevelsTried;
    UnknownPool Pool;
    TemplateMap Templates = proposeTemplates(P, Cuts, Pool, Level);

    GenResult Gen = generateConditions(P, Cuts, Templates, Pool, Opts.Gen);
    if (!Gen.Ok) {
      Result.FailureReason = "condition generation: " + Gen.Error;
      return Result;
    }

    SynthResult Synth = solveConditions(Pool, Gen.Conditions, Opts.Synth);
    Result.LpChecks += Synth.LpChecks;
    Result.Learn.add(Synth.Learn);
    if (!Synth.Found) {
      Result.ResourceOut |= Synth.ResourceOut;
      Result.FailureReason = Synth.ResourceOut
                                 ? "solver budget exhausted"
                                 : "no solution within template level " +
                                       std::to_string(Level);
      if (resourceExhausted())
        return Result; // Escalating cannot help a tripped controller.
      continue; // Escalate the template (the Section 5 refinement step).
    }

    InvariantMap Map;
    for (const auto &[Loc, T] : Templates) {
      const Term *Inv = instantiateTemplate(TM, T, Synth.Assignment);
      if (!Inv->isTrue())
        Map.Inv[Loc] = Inv;
    }
    Map.Inv[P.error()] = TM.mkFalse();

    if (Opts.VerifyMap) {
      InvariantCheckResult Check = checkInvariantMap(P, Map, Solver);
      if (!Check.Ok) {
        Result.FailureReason =
            "synthesized map failed verification: " + Check.FailureReason;
        continue;
      }
    }

    Result.Found = true;
    Result.Map = std::move(Map);
    Result.LevelUsed = Level;
    return Result;
  }
  return Result;
}

PathInvResult pathinv::generateIntervalInvariants(const Program &P,
                                                  SmtSolver &Solver,
                                                  bool Verify) {
  TermManager &TM = P.termManager();
  PathInvResult Result;
  IntervalAnalysisResult Analysis = analyzeIntervals(P);
  if (!Analysis.States[P.error()].Bottom) {
    Result.FailureReason = "interval analysis cannot exclude the error "
                           "location";
    return Result;
  }
  InvariantMap Map;
  for (LocId Loc = 0; Loc < P.numLocations(); ++Loc) {
    const Term *Inv = Analysis.stateToTerm(TM, Loc);
    if (!Inv->isTrue())
      Map.Inv[Loc] = Inv;
  }
  Map.Inv[P.error()] = TM.mkFalse();
  if (Verify) {
    InvariantCheckResult Check = checkInvariantMap(P, Map, Solver);
    if (!Check.Ok) {
      Result.FailureReason =
          "interval map failed verification: " + Check.FailureReason;
      return Result;
    }
  }
  Result.Found = true;
  Result.Map = std::move(Map);
  Result.LevelUsed = 0;
  return Result;
}
