//===- synth/TemplateHeuristics.h - Template proposal ----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The template-proposal heuristic of Section 5: start from the shape of
/// the target assertion, escalate on failure.
///
///   * Scalar programs: level 0 proposes one parametric equality
///     `c . X + c0 = 0` per cutpoint ("replacing the coefficients of the
///     target assertion by parameters"); level 1 conjoins a parametric
///     inequality (exactly the FORWARD refinement step, 40 ms failure ->
///     130 ms success in the paper); level 2 conjoins a second one.
///
///   * Array programs (the failing assertion reads an array): every level
///     additionally proposes, per asserted array, a quantified row whose
///     cell relation mirrors the assertion (`a[k] = p3(X)` for
///     `assert(a[i] == 0)`, `-ge[k] + V(X) <= 0` for
///     `assert(ge[i] >= 0)`), with parametric index bounds, following the
///     Section 4.2 template for INITCHECK.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_TEMPLATEHEURISTICS_H
#define PATHINV_SYNTH_TEMPLATEHEURISTICS_H

#include "synth/Template.h"

#include <set>

namespace pathinv {

/// Proposes a template map for the cutpoints \p Cuts of \p P at
/// escalation \p Level (0-based). Entry and error locations are skipped.
TemplateMap proposeTemplates(const Program &P, const std::set<LocId> &Cuts,
                             UnknownPool &Pool, int Level);

/// Maximum meaningful escalation level of the heuristic.
constexpr int MaxTemplateLevel = 2;

} // namespace pathinv

#endif // PATHINV_SYNTH_TEMPLATEHEURISTICS_H
