//===- synth/Template.h - Invariant templates -------------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant templates per Section 4.2: per cutpoint, a conjunction of
/// parametric linear rows
///
///     c_1 x_1 + ... + c_n x_n + c_0  (= | <=)  0
///
/// optionally joined with quantified array rows in the paper's "tractable
/// form" generalized to inequality cells:
///
///     forall k:  L(X) <= k  /\  k <= U(X)  ->  s * a[k] + V(X, k) (= | <=) 0
///
/// where L, U, V are parametric linear expressions and s is a fixed
/// rational picked by the heuristic from the assertion's shape (s = 1,
/// V = -p3(X) reproduces the paper's  a[k] = p3(X)).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_TEMPLATE_H
#define PATHINV_SYNTH_TEMPLATE_H

#include "program/Program.h"
#include "synth/ParamLin.h"

#include <map>

namespace pathinv {

/// Parametric linear conjunct over the program variables.
struct LinearTemplateRow {
  ParamLinExpr E;
  bool IsEq = false; ///< E = 0 when true, E <= 0 otherwise.
};

/// Parametric universally quantified conjunct about one array.
struct QuantTemplateRow {
  const Term *Array = nullptr; ///< Unprimed array program variable.
  ParamLinExpr Lower;          ///< L(X): lower bound on the index k.
  ParamLinExpr Upper;          ///< U(X): upper bound on the index k.
  Rational CellCoeff;          ///< s: coefficient of a[k].
  ParamLinExpr Value;          ///< V(X, k); may use the BoundVar column.
  bool ValueIsEq = true;       ///< Cell relation: = 0 or <= 0.
  const Term *BoundVar = nullptr; ///< The k variable (column of Value).
};

/// The template attached to one cutpoint.
struct LocTemplate {
  std::vector<LinearTemplateRow> Linear;
  std::vector<QuantTemplateRow> Quant;

  bool empty() const { return Linear.empty() && Quant.empty(); }
};

/// Cutpoint -> template. Entry and error locations carry implicit
/// true/false and need no entries.
using TemplateMap = std::map<LocId, LocTemplate>;

/// Creates a fresh parametric linear expression over \p Columns
/// (parameter per column plus a free constant).
ParamLinExpr mkParamExpr(UnknownPool &Pool,
                         const std::vector<const Term *> &Columns,
                         const std::string &Prefix);

/// Instantiates \p T with solved unknown values into a formula over the
/// program variables.
const Term *instantiateTemplate(TermManager &TM, const LocTemplate &T,
                                const std::vector<Rational> &Assignment);

} // namespace pathinv

#endif // PATHINV_SYNTH_TEMPLATE_H
