//===- synth/ConstraintGen.cpp - Synthesis condition generation -----------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/ConstraintGen.h"

#include "program/PathFormula.h"

#include <functional>
#include <map>

using namespace pathinv;

namespace {

/// Array write within a segment, in SSA form with alias roots resolved.
struct StoreInfo {
  const Term *Defined = nullptr; ///< Defined array instance (root).
  const Term *Base = nullptr;    ///< Source array instance (root).
  LinearExpr Idx;
  LinearExpr Val;
};

/// One fully expanded branch of a segment.
struct SegBranch {
  std::vector<Row> Rows;
  std::vector<StoreInfo> Stores;
};

/// A ground instantiation candidate of a source quantified row.
struct HypCandidate {
  Row Instance;          ///< The instantiated cell fact.
  ParamLinExpr SideLow;  ///< Lower(X0) - idx  (must be <= 0).
  ParamLinExpr SideUp;   ///< idx - Upper(X0)  (must be <= 0).
  std::string Desc;
};

/// DNF expansion of a transition constraint into literal branches.
/// Returns false when the branch count would exceed the cap.
bool expandDNF(TermManager &TM, const Term *F,
               std::vector<std::vector<const Term *>> &Out, size_t Cap) {
  switch (F->kind()) {
  case TermKind::And: {
    std::vector<std::vector<const Term *>> Acc{{}};
    for (const Term *Op : F->operands()) {
      std::vector<std::vector<const Term *>> Sub;
      if (!expandDNF(TM, Op, Sub, Cap))
        return false;
      std::vector<std::vector<const Term *>> Next;
      for (const auto &A : Acc) {
        for (const auto &B : Sub) {
          if (Next.size() >= Cap)
            return false;
          std::vector<const Term *> Merged = A;
          Merged.insert(Merged.end(), B.begin(), B.end());
          Next.push_back(std::move(Merged));
        }
      }
      Acc = std::move(Next);
    }
    Out = std::move(Acc);
    return true;
  }
  case TermKind::Or: {
    for (const Term *Op : F->operands()) {
      std::vector<std::vector<const Term *>> Sub;
      if (!expandDNF(TM, Op, Sub, Cap))
        return false;
      for (auto &B : Sub) {
        if (Out.size() >= Cap)
          return false;
        Out.push_back(std::move(B));
      }
    }
    return true;
  }
  case TermKind::Not: {
    const Term *Inner = F->operand(0);
    if (Inner->kind() == TermKind::And || Inner->kind() == TermKind::Or) {
      // De Morgan, then recurse.
      std::vector<const Term *> Negated;
      for (const Term *Op : Inner->operands())
        Negated.push_back(TM.mkNot(Op));
      const Term *Pushed = Inner->kind() == TermKind::And
                               ? TM.mkOr(std::move(Negated))
                               : TM.mkAnd(std::move(Negated));
      return expandDNF(TM, Pushed, Out, Cap);
    }
    Out.push_back({F});
    return true;
  }
  default:
    Out.push_back({F});
    return true;
  }
}

/// Shifts a linear expression into `E + Delta <= 0` row form.
Row leRow(LinearExpr E, int64_t Delta = 0) {
  E.addConstant(Rational(Delta));
  return Row::le(ParamLinExpr::fromLinear(E));
}

class Generator {
public:
  Generator(const Program &P, const std::set<LocId> &Cuts,
            const TemplateMap &Templates, UnknownPool &Pool,
            const GenOptions &Opts)
      : P(P), TM(P.termManager()), Cuts(Cuts), Templates(Templates),
        Pool(Pool), Opts(Opts) {}

  GenResult run() {
    GenResult Result;
    std::vector<std::vector<int>> Segments = cutToCutPaths(P, Cuts);
    for (const auto &Seg : Segments) {
      if (!processSegment(Seg)) {
        Result.Error = Error;
        return Result;
      }
    }
    Result.Ok = true;
    Result.Conditions = std::move(Conditions);
    return Result;
  }

private:
  bool fail(std::string Msg) {
    Error = std::move(Msg);
    return false;
  }

  bool processSegment(const std::vector<int> &Seg) {
    LocId Src = P.transition(Seg.front()).From;
    LocId Dst = P.transition(Seg.back()).To;
    if (!Cuts.count(Dst))
      return true; // Terminal dead end: vacuous obligations.
    bool DstError = Dst == P.error();
    const LocTemplate *DstT = nullptr;
    if (!DstError) {
      auto It = Templates.find(Dst);
      if (It == Templates.end() || It->second.empty())
        return true; // Implicit true target: nothing to prove.
      DstT = &It->second;
    }
    const LocTemplate *SrcT = nullptr;
    if (auto It = Templates.find(Src); It != Templates.end())
      SrcT = &It->second;

    PathFormula PF = buildPathFormula(P, Seg);

    // DNF-expand the conjunction of all step formulas.
    std::vector<std::vector<const Term *>> Branches;
    {
      std::vector<const Term *> All;
      for (const Term *Step : PF.StepFormulas)
        flattenConjuncts(Step, All);
      if (!expandDNF(TM, TM.mkAnd(All), Branches,
                     Opts.MaxBranchesPerSegment))
        return fail("disjunctive branch explosion in segment");
    }

    std::string SegDesc =
        P.locationName(Src) + " ~> " + P.locationName(Dst);
    for (const auto &Branch : Branches) {
      if (!processBranch(PF, Branch, SrcT, DstT, DstError, SegDesc))
        return false;
    }
    return true;
  }

  bool processBranch(const PathFormula &PF,
                     const std::vector<const Term *> &Literals,
                     const LocTemplate *SrcT, const LocTemplate *DstT,
                     bool DstError, const std::string &SegDesc) {
    // --- Array alias resolution (union-find; earliest instance = root).
    std::map<const Term *, const Term *, TermIdLess> Parent;
    std::function<const Term *(const Term *)> Find =
        [&](const Term *V) -> const Term * {
      auto It = Parent.find(V);
      if (It == Parent.end() || It->second == V)
        return V;
      const Term *Root = Find(It->second);
      It->second = Root;
      return Root;
    };
    auto Union = [&](const Term *A, const Term *B) {
      const Term *RA = Find(A);
      const Term *RB = Find(B);
      if (RA == RB)
        return;
      if (RA->id() > RB->id())
        std::swap(RA, RB);
      Parent[RB] = RA;
    };
    for (const Term *Lit : Literals) {
      if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray() &&
          Lit->operand(0)->isVar() && Lit->operand(1)->isVar())
        Union(Lit->operand(0), Lit->operand(1));
    }
    TermMap AliasSubst;
    for (const auto &[V, Par] : Parent) {
      const Term *Root = Find(V);
      if (Root != V)
        AliasSubst[V] = Root;
    }

    // --- Classification into rows, stores, and disequalities.
    std::vector<Row> Rows;
    std::vector<StoreInfo> Stores;
    std::vector<LinearExpr> Diseqs;
    for (const Term *RawLit : Literals) {
      const Term *Lit = substitute(TM, RawLit, AliasSubst);
      if (Lit->isTrue())
        continue;
      if (Lit->isFalse())
        return true; // Infeasible branch: obligations vacuous.
      if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray()) {
        const Term *A = Lit->operand(0);
        const Term *B = Lit->operand(1);
        if (B->kind() == TermKind::Store)
          std::swap(A, B);
        if (A->kind() != TermKind::Store)
          continue; // Alias, already resolved.
        if (!B->isVar() || !A->operand(0)->isVar())
          return fail("unsupported array equality shape");
        StoreInfo S;
        S.Defined = Find(B);
        S.Base = Find(A->operand(0));
        auto Idx = LinearExpr::fromTerm(A->operand(1));
        auto Val = LinearExpr::fromTerm(A->operand(2));
        if (!Idx || !Val)
          return fail("non-linear array index or value");
        S.Idx = *Idx;
        S.Val = *Val;
        Stores.push_back(std::move(S));
        continue;
      }
      if (Lit->kind() == TermKind::Not) {
        const Term *Atom = Lit->operand(0);
        if (Atom->kind() != TermKind::Eq || !Atom->operand(0)->isInt())
          return fail("unsupported negated literal in transition");
        auto LA = decomposeAtom(Atom);
        if (!LA)
          return fail("non-linear disequality in transition");
        Diseqs.push_back(normalizeToIntegral(LA->Expr));
        continue;
      }
      auto LA = decomposeAtom(Lit);
      if (!LA)
        return fail("non-linear atom in transition");
      switch (LA->Rel) {
      case RelKind::Eq:
        Rows.push_back(Row::eq(ParamLinExpr::fromLinear(LA->Expr)));
        break;
      case RelKind::Le:
        Rows.push_back(Row::le(ParamLinExpr::fromLinear(LA->Expr)));
        break;
      case RelKind::Lt:
        // Integer tightening: e < 0 over integral atoms is e + 1 <= 0.
        Rows.push_back(leRow(normalizeToIntegral(LA->Expr), 1));
        break;
      }
    }

    // --- Scalar alias collapsing. SSA frame conditions produce long
    // chains x@1 = x@0, x@2 = x@1, ...; every link adds a Farkas column.
    // Union the chained instances (earliest instance becomes the root)
    // and rewrite rows, store expressions, and later the template
    // renamings through the same map. This typically shrinks the column
    // count from vars*steps to vars.
    TermMap ScalarAlias;
    {
      std::map<const Term *, const Term *, TermIdLess> ColParent;
      std::function<const Term *(const Term *)> ColFind =
          [&](const Term *V) -> const Term * {
        auto It = ColParent.find(V);
        if (It == ColParent.end() || It->second == V)
          return V;
        const Term *Root = ColFind(It->second);
        It->second = Root;
        return Root;
      };
      for (const Row &R : Rows) {
        if (!R.IsEq || !R.E.constant().isZero() ||
            R.E.coefficients().size() != 2)
          continue;
        auto It = R.E.coefficients().begin();
        const Term *C1 = It->first;
        const Poly &P1 = It->second;
        ++It;
        const Term *C2 = It->first;
        const Poly &P2 = It->second;
        if (!C1->isVar() || !C2->isVar())
          continue;
        if (!P1.isConstant() || !P2.isConstant())
          continue;
        if (!(P1.constantValue() + P2.constantValue()).isZero() ||
            !P1.constantValue().abs().isOne())
          continue;
        const Term *R1 = ColFind(C1);
        const Term *R2 = ColFind(C2);
        if (R1 == R2)
          continue;
        if (R1->id() > R2->id())
          std::swap(R1, R2);
        ColParent[R2] = R1;
      }
      for (const auto &[V, Par] : ColParent) {
        const Term *Root = ColFind(V);
        if (Root != V)
          ScalarAlias[V] = Root;
      }
    }
    if (!ScalarAlias.empty()) {
      auto rewriteLinear = [&](const LinearExpr &E) {
        LinearExpr Out(E.constant());
        for (const auto &[Atom, Coeff] : E.coefficients())
          Out.addTerm(substitute(TM, Atom, ScalarAlias), Coeff);
        return Out;
      };
      std::vector<Row> NewRows;
      for (const Row &R : Rows) {
        ParamLinExpr E;
        E.addConstant(R.E.constant());
        for (const auto &[Column, Coeff] : R.E.coefficients())
          E.addTerm(substitute(TM, Column, ScalarAlias), Coeff);
        // Drop rows that collapsed to 0 = 0.
        if (E.coefficients().empty() && E.constant().isZero())
          continue;
        NewRows.push_back(R.IsEq ? Row::eq(std::move(E))
                                 : Row::le(std::move(E)));
      }
      Rows = std::move(NewRows);
      for (StoreInfo &S : Stores) {
        S.Idx = rewriteLinear(S.Idx);
        S.Val = rewriteLinear(S.Val);
      }
      for (LinearExpr &E : Diseqs)
        E = rewriteLinear(E);
    }

    // Reject reads of arrays that are written in the same segment (a
    // store-chained read would need its own case split; the paper's
    // programs never produce this shape).
    TermSet DefinedSet;
    for (const StoreInfo &S : Stores)
      DefinedSet.insert(S.Defined);
    auto rowsReadDefined = [&](const Row &R) {
      for (const auto &[Column, Coeff] : R.E.coefficients())
        if (Column->kind() == TermKind::Select &&
            DefinedSet.count(Column->operand(0)))
          return true;
      return false;
    };
    for (const Row &R : Rows)
      if (rowsReadDefined(R))
        return fail("read of an array written in the same segment");

    // --- Disequality case splits (conjunctive: all cases must hold).
    std::vector<std::vector<Row>> RowSets{Rows};
    for (const LinearExpr &E : Diseqs) {
      std::vector<std::vector<Row>> Next;
      for (const auto &Base : RowSets) {
        if (Next.size() + 2 > Opts.MaxBranchesPerSegment * 2)
          return fail("disequality split explosion");
        std::vector<Row> Left = Base;
        Left.push_back(leRow(E, 1)); // e <= -1
        Next.push_back(std::move(Left));
        std::vector<Row> Right = Base;
        Right.push_back(leRow(E * Rational(-1), 1)); // e >= 1
        Next.push_back(std::move(Right));
      }
      RowSets = std::move(Next);
    }

    // --- Emit conditions per row set.
    for (const auto &RowSet : RowSets) {
      if (!emitConditions(PF, Find, ScalarAlias, RowSet, Stores, SrcT,
                          DstT, DstError, SegDesc))
        return false;
    }
    return true;
  }

  /// Renaming of template columns (program variables) to SSA instances,
  /// collapsed through the branch's scalar-alias map. Skipping the
  /// collapse would rename template columns to instances that appear in
  /// no (rewritten) antecedent row, forcing their parameters to zero in
  /// every Farkas column equation.
  TermMap renameAt(const PathFormula &PF, bool Final,
                   const TermMap &ScalarAlias) const {
    TermMap Result;
    const TermMap &Inst = Final ? PF.FinalVars : PF.InitialVars;
    for (const auto &[Var, Instance] : Inst) {
      auto It = ScalarAlias.find(Instance);
      Result[Var] = It == ScalarAlias.end() ? Instance : It->second;
    }
    return Result;
  }

  /// Substitutes the bound-variable column of \p Value by a linear index.
  static ParamLinExpr substBound(const ParamLinExpr &Value,
                                 const Term *BoundVar,
                                 const LinearExpr &Idx) {
    ParamLinExpr Result;
    Result.addConstant(Value.constant());
    for (const auto &[Column, Coeff] : Value.coefficients()) {
      if (Column != BoundVar) {
        Result.addTerm(Column, Coeff);
        continue;
      }
      // Coeff * Idx distributed over Idx's atoms and constant.
      for (const auto &[Atom, C] : Idx.coefficients())
        Result.addTerm(Atom, Coeff * C);
      Result.addConstant(Coeff * Poly(Idx.constant()));
    }
    return Result;
  }

  /// Builds the source-template antecedent rows and hypothesis candidates.
  void sourceSide(const PathFormula &PF, const LocTemplate *SrcT,
                  const TermMap &ScalarAlias,
                  const std::vector<Row> &PathRows,
                  const std::function<const Term *(const Term *)> &Find,
                  std::vector<Row> &AnteBase,
                  std::vector<HypCandidate> &Candidates,
                  const std::vector<const Term *> &ExtraReadTerms) {
    AnteBase = PathRows;
    if (!SrcT)
      return;
    TermMap SrcRename = renameAt(PF, /*Final=*/false, ScalarAlias);
    for (const LinearTemplateRow &LR : SrcT->Linear) {
      ParamLinExpr E = LR.E.substituteColumns(SrcRename);
      AnteBase.push_back(LR.IsEq ? Row::eq(std::move(E))
                                 : Row::le(std::move(E)));
    }
    // Instantiation candidates: reads of the source instance of each
    // quantified row's array, found in the path rows plus extras.
    for (const QuantTemplateRow &Q : SrcT->Quant) {
      const Term *SrcInst = Find(PF.InitialVars.at(Q.Array));
      TermSet Reads;
      auto scan = [&](const Term *Column) {
        if (Column->kind() == TermKind::Select &&
            Column->operand(0) == SrcInst)
          Reads.insert(Column);
      };
      for (const Row &R : PathRows)
        for (const auto &[Column, Coeff] : R.E.coefficients())
          scan(Column);
      for (const Term *Extra : ExtraReadTerms)
        scan(Extra);
      for (const Term *Read : Reads) {
        if (Candidates.size() >= Opts.MaxHypInstantiations)
          break;
        auto Idx = LinearExpr::fromTerm(Read->operand(1));
        if (!Idx)
          continue;
        HypCandidate C;
        ParamLinExpr Cell = substBound(
            Q.Value.substituteColumns(SrcRename), Q.BoundVar, *Idx);
        Cell.addTerm(Read, Poly(Q.CellCoeff));
        C.Instance = Q.ValueIsEq ? Row::eq(std::move(Cell))
                                 : Row::le(std::move(Cell));
        // Side conditions (eq. 6): Lower(X0) <= idx and idx <= Upper(X0).
        ParamLinExpr LowerR = Q.Lower.substituteColumns(SrcRename);
        ParamLinExpr IdxP = ParamLinExpr::fromLinear(*Idx);
        C.SideLow = LowerR - IdxP;
        C.SideUp = IdxP - Q.Upper.substituteColumns(SrcRename);
        C.Desc = "inst@" + std::to_string(Read->id());
        Candidates.push_back(std::move(C));
      }
    }
  }

  /// Assembles the alternatives of one condition.
  void pushCondition(std::string Desc, const std::vector<Row> &AnteBase,
                     const std::vector<HypCandidate> &Candidates,
                     const std::vector<ParamLinExpr> &Targets) {
    Condition Cond;
    Cond.Desc = std::move(Desc);

    auto addAlternative = [&](const std::vector<size_t> &Used,
                              bool ProveFalse, const char *Tag) {
      ConditionAlternative Alt;
      Alt.Desc = Tag;
      std::vector<Row> Ante = AnteBase;
      for (size_t I : Used)
        Ante.push_back(Candidates[I].Instance);
      if (ProveFalse) {
        Alt.Instances.push_back({Ante, std::nullopt});
      } else {
        for (const ParamLinExpr &T : Targets)
          Alt.Instances.push_back({Ante, T});
      }
      for (size_t I : Used) {
        Alt.Instances.push_back({AnteBase, Candidates[I].SideLow});
        Alt.Instances.push_back({AnteBase, Candidates[I].SideUp});
      }
      Cond.Alternatives.push_back(std::move(Alt));
    };

    // Likeliest first: all candidates, then each single, then none, then
    // refute the antecedent.
    if (!Targets.empty()) {
      if (Candidates.size() > 1) {
        std::vector<size_t> All(Candidates.size());
        for (size_t I = 0; I < All.size(); ++I)
          All[I] = I;
        addAlternative(All, false, "target+all-insts");
      }
      for (size_t I = 0; I < Candidates.size(); ++I)
        addAlternative({I}, false, "target+inst");
      addAlternative({}, false, "target");
    }
    // Refutation may equally need the quantified facts: the safety
    // conditions of Section 4.2 contradict the negated assertion with an
    // instantiated cell fact (e.g. a[i] = 0 against a[i] != 0).
    for (size_t I = 0; I < Candidates.size(); ++I)
      addAlternative({I}, true, "refute+inst");
    if (Candidates.size() > 1) {
      std::vector<size_t> All(Candidates.size());
      for (size_t I = 0; I < All.size(); ++I)
        All[I] = I;
      addAlternative(All, true, "refute+all-insts");
    }
    addAlternative({}, true, "refute-antecedent");
    Conditions.push_back(std::move(Cond));
  }

  bool emitConditions(const PathFormula &PF,
                      const std::function<const Term *(const Term *)> &Find,
                      const TermMap &ScalarAlias,
                      const std::vector<Row> &PathRows,
                      const std::vector<StoreInfo> &Stores,
                      const LocTemplate *SrcT, const LocTemplate *DstT,
                      bool DstError, const std::string &SegDesc) {
    // --- Error target: refute the branch (with hypothesis help).
    if (DstError) {
      std::vector<Row> AnteBase;
      std::vector<HypCandidate> Candidates;
      sourceSide(PF, SrcT, ScalarAlias, PathRows, Find, AnteBase, Candidates,
                 {});
      pushCondition("safety " + SegDesc, AnteBase, Candidates, {});
      return true;
    }

    TermMap DstRename = renameAt(PF, /*Final=*/true, ScalarAlias);

    // --- Linear target rows.
    for (const LinearTemplateRow &LR : DstT->Linear) {
      std::vector<Row> AnteBase;
      std::vector<HypCandidate> Candidates;
      sourceSide(PF, SrcT, ScalarAlias, PathRows, Find, AnteBase, Candidates,
                 {});
      ParamLinExpr T = LR.E.substituteColumns(DstRename);
      std::vector<ParamLinExpr> Targets{T};
      if (LR.IsEq)
        Targets.push_back(-T);
      pushCondition("lin " + SegDesc, AnteBase, Candidates, Targets);
    }

    // --- Quantified target rows.
    for (size_t QIdx = 0; QIdx < DstT->Quant.size(); ++QIdx) {
      const QuantTemplateRow &Q = DstT->Quant[QIdx];
      const Term *K =
          TM.mkVar("k!" + std::to_string(SkolemCounter++), Sort::Int);
      LinearExpr KExpr = LinearExpr::atom(K);

      // Guard rows: Lower'(X') <= k <= Upper'(X').
      ParamLinExpr LowerR = Q.Lower.substituteColumns(DstRename);
      ParamLinExpr UpperR = Q.Upper.substituteColumns(DstRename);
      ParamLinExpr GuardLow = LowerR - ParamLinExpr::fromLinear(KExpr);
      ParamLinExpr GuardUp = ParamLinExpr::fromLinear(KExpr) - UpperR;

      // Resolve the final array instance and its (single) write.
      const Term *Final = Find(PF.FinalVars.at(Q.Array));
      const StoreInfo *Write = nullptr;
      for (const StoreInfo &S : Stores) {
        if (S.Defined == Final) {
          if (Write)
            return fail("two writes to one array in a segment");
          Write = &S;
        }
      }
      const Term *ReadBase = Write ? Write->Base : Final;
      if (Write) {
        for (const StoreInfo &S : Stores)
          if (S.Defined == ReadBase)
            return fail("store chains within a segment are unsupported");
      }

      // Target cell at index k over the pre-write array.
      ParamLinExpr ValueR =
          substBound(Q.Value.substituteColumns(DstRename), Q.BoundVar,
                     KExpr);
      auto cellTargets = [&](ParamLinExpr Cell) {
        Cell.add(ValueR);
        std::vector<ParamLinExpr> Targets{Cell};
        if (Q.ValueIsEq)
          Targets.push_back(-Cell);
        return Targets;
      };

      auto emitCase = [&](std::vector<Row> CaseRows,
                          std::vector<ParamLinExpr> Targets,
                          const char *CaseName) {
        CaseRows.push_back(Row::le(GuardLow));
        CaseRows.push_back(Row::le(GuardUp));
        std::vector<Row> AnteBase;
        std::vector<HypCandidate> Candidates;
        const Term *ReadAtK = TM.mkSelect(ReadBase, K);
        sourceSide(PF, SrcT, ScalarAlias, CaseRows, Find, AnteBase,
                   Candidates, {ReadAtK});
        pushCondition(std::string("quant-") + CaseName + " " + SegDesc,
                      AnteBase, Candidates, std::move(Targets));
      };

      std::vector<Row> Base = PathRows;
      if (!Write) {
        ParamLinExpr Cell;
        Cell.addTerm(TM.mkSelect(Final, K), Poly(Q.CellCoeff));
        emitCase(Base, cellTargets(std::move(Cell)), "nowrite");
      } else {
        // Case k = write index (eq. 4a/5): cell value is the written one.
        {
          std::vector<Row> CaseRows = Base;
          LinearExpr KMinusIdx = KExpr - Write->Idx;
          CaseRows.push_back(Row::eq(ParamLinExpr::fromLinear(KMinusIdx)));
          ParamLinExpr Cell = ParamLinExpr::fromLinear(Write->Val);
          Cell.scale(Q.CellCoeff);
          emitCase(std::move(CaseRows), cellTargets(std::move(Cell)),
                   "hit");
        }
        // Cases k < idx and k > idx (eq. 4b/6/7): cell is the old one.
        for (int Side = 0; Side < 2; ++Side) {
          std::vector<Row> CaseRows = Base;
          LinearExpr Diff = Side == 0 ? KExpr - Write->Idx
                                      : Write->Idx - KExpr;
          CaseRows.push_back(leRow(normalizeToIntegral(Diff), 1));
          ParamLinExpr Cell;
          Cell.addTerm(TM.mkSelect(ReadBase, K), Poly(Q.CellCoeff));
          emitCase(std::move(CaseRows), cellTargets(std::move(Cell)),
                   Side == 0 ? "miss-left" : "miss-right");
        }
      }
    }
    return true;
  }

  const Program &P;
  TermManager &TM;
  const std::set<LocId> &Cuts;
  const TemplateMap &Templates;
  UnknownPool &Pool;
  GenOptions Opts;
  std::vector<Condition> Conditions;
  std::string Error;
  uint64_t SkolemCounter = 0;
};

} // namespace

GenResult pathinv::generateConditions(const Program &P,
                                      const std::set<LocId> &Cuts,
                                      const TemplateMap &Templates,
                                      UnknownPool &Pool,
                                      const GenOptions &Opts) {
  Generator G(P, Cuts, Templates, Pool, Opts);
  return G.run();
}
