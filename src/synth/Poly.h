//===- synth/Poly.h - Unknowns and low-degree polynomials ------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unknown pool and polynomial arithmetic for constraint-based
/// invariant synthesis (Section 4.2).
///
/// Farkas' lemma turns each inductiveness condition into equations between
/// template parameters and nonnegative multipliers. Because the antecedent
/// rows themselves carry parameters, the equations are *bilinear*:
/// products multiplier * parameter of total degree two. \c Poly represents
/// exactly this fragment (degree <= 2), and the solver resolves the
/// bilinearity by enumerating small integer values for the multipliers
/// that participate in quadratic monomials (the standard practical
/// technique for Colon-Sankaranarayanan-Sipma-style synthesis, replacing
/// the paper's SICStus CLP(Q) search).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_POLY_H
#define PATHINV_SYNTH_POLY_H

#include "support/Rational.h"

#include <map>
#include <string>
#include <vector>

namespace pathinv {

/// What an unknown stands for; drives the solver's strategy.
enum class UnknownKind : uint8_t {
  Param,      ///< Template parameter (free rational).
  Multiplier, ///< Farkas multiplier for an inequality row (>= 0).
  FreeMult,   ///< Farkas multiplier for an equality row (free sign).
};

/// Registry of unknowns for one synthesis problem.
class UnknownPool {
public:
  int add(UnknownKind Kind, std::string Name) {
    Kinds.push_back(Kind);
    Names.push_back(std::move(Name));
    return static_cast<int>(Kinds.size()) - 1;
  }
  int size() const { return static_cast<int>(Kinds.size()); }
  UnknownKind kind(int Id) const { return Kinds[Id]; }
  const std::string &name(int Id) const { return Names[Id]; }

private:
  std::vector<UnknownKind> Kinds;
  std::vector<std::string> Names;
};

/// A monomial over unknowns of degree at most two. Canonical form:
/// (-1, -1) = constant, (-1, i) = unknown i, (i, j) with i <= j = product.
struct Monomial {
  int A = -1;
  int B = -1;

  static Monomial constant() { return {}; }
  static Monomial linear(int Id) { return {-1, Id}; }
  static Monomial quadratic(int I, int J) {
    return I <= J ? Monomial{I, J} : Monomial{J, I};
  }

  int degree() const { return (A >= 0 ? 1 : 0) + (B >= 0 ? 1 : 0); }
  bool operator<(const Monomial &RHS) const {
    return A != RHS.A ? A < RHS.A : B < RHS.B;
  }
  bool operator==(const Monomial &RHS) const {
    return A == RHS.A && B == RHS.B;
  }
};

/// Polynomial of degree <= 2 over unknowns, with rational coefficients.
class Poly {
public:
  Poly() = default;
  /// Constant polynomial.
  explicit Poly(Rational Constant) {
    if (!Constant.isZero())
      Terms[Monomial::constant()] = std::move(Constant);
  }
  /// The single unknown \p Id.
  static Poly unknown(int Id) {
    Poly P;
    P.Terms[Monomial::linear(Id)] = Rational(1);
    return P;
  }

  bool isZero() const { return Terms.empty(); }
  bool isConstant() const {
    return Terms.empty() ||
           (Terms.size() == 1 && Terms.begin()->first.degree() == 0);
  }
  Rational constantValue() const {
    auto It = Terms.find(Monomial::constant());
    return It == Terms.end() ? Rational() : It->second;
  }
  bool isLinear() const {
    for (const auto &[M, C] : Terms)
      if (M.degree() > 1)
        return false;
    return true;
  }

  const std::map<Monomial, Rational> &terms() const { return Terms; }

  void add(const Poly &RHS) {
    for (const auto &[M, C] : RHS.Terms)
      addTerm(M, C);
  }
  void sub(const Poly &RHS) {
    for (const auto &[M, C] : RHS.Terms)
      addTerm(M, -C);
  }
  void scale(const Rational &Factor) {
    if (Factor.isZero()) {
      Terms.clear();
      return;
    }
    for (auto &[M, C] : Terms)
      C *= Factor;
  }
  void addTerm(const Monomial &M, const Rational &C) {
    if (C.isZero())
      return;
    auto [It, Inserted] = Terms.try_emplace(M, C);
    if (!Inserted) {
      It->second += C;
      if (It->second.isZero())
        Terms.erase(It);
    }
  }
  /// Accumulates `*this += RHS * Factor` without a temporary polynomial.
  /// Alias-safe: `P.addMul(P, f)` takes a copy first (erasing a cancelled
  /// term would otherwise invalidate the live iteration).
  void addMul(const Poly &RHS, const Rational &Factor) {
    if (Factor.isZero())
      return;
    if (&RHS == this) {
      addMul(Poly(*this), Factor);
      return;
    }
    for (const auto &[M, C] : RHS.Terms) {
      auto It = Terms.try_emplace(M).first;
      It->second.addMul(C, Factor);
      if (It->second.isZero())
        Terms.erase(It);
    }
  }
  /// Accumulates `*this += A * B` (degree-checked) without materializing
  /// the product polynomial. Fuses the Farkas column-equation pattern
  /// `Sum.add(Lambda * Coeff)` into in-place updates.
  void addMul(const Poly &A, const Poly &B);

  Poly operator+(const Poly &RHS) const {
    Poly Result = *this;
    Result.add(RHS);
    return Result;
  }
  Poly operator-(const Poly &RHS) const {
    Poly Result = *this;
    Result.sub(RHS);
    return Result;
  }
  Poly operator*(const Rational &Factor) const {
    Poly Result = *this;
    Result.scale(Factor);
    return Result;
  }
  /// Product; asserts the result stays within degree 2.
  Poly operator*(const Poly &RHS) const;
  Poly operator-() const { return *this * Rational(-1); }
  bool operator==(const Poly &RHS) const { return Terms == RHS.Terms; }

  /// Substitutes concrete values for the given unknowns.
  Poly substitute(const std::map<int, Rational> &Values) const;

  /// Substitutes a single unknown (the multiplier-enumeration hot path:
  /// no map to build or probe).
  Poly substituteOne(int Id, const Rational &Value) const;

  /// Unknown ids occurring in quadratic monomials.
  std::vector<int> quadraticUnknowns() const;

  /// Evaluates under a full assignment (asserts all unknowns assigned).
  Rational evaluate(const std::vector<Rational> &Assignment) const;

  std::string toString(const UnknownPool &Pool) const;

private:
  std::map<Monomial, Rational> Terms;
};

/// A constraint `P = 0` (IsEq) or `P >= 0` over the unknowns.
struct PolyConstraint {
  Poly P;
  bool IsEq = false;
};

} // namespace pathinv

#endif // PATHINV_SYNTH_POLY_H
