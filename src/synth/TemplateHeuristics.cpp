//===- synth/TemplateHeuristics.cpp - Template proposal ---------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/TemplateHeuristics.h"

#include "logic/TermRewrite.h"

using namespace pathinv;

namespace {

/// Shape of one quantified row to propose, extracted from a failing
/// assertion atom that reads an array.
struct CellShape {
  const Term *Array;
  Rational CellCoeff;
  bool IsEq;
};

/// Extracts cell shapes from the guards of transitions into the error
/// location (those guards are the negated assertions).
std::vector<CellShape> assertedCells(const Program &P) {
  std::vector<CellShape> Shapes;
  TermSet SeenArrays;
  for (const Transition &T : P.transitions()) {
    if (T.To != P.error())
      continue;
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(T.Rel, Conjuncts);
    for (const Term *C : Conjuncts) {
      // The negated assertion literal; frames are primed equalities.
      const Term *Atom = C->kind() == TermKind::Not ? C->operand(0) : C;
      if (!Atom->isAtom() || !Atom->operand(0)->isInt())
        continue;
      TermSet Selects;
      collectSelects(Atom, Selects);
      if (Selects.empty())
        continue;
      auto LA = decomposeAtom(Atom);
      if (!LA)
        continue;
      for (const Term *Read : Selects) {
        const Term *Array = Read->operand(0);
        if (!Array->isVar() || !SeenArrays.insert(Array).second)
          continue;
        Rational Coeff = LA->Expr.coefficientOf(Read);
        if (Coeff.isZero())
          continue;
        // The guard is the *negation* of the assertion:
        //   guard  e = 0  (from Not(Eq) via assert(a[i] != c)) — rare;
        //   guard  Not(e = 0) — assertion was an equality;
        //   guard  e <= 0 / e < 0 — assertion was e > 0 / e >= 0,
        //     i.e. the asserted relation is  -e < 0 / -e <= 0.
        bool GuardNegated = C->kind() == TermKind::Not;
        if (LA->Rel == RelKind::Eq) {
          Shapes.push_back({Array, Rational(1), /*IsEq=*/GuardNegated});
        } else {
          // Asserted: -e REL 0 with REL in {<, <=}; propose the <= form
          // (integer tightening absorbs the strict case).
          Shapes.push_back({Array, -Coeff, /*IsEq=*/false});
        }
      }
    }
  }
  return Shapes;
}

} // namespace

TemplateMap pathinv::proposeTemplates(const Program &P,
                                      const std::set<LocId> &Cuts,
                                      UnknownPool &Pool, int Level) {
  TermManager &TM = P.termManager();
  std::vector<const Term *> Scalars;
  for (const Term *Var : P.variables())
    if (!Var->isArray())
      Scalars.push_back(Var);

  std::vector<CellShape> Cells = assertedCells(P);
  bool ArrayMode = !Cells.empty();

  TemplateMap Map;
  int Counter = 0;
  for (LocId Cut : Cuts) {
    if (Cut == P.entry() || Cut == P.error())
      continue;
    LocTemplate T;
    std::string Prefix = "t" + std::to_string(Counter++);

    if (ArrayMode) {
      // Quantified row per asserted array, plus `Level + 2` inequality
      // rows (Section 4.2's phi carries two: p4 <= 0 and p5 <= 0).
      for (size_t CellIdx = 0; CellIdx < Cells.size(); ++CellIdx) {
        const CellShape &Shape = Cells[CellIdx];
        QuantTemplateRow Q;
        Q.Array = Shape.Array;
        Q.BoundVar =
            TM.mkVar("k$" + std::to_string(Counter) + "_" +
                         std::to_string(CellIdx),
                     Sort::Int);
        Q.Lower = mkParamExpr(Pool, Scalars,
                              Prefix + "q" + std::to_string(CellIdx) + "L");
        Q.Upper = mkParamExpr(Pool, Scalars,
                              Prefix + "q" + std::to_string(CellIdx) + "U");
        Q.CellCoeff = Shape.CellCoeff;
        Q.Value = mkParamExpr(Pool, Scalars,
                              Prefix + "q" + std::to_string(CellIdx) + "V");
        Q.ValueIsEq = Shape.IsEq;
        T.Quant.push_back(std::move(Q));
      }
      int NumIneqs = 2 + Level;
      for (int I = 0; I < NumIneqs; ++I)
        T.Linear.push_back(
            {mkParamExpr(Pool, Scalars,
                         Prefix + "i" + std::to_string(I)),
             /*IsEq=*/false});
    } else {
      // Scalar mode: one equality, escalate by conjoining inequalities.
      T.Linear.push_back(
          {mkParamExpr(Pool, Scalars, Prefix + "e"), /*IsEq=*/true});
      for (int I = 0; I < Level; ++I)
        T.Linear.push_back(
            {mkParamExpr(Pool, Scalars,
                         Prefix + "i" + std::to_string(I)),
             /*IsEq=*/false});
    }
    Map[Cut] = std::move(T);
  }
  return Map;
}
