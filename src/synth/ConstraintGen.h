//===- synth/ConstraintGen.h - Synthesis condition generation --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates the inductiveness/safety conditions of Section 4.2 from a
/// (path) program and a template map over its cutpoints.
///
/// Each cut-to-cut segment of the program yields, per target template row,
/// a *condition*. A condition offers *alternatives* (ways to discharge
/// it): prove the target via Farkas' lemma, prove the antecedent
/// infeasible, and — when the source template has quantified rows — use
/// ground instances of those rows at the relevant array reads, with the
/// guard side-conditions of equation (6). Each alternative is a
/// conjunction of Farkas instances; the solver must pick one alternative
/// per condition such that the union of encodings is satisfiable.
///
/// Quantified target rows follow the derivation (3) -> (4a)/(4b) ->
/// (5),(6),(7): a skolem index k, and a case split against the segment's
/// array write (k = write index; k left of it; k right of it). Segment
/// disequalities (from negated assertions) split into separate conditions
/// the same way. Strict inequalities are integer-tightened (e < 0 becomes
/// e + 1 <= 0), which is what makes bounds like p2 = i - 1 derivable.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_CONSTRAINTGEN_H
#define PATHINV_SYNTH_CONSTRAINTGEN_H

#include "program/CutSet.h"
#include "synth/Farkas.h"
#include "synth/Template.h"

#include <set>
#include <string>

namespace pathinv {

/// One Farkas obligation: antecedent rows entail the target (or false).
struct FarkasInstance {
  std::vector<Row> Antecedent;
  std::optional<ParamLinExpr> Target; ///< nullopt = derive false.
};

/// One way to discharge a condition: all instances must hold.
struct ConditionAlternative {
  std::string Desc;
  std::vector<FarkasInstance> Instances;
};

/// A proof obligation with alternative discharging strategies.
struct Condition {
  std::string Desc;
  std::vector<ConditionAlternative> Alternatives;
};

/// Generation limits.
struct GenOptions {
  size_t MaxBranchesPerSegment = 64;
  size_t MaxHypInstantiations = 4;
};

/// Output of condition generation.
struct GenResult {
  bool Ok = false;
  std::string Error;
  std::vector<Condition> Conditions;
};

/// Generates all conditions for \p Templates over the cutpoints \p Cuts of
/// \p P. Template parameters and Farkas multipliers are drawn from
/// \p Pool.
GenResult generateConditions(const Program &P, const std::set<LocId> &Cuts,
                             const TemplateMap &Templates, UnknownPool &Pool,
                             const GenOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_SYNTH_CONSTRAINTGEN_H
