//===- synth/Farkas.h - Farkas-lemma encoding -------------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Implication Encoding" step of Section 4.2: the validity of a
/// linear implication  /\ rows |= target  is encoded, via Farkas' lemma,
/// as the existence of nonnegative multipliers (free-signed for equality
/// rows) combining the antecedent rows into the target:
///
///   for every column c:   sum_j lambda_j * A[j][c]  =  target[c]
///   for the constants:    sum_j lambda_j * A[j][const] >= target[const]
///
/// Deriving `false` (the safety conditions, and the vacuous-guard cases of
/// quantified templates) is the target-free variant that combines the rows
/// into a positive constant. Both produce PolyConstraints over the
/// unknowns; products multiplier * parameter make them bilinear.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_FARKAS_H
#define PATHINV_SYNTH_FARKAS_H

#include "synth/ParamLin.h"

#include <optional>

namespace pathinv {

/// Encodes `/\ Antecedent |= Target` (or `|= false` when Target is
/// absent). Fresh multipliers are added to \p Pool; their ids are appended
/// to \p Multipliers. Constraints land in \p Out.
///
/// An equality target must be split by the caller into two inequality
/// targets (E <= 0 and -E <= 0).
void farkasEncode(UnknownPool &Pool, const std::vector<Row> &Antecedent,
                  const std::optional<ParamLinExpr> &Target,
                  std::vector<PolyConstraint> &Out,
                  std::vector<int> &Multipliers);

} // namespace pathinv

#endif // PATHINV_SYNTH_FARKAS_H
