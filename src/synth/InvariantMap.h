//===- synth/InvariantMap.h - Invariant maps and checking ------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant maps per Section 3: a mapping from program locations to
/// formulas satisfying (I0) initiation — entry maps to true, (I1)
/// inductiveness — eta(l) /\ rho entails eta(l')', and (I2) safety — the
/// error location maps to false.
///
/// The checker validates a candidate map independently of how it was
/// produced (constraint-based synthesis or abstract interpretation),
/// using quantifier instantiation plus the ground SMT solver. Synthesized
/// maps are only ever handed to the CEGAR loop after passing this check,
/// so a heuristic or solver bug can cost completeness but never
/// soundness.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_INVARIANTMAP_H
#define PATHINV_SYNTH_INVARIANTMAP_H

#include "program/Program.h"

#include <map>
#include <string>

namespace pathinv {

class SmtSolver;

/// Location -> invariant formula (over the program variables).
/// Locations absent from the map are implicitly `true`.
struct InvariantMap {
  std::map<LocId, const Term *> Inv;

  const Term *at(TermManager &TM, LocId Loc) const {
    auto It = Inv.find(Loc);
    return It == Inv.end() ? TM.mkTrue() : It->second;
  }

  /// Localized predicate attribution: splits each location's invariant
  /// into its conjuncts and appends one (location, conjunct) pair per
  /// predicate. This is the granularity at which refiners contribute
  /// invariants to a per-location precision — tracking conjuncts
  /// individually lets cartesian abstraction keep the pieces that still
  /// hold where the whole conjunction does not.
  void collectLocalized(
      std::vector<std::pair<LocId, const Term *>> &Out) const;

  std::string dump(const Program &P) const;
};

/// Result of checking an invariant map.
struct InvariantCheckResult {
  bool Ok = false;
  std::string FailureReason; ///< Human-readable violated obligation.
};

/// Verifies (I0)-(I2) for \p Map over \p P. Conditions are checked with
/// sound quantifier instantiation; a false negative is possible outside
/// the array-property fragment, a false positive is not.
InvariantCheckResult checkInvariantMap(const Program &P,
                                       const InvariantMap &Map,
                                       SmtSolver &Solver);

} // namespace pathinv

#endif // PATHINV_SYNTH_INVARIANTMAP_H
