//===- synth/InvariantMap.h - Invariant maps and checking ------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Invariant maps per Section 3: a mapping from program locations to
/// formulas satisfying (I0) initiation — entry maps to true, (I1)
/// inductiveness — eta(l) /\ rho entails eta(l')', and (I2) safety — the
/// error location maps to false.
///
/// The checker validates a candidate map independently of how it was
/// produced (constraint-based synthesis or abstract interpretation),
/// using quantifier instantiation plus the ground SMT solver. Synthesized
/// maps are only ever handed to the CEGAR loop after passing this check,
/// so a heuristic or solver bug can cost completeness but never
/// soundness.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_INVARIANTMAP_H
#define PATHINV_SYNTH_INVARIANTMAP_H

#include "program/Program.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace pathinv {

class SmtSolver;

/// Location -> invariant formula (over the program variables).
/// Locations absent from the map are implicitly `true`.
struct InvariantMap {
  std::map<LocId, const Term *> Inv;

  const Term *at(TermManager &TM, LocId Loc) const {
    auto It = Inv.find(Loc);
    return It == Inv.end() ? TM.mkTrue() : It->second;
  }

  /// Localized predicate attribution: splits each location's invariant
  /// into its conjuncts and appends one (location, conjunct) pair per
  /// predicate. This is the granularity at which refiners contribute
  /// invariants to a per-location precision — tracking conjuncts
  /// individually lets cartesian abstraction keep the pieces that still
  /// hold where the whole conjunction does not.
  void collectLocalized(
      std::vector<std::pair<LocId, const Term *>> &Out) const;

  std::string dump(const Program &P) const;
};

/// Result of checking an invariant map.
struct InvariantCheckResult {
  bool Ok = false;
  std::string FailureReason; ///< Human-readable violated obligation.
};

/// Verifies (I0)-(I2) for \p Map over \p P. Conditions are checked with
/// sound quantifier instantiation; a false negative is possible outside
/// the array-property fragment, a false positive is not.
InvariantCheckResult checkInvariantMap(const Program &P,
                                       const InvariantMap &Map,
                                       SmtSolver &Solver);

/// Serializes \p Map as a portable `pathinv-cert-v1` certificate: the
/// version header, then one `<location-name> := <formula>` line per mapped
/// location in TermPrinter notation. Locations implicitly `true` are
/// omitted; the error location's `false` is always emitted so a truncated
/// file cannot silently weaken into a trivial certificate. The output
/// round-trips through parseCertificate against the same program.
std::string serializeCertificate(const Program &P, const InvariantMap &Map);

/// Parses a `pathinv-cert-v1` certificate against \p P: location names are
/// resolved in the program (L0/LE/L<k> names are unique per lowering) and
/// formulas parse in the program's variable sorts, so a certificate cannot
/// smuggle in fresh variables under inferred sorts. Parsing performs NO
/// semantic validation — run the result through checkInvariantMap.
Expected<InvariantMap> parseCertificate(const Program &P,
                                        const std::string &Text);

} // namespace pathinv

#endif // PATHINV_SYNTH_INVARIANTMAP_H
