//===- synth/Solver.h - Bilinear constraint solving ------------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves the condition systems produced by the constraint generator.
///
/// The search has two interleaved discrete layers — picking one
/// alternative per condition, and resolving bilinearity by enumerating
/// small integer values for the Farkas multipliers that multiply template
/// parameters — with an exact-rational LP feasibility check (the simplex
/// core) pruning every partial assignment. This replaces the specialized
/// CLP(Q) search of the paper's implementation; both explore valuations of
/// the same Farkas systems.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_SOLVER_H
#define PATHINV_SYNTH_SOLVER_H

#include "synth/ConstraintGen.h"
#include "synth/Learn.h"

namespace pathinv {

/// Knobs for the synthesis search.
struct SynthOptions {
  /// Enumerated multiplier magnitude bound (domain {0..K} or {-K..K}).
  int MultiplierBound = 1;
  /// Hard budget on LP feasibility checks. Successful syntheses of the
  /// paper's programs finish within a few thousand checks; an unsat
  /// template level that is still churning past this bound is better
  /// escalated than ground out (the search reports ResourceOut, so
  /// callers distinguish "proved impossible" from "gave up").
  uint64_t MaxLpChecks = 25000;
  /// Conflict learning: nogoods, combo dedup, root cuts, and the combo
  /// verdict cache. Off, the search is exactly the pre-learning
  /// backjumping DFS — the bench harness's in-process reference and the
  /// differential sweep's oracle both pin that mode.
  bool Learning = true;
  /// Optional persistent learner. When set (engines own one per job),
  /// combo verdicts survive across solveConditions calls — across
  /// template levels, Farkas scope teardowns, and search restarts. When
  /// null, a run-local learner still dedups within the call.
  SynthLearner *Learner = nullptr;
};

/// Outcome of a synthesis run.
struct SynthResult {
  bool Found = false;
  bool ResourceOut = false;
  /// Values for every unknown in the pool (unconstrained ones are zero).
  std::vector<Rational> Assignment;
  uint64_t LpChecks = 0;
  /// Learning work done by this run (deltas, not learner lifetime).
  SynthLearnStats Learn;
};

/// Searches for an unknown assignment satisfying one alternative of every
/// condition.
SynthResult solveConditions(UnknownPool &Pool,
                            const std::vector<Condition> &Conditions,
                            const SynthOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_SYNTH_SOLVER_H
