//===- synth/Poly.cpp - Unknowns and low-degree polynomials ----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Poly.h"

#include <algorithm>
#include <cassert>

using namespace pathinv;

namespace {

/// Product monomial of \p M1 and \p M2; asserts the degree stays <= 2.
Monomial mulMonomial(const Monomial &M1, const Monomial &M2) {
  int Degree = M1.degree() + M2.degree();
  assert(Degree <= 2 && "polynomial degree above two");
  if (Degree == 0)
    return Monomial::constant();
  if (Degree == 1)
    return Monomial::linear(M1.degree() == 1 ? M1.B : M2.B);
  if (M1.degree() == 2)
    return M1;
  if (M2.degree() == 2)
    return M2;
  return Monomial::quadratic(M1.B, M2.B);
}

} // namespace

Poly Poly::operator*(const Poly &RHS) const {
  Poly Result;
  Result.addMul(*this, RHS);
  return Result;
}

void Poly::addMul(const Poly &A, const Poly &B) {
  if (&A == this || &B == this) {
    // Aliased accumulation would read terms while mutating them.
    Poly Product = A * B;
    add(Product);
    return;
  }
  for (const auto &[M1, C1] : A.Terms) {
    for (const auto &[M2, C2] : B.Terms) {
      Monomial M = mulMonomial(M1, M2);
      auto It = Terms.try_emplace(M).first;
      It->second.addMul(C1, C2);
      if (It->second.isZero())
        Terms.erase(It);
    }
  }
}

Poly Poly::substituteOne(int Id, const Rational &Value) const {
  // -1 is the empty-slot sentinel inside Monomial; matching it below
  // would spin forever without making progress.
  assert(Id >= 0 && "substituteOne over the empty-slot sentinel");
  Poly Result;
  for (const auto &[M, C] : Terms) {
    Monomial NewM = M;
    Rational Coeff = C;
    // A quadratic monomial may mention Id twice (Id*Id).
    while (NewM.B == Id || NewM.A == Id) {
      if (NewM.B == Id) {
        NewM.B = NewM.A;
        NewM.A = -1;
      } else {
        NewM.A = -1;
      }
      Coeff *= Value;
    }
    Result.addTerm(NewM, Coeff);
  }
  return Result;
}

Poly Poly::substitute(const std::map<int, Rational> &Values) const {
  Poly Result;
  for (const auto &[M, C] : Terms) {
    Rational Coeff = C;
    int RemainA = -1, RemainB = -1;
    for (int Id : {M.A, M.B}) {
      if (Id < 0)
        continue;
      auto It = Values.find(Id);
      if (It != Values.end()) {
        Coeff *= It->second;
      } else if (RemainA < 0) {
        RemainA = Id;
      } else {
        RemainB = Id;
      }
    }
    if (Coeff.isZero())
      continue;
    Monomial NewM;
    if (RemainA < 0)
      NewM = Monomial::constant();
    else if (RemainB < 0)
      NewM = Monomial::linear(RemainA);
    else
      NewM = Monomial::quadratic(RemainA, RemainB);
    Result.addTerm(NewM, Coeff);
  }
  return Result;
}

std::vector<int> Poly::quadraticUnknowns() const {
  std::vector<int> Out;
  for (const auto &[M, C] : Terms) {
    if (M.degree() == 2) {
      Out.push_back(M.A);
      Out.push_back(M.B);
    }
  }
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

Rational Poly::evaluate(const std::vector<Rational> &Assignment) const {
  Rational Result;
  for (const auto &[M, C] : Terms) {
    Rational Value = C;
    if (M.A >= 0) {
      assert(M.A < static_cast<int>(Assignment.size()));
      Value *= Assignment[M.A];
    }
    if (M.B >= 0) {
      assert(M.B < static_cast<int>(Assignment.size()));
      Value *= Assignment[M.B];
    }
    Result += Value;
  }
  return Result;
}

std::string Poly::toString(const UnknownPool &Pool) const {
  if (Terms.empty())
    return "0";
  std::string Out;
  bool First = true;
  for (const auto &[M, C] : Terms) {
    if (!First)
      Out += C.isNegative() ? " - " : " + ";
    else if (C.isNegative())
      Out += "-";
    First = false;
    Rational AbsC = C.abs();
    bool NeedCoeff = !AbsC.isOne() || M.degree() == 0;
    if (NeedCoeff)
      Out += AbsC.toString();
    if (M.B >= 0) {
      if (NeedCoeff)
        Out += "*";
      if (M.A >= 0)
        Out += Pool.name(M.A) + "*";
      Out += Pool.name(M.B);
    }
  }
  return Out;
}
