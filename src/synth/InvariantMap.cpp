//===- synth/InvariantMap.cpp - Invariant maps and checking ----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/InvariantMap.h"

#include "logic/FormulaParser.h"
#include "logic/TermPrinter.h"
#include "program/CutSet.h"
#include "program/PathFormula.h"
#include "smt/QuantInst.h"
#include "smt/SmtSolver.h"

using namespace pathinv;

void InvariantMap::collectLocalized(
    std::vector<std::pair<LocId, const Term *>> &Out) const {
  for (const auto &[Loc, Formula] : Inv) {
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(Formula, Conjuncts);
    for (const Term *C : Conjuncts)
      Out.emplace_back(Loc, C);
  }
}

std::string InvariantMap::dump(const Program &P) const {
  std::string Out;
  for (const auto &[Loc, Formula] : Inv) {
    Out += "  eta(" + P.locationName(Loc) + ") = " + printTerm(Formula) +
           "\n";
  }
  return Out;
}

InvariantCheckResult pathinv::checkInvariantMap(const Program &P,
                                                const InvariantMap &Map,
                                                SmtSolver &Solver) {
  TermManager &TM = P.termManager();
  InvariantCheckResult Result;

  // (I0) Initiation: eta(entry) = true.
  if (!Map.at(TM, P.entry())->isTrue()) {
    Result.FailureReason = "entry location must map to true";
    return Result;
  }
  // (I2) Safety: eta(error) = false.
  if (!Map.at(TM, P.error())->isFalse()) {
    Result.FailureReason = "error location must map to false";
    return Result;
  }

  // The locations carrying (non-trivial) invariants must form a cutset,
  // so inductiveness can be checked segment-wise (Section 3's efficiency
  // remark; invariants elsewhere follow by strongest postconditions).
  std::set<LocId> Cuts{P.entry(), P.error()};
  for (const auto &[Loc, Formula] : Map.Inv)
    Cuts.insert(Loc);
  if (!isCutSet(P, Cuts)) {
    Result.FailureReason = "invariant locations do not form a cutset";
    return Result;
  }

  // (I1) Inductiveness, segment-composed:
  //   eta(src)[X -> X@0] /\ SSA(segment) |= eta(dst)[X -> X@final].
  for (const std::vector<int> &Seg : cutToCutPaths(P, Cuts)) {
    LocId Src = P.transition(Seg.front()).From;
    LocId Dst = P.transition(Seg.back()).To;
    const Term *Post = Map.at(TM, Dst);
    if (Dst == P.error())
      Post = TM.mkFalse();
    if (Post->isTrue())
      continue;
    const Term *Pre = Map.at(TM, Src);

    PathFormula PF = buildPathFormula(P, Seg);
    const Term *PreRenamed = substitute(TM, Pre, PF.InitialVars);
    const Term *PostRenamed = substitute(TM, Post, PF.FinalVars);
    const Term *Hyp = TM.mkAnd(PreRenamed, PF.formula(TM));
    if (!entailsWithQuant(TM, Solver, Hyp, PostRenamed)) {
      Result.FailureReason =
          "inductiveness fails on segment " + P.locationName(Src) +
          " ~> " + P.locationName(Dst) +
          " for target " + printTerm(Post);
      return Result;
    }
  }
  Result.Ok = true;
  return Result;
}

static const char CertHeader[] = "pathinv-cert-v1";

std::string pathinv::serializeCertificate(const Program &P,
                                          const InvariantMap &Map) {
  TermManager &TM = P.termManager();
  std::string Out = CertHeader;
  Out += "\n";
  for (const auto &[Loc, Formula] : Map.Inv) {
    if (Formula->isTrue())
      continue; // Absent locations are implicitly true.
    Out += P.locationName(Loc) + " := " + printTerm(Formula) + "\n";
  }
  // The safety obligation eta(error) = false must appear explicitly even
  // when the map left it implicit (InvariantMap::at would default a
  // missing error entry to *true*, and a parsed certificate must not
  // depend on the producer's in-memory defaults).
  if (Map.Inv.find(P.error()) == Map.Inv.end())
    Out += P.locationName(P.error()) + " := " + printTerm(TM.mkFalse()) +
           "\n";
  return Out;
}

Expected<InvariantMap> pathinv::parseCertificate(const Program &P,
                                                 const std::string &Text) {
  using EIM = Expected<InvariantMap>;
  TermManager &TM = P.termManager();
  // Certificates speak only the program's vocabulary: seeding the sort
  // environment pins every program variable to its declared sort, and the
  // post-parse free-variable audit rejects identifiers the parser had to
  // invent.
  SortEnv Env;
  for (const Term *Var : P.variables())
    Env[Var->name()] = Var->sort();
  SortEnv Known = Env;

  InvariantMap Map;
  size_t Pos = 0;
  unsigned LineNo = 0;
  bool SawHeader = false;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string Line = Text.substr(
        Pos, Eol == std::string::npos ? std::string::npos : Eol - Pos);
    Pos = Eol == std::string::npos ? Text.size() + 1 : Eol + 1;
    ++LineNo;
    // Trim and skip blanks/comments.
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    Line = Line.substr(B, E - B + 1);
    if (Line[0] == '#')
      continue;
    if (!SawHeader) {
      if (Line != CertHeader)
        return EIM::makeError("expected certificate header '" +
                                  std::string(CertHeader) + "', got '" +
                                  Line + "'",
                              {LineNo, 1});
      SawHeader = true;
      continue;
    }
    size_t Sep = Line.find(":=");
    if (Sep == std::string::npos)
      return EIM::makeError("expected '<location> := <formula>'",
                            {LineNo, 1});
    std::string LocName = Line.substr(0, Sep);
    LocName.erase(LocName.find_last_not_of(" \t") + 1);
    LocId Loc = -1;
    for (LocId L = 0; L < P.numLocations(); ++L)
      if (P.locationName(L) == LocName) {
        Loc = L;
        break;
      }
    if (Loc < 0)
      return EIM::makeError("unknown location '" + LocName + "'",
                            {LineNo, 1});
    if (Map.Inv.count(Loc))
      return EIM::makeError("duplicate entry for location '" + LocName +
                                "'",
                            {LineNo, 1});
    Expected<const Term *> Formula =
        parseFormula(TM, Line.substr(Sep + 2), Env);
    if (!Formula)
      return EIM::makeError("bad formula for '" + LocName +
                                "': " + Formula.error().render(),
                            {LineNo, 1});
    Map.Inv[Loc] = Formula.get();
  }
  if (!SawHeader)
    return EIM::makeError("empty certificate (missing header)", {});
  for (const auto &[Name, S] : Env) {
    (void)S;
    if (!Known.count(Name))
      return EIM::makeError("certificate mentions unknown variable '" +
                                Name + "'",
                            {});
  }
  return Map;
}
