//===- synth/InvariantMap.cpp - Invariant maps and checking ----------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/InvariantMap.h"

#include "logic/TermPrinter.h"
#include "program/CutSet.h"
#include "program/PathFormula.h"
#include "smt/QuantInst.h"
#include "smt/SmtSolver.h"

using namespace pathinv;

void InvariantMap::collectLocalized(
    std::vector<std::pair<LocId, const Term *>> &Out) const {
  for (const auto &[Loc, Formula] : Inv) {
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(Formula, Conjuncts);
    for (const Term *C : Conjuncts)
      Out.emplace_back(Loc, C);
  }
}

std::string InvariantMap::dump(const Program &P) const {
  std::string Out;
  for (const auto &[Loc, Formula] : Inv) {
    Out += "  eta(" + P.locationName(Loc) + ") = " + printTerm(Formula) +
           "\n";
  }
  return Out;
}

InvariantCheckResult pathinv::checkInvariantMap(const Program &P,
                                                const InvariantMap &Map,
                                                SmtSolver &Solver) {
  TermManager &TM = P.termManager();
  InvariantCheckResult Result;

  // (I0) Initiation: eta(entry) = true.
  if (!Map.at(TM, P.entry())->isTrue()) {
    Result.FailureReason = "entry location must map to true";
    return Result;
  }
  // (I2) Safety: eta(error) = false.
  if (!Map.at(TM, P.error())->isFalse()) {
    Result.FailureReason = "error location must map to false";
    return Result;
  }

  // The locations carrying (non-trivial) invariants must form a cutset,
  // so inductiveness can be checked segment-wise (Section 3's efficiency
  // remark; invariants elsewhere follow by strongest postconditions).
  std::set<LocId> Cuts{P.entry(), P.error()};
  for (const auto &[Loc, Formula] : Map.Inv)
    Cuts.insert(Loc);
  if (!isCutSet(P, Cuts)) {
    Result.FailureReason = "invariant locations do not form a cutset";
    return Result;
  }

  // (I1) Inductiveness, segment-composed:
  //   eta(src)[X -> X@0] /\ SSA(segment) |= eta(dst)[X -> X@final].
  for (const std::vector<int> &Seg : cutToCutPaths(P, Cuts)) {
    LocId Src = P.transition(Seg.front()).From;
    LocId Dst = P.transition(Seg.back()).To;
    const Term *Post = Map.at(TM, Dst);
    if (Dst == P.error())
      Post = TM.mkFalse();
    if (Post->isTrue())
      continue;
    const Term *Pre = Map.at(TM, Src);

    PathFormula PF = buildPathFormula(P, Seg);
    const Term *PreRenamed = substitute(TM, Pre, PF.InitialVars);
    const Term *PostRenamed = substitute(TM, Post, PF.FinalVars);
    const Term *Hyp = TM.mkAnd(PreRenamed, PF.formula(TM));
    if (!entailsWithQuant(TM, Solver, Hyp, PostRenamed)) {
      Result.FailureReason =
          "inductiveness fails on segment " + P.locationName(Src) +
          " ~> " + P.locationName(Dst) +
          " for target " + printTerm(Post);
      return Result;
    }
  }
  Result.Ok = true;
  return Result;
}
