//===- synth/Template.cpp - Invariant templates -----------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "synth/Template.h"

using namespace pathinv;

ParamLinExpr pathinv::mkParamExpr(UnknownPool &Pool,
                                  const std::vector<const Term *> &Columns,
                                  const std::string &Prefix) {
  ParamLinExpr E;
  for (const Term *Column : Columns) {
    int Id = Pool.add(UnknownKind::Param, Prefix + "_" + Column->name());
    E.addTerm(Column, Poly::unknown(Id));
  }
  int ConstId = Pool.add(UnknownKind::Param, Prefix + "_c");
  E.addConstant(Poly::unknown(ConstId));
  return E;
}

const Term *pathinv::instantiateTemplate(
    TermManager &TM, const LocTemplate &T,
    const std::vector<Rational> &Assignment) {
  std::vector<const Term *> Conjuncts;
  for (const LinearTemplateRow &RowT : T.Linear) {
    LinearExpr E = RowT.E.evaluate(Assignment);
    const Term *Atom =
        mkCanonicalAtom(TM, E, RowT.IsEq ? RelKind::Eq : RelKind::Le);
    if (!Atom->isTrue())
      Conjuncts.push_back(Atom);
  }
  for (const QuantTemplateRow &Q : T.Quant) {
    LinearExpr Lower = Q.Lower.evaluate(Assignment);
    LinearExpr Upper = Q.Upper.evaluate(Assignment);
    LinearExpr Value = Q.Value.evaluate(Assignment);
    const Term *K = Q.BoundVar;
    // Guard: Lower <= k && k <= Upper.
    LinearExpr LowerMinusK = Lower;
    LowerMinusK.addTerm(K, Rational(-1));
    LinearExpr KMinusUpper = Upper * Rational(-1);
    KMinusUpper.addTerm(K, Rational(1));
    const Term *Guard =
        TM.mkAnd(mkCanonicalAtom(TM, LowerMinusK, RelKind::Le),
                 mkCanonicalAtom(TM, KMinusUpper, RelKind::Le));
    // Cell: CellCoeff * a[k] + Value REL 0.
    LinearExpr Cell = Value;
    Cell.addTerm(TM.mkSelect(Q.Array, K), Q.CellCoeff);
    const Term *CellAtom =
        mkCanonicalAtom(TM, Cell, Q.ValueIsEq ? RelKind::Eq : RelKind::Le);
    const Term *Body = TM.mkImplies(Guard, CellAtom);
    if (!Body->isTrue())
      Conjuncts.push_back(TM.mkForall(K, Body));
  }
  return TM.mkAnd(std::move(Conjuncts));
}
