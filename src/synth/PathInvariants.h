//===- synth/PathInvariants.h - Path-invariant generation ------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete path-invariant pipeline of Sections 4.2 and 5: propose a
/// template map over the cutpoints of the (path) program, compile the
/// inductiveness and safety conditions, solve the Farkas systems, escalate
/// the template on failure, and independently verify the resulting
/// invariant map before anyone relies on it.
///
/// A second backend realizes the paper's remark that any invariant
/// generator can be plugged in: the interval abstract interpreter.
///
/// Localized predicate attribution: the resulting InvariantMap hands its
/// invariants to the refiner one (location, conjunct) pair at a time
/// (InvariantMap::collectLocalized), which is the granularity the
/// per-location precision of the CEGAR loop tracks — each conjunct is
/// scoped to the location that earned it, and the ARG engine uses the
/// attribution to keep refinement subtree-scoped.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_PATHINVARIANTS_H
#define PATHINV_SYNTH_PATHINVARIANTS_H

#include "synth/ConstraintGen.h"
#include "synth/InvariantMap.h"
#include "synth/Solver.h"

namespace pathinv {

/// Knobs for path-invariant generation.
struct PathInvOptions {
  int MaxTemplateLevel = 2;
  SynthOptions Synth;
  GenOptions Gen;
  bool VerifyMap = true; ///< Re-check the map before returning it.
};

/// Outcome of path-invariant generation.
struct PathInvResult {
  bool Found = false;
  InvariantMap Map;
  int LevelUsed = -1;  ///< Template escalation level that succeeded.
  int LevelsTried = 0; ///< Number of template maps attempted.
  uint64_t LpChecks = 0;
  /// Conflict-learning work accumulated across all template levels tried.
  SynthLearnStats Learn;
  std::string FailureReason;
  /// Synthesis stopped on a resource limit (its own LP-check budget or
  /// the job's ResourceController) rather than exhausting the search
  /// space — the escalation ladder keys off this.
  bool ResourceOut = false;
};

/// Constraint-based backend (the paper's instantiation).
PathInvResult generatePathInvariants(const Program &P, SmtSolver &Solver,
                                     const PathInvOptions &Opts = {});

/// Abstract-interpretation backend (interval domain): succeeds when the
/// interval fixpoint proves the error location unreachable.
PathInvResult generateIntervalInvariants(const Program &P,
                                         SmtSolver &Solver,
                                         bool Verify = true);

} // namespace pathinv

#endif // PATHINV_SYNTH_PATHINVARIANTS_H
