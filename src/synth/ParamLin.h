//===- synth/ParamLin.h - Parametric linear expressions --------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear expressions over "columns" (program variables, skolem indices,
/// array-read atoms) whose coefficients are polynomials in the synthesis
/// unknowns. A concrete program constraint has constant-polynomial
/// coefficients; a template row has parameter coefficients.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SYNTH_PARAMLIN_H
#define PATHINV_SYNTH_PARAMLIN_H

#include "logic/LinearExpr.h"
#include "synth/Poly.h"

namespace pathinv {

/// Linear form `Const + sum Coeff_c * c` with Poly coefficients.
class ParamLinExpr {
public:
  ParamLinExpr() = default;
  explicit ParamLinExpr(Poly Constant) : Constant(std::move(Constant)) {}

  /// Lifts a concrete linear expression (all coefficients constant).
  static ParamLinExpr fromLinear(const LinearExpr &L) {
    ParamLinExpr Result;
    Result.Constant = Poly(L.constant());
    for (const auto &[Atom, Coeff] : L.coefficients())
      Result.Coeffs[Atom] = Poly(Coeff);
    return Result;
  }

  const Poly &constant() const { return Constant; }
  const std::map<const Term *, Poly, TermIdLess> &coefficients() const {
    return Coeffs;
  }

  Poly coefficientOf(const Term *Column) const {
    auto It = Coeffs.find(Column);
    return It == Coeffs.end() ? Poly() : It->second;
  }

  void addTerm(const Term *Column, Poly Coeff) {
    if (Coeff.isZero())
      return;
    auto [It, Inserted] = Coeffs.try_emplace(Column, std::move(Coeff));
    if (!Inserted) {
      It->second.add(Coeff);
      if (It->second.isZero())
        Coeffs.erase(It);
    }
  }
  void addConstant(const Poly &P) { Constant.add(P); }

  void add(const ParamLinExpr &RHS) {
    Constant.add(RHS.Constant);
    for (const auto &[Column, Coeff] : RHS.Coeffs)
      addTerm(Column, Coeff);
  }
  void scale(const Rational &Factor) {
    Constant.scale(Factor);
    for (auto &[Column, Coeff] : Coeffs)
      Coeff.scale(Factor);
    normalize();
  }
  ParamLinExpr operator+(const ParamLinExpr &RHS) const {
    ParamLinExpr Result = *this;
    Result.add(RHS);
    return Result;
  }
  ParamLinExpr operator-() const {
    ParamLinExpr Result = *this;
    Result.scale(Rational(-1));
    return Result;
  }
  ParamLinExpr operator-(const ParamLinExpr &RHS) const {
    return *this + (-RHS);
  }

  /// Substitutes columns by parametric expressions (used to rename
  /// template rows from program variables to SSA instances).
  ParamLinExpr
  substituteColumns(const std::map<const Term *, const Term *, TermIdLess>
                        &Renaming) const {
    ParamLinExpr Result;
    Result.Constant = Constant;
    for (const auto &[Column, Coeff] : Coeffs) {
      auto It = Renaming.find(Column);
      Result.addTerm(It == Renaming.end() ? Column : It->second, Coeff);
    }
    return Result;
  }

  /// Substitutes unknowns with concrete values everywhere.
  ParamLinExpr substituteUnknowns(const std::map<int, Rational> &Values) const {
    ParamLinExpr Result;
    Result.Constant = Constant.substitute(Values);
    for (const auto &[Column, Coeff] : Coeffs)
      Result.addTerm(Column, Coeff.substitute(Values));
    return Result;
  }

  /// Evaluates to a concrete LinearExpr under a full unknown assignment.
  LinearExpr evaluate(const std::vector<Rational> &Assignment) const {
    LinearExpr Result;
    Result.addConstant(Constant.evaluate(Assignment));
    for (const auto &[Column, Coeff] : Coeffs)
      Result.addTerm(Column, Coeff.evaluate(Assignment));
    return Result;
  }

private:
  void normalize() {
    for (auto It = Coeffs.begin(); It != Coeffs.end();) {
      if (It->second.isZero())
        It = Coeffs.erase(It);
      else
        ++It;
    }
  }

  Poly Constant;
  std::map<const Term *, Poly, TermIdLess> Coeffs;
};

/// A row `E <= 0` or `E = 0` of a condition's antecedent or target.
struct Row {
  ParamLinExpr E;
  bool IsEq = false;

  static Row le(ParamLinExpr E) { return {std::move(E), false}; }
  static Row eq(ParamLinExpr E) { return {std::move(E), true}; }
};

} // namespace pathinv

#endif // PATHINV_SYNTH_PARAMLIN_H
