//===- cegar/Arg.cpp - Persistent abstract reachability graph --------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/Arg.h"

#include "core/Resource.h"
#include "smt/QuantInst.h"
#include "smt/SmtSolver.h"
#include "synth/InvariantMap.h"

#include <algorithm>

using namespace pathinv;

namespace {

/// True when \p F can be asserted into a SolverContext directly (no
/// quantifier instantiation, no whole-formula array-write elimination).
bool isGround(const Term *F) {
  return !containsQuantifier(F) && !containsStore(F);
}

} // namespace

//===----------------------------------------------------------------------===//
// Arg
//===----------------------------------------------------------------------===//

size_t Arg::numLive() const {
  size_t N = 0;
  for (const ArgNode &Node : Nodes)
    if (Node.isLive())
      ++N;
  return N;
}

std::string Arg::verifyInvariants() const {
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const ArgNode &N = Nodes[I];
    auto at = [&](const char *Msg) {
      return std::string(Msg) + " (node " + std::to_string(I) + ")";
    };

    // Parent/child edge consistency.
    for (int C : N.Children) {
      if (C <= static_cast<int>(I) || C >= static_cast<int>(Nodes.size()))
        return at("child id not greater than parent's");
      if (Nodes[C].Parent != static_cast<int>(I))
        return at("child's Parent does not point back");
    }
    if (N.Parent >= 0) {
      const ArgNode &Par = Nodes[N.Parent];
      bool Listed = std::find(Par.Children.begin(), Par.Children.end(),
                              static_cast<int>(I)) != Par.Children.end();
      if (N.isLive()) {
        if (!Par.isLive())
          return at("live node under a pruned parent");
        if (!Listed)
          return at("live node missing from its parent's child list");
      } else if (Par.isLive() && Listed) {
        return at("pruned node still linked from a live parent");
      }
    }
    // Pruning is wholesale: no live descendants under a pruned node.
    if (!N.isLive()) {
      for (int C : N.Children)
        if (Nodes[C].isLive())
          return at("live child under a pruned node");
    }

    // Covering. The covering rule itself is canCover() — coverers are
    // live expanded complete nodes at the same location with a (weaker)
    // subset label — and covered nodes are never expanded, which also
    // makes the covering relation structurally acyclic: an expanded node
    // never carries a CoveredBy link.
    if ((N.CoveredBy >= 0) != (N.St == ArgNode::State::Covered))
      return at("CoveredBy link inconsistent with node state");
    if (N.St == ArgNode::State::Covered) {
      if (N.CoveredBy >= static_cast<int>(Nodes.size()))
        return at("CoveredBy out of range");
      if (!canCover(Nodes[N.CoveredBy], N))
        return at("coverer violates the covering rule");
      if (!N.Children.empty())
        return at("covered node has children");
      // Rotation invariant: the engine re-points covers at the strongest
      // available coverer, so no other candidate may cover this node with
      // strictly fewer literals than the one it holds.
      for (const ArgNode &Cand : Nodes) {
        if (&Cand == &Nodes[N.CoveredBy])
          continue;
        if (canCover(Cand, N) &&
            Cand.Literals.size() < Nodes[N.CoveredBy].Literals.size())
          return at("covered node missed a strictly more general coverer");
      }
    }
  }
  return "";
}

//===----------------------------------------------------------------------===//
// ReachEngine
//===----------------------------------------------------------------------===//

ReachEngine::ReachEngine(const Program &P, const Precision &Pi,
                         SmtSolver &Solver, const ReachOptions &Opts)
    : P(P), TM(P.termManager()), Pi(Pi), Solver(Solver), Opts(Opts),
      Ctx(TM), ExpandedAt(P.numLocations()), CoveredAt(P.numLocations()) {
  ArgNode Root;
  Root.Loc = P.entry();
  Root.St = ArgNode::State::Leaf;
  Root.HasLabel = true;
  // The root's label is definitionally empty (entry is unconstrained), so
  // it is never stale: stamp it beyond any precision size.
  Root.PrecStamp = static_cast<size_t>(-1);
  Graph.Nodes.push_back(std::move(Root));
  enqueue(0);
}

void ReachEngine::enqueue(int Id) {
  if (node(Id).InWorklist)
    return;
  node(Id).InWorklist = true;
  Worklist.push({node(Id).Depth, Id});
}

int ReachEngine::makeShell(int Parent, int TransIdx) {
  int Id = static_cast<int>(Graph.Nodes.size());
  ArgNode N;
  N.Loc = P.transition(TransIdx).To;
  N.Parent = Parent;
  N.InTrans = TransIdx;
  N.Depth = node(Parent).Depth + 1;
  Graph.Nodes.push_back(std::move(N));
  node(Parent).Children.push_back(Id);
  enqueue(Id);
  return Id;
}

bool ReachEngine::labelNode(int Id) {
  const int ParentId = node(Id).Parent;
  const Transition &T = P.transition(node(Id).InTrans);
  std::vector<const Term *> Conj(node(ParentId).Literals.begin(),
                                 node(ParentId).Literals.end());
  const Term *State = TM.mkAnd(std::move(Conj));
  const Term *Post = TM.mkAnd(State, T.Rel);

  // Label batching: the label is a pure function of (state formula,
  // transition, location) under a fixed precision, so the first outcome
  // serves every later node with the same key — until the precision
  // grows at this location (stamp mismatch) and the entry goes stale.
  RelabelKey MemoKey{State, T.Rel, node(Id).Loc};
  const size_t CurStamp = Pi.sizeAt(node(Id).Loc);
  auto applyLabel = [&](bool Feasible, const TermSet &Literals) {
    if (!Feasible) {
      node(Id).St = ArgNode::State::Infeasible;
      ++Stats.InfeasibleEdges;
      return false;
    }
    if (node(Id).Loc == P.error()) {
      node(Id).ParentStale = false;
      return true;
    }
    ArgNode &N = node(Id);
    TermSet OldLiterals = std::move(N.Literals);
    N.Literals = Literals;
    ++Stats.NodesLabelled;
    bool Strengthened = N.HasLabel && N.Literals != OldLiterals;
    N.HasLabel = true;
    N.ParentStale = false;
    N.PrecStamp = Pi.sizeAt(N.Loc);
    if (Strengthened)
      for (int C : N.Children)
        node(C).ParentStale = true;
    return true;
  };
  {
    auto It = LabelMemo.find(MemoKey);
    if (It != LabelMemo.end() && It->second.PrecStamp == CurStamp) {
      ++Stats.RelabelsBatched;
      return applyLabel(It->second.Feasible, It->second.Literals);
    }
  }

  // One scope serves the edge feasibility check and the whole labelling
  // batch: the post-image is asserted once, every predicate entailment is
  // an assumption flip on top. Quantified or store-carrying queries fall
  // back to the one-shot solver (quantifier instantiation depends on both
  // sides of an entailment, and array-write elimination is whole-formula).
  bool InCtx = isGround(State) && isGround(T.Rel);
  if (InCtx) {
    Ctx.push();
    Ctx.assertTerm(State);
    Ctx.assertTerm(T.Rel);
  }
  auto popCtx = [&]() {
    if (InCtx)
      Ctx.pop();
  };

  // Abstract feasibility of the edge: is the concrete post-image
  // non-empty? It depends on the parent's label (not the precision
  // directly), so the settle sweep re-runs it exactly when the parent
  // strengthened — a flip here is the semantic pivot that prunes the
  // subtree below. The Sat model doubles as a witness for the entailment
  // batch: a predicate it values definitely false cannot be entailed, one
  // it values definitely true cannot be refuted, so those queries are
  // skipped (theory models are integral, so the witness is genuine).
  ++Stats.EntailmentQueries;
  std::optional<smt::CheckResult> Feas;
  if (InCtx)
    Feas = Ctx.checkSat();
  bool Infeasible = InCtx ? Feas->isUnsat()
                          : entailsWithQuant(TM, Solver, Post, TM.mkFalse());
  if (Infeasible) {
    popCtx();
    LabelMemo[MemoKey] = {false, {}, CurStamp};
    return applyLabel(false, {});
  }

  // Error-location nodes are never labelled: the caller reports the
  // abstract counterexample instead.
  if (node(Id).Loc == P.error()) {
    popCtx();
    LabelMemo[MemoKey] = {true, {}, CurStamp};
    return applyLabel(true, {});
  }

  // Cartesian abstract post: track each relevant predicate (or its
  // negation) entailed by the concrete post-image.
  TermSet NewLiterals;
  std::vector<const Term *> Relevant;
  Pi.collectRelevant(node(Id).Loc, Relevant);
  for (const Term *Pred : Relevant) {
    const Term *PredPrimed =
        renameVars(TM, Pred, [this](const Term *Var) -> const Term * {
          return primedVar(TM, Var);
        });
    bool PredInCtx = InCtx && isGround(PredPrimed);
    std::optional<bool> Witness;
    if (PredInCtx)
      Witness = smt::evalLiteral(Feas->model(), PredPrimed);
    bool Entailed;
    if (Witness && !*Witness) {
      Entailed = false; // The feasibility model refutes entailment.
      ++Stats.ModelFilteredQueries;
    } else {
      ++Stats.EntailmentQueries;
      if (PredInCtx)
        ++Stats.AssumptionQueries;
      Entailed = PredInCtx
                     ? Ctx.checkSat({TM.mkNot(PredPrimed)}).isUnsat()
                     : entailsWithQuant(TM, Solver, Post, PredPrimed);
    }
    if (Entailed) {
      NewLiterals.insert(Pred);
      continue;
    }
    // Track definite falseness too (needed to refute paths whose
    // infeasibility rests on a predicate being violated).
    if (!containsQuantifier(Pred)) {
      bool NegEntailed;
      if (Witness && *Witness) {
        NegEntailed = false; // The model satisfies the predicate.
        ++Stats.ModelFilteredQueries;
      } else {
        ++Stats.EntailmentQueries;
        if (PredInCtx)
          ++Stats.AssumptionQueries;
        NegEntailed =
            PredInCtx
                ? Ctx.checkSat({PredPrimed}).isUnsat()
                : entailsWithQuant(TM, Solver, Post, TM.mkNot(PredPrimed));
      }
      if (NegEntailed)
        NewLiterals.insert(TM.mkNot(Pred));
    }
  }
  popCtx();
  LabelMemo[MemoKey] = {true, NewLiterals, CurStamp};
  // Labels strengthen monotonically (the precision only grows and parent
  // labels only strengthen). A changed label makes every child's label out
  // of date — still sound, but computed from a weaker post-image — so
  // staleness cascades one generation: each child relabels on its next
  // visit (or path replay) and marks its own children in turn.
  return applyLabel(true, NewLiterals);
}

int ReachEngine::findCoverer(int Id) {
  const ArgNode &N = node(Id);
  std::vector<int> &Cands = ExpandedAt[N.Loc];
  size_t Kept = 0;
  int Best = -1;
  for (int CandId : Cands) {
    // Compact out candidates a refinement pruned.
    if (node(CandId).St != ArgNode::State::Expanded)
      continue;
    Cands[Kept++] = CandId;
    ++Stats.CoverChecks;
    if (!canCover(node(CandId), N))
      continue;
    // Strongest candidate: fewest literals — the most general abstract
    // region, so later refinements (which only ever strengthen labels)
    // are least likely to break the cover. Candidates appear in id order,
    // so strict < resolves ties to the smallest id deterministically.
    if (Best < 0 || node(CandId).Literals.size() < node(Best).Literals.size())
      Best = CandId;
  }
  Cands.resize(Kept);
  return Best;
}

void ReachEngine::rotateCovers(int NewCoverer) {
  const ArgNode &Cov = node(NewCoverer);
  std::vector<int> &Covered = CoveredAt[Cov.Loc];
  size_t Kept = 0;
  for (int Id : Covered) {
    ArgNode &N = node(Id);
    if (N.St != ArgNode::State::Covered)
      continue; // Cover broke (or the node was pruned): compact out.
    Covered[Kept++] = Id;
    if (N.CoveredBy == NewCoverer)
      continue;
    ++Stats.CoverChecks;
    if (canCover(Cov, N) &&
        Cov.Literals.size() < node(N.CoveredBy).Literals.size()) {
      N.CoveredBy = NewCoverer;
      ++Stats.CoverRotations;
    }
  }
  Covered.resize(Kept);
}

ArgRunResult ReachEngine::run() {
  ArgRunResult Result;
  // The budget is per resumption, mirroring the restart engine's per-wave
  // semantics: the same --max-nodes value admits the same amount of work
  // per reachability phase under either engine (the ARG engine just needs
  // far less of it after the first phase).
  uint64_t ExpandedAtEntry = Stats.NodesExpanded;
  while (!Worklist.empty()) {
    if (Stats.NodesExpanded - ExpandedAtEntry >= Opts.MaxNodes) {
      Result.Kind = ArgRunResult::Kind::NodeLimit;
      return Result;
    }
    if (resourceExhausted()) {
      // Unprocessed nodes stay queued; a later run() resumes exactly here.
      Result.Kind = ArgRunResult::Kind::ResourceOut;
      return Result;
    }
    int Id = Worklist.top().second;
    Worklist.pop();
    node(Id).InWorklist = false;
    // Stale queue entries: pruning and covering happen while a node waits.
    if (node(Id).St != ArgNode::State::Shell &&
        node(Id).St != ArgNode::State::Leaf)
      continue;

    bool ForcedAttempt = false;
    if (node(Id).St == ArgNode::State::Shell) {
      if (node(Id).Loc == P.error()) {
        if (!labelNode(Id))
          continue; // Edge to error abstractly infeasible.
        // Abstract counterexample: path from the root.
        std::vector<int> Chain;
        for (int C = Id; C >= 0; C = node(C).Parent)
          Chain.push_back(C);
        std::reverse(Chain.begin(), Chain.end());
        for (size_t I = 1; I < Chain.size(); ++I)
          Result.ErrorPath.push_back(node(Chain[I]).InTrans);
        Result.PathNodes = std::move(Chain);
        Result.Kind = ArgRunResult::Kind::Counterexample;
        // The error node stays queued: its path is reported, not decided.
        // If the caller's analysis is cut short (deadline, slice pause)
        // before refinement prunes or drops this node, a resumed run must
        // rediscover the same path — otherwise the worklist drains around
        // a live undecided counterexample and run() declares a spurious
        // Proof (observed as a fuzz-oracle Safe-without-certificate, and
        // on unsafe programs an unsound Safe). Once the path is actually
        // refuted the node is relabelled or pruned and the stale queue
        // entry is skipped like any other.
        enqueue(Id);
        return Result;
      }
      if (!labelNode(Id))
        continue;
      node(Id).St = ArgNode::State::Leaf;
    } else if (node(Id).staleUnder(Pi)) {
      // Forced-covering attempt: a re-visited leaf whose location gained
      // predicates since labelling is relabelled under the current
      // precision — the strengthened label may let an existing expanded
      // node cover it, saving the expansion entirely.
      ForcedAttempt = true;
      if (!labelNode(Id))
        continue;
    }

    int Cov = findCoverer(Id);
    if (Cov >= 0) {
      ArgNode &N = node(Id);
      N.St = ArgNode::State::Covered;
      N.CoveredBy = Cov;
      CoveredAt[N.Loc].push_back(Id);
      ++Stats.NodesCovered;
      if (ForcedAttempt)
        ++Stats.ForcedCovers;
      continue;
    }

    for (int TransIdx : P.successorsOf(node(Id).Loc))
      makeShell(Id, TransIdx);
    ArgNode &N = node(Id);
    N.St = ArgNode::State::Expanded;
    ExpandedAt[N.Loc].push_back(Id);
    ++Stats.NodesExpanded;
    // The fresh expansion may be a strictly more general coverer than
    // what existing covered nodes at this location currently hold.
    rotateCovers(Id);
    // Trip detection happens at the next loop head (the node is complete).
    (void)resourceCharge(ResourceKind::ArgExpansions);
  }
  Result.Kind = ArgRunResult::Kind::Proof;
  return Result;
}

void ReachEngine::pruneSubtree(int Id) {
  std::vector<int> Stack{Id};
  size_t Pruned = 0;
  while (!Stack.empty()) {
    int X = Stack.back();
    Stack.pop_back();
    ArgNode &N = node(X);
    if (!N.isLive())
      continue;
    N.St = ArgNode::State::Pruned;
    N.CoveredBy = -1;
    ++Pruned;
    for (int C : N.Children)
      Stack.push_back(C);
  }
  Stats.NodesPruned += Pruned;
}

void ReachEngine::refreshCovers() {
  for (size_t I = 0; I < Graph.Nodes.size(); ++I) {
    ArgNode &M = Graph.Nodes[I];
    if (M.St != ArgNode::State::Covered)
      continue;
    // Pruning removes coverers, relabelling strengthens them, and a
    // dropped error edge makes one incomplete. Any of these invalidates a
    // cover: the coveree becomes a leaf again and must re-attempt
    // covering (or expand).
    if (!canCover(node(M.CoveredBy), M)) {
      M.St = ArgNode::State::Leaf;
      M.CoveredBy = -1;
      enqueue(static_cast<int>(I));
      continue;
    }
    // The cover survived, but the settle sweep may have strengthened its
    // coverer past a sibling that stayed general: rotate to the strongest
    // candidate so the cover is maximally refinement-resistant (and the
    // rotation invariant holds when verifyInvariants runs next).
    int Best = findCoverer(static_cast<int>(I));
    if (Best >= 0 && Best != M.CoveredBy &&
        node(Best).Literals.size() < node(M.CoveredBy).Literals.size()) {
      M.CoveredBy = Best;
      ++Stats.CoverRotations;
    }
  }
}

bool ReachEngine::settleAndRecheck(const ArgRunResult &R) {
  assert(R.Kind == ArgRunResult::Kind::Counterexample &&
         R.PathNodes.size() >= 2 && "settle without a counterexample");
  // Top-down sweep: relabel every stale expanded node. Ids increase
  // child-ward, so one pass sees a parent's strengthening (labelNode
  // marks the children ParentStale) before it reaches the children, and
  // nodes pruned mid-sweep (their ancestor's edge died) are skipped by
  // the state check. Nodes whose labels come out unchanged cut the
  // cascade: their subtrees are reused verbatim. Relabels are batched per
  // (location, post-image) through labelNode's LabelMemo: the precision
  // is fixed for the whole sweep, so identical labelling batches run
  // once and replay for the rest of the cohort.
  for (size_t I = 0; I < Graph.Nodes.size(); ++I) {
    if (Graph.Nodes[I].St != ArgNode::State::Expanded ||
        !Graph.Nodes[I].staleUnder(Pi))
      continue;
    int Id = static_cast<int>(I);
    if (!labelNode(Id)) {
      // The edge's post-image became empty under the strengthened
      // labels: this is the semantic pivot. Everything below is
      // abstractly unreachable now; the node stays as an Infeasible
      // marker so the parent never re-creates the edge.
      std::vector<int> Kids = node(Id).Children;
      for (int C : Kids)
        pruneSubtree(C);
      node(Id).Children.clear();
    }
  }
  refreshCovers();

  // The error node carries no label; re-decide its edge when its parent's
  // label strengthened (or the sweep already pruned it).
  int ErrId = R.PathNodes.back();
  if (!node(ErrId).isLive())
    return true;
  if (node(ErrId).ParentStale)
    return !labelNode(ErrId); // False: marked Infeasible — refuted.
  return false;
}

void ReachEngine::applyRefinement(const ArgRunResult &R) {
  uint64_t LabelsBefore = Stats.NodesLabelled;
  if (!settleAndRecheck(R)) {
    // The grown precision failed to refute the path abstractly (e.g. the
    // wp-chain size cap skipped the crucial link). The caller proved the
    // SSA path formula infeasible, so no concrete execution follows this
    // exact transition sequence: drop the error node so exploration does
    // not rediscover it, and let the next counterexample (if any) drive
    // refinement. Every ancestor's subtree now under-represents its
    // abstract continuations (the dropped edge was abstractly feasible,
    // and its concrete-infeasibility proof is specific to this one root
    // path), so the whole ancestor chain is disqualified from covering
    // and any covers its nodes hold are released.
    int ErrId = R.PathNodes.back();
    int Parent = node(ErrId).Parent;
    pruneSubtree(ErrId);
    std::vector<int> &Kids = node(Parent).Children;
    Kids.erase(std::find(Kids.begin(), Kids.end(), ErrId));
    for (int A = Parent; A >= 0; A = node(A).Parent)
      node(A).Incomplete = true;
    refreshCovers();
  }

  // Every expanded node that survived without relabelling is work the
  // restart engine would redo from scratch.
  uint64_t Relabelled = Stats.NodesLabelled - LabelsBefore;
  uint64_t ExpandedLive = 0;
  for (const ArgNode &N : Graph.Nodes)
    if (N.St == ArgNode::State::Expanded)
      ++ExpandedLive;
  Stats.NodesReused += ExpandedLive > Relabelled ? ExpandedLive - Relabelled
                                                 : 0;

#ifndef NDEBUG
  std::string Violation = Graph.verifyInvariants();
  assert(Violation.empty() && "ARG invariants violated after refinement");
#endif
}

bool ReachEngine::exportInvariantMap(InvariantMap &Out) const {
  TermManager &TM = P.termManager();
  std::vector<std::vector<const Term *>> Disjuncts(
      static_cast<size_t>(P.numLocations()));
  for (size_t Id = 0; Id < Graph.Nodes.size(); ++Id) {
    const ArgNode &N = Graph.Nodes[Id];
    if (!N.isLive())
      continue;
    // Incomplete nodes (a soundly-dropped infeasible error edge) do NOT
    // refuse the export: the dropped edge was concretely infeasible, so
    // the read-off map is still a candidate proof — whether the node's
    // label also excludes the error *single-step* (what inductiveness
    // (I1) needs, typically established by the very refinement that
    // dropped the edge) is exactly what the caller's mandatory
    // checkInvariantMap validation decides. Refusing here threw away
    // every certificate on programs whose proof route passed through one
    // spurious error path.
    switch (N.St) {
    case ArgNode::State::Shell:
    case ArgNode::State::Leaf:
      return false; // Not a fixpoint: unexplored frontier remains.
    case ArgNode::State::Expanded: {
      if (N.Loc == P.entry() && Id != 0)
        return false; // Loop head at entry: needs a non-true eta(entry).
      std::vector<const Term *> Lits(N.Literals.begin(), N.Literals.end());
      Disjuncts[static_cast<size_t>(N.Loc)].push_back(
          TM.mkAnd(std::move(Lits)));
      break;
    }
    case ArgNode::State::Covered:
      // Subsumed by a weaker expanded node at the same location: its
      // region is inside that node's disjunct.
      if (N.Loc == P.entry() && Id != 0)
        return false;
      break;
    case ArgNode::State::Infeasible:
    case ArgNode::State::Pruned:
      break; // Empty region / not part of the cover.
    }
  }
  Out.Inv.clear();
  for (LocId Loc = 0; Loc < P.numLocations(); ++Loc) {
    if (Loc == P.entry())
      continue; // Implicitly true — matches the root's empty label.
    std::vector<const Term *> &Ds = Disjuncts[static_cast<size_t>(Loc)];
    if (Loc == P.error() || Ds.empty()) {
      Out.Inv[Loc] = TM.mkFalse(); // Abstractly unreachable.
      continue;
    }
    Out.Inv[Loc] = TM.mkOr(std::move(Ds));
  }
  return true;
}

bool ReachEngine::reconcileStalePath(const ArgRunResult &R) {
  bool AnyStale = node(R.PathNodes.back()).ParentStale;
  for (size_t Pos = 1; Pos + 1 < R.PathNodes.size() && !AnyStale; ++Pos)
    AnyStale = node(R.PathNodes[Pos]).staleUnder(Pi);
  if (!AnyStale)
    return false;
  if (!settleAndRecheck(R))
    return false; // The path stands under the full current precision.
  ++Stats.Reconciliations;
#ifndef NDEBUG
  std::string Violation = Graph.verifyInvariants();
  assert(Violation.empty() && "ARG invariants violated after reconciliation");
#endif
  return true;
}
