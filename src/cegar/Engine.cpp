//===- cegar/Engine.cpp - The CEGAR verification engine --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/Engine.h"

#include "smt/SmtSolver.h"

using namespace pathinv;

EngineResult pathinv::verify(const Program &P, SmtSolver &Solver,
                             const EngineOptions &Opts) {
  TermManager &TM = P.termManager();
  EngineResult Result;

  for (uint64_t Iter = 0; Iter <= Opts.MaxRefinements; ++Iter) {
    // Phase 1: abstract reachability.
    ReachResult Reach =
        abstractReach(P, Result.Predicates, Solver, Opts.Reach);
    Result.Stats.NodesExpanded += Reach.NodesExpanded;
    Result.Stats.EntailmentQueries += Reach.EntailmentQueries;

    if (Reach.Kind == ReachResult::Kind::Proof) {
      Result.Verdict = EngineResult::Verdict::Safe;
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }
    if (Reach.Kind == ReachResult::Kind::NodeLimit) {
      Result.Note = "abstract reachability node limit reached";
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }

    // Phase 2: counterexample analysis.
    const Path &Cex = Reach.ErrorPath;
    PathFormula PF = buildPathFormula(P, Cex);
    if (Solver.checkSat(PF.formula(TM)) == SmtSolver::Status::Sat) {
      // Feasible: a real bug. Confirm independently of the solvers.
      Result.Verdict = EngineResult::Verdict::Unsafe;
      Result.Witness = Cex;
      if (Opts.ValidateWitness) {
        Result.Replay = replayFromModel(P, Cex, Solver.model());
        Result.WitnessReplayed = Result.Replay.Feasible;
      }
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }

    // Phase 3: refinement.
    if (Iter == Opts.MaxRefinements)
      break; // Budget spent; report below.
    RefineResult Refined = refine(P, Cex, Result.Predicates, Solver,
                                  Opts.Refiner, Opts.PathInv);
    ++Result.Stats.Refinements;
    Result.Stats.LpChecks += Refined.LpChecks;
    Result.Stats.TemplateLevelsTried += Refined.TemplateLevelsTried;
    if (Refined.UsedFallback)
      ++Result.Stats.Fallbacks;
    if (!Refined.Progress) {
      Result.Note = "refinement made no progress";
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }
  }

  Result.Note = "refinement budget exhausted";
  Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
  return Result;
}
