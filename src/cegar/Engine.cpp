//===- cegar/Engine.cpp - The CEGAR verification engine --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/Engine.h"

#include "cegar/Arg.h"
#include "smt/ArrayElim.h"
#include "support/BigInt.h"
#include "smt/SmtSolver.h"
#include "smt/SolverContext.h"
#include "synth/PathInvariants.h"

using namespace pathinv;

namespace {

/// Incremental feasibility checking of counterexample path formulas.
///
/// Successive CEGAR iterations analyze paths that share long SSA
/// prefixes (the abstract error path grows or shifts near its tail).
/// The checker keeps a dedicated SolverContext with one scope per path
/// conjunct: on a new path, only the divergent suffix is popped and the
/// new conjuncts asserted, so the common prefix is asserted once per
/// refinement and its encoding and tableau survive.
class PathFormulaChecker {
public:
  explicit PathFormulaChecker(TermManager &TM) : TM(TM), Ctx(TM) {}

  smt::CheckResult check(const Term *Formula) {
    const Term *F = Formula;
    if (containsStore(F)) {
      // Whole-formula transformation; must precede conjunct splitting.
      Expected<const Term *> Reduced = eliminateArrayWrites(TM, F);
      if (!Reduced)
        // Outside the supported array fragment: neither refutable nor
        // witnessed here. The engine surfaces Unknown instead of dying.
        return smt::CheckResult::unknown();
      F = Reduced.get();
    }
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(F, Conjuncts);
    size_t Common = 0;
    while (Common < Conjuncts.size() && Common < Asserted.size() &&
           Asserted[Common] == Conjuncts[Common])
      ++Common;
    ReusedConjuncts += Common;
    while (Asserted.size() > Common) {
      Ctx.pop();
      Asserted.pop_back();
    }
    for (size_t I = Common; I < Conjuncts.size(); ++I) {
      Ctx.push();
      Ctx.assertTerm(Conjuncts[I]);
      Asserted.push_back(Conjuncts[I]);
      ++AssertedConjuncts;
    }
    return Ctx.checkSat();
  }

  uint64_t reusedConjuncts() const { return ReusedConjuncts; }
  uint64_t assertedConjuncts() const { return AssertedConjuncts; }

private:
  TermManager &TM;
  smt::SolverContext Ctx;
  std::vector<const Term *> Asserted; ///< One context scope per entry.
  uint64_t ReusedConjuncts = 0;
  uint64_t AssertedConjuncts = 0;
};

/// Escalation: when per-path synthesis starts falling back (or stalls),
/// attempt one whole-program invariant map. A verified inductive map
/// with eta(error) = false is a complete safety proof on its own
/// (Section 3), and it covers programs whose individual path programs
/// defeat the template heuristic. \returns true when it proved Safe.
bool tryWholeProgramEscalation(const Program &P, SmtSolver &Solver,
                               const EngineOptions &Opts,
                               const RefineResult &Refined, bool &Tried,
                               EngineResult &Result) {
  if (!(Refined.UsedFallback || !Refined.Progress) || Tried ||
      Opts.Refiner == RefinerKind::PathFormula)
    return false;
  if (resourceExhausted())
    return false; // Keep the one-shot intact: under a tripped controller
                  // (including a portfolio slice pause) the generation
                  // could only fail, and a resumed run still needs it.
  PathInvResult Whole =
      Opts.Refiner == RefinerKind::PathInvariantIntervals
          ? generateIntervalInvariants(P, Solver)
          : generatePathInvariants(P, Solver, Opts.PathInv);
  Result.Stats.LpChecks += Whole.LpChecks;
  Result.Stats.TemplateLevelsTried += Whole.LevelsTried;
  if (!Whole.Found) {
    // Only a generation that ran to completion proves the map doesn't
    // exist; an interrupted attempt must stay retryable after resume.
    Tried = !resourceExhausted();
    return false;
  }
  Tried = true;
  std::vector<std::pair<LocId, const Term *>> Localized;
  Whole.Map.collectLocalized(Localized);
  for (const auto &[Loc, Pred] : Localized)
    Result.Predicates.add(Loc, Pred);
  Result.Verdict = EngineResult::Verdict::Safe;
  Result.Invariants = Whole.Map;
  Result.HasInvariants = true;
  Result.Note = "proved by whole-program invariant map";
  return true;
}

/// Phase 2 of the loop: decides the abstract counterexample's SSA path
/// formula. On Sat — a real bug — fills the Unsafe verdict, the witness,
/// and (optionally) its independent concrete replay, and returns true.
bool analyzeCounterexample(const Program &P, const Path &Cex,
                           PathFormulaChecker &Checker,
                           const EngineOptions &Opts, EngineResult &Result) {
  TermManager &TM = P.termManager();
  PathFormula PF = buildPathFormula(P, Cex);
  smt::CheckResult Feasibility = Checker.check(PF.formula(TM));
  if (Feasibility.isUnknown()) {
    // Resources ran out (or the formula left the supported fragment)
    // mid-analysis: the path is neither refuted nor witnessed. Stop the
    // loop with Verdict::Unknown — refining on an undecided path would
    // refute nothing, and reporting it Unsafe would be a guess.
    Result.Note = "counterexample analysis inconclusive";
    return true;
  }
  if (!Feasibility.isSat())
    return false;
  Result.Verdict = EngineResult::Verdict::Unsafe;
  Result.Witness = Cex;
  if (Opts.ValidateWitness) {
    Result.Replay = replayFromModel(P, Cex, Feasibility.model().values());
    Result.WitnessReplayed = Result.Replay.Feasible;
  }
  return true;
}

/// Escalation ladder (resource governance): a refinement whose template
/// synthesis ground out its scoped combination budget (RefineResult::
/// ResourceOut) retries once with the cheap interval backend before the
/// engine accepts a degraded outcome. Skipped when the run's
/// ResourceController has tripped — no refiner can run to completion
/// under a tripped controller, so a retry would only burn the deadline.
/// \returns true when the retry contributed new predicates.
bool escalateBudgetedRefinement(const Program &P, const Path &Cex,
                                SmtSolver &Solver, const EngineOptions &Opts,
                                RefineResult &Refined, EngineResult &Result) {
  // Retry only when the budgeted refinement is about to give up — a
  // refinement that made progress despite draining its local synthesis
  // budget is the normal template-escalation path, and piling interval
  // predicates on top of its result would bloat the precision (and the
  // runtime) of perfectly healthy runs. A tripped controller fails every
  // charge, so a retry under it could never succeed either.
  if (!Refined.ResourceOut || Refined.Progress || resourceExhausted() ||
      Opts.Refiner != RefinerKind::PathInvariant)
    return false;
  ++Result.Stats.EscalationRetries;
  RefineResult Retry = refine(P, Cex, Result.Predicates, Solver,
                              RefinerKind::PathInvariantIntervals,
                              Opts.PathInv);
  Result.Stats.LpChecks += Retry.LpChecks;
  Result.Stats.TemplateLevelsTried += Retry.TemplateLevelsTried;
  if (!Retry.Progress)
    return false;
  Refined.Progress = true;
  Refined.UsedFallback = Refined.UsedFallback && Retry.UsedFallback;
  return true;
}

/// Mirrors the ARG engine's cumulative reach-layer statistics into the
/// engine-level aggregate (overwrite, not accumulate: ArgStats are
/// lifetime totals of the one persistent engine).
void syncReachStats(EngineStats &S, const ArgStats &A) {
  S.NodesExpanded = A.NodesExpanded;
  S.EntailmentQueries = A.EntailmentQueries;
  S.AssumptionQueries = A.AssumptionQueries;
  S.ModelFilteredQueries = A.ModelFilteredQueries;
  S.NodesReused = A.NodesReused;
  S.NodesPruned = A.NodesPruned;
  S.CoverChecks = A.CoverChecks;
  S.NodesCovered = A.NodesCovered;
  S.CoverRotations = A.CoverRotations;
  S.ForcedCovers = A.ForcedCovers;
  S.RelabelsBatched = A.RelabelsBatched;
}

} // namespace

/// All loop state lives here so a slice-paused run() resumes exactly
/// where it stopped: the persistent ARG (or the restart iteration
/// counter), the incremental path-formula checker, the grown precision
/// (inside Result.Predicates, which ReachEngine references), and the
/// escalation/iteration flags.
struct CegarEngine::Impl {
  Impl(const Program &P, SmtSolver &Solver, const EngineOptions &Opts)
      : P(P), Solver(Solver), Opts(Opts), PathChecker(P.termManager()) {
    if (Opts.Reach.Mode != ReachMode::Restart)
      Reach = std::make_unique<ReachEngine>(P, Result.Predicates, Solver,
                                            Opts.Reach);
    // One persistent synthesis learner per job: combo verdicts survive
    // across refinement-interval retries, whole-program escalations, and
    // slice-paused resumes (Opts is held by value, so the pointer stays
    // stable for the engine's lifetime).
    if (!this->Opts.PathInv.Synth.Learner)
      this->Opts.PathInv.Synth.Learner = &Learner;
  }

  const Program &P;
  SmtSolver &Solver;
  EngineOptions Opts;
  PathFormulaChecker PathChecker;
  /// Persistent accumulator; run() returns a copy. Result.Predicates is
  /// the live precision the ARG labels against.
  EngineResult Result;
  std::unique_ptr<ReachEngine> Reach; ///< Null in ReachMode::Restart.
  /// Persistent conflict-learning state of every synthesis search this
  /// job runs (whole-program probes included).
  SynthLearner Learner;
  uint64_t Iter = 0;
  bool TriedWholeProgram = false;
  bool Done = false; ///< Terminal (not just slice-paused) outcome reached.

  void runArg();
  void runRestart();
  void finishArg();
  void exportArgCertificate();
};

/// Reads an invariant-map certificate off the ARG proof and validates it
/// independently before attaching it to the Safe verdict. The validation
/// runs under a fresh unlimited controller: the proof is already complete,
/// and a certificate that silently disappears whenever a portfolio slice
/// pause or a tripped budget lands on this exact line would make Safe
/// results nondeterministically certificate-free. A map that fails either
/// the read-off or the check is dropped — the verdict itself never
/// depends on the certificate.
void CegarEngine::Impl::exportArgCertificate() {
  if (!Opts.ExportCertificate || Result.HasInvariants || !Reach)
    return;
  InvariantMap Map;
  if (!Reach->exportInvariantMap(Map))
    return;
  ResourceController Ungoverned;
  Ungoverned.start();
  ResourceScope Scope(Ungoverned);
  InvariantCheckResult Check = checkInvariantMap(P, Map, Solver);
  if (!Check.Ok)
    return;
  Result.Invariants = std::move(Map);
  Result.HasInvariants = true;
}

/// Folds the ARG/solver-context/path-checker counters into the result
/// stats (all lifetime totals — safe to overwrite on every exit).
void CegarEngine::Impl::finishArg() {
  syncReachStats(Result.Stats, Reach->stats());
  smt::ContextStats Ctx = Reach->context().stats();
  Result.Stats.ReachContextChecks = Ctx.Checks;
  Result.Stats.ReachLearnedPurges = Ctx.LearnedPurges;
  Result.Stats.ReachClausesPurged = Ctx.ClausesPurged;
  Result.Stats.ReachRedundantClauses = Ctx.RedundantClauses;
  Result.Stats.ReachBnbNodes = Ctx.BnbNodes;
  Result.Stats.ReachScratchFallbacks = Ctx.ScratchFallbacks;
  Result.Stats.PathConjunctsReused = PathChecker.reusedConjuncts();
  Result.Stats.PathConjunctsAsserted = PathChecker.assertedConjuncts();
  Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
}

/// The CEGAR loop over the persistent ARG (ReachMode::Arg): refinement
/// prunes the pivot subtree and resumes instead of restarting.
void CegarEngine::Impl::runArg() {
  for (;;) {
    // Phase 1: resume abstract reachability on the persistent graph.
    ArgRunResult Reached = Reach->run();
    if (Reached.Kind == ArgRunResult::Kind::Proof) {
      Result.Verdict = EngineResult::Verdict::Safe;
      exportArgCertificate();
      return finishArg();
    }
    if (Reached.Kind == ArgRunResult::Kind::NodeLimit) {
      Result.Note = "abstract reachability node limit reached";
      return finishArg();
    }
    if (Reached.Kind == ArgRunResult::Kind::ResourceOut) {
      // The graph keeps its frontier queued; the verdict is Unknown with
      // the controller's reason, and everything built so far survives in
      // Result.Predicates as the best-so-far invariant map. (On a slice
      // pause this is where the next run() call picks the job back up.)
      Result.Note = "resources exhausted during abstract reachability";
      return finishArg();
    }

    // Stale counterexamples (label computed before the precision grew at
    // a path location) are reconciled — pruned at the earliest stale node
    // and re-explored — not analyzed: the refiner only ever sees paths
    // that reflect the full current precision.
    if (Reach->reconcileStalePath(Reached))
      continue;

    // Phase 2: counterexample analysis.
    const Path &Cex = Reached.ErrorPath;
    if (analyzeCounterexample(P, Cex, PathChecker, Opts, Result))
      return finishArg();

    // Phase 3: refinement.
    if (Iter == Opts.MaxRefinements) {
      Result.Note = "refinement budget exhausted";
      return finishArg();
    }
    if (!resourceCharge(ResourceKind::Refinements)) {
      Result.Note = "resources exhausted before refinement";
      return finishArg();
    }
    RefineResult Refined = refine(P, Cex, Result.Predicates, Solver,
                                  Opts.Refiner, Opts.PathInv);
    Result.Stats.LpChecks += Refined.LpChecks;
    Result.Stats.TemplateLevelsTried += Refined.TemplateLevelsTried;
    if (resourceExhausted()) {
      // Interrupted mid-refinement (slice pause or real exhaustion):
      // report without consuming the iteration or the escalation ladder,
      // so a resumed run retries this path with the full machinery. This
      // holds even when the cut-short synthesis made partial progress —
      // applying a half-grown precision can fail to refute the path
      // abstractly, and the drop-the-edge fallback below would leave the
      // ARG permanently Incomplete (a sound Safe, but one that can never
      // export a certificate). Any predicates already added are kept: the
      // precision grows monotonically and the retry only adds more.
      Result.Note = "resources exhausted during refinement";
      return finishArg();
    }
    ++Iter;
    ++Result.Stats.Refinements;
    if (Refined.UsedFallback)
      ++Result.Stats.Fallbacks;

    escalateBudgetedRefinement(P, Cex, Solver, Opts, Refined, Result);

    if (tryWholeProgramEscalation(P, Solver, Opts, Refined,
                                  TriedWholeProgram, Result))
      return finishArg();

    if (!Refined.Progress) {
      Result.Note = "refinement made no progress";
      return finishArg();
    }

    // Subtree-scoped refinement: replay the path under the grown
    // precision and prune below the first edge it refutes; everything
    // the new predicates cannot invalidate survives.
    Reach->applyRefinement(Reached);
  }
}

/// The legacy loop (ReachMode::Restart): every refinement throws the
/// whole abstract reachability tree away and re-explores from scratch.
void CegarEngine::Impl::runRestart() {
  for (; Iter <= Opts.MaxRefinements; ++Iter) {
    // Phase 1: abstract reachability.
    ReachResult Reach =
        abstractReach(P, Result.Predicates, Solver, Opts.Reach);
    Result.Stats.NodesExpanded += Reach.NodesExpanded;
    Result.Stats.EntailmentQueries += Reach.EntailmentQueries;
    Result.Stats.AssumptionQueries += Reach.AssumptionQueries;
    Result.Stats.ModelFilteredQueries += Reach.ModelFilteredQueries;
    Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();

    if (Reach.Kind == ReachResult::Kind::Proof) {
      Result.Verdict = EngineResult::Verdict::Safe;
      return;
    }
    if (Reach.Kind == ReachResult::Kind::NodeLimit) {
      Result.Note = "abstract reachability node limit reached";
      return;
    }
    if (Reach.Kind == ReachResult::Kind::ResourceOut) {
      Result.Note = "resources exhausted during abstract reachability";
      return;
    }

    // Phase 2: counterexample analysis. The path formula's common prefix
    // with the previous iteration's path stays asserted in the checker's
    // context; only the divergent suffix is re-asserted.
    const Path &Cex = Reach.ErrorPath;
    bool Feasible = analyzeCounterexample(P, Cex, PathChecker, Opts, Result);
    Result.Stats.PathConjunctsReused = PathChecker.reusedConjuncts();
    Result.Stats.PathConjunctsAsserted = PathChecker.assertedConjuncts();
    if (Feasible)
      return;

    // Phase 3: refinement.
    if (Iter == Opts.MaxRefinements)
      break; // Budget spent; report below.
    if (!resourceCharge(ResourceKind::Refinements)) {
      Result.Note = "resources exhausted before refinement";
      return;
    }
    RefineResult Refined = refine(P, Cex, Result.Predicates, Solver,
                                  Opts.Refiner, Opts.PathInv);
    Result.Stats.LpChecks += Refined.LpChecks;
    Result.Stats.TemplateLevelsTried += Refined.TemplateLevelsTried;
    if (resourceExhausted()) {
      // Interrupted mid-refinement (even with partial progress): keep the
      // iteration and escalation ladder unconsumed so a resumed run
      // retries this path under a full budget.
      Result.Note = "resources exhausted during refinement";
      return;
    }
    ++Result.Stats.Refinements;
    if (Refined.UsedFallback)
      ++Result.Stats.Fallbacks;

    escalateBudgetedRefinement(P, Cex, Solver, Opts, Refined, Result);

    if (tryWholeProgramEscalation(P, Solver, Opts, Refined,
                                  TriedWholeProgram, Result)) {
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return;
    }

    if (!Refined.Progress) {
      Result.Note = "refinement made no progress";
      return;
    }
  }

  Result.Note = "refinement budget exhausted";
  Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
}

CegarEngine::CegarEngine(const Program &P, SmtSolver &Solver,
                         const EngineOptions &Opts)
    : I(std::make_unique<Impl>(P, Solver, Opts)) {}

CegarEngine::~CegarEngine() = default;

EngineResult CegarEngine::run() {
  if (I->Done)
    return I->Result;
  // A resumed run starts clean: the previous pause's provisional note
  // must not leak into the continued job's outcome.
  I->Result.Note.clear();
  I->Result.UnknownReason.clear();
  if (I->Opts.Reach.Mode == ReachMode::Restart)
    I->runRestart();
  else
    I->runArg();
  ResourceController *RC = ResourceController::active();
  bool Paused = I->Result.Verdict == EngineResult::Verdict::Unknown && RC &&
                RC->slicePaused();
  I->Done = !Paused;
  // Learner lifetime totals (overwritten each exit, like the other
  // persistent-context counters).
  const SynthLearnStats &L = I->Opts.PathInv.Synth.Learner->Stats;
  I->Result.Stats.SynthNogoods = L.Nogoods;
  I->Result.Stats.SynthCombosDeduped = L.CombosDeduped;
  I->Result.Stats.SynthLemmasReused = L.LemmasReused;
  I->Result.Stats.SynthCuts = L.Cuts;
  return I->Result;
}

EngineResult pathinv::verify(const Program &P, SmtSolver &Solver,
                             const EngineOptions &Opts) {
  // Resource governance: one controller per run, visible to every layer
  // below through the thread-local ResourceScope. The memory probe covers
  // the two dominant allocation pools — the term arena and the BigInt
  // limb heap — sampled at the controller's amortized poll points.
  ResourceController RC(Opts.Limits);
  TermManager &TM = P.termManager();
  RC.setMemoryProbe([&TM]() -> uint64_t {
    return static_cast<uint64_t>(TM.arenaBytes()) + bigIntHeapBytes();
  });
  RC.start();
  ResourceScope Scope(RC);
  CegarEngine Engine(P, Solver, Opts);
  EngineResult Result = Engine.run();
  // Exhaustion is never a verdict: a Safe or Unsafe reached before (or
  // soundly despite) the trip stands; only Unknown carries the reason.
  finalizeEngineResult(Result, RC);
  if (!Result.UnknownReason.empty() && Result.Note.empty())
    Result.Note = std::string("resources exhausted: ") + Result.UnknownReason;
  return Result;
}
