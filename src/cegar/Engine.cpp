//===- cegar/Engine.cpp - The CEGAR verification engine --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/Engine.h"

#include "smt/ArrayElim.h"
#include "smt/SmtSolver.h"
#include "smt/SolverContext.h"
#include "synth/PathInvariants.h"

using namespace pathinv;

namespace {

/// Incremental feasibility checking of counterexample path formulas.
///
/// Successive CEGAR iterations analyze paths that share long SSA
/// prefixes (the abstract error path grows or shifts near its tail).
/// The checker keeps a dedicated SolverContext with one scope per path
/// conjunct: on a new path, only the divergent suffix is popped and the
/// new conjuncts asserted, so the common prefix is asserted once per
/// refinement and its encoding and tableau survive.
class PathFormulaChecker {
public:
  explicit PathFormulaChecker(TermManager &TM) : TM(TM), Ctx(TM) {}

  smt::CheckResult check(const Term *Formula) {
    const Term *F = Formula;
    if (containsStore(F)) {
      // Whole-formula transformation; must precede conjunct splitting.
      Expected<const Term *> Reduced = eliminateArrayWrites(TM, F);
      assert(Reduced && "path formula outside the supported array fragment");
      F = Reduced.get();
    }
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(F, Conjuncts);
    size_t Common = 0;
    while (Common < Conjuncts.size() && Common < Asserted.size() &&
           Asserted[Common] == Conjuncts[Common])
      ++Common;
    ReusedConjuncts += Common;
    while (Asserted.size() > Common) {
      Ctx.pop();
      Asserted.pop_back();
    }
    for (size_t I = Common; I < Conjuncts.size(); ++I) {
      Ctx.push();
      Ctx.assertTerm(Conjuncts[I]);
      Asserted.push_back(Conjuncts[I]);
      ++AssertedConjuncts;
    }
    return Ctx.checkSat();
  }

  uint64_t reusedConjuncts() const { return ReusedConjuncts; }
  uint64_t assertedConjuncts() const { return AssertedConjuncts; }

private:
  TermManager &TM;
  smt::SolverContext Ctx;
  std::vector<const Term *> Asserted; ///< One context scope per entry.
  uint64_t ReusedConjuncts = 0;
  uint64_t AssertedConjuncts = 0;
};

} // namespace

EngineResult pathinv::verify(const Program &P, SmtSolver &Solver,
                             const EngineOptions &Opts) {
  TermManager &TM = P.termManager();
  EngineResult Result;
  bool TriedWholeProgram = false;
  PathFormulaChecker PathChecker(TM);

  for (uint64_t Iter = 0; Iter <= Opts.MaxRefinements; ++Iter) {
    // Phase 1: abstract reachability.
    ReachResult Reach =
        abstractReach(P, Result.Predicates, Solver, Opts.Reach);
    Result.Stats.NodesExpanded += Reach.NodesExpanded;
    Result.Stats.EntailmentQueries += Reach.EntailmentQueries;
    Result.Stats.AssumptionQueries += Reach.AssumptionQueries;

    if (Reach.Kind == ReachResult::Kind::Proof) {
      Result.Verdict = EngineResult::Verdict::Safe;
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }
    if (Reach.Kind == ReachResult::Kind::NodeLimit) {
      Result.Note = "abstract reachability node limit reached";
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }

    // Phase 2: counterexample analysis. The path formula's common prefix
    // with the previous iteration's path stays asserted in the checker's
    // context; only the divergent suffix is re-asserted.
    const Path &Cex = Reach.ErrorPath;
    PathFormula PF = buildPathFormula(P, Cex);
    smt::CheckResult Feasibility = PathChecker.check(PF.formula(TM));
    Result.Stats.PathConjunctsReused = PathChecker.reusedConjuncts();
    Result.Stats.PathConjunctsAsserted = PathChecker.assertedConjuncts();
    if (Feasibility.isSat()) {
      // Feasible: a real bug. Confirm independently of the solvers.
      Result.Verdict = EngineResult::Verdict::Unsafe;
      Result.Witness = Cex;
      if (Opts.ValidateWitness) {
        Result.Replay = replayFromModel(P, Cex, Feasibility.model().values());
        Result.WitnessReplayed = Result.Replay.Feasible;
      }
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }

    // Phase 3: refinement.
    if (Iter == Opts.MaxRefinements)
      break; // Budget spent; report below.
    RefineResult Refined = refine(P, Cex, Result.Predicates, Solver,
                                  Opts.Refiner, Opts.PathInv);
    ++Result.Stats.Refinements;
    Result.Stats.LpChecks += Refined.LpChecks;
    Result.Stats.TemplateLevelsTried += Refined.TemplateLevelsTried;
    if (Refined.UsedFallback)
      ++Result.Stats.Fallbacks;

    // Escalation: when per-path synthesis starts falling back (or stalls),
    // attempt one whole-program invariant map. A verified inductive map
    // with eta(error) = false is a complete safety proof on its own
    // (Section 3), and it covers programs whose individual path programs
    // defeat the template heuristic.
    if ((Refined.UsedFallback || !Refined.Progress) && !TriedWholeProgram &&
        Opts.Refiner != RefinerKind::PathFormula) {
      TriedWholeProgram = true;
      PathInvResult Whole =
          Opts.Refiner == RefinerKind::PathInvariantIntervals
              ? generateIntervalInvariants(P, Solver)
              : generatePathInvariants(P, Solver, Opts.PathInv);
      Result.Stats.LpChecks += Whole.LpChecks;
      Result.Stats.TemplateLevelsTried += Whole.LevelsTried;
      if (Whole.Found) {
        for (const auto &[Loc, Inv] : Whole.Map.Inv)
          Result.Predicates.add(Loc, Inv);
        Result.Verdict = EngineResult::Verdict::Safe;
        Result.Note = "proved by whole-program invariant map";
        Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
        return Result;
      }
    }

    if (!Refined.Progress) {
      Result.Note = "refinement made no progress";
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }
  }

  Result.Note = "refinement budget exhausted";
  Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
  return Result;
}
