//===- cegar/Engine.cpp - The CEGAR verification engine --------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/Engine.h"

#include "smt/SmtSolver.h"
#include "synth/PathInvariants.h"

using namespace pathinv;

EngineResult pathinv::verify(const Program &P, SmtSolver &Solver,
                             const EngineOptions &Opts) {
  TermManager &TM = P.termManager();
  EngineResult Result;
  bool TriedWholeProgram = false;

  for (uint64_t Iter = 0; Iter <= Opts.MaxRefinements; ++Iter) {
    // Phase 1: abstract reachability.
    ReachResult Reach =
        abstractReach(P, Result.Predicates, Solver, Opts.Reach);
    Result.Stats.NodesExpanded += Reach.NodesExpanded;
    Result.Stats.EntailmentQueries += Reach.EntailmentQueries;

    if (Reach.Kind == ReachResult::Kind::Proof) {
      Result.Verdict = EngineResult::Verdict::Safe;
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }
    if (Reach.Kind == ReachResult::Kind::NodeLimit) {
      Result.Note = "abstract reachability node limit reached";
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }

    // Phase 2: counterexample analysis.
    const Path &Cex = Reach.ErrorPath;
    PathFormula PF = buildPathFormula(P, Cex);
    if (Solver.checkSat(PF.formula(TM)) == SmtSolver::Status::Sat) {
      // Feasible: a real bug. Confirm independently of the solvers.
      Result.Verdict = EngineResult::Verdict::Unsafe;
      Result.Witness = Cex;
      if (Opts.ValidateWitness) {
        Result.Replay = replayFromModel(P, Cex, Solver.model());
        Result.WitnessReplayed = Result.Replay.Feasible;
      }
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }

    // Phase 3: refinement.
    if (Iter == Opts.MaxRefinements)
      break; // Budget spent; report below.
    RefineResult Refined = refine(P, Cex, Result.Predicates, Solver,
                                  Opts.Refiner, Opts.PathInv);
    ++Result.Stats.Refinements;
    Result.Stats.LpChecks += Refined.LpChecks;
    Result.Stats.TemplateLevelsTried += Refined.TemplateLevelsTried;
    if (Refined.UsedFallback)
      ++Result.Stats.Fallbacks;

    // Escalation: when per-path synthesis starts falling back (or stalls),
    // attempt one whole-program invariant map. A verified inductive map
    // with eta(error) = false is a complete safety proof on its own
    // (Section 3), and it covers programs whose individual path programs
    // defeat the template heuristic.
    if ((Refined.UsedFallback || !Refined.Progress) && !TriedWholeProgram &&
        Opts.Refiner != RefinerKind::PathFormula) {
      TriedWholeProgram = true;
      PathInvResult Whole =
          Opts.Refiner == RefinerKind::PathInvariantIntervals
              ? generateIntervalInvariants(P, Solver)
              : generatePathInvariants(P, Solver, Opts.PathInv);
      Result.Stats.LpChecks += Whole.LpChecks;
      Result.Stats.TemplateLevelsTried += Whole.LevelsTried;
      if (Whole.Found) {
        for (const auto &[Loc, Inv] : Whole.Map.Inv)
          Result.Predicates.add(Loc, Inv);
        Result.Verdict = EngineResult::Verdict::Safe;
        Result.Note = "proved by whole-program invariant map";
        Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
        return Result;
      }
    }

    if (!Refined.Progress) {
      Result.Note = "refinement made no progress";
      Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
      return Result;
    }
  }

  Result.Note = "refinement budget exhausted";
  Result.Stats.FinalPredicates = Result.Predicates.totalPredicates();
  return Result;
}
