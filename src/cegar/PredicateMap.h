//===- cegar/PredicateMap.h - Location-indexed predicate sets --*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstraction Pi of the CEGAR loop: per program location, the set of
/// predicates tracked by the abstract reachability phase (Section 4.1).
/// Predicates are arbitrary formulas over the program variables —
/// including universally quantified ones, which is exactly what path
/// invariants contribute beyond classic predicate discovery.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_PREDICATEMAP_H
#define PATHINV_CEGAR_PREDICATEMAP_H

#include "program/Program.h"

#include <map>

namespace pathinv {

/// Pi : locations -> predicate sets.
struct PredicateMap {
  std::map<LocId, TermSet> Preds;

  /// Adds \p Pred at \p Loc; returns true when it is new.
  bool add(LocId Loc, const Term *Pred) {
    if (Pred->isTrue() || Pred->isFalse())
      return false;
    return Preds[Loc].insert(Pred).second;
  }

  const TermSet &at(LocId Loc) const {
    static const TermSet Empty;
    auto It = Preds.find(Loc);
    return It == Preds.end() ? Empty : It->second;
  }

  size_t totalPredicates() const {
    size_t N = 0;
    for (const auto &[Loc, Set] : Preds)
      N += Set.size();
    return N;
  }

  std::string dump(const Program &P) const;
};

} // namespace pathinv

#endif // PATHINV_CEGAR_PREDICATEMAP_H
