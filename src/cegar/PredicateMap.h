//===- cegar/PredicateMap.h - Per-location precision -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstraction Pi of the CEGAR loop as a *precision*: which predicates
/// the abstract reachability phase tracks, and where. Precision is split
/// into a global part (tracked at every location) and location-scoped
/// parts (tracked only at the location a refinement attributed them to),
/// so the entailment batch labelling a node at location l only ever
/// queries predicates relevant at l — a location-scoped predicate from an
/// unrelated loop never bloats another location's batch.
///
/// Predicates are arbitrary formulas over the program variables —
/// including universally quantified ones, which is exactly what path
/// invariants contribute beyond classic predicate discovery.
///
/// The precision only ever grows. sizeAt() is therefore a sufficient
/// staleness stamp: an ARG node labelled when sizeAt(l) was k is stale
/// iff sizeAt(l) > k now.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_PREDICATEMAP_H
#define PATHINV_CEGAR_PREDICATEMAP_H

#include "program/Program.h"

#include <map>

namespace pathinv {

/// Pi : global predicates + per-location scoped predicates.
class Precision {
public:
  /// Adds \p Pred to the scoped precision of \p Loc; returns true when it
  /// is new there (and not already global).
  bool add(LocId Loc, const Term *Pred) {
    if (Pred->isTrue() || Pred->isFalse() || Global.count(Pred))
      return false;
    return Scoped[Loc].insert(Pred).second;
  }

  /// Adds \p Pred to the global precision (tracked at every location);
  /// returns true when it is new. A predicate promoted from a scoped set
  /// leaves it, so no location ever tracks a predicate twice. sizeAt
  /// stays monotone: the promotion replaces one scoped entry with one
  /// global entry at the locations that had it, and adds one elsewhere.
  /// Note: every in-tree refiner attributes predicates per location
  /// (refinements are path-local by design); the global half is the
  /// extension surface for program-wide facts — tests and external
  /// callers preload it (e.g. known whole-program invariants).
  bool addGlobal(const Term *Pred) {
    if (Pred->isTrue() || Pred->isFalse())
      return false;
    if (!Global.insert(Pred).second)
      return false;
    for (auto &[Loc, Set] : Scoped)
      Set.erase(Pred);
    return true;
  }

  /// The location-scoped predicates of \p Loc (excluding global ones).
  const TermSet &scopedAt(LocId Loc) const {
    static const TermSet Empty;
    auto It = Scoped.find(Loc);
    return It == Scoped.end() ? Empty : It->second;
  }

  const TermSet &global() const { return Global; }

  /// Appends every predicate relevant at \p Loc (global first, then
  /// scoped) to \p Out — the iteration order of a labelling batch.
  void collectRelevant(LocId Loc, std::vector<const Term *> &Out) const {
    Out.insert(Out.end(), Global.begin(), Global.end());
    const TermSet &S = scopedAt(Loc);
    Out.insert(Out.end(), S.begin(), S.end());
  }

  /// Number of predicates relevant at \p Loc. Monotone (precision only
  /// grows), so it doubles as the staleness stamp of ARG node labels.
  size_t sizeAt(LocId Loc) const {
    return Global.size() + scopedAt(Loc).size();
  }

  size_t totalPredicates() const {
    size_t N = Global.size();
    for (const auto &[Loc, Set] : Scoped)
      N += Set.size();
    return N;
  }

  std::string dump(const Program &P) const;

private:
  TermSet Global;                  ///< Tracked at every location.
  std::map<LocId, TermSet> Scoped; ///< Tracked only at their location.
};

/// Historical name: the precision grew out of the plain location ->
/// predicate-set map of the restart-the-world engine.
using PredicateMap = Precision;

} // namespace pathinv

#endif // PATHINV_CEGAR_PREDICATEMAP_H
