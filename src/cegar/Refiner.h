//===- cegar/Refiner.h - Abstraction refinement strategies -----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The refinement phase of the CEGAR loop, with two interchangeable
/// strategies (the modularity claim of Section 1: "we simply need to
/// replace the predicate discovery module by a call to an invariant
/// synthesizer for path programs"):
///
///   * PathInvariantRefiner — the paper's contribution. Builds the path
///     program P[pi], synthesizes a path-invariant map (constraint-based,
///     or intervals as the ablation backend), propagates cutpoint
///     invariants to the intermediate path locations by weakest
///     preconditions, and contributes every resulting formula as a
///     predicate at the corresponding *original* location. One refinement
///     eliminates the entire family of loop unwindings (Theorem 1).
///
///   * PathFormulaRefiner — the classic baseline it is compared against.
///     Adds the weakest-precondition chain of the single infeasible path
///     (the inductive Hoare chain refuting exactly that path), so every
///     unwinding produces a fresh counterexample and fresh predicates:
///     the divergence demonstrated in Section 2.1.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_REFINER_H
#define PATHINV_CEGAR_REFINER_H

#include "cegar/PredicateMap.h"
#include "program/PathFormula.h"
#include "synth/PathInvariants.h"

namespace pathinv {

class SmtSolver;

/// What a refinement step produced.
struct RefineResult {
  bool Progress = false;    ///< Some new predicate was added.
  bool UsedFallback = false; ///< Path-invariant synthesis failed; the
                             ///< single-path baseline predicates were used.
  int TemplateLevelsTried = 0;
  uint64_t LpChecks = 0;
  /// Path-invariant synthesis stopped on a resource limit rather than
  /// exhausting its search space. The engine's escalation ladder retries
  /// such refinements once with the cheaper interval backend before
  /// giving up.
  bool ResourceOut = false;
  /// The predicates this refinement actually added to the precision,
  /// attributed to the locations they were added at — the refinement's
  /// localized contribution. The ARG engine reacts to the contribution
  /// through the precision itself (per-location staleness stamps drive
  /// its settle sweep); this record exists so callers and tests can
  /// observe *where* a refinement landed without diffing the precision.
  std::vector<std::pair<LocId, const Term *>> NewPredicates;
};

/// Strategy selector.
enum class RefinerKind : uint8_t {
  PathInvariant,          ///< Constraint-based path invariants (default).
  PathInvariantIntervals, ///< Interval abstract interpretation backend.
  PathFormula,            ///< Baseline single-path refinement.
};

/// Refines \p Pi to eliminate the infeasible error path \p Cex of \p P.
RefineResult refine(const Program &P, const Path &Cex, PredicateMap &Pi,
                    SmtSolver &Solver, RefinerKind Kind,
                    const PathInvOptions &Opts = {});

/// Computes the weakest-precondition chain of \p Cex (wp of `false`
/// backwards through the path): one formula per path position, forming an
/// inductive refutation of exactly this path. Exposed for tests and for
/// the divergence benchmark.
std::vector<const Term *> wpChain(const Program &P, const Path &Cex);

} // namespace pathinv

#endif // PATHINV_CEGAR_REFINER_H
