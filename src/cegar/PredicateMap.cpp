//===- cegar/PredicateMap.cpp - Per-location precision ---------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/PredicateMap.h"

#include "logic/TermPrinter.h"

using namespace pathinv;

std::string Precision::dump(const Program &P) const {
  std::string Out;
  auto renderSet = [](const TermSet &Set) {
    std::string S = "{";
    bool First = true;
    for (const Term *Pred : Set) {
      if (!First)
        S += ", ";
      First = false;
      S += printTerm(Pred);
    }
    return S + "}";
  };
  if (!Global.empty())
    Out += "  Pi(*) = " + renderSet(Global) + "\n";
  for (const auto &[Loc, Set] : Scoped)
    Out += "  Pi(" + P.locationName(Loc) + ") = " + renderSet(Set) + "\n";
  return Out;
}
