//===- cegar/Refiner.cpp - Abstraction refinement strategies ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/Refiner.h"

#include "pathprog/PathProgram.h"
#include "program/CutSet.h"
#include "smt/SmtSolver.h"

using namespace pathinv;

namespace {

/// Weakest precondition of \p Post (over program variables) through one
/// builder-shaped transition: defined variables are substituted, guards
/// become the antecedent of an implication. Returns nullptr when \p Post
/// mentions a havocked variable (no sound syntactic wp exists then).
const Term *weakestPre(const Program &P, const Term *Rel, const Term *Post) {
  TermManager &TM = P.termManager();
  std::vector<const Term *> Conjuncts;
  flattenConjuncts(Rel, Conjuncts);

  TermMap Defs; // program var -> rhs
  std::vector<const Term *> Guards;
  for (const Term *C : Conjuncts) {
    if (C->kind() == TermKind::Eq) {
      const Term *Lhs = C->operand(0);
      const Term *Rhs = C->operand(1);
      if (isPrimedVar(Rhs))
        std::swap(Lhs, Rhs);
      if (isPrimedVar(Lhs)) {
        Defs[unprimedVar(TM, Lhs)] = Rhs;
        continue;
      }
    }
    Guards.push_back(C);
  }

  // Havocked variables: mentioned in Post but not defined.
  TermSet Free;
  collectFreeVars(Post, Free);
  for (const Term *Var : P.variables()) {
    if (!Defs.count(Var) && Free.count(Var))
      return nullptr;
  }

  const Term *Pre = substitute(TM, Post, Defs);
  return TM.mkImplies(TM.mkAnd(Guards), Pre);
}

} // namespace

std::vector<const Term *> pathinv::wpChain(const Program &P,
                                           const Path &Cex) {
  TermManager &TM = P.termManager();
  std::vector<const Term *> Chain(Cex.size() + 1, TM.mkFalse());
  for (size_t K = Cex.size(); K-- > 0;) {
    const Term *Pre =
        weakestPre(P, P.transition(Cex[K]).Rel, Chain[K + 1]);
    Chain[K] = Pre ? Pre : TM.mkTrue();
  }
  return Chain;
}

namespace {

/// The baseline refinement (Section 2.1's diverging scheme): track the
/// wp chain of this one path.
RefineResult refineWithWpChain(const Program &P, const Path &Cex,
                               PredicateMap &Pi) {
  // Iterated wp through loops compounds formula size geometrically; a
  // predicate this large can neither be decided quickly nor survive
  // another wp round without overflowing the term DAG, so growth is
  // capped and oversized links skipped (the engine then reports lack of
  // progress instead of diverging).
  constexpr size_t MaxPredicateDagSize = 512;
  RefineResult Result;
  std::vector<const Term *> Chain = wpChain(P, Cex);
  // Position k sits at the source location of step k.
  for (size_t K = 0; K < Cex.size(); ++K) {
    LocId Loc = P.transition(Cex[K]).From;
    if (termDagSize(Chain[K]) > MaxPredicateDagSize)
      continue;
    if (Pi.add(Loc, Chain[K])) {
      Result.Progress = true;
      Result.NewPredicates.emplace_back(Loc, Chain[K]);
    }
  }
  return Result;
}

/// Distributes a path-invariant map over the path program's locations by
/// backwards weakest-precondition propagation along every cut-to-cut
/// segment, contributing each formula as a predicate at the corresponding
/// original location.
void distributeInvariants(const Program &P, const PathProgram &PP,
                          const InvariantMap &Map, PredicateMap &Pi,
                          RefineResult &Result) {
  TermManager &TM = P.termManager();
  const Program &PProg = PP.Prog;

  auto addAt = [&](LocId PathLoc, const Term *Formula) {
    if (!Formula || Formula->isTrue() || Formula->isFalse())
      return;
    LocId Orig = PP.LocInfo[PathLoc].OrigLoc;
    std::vector<const Term *> Conjuncts;
    flattenConjuncts(Formula, Conjuncts);
    for (const Term *C : Conjuncts) {
      if (Pi.add(Orig, C)) {
        Result.Progress = true;
        Result.NewPredicates.emplace_back(Orig, C);
      }
    }
  };

  // Invariants at their own (cutpoint) locations, one conjunct at a time
  // (the localized attribution the per-location precision tracks).
  std::vector<std::pair<LocId, const Term *>> Localized;
  Map.collectLocalized(Localized);
  for (const auto &[Loc, Pred] : Localized) {
    if (Loc != PProg.error())
      addAt(Loc, Pred);
  }

  // WP propagation along segments.
  std::set<LocId> Cuts{PProg.entry(), PProg.error()};
  for (const auto &[Loc, Inv] : Map.Inv)
    Cuts.insert(Loc);
  for (const std::vector<int> &Seg : cutToCutPaths(PProg, Cuts)) {
    LocId Dst = PProg.transition(Seg.back()).To;
    std::vector<const Term *> Current;
    if (Dst == PProg.error()) {
      Current.push_back(TM.mkFalse());
    } else if (Cuts.count(Dst)) {
      flattenConjuncts(Map.at(TM, Dst), Current);
    } else {
      continue; // Terminal dead end: nothing to propagate.
    }
    for (size_t K = Seg.size(); K-- > 0;) {
      std::vector<const Term *> Prev;
      for (const Term *Post : Current) {
        const Term *Pre =
            weakestPre(PProg, PProg.transition(Seg[K]).Rel, Post);
        if (Pre)
          Prev.push_back(Pre);
      }
      Current = std::move(Prev);
      LocId AtLoc = PProg.transition(Seg[K]).From;
      // The segment's source cutpoint already carries its invariant.
      if (K != 0 || !Cuts.count(AtLoc))
        for (const Term *F : Current)
          addAt(AtLoc, F);
      if (K == 0)
        break;
    }
  }
}

} // namespace

RefineResult pathinv::refine(const Program &P, const Path &Cex,
                             PredicateMap &Pi, SmtSolver &Solver,
                             RefinerKind Kind, const PathInvOptions &Opts) {
  if (Kind == RefinerKind::PathFormula)
    return refineWithWpChain(P, Cex, Pi);

  RefineResult Result;
  PathProgram PP = buildPathProgram(P, Cex);
  PathInvResult Inv =
      Kind == RefinerKind::PathInvariantIntervals
          ? generateIntervalInvariants(PP.Prog, Solver)
          : generatePathInvariants(PP.Prog, Solver, Opts);
  Result.TemplateLevelsTried = Inv.LevelsTried;
  Result.LpChecks = Inv.LpChecks;

  if (!Inv.Found) {
    // No path-invariant map exists within the template language (or the
    // backend is too weak); fall back to eliminating just this path.
    RefineResult Fallback = refineWithWpChain(P, Cex, Pi);
    Fallback.UsedFallback = true;
    Fallback.ResourceOut = Inv.ResourceOut;
    Fallback.TemplateLevelsTried = Result.TemplateLevelsTried;
    Fallback.LpChecks = Result.LpChecks;
    return Fallback;
  }

  distributeInvariants(P, PP, Inv.Map, Pi, Result);
  if (!Result.Progress) {
    // The invariants were already known; make sure the loop still moves.
    RefineResult Fallback = refineWithWpChain(P, Cex, Pi);
    Result.Progress = Fallback.Progress;
    Result.NewPredicates = std::move(Fallback.NewPredicates);
    Result.UsedFallback = true;
  }
  return Result;
}
