//===- cegar/AbstractReach.h - Abstract reachability -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *restart-the-world* abstract reachability phase of the CEGAR loop
/// (Section 4.1): an abstract reachability tree over cartesian predicate
/// abstraction, rebuilt from scratch on every refinement.
///
/// This is the legacy engine, kept for one release behind
/// `ReachMode::Restart` (CLI: `--reach=restart`) as the differential
/// oracle for the persistent abstract reachability graph in cegar/Arg.h,
/// which retains nodes across refinements and prunes only the subtree a
/// refinement invalidated.
///
/// A node carries a location and the set of tracked literals (predicates
/// or their negations) that hold there. Expanding a node checks each
/// outgoing transition for abstract feasibility and computes the child's
/// literal set by entailment queries — with quantifier instantiation, so
/// universally quantified predicates from path invariants participate.
/// A node is covered when an already-expanded node at the same location
/// carries a subset of its literals (its abstract state is weaker).
/// BFS order makes the returned counterexample a shortest abstract error
/// path.
///
/// Each wave runs one smt::SolverContext: the post-image of a transition
/// is asserted once and the per-predicate entailment batch is answered by
/// flipping assumption literals, so the shared prefix is never re-encoded.
/// Quantified or store-carrying queries fall back to the one-shot solver.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_ABSTRACTREACH_H
#define PATHINV_CEGAR_ABSTRACTREACH_H

#include "cegar/PredicateMap.h"
#include "program/PathFormula.h"

namespace pathinv {

class SmtSolver;

/// Outcome of one abstract reachability run.
struct ReachResult {
  enum class Kind : uint8_t {
    Proof,        ///< Fixpoint reached without touching the error location.
    Counterexample, ///< Abstract error path found.
    NodeLimit,    ///< Exploration budget exhausted.
    ResourceOut,  ///< The job's ResourceController tripped mid-run.
  };
  Kind Kind = Kind::Proof;
  Path ErrorPath; ///< For Counterexample: transition indices from entry.
  uint64_t NodesExpanded = 0;
  uint64_t EntailmentQueries = 0;
  /// Entailment queries answered by flipping an assumption literal on the
  /// wave's incremental context (post-image asserted once per transition).
  uint64_t AssumptionQueries = 0;
  /// Entailment queries skipped because the edge-feasibility model already
  /// witnessed the answer (theory models are integral, so the witness is
  /// genuine over the integers).
  uint64_t ModelFilteredQueries = 0;
};

/// Which reachability engine the CEGAR loop drives.
enum class ReachMode : uint8_t {
  Arg,     ///< Persistent ARG with subtree-scoped refinement (default).
  Restart, ///< Legacy restart-the-world tree (differential oracle).
};

/// Limits and mode for abstract reachability.
struct ReachOptions {
  uint64_t MaxNodes = 50000;
  ReachMode Mode = ReachMode::Arg;
};

/// Runs abstract reachability on \p P under abstraction \p Pi.
ReachResult abstractReach(const Program &P, const PredicateMap &Pi,
                          SmtSolver &Solver, const ReachOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_CEGAR_ABSTRACTREACH_H
