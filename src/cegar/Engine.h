//===- cegar/Engine.h - The CEGAR verification engine -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-phase CEGAR loop of Section 4.1: abstract reachability,
/// counterexample analysis (path-formula satisfiability + independent
/// concrete replay of real bugs), and abstraction refinement through one
/// of the pluggable strategies. Iterates until proof, bug, or budget.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_ENGINE_H
#define PATHINV_CEGAR_ENGINE_H

#include "cegar/AbstractReach.h"
#include "cegar/Refiner.h"
#include "interp/Interpreter.h"

namespace pathinv {

/// Engine configuration.
struct EngineOptions {
  RefinerKind Refiner = RefinerKind::PathInvariant;
  uint64_t MaxRefinements = 40;
  ReachOptions Reach;
  PathInvOptions PathInv;
  /// Replay bug witnesses concretely before reporting Unsafe.
  bool ValidateWitness = true;
};

/// Aggregate statistics of one verification run.
struct EngineStats {
  uint64_t Refinements = 0;
  uint64_t NodesExpanded = 0;
  uint64_t EntailmentQueries = 0;
  /// Entailment queries served incrementally (assumption flips on an
  /// asserted post-image) during abstract reachability.
  uint64_t AssumptionQueries = 0;
  /// Path-formula conjuncts found already asserted from the previous
  /// iteration's path (prefix reuse) vs. conjuncts freshly asserted.
  uint64_t PathConjunctsReused = 0;
  uint64_t PathConjunctsAsserted = 0;
  uint64_t LpChecks = 0;
  uint64_t Fallbacks = 0;
  uint64_t TemplateLevelsTried = 0;
  size_t FinalPredicates = 0;
};

/// Verdict of a verification run.
struct EngineResult {
  enum class Verdict : uint8_t { Safe, Unsafe, Unknown } Verdict =
      Verdict::Unknown;
  /// For Unsafe: the feasible error path and a replay of it.
  Path Witness;
  ReplayResult Replay;
  bool WitnessReplayed = false;
  /// The abstraction that proved safety (or the state at exhaustion).
  PredicateMap Predicates;
  EngineStats Stats;
  std::string Note; ///< Reason for Unknown verdicts.
};

/// Verifies \p P: Safe (error location unreachable), Unsafe (with
/// witness), or Unknown (budgets exhausted / refinement stuck).
EngineResult verify(const Program &P, SmtSolver &Solver,
                    const EngineOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_CEGAR_ENGINE_H
