//===- cegar/Engine.h - The CEGAR verification engine -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-phase CEGAR loop of Section 4.1: abstract reachability,
/// counterexample analysis (path-formula satisfiability + independent
/// concrete replay of real bugs), and abstraction refinement through one
/// of the pluggable strategies. Iterates until proof, bug, or budget.
///
/// Two reachability backends (ReachOptions::Mode): the default drives the
/// persistent abstract reachability graph of cegar/Arg.h — nodes survive
/// refinements, refinement prunes only the pivot subtree, and covering is
/// graph-wide — while ReachMode::Restart keeps the legacy
/// restart-the-world tree as a differential oracle for one release.
///
/// EngineOptions/EngineStats/EngineResult live in core/Engine.h, shared
/// with the PDR backend; this header adds the CEGAR implementation of the
/// VerificationEngine interface plus the historical verify() free
/// function (CEGAR-only, installs its own controller).
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_ENGINE_H
#define PATHINV_CEGAR_ENGINE_H

#include "core/Engine.h"

namespace pathinv {

/// The CEGAR backend. Holds the persistent ARG, the incremental
/// path-formula checker, and the grown precision across run() calls, so
/// a slice-paused job resumes mid-refinement-loop.
class CegarEngine final : public VerificationEngine {
public:
  CegarEngine(const Program &P, SmtSolver &Solver, const EngineOptions &Opts);
  ~CegarEngine() override;

  const char *name() const override { return "cegar"; }
  EngineResult run() override;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Verifies \p P with the CEGAR engine under a fresh per-job
/// ResourceController built from Opts.Limits: Safe (error location
/// unreachable), Unsafe (with witness), or Unknown (budgets exhausted /
/// refinement stuck).
EngineResult verify(const Program &P, SmtSolver &Solver,
                    const EngineOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_CEGAR_ENGINE_H
