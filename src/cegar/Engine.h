//===- cegar/Engine.h - The CEGAR verification engine -----------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-phase CEGAR loop of Section 4.1: abstract reachability,
/// counterexample analysis (path-formula satisfiability + independent
/// concrete replay of real bugs), and abstraction refinement through one
/// of the pluggable strategies. Iterates until proof, bug, or budget.
///
/// Two reachability backends (ReachOptions::Mode): the default drives the
/// persistent abstract reachability graph of cegar/Arg.h — nodes survive
/// refinements, refinement prunes only the pivot subtree, and covering is
/// graph-wide — while ReachMode::Restart keeps the legacy
/// restart-the-world tree as a differential oracle for one release.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_ENGINE_H
#define PATHINV_CEGAR_ENGINE_H

#include "cegar/AbstractReach.h"
#include "cegar/Refiner.h"
#include "core/Resource.h"
#include "interp/Interpreter.h"

namespace pathinv {

/// Engine configuration.
struct EngineOptions {
  RefinerKind Refiner = RefinerKind::PathInvariant;
  uint64_t MaxRefinements = 40;
  ReachOptions Reach;
  PathInvOptions PathInv;
  /// Replay bug witnesses concretely before reporting Unsafe.
  bool ValidateWitness = true;
  /// Resource governance: wall-clock deadline, memory ceiling, per-layer
  /// step budgets. All zero (the default) means unlimited. Exhaustion
  /// surfaces as Verdict::Unknown with EngineResult::UnknownReason set —
  /// never as a wrong verdict, a crash, or an unusable solver.
  ResourceLimits Limits;
};

/// Aggregate statistics of one verification run.
struct EngineStats {
  uint64_t Refinements = 0;
  uint64_t NodesExpanded = 0;
  uint64_t EntailmentQueries = 0;
  /// Entailment queries served incrementally (assumption flips on an
  /// asserted post-image) during abstract reachability.
  uint64_t AssumptionQueries = 0;
  /// Entailment queries skipped outright because the post-image's
  /// feasibility model already witnessed the answer.
  uint64_t ModelFilteredQueries = 0;
  // ARG engine only: incremental reuse vs. fresh work at the engine level.
  /// Expanded nodes retained across refinements (summed per refinement) —
  /// exploration the restart engine would redo.
  uint64_t NodesReused = 0;
  /// Nodes removed by subtree-scoped pruning (refinements and stale-path
  /// reconciliations).
  uint64_t NodesPruned = 0;
  /// Covering candidate comparisons, and how many nodes ended covered.
  uint64_t CoverChecks = 0;
  uint64_t NodesCovered = 0;
  /// Stale leaves relabelled under a grown precision that an existing
  /// expanded node then covered (expansion saved).
  uint64_t ForcedCovers = 0;
  /// Labelling batches replayed from an identical memoized batch at the
  /// same location (one assumption-flip group per location/post pair per
  /// precision state) — settle sweeps and converged loop unrollings.
  uint64_t RelabelsBatched = 0;
  // ARG engine only: the run-lifetime solver context behind reachability
  // (its checks, and the learned-clause garbage collection keeping it
  // bounded). The facade solver's stats live in Verifier::solverStats().
  uint64_t ReachContextChecks = 0;
  uint64_t ReachLearnedPurges = 0;
  uint64_t ReachClausesPurged = 0;
  uint64_t ReachRedundantClauses = 0;
  /// Branch-and-bound work inside the reach context's theory solver, and
  /// how often a query still had to abandon the cached tableau. A rising
  /// fallback count is a regression in incrementality.
  uint64_t ReachBnbNodes = 0;
  uint64_t ReachScratchFallbacks = 0;
  /// Path-formula conjuncts found already asserted from the previous
  /// iteration's path (prefix reuse) vs. conjuncts freshly asserted.
  uint64_t PathConjunctsReused = 0;
  uint64_t PathConjunctsAsserted = 0;
  uint64_t LpChecks = 0;
  uint64_t Fallbacks = 0;
  uint64_t TemplateLevelsTried = 0;
  size_t FinalPredicates = 0;
  // Resource governance: steps actually spent per budgeted layer (these
  // are the partial stats that survive exhaustion), the peak tracked heap
  // footprint, and how often the escalation ladder retried a
  // budget-exhausted refinement with the cheaper backend.
  ResourceSpent Resources;
  uint64_t PeakMemoryBytes = 0;
  uint64_t EscalationRetries = 0;
};

/// Verdict of a verification run.
struct EngineResult {
  enum class Verdict : uint8_t { Safe, Unsafe, Unknown } Verdict =
      Verdict::Unknown;
  /// For Unsafe: the feasible error path and a replay of it.
  Path Witness;
  ReplayResult Replay;
  bool WitnessReplayed = false;
  /// The abstraction that proved safety (or the state at exhaustion).
  PredicateMap Predicates;
  EngineStats Stats;
  std::string Note; ///< Reason for Unknown verdicts (human-readable).
  /// Machine-readable exhaustion reason when the ResourceController
  /// tripped: one of "deadline", "memory", "sat_conflicts", "pivots",
  /// "bnb_nodes", "synth_combos", "arg_expansions", "refinements",
  /// "cancelled". Empty when the verdict is not resource-related.
  std::string UnknownReason;
};

/// Verifies \p P: Safe (error location unreachable), Unsafe (with
/// witness), or Unknown (budgets exhausted / refinement stuck).
EngineResult verify(const Program &P, SmtSolver &Solver,
                    const EngineOptions &Opts = {});

} // namespace pathinv

#endif // PATHINV_CEGAR_ENGINE_H
