//===- cegar/Arg.h - Persistent abstract reachability graph ----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy-abstraction abstract reachability: a *persistent* abstract
/// reachability graph (ARG) over cartesian predicate abstraction, kept
/// alive across refinements, with graph-wide covering and subtree-scoped
/// refinement.
///
/// Where the legacy engine (cegar/AbstractReach.h) rebuilds its tree from
/// scratch on every refinement, the ReachEngine here retains every node
/// the new predicates cannot invalidate:
///
///  * Nodes are created as unlabelled *shells* when their parent expands;
///    processing a shell checks the incoming edge's abstract feasibility
///    and computes the node's literal label (one entailment batch over the
///    precision's predicates relevant at the node's location) in a single
///    solver scope.
///  * Covering is graph-wide: a labelled node is covered by ANY expanded
///    node at the same location carrying a subset of its literals — not
///    just nodes of the current wave. Before expansion, a *forced
///    covering* attempt relabels stale leaves (nodes whose location
///    gained predicates since labelling) so an existing expanded node can
///    subsume them without growing the graph.
///  * Refinement is subtree-scoped, by an *in-place settle sweep*: after
///    the refiner grows the precision, the engine relabels every stale
///    expanded node in one top-down pass (labels only ever strengthen —
///    the precision grows and parent labels strengthen monotonically — so
///    subtrees computed under the old, weaker labels remain sound
///    over-approximations and stay attached while the sweep runs). Nodes
///    whose labels come out unchanged cut the cascade: their subtrees are
///    reused verbatim. The pivot emerges semantically: the subtree below
///    an edge is pruned exactly when the edge's post-image became empty
///    under the strengthened labels. Syntactically-new-but-redundant
///    predicates sprayed at early locations (which wp-chain and interval
///    refiners produce freely) therefore cost one assumption-flip batch
///    per affected node instead of a near-root prune.
///  * Stale counterexamples never reach the refiner: a discovered error
///    path whose labels predate the current precision is reconciled —
///    settled the same way — so refinement and feasibility analysis only
///    ever see paths that stand under the full current precision. This is
///    what makes covering by stale-labelled frontier nodes safe: a
///    spurious path re-entering through a stale region is reconciled, not
///    re-refined.
///
/// One smt::SolverContext lives for the whole verification run — across
/// every refinement — so Tseitin encodings of transition relations,
/// learned clauses, and theory lemmas asserted while exploring wave N are
/// still there in wave N+k. (The companion learned-clause purge in the
/// SAT core keeps that long-lived context's clause database bounded.)
///
/// Soundness sketch: labels are over-approximations by construction (each
/// literal is entailed by the node's incoming concrete post-image), and a
/// coverer's literal set being a subset of the coveree's makes the coverer
/// abstractly weaker, so the coverer's (eventually explored) subtree
/// over-approximates the coveree's. Coverers must be expanded and covered
/// nodes are never expanded, so the covering relation is structurally
/// acyclic. At a fixpoint (empty worklist, error unreached) every live
/// leaf is covered and every uncovered node expanded: a proof.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_CEGAR_ARG_H
#define PATHINV_CEGAR_ARG_H

#include "cegar/AbstractReach.h"
#include "cegar/PredicateMap.h"
#include "program/PathFormula.h"
#include "smt/SolverContext.h"

#include <algorithm>
#include <map>
#include <queue>
#include <tuple>

namespace pathinv {

class SmtSolver;
struct InvariantMap;

/// One node of the abstract reachability graph.
struct ArgNode {
  enum class State : uint8_t {
    Shell,      ///< Created by the parent's expansion; not yet labelled.
    Leaf,       ///< Labelled, feasible, awaiting covering check/expansion.
    Expanded,   ///< Children created for every outgoing transition.
    Covered,    ///< Subsumed by a weaker expanded node at the same location.
    Infeasible, ///< Incoming edge abstractly infeasible; a dead end.
    Pruned,     ///< Removed by a refinement or stale-path reconciliation.
  };

  LocId Loc = -1;
  TermSet Literals; ///< Tracked literals; meaningful once labelled.
  int Parent = -1;
  int InTrans = -1; ///< Transition taken from the parent.
  int Depth = 0;    ///< Path length from the root.
  std::vector<int> Children;
  int CoveredBy = -1; ///< Covering node id, or -1.
  State St = State::Shell;
  bool HasLabel = false;
  bool InWorklist = false;
  /// Set when a concretely-infeasible error edge was dropped from this
  /// node's subtree without an abstract refutation (the flag propagates
  /// to every ancestor of the dropped edge): the subtree no longer
  /// represents every abstract continuation of the node's state, so it
  /// is soundness-critical that the node never serves as a coverer (a
  /// coveree's continuations are entrusted to its coverer's subtree).
  bool Incomplete = false;
  /// Set when the parent's label strengthened after this node's label was
  /// computed: the label is sound (it was entailed by a weaker post-image)
  /// but out of date. Relabelling clears it and, when the label changes,
  /// sets it on the children — staleness cascades lazily, one generation
  /// per relabel.
  bool ParentStale = false;
  /// Precision::sizeAt(Loc) when the label was computed. The precision
  /// only grows, so a smaller stamp means the label is stale.
  size_t PrecStamp = 0;

  /// A label is stale when its location gained predicates or its parent's
  /// label strengthened since it was computed.
  bool staleUnder(const Precision &Pi) const {
    return HasLabel && (ParentStale || PrecStamp < Pi.sizeAt(Loc));
  }

  bool isLive() const { return St != State::Pruned; }
};

/// The covering rule, shared by cover search, cover revalidation, and the
/// invariant checker: \p Coverer may soundly cover \p Coveree when it is
/// an expanded, complete node at the same location whose literal set is a
/// subset of the coveree's (a weaker abstract state, so its explored
/// subtree over-approximates the coveree's continuations).
inline bool canCover(const ArgNode &Coverer, const ArgNode &Coveree) {
  return Coverer.St == ArgNode::State::Expanded && !Coverer.Incomplete &&
         Coverer.Loc == Coveree.Loc &&
         std::includes(Coveree.Literals.begin(), Coveree.Literals.end(),
                       Coverer.Literals.begin(), Coverer.Literals.end(),
                       TermIdLess());
}

/// The node store. Nodes are append-only; pruning marks (never erases), so
/// node ids are stable for the lifetime of a verification run.
class Arg {
public:
  const std::vector<ArgNode> &nodes() const { return Nodes; }
  const ArgNode &node(int Id) const { return Nodes[Id]; }
  size_t numLive() const;

  /// Structural well-formedness check (used by tests, and asserted after
  /// each refinement in Debug/sanitizer builds):
  ///  * parent/child edge consistency — N.Children[i].Parent == N, child
  ///    ids exceed the parent's, live nodes appear in their live parent's
  ///    child list, pruned subtrees are pruned wholesale;
  ///  * covering is acyclic and well-formed — coverers are live expanded
  ///    nodes at the same location whose literal set is a subset of the
  ///    coveree's, and only Covered nodes carry a CoveredBy link;
  ///  * covered nodes have no (expanded) children;
  ///  * covers are rotated to strength — no live expanded complete node
  ///    at the same location could cover the coveree with strictly fewer
  ///    literals than its current coverer (the engine re-points covers at
  ///    the strongest candidate whenever one appears).
  /// \returns an empty string when all invariants hold, else a diagnostic.
  std::string verifyInvariants() const;

private:
  friend class ReachEngine;
  std::vector<ArgNode> Nodes;
};

/// Reach-layer statistics, cumulative over the engine's lifetime.
struct ArgStats {
  uint64_t NodesExpanded = 0;     ///< Nodes that reached Expanded.
  uint64_t NodesLabelled = 0;     ///< Label batches run (incl. relabels).
  uint64_t EntailmentQueries = 0;
  uint64_t AssumptionQueries = 0; ///< Served as assumption flips.
  /// Entailment queries skipped because the edge-feasibility model already
  /// witnessed the answer (integral theory models are genuine witnesses).
  uint64_t ModelFilteredQueries = 0;
  /// Labelling batches served from another node's memoized outcome (same
  /// location, same post-image, same precision): the assumption-flip
  /// group ran once per location/post pair instead of once per node —
  /// settle-sweep cohorts and converged loop unrollings both batch.
  uint64_t RelabelsBatched = 0;
  uint64_t CoverChecks = 0;       ///< Candidate subset comparisons.
  uint64_t NodesCovered = 0;
  uint64_t ForcedCovers = 0;      ///< Stale-leaf relabels ending covered.
  /// Covered nodes re-pointed at a strictly more general coverer (fewer
  /// literals) than the one they held — on new expansions and on cover
  /// refreshes after refinements.
  uint64_t CoverRotations = 0;
  uint64_t NodesPruned = 0;
  uint64_t NodesReused = 0;       ///< Expanded nodes surviving a refinement
                                  ///< without relabelling (summed over
                                  ///< refinements) — work a restart would
                                  ///< redo from scratch.
  uint64_t Reconciliations = 0;   ///< Stale paths refuted by replay outside
                                  ///< a refinement.
  uint64_t InfeasibleEdges = 0;
};

/// Outcome of one ReachEngine::run() resumption.
struct ArgRunResult {
  enum class Kind : uint8_t {
    Proof,          ///< Fixpoint reached without reaching the error node.
    Counterexample, ///< Abstract error path found.
    NodeLimit,      ///< Cumulative expansion budget exhausted.
    ResourceOut,    ///< The job's ResourceController tripped; the graph
                    ///< stays valid and run() may resume later.
  };
  Kind Kind = Kind::Proof;
  Path ErrorPath; ///< For Counterexample: transition indices from entry.
  /// For Counterexample: node ids along the path; PathNodes[i] is the node
  /// after i steps (PathNodes[0] the root, PathNodes.back() the error
  /// node). Input to applyRefinement / reconcileStalePath.
  std::vector<int> PathNodes;
};

/// The work-queue engine over the persistent ARG. One instance drives one
/// verification run: construct it once, then alternate run() with
/// applyRefinement() (or reconcileStalePath()) until a verdict.
class ReachEngine {
public:
  /// \p Pi is read on every labelling, so refinements that grow it are
  /// visible to nodes created afterwards. \p Solver serves quantified or
  /// store-carrying queries the incremental context cannot take.
  ReachEngine(const Program &P, const Precision &Pi, SmtSolver &Solver,
              const ReachOptions &Opts = {});

  /// Resumes exploration from the current frontier.
  ArgRunResult run();

  /// Subtree-scoped refinement: replays \p R's error path under the
  /// (just grown) precision, relabelling stale nodes in place and pruning
  /// the subtree below the first edge that became abstractly infeasible —
  /// the semantic pivot. When the precision fails to refute the path
  /// abstractly (predicate-size caps can skip the crucial link), the
  /// error node alone is dropped: its SSA path formula was proven
  /// infeasible by the caller, so no concrete execution follows that
  /// exact transition sequence and forgetting it is sound — provided the
  /// parent (whose subtree now misses an abstractly feasible edge) is
  /// disqualified from ever covering another node, which this does.
  void applyRefinement(const ArgRunResult &R);

  /// If \p R's error path carries labels computed under an older
  /// precision, replays it (exactly like applyRefinement) and returns
  /// true when that refuted the path: the caller should resume run()
  /// instead of analyzing a stale counterexample. Returns false when the
  /// path stands under the full current precision.
  bool reconcileStalePath(const ArgRunResult &R);

  /// Reads a safety certificate off a proof fixpoint: eta(l) is the
  /// disjunction, over the live *expanded* nodes at l, of each node's
  /// literal conjunction (covered nodes are subsumed by their weaker
  /// coverer at the same location, infeasible nodes denote the empty
  /// region, and node-less locations are abstractly unreachable, so both
  /// map to false). The entry keeps its implicit `true` (the root's label
  /// is definitionally empty) and the error maps to false. \returns false
  /// — with \p Out untouched — when the graph cannot certify: not at a
  /// fixpoint (live shells/leaves remain), or a non-root node sits at
  /// the entry location (a loop head at entry would need a nontrivial
  /// entry invariant, which (I0) forbids). Incomplete nodes
  /// (soundly-dropped infeasible error edges) do not refuse the export:
  /// whether their labels also exclude the error single-step is settled
  /// by the caller's mandatory checkInvariantMap validation. The export
  /// is a read-off, not a proof — the caller must always validate before
  /// reporting.
  bool exportInvariantMap(InvariantMap &Out) const;

  const Arg &arg() const { return Graph; }
  const ArgStats &stats() const { return Stats; }
  /// The run-lifetime incremental solver context (exposed for stats).
  smt::SolverContext &context() { return Ctx; }

private:
  ArgNode &node(int Id) { return Graph.Nodes[Id]; }
  int makeShell(int Parent, int TransIdx);
  void enqueue(int Id);
  /// Computes (or recomputes) the label of \p Id from its parent's label
  /// and incoming transition; does not change the node's state except to
  /// mark an infeasible edge. \returns false when the incoming edge is
  /// abstractly infeasible (the node is marked Infeasible).
  bool labelNode(int Id);
  /// \returns the id of the *strongest* live expanded node at \p Id's
  /// location whose literals are a subset of \p Id's — fewest literals
  /// (most general abstract region, hence the biggest covered family),
  /// smallest id on ties — or -1 when none covers.
  int findCoverer(int Id);
  /// Coverer rotation at expansion time: re-points every covered node at
  /// \p NewCoverer's location whose current coverer has strictly more
  /// literals (the new node covers a strictly more general region, so
  /// refinements that strengthen the old coverer's label break fewer
  /// covers). Compacts dead entries out of CoveredAt as it scans.
  void rotateCovers(int NewCoverer);
  /// Marks the subtree rooted at \p Id pruned (parent links untouched).
  void pruneSubtree(int Id);
  /// Re-enqueues every covered node whose coverer is no longer a live
  /// expanded node with a subset label (pruning and relabelling both
  /// break covers), and rotates every surviving cover to the strongest
  /// candidate coverer (relabelling can strengthen an old coverer past a
  /// sibling that stayed general).
  void refreshCovers();
  /// The settle sweep: brings every expanded node's label up to date with
  /// the precision (one top-down id-ordered pass — children always have
  /// larger ids — so strengthening cascades in a single sweep), pruning
  /// the subtree below every edge whose post-image became empty. Then
  /// re-decides \p R's error edge if its parent strengthened. \returns
  /// true when the error path was refuted.
  bool settleAndRecheck(const ArgRunResult &R);

  const Program &P;
  TermManager &TM;
  const Precision &Pi;
  SmtSolver &Solver;
  ReachOptions Opts;
  /// Long-lived incremental context: survives every refinement, so
  /// per-transition encodings and everything learned while exploring
  /// earlier waves keep paying off.
  smt::SolverContext Ctx;
  Arg Graph;
  /// Depth-ordered (shallowest first, then creation order): resumed
  /// exploration keeps the restart engine's BFS property that a reported
  /// counterexample is a shortest abstract error path, so the refiner
  /// sees the same easy path programs a fresh re-exploration would find.
  std::priority_queue<std::pair<int, int>, std::vector<std::pair<int, int>>,
                      std::greater<std::pair<int, int>>>
      Worklist;
  /// Live expanded node ids per location — the covering candidate index.
  std::vector<std::vector<int>> ExpandedAt;
  /// Covered node ids per location — the rotation index (entries go stale
  /// when a cover breaks; scans compact them out lazily).
  std::vector<std::vector<int>> CoveredAt;
  /// Label batching: a node's label is a pure function of (state formula,
  /// transition relation, location) under a fixed precision, so the
  /// outcome of one labelling batch is memoized under that key and
  /// replayed for every node that matches — loop unrollings whose parents
  /// converged to the same label, reconvergent branches, and above all
  /// the settle sweep, where whole cohorts of stale nodes at a location
  /// share one post-image. Entries carry the precision stamp the
  /// staleness machinery already uses (Precision::sizeAt at the keyed
  /// location); a stamp mismatch is a miss, so entries self-invalidate
  /// when a refinement grows the precision — no clearing protocol.
  /// Terms are interned: pointer identity is formula identity.
  struct RelabelOutcome {
    bool Feasible;
    TermSet Literals;
    size_t PrecStamp;
  };
  using RelabelKey = std::tuple<const Term *, const Term *, LocId>;
  std::map<RelabelKey, RelabelOutcome> LabelMemo;
  ArgStats Stats;
};

} // namespace pathinv

#endif // PATHINV_CEGAR_ARG_H
