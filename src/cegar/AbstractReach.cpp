//===- cegar/AbstractReach.cpp - Abstract reachability ---------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cegar/AbstractReach.h"

#include "core/Resource.h"
#include "smt/QuantInst.h"
#include "smt/SmtSolver.h"
#include "smt/SolverContext.h"

#include <algorithm>
#include <deque>

using namespace pathinv;

namespace {

struct Node {
  LocId Loc;
  TermSet Literals; ///< Tracked predicates / negated predicates.
  int Parent = -1;
  int InTrans = -1; ///< Transition taken from the parent.
};

} // namespace

namespace {

/// True when \p F can be asserted into a SolverContext directly (no
/// quantifier instantiation, no whole-formula array-write elimination).
bool isGround(const Term *F) {
  return !containsQuantifier(F) && !containsStore(F);
}

} // namespace

ReachResult pathinv::abstractReach(const Program &P, const PredicateMap &Pi,
                                   SmtSolver &Solver,
                                   const ReachOptions &Opts) {
  TermManager &TM = P.termManager();
  ReachResult Result;

  // One incremental context per node-expansion wave. Per node the abstract
  // state is asserted once; per outgoing transition its relation is pushed
  // on top; the per-predicate entailment batch then only flips assumption
  // literals. Quantified or store-carrying queries fall back to the
  // one-shot solver (quantifier instantiation depends on both sides of an
  // entailment, and array-write elimination is whole-formula).
  smt::SolverContext Ctx(TM);

  std::vector<Node> Nodes;
  std::deque<int> Worklist;
  // Expanded abstract states per location, for covering (stored by value:
  // the node vector reallocates while children are appended).
  std::map<LocId, std::vector<TermSet>> Expanded;

  Nodes.push_back({P.entry(), {}, -1, -1});
  Worklist.push_back(0);

  auto stateFormula = [&TM](const TermSet &Literals) {
    std::vector<const Term *> Conj(Literals.begin(), Literals.end());
    return TM.mkAnd(std::move(Conj));
  };

  while (!Worklist.empty()) {
    if (Result.NodesExpanded >= Opts.MaxNodes) {
      Result.Kind = ReachResult::Kind::NodeLimit;
      return Result;
    }
    if (!resourceCharge(ResourceKind::ArgExpansions)) {
      Result.Kind = ReachResult::Kind::ResourceOut;
      return Result;
    }
    int NodeIdx = Worklist.front();
    Worklist.pop_front();
    // Copy: Nodes may reallocate while children are appended.
    const Node Cur = Nodes[NodeIdx];

    // Covering: a weaker expanded state at this location subsumes Cur.
    auto &Seen = Expanded[Cur.Loc];
    bool Covered = false;
    for (const TermSet &Old : Seen) {
      if (std::includes(Cur.Literals.begin(), Cur.Literals.end(),
                        Old.begin(), Old.end(), TermIdLess())) {
        Covered = true;
        break;
      }
    }
    if (Covered)
      continue;
    ++Result.NodesExpanded;
    Seen.push_back(Cur.Literals);

    const Term *State = stateFormula(Cur.Literals);
    bool StateInCtx = isGround(State);
    if (StateInCtx) {
      Ctx.push();
      Ctx.assertTerm(State);
    }
    for (int TransIdx : P.successorsOf(Cur.Loc)) {
      const Transition &T = P.transition(TransIdx);
      const Term *Post = TM.mkAnd(State, T.Rel);
      bool PostInCtx = StateInCtx && isGround(T.Rel);
      if (PostInCtx) {
        Ctx.push();
        Ctx.assertTerm(T.Rel);
      }
      auto popPost = [&]() {
        if (PostInCtx)
          Ctx.pop();
      };

      // Abstract feasibility of the edge: is the concrete post-image
      // non-empty? The Sat model doubles as a witness for the entailment
      // batch below: a predicate it values definitely false cannot be
      // entailed, one it values definitely true cannot be refuted, so
      // those queries are skipped instead of routed to the solver.
      ++Result.EntailmentQueries;
      std::optional<smt::CheckResult> Feas;
      if (PostInCtx)
        Feas = Ctx.checkSat();
      bool Infeasible = PostInCtx
                            ? Feas->isUnsat()
                            : entailsWithQuant(TM, Solver, Post, TM.mkFalse());
      if (Infeasible) {
        popPost();
        continue;
      }

      if (T.To == P.error()) {
        // Abstract counterexample: path from the root.
        Path Cex;
        Cex.push_back(TransIdx);
        for (int N = NodeIdx; Nodes[N].Parent >= 0; N = Nodes[N].Parent)
          Cex.push_back(Nodes[N].InTrans);
        std::reverse(Cex.begin(), Cex.end());
        Result.Kind = ReachResult::Kind::Counterexample;
        Result.ErrorPath = std::move(Cex);
        return Result;
      }

      // Cartesian abstract post: track each predicate (or its negation)
      // entailed by the concrete post-image. With the post asserted in the
      // context, each entailment is one assumption flip — the post's
      // encoding and tableau are reused across the whole batch.
      Node Child;
      Child.Loc = T.To;
      Child.Parent = NodeIdx;
      Child.InTrans = TransIdx;
      std::vector<const Term *> Relevant;
      Pi.collectRelevant(T.To, Relevant);
      for (const Term *Pred : Relevant) {
        const Term *PredPrimed =
            renameVars(TM, Pred, [&TM](const Term *Var) -> const Term * {
              return primedVar(TM, Var);
            });
        bool PredInCtx = PostInCtx && isGround(PredPrimed);
        std::optional<bool> Witness;
        if (PredInCtx)
          Witness = smt::evalLiteral(Feas->model(), PredPrimed);
        bool Entailed;
        if (Witness && !*Witness) {
          Entailed = false; // The feasibility model refutes entailment.
          ++Result.ModelFilteredQueries;
        } else {
          ++Result.EntailmentQueries;
          if (PredInCtx)
            ++Result.AssumptionQueries;
          Entailed = PredInCtx
                         ? Ctx.checkSat({TM.mkNot(PredPrimed)}).isUnsat()
                         : entailsWithQuant(TM, Solver, Post, PredPrimed);
        }
        if (Entailed) {
          Child.Literals.insert(Pred);
          continue;
        }
        // Track definite falseness too (needed to refute paths whose
        // infeasibility rests on a predicate being violated).
        if (!containsQuantifier(Pred)) {
          bool NegEntailed;
          if (Witness && *Witness) {
            NegEntailed = false; // The model satisfies the predicate.
            ++Result.ModelFilteredQueries;
          } else {
            ++Result.EntailmentQueries;
            if (PredInCtx)
              ++Result.AssumptionQueries;
            NegEntailed =
                PredInCtx
                    ? Ctx.checkSat({PredPrimed}).isUnsat()
                    : entailsWithQuant(TM, Solver, Post, TM.mkNot(PredPrimed));
          }
          if (NegEntailed)
            Child.Literals.insert(TM.mkNot(Pred));
        }
      }
      popPost();
      Nodes.push_back(std::move(Child));
      Worklist.push_back(static_cast<int>(Nodes.size()) - 1);
    }
    if (StateInCtx)
      Ctx.pop();
  }
  Result.Kind = ReachResult::Kind::Proof;
  return Result;
}
