//===- smt/Simplex.cpp - Exact simplex for linear arithmetic -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/Simplex.h"

#include "core/Resource.h"

using namespace pathinv;

int Simplex::addVar() {
  Vars.push_back(VarState());
  return static_cast<int>(Vars.size()) - 1;
}

void Simplex::addConstraint(
    const std::vector<std::pair<int, Rational>> &Coeffs, SimplexRel Rel,
    const Rational &Rhs, int Tag) {
  if (HasConflict)
    return;

  // Accumulate repeated variables.
  std::map<int, Rational> Sum;
  for (const auto &[Var, Coeff] : Coeffs) {
    assert(Var >= 0 && Var < numVars() && "constraint over unknown variable");
    auto It = Sum.try_emplace(Var).first;
    It->second += Coeff;
    if (It->second.isZero())
      Sum.erase(It);
  }

  if (Sum.empty()) {
    // Ground constraint: either trivially true or an immediate conflict.
    Rational Zero;
    bool Holds = true;
    switch (Rel) {
    case SimplexRel::Le:
      Holds = Zero <= Rhs;
      break;
    case SimplexRel::Lt:
      Holds = Zero < Rhs;
      break;
    case SimplexRel::Ge:
      Holds = Zero >= Rhs;
      break;
    case SimplexRel::Gt:
      Holds = Zero > Rhs;
      break;
    case SimplexRel::Eq:
      Holds = Rhs.isZero();
      break;
    }
    if (!Holds) {
      HasConflict = true;
      Core = {Tag};
    }
    return;
  }

  int BoundVar;
  Rational Scale(1);
  if (Sum.size() == 1) {
    // Single-variable constraint: bound the variable directly, dividing
    // through by the coefficient (flipping the relation when negative).
    BoundVar = Sum.begin()->first;
    Scale = Sum.begin()->second;
  } else {
    // Introduce a slack variable s = expr, substituting rows for any basic
    // variables so the row mentions only nonbasic ones.
    Row NewRow;
    DeltaRational Beta;
    for (const auto &[Var, Coeff] : Sum) {
      if (Vars[Var].Basic) {
        for (const auto &[Sub, SubCoeff] : Rows[Var]) {
          auto It = NewRow.try_emplace(Sub).first;
          It->second.addMul(Coeff, SubCoeff);
          if (It->second.isZero())
            NewRow.erase(It);
        }
      } else {
        auto It = NewRow.try_emplace(Var).first;
        It->second += Coeff;
        if (It->second.isZero())
          NewRow.erase(It);
      }
      Beta.addMul(Vars[Var].Beta, Coeff);
    }
    BoundVar = addVar();
    Vars[BoundVar].Basic = true;
    Vars[BoundVar].Beta = Beta;
    Rows[BoundVar] = std::move(NewRow);
  }

  Rational Bound = Rhs / Scale;
  bool Flip = Scale.isNegative();
  SimplexRel EffRel = Rel;
  if (Flip) {
    switch (Rel) {
    case SimplexRel::Le:
      EffRel = SimplexRel::Ge;
      break;
    case SimplexRel::Lt:
      EffRel = SimplexRel::Gt;
      break;
    case SimplexRel::Ge:
      EffRel = SimplexRel::Le;
      break;
    case SimplexRel::Gt:
      EffRel = SimplexRel::Lt;
      break;
    case SimplexRel::Eq:
      break;
    }
  }

  bool Ok = true;
  switch (EffRel) {
  case SimplexRel::Le:
    Ok = assertUpper(BoundVar, DeltaRational(Bound), Tag);
    break;
  case SimplexRel::Lt:
    Ok = assertUpper(BoundVar, DeltaRational(Bound, Rational(-1)), Tag);
    break;
  case SimplexRel::Ge:
    Ok = assertLower(BoundVar, DeltaRational(Bound), Tag);
    break;
  case SimplexRel::Gt:
    Ok = assertLower(BoundVar, DeltaRational(Bound, Rational(1)), Tag);
    break;
  case SimplexRel::Eq:
    Ok = assertUpper(BoundVar, DeltaRational(Bound), Tag) &&
         assertLower(BoundVar, DeltaRational(Bound), Tag);
    break;
  }
  (void)Ok;
}

void Simplex::addBound(int Var, SimplexRel Rel, const Rational &Rhs,
                       int Tag) {
  addConstraint({{Var, Rational(1)}}, Rel, Rhs, Tag);
}

void Simplex::recordBoundUndo(int Var, bool IsLower) {
  if (Scopes.empty())
    return;
  const VarState &VS = Vars[Var];
  UndoTrail.push_back({Var, IsLower, IsLower ? VS.Lower : VS.Upper});
}

void Simplex::push() {
  Scopes.push_back({UndoTrail.size(), numVars(), HasConflict});
}

void Simplex::pop() {
  assert(!Scopes.empty() && "pop without matching push");
  ScopeMark M = Scopes.back();
  Scopes.pop_back();
  // Restore bounds in reverse assertion order. Bounds only tighten within
  // a scope, so the surviving (looser) bounds are still satisfied by every
  // nonbasic variable's current assignment; basic violations are repaired
  // by the next check() as usual.
  for (size_t I = UndoTrail.size(); I-- > M.UndoMark;) {
    const BoundUndo &U = UndoTrail[I];
    (U.IsLower ? Vars[U.Var].Lower : Vars[U.Var].Upper) = U.Old;
  }
  UndoTrail.resize(M.UndoMark);
  // Variables introduced in the scope become unconstrained dead columns;
  // drop the rows they still own.
  for (int Var = M.VarMark; Var < numVars(); ++Var) {
    if (Vars[Var].Basic) {
      Rows.erase(Var);
      Vars[Var].Basic = false;
    }
  }
  if (!M.HadConflict) {
    HasConflict = false;
    Core.clear();
  }
}

bool Simplex::assertLower(int Var, const DeltaRational &Value, int Tag) {
  VarState &VS = Vars[Var];
  if (VS.Lower.Present && Value <= VS.Lower.Value)
    return true; // No tightening.
  if (VS.Upper.Present && VS.Upper.Value < Value) {
    HasConflict = true;
    Core = {Tag, VS.Upper.Tag};
    return false;
  }
  recordBoundUndo(Var, /*IsLower=*/true);
  VS.Lower = {Value, Tag, true};
  if (!VS.Basic && VS.Beta < Value)
    updateNonbasic(Var, Value);
  return true;
}

bool Simplex::assertUpper(int Var, const DeltaRational &Value, int Tag) {
  VarState &VS = Vars[Var];
  if (VS.Upper.Present && VS.Upper.Value <= Value)
    return true;
  if (VS.Lower.Present && Value < VS.Lower.Value) {
    HasConflict = true;
    Core = {Tag, VS.Lower.Tag};
    return false;
  }
  recordBoundUndo(Var, /*IsLower=*/false);
  VS.Upper = {Value, Tag, true};
  if (!VS.Basic && Value < VS.Beta)
    updateNonbasic(Var, Value);
  return true;
}

void Simplex::updateNonbasic(int Var, const DeltaRational &Value) {
  DeltaRational Diff = Value - Vars[Var].Beta;
  for (auto &[BasicVar, TheRow] : Rows) {
    auto It = TheRow.find(Var);
    if (It != TheRow.end())
      Vars[BasicVar].Beta.addMul(Diff, It->second);
  }
  Vars[Var].Beta = Value;
}

void Simplex::pivot(int Basic, int Nonbasic) {
  ++NumPivots;
  Row OldRow = std::move(Rows[Basic]);
  Rows.erase(Basic);
  Rational PivotCoeff = OldRow[Nonbasic];
  assert(!PivotCoeff.isZero() && "pivot on zero coefficient");

  // Express Nonbasic in terms of Basic and the remaining row variables:
  //   Basic = sum(a_k x_k)  ==>  Nonbasic = (Basic - sum_{k!=j} a_k x_k)/a_j
  Row NewRow;
  NewRow[Basic] = PivotCoeff.inverse();
  for (const auto &[Var, Coeff] : OldRow) {
    if (Var == Nonbasic)
      continue;
    NewRow[Var] = -(Coeff / PivotCoeff);
  }

  // Substitute into every other row that mentions Nonbasic.
  for (auto &[OtherBasic, OtherRow] : Rows) {
    auto It = OtherRow.find(Nonbasic);
    if (It == OtherRow.end())
      continue;
    Rational Factor = std::move(It->second);
    OtherRow.erase(It);
    for (const auto &[Var, Coeff] : NewRow) {
      // Accumulate in place: no product temporary, one map lookup.
      auto Slot = OtherRow.try_emplace(Var).first;
      Slot->second.addMul(Factor, Coeff);
      if (Slot->second.isZero())
        OtherRow.erase(Slot);
    }
  }

  Rows[Nonbasic] = std::move(NewRow);
  Vars[Basic].Basic = false;
  Vars[Nonbasic].Basic = true;
}

void Simplex::pivotAndUpdate(int Basic, int Nonbasic,
                             const DeltaRational &Target) {
  const Rational &Coeff = Rows[Basic][Nonbasic];
  DeltaRational Theta = (Target - Vars[Basic].Beta) * Coeff.inverse();
  Vars[Basic].Beta = Target;
  Vars[Nonbasic].Beta += Theta;
  for (auto &[OtherBasic, TheRow] : Rows) {
    if (OtherBasic == Basic)
      continue;
    auto It = TheRow.find(Nonbasic);
    if (It != TheRow.end())
      Vars[OtherBasic].Beta.addMul(Theta, It->second);
  }
  pivot(Basic, Nonbasic);
}

Simplex::Result Simplex::check() {
  if (HasConflict)
    return Result::Unsat;

  while (true) {
    // Bland's rule: smallest-index basic variable violating a bound.
    int Violating = -1;
    bool BelowLower = false;
    for (const auto &[BasicVar, TheRow] : Rows) {
      const VarState &VS = Vars[BasicVar];
      if (VS.Lower.Present && VS.Beta < VS.Lower.Value) {
        Violating = BasicVar;
        BelowLower = true;
        break;
      }
      if (VS.Upper.Present && VS.Upper.Value < VS.Beta) {
        Violating = BasicVar;
        BelowLower = false;
        break;
      }
    }
    if (Violating < 0)
      return Result::Sat;

    const Row &TheRow = Rows[Violating];
    int Entering = -1;
    for (const auto &[Var, Coeff] : TheRow) {
      const VarState &VS = Vars[Var];
      bool CanIncrease = !VS.Upper.Present || VS.Beta < VS.Upper.Value;
      bool CanDecrease = !VS.Lower.Present || VS.Lower.Value < VS.Beta;
      bool Suitable = BelowLower
                          ? (Coeff.isPositive() ? CanIncrease : CanDecrease)
                          : (Coeff.isPositive() ? CanDecrease : CanIncrease);
      if (Suitable) {
        Entering = Var; // Smallest index first (map is ordered): Bland.
        break;
      }
    }

    if (Entering < 0) {
      // Infeasible: the violated bound plus the blocking bounds of every
      // row variable form a Farkas-inconsistent set.
      HasConflict = true;
      Core.clear();
      const VarState &VS = Vars[Violating];
      Core.push_back(BelowLower ? VS.Lower.Tag : VS.Upper.Tag);
      for (const auto &[Var, Coeff] : TheRow) {
        const VarState &OV = Vars[Var];
        bool UseUpper = BelowLower ? Coeff.isPositive() : Coeff.isNegative();
        Core.push_back(UseUpper ? OV.Upper.Tag : OV.Lower.Tag);
      }
      return Result::Unsat;
    }

    if (!resourceCharge(ResourceKind::Pivots))
      return Result::Interrupted; // Between pivots: tableau consistent.

    pivotAndUpdate(Violating, Entering,
                   BelowLower ? Vars[Violating].Lower.Value
                              : Vars[Violating].Upper.Value);
  }
}

Rational Simplex::concretizeDelta() const {
  // Find delta > 0 such that replacing the infinitesimal by delta keeps
  // every bound satisfied: for beta = (br, bi) against bound (r, i) with
  // beta >= bound required, we need (br - r) + (bi - i) * delta >= 0.
  // When br > r and bi < i the constraint caps delta at (br-r)/(i-bi).
  Rational Delta(1);
  auto Cap = [&Delta](const DeltaRational &Beta, const DeltaRational &Bound,
                      bool BetaAtLeast) {
    Rational RealDiff = BetaAtLeast ? Beta.real() - Bound.real()
                                    : Bound.real() - Beta.real();
    Rational InfDiff = BetaAtLeast
                           ? Beta.infinitesimal() - Bound.infinitesimal()
                           : Bound.infinitesimal() - Beta.infinitesimal();
    if (InfDiff.isNegative() && RealDiff.isPositive()) {
      Rational Limit = RealDiff / (-InfDiff);
      if (Limit < Delta)
        Delta = Limit;
    }
  };
  for (const VarState &VS : Vars) {
    if (VS.Lower.Present)
      Cap(VS.Beta, VS.Lower.Value, /*BetaAtLeast=*/true);
    if (VS.Upper.Present)
      Cap(VS.Beta, VS.Upper.Value, /*BetaAtLeast=*/false);
  }
  // Halve to stay strictly inside open comparisons.
  return Delta / Rational(2);
}

Rational Simplex::modelValue(int Var) const {
  assert(Var >= 0 && Var < numVars() && "model of unknown variable");
  Rational Delta = concretizeDelta();
  const DeltaRational &Beta = Vars[Var].Beta;
  return Beta.real() + Beta.infinitesimal() * Delta;
}

std::vector<Rational> Simplex::model() const {
  Rational Delta = concretizeDelta();
  std::vector<Rational> Result;
  Result.reserve(Vars.size());
  for (const VarState &VS : Vars)
    Result.push_back(VS.Beta.real() + VS.Beta.infinitesimal() * Delta);
  return Result;
}
