//===- smt/TheoryConj.cpp - Conjunction solver for LRA+EUF ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/TheoryConj.h"

#include "smt/Congruence.h"
#include "smt/Simplex.h"

#include <algorithm>

using namespace pathinv;

namespace {

/// Evaluates an integer term under values for its arithmetic atoms.
Rational evalUnderModel(
    const Term *T,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues) {
  std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
  assert(L && "evaluating a non-linear term");
  Rational Result = L->constant();
  for (const auto &[Atom, Coeff] : L->coefficients()) {
    auto It = AtomValues.find(Atom);
    // Unconstrained atoms default to zero.
    Rational Value = It == AtomValues.end() ? Rational() : It->second;
    Result += Coeff * Value;
  }
  return Result;
}

} // namespace

ConjResult
TheoryConjSolver::solve(const std::vector<const Term *> &Literals) {
  SimplexRuns = 0;
  std::vector<Fact> Facts;
  Facts.reserve(Literals.size());
  for (size_t I = 0; I < Literals.size(); ++I)
    Facts.push_back({Literals[I], static_cast<int>(I)});

  ConjResult Result = solveFacts(std::move(Facts), /*Depth=*/0);
  if (!Result.IsSat) {
    // Fact indices at the top level coincide with literal indices (all
    // split decisions were removed when their branch unions were formed).
    std::vector<int> Core;
    for (int FactIdx : Result.Core) {
      assert(FactIdx >= 0 && FactIdx < static_cast<int>(Literals.size()) &&
             "decision leaked into top-level core");
      Core.push_back(FactIdx);
    }
    std::sort(Core.begin(), Core.end());
    Core.erase(std::unique(Core.begin(), Core.end()), Core.end());
    Result.Core = std::move(Core);
  }
  return Result;
}

ConjResult TheoryConjSolver::solveFacts(std::vector<Fact> Facts, int Depth) {
  assert(Depth < 256 && "runaway theory splitting");

  // Runs one split branch. Appends BranchLit as a decision, recurses, and
  // feeds the outcome to the caller: a SAT result or a decision-free core
  // short-circuits; otherwise the branch's core (minus the decision)
  // accumulates in UnionCore.
  auto runBranch = [&](const Term *BranchLit, std::vector<int> &UnionCore,
                       std::optional<ConjResult> &Final) {
    std::vector<Fact> Child = Facts;
    int DecisionIdx = static_cast<int>(Child.size());
    Child.push_back({BranchLit, -1});
    ConjResult R = solveFacts(std::move(Child), Depth + 1);
    if (R.IsSat) {
      Final = std::move(R);
      return;
    }
    bool UsesDecision =
        std::find(R.Core.begin(), R.Core.end(), DecisionIdx) != R.Core.end();
    if (!UsesDecision) {
      Final = std::move(R); // Core is valid without the split.
      return;
    }
    for (int FactIdx : R.Core)
      if (FactIdx != DecisionIdx)
        UnionCore.push_back(FactIdx);
  };

  // --- Phase 1: syntactic congruence closure -----------------------------
  // Only equalities whose both sides are congruence nodes (variables,
  // constants, reads, applications) are asserted into the closure; mixed
  // arithmetic equalities are the simplex's business, and disequalities
  // over arithmetic are resolved by model-based splitting below.
  auto isCCNode = [](const Term *T) {
    switch (T->kind()) {
    case TermKind::Var:
    case TermKind::IntConst:
    case TermKind::Select:
    case TermKind::Apply:
      return true;
    default:
      return false;
    }
  };
  CongruenceClosure CC;
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->isTrue())
      continue;
    if (Lit->isFalse()) {
      ConjResult R;
      R.Core = {static_cast<int>(I)};
      return R;
    }
    bool Negated = Lit->kind() == TermKind::Not;
    const Term *Atom = Negated ? Lit->operand(0) : Lit;
    assert(Atom->isAtom() && "non-literal input to theory solver");
    const Term *A = Atom->operand(0);
    const Term *B = Atom->operand(1);
    bool Ok = true;
    if (Atom->kind() == TermKind::Eq && isCCNode(A) && isCCNode(B)) {
      assert((A->isInt() || !Negated) &&
             "array disequalities are unsupported");
      Ok = Negated ? CC.assertDisequal(A, B, static_cast<int>(I))
                   : CC.assertEqual(A, B, static_cast<int>(I));
    } else {
      assert((!Negated || Atom->kind() == TermKind::Eq) &&
             "negated inequalities must be normalized away");
      CC.registerTerm(A);
      CC.registerTerm(B);
    }
    if (!Ok) {
      ConjResult R;
      R.Core = CC.conflictTags();
      return R;
    }
  }

  // --- Phase 2: simplex over the arithmetic skeleton ---------------------
  Simplex Splx;
  ++SimplexRuns;
  std::map<const Term *, int, TermIdLess> AtomVar;
  auto varOf = [&](const Term *Atom) {
    auto [It, Inserted] = AtomVar.try_emplace(Atom, -1);
    if (Inserted)
      It->second = Splx.addVar();
    return It->second;
  };
  auto addLinear = [&](const LinearExpr &Expr, SimplexRel Rel, int Tag) {
    std::vector<std::pair<int, Rational>> Coeffs;
    for (const auto &[Atom, Coeff] : Expr.coefficients())
      Coeffs.emplace_back(varOf(Atom), Coeff);
    Splx.addConstraint(Coeffs, Rel, -Expr.constant(), Tag);
  };

  // Tag space: [0, Facts.size()) are facts; above that, derived equalities
  // justified by the fact sets in TagJustification.
  std::vector<std::vector<int>> TagJustification;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    TagJustification.push_back(std::move(Just));
    return static_cast<int>(Facts.size() + TagJustification.size() - 1);
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Out;
    for (int Tag : Tags) {
      if (Tag < static_cast<int>(Facts.size())) {
        Out.push_back(Tag);
        continue;
      }
      const auto &Just = TagJustification[Tag - Facts.size()];
      Out.insert(Out.end(), Just.begin(), Just.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  };

  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->isTrue() || Lit->kind() == TermKind::Not)
      continue; // Disequalities are handled by splitting below.
    if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray())
      continue;
    std::optional<LinearAtom> Atom = decomposeAtom(Lit);
    assert(Atom && "non-linear atom in theory solver");
    if (Atom->Rel == RelKind::Lt) {
      // All atoms are integer-valued (program integers, reads of integer
      // arrays, integer functions), so strict inequalities tighten:
      // e < 0 becomes e + 1 <= 0 after scaling to integral coefficients.
      // This keeps the simplex free of infinitesimals, whose fractional
      // vertex values would otherwise keep branch-and-bound churning.
      LinearExpr Tight = normalizeToIntegral(Atom->Expr);
      Tight.addConstant(Rational(1));
      addLinear(Tight, SimplexRel::Le, static_cast<int>(I));
      continue;
    }
    addLinear(Atom->Expr,
              Atom->Rel == RelKind::Eq ? SimplexRel::Eq : SimplexRel::Le,
              static_cast<int>(I));
  }

  // Equality exchange: CC-merged classes become simplex equalities.
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinear(Diff, SimplexRel::Eq, freshDerivedTag(std::move(Just)));
  }

  if (Splx.check() == Simplex::Result::Unsat) {
    ConjResult R;
    R.Core = expandTags(Splx.unsatCore());
    return R;
  }

  // --- Phase 3: candidate model -------------------------------------------
  std::map<const Term *, Rational, TermIdLess> AtomValues;
  for (const auto &[Atom, Var] : AtomVar)
    AtomValues[Atom] = Splx.modelValue(Var);
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      AtomValues[Node] = Node->value();
      continue;
    }
    AtomValues.try_emplace(Node, Rational());
  }

  // --- Phase 4a: integrality splits (branch and bound) --------------------
  // Program variables, array cells, and function values are integers; the
  // simplex model is rational. A fractional value triggers the classic
  // branch  atom <= floor(v)  \/  atom >= floor(v)+1, which is valid for
  // integers without any supporting input literal. (This is what makes the
  // FORWARD path formula of Section 2.1 infeasible: over the rationals it
  // has a model with n between 0 and 1.)
  for (const auto &[Atom, Value] : AtomValues) {
    if (Value.isInteger())
      continue;
    const Term *FloorC = TM.mkIntConst(Rational(Value.floor()));
    const Term *CeilC = TM.mkIntConst(Rational(Value.ceil()));
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLe(Atom, FloorC), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLe(CeilC, Atom), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 4: disequality splits ----------------------------------------
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->kind() != TermKind::Not)
      continue;
    const Term *Atom = Lit->operand(0);
    const Term *A = Atom->operand(0);
    const Term *B = Atom->operand(1);
    if (!A->isInt())
      continue;
    if (evalUnderModel(A, AtomValues) != evalUnderModel(B, AtomValues))
      continue; // Model already separates the two sides.
    // A != B forces A < B or B < A.
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(A, B), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(B, A), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    UnionCore.push_back(static_cast<int>(I)); // Justifies exhaustiveness.
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 5: functional-consistency splits ------------------------------
  const auto &Nodes = CC.nodes();
  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (size_t J = I + 1; J < Nodes.size(); ++J) {
      const Term *U = Nodes[I];
      const Term *V = Nodes[J];
      if (U->kind() != V->kind())
        continue;
      if (U->kind() != TermKind::Select && U->kind() != TermKind::Apply)
        continue;
      if (U->numOperands() != V->numOperands())
        continue;
      if (U->kind() == TermKind::Apply && U->name() != V->name())
        continue;
      if (U->kind() == TermKind::Select &&
          !CC.areEqual(U->operand(0), V->operand(0)))
        continue; // Reads of (so far) unrelated arrays.
      if (CC.areEqual(U, V))
        continue;
      size_t FirstArg = U->kind() == TermKind::Select ? 1 : 0;
      bool ArgsEqualInModel = true;
      const Term *SplitX = nullptr, *SplitY = nullptr;
      for (size_t K = FirstArg; K < U->numOperands(); ++K) {
        const Term *X = U->operand(K);
        const Term *Y = V->operand(K);
        if (evalUnderModel(X, AtomValues) != evalUnderModel(Y, AtomValues)) {
          ArgsEqualInModel = false;
          break;
        }
        if (!CC.areEqual(X, Y) && !SplitX) {
          SplitX = X;
          SplitY = Y;
        }
      }
      if (!ArgsEqualInModel)
        continue;
      if (evalUnderModel(U, AtomValues) == evalUnderModel(V, AtomValues))
        continue; // Functionally consistent as-is.
      assert(SplitX && "congruence violation without a splittable arg");
      // SplitX < SplitY, SplitY < SplitX, or SplitX = SplitY (exhaustive).
      std::vector<int> UnionCore;
      std::optional<ConjResult> Final;
      runBranch(TM.mkLt(SplitX, SplitY), UnionCore, Final);
      if (Final)
        return std::move(*Final);
      runBranch(TM.mkLt(SplitY, SplitX), UnionCore, Final);
      if (Final)
        return std::move(*Final);
      runBranch(TM.mkEq(SplitX, SplitY), UnionCore, Final);
      if (Final)
        return std::move(*Final);
      ConjResult R;
      R.Core = std::move(UnionCore);
      return R;
    }
  }

  // --- SAT -----------------------------------------------------------------
  ConjResult R;
  R.IsSat = true;
  R.Model = std::move(AtomValues);
  return R;
}
