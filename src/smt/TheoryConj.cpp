//===- smt/TheoryConj.cpp - Conjunction solver for LRA+EUF ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/TheoryConj.h"

#include "smt/Congruence.h"

#include <algorithm>

using namespace pathinv;

namespace {

/// Evaluates an integer term under values for its arithmetic atoms.
Rational evalUnderModel(
    const Term *T,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues) {
  std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
  assert(L && "evaluating a non-linear term");
  Rational Result = L->constant();
  for (const auto &[Atom, Coeff] : L->coefficients()) {
    auto It = AtomValues.find(Atom);
    // Unconstrained atoms default to zero; accumulate in place (this runs
    // once per atom per bound-propagation/model-completion pass).
    if (It != AtomValues.end())
      Result.addMul(Coeff, It->second);
  }
  return Result;
}

using AtomVarMap = std::map<const Term *, int, TermIdLess>;

/// Simplex variable of \p Atom, created on demand. When \p Inserted is
/// non-null, newly created atoms are recorded there so the caller can roll
/// the map back after a tableau scope is popped.
int simplexVarOf(Simplex &Splx, AtomVarMap &AtomVar, const Term *Atom,
                 std::vector<const Term *> *Inserted) {
  auto [It, WasNew] = AtomVar.try_emplace(Atom, -1);
  if (WasNew) {
    It->second = Splx.addVar();
    if (Inserted)
      Inserted->push_back(Atom);
  }
  return It->second;
}

void addLinearConstraint(Simplex &Splx, AtomVarMap &AtomVar,
                         std::vector<const Term *> *Inserted,
                         const LinearExpr &Expr, SimplexRel Rel, int Tag) {
  std::vector<std::pair<int, Rational>> Coeffs;
  for (const auto &[Atom, Coeff] : Expr.coefficients())
    Coeffs.emplace_back(simplexVarOf(Splx, AtomVar, Atom, Inserted), Coeff);
  Splx.addConstraint(Coeffs, Rel, -Expr.constant(), Tag);
}

/// Adds the arithmetic content of one literal to the tableau; no-op for
/// boolean constants, disequalities (handled by splitting), and array
/// equalities (the congruence closure's business).
void addFactArith(Simplex &Splx, AtomVarMap &AtomVar,
                  std::vector<const Term *> *Inserted, const Term *Lit,
                  int Tag) {
  if (Lit->isTrue() || Lit->isFalse() || Lit->kind() == TermKind::Not)
    return;
  if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray())
    return;
  std::optional<LinearAtom> Atom = decomposeAtom(Lit);
  assert(Atom && "non-linear atom in theory solver");
  if (Atom->Rel == RelKind::Lt) {
    // All atoms are integer-valued (program integers, reads of integer
    // arrays, integer functions), so strict inequalities tighten:
    // e < 0 becomes e + 1 <= 0 after scaling to integral coefficients.
    // This keeps the simplex free of infinitesimals, whose fractional
    // vertex values would otherwise keep branch-and-bound churning.
    LinearExpr Tight = normalizeToIntegral(Atom->Expr);
    Tight.addConstant(Rational(1));
    addLinearConstraint(Splx, AtomVar, Inserted, Tight, SimplexRel::Le, Tag);
    return;
  }
  addLinearConstraint(Splx, AtomVar, Inserted, Atom->Expr,
                      Atom->Rel == RelKind::Eq ? SimplexRel::Eq
                                               : SimplexRel::Le,
                      Tag);
}

/// Asserts one literal into the congruence closure (phase 1). Only
/// equalities whose both sides are congruence nodes (variables, constants,
/// reads, applications) are asserted; mixed arithmetic equalities are the
/// simplex's business, and disequalities over arithmetic are resolved by
/// model-based splitting. Returns false on conflict with the conflicting
/// tags in \p ConflictCore.
bool assertIntoClosure(CongruenceClosure &CC, const Term *Lit, int Tag,
                       std::vector<int> &ConflictCore) {
  auto isCCNode = [](const Term *T) {
    switch (T->kind()) {
    case TermKind::Var:
    case TermKind::IntConst:
    case TermKind::Select:
    case TermKind::Apply:
      return true;
    default:
      return false;
    }
  };
  if (Lit->isTrue())
    return true;
  if (Lit->isFalse()) {
    ConflictCore = {Tag};
    return false;
  }
  bool Negated = Lit->kind() == TermKind::Not;
  const Term *Atom = Negated ? Lit->operand(0) : Lit;
  assert(Atom->isAtom() && "non-literal input to theory solver");
  const Term *A = Atom->operand(0);
  const Term *B = Atom->operand(1);
  bool Ok = true;
  if (Atom->kind() == TermKind::Eq && isCCNode(A) && isCCNode(B)) {
    assert((A->isInt() || !Negated) && "array disequalities are unsupported");
    Ok = Negated ? CC.assertDisequal(A, B, Tag) : CC.assertEqual(A, B, Tag);
  } else {
    assert((!Negated || Atom->kind() == TermKind::Eq) &&
           "negated inequalities must be normalized away");
    CC.registerTerm(A);
    CC.registerTerm(B);
  }
  if (!Ok) {
    ConflictCore = CC.conflictTags();
    return false;
  }
  return true;
}

/// An argument pair whose ordering must be decided to restore functional
/// consistency of two reads/applications.
struct FunctionalSplit {
  const Term *X;
  const Term *Y;
};

/// Finds the first pair of reads/applications that violates functional
/// consistency under \p AtomValues: same kind and symbol, argument values
/// equal in the model, result values different, and not already congruent.
std::optional<FunctionalSplit> findFunctionalViolation(
    CongruenceClosure &CC,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues) {
  const auto &Nodes = CC.nodes();
  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (size_t J = I + 1; J < Nodes.size(); ++J) {
      const Term *U = Nodes[I];
      const Term *V = Nodes[J];
      if (U->kind() != V->kind())
        continue;
      if (U->kind() != TermKind::Select && U->kind() != TermKind::Apply)
        continue;
      if (U->numOperands() != V->numOperands())
        continue;
      if (U->kind() == TermKind::Apply && U->name() != V->name())
        continue;
      if (U->kind() == TermKind::Select &&
          !CC.areEqual(U->operand(0), V->operand(0)))
        continue; // Reads of (so far) unrelated arrays.
      if (CC.areEqual(U, V))
        continue;
      size_t FirstArg = U->kind() == TermKind::Select ? 1 : 0;
      bool ArgsEqualInModel = true;
      const Term *SplitX = nullptr, *SplitY = nullptr;
      for (size_t K = FirstArg; K < U->numOperands(); ++K) {
        const Term *X = U->operand(K);
        const Term *Y = V->operand(K);
        if (evalUnderModel(X, AtomValues) != evalUnderModel(Y, AtomValues)) {
          ArgsEqualInModel = false;
          break;
        }
        if (!CC.areEqual(X, Y) && !SplitX) {
          SplitX = X;
          SplitY = Y;
        }
      }
      if (!ArgsEqualInModel)
        continue;
      if (evalUnderModel(U, AtomValues) == evalUnderModel(V, AtomValues))
        continue; // Functionally consistent as-is.
      assert(SplitX && "congruence violation without a splittable arg");
      return FunctionalSplit{SplitX, SplitY};
    }
  }
  return std::nullopt;
}

} // namespace

ConjResult
TheoryConjSolver::solve(const std::vector<const Term *> &Literals) {
  std::vector<Fact> Facts;
  Facts.reserve(Literals.size());
  for (size_t I = 0; I < Literals.size(); ++I)
    Facts.push_back({Literals[I], static_cast<int>(I)});

  ConjResult Result = solveFacts(std::move(Facts), /*Depth=*/0);
  if (!Result.IsSat) {
    // Fact indices at the top level coincide with literal indices (all
    // split decisions were removed when their branch unions were formed).
    std::vector<int> Core;
    for (int FactIdx : Result.Core) {
      assert(FactIdx >= 0 && FactIdx < static_cast<int>(Literals.size()) &&
             "decision leaked into top-level core");
      Core.push_back(FactIdx);
    }
    std::sort(Core.begin(), Core.end());
    Core.erase(std::unique(Core.begin(), Core.end()), Core.end());
    Result.Core = std::move(Core);
  }
  return Result;
}

bool TheoryConjSolver::ensureBaseTableau() {
  // Dead columns accumulate in the shared tableau as query scopes are
  // popped; rebuild once they dominate the live base.
  if (!BaseDirty && BaseSplx.numVars() > 2 * BaseVarCount + 128)
    BaseDirty = true;
  if (BaseDirty) {
    ++BaseRebuilds;
    ++SimplexRuns;
    BaseSplx = Simplex();
    BaseAtomVar.clear();
    for (size_t I = 0; I < BaseLits.size(); ++I)
      addFactArith(BaseSplx, BaseAtomVar, nullptr, BaseLits[I],
                   static_cast<int>(I));
    BaseUnsat = BaseSplx.check() == Simplex::Result::Unsat;
    BaseVarCount = BaseSplx.numVars();
    BaseDirty = false;
  }
  return !BaseUnsat;
}

bool TheoryConjSolver::trySolveScoped(const std::vector<const Term *> &Query,
                                      ConjResult &Out) {
  const int NumBase = static_cast<int>(BaseLits.size());
  const int NumFacts = NumBase + static_cast<int>(Query.size());
  auto factLiteral = [&](int I) {
    return I < NumBase ? BaseLits[I] : Query[I - NumBase];
  };
  auto finishUnsat = [&](std::vector<int> GlobalCore) {
    Out = ConjResult();
    for (int I : GlobalCore) {
      if (I < NumBase)
        Out.BaseInCore = true;
      else
        Out.Core.push_back(I - NumBase);
    }
    std::sort(Out.Core.begin(), Out.Core.end());
    Out.Core.erase(std::unique(Out.Core.begin(), Out.Core.end()),
                   Out.Core.end());
  };

  // Phase 1: congruence closure over base ++ query.
  CongruenceClosure CC;
  for (int I = 0; I < NumFacts; ++I) {
    std::vector<int> Conflict;
    if (!assertIntoClosure(CC, factLiteral(I), I, Conflict)) {
      finishUnsat(std::move(Conflict));
      return true;
    }
  }

  if (!ensureBaseTableau()) {
    Out = ConjResult();
    Out.BaseInCore = true;
    return true;
  }
  ++BaseReuses;

  // Phase 2 (scoped): query constraints plus CC equality exchange, asserted
  // inside a tableau scope on top of the solved base.
  std::vector<std::vector<int>> TagJust;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    TagJust.push_back(std::move(Just));
    return NumFacts + static_cast<int>(TagJust.size()) - 1;
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Expanded;
    for (int Tag : Tags) {
      if (Tag < NumFacts) {
        Expanded.push_back(Tag);
        continue;
      }
      const auto &Just = TagJust[Tag - NumFacts];
      Expanded.insert(Expanded.end(), Just.begin(), Just.end());
    }
    return Expanded;
  };

  std::vector<const Term *> InsertedAtoms;
  BaseSplx.push();
  auto cleanupScope = [&]() {
    BaseSplx.pop();
    for (const Term *Atom : InsertedAtoms)
      BaseAtomVar.erase(Atom);
  };

  ++SimplexRuns;
  for (int I = NumBase; I < NumFacts; ++I)
    addFactArith(BaseSplx, BaseAtomVar, &InsertedAtoms, factLiteral(I), I);
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinearConstraint(BaseSplx, BaseAtomVar, &InsertedAtoms, Diff,
                        SimplexRel::Eq, freshDerivedTag(std::move(Just)));
  }

  if (BaseSplx.check() == Simplex::Result::Unsat) {
    finishUnsat(expandTags(BaseSplx.unsatCore()));
    cleanupScope();
    return true;
  }

  // Phase 3: candidate model (extracted before the scope is popped; a
  // single delta concretization covers all variables).
  std::map<const Term *, Rational, TermIdLess> AtomValues;
  {
    std::vector<Rational> M = BaseSplx.model();
    for (const auto &[Atom, Var] : BaseAtomVar)
      AtomValues[Atom] = M[Var];
  }
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      AtomValues[Node] = Node->value();
      continue;
    }
    AtomValues.try_emplace(Node, Rational());
  }
  cleanupScope();

  // Split detection (phases 4a/4/5 of the full solver): if completing this
  // model needs case analysis, fall back to the from-scratch solver.
  for (const auto &[Atom, Value] : AtomValues) {
    (void)Atom;
    if (!Value.isInteger())
      return false; // Integrality branch needed.
  }
  for (int I = 0; I < NumFacts; ++I) {
    const Term *Lit = factLiteral(I);
    if (Lit->kind() != TermKind::Not)
      continue;
    const Term *Atom = Lit->operand(0);
    const Term *A = Atom->operand(0);
    if (!A->isInt())
      continue;
    if (evalUnderModel(A, AtomValues) ==
        evalUnderModel(Atom->operand(1), AtomValues))
      return false; // Disequality split needed.
  }
  if (findFunctionalViolation(CC, AtomValues))
    return false; // Functional-consistency split needed.

  Out = ConjResult();
  Out.IsSat = true;
  Out.Model = std::move(AtomValues);
  return true;
}

ConjResult
TheoryConjSolver::solveWithBase(const std::vector<const Term *> &Query) {
  ConjResult Fast;
  if (trySolveScoped(Query, Fast))
    return Fast;

  // Theory splits required: solve base ++ query from scratch and remap the
  // core onto query indices.
  std::vector<const Term *> All;
  All.reserve(BaseLits.size() + Query.size());
  All.insert(All.end(), BaseLits.begin(), BaseLits.end());
  All.insert(All.end(), Query.begin(), Query.end());
  ConjResult R = solve(All);
  if (!R.IsSat) {
    std::vector<int> QueryCore;
    for (int I : R.Core) {
      if (I < static_cast<int>(BaseLits.size()))
        R.BaseInCore = true;
      else
        QueryCore.push_back(I - static_cast<int>(BaseLits.size()));
    }
    R.Core = std::move(QueryCore);
  }
  return R;
}

ConjResult TheoryConjSolver::solveFacts(std::vector<Fact> Facts, int Depth) {
  assert(Depth < 256 && "runaway theory splitting");

  // Runs one split branch. Appends BranchLit as a decision, recurses, and
  // feeds the outcome to the caller: a SAT result or a decision-free core
  // short-circuits; otherwise the branch's core (minus the decision)
  // accumulates in UnionCore.
  auto runBranch = [&](const Term *BranchLit, std::vector<int> &UnionCore,
                       std::optional<ConjResult> &Final) {
    std::vector<Fact> Child = Facts;
    int DecisionIdx = static_cast<int>(Child.size());
    Child.push_back({BranchLit, -1});
    ConjResult R = solveFacts(std::move(Child), Depth + 1);
    if (R.IsSat) {
      Final = std::move(R);
      return;
    }
    bool UsesDecision =
        std::find(R.Core.begin(), R.Core.end(), DecisionIdx) != R.Core.end();
    if (!UsesDecision) {
      Final = std::move(R); // Core is valid without the split.
      return;
    }
    for (int FactIdx : R.Core)
      if (FactIdx != DecisionIdx)
        UnionCore.push_back(FactIdx);
  };

  // --- Phase 1: syntactic congruence closure -----------------------------
  CongruenceClosure CC;
  for (size_t I = 0; I < Facts.size(); ++I) {
    std::vector<int> Conflict;
    if (!assertIntoClosure(CC, Facts[I].Literal, static_cast<int>(I),
                           Conflict)) {
      ConjResult R;
      R.Core = std::move(Conflict);
      return R;
    }
  }

  // --- Phase 2: simplex over the arithmetic skeleton ---------------------
  Simplex Splx;
  ++SimplexRuns;
  AtomVarMap AtomVar;

  // Tag space: [0, Facts.size()) are facts; above that, derived equalities
  // justified by the fact sets in TagJustification.
  std::vector<std::vector<int>> TagJustification;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    TagJustification.push_back(std::move(Just));
    return static_cast<int>(Facts.size() + TagJustification.size() - 1);
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Out;
    for (int Tag : Tags) {
      if (Tag < static_cast<int>(Facts.size())) {
        Out.push_back(Tag);
        continue;
      }
      const auto &Just = TagJustification[Tag - Facts.size()];
      Out.insert(Out.end(), Just.begin(), Just.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  };

  for (size_t I = 0; I < Facts.size(); ++I)
    addFactArith(Splx, AtomVar, nullptr, Facts[I].Literal,
                 static_cast<int>(I));

  // Equality exchange: CC-merged classes become simplex equalities.
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinearConstraint(Splx, AtomVar, nullptr, Diff, SimplexRel::Eq,
                        freshDerivedTag(std::move(Just)));
  }

  if (Splx.check() == Simplex::Result::Unsat) {
    ConjResult R;
    R.Core = expandTags(Splx.unsatCore());
    return R;
  }

  // --- Phase 3: candidate model -------------------------------------------
  std::map<const Term *, Rational, TermIdLess> AtomValues;
  {
    std::vector<Rational> M = Splx.model();
    for (const auto &[Atom, Var] : AtomVar)
      AtomValues[Atom] = M[Var];
  }
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      AtomValues[Node] = Node->value();
      continue;
    }
    AtomValues.try_emplace(Node, Rational());
  }

  // --- Phase 4a: integrality splits (branch and bound) --------------------
  // Program variables, array cells, and function values are integers; the
  // simplex model is rational. A fractional value triggers the classic
  // branch  atom <= floor(v)  \/  atom >= floor(v)+1, which is valid for
  // integers without any supporting input literal. (This is what makes the
  // FORWARD path formula of Section 2.1 infeasible: over the rationals it
  // has a model with n between 0 and 1.)
  for (const auto &[Atom, Value] : AtomValues) {
    if (Value.isInteger())
      continue;
    const Term *FloorC = TM.mkIntConst(Rational(Value.floor()));
    const Term *CeilC = TM.mkIntConst(Rational(Value.ceil()));
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLe(Atom, FloorC), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLe(CeilC, Atom), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 4: disequality splits ----------------------------------------
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->kind() != TermKind::Not)
      continue;
    const Term *Atom = Lit->operand(0);
    const Term *A = Atom->operand(0);
    const Term *B = Atom->operand(1);
    if (!A->isInt())
      continue;
    if (evalUnderModel(A, AtomValues) != evalUnderModel(B, AtomValues))
      continue; // Model already separates the two sides.
    // A != B forces A < B or B < A.
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(A, B), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(B, A), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    UnionCore.push_back(static_cast<int>(I)); // Justifies exhaustiveness.
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 5: functional-consistency splits ------------------------------
  if (std::optional<FunctionalSplit> Split =
          findFunctionalViolation(CC, AtomValues)) {
    // X < Y, Y < X, or X = Y (exhaustive).
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(Split->X, Split->Y), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(Split->Y, Split->X), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkEq(Split->X, Split->Y), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- SAT -----------------------------------------------------------------
  ConjResult R;
  R.IsSat = true;
  R.Model = std::move(AtomValues);
  return R;
}
