//===- smt/TheoryConj.cpp - Conjunction solver for LRA+EUF ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/TheoryConj.h"

#include "core/Resource.h"
#include "smt/Congruence.h"

#include <algorithm>
#include <set>

using namespace pathinv;

namespace {

/// Evaluates an integer term under values for its arithmetic atoms.
Rational evalUnderModel(
    const Term *T,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues) {
  std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
  assert(L && "evaluating a non-linear term");
  Rational Result = L->constant();
  for (const auto &[Atom, Coeff] : L->coefficients()) {
    auto It = AtomValues.find(Atom);
    // Unconstrained atoms default to zero; accumulate in place (this runs
    // once per atom per bound-propagation/model-completion pass).
    if (It != AtomValues.end())
      Result.addMul(Coeff, It->second);
  }
  return Result;
}

using AtomVarMap = std::map<const Term *, int, TermIdLess>;

/// Simplex variable of \p Atom, created on demand. When \p Inserted is
/// non-null, newly created atoms are recorded there so the caller can roll
/// the map back after a tableau scope is popped.
int simplexVarOf(Simplex &Splx, AtomVarMap &AtomVar, const Term *Atom,
                 std::vector<const Term *> *Inserted) {
  auto [It, WasNew] = AtomVar.try_emplace(Atom, -1);
  if (WasNew) {
    It->second = Splx.addVar();
    if (Inserted)
      Inserted->push_back(Atom);
  }
  return It->second;
}

void addLinearConstraint(Simplex &Splx, AtomVarMap &AtomVar,
                         std::vector<const Term *> *Inserted,
                         const LinearExpr &Expr, SimplexRel Rel, int Tag) {
  std::vector<std::pair<int, Rational>> Coeffs;
  for (const auto &[Atom, Coeff] : Expr.coefficients())
    Coeffs.emplace_back(simplexVarOf(Splx, AtomVar, Atom, Inserted), Coeff);
  Splx.addConstraint(Coeffs, Rel, -Expr.constant(), Tag);
}

/// Adds the arithmetic content of one literal to the tableau; no-op for
/// boolean constants, disequalities (handled by splitting), and array
/// equalities (the congruence closure's business).
void addFactArith(Simplex &Splx, AtomVarMap &AtomVar,
                  std::vector<const Term *> *Inserted, const Term *Lit,
                  int Tag) {
  if (Lit->isTrue() || Lit->isFalse() || Lit->kind() == TermKind::Not)
    return;
  if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray())
    return;
  std::optional<LinearAtom> Atom = decomposeAtom(Lit);
  assert(Atom && "non-linear atom in theory solver");
  if (Atom->Rel == RelKind::Lt) {
    // All atoms are integer-valued (program integers, reads of integer
    // arrays, integer functions), so strict inequalities tighten:
    // e < 0 becomes e + 1 <= 0 after scaling to integral coefficients.
    // This keeps the simplex free of infinitesimals, whose fractional
    // vertex values would otherwise keep branch-and-bound churning.
    LinearExpr Tight = normalizeToIntegral(Atom->Expr);
    Tight.addConstant(Rational(1));
    addLinearConstraint(Splx, AtomVar, Inserted, Tight, SimplexRel::Le, Tag);
    return;
  }
  addLinearConstraint(Splx, AtomVar, Inserted, Atom->Expr,
                      Atom->Rel == RelKind::Eq ? SimplexRel::Eq
                                               : SimplexRel::Le,
                      Tag);
}

/// Asserts one literal into the congruence closure (phase 1). Only
/// equalities whose both sides are congruence nodes (variables, constants,
/// reads, applications) are asserted; mixed arithmetic equalities are the
/// simplex's business, and disequalities over arithmetic are resolved by
/// model-based splitting. Returns false on conflict with the conflicting
/// tags in \p ConflictCore.
bool assertIntoClosure(CongruenceClosure &CC, const Term *Lit, int Tag,
                       std::vector<int> &ConflictCore) {
  auto isCCNode = [](const Term *T) {
    switch (T->kind()) {
    case TermKind::Var:
    case TermKind::IntConst:
    case TermKind::Select:
    case TermKind::Apply:
      return true;
    default:
      return false;
    }
  };
  if (Lit->isTrue())
    return true;
  if (Lit->isFalse()) {
    ConflictCore = {Tag};
    return false;
  }
  bool Negated = Lit->kind() == TermKind::Not;
  const Term *Atom = Negated ? Lit->operand(0) : Lit;
  assert(Atom->isAtom() && "non-literal input to theory solver");
  const Term *A = Atom->operand(0);
  const Term *B = Atom->operand(1);
  bool Ok = true;
  if (Atom->kind() == TermKind::Eq && isCCNode(A) && isCCNode(B)) {
    assert((A->isInt() || !Negated) && "array disequalities are unsupported");
    Ok = Negated ? CC.assertDisequal(A, B, Tag) : CC.assertEqual(A, B, Tag);
  } else {
    assert((!Negated || Atom->kind() == TermKind::Eq) &&
           "negated inequalities must be normalized away");
    CC.registerTerm(A);
    CC.registerTerm(B);
  }
  if (!Ok) {
    ConflictCore = CC.conflictTags();
    return false;
  }
  return true;
}

/// A functional-consistency violation between two reads/applications
/// \c U and \c V. When an argument pair's equality is neither congruence-
/// known nor already asserted as a fact, \c X / \c Y name the first such
/// pair and the caller branches on its ordering. When every argument
/// equality is established (X == nullptr), the violation is resolved by
/// the derived fact U = V, justified by \c PremiseTags — the fact indices
/// explaining the array equality and each argument equality. The second
/// case is what terminates splitting over *arithmetic* argument terms:
/// the congruence closure only represents vars/constants/reads/
/// applications, so an asserted equality like 1 = 1 + i can never become
/// CC-known and ordering splits alone would re-fire forever.
struct FunctionalSplit {
  const Term *X = nullptr;
  const Term *Y = nullptr;
  const Term *U = nullptr;
  const Term *V = nullptr;
  std::vector<int> PremiseTags;
};

/// Equality literals currently asserted as facts, keyed by their operand
/// pair (both orders), mapped to the fact index.
using AssertedEqMap = std::map<std::pair<const Term *, const Term *>, int>;

/// Finds the first pair of reads/applications that violates functional
/// consistency under \p AtomValues: same kind and symbol, argument values
/// equal in the model, result values different, and not already congruent.
/// \p AssertedEq (optional) lets an asserted-but-not-CC-representable
/// argument equality count as established, with its fact index collected
/// into the premise instead of re-branching on it.
std::optional<FunctionalSplit> findFunctionalViolation(
    CongruenceClosure &CC,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues,
    const AssertedEqMap *AssertedEq = nullptr) {
  auto assertedTag = [&](const Term *X, const Term *Y) -> std::optional<int> {
    if (!AssertedEq)
      return std::nullopt;
    auto It = AssertedEq->find({X, Y});
    if (It == AssertedEq->end())
      return std::nullopt;
    return It->second;
  };
  const auto &Nodes = CC.nodes();
  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (size_t J = I + 1; J < Nodes.size(); ++J) {
      const Term *U = Nodes[I];
      const Term *V = Nodes[J];
      if (U->kind() != V->kind())
        continue;
      if (U->kind() != TermKind::Select && U->kind() != TermKind::Apply)
        continue;
      if (U->numOperands() != V->numOperands())
        continue;
      if (U->kind() == TermKind::Apply && U->name() != V->name())
        continue;
      if (U->kind() == TermKind::Select &&
          !CC.areEqual(U->operand(0), V->operand(0)))
        continue; // Reads of (so far) unrelated arrays.
      if (CC.areEqual(U, V))
        continue;
      size_t FirstArg = U->kind() == TermKind::Select ? 1 : 0;
      bool ArgsEqualInModel = true;
      FunctionalSplit Split;
      Split.U = U;
      Split.V = V;
      for (size_t K = FirstArg; K < U->numOperands(); ++K) {
        const Term *X = U->operand(K);
        const Term *Y = V->operand(K);
        if (evalUnderModel(X, AtomValues) != evalUnderModel(Y, AtomValues)) {
          ArgsEqualInModel = false;
          break;
        }
        if (X == Y)
          continue;
        if (CC.areEqual(X, Y)) {
          std::vector<int> Just = CC.explainEquality(X, Y);
          Split.PremiseTags.insert(Split.PremiseTags.end(), Just.begin(),
                                   Just.end());
          continue;
        }
        if (std::optional<int> Tag = assertedTag(X, Y)) {
          Split.PremiseTags.push_back(*Tag);
          continue;
        }
        if (!Split.X) {
          Split.X = X;
          Split.Y = Y;
        }
      }
      if (!ArgsEqualInModel)
        continue;
      if (evalUnderModel(U, AtomValues) == evalUnderModel(V, AtomValues))
        continue; // Functionally consistent as-is.
      if (U->kind() == TermKind::Select &&
          U->operand(0) != V->operand(0)) {
        std::vector<int> Just =
            CC.explainEquality(U->operand(0), V->operand(0));
        Split.PremiseTags.insert(Split.PremiseTags.end(), Just.begin(),
                                 Just.end());
      }
      assert((Split.X || AssertedEq) &&
             "congruence violation without a splittable arg");
      return Split;
    }
  }
  return std::nullopt;
}

/// One constraint of the integer infeasibility pre-check: Expr = 0 (IsEq)
/// or Expr <= 0, all coefficients integral, with the input fact indices
/// that justify it (substitutions merge justifications).
struct IntLinFact {
  LinearExpr E;
  bool IsEq;
  std::vector<int> Tags;
  bool Dead = false;
};

/// Omega-lite integer infeasibility test over the arithmetic facts.
///
/// Naive branch-and-bound diverges on conjunctions whose rational
/// relaxation is unbounded along a ray carrying no integer point (e.g.
/// a = 3i and a + 4 <= 3n <= a + 5: rationally satisfiable arbitrarily
/// far up the ray, integrally empty because 3(n - i) has to land in
/// [4, 5]). Two classic pieces of integer reasoning refute such systems
/// without search: substituting away unit-coefficient equalities, then
/// GCD-tightening opposing bounds per direction — a direction vector with
/// coefficient gcd g admits only multiples of g, so an integer-empty
/// [lower, upper] interval is a contradiction the simplex cannot see.
///
/// \returns the contradicting input fact indices, or nullopt when no
/// contradiction was found (which is NOT a satisfiability verdict — the
/// caller proceeds to branch). \p FactT exposes .Literal.
template <typename FactT>
std::optional<std::vector<int>>
integerInfeasibleCore(const std::vector<FactT> &Facts) {
  std::vector<IntLinFact> Lin;
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->isTrue() || Lit->isFalse() || Lit->kind() == TermKind::Not)
      continue;
    if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray())
      continue;
    std::optional<LinearAtom> Atom = decomposeAtom(Lit);
    if (!Atom)
      continue;
    IntLinFact F;
    F.E = normalizeToIntegral(Atom->Expr);
    F.IsEq = Atom->Rel == RelKind::Eq;
    if (Atom->Rel == RelKind::Lt)
      F.E.addConstant(Rational(1)); // Integer atoms: e < 0 is e + 1 <= 0.
    F.Tags.push_back(static_cast<int>(I));
    Lin.push_back(std::move(F));
  }

  auto finishCore = [](std::vector<int> Tags) {
    std::sort(Tags.begin(), Tags.end());
    Tags.erase(std::unique(Tags.begin(), Tags.end()), Tags.end());
    return Tags;
  };
  auto varGcd = [](const LinearExpr &E) {
    BigInt G;
    for (const auto &[Atom, C] : E.coefficients())
      G = BigInt::gcd(G, C.numerator());
    return G;
  };

  // Equality phase: GCD-test every equality and eliminate variables that
  // appear with a unit coefficient. Each substitution removes a variable
  // from the whole system and retires one equality, so this terminates.
  bool Substituted = true;
  while (Substituted) {
    Substituted = false;
    for (size_t I = 0; I < Lin.size(); ++I) {
      if (Lin[I].Dead || !Lin[I].IsEq)
        continue;
      const LinearExpr &E = Lin[I].E;
      if (E.isConstant()) {
        if (E.constant() != Rational(0))
          return finishCore(Lin[I].Tags);
        Lin[I].Dead = true;
        continue;
      }
      BigInt G = varGcd(E);
      // g must divide the constant for e = 0 to have an integer solution.
      if (!(E.constant() / Rational(G)).isInteger())
        return finishCore(Lin[I].Tags);
      const Term *Var = nullptr;
      Rational VC;
      for (const auto &[A, C] : E.coefficients())
        if (C == Rational(1) || C == Rational(-1)) {
          Var = A;
          VC = C;
          break;
        }
      if (!Var)
        continue;
      // e = R + VC*Var = 0 solves to Var = -VC*R (VC is +-1).
      LinearExpr Sub = E;
      Sub.addTerm(Var, -VC);
      Sub.scale(-VC);
      for (size_t J = 0; J < Lin.size(); ++J) {
        if (J == I || Lin[J].Dead)
          continue;
        Rational D = Lin[J].E.coefficientOf(Var);
        if (D == Rational(0))
          continue;
        Lin[J].E.addTerm(Var, -D);
        Lin[J].E.add(Sub * D);
        Lin[J].Tags.insert(Lin[J].Tags.end(), Lin[I].Tags.begin(),
                           Lin[I].Tags.end());
      }
      Lin[I].Dead = true; // The equality now just defines Var.
      Substituted = true;
    }
  }

  // Bound phase: per primitive direction v (coefficients divided by their
  // gcd, sign-normalized on the first atom), keep the tightest integer
  // upper and lower bounds; crossing bounds refute the system. The
  // flooring/ceiling after gcd division is what the rational simplex
  // cannot do.
  struct Bounds {
    bool HasLo = false, HasUp = false;
    Rational Lo, Up;
    std::vector<int> LoTags, UpTags;
  };
  std::map<std::vector<std::pair<const Term *, Rational>>, Bounds> Dirs;
  for (const IntLinFact &F : Lin) {
    if (F.Dead)
      continue;
    const LinearExpr &E = F.E;
    if (E.isConstant()) {
      bool Bad = F.IsEq ? E.constant() != Rational(0)
                        : E.constant() > Rational(0);
      if (Bad)
        return finishCore(F.Tags);
      continue;
    }
    BigInt G = varGcd(E);
    Rational RG{G};
    std::vector<std::pair<const Term *, Rational>> Dir;
    for (const auto &[A, C] : E.coefficients())
      Dir.emplace_back(A, C / RG);
    bool Flip = Dir.front().second < Rational(0);
    if (Flip)
      for (auto &[A, C] : Dir)
        C = -C;
    // c0 + g*v REL 0 with v = dir-part (w = -v when flipped):
    //   <= : v <= -c0/g, i.e. w >= c0/g.
    //   =  : v = -c0/g exactly (both bounds).
    Rational V = -E.constant() / RG;
    if (Flip)
      V = -V;
    Bounds &B = Dirs[Dir];
    auto tighten = [&](bool Upper, const Rational &Bound) {
      if (Upper) {
        if (!B.HasUp || Bound < B.Up) {
          B.HasUp = true;
          B.Up = Bound;
          B.UpTags = F.Tags;
        }
      } else if (!B.HasLo || Bound > B.Lo) {
        B.HasLo = true;
        B.Lo = Bound;
        B.LoTags = F.Tags;
      }
    };
    if (F.IsEq) {
      tighten(true, Rational(V.floor()));
      tighten(false, Rational(V.ceil()));
    } else if (!Flip) {
      tighten(true, Rational(V.floor()));
    } else {
      tighten(false, Rational(V.ceil()));
    }
  }
  for (const auto &[Dir, B] : Dirs) {
    if (B.HasLo && B.HasUp && B.Lo > B.Up) {
      std::vector<int> Core = B.LoTags;
      Core.insert(Core.end(), B.UpTags.begin(), B.UpTags.end());
      return finishCore(Core);
    }
  }
  return std::nullopt;
}

} // namespace

ConjResult
TheoryConjSolver::solve(const std::vector<const Term *> &Literals) {
  std::vector<Fact> Facts;
  Facts.reserve(Literals.size());
  for (size_t I = 0; I < Literals.size(); ++I)
    Facts.push_back({Literals[I], static_cast<int>(I)});

  ConjResult Result = solveFacts(std::move(Facts), /*Depth=*/0);
  if (!Result.IsSat) {
    // Fact indices at the top level coincide with literal indices (all
    // split decisions were removed when their branch unions were formed).
    std::vector<int> Core;
    for (int FactIdx : Result.Core) {
      assert(FactIdx >= 0 && FactIdx < static_cast<int>(Literals.size()) &&
             "decision leaked into top-level core");
      Core.push_back(FactIdx);
    }
    std::sort(Core.begin(), Core.end());
    Core.erase(std::unique(Core.begin(), Core.end()), Core.end());
    Result.Core = std::move(Core);
  }
  return Result;
}

bool TheoryConjSolver::ensureBaseTableau() {
  // Dead columns accumulate in the shared tableau as query scopes are
  // popped; rebuild once they dominate the live base.
  if (!BaseDirty && BaseSplx.numVars() > 2 * BaseVarCount + 128)
    BaseDirty = true;
  if (BaseDirty) {
    ++BaseRebuilds;
    ++SimplexRuns;
    BaseSplx = Simplex();
    BaseAtomVar.clear();
    // The rebuild drops every installed cut row with the tableau; each is
    // re-installed (premises permitting) by the next installCutRows().
    for (CutRow &C : CutRows)
      C.Installed = false;
    for (size_t I = 0; I < BaseLits.size(); ++I)
      addFactArith(BaseSplx, BaseAtomVar, nullptr, BaseLits[I],
                   static_cast<int>(I));
    Simplex::Result BaseResult = BaseSplx.check();
    BaseUnsat = BaseResult == Simplex::Result::Unsat;
    BaseVarCount = BaseSplx.numVars();
    // An interrupted base check proved nothing; keep the dirty bit so the
    // next (uninterrupted) call re-establishes the base verdict.
    BaseDirty = BaseResult == Simplex::Result::Interrupted;
  }
  return !BaseUnsat;
}

void TheoryConjSolver::installCutRows() {
  bool AnyPending = false;
  for (const CutRow &C : CutRows)
    AnyPending |= !C.Installed;
  if (!AnyPending)
    return;
  std::set<const Term *, TermIdLess> Asserted(BaseLits.begin(),
                                              BaseLits.end());
  for (CutRow &C : CutRows) {
    if (C.Installed)
      continue;
    bool Entailed = true;
    for (const Term *P : C.Premises)
      Entailed &= Asserted.count(P) != 0;
    if (!Entailed)
      continue; // Premises retracted; the row waits for a matching base.
    // Root-scope row: survives every query scope until the next rebuild.
    // Base ∧ premises |= Bound, so the row never changes satisfiability —
    // it only lets refuted branches conflict without their own scope.
    addFactArith(BaseSplx, BaseAtomVar, nullptr, C.Bound, CutTag);
    C.Installed = true;
    ++CutRowsInstalled;
  }
}

void TheoryConjSolver::distillCuts(std::vector<BranchLemma> &BaseOnly) {
  for (BranchLemma &L : BaseOnly) {
    if (CutRows.size() >= MaxCutRows)
      return;
    auto It = CutSurfaceCount.find(L.Bound);
    if (It == CutSurfaceCount.end()) {
      if (CutSurfaceCount.size() < MaxCutCandidates)
        CutSurfaceCount.emplace(L.Bound, 1);
      continue;
    }
    if (++It->second < 2)
      continue;
    bool Known = false;
    for (const CutRow &C : CutRows)
      Known |= C.Bound == L.Bound;
    if (Known)
      continue;
    CutRows.push_back({std::move(L.Premises), L.Bound, /*Installed=*/false});
  }
}

namespace {

using ModelMap = std::map<const Term *, Rational, TermIdLess>;

/// Rebuilds the candidate model from the tableau and the congruence
/// closure's node set (integer constants take their value, everything
/// else defaults to zero). Runs once per branch-and-bound node.
void extractModel(const Simplex &Splx, const AtomVarMap &AtomVar,
                  CongruenceClosure &CC, ModelMap &Out) {
  Out.clear();
  std::vector<Rational> M = Splx.model();
  for (const auto &[Atom, Var] : AtomVar)
    Out[Atom] = M[Var];
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      Out[Node] = Node->value();
      continue;
    }
    Out.try_emplace(Node, Rational());
  }
}

/// One side of a branch: assert `Expr <= 0`; when the side is refuted by
/// input facts alone, \c Complement is the integer bound those facts
/// entail (the lemma head).
struct BranchSide {
  LinearExpr Expr;
  const Term *Complement;
};

/// A two-way case split chosen from the candidate model. Sides are tried
/// in order; \c ExhaustTag justifies exhaustiveness (the disequality fact
/// for disequality splits, absent for integrality splits, which are valid
/// for integer-valued atoms unconditionally).
struct BranchPlan {
  BranchSide Sides[2];
  std::optional<int> ExhaustTag;
};

/// The scoped branch-and-bound search over the shared tableau. Every
/// branch node is one Simplex scope holding one bound; check() repairs
/// the assignment in place and pop() backtracks, so the base and query
/// constraints are never re-asserted.
struct BnbSearch {
  /// Interrupted: the ResourceController tripped; unwind popping every
  /// scope on the way out (like Exhausted) but do NOT fall back to the
  /// scratch solver — the whole query must give up.
  enum class Status : uint8_t { Sat, Unsat, Exhausted, Interrupted };

  TermManager &TM;
  Simplex &Splx;
  AtomVarMap &AtomVar;
  std::vector<const Term *> *InsertedAtoms;
  CongruenceClosure &CC;
  const std::vector<const Term *> &FactLits;

  // Tag bookkeeping shared with the caller: tags >= FactLits.size() index
  // DerivedJust; branch decisions are marked in IsBranchTag.
  std::vector<std::vector<int>> &DerivedJust;
  std::vector<bool> &IsBranchTag;

  uint32_t NodesLeft;
  uint32_t MaxDepth;
  uint64_t &NodesCounter;
  uint64_t &RepairPivots;
  std::vector<BranchLemma> &Lemmas;
  uint64_t &LemmasProduced;
  static constexpr size_t MaxPendingLemmas = 64;
  static constexpr size_t MaxLemmaPremises = 12;

  /// Facts below this index are retained base literals. Lemmas resting on
  /// them alone are cut-row candidates (collected separately so the
  /// owning solver can distill repeat offenders into permanent rows).
  int NumBaseFacts = 0;
  std::vector<BranchLemma> *BaseOnlyLemmas = nullptr;

  int numFacts() const { return static_cast<int>(FactLits.size()); }

  int freshBranchTag() {
    DerivedJust.emplace_back();
    IsBranchTag.push_back(true);
    return numFacts() + static_cast<int>(DerivedJust.size()) - 1;
  }

  bool isBranchTag(int Tag) const {
    return Tag >= numFacts() && IsBranchTag[Tag - numFacts()];
  }

  /// Expands derived (non-branch) tags to the fact indices justifying
  /// them. Branch tags must have been stripped by the caller.
  std::vector<int> expandToFacts(const std::vector<int> &Tags) const {
    std::vector<int> Out;
    for (int Tag : Tags) {
      if (Tag < numFacts()) {
        Out.push_back(Tag);
        continue;
      }
      assert(!IsBranchTag[Tag - numFacts()] &&
             "branch decision leaked into an expanded core");
      const auto &Just = DerivedJust[Tag - numFacts()];
      Out.insert(Out.end(), Just.begin(), Just.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }

  /// Picks the next case split under \p Values, or nothing when the model
  /// is integral and separates every disequality. Integrality first, by
  /// best-first fractionality (fractional part closest to 1/2), with the
  /// side nearer the relaxation value ordered first.
  std::optional<BranchPlan> chooseSplit(const ModelMap &Values) const {
    const Term *FracAtom = nullptr;
    Rational FracVal;
    Rational BestScore;
    for (const auto &[Atom, Value] : Values) {
      if (Value.isInteger())
        continue;
      Rational Frac = Value - Rational(Value.floor());
      Rational Score = Frac <= Rational(BigInt(1), BigInt(2))
                           ? Frac
                           : Rational(1) - Frac;
      if (!FracAtom || Score > BestScore) {
        FracAtom = Atom;
        FracVal = Value;
        BestScore = Score;
      }
    }
    if (FracAtom) {
      const Term *FloorC = TM.mkIntConst(Rational(FracVal.floor()));
      const Term *CeilC = TM.mkIntConst(Rational(FracVal.ceil()));
      // Low side: Atom - floor <= 0. High side: ceil - Atom <= 0.
      BranchSide Low{LinearExpr::atom(FracAtom), TM.mkLe(CeilC, FracAtom)};
      Low.Expr.addConstant(-Rational(FracVal.floor()));
      BranchSide High{-LinearExpr::atom(FracAtom), TM.mkLe(FracAtom, FloorC)};
      High.Expr.addConstant(Rational(FracVal.ceil()));
      BranchPlan Plan;
      bool LowFirst =
          FracVal - Rational(FracVal.floor()) <= Rational(BigInt(1), BigInt(2));
      Plan.Sides[0] = LowFirst ? Low : High;
      Plan.Sides[1] = LowFirst ? High : Low;
      return Plan;
    }

    // Disequality phase. A violated `A != B` forces `A <= B - 1` or
    // `A >= B + 1` over the integers (the same tightening addFactArith
    // applies to strict inequalities); the branch constraint is the
    // *slack expression* A - B -+ 1, not a single-atom bound, so one
    // decision moves every atom the difference mentions. Path formulas
    // deliver disequalities in chains over shared atoms (x0 != x1,
    // x1 != x2, ...): branch on the candidate whose slack expression
    // overlaps the most other unseparated candidates — the repair that
    // separates it drags the shared atoms along, often separating the
    // neighbours in the same pivot, and the complement bounds it surfaces
    // as lemma heads speak for the whole chain.
    struct DiseqCand {
      int FactIdx;
      const Term *A, *B;
      LinearExpr Diff;
    };
    std::vector<DiseqCand> Cands;
    for (int I = 0; I < numFacts(); ++I) {
      const Term *Lit = FactLits[I];
      if (Lit->kind() != TermKind::Not)
        continue;
      const Term *Atom = Lit->operand(0);
      const Term *A = Atom->operand(0);
      const Term *B = Atom->operand(1);
      if (!A->isInt())
        continue;
      if (evalUnderModel(A, Values) != evalUnderModel(B, Values))
        continue; // Model already separates the two sides.
      Cands.push_back(
          {I, A, B, *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B)});
    }
    if (Cands.empty())
      return std::nullopt;
    size_t Best = 0;
    if (Cands.size() > 1) {
      int BestScore = -1;
      for (size_t I = 0; I < Cands.size(); ++I) {
        int Score = 0;
        for (size_t J = 0; J < Cands.size(); ++J) {
          if (I == J)
            continue;
          bool Shares = false;
          for (const auto &[AtomI, Coeff] : Cands[I].Diff.coefficients()) {
            (void)Coeff;
            if (Cands[J].Diff.coefficients().count(AtomI)) {
              Shares = true;
              break;
            }
          }
          Score += Shares ? 1 : 0;
        }
        // Ties keep the earliest fact index: deterministic, and matches
        // the pre-scoring order on chain-free queries.
        if (Score > BestScore) {
          BestScore = Score;
          Best = I;
        }
      }
    }
    const DiseqCand &D = Cands[Best];
    BranchPlan Plan;
    Plan.Sides[0].Expr = normalizeToIntegral(D.Diff);
    Plan.Sides[0].Expr.addConstant(Rational(1));
    Plan.Sides[0].Complement = TM.mkLe(D.B, D.A);
    Plan.Sides[1].Expr = normalizeToIntegral(-D.Diff);
    Plan.Sides[1].Expr.addConstant(Rational(1));
    Plan.Sides[1].Complement = TM.mkLe(D.A, D.B);
    Plan.ExhaustTag = D.FactIdx;
    return Plan;
  }

  /// Surfaces `premises -> Complement` when a refuted side's core rests on
  /// input facts alone (no ancestor branch decision participates).
  void maybeSurfaceLemma(const BranchSide &Side,
                         const std::vector<int> &CoreSansTag) {
    if (Lemmas.size() >= MaxPendingLemmas)
      return;
    for (int Tag : CoreSansTag)
      if (isBranchTag(Tag))
        return; // Conditional on an ancestor decision; not a fact lemma.
    std::vector<int> Facts = expandToFacts(CoreSansTag);
    if (Facts.size() > MaxLemmaPremises)
      return;
    bool BaseOnly = true;
    for (int I : Facts) {
      // A cut row (negative tag) is base-entailed but carries no premise
      // set of its own: a lemma justified through one would be recorded
      // with too-weak premises — an unsound clause. Never surface those.
      if (I < 0)
        return;
      BaseOnly &= I < NumBaseFacts;
    }
    BranchLemma L;
    L.Bound = Side.Complement;
    L.Premises.reserve(Facts.size());
    for (int I : Facts)
      L.Premises.push_back(FactLits[I]);
    if (BaseOnly && BaseOnlyLemmas &&
        BaseOnlyLemmas->size() < MaxPendingLemmas)
      BaseOnlyLemmas->push_back(L);
    Lemmas.push_back(std::move(L));
    ++LemmasProduced;
  }

  /// One search node. Entered with the tableau feasible under all
  /// enclosing scopes; on Sat fills \p ModelOut, on Unsat fills
  /// \p CoreOut with raw tags (ancestor branch tags may remain — each is
  /// stripped at its own node's join).
  Status search(int Depth, ModelMap &ModelOut, std::vector<int> &CoreOut) {
    ModelMap Values;
    extractModel(Splx, AtomVar, CC, Values);
    std::optional<BranchPlan> Plan = chooseSplit(Values);
    if (!Plan) {
      if (findFunctionalViolation(CC, Values))
        return Status::Exhausted; // Needs a congruence split; use scratch.
      ModelOut = std::move(Values);
      return Status::Sat;
    }

    std::vector<int> Union;
    for (const BranchSide &Side : Plan->Sides) {
      if (NodesLeft == 0 || Depth >= static_cast<int>(MaxDepth))
        return Status::Exhausted;
      if (!resourceCharge(ResourceKind::BnbNodes))
        return Status::Interrupted;
      --NodesLeft;
      ++NodesCounter;
      int Tag = freshBranchTag();
      Splx.push();
      addLinearConstraint(Splx, AtomVar, InsertedAtoms, Side.Expr,
                          SimplexRel::Le, Tag);
      uint64_t PivotsBefore = Splx.numPivots();
      Simplex::Result SideResult = Splx.check();
      RepairPivots += Splx.numPivots() - PivotsBefore;
      if (SideResult == Simplex::Result::Interrupted) {
        Splx.pop();
        return Status::Interrupted;
      }
      bool SideFeasible = SideResult == Simplex::Result::Sat;
      std::vector<int> Core;
      if (SideFeasible) {
        Status R = search(Depth + 1, ModelOut, Core);
        if (R != Status::Unsat) {
          Splx.pop();
          return R; // Sat (model extracted) or Exhausted.
        }
      } else {
        Core = Splx.unsatCore();
      }
      Splx.pop();
      auto It = std::find(Core.begin(), Core.end(), Tag);
      if (It == Core.end()) {
        // The refutation does not use this branch's decision: it is a
        // valid core for the node as a whole, so the sibling need not run.
        CoreOut = std::move(Core);
        return Status::Unsat;
      }
      Core.erase(It);
      maybeSurfaceLemma(Side, Core);
      Union.insert(Union.end(), Core.begin(), Core.end());
    }
    if (Plan->ExhaustTag)
      Union.push_back(*Plan->ExhaustTag);
    std::sort(Union.begin(), Union.end());
    Union.erase(std::unique(Union.begin(), Union.end()), Union.end());
    CoreOut = std::move(Union);
    return Status::Unsat;
  }
};

} // namespace

bool TheoryConjSolver::trySolveScoped(const std::vector<const Term *> &Query,
                                      ConjResult &Out) {
  const int NumBase = static_cast<int>(BaseLits.size());
  const int NumFacts = NumBase + static_cast<int>(Query.size());
  auto factLiteral = [&](int I) {
    return I < NumBase ? BaseLits[I] : Query[I - NumBase];
  };
  auto finishUnsat = [&](std::vector<int> GlobalCore) {
    Out = ConjResult();
    for (int I : GlobalCore) {
      if (I < NumBase)
        Out.BaseInCore = true;
      else
        Out.Core.push_back(I - NumBase);
    }
    std::sort(Out.Core.begin(), Out.Core.end());
    Out.Core.erase(std::unique(Out.Core.begin(), Out.Core.end()),
                   Out.Core.end());
  };

  // Phase 1: congruence closure over base ++ query.
  CongruenceClosure CC;
  for (int I = 0; I < NumFacts; ++I) {
    std::vector<int> Conflict;
    if (!assertIntoClosure(CC, factLiteral(I), I, Conflict)) {
      finishUnsat(std::move(Conflict));
      return true;
    }
  }

  if (!ensureBaseTableau()) {
    Out = ConjResult();
    Out.BaseInCore = true;
    return true;
  }
  ++BaseReuses;
  // With the base solved and no query scope open yet, land any distilled
  // cut rows whose premises are currently asserted.
  installCutRows();

  // Phase 2 (scoped): query constraints plus CC equality exchange, asserted
  // inside a tableau scope on top of the solved base. Tags >= NumFacts are
  // derived: CC equalities carry the fact indices justifying them, branch
  // decisions (added by the search below) are marked and stripped at
  // their own node's join.
  std::vector<std::vector<int>> DerivedJust;
  std::vector<bool> IsBranchTag;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    DerivedJust.push_back(std::move(Just));
    IsBranchTag.push_back(false);
    return NumFacts + static_cast<int>(DerivedJust.size()) - 1;
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Expanded;
    for (int Tag : Tags) {
      if (Tag < NumFacts) {
        Expanded.push_back(Tag);
        continue;
      }
      assert(!IsBranchTag[Tag - NumFacts] &&
             "branch decision leaked into a final core");
      const auto &Just = DerivedJust[Tag - NumFacts];
      Expanded.insert(Expanded.end(), Just.begin(), Just.end());
    }
    return Expanded;
  };

  std::vector<const Term *> InsertedAtoms;
  BaseSplx.push();
  auto cleanupScope = [&]() {
    BaseSplx.pop();
    for (const Term *Atom : InsertedAtoms)
      BaseAtomVar.erase(Atom);
  };

  ++SimplexRuns;
  for (int I = NumBase; I < NumFacts; ++I)
    addFactArith(BaseSplx, BaseAtomVar, &InsertedAtoms, factLiteral(I), I);
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinearConstraint(BaseSplx, BaseAtomVar, &InsertedAtoms, Diff,
                        SimplexRel::Eq, freshDerivedTag(std::move(Just)));
  }

  Simplex::Result ScopeResult = BaseSplx.check();
  if (ScopeResult == Simplex::Result::Interrupted) {
    cleanupScope();
    Out = ConjResult();
    Out.Interrupted = true;
    return true; // Done (no verdict); never fall back to scratch.
  }
  if (ScopeResult == Simplex::Result::Unsat) {
    finishUnsat(expandTags(BaseSplx.unsatCore()));
    cleanupScope();
    return true;
  }

  // Phases 3/4 (scoped): complete the rational relaxation to an integral,
  // disequality-separating model by branch-and-bound over the same
  // tableau. All facts live (base ++ query ++ CC equalities), so literals
  // are never re-asserted; each branch is one nested bound scope.
  std::vector<const Term *> FactLits;
  FactLits.reserve(NumFacts);
  for (int I = 0; I < NumFacts; ++I)
    FactLits.push_back(factLiteral(I));

  BnbSearch Search{TM,
                   BaseSplx,
                   BaseAtomVar,
                   &InsertedAtoms,
                   CC,
                   FactLits,
                   DerivedJust,
                   IsBranchTag,
                   BnbNodeBudget,
                   BnbDepthBudget,
                   BnbNodes,
                   BnbRepairPivots,
                   PendingLemmas,
                   BranchLemmasProduced};
  std::vector<BranchLemma> BaseOnlyLemmas;
  Search.NumBaseFacts = NumBase;
  Search.BaseOnlyLemmas = &BaseOnlyLemmas;
  ModelMap AtomValues;
  std::vector<int> Core;
  BnbSearch::Status R = Search.search(/*Depth=*/0, AtomValues, Core);
  // Whatever the outcome, base-only refutations the search surfaced are
  // candidates for permanent cut rows on future queries of this base.
  distillCuts(BaseOnlyLemmas);
  if (R == BnbSearch::Status::Interrupted) {
    cleanupScope();
    Out = ConjResult();
    Out.Interrupted = true;
    return true; // Resources exhausted: no scratch retry.
  }
  if (R == BnbSearch::Status::Exhausted) {
    cleanupScope();
    return false; // Budget spent or congruence split needed: use scratch.
  }
  if (R == BnbSearch::Status::Unsat) {
    finishUnsat(expandTags(Core));
    cleanupScope();
    return true;
  }
  cleanupScope();

  Out = ConjResult();
  Out.IsSat = true;
  Out.Model = std::move(AtomValues);
  return true;
}

ConjResult
TheoryConjSolver::solveWithBase(const std::vector<const Term *> &Query) {
  ConjResult Fast;
  if (trySolveScoped(Query, Fast))
    return Fast;
  ++ScratchFallbacks;

  // The scoped search could not finish (branch budget exhausted, or a
  // functional-consistency split would require re-running congruence
  // closure): solve base ++ query from scratch and remap the core onto
  // query indices.
  std::vector<const Term *> All;
  All.reserve(BaseLits.size() + Query.size());
  All.insert(All.end(), BaseLits.begin(), BaseLits.end());
  All.insert(All.end(), Query.begin(), Query.end());
  ConjResult R = solve(All);
  if (!R.IsSat) {
    std::vector<int> QueryCore;
    for (int I : R.Core) {
      if (I < static_cast<int>(BaseLits.size()))
        R.BaseInCore = true;
      else
        QueryCore.push_back(I - static_cast<int>(BaseLits.size()));
    }
    R.Core = std::move(QueryCore);
  }
  return R;
}

ConjResult TheoryConjSolver::solveFacts(std::vector<Fact> Facts, int Depth) {
  // A pathological split stack (branch-and-bound over a wide integer range
  // whose bound tightening never converges, found by the fuzz oracle)
  // degrades to an interrupted result instead of recursing without bound.
  // Upstream maps Interrupted to Unknown — never to a verdict — so depth
  // exhaustion behaves exactly like a tripped resource budget.
  constexpr int MaxSplitDepth = 256;
  if (Depth >= MaxSplitDepth) {
    ConjResult R;
    R.Interrupted = true;
    return R;
  }

  // Runs one split branch. Appends BranchLit as a decision, recurses, and
  // feeds the outcome to the caller: a SAT result or a decision-free core
  // short-circuits; otherwise the branch's core (minus the decision)
  // accumulates in UnionCore.
  auto runBranch = [&](const Term *BranchLit, std::vector<int> &UnionCore,
                       std::optional<ConjResult> &Final) {
    if (!resourceCharge(ResourceKind::BnbNodes)) {
      ConjResult R;
      R.Interrupted = true;
      Final = std::move(R);
      return;
    }
    std::vector<Fact> Child = Facts;
    int DecisionIdx = static_cast<int>(Child.size());
    Child.push_back({BranchLit, -1});
    ConjResult R = solveFacts(std::move(Child), Depth + 1);
    if (R.IsSat || R.Interrupted) {
      Final = std::move(R);
      return;
    }
    bool UsesDecision =
        std::find(R.Core.begin(), R.Core.end(), DecisionIdx) != R.Core.end();
    if (!UsesDecision) {
      Final = std::move(R); // Core is valid without the split.
      return;
    }
    for (int FactIdx : R.Core)
      if (FactIdx != DecisionIdx)
        UnionCore.push_back(FactIdx);
  };

  // --- Phase 1: syntactic congruence closure -----------------------------
  CongruenceClosure CC;
  for (size_t I = 0; I < Facts.size(); ++I) {
    std::vector<int> Conflict;
    if (!assertIntoClosure(CC, Facts[I].Literal, static_cast<int>(I),
                           Conflict)) {
      ConjResult R;
      R.Core = std::move(Conflict);
      return R;
    }
  }

  // --- Phase 2: simplex over the arithmetic skeleton ---------------------
  Simplex Splx;
  ++SimplexRuns;
  AtomVarMap AtomVar;

  // Tag space: [0, Facts.size()) are facts; above that, derived equalities
  // justified by the fact sets in TagJustification.
  std::vector<std::vector<int>> TagJustification;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    TagJustification.push_back(std::move(Just));
    return static_cast<int>(Facts.size() + TagJustification.size() - 1);
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Out;
    for (int Tag : Tags) {
      if (Tag < static_cast<int>(Facts.size())) {
        Out.push_back(Tag);
        continue;
      }
      const auto &Just = TagJustification[Tag - Facts.size()];
      Out.insert(Out.end(), Just.begin(), Just.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  };

  for (size_t I = 0; I < Facts.size(); ++I)
    addFactArith(Splx, AtomVar, nullptr, Facts[I].Literal,
                 static_cast<int>(I));

  // Equality exchange: CC-merged classes become simplex equalities.
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinearConstraint(Splx, AtomVar, nullptr, Diff, SimplexRel::Eq,
                        freshDerivedTag(std::move(Just)));
  }

  Simplex::Result SplxResult = Splx.check();
  if (SplxResult == Simplex::Result::Interrupted) {
    ConjResult R;
    R.Interrupted = true;
    return R;
  }
  if (SplxResult == Simplex::Result::Unsat) {
    ConjResult R;
    R.Core = expandTags(Splx.unsatCore());
    return R;
  }

  // --- Phase 3: candidate model -------------------------------------------
  std::map<const Term *, Rational, TermIdLess> AtomValues;
  {
    std::vector<Rational> M = Splx.model();
    for (const auto &[Atom, Var] : AtomVar)
      AtomValues[Atom] = M[Var];
  }
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      AtomValues[Node] = Node->value();
      continue;
    }
    AtomValues.try_emplace(Node, Rational());
  }

  // --- Phase 3.5: integer infeasibility pre-check -------------------------
  // Before committing to a branch-and-bound descent, try to refute the
  // conjunction with substitution + GCD reasoning: branching alone
  // diverges on integer-empty unbounded rays (the PDR backend's frame
  // queries reach such systems; plain path formulas happen not to). Only
  // worth running when a fractional value would trigger a branch.
  bool AnyFractional = false;
  for (const auto &[Atom, Value] : AtomValues)
    if (!Value.isInteger()) {
      AnyFractional = true;
      break;
    }
  if (AnyFractional)
    if (std::optional<std::vector<int>> Core = integerInfeasibleCore(Facts)) {
      ConjResult R;
      R.Core = std::move(*Core);
      return R;
    }

  // --- Phase 4a: integrality splits (branch and bound) --------------------
  // Program variables, array cells, and function values are integers; the
  // simplex model is rational. A fractional value triggers the classic
  // branch  atom <= floor(v)  \/  atom >= floor(v)+1, which is valid for
  // integers without any supporting input literal. (This is what makes the
  // FORWARD path formula of Section 2.1 infeasible: over the rationals it
  // has a model with n between 0 and 1.)
  for (const auto &[Atom, Value] : AtomValues) {
    if (Value.isInteger())
      continue;
    const Term *FloorC = TM.mkIntConst(Rational(Value.floor()));
    const Term *CeilC = TM.mkIntConst(Rational(Value.ceil()));
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLe(Atom, FloorC), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLe(CeilC, Atom), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 4: disequality splits ----------------------------------------
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->kind() != TermKind::Not)
      continue;
    const Term *Atom = Lit->operand(0);
    const Term *A = Atom->operand(0);
    const Term *B = Atom->operand(1);
    if (!A->isInt())
      continue;
    if (evalUnderModel(A, AtomValues) != evalUnderModel(B, AtomValues))
      continue; // Model already separates the two sides.
    // A != B forces A < B or B < A.
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(A, B), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(B, A), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    UnionCore.push_back(static_cast<int>(I)); // Justifies exhaustiveness.
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 5: functional-consistency splits ------------------------------
  AssertedEqMap AssertedEq;
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *L = Facts[I].Literal;
    if (L->kind() != TermKind::Eq)
      continue;
    AssertedEq.insert({{L->operand(0), L->operand(1)}, static_cast<int>(I)});
    AssertedEq.insert({{L->operand(1), L->operand(0)}, static_cast<int>(I)});
  }
  if (std::optional<FunctionalSplit> Split =
          findFunctionalViolation(CC, AtomValues, &AssertedEq)) {
    if (!Split->X) {
      // Every argument equality is already established (congruence-known
      // or asserted as a fact), yet the results still disagree: the
      // violation cannot be resolved by further ordering splits — the
      // closure cannot absorb equalities over arithmetic argument terms.
      // Close it with the implied result equality U = V, which *is*
      // representable (both sides are reads/applications). In an UNSAT
      // core the lemma's index is replaced by its premise tags: the
      // premises imply the lemma, so the substitution over-approximates
      // the core, which is the sound direction.
      if (!resourceCharge(ResourceKind::BnbNodes)) {
        ConjResult R;
        R.Interrupted = true;
        return R;
      }
      std::vector<Fact> Child = Facts;
      int LemmaIdx = static_cast<int>(Child.size());
      Child.push_back({TM.mkEq(Split->U, Split->V), -1});
      ConjResult R = solveFacts(std::move(Child), Depth + 1);
      if (!R.IsSat && !R.Interrupted) {
        auto It = std::find(R.Core.begin(), R.Core.end(), LemmaIdx);
        if (It != R.Core.end()) {
          R.Core.erase(It);
          R.Core.insert(R.Core.end(), Split->PremiseTags.begin(),
                        Split->PremiseTags.end());
          std::sort(R.Core.begin(), R.Core.end());
          R.Core.erase(std::unique(R.Core.begin(), R.Core.end()),
                       R.Core.end());
        }
      }
      return R;
    }
    // X < Y, Y < X, or X = Y (exhaustive).
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(Split->X, Split->Y), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(Split->Y, Split->X), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkEq(Split->X, Split->Y), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- SAT -----------------------------------------------------------------
  ConjResult R;
  R.IsSat = true;
  R.Model = std::move(AtomValues);
  return R;
}
