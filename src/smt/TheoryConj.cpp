//===- smt/TheoryConj.cpp - Conjunction solver for LRA+EUF ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/TheoryConj.h"

#include "core/Resource.h"
#include "smt/Congruence.h"

#include <algorithm>

using namespace pathinv;

namespace {

/// Evaluates an integer term under values for its arithmetic atoms.
Rational evalUnderModel(
    const Term *T,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues) {
  std::optional<LinearExpr> L = LinearExpr::fromTerm(T);
  assert(L && "evaluating a non-linear term");
  Rational Result = L->constant();
  for (const auto &[Atom, Coeff] : L->coefficients()) {
    auto It = AtomValues.find(Atom);
    // Unconstrained atoms default to zero; accumulate in place (this runs
    // once per atom per bound-propagation/model-completion pass).
    if (It != AtomValues.end())
      Result.addMul(Coeff, It->second);
  }
  return Result;
}

using AtomVarMap = std::map<const Term *, int, TermIdLess>;

/// Simplex variable of \p Atom, created on demand. When \p Inserted is
/// non-null, newly created atoms are recorded there so the caller can roll
/// the map back after a tableau scope is popped.
int simplexVarOf(Simplex &Splx, AtomVarMap &AtomVar, const Term *Atom,
                 std::vector<const Term *> *Inserted) {
  auto [It, WasNew] = AtomVar.try_emplace(Atom, -1);
  if (WasNew) {
    It->second = Splx.addVar();
    if (Inserted)
      Inserted->push_back(Atom);
  }
  return It->second;
}

void addLinearConstraint(Simplex &Splx, AtomVarMap &AtomVar,
                         std::vector<const Term *> *Inserted,
                         const LinearExpr &Expr, SimplexRel Rel, int Tag) {
  std::vector<std::pair<int, Rational>> Coeffs;
  for (const auto &[Atom, Coeff] : Expr.coefficients())
    Coeffs.emplace_back(simplexVarOf(Splx, AtomVar, Atom, Inserted), Coeff);
  Splx.addConstraint(Coeffs, Rel, -Expr.constant(), Tag);
}

/// Adds the arithmetic content of one literal to the tableau; no-op for
/// boolean constants, disequalities (handled by splitting), and array
/// equalities (the congruence closure's business).
void addFactArith(Simplex &Splx, AtomVarMap &AtomVar,
                  std::vector<const Term *> *Inserted, const Term *Lit,
                  int Tag) {
  if (Lit->isTrue() || Lit->isFalse() || Lit->kind() == TermKind::Not)
    return;
  if (Lit->kind() == TermKind::Eq && Lit->operand(0)->isArray())
    return;
  std::optional<LinearAtom> Atom = decomposeAtom(Lit);
  assert(Atom && "non-linear atom in theory solver");
  if (Atom->Rel == RelKind::Lt) {
    // All atoms are integer-valued (program integers, reads of integer
    // arrays, integer functions), so strict inequalities tighten:
    // e < 0 becomes e + 1 <= 0 after scaling to integral coefficients.
    // This keeps the simplex free of infinitesimals, whose fractional
    // vertex values would otherwise keep branch-and-bound churning.
    LinearExpr Tight = normalizeToIntegral(Atom->Expr);
    Tight.addConstant(Rational(1));
    addLinearConstraint(Splx, AtomVar, Inserted, Tight, SimplexRel::Le, Tag);
    return;
  }
  addLinearConstraint(Splx, AtomVar, Inserted, Atom->Expr,
                      Atom->Rel == RelKind::Eq ? SimplexRel::Eq
                                               : SimplexRel::Le,
                      Tag);
}

/// Asserts one literal into the congruence closure (phase 1). Only
/// equalities whose both sides are congruence nodes (variables, constants,
/// reads, applications) are asserted; mixed arithmetic equalities are the
/// simplex's business, and disequalities over arithmetic are resolved by
/// model-based splitting. Returns false on conflict with the conflicting
/// tags in \p ConflictCore.
bool assertIntoClosure(CongruenceClosure &CC, const Term *Lit, int Tag,
                       std::vector<int> &ConflictCore) {
  auto isCCNode = [](const Term *T) {
    switch (T->kind()) {
    case TermKind::Var:
    case TermKind::IntConst:
    case TermKind::Select:
    case TermKind::Apply:
      return true;
    default:
      return false;
    }
  };
  if (Lit->isTrue())
    return true;
  if (Lit->isFalse()) {
    ConflictCore = {Tag};
    return false;
  }
  bool Negated = Lit->kind() == TermKind::Not;
  const Term *Atom = Negated ? Lit->operand(0) : Lit;
  assert(Atom->isAtom() && "non-literal input to theory solver");
  const Term *A = Atom->operand(0);
  const Term *B = Atom->operand(1);
  bool Ok = true;
  if (Atom->kind() == TermKind::Eq && isCCNode(A) && isCCNode(B)) {
    assert((A->isInt() || !Negated) && "array disequalities are unsupported");
    Ok = Negated ? CC.assertDisequal(A, B, Tag) : CC.assertEqual(A, B, Tag);
  } else {
    assert((!Negated || Atom->kind() == TermKind::Eq) &&
           "negated inequalities must be normalized away");
    CC.registerTerm(A);
    CC.registerTerm(B);
  }
  if (!Ok) {
    ConflictCore = CC.conflictTags();
    return false;
  }
  return true;
}

/// An argument pair whose ordering must be decided to restore functional
/// consistency of two reads/applications.
struct FunctionalSplit {
  const Term *X;
  const Term *Y;
};

/// Finds the first pair of reads/applications that violates functional
/// consistency under \p AtomValues: same kind and symbol, argument values
/// equal in the model, result values different, and not already congruent.
std::optional<FunctionalSplit> findFunctionalViolation(
    CongruenceClosure &CC,
    const std::map<const Term *, Rational, TermIdLess> &AtomValues) {
  const auto &Nodes = CC.nodes();
  for (size_t I = 0; I < Nodes.size(); ++I) {
    for (size_t J = I + 1; J < Nodes.size(); ++J) {
      const Term *U = Nodes[I];
      const Term *V = Nodes[J];
      if (U->kind() != V->kind())
        continue;
      if (U->kind() != TermKind::Select && U->kind() != TermKind::Apply)
        continue;
      if (U->numOperands() != V->numOperands())
        continue;
      if (U->kind() == TermKind::Apply && U->name() != V->name())
        continue;
      if (U->kind() == TermKind::Select &&
          !CC.areEqual(U->operand(0), V->operand(0)))
        continue; // Reads of (so far) unrelated arrays.
      if (CC.areEqual(U, V))
        continue;
      size_t FirstArg = U->kind() == TermKind::Select ? 1 : 0;
      bool ArgsEqualInModel = true;
      const Term *SplitX = nullptr, *SplitY = nullptr;
      for (size_t K = FirstArg; K < U->numOperands(); ++K) {
        const Term *X = U->operand(K);
        const Term *Y = V->operand(K);
        if (evalUnderModel(X, AtomValues) != evalUnderModel(Y, AtomValues)) {
          ArgsEqualInModel = false;
          break;
        }
        if (!CC.areEqual(X, Y) && !SplitX) {
          SplitX = X;
          SplitY = Y;
        }
      }
      if (!ArgsEqualInModel)
        continue;
      if (evalUnderModel(U, AtomValues) == evalUnderModel(V, AtomValues))
        continue; // Functionally consistent as-is.
      assert(SplitX && "congruence violation without a splittable arg");
      return FunctionalSplit{SplitX, SplitY};
    }
  }
  return std::nullopt;
}

} // namespace

ConjResult
TheoryConjSolver::solve(const std::vector<const Term *> &Literals) {
  std::vector<Fact> Facts;
  Facts.reserve(Literals.size());
  for (size_t I = 0; I < Literals.size(); ++I)
    Facts.push_back({Literals[I], static_cast<int>(I)});

  ConjResult Result = solveFacts(std::move(Facts), /*Depth=*/0);
  if (!Result.IsSat) {
    // Fact indices at the top level coincide with literal indices (all
    // split decisions were removed when their branch unions were formed).
    std::vector<int> Core;
    for (int FactIdx : Result.Core) {
      assert(FactIdx >= 0 && FactIdx < static_cast<int>(Literals.size()) &&
             "decision leaked into top-level core");
      Core.push_back(FactIdx);
    }
    std::sort(Core.begin(), Core.end());
    Core.erase(std::unique(Core.begin(), Core.end()), Core.end());
    Result.Core = std::move(Core);
  }
  return Result;
}

bool TheoryConjSolver::ensureBaseTableau() {
  // Dead columns accumulate in the shared tableau as query scopes are
  // popped; rebuild once they dominate the live base.
  if (!BaseDirty && BaseSplx.numVars() > 2 * BaseVarCount + 128)
    BaseDirty = true;
  if (BaseDirty) {
    ++BaseRebuilds;
    ++SimplexRuns;
    BaseSplx = Simplex();
    BaseAtomVar.clear();
    for (size_t I = 0; I < BaseLits.size(); ++I)
      addFactArith(BaseSplx, BaseAtomVar, nullptr, BaseLits[I],
                   static_cast<int>(I));
    Simplex::Result BaseResult = BaseSplx.check();
    BaseUnsat = BaseResult == Simplex::Result::Unsat;
    BaseVarCount = BaseSplx.numVars();
    // An interrupted base check proved nothing; keep the dirty bit so the
    // next (uninterrupted) call re-establishes the base verdict.
    BaseDirty = BaseResult == Simplex::Result::Interrupted;
  }
  return !BaseUnsat;
}

namespace {

using ModelMap = std::map<const Term *, Rational, TermIdLess>;

/// Rebuilds the candidate model from the tableau and the congruence
/// closure's node set (integer constants take their value, everything
/// else defaults to zero). Runs once per branch-and-bound node.
void extractModel(const Simplex &Splx, const AtomVarMap &AtomVar,
                  CongruenceClosure &CC, ModelMap &Out) {
  Out.clear();
  std::vector<Rational> M = Splx.model();
  for (const auto &[Atom, Var] : AtomVar)
    Out[Atom] = M[Var];
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      Out[Node] = Node->value();
      continue;
    }
    Out.try_emplace(Node, Rational());
  }
}

/// One side of a branch: assert `Expr <= 0`; when the side is refuted by
/// input facts alone, \c Complement is the integer bound those facts
/// entail (the lemma head).
struct BranchSide {
  LinearExpr Expr;
  const Term *Complement;
};

/// A two-way case split chosen from the candidate model. Sides are tried
/// in order; \c ExhaustTag justifies exhaustiveness (the disequality fact
/// for disequality splits, absent for integrality splits, which are valid
/// for integer-valued atoms unconditionally).
struct BranchPlan {
  BranchSide Sides[2];
  std::optional<int> ExhaustTag;
};

/// The scoped branch-and-bound search over the shared tableau. Every
/// branch node is one Simplex scope holding one bound; check() repairs
/// the assignment in place and pop() backtracks, so the base and query
/// constraints are never re-asserted.
struct BnbSearch {
  /// Interrupted: the ResourceController tripped; unwind popping every
  /// scope on the way out (like Exhausted) but do NOT fall back to the
  /// scratch solver — the whole query must give up.
  enum class Status : uint8_t { Sat, Unsat, Exhausted, Interrupted };

  TermManager &TM;
  Simplex &Splx;
  AtomVarMap &AtomVar;
  std::vector<const Term *> *InsertedAtoms;
  CongruenceClosure &CC;
  const std::vector<const Term *> &FactLits;

  // Tag bookkeeping shared with the caller: tags >= FactLits.size() index
  // DerivedJust; branch decisions are marked in IsBranchTag.
  std::vector<std::vector<int>> &DerivedJust;
  std::vector<bool> &IsBranchTag;

  uint32_t NodesLeft;
  uint32_t MaxDepth;
  uint64_t &NodesCounter;
  uint64_t &RepairPivots;
  std::vector<BranchLemma> &Lemmas;
  uint64_t &LemmasProduced;
  static constexpr size_t MaxPendingLemmas = 64;
  static constexpr size_t MaxLemmaPremises = 12;

  int numFacts() const { return static_cast<int>(FactLits.size()); }

  int freshBranchTag() {
    DerivedJust.emplace_back();
    IsBranchTag.push_back(true);
    return numFacts() + static_cast<int>(DerivedJust.size()) - 1;
  }

  bool isBranchTag(int Tag) const {
    return Tag >= numFacts() && IsBranchTag[Tag - numFacts()];
  }

  /// Expands derived (non-branch) tags to the fact indices justifying
  /// them. Branch tags must have been stripped by the caller.
  std::vector<int> expandToFacts(const std::vector<int> &Tags) const {
    std::vector<int> Out;
    for (int Tag : Tags) {
      if (Tag < numFacts()) {
        Out.push_back(Tag);
        continue;
      }
      assert(!IsBranchTag[Tag - numFacts()] &&
             "branch decision leaked into an expanded core");
      const auto &Just = DerivedJust[Tag - numFacts()];
      Out.insert(Out.end(), Just.begin(), Just.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }

  /// Picks the next case split under \p Values, or nothing when the model
  /// is integral and separates every disequality. Integrality first, by
  /// best-first fractionality (fractional part closest to 1/2), with the
  /// side nearer the relaxation value ordered first.
  std::optional<BranchPlan> chooseSplit(const ModelMap &Values) const {
    const Term *FracAtom = nullptr;
    Rational FracVal;
    Rational BestScore;
    for (const auto &[Atom, Value] : Values) {
      if (Value.isInteger())
        continue;
      Rational Frac = Value - Rational(Value.floor());
      Rational Score = Frac <= Rational(BigInt(1), BigInt(2))
                           ? Frac
                           : Rational(1) - Frac;
      if (!FracAtom || Score > BestScore) {
        FracAtom = Atom;
        FracVal = Value;
        BestScore = Score;
      }
    }
    if (FracAtom) {
      const Term *FloorC = TM.mkIntConst(Rational(FracVal.floor()));
      const Term *CeilC = TM.mkIntConst(Rational(FracVal.ceil()));
      // Low side: Atom - floor <= 0. High side: ceil - Atom <= 0.
      BranchSide Low{LinearExpr::atom(FracAtom), TM.mkLe(CeilC, FracAtom)};
      Low.Expr.addConstant(-Rational(FracVal.floor()));
      BranchSide High{-LinearExpr::atom(FracAtom), TM.mkLe(FracAtom, FloorC)};
      High.Expr.addConstant(Rational(FracVal.ceil()));
      BranchPlan Plan;
      bool LowFirst =
          FracVal - Rational(FracVal.floor()) <= Rational(BigInt(1), BigInt(2));
      Plan.Sides[0] = LowFirst ? Low : High;
      Plan.Sides[1] = LowFirst ? High : Low;
      return Plan;
    }

    for (int I = 0; I < numFacts(); ++I) {
      const Term *Lit = FactLits[I];
      if (Lit->kind() != TermKind::Not)
        continue;
      const Term *Atom = Lit->operand(0);
      const Term *A = Atom->operand(0);
      const Term *B = Atom->operand(1);
      if (!A->isInt())
        continue;
      if (evalUnderModel(A, Values) != evalUnderModel(B, Values))
        continue; // Model already separates the two sides.
      // A != B forces A <= B - 1 or A >= B + 1 over the integers (the
      // same tightening addFactArith applies to strict inequalities).
      LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
      BranchPlan Plan;
      Plan.Sides[0].Expr = normalizeToIntegral(Diff);
      Plan.Sides[0].Expr.addConstant(Rational(1));
      Plan.Sides[0].Complement = TM.mkLe(B, A);
      Plan.Sides[1].Expr = normalizeToIntegral(-Diff);
      Plan.Sides[1].Expr.addConstant(Rational(1));
      Plan.Sides[1].Complement = TM.mkLe(A, B);
      Plan.ExhaustTag = I;
      return Plan;
    }
    return std::nullopt;
  }

  /// Surfaces `premises -> Complement` when a refuted side's core rests on
  /// input facts alone (no ancestor branch decision participates).
  void maybeSurfaceLemma(const BranchSide &Side,
                         const std::vector<int> &CoreSansTag) {
    if (Lemmas.size() >= MaxPendingLemmas)
      return;
    for (int Tag : CoreSansTag)
      if (isBranchTag(Tag))
        return; // Conditional on an ancestor decision; not a fact lemma.
    std::vector<int> Facts = expandToFacts(CoreSansTag);
    if (Facts.size() > MaxLemmaPremises)
      return;
    BranchLemma L;
    L.Bound = Side.Complement;
    L.Premises.reserve(Facts.size());
    for (int I : Facts)
      L.Premises.push_back(FactLits[I]);
    Lemmas.push_back(std::move(L));
    ++LemmasProduced;
  }

  /// One search node. Entered with the tableau feasible under all
  /// enclosing scopes; on Sat fills \p ModelOut, on Unsat fills
  /// \p CoreOut with raw tags (ancestor branch tags may remain — each is
  /// stripped at its own node's join).
  Status search(int Depth, ModelMap &ModelOut, std::vector<int> &CoreOut) {
    ModelMap Values;
    extractModel(Splx, AtomVar, CC, Values);
    std::optional<BranchPlan> Plan = chooseSplit(Values);
    if (!Plan) {
      if (findFunctionalViolation(CC, Values))
        return Status::Exhausted; // Needs a congruence split; use scratch.
      ModelOut = std::move(Values);
      return Status::Sat;
    }

    std::vector<int> Union;
    for (const BranchSide &Side : Plan->Sides) {
      if (NodesLeft == 0 || Depth >= static_cast<int>(MaxDepth))
        return Status::Exhausted;
      if (!resourceCharge(ResourceKind::BnbNodes))
        return Status::Interrupted;
      --NodesLeft;
      ++NodesCounter;
      int Tag = freshBranchTag();
      Splx.push();
      addLinearConstraint(Splx, AtomVar, InsertedAtoms, Side.Expr,
                          SimplexRel::Le, Tag);
      uint64_t PivotsBefore = Splx.numPivots();
      Simplex::Result SideResult = Splx.check();
      RepairPivots += Splx.numPivots() - PivotsBefore;
      if (SideResult == Simplex::Result::Interrupted) {
        Splx.pop();
        return Status::Interrupted;
      }
      bool SideFeasible = SideResult == Simplex::Result::Sat;
      std::vector<int> Core;
      if (SideFeasible) {
        Status R = search(Depth + 1, ModelOut, Core);
        if (R != Status::Unsat) {
          Splx.pop();
          return R; // Sat (model extracted) or Exhausted.
        }
      } else {
        Core = Splx.unsatCore();
      }
      Splx.pop();
      auto It = std::find(Core.begin(), Core.end(), Tag);
      if (It == Core.end()) {
        // The refutation does not use this branch's decision: it is a
        // valid core for the node as a whole, so the sibling need not run.
        CoreOut = std::move(Core);
        return Status::Unsat;
      }
      Core.erase(It);
      maybeSurfaceLemma(Side, Core);
      Union.insert(Union.end(), Core.begin(), Core.end());
    }
    if (Plan->ExhaustTag)
      Union.push_back(*Plan->ExhaustTag);
    std::sort(Union.begin(), Union.end());
    Union.erase(std::unique(Union.begin(), Union.end()), Union.end());
    CoreOut = std::move(Union);
    return Status::Unsat;
  }
};

} // namespace

bool TheoryConjSolver::trySolveScoped(const std::vector<const Term *> &Query,
                                      ConjResult &Out) {
  const int NumBase = static_cast<int>(BaseLits.size());
  const int NumFacts = NumBase + static_cast<int>(Query.size());
  auto factLiteral = [&](int I) {
    return I < NumBase ? BaseLits[I] : Query[I - NumBase];
  };
  auto finishUnsat = [&](std::vector<int> GlobalCore) {
    Out = ConjResult();
    for (int I : GlobalCore) {
      if (I < NumBase)
        Out.BaseInCore = true;
      else
        Out.Core.push_back(I - NumBase);
    }
    std::sort(Out.Core.begin(), Out.Core.end());
    Out.Core.erase(std::unique(Out.Core.begin(), Out.Core.end()),
                   Out.Core.end());
  };

  // Phase 1: congruence closure over base ++ query.
  CongruenceClosure CC;
  for (int I = 0; I < NumFacts; ++I) {
    std::vector<int> Conflict;
    if (!assertIntoClosure(CC, factLiteral(I), I, Conflict)) {
      finishUnsat(std::move(Conflict));
      return true;
    }
  }

  if (!ensureBaseTableau()) {
    Out = ConjResult();
    Out.BaseInCore = true;
    return true;
  }
  ++BaseReuses;

  // Phase 2 (scoped): query constraints plus CC equality exchange, asserted
  // inside a tableau scope on top of the solved base. Tags >= NumFacts are
  // derived: CC equalities carry the fact indices justifying them, branch
  // decisions (added by the search below) are marked and stripped at
  // their own node's join.
  std::vector<std::vector<int>> DerivedJust;
  std::vector<bool> IsBranchTag;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    DerivedJust.push_back(std::move(Just));
    IsBranchTag.push_back(false);
    return NumFacts + static_cast<int>(DerivedJust.size()) - 1;
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Expanded;
    for (int Tag : Tags) {
      if (Tag < NumFacts) {
        Expanded.push_back(Tag);
        continue;
      }
      assert(!IsBranchTag[Tag - NumFacts] &&
             "branch decision leaked into a final core");
      const auto &Just = DerivedJust[Tag - NumFacts];
      Expanded.insert(Expanded.end(), Just.begin(), Just.end());
    }
    return Expanded;
  };

  std::vector<const Term *> InsertedAtoms;
  BaseSplx.push();
  auto cleanupScope = [&]() {
    BaseSplx.pop();
    for (const Term *Atom : InsertedAtoms)
      BaseAtomVar.erase(Atom);
  };

  ++SimplexRuns;
  for (int I = NumBase; I < NumFacts; ++I)
    addFactArith(BaseSplx, BaseAtomVar, &InsertedAtoms, factLiteral(I), I);
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinearConstraint(BaseSplx, BaseAtomVar, &InsertedAtoms, Diff,
                        SimplexRel::Eq, freshDerivedTag(std::move(Just)));
  }

  Simplex::Result ScopeResult = BaseSplx.check();
  if (ScopeResult == Simplex::Result::Interrupted) {
    cleanupScope();
    Out = ConjResult();
    Out.Interrupted = true;
    return true; // Done (no verdict); never fall back to scratch.
  }
  if (ScopeResult == Simplex::Result::Unsat) {
    finishUnsat(expandTags(BaseSplx.unsatCore()));
    cleanupScope();
    return true;
  }

  // Phases 3/4 (scoped): complete the rational relaxation to an integral,
  // disequality-separating model by branch-and-bound over the same
  // tableau. All facts live (base ++ query ++ CC equalities), so literals
  // are never re-asserted; each branch is one nested bound scope.
  std::vector<const Term *> FactLits;
  FactLits.reserve(NumFacts);
  for (int I = 0; I < NumFacts; ++I)
    FactLits.push_back(factLiteral(I));

  BnbSearch Search{TM,
                   BaseSplx,
                   BaseAtomVar,
                   &InsertedAtoms,
                   CC,
                   FactLits,
                   DerivedJust,
                   IsBranchTag,
                   BnbNodeBudget,
                   BnbDepthBudget,
                   BnbNodes,
                   BnbRepairPivots,
                   PendingLemmas,
                   BranchLemmasProduced};
  ModelMap AtomValues;
  std::vector<int> Core;
  BnbSearch::Status R = Search.search(/*Depth=*/0, AtomValues, Core);
  if (R == BnbSearch::Status::Interrupted) {
    cleanupScope();
    Out = ConjResult();
    Out.Interrupted = true;
    return true; // Resources exhausted: no scratch retry.
  }
  if (R == BnbSearch::Status::Exhausted) {
    cleanupScope();
    return false; // Budget spent or congruence split needed: use scratch.
  }
  if (R == BnbSearch::Status::Unsat) {
    finishUnsat(expandTags(Core));
    cleanupScope();
    return true;
  }
  cleanupScope();

  Out = ConjResult();
  Out.IsSat = true;
  Out.Model = std::move(AtomValues);
  return true;
}

ConjResult
TheoryConjSolver::solveWithBase(const std::vector<const Term *> &Query) {
  ConjResult Fast;
  if (trySolveScoped(Query, Fast))
    return Fast;
  ++ScratchFallbacks;

  // The scoped search could not finish (branch budget exhausted, or a
  // functional-consistency split would require re-running congruence
  // closure): solve base ++ query from scratch and remap the core onto
  // query indices.
  std::vector<const Term *> All;
  All.reserve(BaseLits.size() + Query.size());
  All.insert(All.end(), BaseLits.begin(), BaseLits.end());
  All.insert(All.end(), Query.begin(), Query.end());
  ConjResult R = solve(All);
  if (!R.IsSat) {
    std::vector<int> QueryCore;
    for (int I : R.Core) {
      if (I < static_cast<int>(BaseLits.size()))
        R.BaseInCore = true;
      else
        QueryCore.push_back(I - static_cast<int>(BaseLits.size()));
    }
    R.Core = std::move(QueryCore);
  }
  return R;
}

ConjResult TheoryConjSolver::solveFacts(std::vector<Fact> Facts, int Depth) {
  assert(Depth < 256 && "runaway theory splitting");

  // Runs one split branch. Appends BranchLit as a decision, recurses, and
  // feeds the outcome to the caller: a SAT result or a decision-free core
  // short-circuits; otherwise the branch's core (minus the decision)
  // accumulates in UnionCore.
  auto runBranch = [&](const Term *BranchLit, std::vector<int> &UnionCore,
                       std::optional<ConjResult> &Final) {
    if (!resourceCharge(ResourceKind::BnbNodes)) {
      ConjResult R;
      R.Interrupted = true;
      Final = std::move(R);
      return;
    }
    std::vector<Fact> Child = Facts;
    int DecisionIdx = static_cast<int>(Child.size());
    Child.push_back({BranchLit, -1});
    ConjResult R = solveFacts(std::move(Child), Depth + 1);
    if (R.IsSat || R.Interrupted) {
      Final = std::move(R);
      return;
    }
    bool UsesDecision =
        std::find(R.Core.begin(), R.Core.end(), DecisionIdx) != R.Core.end();
    if (!UsesDecision) {
      Final = std::move(R); // Core is valid without the split.
      return;
    }
    for (int FactIdx : R.Core)
      if (FactIdx != DecisionIdx)
        UnionCore.push_back(FactIdx);
  };

  // --- Phase 1: syntactic congruence closure -----------------------------
  CongruenceClosure CC;
  for (size_t I = 0; I < Facts.size(); ++I) {
    std::vector<int> Conflict;
    if (!assertIntoClosure(CC, Facts[I].Literal, static_cast<int>(I),
                           Conflict)) {
      ConjResult R;
      R.Core = std::move(Conflict);
      return R;
    }
  }

  // --- Phase 2: simplex over the arithmetic skeleton ---------------------
  Simplex Splx;
  ++SimplexRuns;
  AtomVarMap AtomVar;

  // Tag space: [0, Facts.size()) are facts; above that, derived equalities
  // justified by the fact sets in TagJustification.
  std::vector<std::vector<int>> TagJustification;
  auto freshDerivedTag = [&](std::vector<int> Just) {
    TagJustification.push_back(std::move(Just));
    return static_cast<int>(Facts.size() + TagJustification.size() - 1);
  };
  auto expandTags = [&](const std::vector<int> &Tags) {
    std::vector<int> Out;
    for (int Tag : Tags) {
      if (Tag < static_cast<int>(Facts.size())) {
        Out.push_back(Tag);
        continue;
      }
      const auto &Just = TagJustification[Tag - Facts.size()];
      Out.insert(Out.end(), Just.begin(), Just.end());
    }
    std::sort(Out.begin(), Out.end());
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  };

  for (size_t I = 0; I < Facts.size(); ++I)
    addFactArith(Splx, AtomVar, nullptr, Facts[I].Literal,
                 static_cast<int>(I));

  // Equality exchange: CC-merged classes become simplex equalities.
  for (const auto &[A, B] : CC.equivalentPairs()) {
    if (!A->isInt())
      continue;
    std::vector<int> Just = CC.explainEquality(A, B);
    LinearExpr Diff = *LinearExpr::fromTerm(A) - *LinearExpr::fromTerm(B);
    addLinearConstraint(Splx, AtomVar, nullptr, Diff, SimplexRel::Eq,
                        freshDerivedTag(std::move(Just)));
  }

  Simplex::Result SplxResult = Splx.check();
  if (SplxResult == Simplex::Result::Interrupted) {
    ConjResult R;
    R.Interrupted = true;
    return R;
  }
  if (SplxResult == Simplex::Result::Unsat) {
    ConjResult R;
    R.Core = expandTags(Splx.unsatCore());
    return R;
  }

  // --- Phase 3: candidate model -------------------------------------------
  std::map<const Term *, Rational, TermIdLess> AtomValues;
  {
    std::vector<Rational> M = Splx.model();
    for (const auto &[Atom, Var] : AtomVar)
      AtomValues[Atom] = M[Var];
  }
  for (const Term *Node : CC.nodes()) {
    if (!Node->isInt())
      continue;
    if (Node->isIntConst()) {
      AtomValues[Node] = Node->value();
      continue;
    }
    AtomValues.try_emplace(Node, Rational());
  }

  // --- Phase 4a: integrality splits (branch and bound) --------------------
  // Program variables, array cells, and function values are integers; the
  // simplex model is rational. A fractional value triggers the classic
  // branch  atom <= floor(v)  \/  atom >= floor(v)+1, which is valid for
  // integers without any supporting input literal. (This is what makes the
  // FORWARD path formula of Section 2.1 infeasible: over the rationals it
  // has a model with n between 0 and 1.)
  for (const auto &[Atom, Value] : AtomValues) {
    if (Value.isInteger())
      continue;
    const Term *FloorC = TM.mkIntConst(Rational(Value.floor()));
    const Term *CeilC = TM.mkIntConst(Rational(Value.ceil()));
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLe(Atom, FloorC), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLe(CeilC, Atom), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 4: disequality splits ----------------------------------------
  for (size_t I = 0; I < Facts.size(); ++I) {
    const Term *Lit = Facts[I].Literal;
    if (Lit->kind() != TermKind::Not)
      continue;
    const Term *Atom = Lit->operand(0);
    const Term *A = Atom->operand(0);
    const Term *B = Atom->operand(1);
    if (!A->isInt())
      continue;
    if (evalUnderModel(A, AtomValues) != evalUnderModel(B, AtomValues))
      continue; // Model already separates the two sides.
    // A != B forces A < B or B < A.
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(A, B), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(B, A), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    UnionCore.push_back(static_cast<int>(I)); // Justifies exhaustiveness.
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- Phase 5: functional-consistency splits ------------------------------
  if (std::optional<FunctionalSplit> Split =
          findFunctionalViolation(CC, AtomValues)) {
    // X < Y, Y < X, or X = Y (exhaustive).
    std::vector<int> UnionCore;
    std::optional<ConjResult> Final;
    runBranch(TM.mkLt(Split->X, Split->Y), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkLt(Split->Y, Split->X), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    runBranch(TM.mkEq(Split->X, Split->Y), UnionCore, Final);
    if (Final)
      return std::move(*Final);
    ConjResult R;
    R.Core = std::move(UnionCore);
    return R;
  }

  // --- SAT -----------------------------------------------------------------
  ConjResult R;
  R.IsSat = true;
  R.Model = std::move(AtomValues);
  return R;
}
