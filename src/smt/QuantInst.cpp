//===- smt/QuantInst.cpp - Quantifier instantiation -------------------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/QuantInst.h"

#include "smt/SmtSolver.h"

using namespace pathinv;

namespace {

/// Rewrites negative-polarity universals into skolemized matrices and
/// leaves positive ones in place. Polarity tracks evenness of negations.
const Term *skolemize(TermManager &TM, const Term *F, bool Positive,
                      uint64_t &FreshCounter) {
  switch (F->kind()) {
  case TermKind::Not: {
    const Term *Sub = skolemize(TM, F->operand(0), !Positive, FreshCounter);
    return TM.mkNot(Sub);
  }
  case TermKind::And:
  case TermKind::Or: {
    std::vector<const Term *> Ops;
    Ops.reserve(F->numOperands());
    for (const Term *Op : F->operands())
      Ops.push_back(skolemize(TM, Op, Positive, FreshCounter));
    return F->kind() == TermKind::And ? TM.mkAnd(std::move(Ops))
                                      : TM.mkOr(std::move(Ops));
  }
  case TermKind::Forall: {
    if (Positive)
      return F; // Left for the instantiation pass.
    // Negative universal: one fresh witness index suffices.
    const Term *Bound = F->operand(0);
    const Term *Witness =
        TM.mkVar("sk!" + std::to_string(FreshCounter++), Sort::Int);
    TermMap Subst;
    Subst[Bound] = Witness;
    const Term *Body = substitute(TM, F->operand(1), Subst);
    return skolemize(TM, Body, Positive, FreshCounter);
  }
  default:
    return F;
  }
}

/// Collects candidate instantiation terms: indices of array reads in the
/// quantifier-free part of \p F (bodies of remaining universals are
/// skipped so no bound variables leak in), plus skolem constants.
void collectIndexTerms(const Term *F, TermSet &Out) {
  if (F->kind() == TermKind::Forall)
    return;
  if (F->kind() == TermKind::Select)
    Out.insert(F->operand(1));
  if (F->isVar() && F->name().rfind("sk!", 0) == 0)
    Out.insert(F);
  for (const Term *Op : F->operands())
    collectIndexTerms(Op, Out);
}

/// Replaces every remaining (positive) universal with the conjunction of
/// its instances over \p Instances.
const Term *instantiate(TermManager &TM, const Term *F,
                        const std::vector<const Term *> &Instances) {
  switch (F->kind()) {
  case TermKind::Forall: {
    const Term *Bound = F->operand(0);
    std::vector<const Term *> Conjuncts;
    for (const Term *Inst : Instances) {
      TermMap Subst;
      Subst[Bound] = Inst;
      Conjuncts.push_back(substitute(TM, F->operand(1), Subst));
    }
    // No instances: the universal is weakened to true (sound for
    // unsat checking).
    return TM.mkAnd(std::move(Conjuncts));
  }
  case TermKind::Not:
    return TM.mkNot(instantiate(TM, F->operand(0), Instances));
  case TermKind::And:
  case TermKind::Or: {
    std::vector<const Term *> Ops;
    Ops.reserve(F->numOperands());
    for (const Term *Op : F->operands())
      Ops.push_back(instantiate(TM, Op, Instances));
    return F->kind() == TermKind::And ? TM.mkAnd(std::move(Ops))
                                      : TM.mkOr(std::move(Ops));
  }
  default:
    return F;
  }
}

} // namespace

const Term *pathinv::instantiateQuantifiers(TermManager &TM, const Term *F,
                                            uint64_t &FreshCounter) {
  const Term *Skolemized = skolemize(TM, F, /*Positive=*/true, FreshCounter);
  if (!containsQuantifier(Skolemized))
    return Skolemized;
  TermSet IndexTerms;
  collectIndexTerms(Skolemized, IndexTerms);
  std::vector<const Term *> Instances(IndexTerms.begin(), IndexTerms.end());
  const Term *Ground = instantiate(TM, Skolemized, Instances);
  assert(!containsQuantifier(Ground) && "nested quantifiers unsupported");
  return Ground;
}

bool pathinv::entailsWithQuant(TermManager &TM, SmtSolver &Solver,
                               const Term *Hyp, const Term *Concl) {
  const Term *Query = TM.mkAnd(Hyp, TM.mkNot(Concl));
  uint64_t LocalCounter = 0;
  const Term *Ground = instantiateQuantifiers(TM, Query, LocalCounter);
  return Solver.isUnsat(Ground);
}
