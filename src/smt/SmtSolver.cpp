//===- smt/SmtSolver.cpp - One-shot façade over SolverContext -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "smt/ArrayElim.h"

using namespace pathinv;

ConjResult
SmtSolver::checkConjunction(const std::vector<const Term *> &Literals) {
  ++DirectTheoryChecks;
  TheoryConjSolver Theory(TM);
  return Theory.solve(Literals);
}

SmtSolver::Status SmtSolver::checkSat(const Term *Formula) {
  ++Queries;
  assert(!containsQuantifier(Formula) &&
         "SMT core is quantifier-free; instantiate quantifiers first");

  // Memoize on the original formula, before any transformation: cache
  // hits must stay one map lookup.
  auto Key = std::make_pair(Ctx.assertionFingerprint(), Formula->id());
  auto It = SatCache.find(Key);
  if (It != SatCache.end() && !It->second) {
    // Unsat results need no model and can be replayed from cache. Sat
    // results are re-solved to repopulate the model.
    ++CacheHits;
    return Status::Unsat;
  }

  // Array-write elimination is a whole-formula transformation (array
  // aliasing is resolved globally), so it runs here — before the formula
  // is split across the context's scopes. containsStore is an O(1) flag.
  const Term *F = Formula;
  if (containsStore(Formula)) {
    Expected<const Term *> Reduced = eliminateArrayWrites(TM, Formula);
    assert(Reduced && "array-write elimination failed; unsupported shape");
    F = Reduced.get();
  }

  Model.clear();

  // Standalone conjunction queries (the context holds no assertions to
  // combine with) go straight to the theory solver: there is no prefix to
  // amortize, so the context's cached-tableau probe would only add
  // overhead when the query needs theory splits.
  std::vector<const Term *> Literals;
  if (!Ctx.hasAssertions() && isLiteralConjunction(F, Literals)) {
    ConjResult R = checkConjunction(Literals);
    if (R.IsSat)
      Model = std::move(R.Model);
    SatCache[Key] = R.IsSat;
    return R.IsSat ? Status::Sat : Status::Unsat;
  }

  Ctx.push();
  Ctx.assertTerm(F);
  smt::CheckResult R = Ctx.checkSat();
  Ctx.pop();
  if (R.isSat())
    Model = R.model().values();
  SatCache[Key] = R.isSat();
  return R.isSat() ? Status::Sat : Status::Unsat;
}

bool SmtSolver::isUnsat(const Term *Formula) {
  return checkSat(Formula) == Status::Unsat;
}

bool SmtSolver::entails(const Term *A, const Term *B) {
  return isUnsat(TM.mkAnd(A, TM.mkNot(B)));
}
