//===- smt/SmtSolver.cpp - Lazy DPLL(T) over LRA+EUF+arrays ---------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "smt/ArrayElim.h"
#include "smt/SatSolver.h"

using namespace pathinv;

namespace {

/// Checks whether a normalized formula is a conjunction of literals.
bool isLiteralConjunction(const Term *T,
                          std::vector<const Term *> &Literals) {
  std::vector<const Term *> Conjuncts;
  flattenConjuncts(T, Conjuncts);
  for (const Term *C : Conjuncts) {
    if (!C->isLiteral() && !C->isTrue() && !C->isFalse())
      return false;
    Literals.push_back(C);
  }
  return true;
}

/// Tseitin encoder: maps formula nodes to SAT literals, emitting defining
/// clauses into the solver. Relational atoms become SAT variables directly.
class TseitinEncoder {
public:
  TseitinEncoder(SatSolver &Sat) : Sat(Sat) {}

  Lit encode(const Term *T) {
    auto It = NodeLit.find(T);
    if (It != NodeLit.end())
      return It->second;
    Lit Result = encodeUncached(T);
    NodeLit.emplace(T, Result);
    return Result;
  }

  /// Atom term for each SAT variable that represents one (else nullptr).
  const std::vector<const Term *> &atomOfVar() const { return AtomOfVar; }

private:
  int freshVar(const Term *Atom) {
    int Var = Sat.addVar();
    assert(static_cast<size_t>(Var) == AtomOfVar.size() &&
           "SAT variables must be created only through the encoder");
    AtomOfVar.push_back(Atom);
    return Var;
  }

  Lit encodeUncached(const Term *T) {
    switch (T->kind()) {
    case TermKind::True: {
      int Var = freshVar(nullptr);
      Sat.addClause({Lit(Var, false)});
      return Lit(Var, false);
    }
    case TermKind::False: {
      int Var = freshVar(nullptr);
      Sat.addClause({Lit(Var, false)});
      return Lit(Var, true);
    }
    case TermKind::Eq:
    case TermKind::Le:
    case TermKind::Lt:
      return Lit(freshVar(T), false);
    case TermKind::Not:
      return ~encode(T->operand(0));
    case TermKind::And:
    case TermKind::Or: {
      bool IsAnd = T->kind() == TermKind::And;
      std::vector<Lit> OpLits;
      OpLits.reserve(T->numOperands());
      for (const Term *Op : T->operands())
        OpLits.push_back(encode(Op));
      Lit Aux(freshVar(nullptr), false);
      // IsAnd:  aux <-> /\ ops;  else aux <-> \/ ops.
      std::vector<Lit> Long; // (aux -> \/ops) or (/\ops -> aux)
      Long.reserve(OpLits.size() + 1);
      Long.push_back(IsAnd ? Aux : ~Aux);
      for (Lit L : OpLits) {
        Sat.addClause({IsAnd ? ~Aux : Aux, IsAnd ? L : ~L});
        Long.push_back(IsAnd ? ~L : L);
      }
      Sat.addClause(std::move(Long));
      return Aux;
    }
    default:
      assert(false && "unexpected node in propositional skeleton");
      return Lit(freshVar(nullptr), false);
    }
  }

  SatSolver &Sat;
  std::map<const Term *, Lit, TermIdLess> NodeLit;
  std::vector<const Term *> AtomOfVar;
};

} // namespace

ConjResult
SmtSolver::checkConjunction(const std::vector<const Term *> &Literals) {
  ++TheoryChecks;
  TheoryConjSolver Theory(TM);
  return Theory.solve(Literals);
}

SmtSolver::Status SmtSolver::checkSat(const Term *Formula) {
  ++Queries;
  auto It = SatCache.find(Formula);
  if (It != SatCache.end() && !It->second) {
    // Unsat results need no model and can be replayed from cache. Sat
    // results are re-solved to repopulate the model.
    ++CacheHits;
    return Status::Unsat;
  }
  Status Result = checkSatUncached(Formula);
  SatCache[Formula] = Result == Status::Sat;
  return Result;
}

SmtSolver::Status SmtSolver::checkSatUncached(const Term *Formula) {
  assert(!containsQuantifier(Formula) &&
         "SMT core is quantifier-free; instantiate quantifiers first");
  Expected<const Term *> Reduced = eliminateArrayWrites(TM, Formula);
  assert(Reduced && "array-write elimination failed; unsupported shape");
  const Term *F = Reduced.get();
  Model.clear();

  if (F->isTrue())
    return Status::Sat;
  if (F->isFalse())
    return Status::Unsat;

  // Fast path: conjunction of literals.
  std::vector<const Term *> Literals;
  if (isLiteralConjunction(F, Literals)) {
    ConjResult R = checkConjunction(Literals);
    if (R.IsSat)
      Model = std::move(R.Model);
    return R.IsSat ? Status::Sat : Status::Unsat;
  }

  // Lazy DPLL(T) loop. The per-query CDCL core's counters are folded into
  // the solver-wide statistics on exit.
  SatSolver Sat;
  struct StatFold {
    SmtSolver &S;
    SatSolver &Sat;
    ~StatFold() {
      S.SatConflicts += Sat.numConflicts();
      S.SatDecisions += Sat.numDecisions();
      S.SatPropagations += Sat.numPropagations();
    }
  } Fold{*this, Sat};
  TseitinEncoder Encoder(Sat);
  Lit Root = Encoder.encode(F);
  if (!Sat.addClause({Root}))
    return Status::Unsat;

  while (true) {
    if (Sat.solve() == SatSolver::Result::Unsat)
      return Status::Unsat;

    // Collect the theory literals of the propositional model.
    std::vector<const Term *> TheoryLits;
    std::vector<Lit> SatLits;
    const auto &AtomOfVar = Encoder.atomOfVar();
    for (int Var = 0; Var < static_cast<int>(AtomOfVar.size()); ++Var) {
      const Term *Atom = AtomOfVar[Var];
      if (!Atom)
        continue;
      bool Positive = Sat.modelValue(Var);
      TheoryLits.push_back(Positive ? Atom : TM.mkNot(Atom));
      SatLits.push_back(Lit(Var, !Positive));
    }

    ConjResult R = checkConjunction(TheoryLits);
    if (R.IsSat) {
      Model = std::move(R.Model);
      return Status::Sat;
    }

    // Block this theory-inconsistent assignment (negate the core).
    std::vector<Lit> Blocking;
    Blocking.reserve(R.Core.size());
    for (int LitIdx : R.Core)
      Blocking.push_back(~SatLits[LitIdx]);
    if (Blocking.empty() || !Sat.addClause(std::move(Blocking)))
      return Status::Unsat;
  }
}

bool SmtSolver::isUnsat(const Term *Formula) {
  return checkSat(Formula) == Status::Unsat;
}

bool SmtSolver::entails(const Term *A, const Term *B) {
  return isUnsat(TM.mkAnd(A, TM.mkNot(B)));
}
