//===- smt/SmtSolver.cpp - One-shot façade over SolverContext -------------===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "smt/SmtSolver.h"

#include "smt/ArrayElim.h"

using namespace pathinv;

SmtSolver::Status SmtSolver::checkSat(const Term *Formula) {
  ++Queries;
  assert(!containsQuantifier(Formula) &&
         "SMT core is quantifier-free; instantiate quantifiers first");

  // Memoize on the original formula, before any transformation: cache
  // hits must stay one map lookup.
  auto Key = std::make_pair(Ctx.assertionFingerprint(), Formula->id());
  auto It = SatCache.find(Key);
  if (It != SatCache.end() && !It->second) {
    // Unsat results need no model and can be replayed from cache. Sat
    // results are re-solved to repopulate the model.
    ++CacheHits;
    return Status::Unsat;
  }

  // Array-write elimination is a whole-formula transformation (array
  // aliasing is resolved globally), so it runs here — before the formula
  // is split across the context's scopes. containsStore is an O(1) flag.
  const Term *F = Formula;
  if (containsStore(Formula)) {
    Expected<const Term *> Reduced = eliminateArrayWrites(TM, Formula);
    if (!Reduced)
      return Status::Unknown; // Outside the array fragment: no verdict.
    F = Reduced.get();
  }

  Model.clear();

  // Literal conjunctions ride the context's theory fast path as one batch
  // of assumption literals: no scope churn in the theory base, splits are
  // served by the scoped branch-and-bound on the cached tableau, and any
  // branch-derived bound lemmas persist in the context across queries.
  // (Before the scoped search existed, these queries bypassed the context
  // entirely because a needed split forced a from-scratch solve anyway.)
  std::vector<const Term *> Literals;
  smt::CheckResult R = [&] {
    if (isLiteralConjunction(F, Literals))
      return Ctx.checkSat(Literals);
    Ctx.push();
    Ctx.assertTerm(F);
    smt::CheckResult Scoped = Ctx.checkSat();
    Ctx.pop();
    return Scoped;
  }();
  if (R.isUnknown())
    return Status::Unknown; // Interrupted results are never cached.
  if (R.isSat())
    Model = R.model().values();
  SatCache[Key] = R.isSat();
  return R.isSat() ? Status::Sat : Status::Unsat;
}

bool SmtSolver::isUnsat(const Term *Formula) {
  return checkSat(Formula) == Status::Unsat;
}

bool SmtSolver::entails(const Term *A, const Term *B) {
  return isUnsat(TM.mkAnd(A, TM.mkNot(B)));
}
