//===- smt/SmtSolver.h - Lazy DPLL(T) over LRA+EUF+arrays ------*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Satisfiability of quantifier-free formulas over linear arithmetic,
/// uninterpreted functions, and arrays (ground writes).
///
/// Architecture: array writes are compiled away (read-over-write case
/// splits), the boolean structure is Tseitin-encoded into the CDCL core,
/// and full propositional models are validated by the conjunction-level
/// theory solver; theory conflicts return as blocking clauses built from
/// unsat cores. Conjunctions of literals bypass the SAT solver entirely —
/// the common case for path formulas and abstraction queries.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_SMTSOLVER_H
#define PATHINV_SMT_SMTSOLVER_H

#include "logic/TermRewrite.h"
#include "smt/TheoryConj.h"

#include <map>

namespace pathinv {

/// Lazy SMT solver. One instance may serve many queries; results of
/// satisfiability checks are memoized by formula identity.
class SmtSolver {
public:
  explicit SmtSolver(TermManager &TM) : TM(TM) {}

  enum class Status : uint8_t { Sat, Unsat };

  /// Decides satisfiability of quantifier-free \p Formula.
  Status checkSat(const Term *Formula);

  /// \returns true iff \p Formula is unsatisfiable (memoized).
  bool isUnsat(const Term *Formula);

  /// \returns true iff \p A entails \p B, i.e. A && !B is unsat.
  bool entails(const Term *A, const Term *B);

  /// Model of the last Sat checkSat() call: values of arithmetic atoms
  /// (variables, array reads, applications).
  const std::map<const Term *, Rational, TermIdLess> &model() const {
    return Model;
  }

  /// Decides a conjunction of literals directly (no memoization); exposes
  /// the unsat core for counterexample analysis.
  ConjResult checkConjunction(const std::vector<const Term *> &Literals);

  /// Statistics.
  uint64_t numQueries() const { return Queries; }
  uint64_t numTheoryChecks() const { return TheoryChecks; }
  uint64_t numCacheHits() const { return CacheHits; }
  /// Cumulative CDCL-core statistics across all lazy-loop queries.
  uint64_t numSatConflicts() const { return SatConflicts; }
  uint64_t numSatDecisions() const { return SatDecisions; }
  uint64_t numSatPropagations() const { return SatPropagations; }

private:
  Status checkSatUncached(const Term *Formula);

  TermManager &TM;
  std::map<const Term *, Rational, TermIdLess> Model;
  std::map<const Term *, bool, TermIdLess> SatCache; ///< Formula -> isSat.
  uint64_t Queries = 0;
  uint64_t TheoryChecks = 0;
  uint64_t CacheHits = 0;
  uint64_t SatConflicts = 0;
  uint64_t SatDecisions = 0;
  uint64_t SatPropagations = 0;
};

} // namespace pathinv

#endif // PATHINV_SMT_SMTSOLVER_H
