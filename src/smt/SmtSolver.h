//===- smt/SmtSolver.h - One-shot façade over SolverContext ----*- C++ -*-===//
//
// Part of the path-invariants reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic one-shot SMT entry points (checkSat/isUnsat/entails over a
/// whole formula), kept as a thin adapter over smt::SolverContext.
///
/// New code should prefer the context API directly: push/pop scopes,
/// assertTerm, and checkSat(assumptions) with value-typed models and unsat
/// cores (smt/SolverContext.h). The one-shot calls here remain for callers
/// whose queries genuinely share no structure; each call runs in a fresh
/// scope of the adapter's context, so Tseitin encodings, learned clauses,
/// and theory lemmas still persist across calls.
///
/// Semantics note: checkSat(F) decides F *under the current assertions of
/// context()* — empty unless a caller asserted into it, which reproduces
/// the historical standalone behavior. Results are memoized keyed by the
/// context's assertion fingerprint, so state held in the context
/// invalidates the cache correctly.
///
//===----------------------------------------------------------------------===//

#ifndef PATHINV_SMT_SMTSOLVER_H
#define PATHINV_SMT_SMTSOLVER_H

#include "smt/SolverContext.h"

#include <map>

namespace pathinv {

/// One-shot SMT solver façade. One instance may serve many queries;
/// unsatisfiability results are memoized by (context state, formula).
class SmtSolver {
public:
  explicit SmtSolver(TermManager &TM) : TM(TM), Ctx(TM) {}

  /// Unknown: resources exhausted mid-query, or the formula fell outside
  /// the supported array fragment. Never cached, never a verdict.
  enum class Status : uint8_t { Sat, Unsat, Unknown };

  /// Decides satisfiability of quantifier-free \p Formula under the
  /// current assertions of context(). Array writes are eliminated on the
  /// whole formula first.
  Status checkSat(const Term *Formula);

  /// \returns true iff \p Formula is *proven* unsatisfiable (memoized).
  /// Unknown maps to false — "not proven unsat" — which is the sound
  /// direction for every caller (feasibility stays feasible, entailment
  /// stays unproven).
  bool isUnsat(const Term *Formula);

  /// \returns true iff \p A entails \p B, i.e. A && !B is unsat.
  bool entails(const Term *A, const Term *B);

  /// Model of the last Sat checkSat() call: values of arithmetic atoms
  /// (variables, array reads, applications).
  const std::map<const Term *, Rational, TermIdLess> &model() const {
    return Model;
  }

  /// The underlying incremental context. Assertions made here persist and
  /// are honored (and cache-keyed) by the one-shot calls above.
  smt::SolverContext &context() { return Ctx; }
  const smt::SolverContext &context() const { return Ctx; }

  /// Statistics.
  uint64_t numQueries() const { return Queries; }
  uint64_t numTheoryChecks() const { return Ctx.stats().TheoryChecks; }
  uint64_t numCacheHits() const { return CacheHits; }
  /// Cumulative CDCL-core statistics of the underlying context.
  uint64_t numSatConflicts() const { return Ctx.stats().SatConflicts; }
  uint64_t numSatDecisions() const { return Ctx.stats().SatDecisions; }
  uint64_t numSatPropagations() const { return Ctx.stats().SatPropagations; }

private:
  TermManager &TM;
  smt::SolverContext Ctx;
  std::map<const Term *, Rational, TermIdLess> Model;
  /// (assertion fingerprint, formula id) -> isSat. Keying on the
  /// fingerprint invalidates entries whenever context() holds different
  /// asserted state.
  std::map<std::pair<uint64_t, uint32_t>, bool> SatCache;
  uint64_t Queries = 0;
  uint64_t CacheHits = 0;
};

} // namespace pathinv

#endif // PATHINV_SMT_SMTSOLVER_H
